/**
 * @file
 * Diagnostic: run one (benchmark, architecture) pair and dump every
 * statistic — the tool to use when calibrating workload profiles or
 * chasing a performance question.
 *
 * Usage: inspect [benchmark] [efam|ifam|deactw|deactn] [instructions]
 */

#include <cstdlib>
#include <iostream>
#include <string>

#include "harness/runner.hh"

using namespace famsim;

int
main(int argc, char** argv)
{
    std::string bench = argc > 1 ? argv[1] : "mcf";
    std::string arch_name = argc > 2 ? argv[2] : "ifam";
    std::uint64_t instr = argc > 3 ? std::strtoull(argv[3], nullptr, 10)
                                   : 200000;

    ArchKind arch = ArchKind::IFam;
    if (arch_name == "efam")
        arch = ArchKind::EFam;
    else if (arch_name == "ifam")
        arch = ArchKind::IFam;
    else if (arch_name == "deactw")
        arch = ArchKind::DeactW;
    else if (arch_name == "deactn")
        arch = ArchKind::DeactN;
    else {
        std::cerr << "unknown architecture '" << arch_name << "'\n";
        return 1;
    }

    SystemConfig config = makeConfig(profiles::byName(bench), arch, instr);
    System system(config);
    system.run();

    system.sim().stats().dump(std::cout);
    std::cout << "\nsummary: ipc=" << system.ipc()
              << " at%=" << system.famAtPercent()
              << " xlate_hit=" << system.translationHitRate()
              << " acm_hit=" << system.acmHitRate()
              << " mpki=" << system.mpki() << "\n";
    return 0;
}
