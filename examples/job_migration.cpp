/**
 * @file
 * Job-migration example (§VI "Page Migration").
 *
 * A job running on node 0 is migrated to node 1, twice:
 *   1. the naive way — rewriting the ACM owner of every page the job
 *      owns (O(pages) FAM writes) and shooting down the STU + FAM
 *      translator caches;
 *   2. the paper's logical-node-id way — only the logical-id binding
 *      changes, so zero ACM writes are needed.
 *
 * After each migration the example verifies that the destination node
 * can access the job's pages and the source node cannot.
 */

#include <iostream>

#include "arch/system.hh"

using namespace famsim;

namespace {

bool
tryAccess(System& system, unsigned node, std::uint64_t npa_page)
{
    bool granted = false;
    auto pkt = makePacket(static_cast<NodeId>(node), 0, MemOp::Read,
                          PacketKind::Data);
    pkt->logicalNode =
        system.broker().logicalIdOf(static_cast<NodeId>(node));
    pkt->npa = NPAddr(npa_page * kPageSize);
    pkt->onDone = [&](Packet& p) { granted = p.accessGranted; };
    system.node(node).stu->handleFromNode(pkt);
    system.sim().run();
    return granted;
}

} // namespace

int
main()
{
    ScopedQuietLogs quiet;

    SystemConfig config;
    config.arch = ArchKind::DeactN;
    config.nodes = 2;
    config.coresPerNode = 1;
    config.prefault = false;
    System system(config);
    auto& broker = system.broker();

    // The "job": 64 pages owned by node 0, mapped at NPA 0x100000+.
    const std::uint64_t job_npa_base = 0x100000;
    const std::size_t job_pages = 64;
    for (std::size_t i = 0; i < job_pages; ++i) {
        std::uint64_t fam_page =
            broker.allocPage(broker.logicalIdOf(0), Perms{});
        broker.famTableOf(0).map(job_npa_base + i, fam_page, Perms{});
        // The destination will use the same NPA layout after migration.
    }

    std::cout << "before migration:\n";
    std::cout << "  node0 access: "
              << (tryAccess(system, 0, job_npa_base) ? "GRANTED"
                                                     : "DENIED")
              << " (expected GRANTED)\n";

    // ---- naive migration: rewrite ACM ownership -----------------------
    auto report = broker.migrateJob(0, 1, /*use_logical_ids=*/false);
    std::cout << "\nnaive migration (ACM rewrite):\n";
    std::cout << "  pages moved : " << report.pagesMoved << "\n";
    std::cout << "  ACM writes  : " << report.acmWrites
              << "  <- O(pages) FAM writes\n";
    std::cout << "  mappings    : " << report.mappingsMoved << "\n";
    std::cout << "  node1 access: "
              << (tryAccess(system, 1, job_npa_base) ? "GRANTED"
                                                     : "DENIED")
              << " (expected GRANTED — node 1 now owns the job)\n";
    // Node 0's stale NPA no longer maps to the job's data: the STU
    // finds no mapping, takes a system-level fault, and the broker
    // hands node 0 a *fresh* page — the job's pages stay private.
    double faults_before = system.sim().stats().get("broker.faults");
    bool stale = tryAccess(system, 0, job_npa_base);
    double faults_after = system.sim().stats().get("broker.faults");
    std::uint64_t stale_fam =
        broker.famTableOf(0).lookup(job_npa_base)->valuePage;
    std::cout << "  node0 stale access: "
              << (stale ? "GRANTED" : "DENIED") << " but re-faulted ("
              << faults_after - faults_before
              << " broker fault) onto fresh FAM page " << stale_fam
              << " — not the job's data\n";
    std::cout << "  translator shootdowns: "
              << system.sim().stats().get(
                     "node0.translator.invalidations") +
                     system.sim().stats().get(
                         "node1.translator.invalidations")
              << " (both nodes' unverified caches cleared)\n";

    // ---- logical-node-id migration back to node 0 ---------------------
    auto report2 = broker.migrateJob(1, 0, /*use_logical_ids=*/true);
    std::cout << "\nlogical-node-id migration (the paper's scheme):\n";
    std::cout << "  pages moved : " << report2.pagesMoved << "\n";
    std::cout << "  ACM writes  : " << report2.acmWrites
              << "  <- zero, the logical id follows the job\n";
    std::cout << "  node0 access: "
              << (tryAccess(system, 0, job_npa_base) ? "GRANTED"
                                                     : "DENIED")
              << " (expected GRANTED)\n";
    std::cout << "  node1 access: "
              << (tryAccess(system, 1, job_npa_base) ? "GRANTED"
                                                     : "DENIED")
              << " (expected DENIED)\n";

    bool ok = report.acmWrites == job_pages && report2.acmWrites == 0;
    std::cout << "\n"
              << (ok ? "migration cost model matches §VI: logical ids "
                       "eliminate the ACM rewrite"
                     : "UNEXPECTED migration cost")
              << "\n";
    return ok ? 0 : 1;
}
