/**
 * @file
 * famsim_cli — the general-purpose driver (like SST's `sst` binary).
 *
 * Runs one configuration and prints the headline metrics, optionally
 * the full statistics dump, and optionally records or replays a
 * workload trace.
 *
 * Usage:
 *   famsim_cli [options]
 *     --bench <name>       benchmark profile (default mcf; see --list)
 *     --arch <a>           efam | ifam | deactw | deactn (default deactn)
 *     --instr <n>          instructions per core (default 300000)
 *     --nodes <n>          compute nodes sharing the FAM (default 1)
 *     --cores <n>          cores per node (default 4)
 *     --stu-entries <n>    STU cache entries (default 1024)
 *     --stu-assoc <n>      STU associativity (default 8)
 *     --acm-bits <n>       ACM width: 8|16|32 (default 16)
 *     --pairs <n>          DeACT-N (tag,ACM) pairs per way (default 2)
 *     --fabric-ns <n>      one-way fabric latency in ns (default 450)
 *     --seed <n>           RNG seed (default 1)
 *     --warmup <f>         warmup fraction (default 0.3)
 *     --jobs <n>           tenant jobs interleaved on every core
 *                          (default 1 = single-tenant; max 64)
 *     --skew <f>           Zipfian tenant-popularity skew (default 0;
 *                          needs --jobs >= 2)
 *     --churn <n>          mean tenant residency in ops before a job
 *                          departs/arrives (default 0 = no churn;
 *                          needs --jobs >= 2)
 *     --threads <n>        simulation kernel: 0 = serial reference
 *                          (default), >= 1 = parallel conservative-
 *                          window kernel with n worker threads.
 *                          Results are byte-identical for every n >= 1;
 *                          the FAMSIM_THREADS environment variable
 *                          supplies the default
 *     --record <file>      record the workload to a trace file and exit
 *                          (.gz = gzip, .txt = text, else binary)
 *     --replay <file>      drive every core from a trace file (each
 *                          core replays its own cursor); restrict the
 *                          target with --replay-node / --replay-core,
 *                          the other cores keep the synthetic workload
 *     --replay-node <n>    only node n replays (default: all nodes)
 *     --replay-core <n>    only core n of each replaying node replays
 *     --record-scenario <name>  run a registered scenario with every
 *                          core recording its stream into the
 *                          directory given by --record (one trace per
 *                          core), print the scenario JSON
 *     --replay-scenario <name>  run a registered scenario with every
 *                          core replaying its trace from the directory
 *                          given by --replay, print the scenario JSON
 *                          (byte-identical to --scenario <name> when
 *                          the directory was written by
 *                          --record-scenario <name>)
 *     --trace-out <file>   write a Chrome trace_event JSON timeline of
 *                          the run (load in Perfetto / chrome://tracing;
 *                          byte-identical for every --threads value on
 *                          warmup-free configurations). The FAMSIM_TRACE
 *                          environment variable supplies the default
 *     --trace-filter <c>   packet | psim | all (default all): restrict
 *                          the trace to packet-lifecycle spans or
 *                          parallel-kernel window events
 *     --profile            attach the wall-clock profiler and export a
 *                          "profile" block (host timings, explicitly
 *                          nondeterministic) alongside the stats; the
 *                          FAMSIM_PROFILE environment variable supplies
 *                          the default
 *     --stats              dump every statistic after the run
 *     --csv                dump statistics as CSV
 *     --json               dump statistics as JSON
 *     --list               list available benchmark profiles
 *     --scenario <name>    run a registered paper scenario, print JSON
 *     --list-scenarios     list registered paper scenarios, grouped by
 *                          figure/family (multitenant.* etc.)
 *     --sweep <name>       run a sensitivity sweep (Fig. 13-16); with
 *                          --json print the whole curve as one JSON
 *                          object, else a summary table
 *     --sweep-jobs <n>     host workers fanning the sweep's points out
 *                          in parallel (SweepExecutor; default 1; the
 *                          FAMSIM_SWEEP_JOBS environment variable
 *                          supplies the default). Output is
 *                          byte-identical for every n; ignored without
 *                          --sweep
 *     --list-sweeps        list registered sensitivity sweeps
 *     --help               print usage and exit 0
 */

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "harness/executor.hh"
#include "harness/figure_report.hh"
#include "harness/runner.hh"
#include "harness/scenario.hh"
#include "harness/sweep.hh"
#include "sim/logging.hh"
#include "sim/profiler.hh"
#include "sim/trace_sink.hh"
#include "workload/trace.hh"

using namespace famsim;

namespace {

void
printUsage(std::ostream& os, const char* argv0)
{
    os << "usage: " << argv0
       << " [--bench <name>] [--arch efam|ifam|deactw|deactn]\n"
          "  [--instr n] [--nodes n] [--cores n] [--stu-entries n]\n"
          "  [--stu-assoc n] [--acm-bits 8|16|32] [--pairs 1..3]\n"
          "  [--fabric-ns n] [--seed n] [--warmup f] [--threads n]\n"
          "  [--jobs n] [--skew f] [--churn n]\n"
          "  [--record file] [--replay file] [--replay-node n]\n"
          "  [--replay-core n] [--record-scenario name]\n"
          "  [--replay-scenario name] [--stats] [--csv] [--json]\n"
          "  [--list] [--scenario name] [--list-scenarios]\n"
          "  [--sweep name] [--sweep-jobs n] [--list-sweeps]\n"
          "  [--trace-out file] [--trace-filter packet|psim|all]\n"
          "  [--profile] [--help]\n";
}

[[noreturn]] void
usage(const char* argv0)
{
    printUsage(std::cerr, argv0);
    std::exit(2);
}

ArchKind
parseArch(const std::string& name)
{
    if (name == "efam") return ArchKind::EFam;
    if (name == "ifam") return ArchKind::IFam;
    if (name == "deactw") return ArchKind::DeactW;
    if (name == "deactn") return ArchKind::DeactN;
    FAMSIM_FATAL("unknown architecture '", name, "'");
}

/**
 * Checked numeric flag parsing. Bare std::stoul would abort with an
 * uncaught exception on `--threads x` and silently accept trailing
 * garbage (`--threads 4x`); these validate the whole token and exit
 * with the usage error (code 2) instead.
 */
[[noreturn]] void
badValue(const char* argv0, const char* flag, const std::string& text,
         const char* expected)
{
    std::cerr << "invalid value '" << text << "' for " << flag
              << " (expected " << expected << ")\n";
    usage(argv0);
}

std::uint64_t
parseUint(const char* argv0, const char* flag, const std::string& text,
          std::uint64_t max = std::numeric_limits<std::uint64_t>::max())
{
    // strtoull accepts leading whitespace, '+', and even '-' (with
    // wraparound); a flag value must be plain digits.
    bool digits_only = !text.empty();
    for (char c : text)
        digits_only = digits_only && c >= '0' && c <= '9';
    if (!digits_only)
        badValue(argv0, flag, text, "an unsigned integer");
    errno = 0;
    char* end = nullptr;
    unsigned long long v = std::strtoull(text.c_str(), &end, 10);
    if (errno == ERANGE || end != text.c_str() + text.size() || v > max)
        badValue(argv0, flag, text, "an unsigned integer in range");
    return v;
}

double
parseDouble(const char* argv0, const char* flag, const std::string& text,
            double min, double max)
{
    if (text.empty() ||
        (std::isspace(static_cast<unsigned char>(text.front())) != 0))
        badValue(argv0, flag, text, "a number");
    errno = 0;
    char* end = nullptr;
    double v = std::strtod(text.c_str(), &end);
    // strtod happily parses "nan"/"inf"; a non-finite fraction would
    // silently disable warmup downstream, so reject it here.
    if (errno == ERANGE || end != text.c_str() + text.size() ||
        !std::isfinite(v) || v < min || v > max)
        badValue(argv0, flag, text, "a number in range");
    return v;
}

unsigned
parseTraceFilter(const char* argv0, const std::string& text)
{
    if (text == "packet") return TraceSink::kPacket;
    if (text == "psim") return TraceSink::kPsim;
    if (text == "all") return TraceSink::kAll;
    badValue(argv0, "--trace-filter", text, "packet|psim|all");
}

/** Flush @p sink to @p path; exits 1 on any file-system failure. */
void
writeTraceFile(const TraceSink& sink, const std::string& path)
{
    std::ofstream out(path, std::ios::binary);
    if (!out) {
        std::cerr << "cannot open trace file '" << path << "'\n";
        std::exit(1);
    }
    sink.write(out);
    out.flush();
    if (!out) {
        std::cerr << "failed writing trace to '" << path << "'\n";
        std::exit(1);
    }
    std::cerr << "wrote " << sink.size() << " trace events to " << path
              << "\n";
}

} // namespace

int
main(int argc, char** argv)
{
    std::string bench = "mcf";
    std::string arch_name = "deactn";
    std::string record_path, replay_path;
    std::string record_scenario, replay_scenario;
    std::optional<unsigned> replay_node, replay_core;
    std::uint64_t instr = 300000;
    unsigned nodes = 1, cores = 4;
    std::size_t stu_entries = 1024, stu_assoc = 8;
    unsigned acm_bits = 16, pairs = 2;
    std::uint64_t fabric_ns = 450, seed = 1;
    double warmup = 0.3;
    unsigned jobs = 1;
    double skew = 0.0;
    std::uint64_t churn = 0;
    unsigned threads = threadsFromEnv(0);
    unsigned sweep_jobs = sweepJobsFromEnv(1);
    bool sweep_jobs_given = false;
    std::string trace_out = traceFromEnv();
    unsigned trace_filter = TraceSink::kAll;
    bool want_profile = profileFromEnv();
    bool dump_stats = false, dump_csv = false, dump_json = false;
    bool show_help = false, list_profiles = false, list_scenarios = false;
    bool list_sweeps = false;
    std::string scenario_name, sweep_name;

    // Parse every argument before dispatching any action, so a typo
    // after an action flag is still diagnosed.
    for (int i = 1; i < argc; ++i) {
        auto need = [&](const char* flag) -> std::string {
            if (i + 1 >= argc) {
                std::cerr << flag << " needs a value\n";
                usage(argv[0]);
            }
            return argv[++i];
        };
        constexpr std::uint64_t kUnsignedMax =
            std::numeric_limits<unsigned>::max();
        auto uintArg = [&](const char* flag,
                           std::uint64_t max =
                               std::numeric_limits<std::uint64_t>::max()) {
            return parseUint(argv[0], flag, need(flag), max);
        };
        std::string arg = argv[i];
        if (arg == "--bench") bench = need("--bench");
        else if (arg == "--arch") arch_name = need("--arch");
        else if (arg == "--instr") instr = uintArg("--instr");
        else if (arg == "--nodes")
            nodes = static_cast<unsigned>(uintArg("--nodes", kUnsignedMax));
        else if (arg == "--cores")
            cores = static_cast<unsigned>(uintArg("--cores", kUnsignedMax));
        else if (arg == "--stu-entries")
            stu_entries = uintArg("--stu-entries");
        else if (arg == "--stu-assoc")
            stu_assoc = uintArg("--stu-assoc");
        else if (arg == "--acm-bits")
            acm_bits = static_cast<unsigned>(
                uintArg("--acm-bits", kUnsignedMax));
        else if (arg == "--pairs")
            pairs = static_cast<unsigned>(uintArg("--pairs", kUnsignedMax));
        else if (arg == "--fabric-ns")
            fabric_ns = uintArg("--fabric-ns");
        else if (arg == "--seed") seed = uintArg("--seed");
        else if (arg == "--warmup")
            warmup = parseDouble(argv[0], "--warmup", need("--warmup"),
                                 0.0, 1.0);
        else if (arg == "--jobs") {
            jobs = static_cast<unsigned>(uintArg("--jobs", kMaxJobs));
            if (jobs == 0)
                badValue(argv[0], "--jobs", "0", "1 to 64 tenant jobs");
        }
        else if (arg == "--skew")
            skew = parseDouble(argv[0], "--skew", need("--skew"),
                               0.0, 10.0);
        else if (arg == "--churn") churn = uintArg("--churn");
        else if (arg == "--threads")
            threads = static_cast<unsigned>(
                uintArg("--threads", kUnsignedMax));
        else if (arg == "--record") record_path = need("--record");
        else if (arg == "--replay") replay_path = need("--replay");
        else if (arg == "--replay-node")
            replay_node = static_cast<unsigned>(
                uintArg("--replay-node", kUnsignedMax));
        else if (arg == "--replay-core")
            replay_core = static_cast<unsigned>(
                uintArg("--replay-core", kUnsignedMax));
        else if (arg == "--record-scenario")
            record_scenario = need("--record-scenario");
        else if (arg == "--replay-scenario")
            replay_scenario = need("--replay-scenario");
        else if (arg == "--stats") dump_stats = true;
        else if (arg == "--csv") dump_csv = true;
        else if (arg == "--json") dump_json = true;
        else if (arg == "--help" || arg == "-h") show_help = true;
        else if (arg == "--scenario")
            scenario_name = need("--scenario");
        else if (arg == "--list-scenarios") list_scenarios = true;
        else if (arg == "--sweep") sweep_name = need("--sweep");
        else if (arg == "--sweep-jobs") {
            // Same cap as FAMSIM_SWEEP_JOBS clamping; 0 workers is
            // meaningless (the caller always participates).
            sweep_jobs = static_cast<unsigned>(
                uintArg("--sweep-jobs", 1024));
            if (sweep_jobs == 0)
                badValue(argv[0], "--sweep-jobs", "0",
                         "1 to 1024 sweep workers");
            sweep_jobs_given = true;
        }
        else if (arg == "--trace-out") trace_out = need("--trace-out");
        else if (arg == "--trace-filter")
            trace_filter =
                parseTraceFilter(argv[0], need("--trace-filter"));
        else if (arg == "--profile") want_profile = true;
        else if (arg == "--list-sweeps") list_sweeps = true;
        else if (arg == "--list") list_profiles = true;
        else {
            std::cerr << "unknown option '" << arg << "'\n";
            usage(argv[0]);
        }
    }

    if (show_help) {
        printUsage(std::cout, argv[0]);
        return 0;
    }
    if (list_scenarios) {
        // Grouped by figure/family ("fig09_acm_hit_rate", "multitenant",
        // "trace_replay", ...): names sort family-first, so one pass
        // with a header whenever the figure changes keeps each family's
        // members together.
        auto list_grouped = [](const ScenarioRegistry& reg) {
            std::string figure;
            for (const auto& name : reg.names()) {
                const Scenario& s = reg.byName(name);
                if (s.figure != figure) {
                    figure = s.figure;
                    std::cout << figure << ":\n";
                }
                std::cout << "  " << name << "\t" << s.description
                          << "\n";
            }
        };
        list_grouped(ScenarioRegistry::paper());
        // Sweep points are runnable scenarios too ("<sweep>.<label>").
        list_grouped(SweepRegistry::paperPoints());
        return 0;
    }
    if (list_sweeps) {
        for (const auto& name : SweepRegistry::paper().names()) {
            const Sweep& sweep = SweepRegistry::paper().byName(name);
            std::cout << name << "\t" << sweep.description << "\n";
        }
        return 0;
    }
    if (list_profiles) {
        for (const auto& p : profiles::all()) {
            std::cout << p.name << "\t" << p.suite << "\tMPKI "
                      << p.paperMpki << "\n";
        }
        return 0;
    }
    const int registry_modes =
        static_cast<int>(!scenario_name.empty()) +
        static_cast<int>(!sweep_name.empty()) +
        static_cast<int>(!record_scenario.empty()) +
        static_cast<int>(!replay_scenario.empty());
    if (registry_modes > 1) {
        std::cerr << "--scenario, --sweep, --record-scenario and "
                     "--replay-scenario are mutually exclusive\n";
        return 2;
    }
    if (!record_scenario.empty() && record_path.empty()) {
        std::cerr << "--record-scenario needs --record <dir> for the "
                     "per-core trace files\n";
        return 2;
    }
    if (!replay_scenario.empty() && replay_path.empty()) {
        std::cerr << "--replay-scenario needs --replay <dir> holding the "
                     "per-core trace files\n";
        return 2;
    }
    if (record_scenario.empty() && replay_scenario.empty() &&
        !record_path.empty() && !replay_path.empty()) {
        std::cerr << "--record and --replay are mutually exclusive\n";
        return 2;
    }
    if ((replay_node || replay_core) && replay_path.empty()) {
        std::cerr << "--replay-node/--replay-core need --replay <file>\n";
        return 2;
    }
    if (sweep_jobs_given && sweep_name.empty()) {
        // Point-level fan-out only exists in --sweep mode; every other
        // mode runs exactly one configuration.
        warn("--sweep-jobs is ignored without --sweep");
    }
    if ((!trace_out.empty() || want_profile) &&
        (!sweep_name.empty() || !record_scenario.empty() ||
         !replay_scenario.empty())) {
        // Tracing/profiling attach to exactly one System run; the
        // sweep fans out many and the capture/replay modes pin their
        // own export format.
        warn("--trace-out/--profile are ignored in --sweep/"
             "--record-scenario/--replay-scenario mode");
        trace_out.clear();
        want_profile = false;
    }
    if (registry_modes == 1) {
        // Scenario, sweep and scenario-capture/-replay runs use their
        // registry-pinned configurations; accepting a config flag
        // silently would let the user believe they changed what was
        // measured. --stats and --csv only apply to ad-hoc runs, so
        // they are ignored too. --record/--replay are the trace
        // directory of --record-scenario/--replay-scenario and only
        // then not ignored.
        std::vector<const char*> pinned = {
            "--bench", "--arch", "--instr", "--nodes", "--cores",
            "--stu-entries", "--stu-assoc", "--acm-bits", "--pairs",
            "--fabric-ns", "--seed", "--warmup", "--jobs", "--skew",
            "--churn", "--replay-node", "--replay-core", "--stats",
            "--csv",
        };
        if (record_scenario.empty())
            pinned.push_back("--record");
        if (replay_scenario.empty())
            pinned.push_back("--replay");
        for (int i = 1; i < argc; ++i) {
            for (const char* flag : pinned) {
                if (std::strcmp(argv[i], flag) == 0) {
                    warn(flag, " is ignored; --scenario/--sweep/"
                               "--record-scenario/--replay-scenario "
                               "runs use their pinned configuration");
                }
            }
        }
    }
    if (!record_scenario.empty() || !replay_scenario.empty()) {
        const std::string& name = record_scenario.empty()
                                      ? replay_scenario
                                      : record_scenario;
        const ScenarioRegistry& reg = ScenarioRegistry::paper();
        const ScenarioRegistry& points = SweepRegistry::paperPoints();
        if (!reg.has(name) && !points.has(name)) {
            std::cerr << "unknown scenario '" << name
                      << "' (try --list-scenarios)\n";
            return 2;
        }
        const Scenario& scenario =
            reg.has(name) ? reg.byName(name) : points.byName(name);
        if (!record_scenario.empty()) {
            std::cout << recordScenarioTraces(scenario, record_path,
                                              TraceFormat::Binary,
                                              threads);
        } else {
            std::cout << replayScenarioJson(scenario, replay_path,
                                            threads);
        }
        return 0;
    }
    if (!scenario_name.empty()) {
        // Sweep points ("fig16_num_nodes.n4") run exactly like the
        // headline scenarios.
        const ScenarioRegistry& reg = ScenarioRegistry::paper();
        const ScenarioRegistry& points = SweepRegistry::paperPoints();
        if (!reg.has(scenario_name) && !points.has(scenario_name)) {
            std::cerr << "unknown scenario '" << scenario_name
                      << "' (try --list-scenarios)\n";
            return 2;
        }
        const Scenario& scenario = reg.has(scenario_name)
                                       ? reg.byName(scenario_name)
                                       : points.byName(scenario_name);
        if (!trace_out.empty() || want_profile) {
            // Observed run: construct the System here so the sink /
            // profiler can attach before writeScenarioJson runs it.
            // The stats portion of the export stays byte-identical to
            // the plain path (observation never perturbs simulation).
            ScopedQuietLogs quiet;
            System system(scenario.config);
            TraceSink sink(system.traceLanes(), trace_filter);
            Profiler prof;
            if (!trace_out.empty())
                system.attachTrace(&sink);
            if (want_profile)
                system.attachProfiler(&prof);
            writeScenarioJson(std::cout, scenario, system, threads);
            std::cout << "\n";
            if (!trace_out.empty())
                writeTraceFile(sink, trace_out);
            return 0;
        }
        // Streamed: the export goes straight to stdout as the stats
        // registry serializes, never materializing the JSON in memory.
        writeScenarioJson(std::cout, scenario, threads);
        std::cout << "\n";
        return 0;
    }
    if (!sweep_name.empty()) {
        const SweepRegistry& sweeps = SweepRegistry::paper();
        if (!sweeps.has(sweep_name)) {
            std::cerr << "unknown sweep '" << sweep_name
                      << "' (try --list-sweeps)\n";
            return 2;
        }
        const Sweep& sweep = sweeps.byName(sweep_name);
        if (dump_json) {
            writeSweepJson(std::cout, sweep, threads, sweep_jobs);
            return 0;
        }
        ScopedQuietLogs quiet_sweep;
        FigureReport report(sweep.name, sweep.description,
                            sweep.axis.name,
                            {"ipc", "fam_at%", "at_hit%", "acm_hit%"});
        const std::vector<Scenario> points = sweep.expand();
        std::vector<SystemConfig> configs;
        configs.reserve(points.size());
        for (const Scenario& point : points) {
            std::cerr << "sweep: " << point.name << "...\n";
            configs.push_back(point.config);
        }
        SweepExecutor executor(sweep_jobs);
        const std::vector<RunResult> results =
            executor.runResults(configs, threads);
        for (std::size_t i = 0; i < points.size(); ++i) {
            const RunResult& r = results[i];
            report.addRow(points[i].name.substr(sweep.name.size() + 1),
                          {r.ipc, r.famAtPercent,
                           100.0 * r.translationHitRate,
                           100.0 * r.acmHitRate});
        }
        // Host wall clock per point, stderr only: the table on stdout
        // stays byte-identical across machines and job counts.
        const std::vector<double>& seconds = executor.pointSeconds();
        for (std::size_t i = 0; i < points.size(); ++i) {
            std::cerr << "sweep: " << points[i].name << " took "
                      << seconds[i] << " s\n";
        }
        report.printTable(std::cout);
        return 0;
    }

    StreamProfile profile = profiles::byName(bench);

    if (!record_path.empty()) {
        // Ad-hoc recording samples one synthetic stream; it never
        // builds a System, so System-shaping flags have no effect on
        // the trace — warn like the pinned-scenario modes do.
        static const char* kNoSystemFlags[] = {
            "--arch", "--nodes", "--cores", "--stu-entries",
            "--stu-assoc", "--acm-bits", "--pairs", "--fabric-ns",
            "--warmup", "--threads", "--jobs", "--skew", "--churn",
            "--stats", "--csv", "--json", "--trace-out", "--profile",
        };
        for (int i = 1; i < argc; ++i) {
            for (const char* flag : kNoSystemFlags) {
                if (std::strcmp(argv[i], flag) == 0) {
                    warn(flag, " is ignored; --record samples the "
                               "workload stream without building a "
                               "system");
                }
            }
        }
        StreamGen gen(profile, kWorkloadVaBase, seed, 0);
        TraceWriter writer(record_path);
        writer.setFootprint(gen.footprintPages());
        writer.record(gen, instr);
        writer.close();
        std::cout << "recorded " << writer.written() << " ops ("
                  << toString(writer.format()) << ") to " << record_path
                  << "\n";
        return 0;
    }

    SystemConfig config = makeConfig(profile, parseArch(arch_name),
                                     instr);
    config.nodes = nodes;
    config.coresPerNode = cores;
    config.seed = seed;
    config.stu.entries = stu_entries;
    config.stu.assoc = stu_assoc;
    config.stu.acmBits = acm_bits;
    config.stu.pairsPerWay = pairs;
    config.fabric.latency = fabric_ns * kNanosecond;
    config.warmupFraction = warmup;
    if (jobs < 2 && (skew > 0.0 || churn > 0)) {
        warn("--skew/--churn are ignored without --jobs >= 2 "
             "(single-tenant run)");
    }
    config.tenancy.jobs = jobs;
    config.tenancy.zipfSkew = skew;
    config.tenancy.churnMeanOps = churn;

    if (!replay_path.empty()) {
        if (replay_node && *replay_node >= nodes) {
            std::cerr << "--replay-node " << *replay_node
                      << " out of range (have " << nodes << " nodes)\n";
            return 2;
        }
        if (replay_core && *replay_core >= cores) {
            std::cerr << "--replay-core " << *replay_core
                      << " out of range (have " << cores
                      << " cores per node)\n";
            return 2;
        }
        {
            // Open once up front so a bad trace is diagnosed before the
            // (possibly long) system build, and to print the summary.
            auto probe = TraceReader::open(replay_path);
            std::cerr << "replaying " << probe->size() << " ops ("
                      << toString(probe->format()) << ") covering "
                      << probe->footprintPages().size()
                      << " pages on "
                      << (replay_node
                              ? "node " + std::to_string(*replay_node)
                              : std::string("every node"))
                      << ", "
                      << (replay_core
                              ? "core " + std::to_string(*replay_core)
                              : std::string("every core"))
                      << "\n";
        }
        // Each selected core gets its own reader (own cursor); the
        // rest fall back to the synthetic workload via nullptr.
        config.workloadFactory =
            [replay_path, replay_node, replay_core](
                unsigned node,
                unsigned core) -> std::unique_ptr<WorkloadGen> {
            if (replay_node && *replay_node != node) return nullptr;
            if (replay_core && *replay_core != core) return nullptr;
            return TraceReader::open(replay_path);
        };
    }

    ScopedQuietLogs quiet;
    System system(config);
    TraceSink sink(system.traceLanes(), trace_filter);
    Profiler prof;
    if (!trace_out.empty())
        system.attachTrace(&sink);
    if (want_profile)
        system.attachProfiler(&prof);

    system.run(threads);

    // In --json mode stdout carries only the JSON object (pipeable to
    // jq); the human summary goes to stderr instead.
    std::ostream& summary = dump_json ? std::cerr : std::cout;
    summary << "bench=" << bench << " arch=" << arch_name
            << " nodes=" << nodes << " cores=" << cores << "\n";
    summary << "ipc                  = " << system.ipc() << "\n";
    summary << "fam_at_percent       = " << system.famAtPercent() << "\n";
    summary << "translation_hit_rate = " << system.translationHitRate()
            << "\n";
    summary << "acm_hit_rate         = " << system.acmHitRate() << "\n";
    summary << "mpki                 = " << system.mpki() << "\n";
    if (dump_stats)
        system.sim().stats().dump(std::cout);
    if (dump_csv)
        system.sim().stats().dumpCsv(std::cout);
    if (dump_json) {
        if (want_profile) {
            // Wrapped so the profile rides in the same JSON document;
            // plain --json output is unchanged when --profile is off.
            std::cout << "{\n  \"stats\": ";
            system.sim().stats().dumpJson(std::cout, 2);
            std::cout << ",\n  \"profile\": ";
            prof.writeJson(std::cout, 2);
            std::cout << "\n}\n";
        } else {
            system.sim().stats().dumpJson(std::cout);
            std::cout << "\n";
        }
    } else if (want_profile) {
        std::cout << "profile: ";
        prof.writeJson(std::cout);
        std::cout << "\n";
    }
    if (!trace_out.empty())
        writeTraceFile(sink, trace_out);
    return 0;
}
