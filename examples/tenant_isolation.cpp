/**
 * @file
 * Multi-tenant isolation example (§II-A threat model).
 *
 * Node 1 is "malicious": its (buggy or compromised) OS maps arbitrary
 * FAM pages — including node 0's data — into its own address space,
 * and its FAM translator even presents pre-translated, V=1 requests.
 * The example shows that system-level verification at the STU denies
 * every such access in both I-FAM and DeACT, while node 0's own
 * accesses keep working: exactly the Table I security column.
 */

#include <iostream>

#include "arch/system.hh"

using namespace famsim;

namespace {

struct Attempt {
    const char* what;
    bool granted;
};

bool
sendRaw(System& system, unsigned node, std::uint64_t fam_page,
        bool verified, std::uint64_t npa_page, MemOp op)
{
    bool granted = false;
    auto pkt = makePacket(static_cast<NodeId>(node), 0, op,
                          PacketKind::Data);
    pkt->logicalNode =
        system.broker().logicalIdOf(static_cast<NodeId>(node));
    pkt->npa = NPAddr(npa_page * kPageSize);
    if (verified) {
        // Forged "already translated" request (DeACT V flag set).
        pkt->fam = FamAddr(fam_page * kPageSize);
        pkt->hasFam = true;
        pkt->verified = true;
    }
    pkt->onDone = [&](Packet& p) { granted = p.accessGranted; };
    system.node(node).stu->handleFromNode(pkt);
    system.sim().run();
    return granted;
}

} // namespace

int
main()
{
    ScopedQuietLogs quiet;

    for (ArchKind arch : {ArchKind::IFam, ArchKind::DeactN}) {
        SystemConfig config;
        config.arch = arch;
        config.nodes = 2;
        config.coresPerNode = 1;
        config.prefault = false;
        System system(config);
        auto& broker = system.broker();

        // Victim data: a page owned by node 0.
        std::uint64_t victim_fam =
            broker.allocPage(broker.logicalIdOf(0), Perms{});
        broker.famTableOf(0).map(0x100000, victim_fam, Perms{});

        // Attack 1: node 1's OS maps the victim page into its own
        // system-level table (a compromised mapping).
        broker.famTableOf(1).map(0x200000, victim_fam, Perms{});

        std::cout << "=== " << toString(arch) << " ===\n";

        Attempt attempts[] = {
            {"victim reads own page        ",
             sendRaw(system, 0, victim_fam, arch != ArchKind::IFam,
                     0x100000, MemOp::Read)},
            {"attacker read via mapping    ",
             sendRaw(system, 1, victim_fam, false, 0x200000,
                     MemOp::Read)},
            {"attacker write via mapping   ",
             sendRaw(system, 1, victim_fam, false, 0x200000,
                     MemOp::Write)},
        };
        bool forged_granted = false;
        if (arch == ArchKind::DeactN) {
            // Attack 2 (DeACT only): forge a V=1 packet with the
            // victim's FAM address — unverified caching must not
            // bypass access control.
            forged_granted = sendRaw(system, 1, victim_fam, true,
                                     0x200000, MemOp::Read);
        }

        bool ok = attempts[0].granted && !attempts[1].granted &&
                  !attempts[2].granted && !forged_granted;
        for (const auto& a : attempts) {
            std::cout << "  " << a.what
                      << (a.granted ? "GRANTED" : "DENIED") << "\n";
        }
        if (arch == ArchKind::DeactN) {
            std::cout << "  attacker forged V=1 request  "
                      << (forged_granted ? "GRANTED" : "DENIED") << "\n";
        }
        std::cout << "  denials recorded at attacker STU: "
                  << system.sim().stats().get("node1.stu.denials")
                  << "\n";
        std::cout << (ok ? "  isolation holds\n"
                         : "  ISOLATION VIOLATED\n");
        if (!ok)
            return 1;
    }

    std::cout << "\nE-FAM, by contrast, performs no system-level "
                 "vetting: the same compromised mapping would reach "
                 "the victim's data (Table I: E-FAM insecure).\n";
    return 0;
}
