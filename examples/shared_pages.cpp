/**
 * @file
 * Shared-pages example (§III-A, §VI "Shared Pages").
 *
 * Two nodes share a 1 GB region in the FAM with *mixed* permissions:
 * node 0 may read and write, node 1 may only read. The example drives
 * accesses through the STU and shows the bitmap checks doing their
 * job: node 0's writes succeed, node 1's reads succeed, node 1's
 * writes are denied, and an unrelated node 2 is denied entirely.
 */

#include <iostream>

#include "arch/system.hh"

using namespace famsim;

namespace {

/** Send one access through a node's STU and report the verdict. */
bool
tryAccess(System& system, unsigned node, std::uint64_t npa_page,
          MemOp op)
{
    bool granted = false;
    auto pkt = makePacket(static_cast<NodeId>(node), 0, op,
                          PacketKind::Data);
    pkt->logicalNode =
        system.broker().logicalIdOf(static_cast<NodeId>(node));
    pkt->npa = NPAddr(npa_page * kPageSize);
    pkt->onDone = [&](Packet& p) { granted = p.accessGranted; };
    system.node(node).stu->handleFromNode(pkt);
    system.sim().run();
    return granted;
}

} // namespace

int
main()
{
    ScopedQuietLogs quiet;

    SystemConfig config;
    config.arch = ArchKind::IFam; // bitmap checks exist in I-FAM too
    config.nodes = 3;
    config.coresPerNode = 1;
    config.prefault = false;
    System system(config);

    // The broker reserves a shared 1 GB region: node 0 gets RW,
    // node 1 read-only; node 2 gets nothing.
    std::uint64_t region = system.broker().createSharedRegion(
        {{0, Perms{true, true, false}}, {1, Perms{true, false, false}}});
    std::cout << "shared 1 GB region index: " << region << "\n";

    // Node 0 maps a page of it at NPA page 0x100000; node 1 attaches
    // the same FAM page at its own NPA page 0x200000.
    std::uint64_t fam_page =
        system.broker().mapSharedPage(region, 0, 0x100000);
    system.broker().attachSharedPage(fam_page, 1, 0x200000);
    // Node 2 even *maps* it (e.g. via a malicious broker request
    // replay) — the bitmap still denies it.
    system.broker().attachSharedPage(fam_page, 2, 0x300000);

    std::cout << "shared FAM page: " << fam_page << " (ACM owner bits = "
              << system.acm().get(fam_page).owner << " = shared marker "
              << system.acm().sharedMarker() << ")\n\n";

    struct Case {
        const char* what;
        unsigned node;
        std::uint64_t npa_page;
        MemOp op;
        bool expect;
    } cases[] = {
        {"node0 write (RW grant)   ", 0, 0x100000, MemOp::Write, true},
        {"node0 read  (RW grant)   ", 0, 0x100000, MemOp::Read, true},
        {"node1 read  (RO grant)   ", 1, 0x200000, MemOp::Read, true},
        {"node1 write (RO grant)   ", 1, 0x200000, MemOp::Write, false},
        {"node2 read  (no grant)   ", 2, 0x300000, MemOp::Read, false},
        {"node2 write (no grant)   ", 2, 0x300000, MemOp::Write, false},
    };

    bool all_ok = true;
    for (const auto& c : cases) {
        bool granted = tryAccess(system, c.node, c.npa_page, c.op);
        bool ok = granted == c.expect;
        all_ok = all_ok && ok;
        std::cout << c.what << (granted ? "GRANTED" : "DENIED ")
                  << (ok ? "  [as expected]" : "  [UNEXPECTED!]")
                  << "\n";
    }

    std::cout << "\nbitmap fetches at STU (node1): "
              << system.sim().stats().get("node1.stu.bitmap_fetches")
              << "\n";
    std::cout << (all_ok ? "all access-control checks behaved correctly"
                         : "ACCESS CONTROL VIOLATION")
              << "\n";
    return all_ok ? 0 : 1;
}
