/**
 * @file
 * Quickstart: build a single-node DeACT-N system (Table II defaults),
 * run the mcf-like workload, and print the headline metrics.
 *
 * Build and run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <iostream>

#include "harness/runner.hh"

int
main()
{
    using namespace famsim;

    // 1. Pick a workload profile (Table III) and an architecture.
    StreamProfile profile = profiles::byName("mcf");
    SystemConfig config = makeConfig(profile, ArchKind::DeactN,
                                     /*instr_limit=*/200000);

    // 2. Build and run the system.
    System system(config);
    system.run();

    // 3. Read the metrics the paper reports.
    std::cout << "benchmark            : " << profile.name << "\n";
    std::cout << "architecture         : " << toString(config.arch)
              << "\n";
    std::cout << "system IPC           : " << system.ipc() << "\n";
    std::cout << "FAM AT requests      : " << system.famAtPercent()
              << " %\n";
    std::cout << "translation hit rate : "
              << 100.0 * system.translationHitRate() << " %\n";
    std::cout << "ACM hit rate         : " << 100.0 * system.acmHitRate()
              << " %\n";
    std::cout << "LLC MPKI             : " << system.mpki()
              << " (paper: " << profile.paperMpki << ")\n";

    // 4. For comparison, the same workload on the insecure E-FAM
    //    baseline and the secure-but-slow I-FAM baseline.
    for (ArchKind arch : {ArchKind::EFam, ArchKind::IFam}) {
        RunResult r = runOne(makeConfig(profile, arch, 200000));
        std::cout << toString(arch) << " IPC            : " << r.ipc
                  << "\n";
    }
    return 0;
}
