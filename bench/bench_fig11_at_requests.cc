/**
 * @file
 * Fig. 11: percentage of address-translation requests observed at the
 * FAM for I-FAM, DeACT-W and DeACT-N. The paper reports the average
 * falling from 23.97 % (I-FAM) to 11.82 % (DeACT-W) to 1.77 %
 * (DeACT-N) of the node's requests.
 */

#include <iostream>

#include "harness/figure_report.hh"
#include "harness/runner.hh"

using namespace famsim;

int
main(int argc, char** argv)
{
    BenchOptions options = parseBenchArgs(argc, argv, 300000);
    ScopedQuietLogs quiet;

    FigureReport report("fig11_at_requests",
                        "Fig. 11: % AT requests at FAM", "bench",
                        {"I-FAM", "DeACT-W", "DeACT-N"});
    std::vector<double> means[3];
    for (const auto& profile : profiles::all()) {
        std::cerr << "fig11: " << profile.name << "...\n";
        std::vector<double> row;
        int i = 0;
        for (ArchKind arch :
             {ArchKind::IFam, ArchKind::DeactW, ArchKind::DeactN}) {
            RunResult r = runOne(
                makeConfig(profile, arch, options.instructions));
            row.push_back(r.famAtPercent);
            means[i++].push_back(r.famAtPercent);
        }
        report.addRow(profile.name, row);
    }
    report.addSummary("ifam_avg_at_percent", geomean(means[0]));
    report.addSummary("deactw_avg_at_percent", geomean(means[1]));
    report.addSummary("deactn_avg_at_percent", geomean(means[2]));
    report.addNote("paper averages: 23.97 / 11.82 / 1.77 %");
    return emitReport(report, options);
}
