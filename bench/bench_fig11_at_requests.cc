/**
 * @file
 * Fig. 11: percentage of address-translation requests observed at the
 * FAM for I-FAM, DeACT-W and DeACT-N. The paper reports the average
 * falling from 23.97 % (I-FAM) to 11.82 % (DeACT-W) to 1.77 %
 * (DeACT-N) of the node's requests.
 */

#include <iostream>

#include "harness/runner.hh"

using namespace famsim;

int
main()
{
    ScopedQuietLogs quiet;
    std::uint64_t instr = instrBudget(300000);

    SeriesTable table("Fig. 11: % AT requests at FAM", "bench",
                      {"I-FAM", "DeACT-W", "DeACT-N"});
    std::vector<double> means[3];
    for (const auto& profile : profiles::all()) {
        std::cerr << "fig11: " << profile.name << "...\n";
        std::vector<double> row;
        int i = 0;
        for (ArchKind arch :
             {ArchKind::IFam, ArchKind::DeactW, ArchKind::DeactN}) {
            RunResult r = runOne(makeConfig(profile, arch, instr));
            row.push_back(r.famAtPercent);
            means[i++].push_back(r.famAtPercent);
        }
        table.addRow(profile.name, row);
    }
    table.print(std::cout);
    std::cout << "averages: I-FAM " << geomean(means[0])
              << "%  DeACT-W " << geomean(means[1]) << "%  DeACT-N "
              << geomean(means[2])
              << "%  (paper: 23.97 / 11.82 / 1.77 %)\n";
    return 0;
}
