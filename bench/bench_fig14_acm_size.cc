/**
 * @file
 * Fig. 14: effect of the ACM entry width (8/16/32 bits) on DeACT-W
 * and DeACT-N speedup over I-FAM, plus the §V-D2 study of (tag, ACM)
 * pairs per DeACT-N way (1-3). The paper finds DeACT-W insensitive to
 * the width (contiguous caching is defeated by random allocation)
 * while DeACT-N improves with more pairs per way.
 */

#include <iostream>

#include "harness/runner.hh"

using namespace famsim;

namespace {

double
groupSpeedup(const std::vector<famsim::StreamProfile>& group,
             ArchKind arch, unsigned acm_bits, unsigned pairs,
             std::uint64_t instr)
{
    std::vector<double> speedups;
    for (const auto& profile : group) {
        SystemConfig ifam = makeConfig(profile, ArchKind::IFam, instr);
        ifam.stu.acmBits = acm_bits;
        SystemConfig test = makeConfig(profile, arch, instr);
        test.stu.acmBits = acm_bits;
        test.stu.pairsPerWay = pairs;
        double i = runOne(ifam).ipc;
        double d = runOne(test).ipc;
        speedups.push_back(i > 0 ? d / i : 0.0);
    }
    return geomean(speedups);
}

} // namespace

int
main()
{
    ScopedQuietLogs quiet;
    std::uint64_t instr = instrBudget(150000);
    auto groups = sensitivityGroups();

    std::vector<std::string> group_names;
    for (const auto& [name, group] : groups)
        group_names.push_back(name);

    SeriesTable table("Fig. 14: speedup wrt I-FAM vs ACM width",
                      "config", group_names);
    for (unsigned bits : {8u, 16u, 32u}) {
        for (ArchKind arch : {ArchKind::DeactW, ArchKind::DeactN}) {
            std::cerr << "fig14: " << toString(arch) << " " << bits
                      << "-bit ACM...\n";
            std::vector<double> row;
            for (const auto& [name, group] : groups) {
                row.push_back(groupSpeedup(group, arch, bits,
                                           /*pairs=*/2, instr));
            }
            table.addRow(std::string(toString(arch)) + "/" +
                             std::to_string(bits) + "b",
                         row);
        }
    }
    table.print(std::cout);
    std::cout << "(paper: DeACT-W nearly flat across widths — random "
                 "allocation defeats contiguous ACM caching)\n";

    SeriesTable pairs_table(
        "SV-D2: DeACT-N speedup wrt I-FAM vs (tag,ACM) pairs per way",
        "pairs", group_names);
    for (unsigned pairs : {1u, 2u, 3u}) {
        std::cerr << "fig14: pairs " << pairs << "...\n";
        std::vector<double> row;
        for (const auto& [name, group] : groups) {
            row.push_back(groupSpeedup(group, ArchKind::DeactN,
                                       /*bits=*/pairs == 2 ? 16u : 8u,
                                       pairs, instr));
        }
        pairs_table.addRow(std::to_string(pairs), row);
    }
    pairs_table.print(std::cout);
    std::cout << "(paper: more pairs per way -> more ACM reach -> "
                 "higher speedup; one pair ~ DeACT-W)\n";
    return 0;
}
