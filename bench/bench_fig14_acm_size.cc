/**
 * @file
 * Fig. 14: effect of the ACM entry width (8/16/32 bits) on DeACT-W
 * and DeACT-N speedup over I-FAM, plus the §V-D2 study of (tag, ACM)
 * pairs per DeACT-N way (1-3). The paper finds DeACT-W insensitive to
 * the width (contiguous caching is defeated by random allocation)
 * while DeACT-N improves with more pairs per way.
 */

#include <iostream>

#include "harness/executor.hh"
#include "harness/figure_report.hh"
#include "harness/runner.hh"
#include "harness/sweep.hh"

using namespace famsim;

namespace {

/**
 * One (I-FAM, test-arch) config pair per profile, in group order; the
 * flat list feeds one SweepExecutor fan-out so the whole figure runs
 * concurrently under --sweep-jobs.
 */
void
appendGroupPair(std::vector<SystemConfig>& configs,
                const std::vector<famsim::StreamProfile>& group,
                ArchKind arch, unsigned acm_bits, unsigned pairs,
                std::uint64_t instr)
{
    for (const auto& profile : group) {
        SystemConfig ifam = makeConfig(profile, ArchKind::IFam, instr);
        ifam.stu.acmBits = acm_bits;
        SystemConfig test = makeConfig(profile, arch, instr);
        test.stu.acmBits = acm_bits;
        test.stu.pairsPerWay = pairs;
        configs.push_back(std::move(ifam));
        configs.push_back(std::move(test));
    }
}

/** Consume one group's (I-FAM, test) result pairs -> geomean speedup. */
double
groupSpeedup(const std::vector<RunResult>& results, std::size_t& cursor,
             std::size_t group_size)
{
    std::vector<double> speedups;
    for (std::size_t p = 0; p < group_size; ++p) {
        double i = results[cursor++].ipc;
        double d = results[cursor++].ipc;
        speedups.push_back(i > 0 ? d / i : 0.0);
    }
    return geomean(speedups);
}

} // namespace

int
main(int argc, char** argv)
{
    BenchOptions options = parseBenchArgs(argc, argv, 150000);
    ScopedQuietLogs quiet;
    auto groups = sensitivityGroups();

    std::vector<std::string> group_names;
    for (const auto& [name, group] : groups)
        group_names.push_back(name);

    FigureReport report("fig14_acm_size",
                        "Fig. 14: speedup wrt I-FAM vs ACM width",
                        "config", group_names);
    // The axis comes from the sweep registry so the bench curve and
    // the golden-pinned fig14_acm_size sweep cover the same widths.
    const Sweep& axis_source =
        SweepRegistry::paper().byName("fig14_acm_size");

    // The companion pairs study is emitted in table mode and (as a
    // sibling fig14_acm_pairs.json) in JSON+--out mode; only plain
    // --json to stdout skips its simulations, since a single JSON
    // object can't carry a second figure.
    FigureReport pairs_report(
        "fig14_acm_pairs",
        "SV-D2: DeACT-N speedup wrt I-FAM vs (tag,ACM) pairs per way",
        "pairs", group_names);
    const bool with_pairs = !options.json || !options.outPath.empty();

    // Flatten both studies into one config list, fan it out once, then
    // reassemble rows from the slot-ordered results.
    std::vector<SystemConfig> configs;
    for (const auto& point : axis_source.axis.points) {
        auto bits = static_cast<unsigned>(point.value);
        for (ArchKind arch : {ArchKind::DeactW, ArchKind::DeactN}) {
            for (const auto& [name, group] : groups)
                appendGroupPair(configs, group, arch, bits, /*pairs=*/2,
                                options.instructions);
        }
    }
    const std::vector<unsigned> pair_counts = {1, 2, 3};
    if (with_pairs) {
        for (unsigned pairs : pair_counts) {
            for (const auto& [name, group] : groups)
                appendGroupPair(configs, group, ArchKind::DeactN,
                                /*bits=*/pairs == 2 ? 16u : 8u, pairs,
                                options.instructions);
        }
    }
    std::cerr << "fig14: " << configs.size() << " runs across "
              << options.sweepJobs << " sweep jobs...\n";
    SweepExecutor executor(options.sweepJobs);
    const std::vector<RunResult> results =
        executor.runResults(configs, 0);

    std::size_t cursor = 0;
    for (const auto& point : axis_source.axis.points) {
        auto bits = static_cast<unsigned>(point.value);
        for (ArchKind arch : {ArchKind::DeactW, ArchKind::DeactN}) {
            std::vector<double> row;
            for (const auto& [name, group] : groups)
                row.push_back(
                    groupSpeedup(results, cursor, group.size()));
            report.addRow(std::string(toString(arch)) + "/" +
                              std::to_string(bits) + "b",
                          row);
        }
    }
    report.addNote("paper: DeACT-W nearly flat across widths — random "
                   "allocation defeats contiguous ACM caching");

    if (with_pairs) {
        for (unsigned pairs : pair_counts) {
            std::vector<double> row;
            for (const auto& [name, group] : groups)
                row.push_back(
                    groupSpeedup(results, cursor, group.size()));
            pairs_report.addRow(std::to_string(pairs), row);
        }
        pairs_report.addNote("paper: more pairs per way -> more ACM "
                             "reach -> higher speedup; one pair ~ "
                             "DeACT-W");
    }
    return emitReports({&report, &pairs_report}, options);
}
