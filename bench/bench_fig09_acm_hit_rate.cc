/**
 * @file
 * Fig. 9: access-control-metadata (ACM) hit rate at the STU for
 * I-FAM, DeACT-W and DeACT-N. The paper reports ~90 % for DeACT-W on
 * most benchmarks (but < 60 % for canl/sssp/cactus) and DeACT-N
 * raising most to ~99 % (cactus from < 55 % to ~76 %).
 */

#include <iostream>

#include "harness/figure_report.hh"
#include "harness/runner.hh"

using namespace famsim;

int
main(int argc, char** argv)
{
    BenchOptions options = parseBenchArgs(argc, argv, 300000);
    ScopedQuietLogs quiet;

    FigureReport report("fig09_acm_hit_rate",
                        "Fig. 9: ACM hit rate (%)", "bench",
                        {"I-FAM", "DeACT-W", "DeACT-N"});
    for (const auto& profile : profiles::all()) {
        std::cerr << "fig09: " << profile.name << "...\n";
        std::vector<double> row;
        for (ArchKind arch :
             {ArchKind::IFam, ArchKind::DeactW, ArchKind::DeactN}) {
            RunResult r = runOne(
                makeConfig(profile, arch, options.instructions));
            row.push_back(100.0 * r.acmHitRate);
        }
        report.addRow(profile.name, row);
    }
    report.addNote("paper shape: DeACT-N > DeACT-W ~ I-FAM; "
                   "AT-sensitive benchmarks sit lowest");
    return emitReport(report, options);
}
