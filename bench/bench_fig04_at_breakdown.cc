/**
 * @file
 * Fig. 4: percentage of address-translation (AT) vs non-AT requests
 * observed at the FAM, for E-FAM and I-FAM. The paper reports e.g.
 * canl rising from 44.36 % (E-FAM) to 84.13 % (I-FAM) and cactus from
 * 1.81 % to 53.69 %.
 */

#include <iostream>

#include "harness/figure_report.hh"
#include "harness/runner.hh"

using namespace famsim;

int
main(int argc, char** argv)
{
    BenchOptions options = parseBenchArgs(argc, argv, 300000);
    ScopedQuietLogs quiet;

    FigureReport report(
        "fig04_at_breakdown",
        "Fig. 4: % AT requests at FAM (rest is non-AT data)", "bench",
        {"E-FAM AT%", "I-FAM AT%"});
    for (const auto& profile : profiles::all()) {
        std::cerr << "fig04: " << profile.name << "...\n";
        RunResult efam = runOne(
            makeConfig(profile, ArchKind::EFam, options.instructions));
        RunResult ifam = runOne(
            makeConfig(profile, ArchKind::IFam, options.instructions));
        report.addRow(profile.name,
                      {efam.famAtPercent, ifam.famAtPercent});
    }
    report.addNote("paper: E-FAM 1.8-44 %; I-FAM up to 84 %; AT share "
                   "rises sharply with indirection");
    return emitReport(report, options);
}
