/**
 * @file
 * Fig. 4: percentage of address-translation (AT) vs non-AT requests
 * observed at the FAM, for E-FAM and I-FAM. The paper reports e.g.
 * canl rising from 44.36 % (E-FAM) to 84.13 % (I-FAM) and cactus from
 * 1.81 % to 53.69 %.
 */

#include <iostream>

#include "harness/runner.hh"

using namespace famsim;

int
main()
{
    ScopedQuietLogs quiet;
    std::uint64_t instr = instrBudget(300000);

    SeriesTable table(
        "Fig. 4: % AT requests at FAM (rest is non-AT data)", "bench",
        {"E-FAM AT%", "I-FAM AT%"});
    for (const auto& profile : profiles::all()) {
        std::cerr << "fig04: " << profile.name << "...\n";
        RunResult efam = runOne(makeConfig(profile, ArchKind::EFam,
                                           instr));
        RunResult ifam = runOne(makeConfig(profile, ArchKind::IFam,
                                           instr));
        table.addRow(profile.name,
                     {efam.famAtPercent, ifam.famAtPercent});
    }
    table.print(std::cout);
    std::cout << "(paper: E-FAM 1.8-44 %; I-FAM up to 84 %; AT share "
                 "rises sharply with indirection)\n";
    return 0;
}
