/**
 * @file
 * Fig. 10: FAM address-translation hit rate in I-FAM (STU cache) and
 * DeACT (in-DRAM FAM translation cache). The paper reports > 90 % for
 * DeACT on every benchmark (canl: 46.44 % -> 95.88 %) because the
 * in-memory cache holds vastly more entries than the STU.
 */

#include <iostream>

#include "harness/runner.hh"

using namespace famsim;

int
main()
{
    ScopedQuietLogs quiet;
    std::uint64_t instr = instrBudget(300000);

    SeriesTable table("Fig. 10: FAM address-translation hit rate (%)",
                      "bench", {"I-FAM", "DeACT"});
    for (const auto& profile : profiles::all()) {
        std::cerr << "fig10: " << profile.name << "...\n";
        RunResult ifam = runOne(makeConfig(profile, ArchKind::IFam,
                                           instr));
        RunResult deact = runOne(makeConfig(profile, ArchKind::DeactN,
                                            instr));
        table.addRow(profile.name, {100.0 * ifam.translationHitRate,
                                    100.0 * deact.translationHitRate});
    }
    table.print(std::cout);
    std::cout << "(paper: DeACT > 90 % everywhere; I-FAM down to "
                 "46.44 % for canl)\n";
    return 0;
}
