/**
 * @file
 * Fig. 10: FAM address-translation hit rate in I-FAM (STU cache) and
 * DeACT (in-DRAM FAM translation cache). The paper reports > 90 % for
 * DeACT on every benchmark (canl: 46.44 % -> 95.88 %) because the
 * in-memory cache holds vastly more entries than the STU.
 */

#include <iostream>

#include "harness/figure_report.hh"
#include "harness/runner.hh"

using namespace famsim;

int
main(int argc, char** argv)
{
    BenchOptions options = parseBenchArgs(argc, argv, 300000);
    ScopedQuietLogs quiet;

    FigureReport report("fig10_at_hit_rate",
                        "Fig. 10: FAM address-translation hit rate (%)",
                        "bench", {"I-FAM", "DeACT"});
    for (const auto& profile : profiles::all()) {
        std::cerr << "fig10: " << profile.name << "...\n";
        RunResult ifam = runOne(
            makeConfig(profile, ArchKind::IFam, options.instructions));
        RunResult deact = runOne(
            makeConfig(profile, ArchKind::DeactN, options.instructions));
        report.addRow(profile.name, {100.0 * ifam.translationHitRate,
                                     100.0 * deact.translationHitRate});
    }
    report.addNote("paper: DeACT > 90 % everywhere; I-FAM down to "
                   "46.44 % for canl");
    return emitReport(report, options);
}
