/**
 * @file
 * Fig. 3: slowdown of I-FAM with respect to (insecure) E-FAM for all
 * 14 benchmarks — the motivation experiment. The paper reports up to
 * 20.6x (sssp) with most benchmarks between 1.2x and 4x.
 */

#include <iostream>

#include "harness/figure_report.hh"
#include "harness/runner.hh"

using namespace famsim;

int
main(int argc, char** argv)
{
    BenchOptions options = parseBenchArgs(argc, argv, 300000);
    ScopedQuietLogs quiet;

    FigureReport report("fig03_motivation",
                        "Fig. 3: slowdown of I-FAM wrt E-FAM", "bench",
                        {"E-FAM", "I-FAM", "slowdown"});
    std::vector<double> slowdowns;
    for (const auto& profile : profiles::all()) {
        std::cerr << "fig03: " << profile.name << "...\n";
        RunResult efam = runOne(
            makeConfig(profile, ArchKind::EFam, options.instructions));
        RunResult ifam = runOne(
            makeConfig(profile, ArchKind::IFam, options.instructions));
        double slowdown = ifam.ipc > 0 ? efam.ipc / ifam.ipc : 0.0;
        slowdowns.push_back(slowdown);
        report.addRow(profile.name, {efam.ipc, ifam.ipc, slowdown});
    }
    report.addSummary("geomean_slowdown", geomean(slowdowns));
    report.addNote("paper: most 1.2x-4x, outliers up to 20.6x");
    return emitReport(report, options);
}
