/**
 * @file
 * Fig. 3: slowdown of I-FAM with respect to (insecure) E-FAM for all
 * 14 benchmarks — the motivation experiment. The paper reports up to
 * 20.6x (sssp) with most benchmarks between 1.2x and 4x.
 */

#include <iostream>

#include "harness/runner.hh"

using namespace famsim;

int
main()
{
    ScopedQuietLogs quiet;
    std::uint64_t instr = instrBudget(300000);

    SeriesTable table("Fig. 3: slowdown of I-FAM wrt E-FAM", "bench",
                      {"E-FAM", "I-FAM", "slowdown"});
    std::vector<double> slowdowns;
    for (const auto& profile : profiles::all()) {
        std::cerr << "fig03: " << profile.name << "...\n";
        RunResult efam = runOne(makeConfig(profile, ArchKind::EFam,
                                           instr));
        RunResult ifam = runOne(makeConfig(profile, ArchKind::IFam,
                                           instr));
        double slowdown = ifam.ipc > 0 ? efam.ipc / ifam.ipc : 0.0;
        slowdowns.push_back(slowdown);
        table.addRow(profile.name, {efam.ipc, ifam.ipc, slowdown});
    }
    table.print(std::cout);
    std::cout << "geomean slowdown: " << geomean(slowdowns)
              << "x  (paper: most 1.2x-4x, outliers up to 20.6x)\n";
    return 0;
}
