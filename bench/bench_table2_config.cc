/**
 * @file
 * Table II: dumps the default system configuration used by every
 * experiment, in the paper's layout, straight from SystemConfig.
 */

#include <iostream>
#include <sstream>

#include "harness/figure_report.hh"
#include "harness/runner.hh"

using namespace famsim;

namespace {

std::string
str(double v)
{
    std::ostringstream os;
    os << v;
    return os.str();
}

} // namespace

int
main(int argc, char** argv)
{
    BenchOptions options = parseBenchArgs(argc, argv, 0);

    SystemConfig config = makeConfig(profiles::byName("mcf"),
                                     ArchKind::DeactN);
    config.finalize();

    auto ns = [](Tick t) { return t / kNanosecond; };

    FigureReport report("table2_config",
                        "Table II: System Configuration", "", {});
    report.addMeta("cpu", str(config.coresPerNode) +
                              " out-of-order cores, " +
                              str(1000.0 /
                                  static_cast<double>(config.core.period)) +
                              " GHz, " + str(config.core.issueWidth) +
                              " issues/cycle, " +
                              str(config.core.maxOutstanding) +
                              " max outstanding requests");
    report.addMeta("tlb", "2 levels, L1 " + str(config.tlb.l1Entries) +
                              " entries, L2 " +
                              str(config.tlb.l2Entries) + " entries");
    report.addMeta("l1", "private, 64B blocks, " +
                             str(config.l1.sizeBytes / 1024) +
                             "KB, LRU");
    report.addMeta("l2", "private, 64B blocks, " +
                             str(config.l2.sizeBytes / 1024) +
                             "KB, LRU");
    report.addMeta("l3", "shared, 64B blocks, " +
                             str(config.l3.sizeBytes / 1024 / 1024) +
                             "MB, LRU");
    report.addMeta("local_memory",
                   "DRAM, size: " + str(config.os.localBytes >> 30) +
                       "GB");
    report.addMeta("stu_cache",
                   "size: " + str(config.stu.entries) +
                       " entries, associativity: " +
                       str(config.stu.assoc));
    report.addMeta(
        "fabric_latency",
        str(ns(config.stu.nodeLinkLatency + config.fabric.latency)) +
            "ns (node-STU " + str(ns(config.stu.nodeLinkLatency)) +
            "ns + fabric " + str(ns(config.fabric.latency)) + "ns)");
    report.addMeta("fam_capacity",
                   str(config.fam.capacityBytes >> 30) + "GB");
    report.addMeta("fam_latency",
                   "read " + str(ns(config.fam.nvm.readLatency)) +
                       "ns, write " +
                       str(ns(config.fam.nvm.writeLatency)) + "ns");
    report.addMeta("fam_banks", str(config.fam.nvm.banks));
    report.addMeta("fam_outstanding", str(config.fam.nvm.maxOutstanding));
    report.addMeta("fam_translation_cache",
                   str(config.translator.cacheBytes >> 10) +
                       "KB in DRAM, 4-way, random replacement");
    report.addMeta("ptw_caches", str(config.ptwCacheEntries) +
                                     " entries (node and STU walkers)");
    report.addMeta("acm", str(config.stu.acmBits) +
                              "-bit entries, shared pages at 1GB "
                              "granularity");
    return emitReport(report, options);
}
