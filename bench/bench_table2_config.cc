/**
 * @file
 * Table II: dumps the default system configuration used by every
 * experiment, in the paper's layout, straight from SystemConfig.
 */

#include <iostream>

#include "harness/runner.hh"

using namespace famsim;

int
main()
{
    SystemConfig config = makeConfig(profiles::byName("mcf"),
                                     ArchKind::DeactN);
    config.finalize();

    auto ns = [](Tick t) { return t / kNanosecond; };

    std::cout << "Table II: System Configuration\n";
    std::cout << "Node\n";
    std::cout << "  CPU               " << config.coresPerNode
              << " out-of-order cores, "
              << 1000.0 / static_cast<double>(config.core.period)
              << " GHz, " << config.core.issueWidth << " issues/cycle, "
              << config.core.maxOutstanding
              << " max outstanding requests\n";
    std::cout << "  TLB               2 levels, L1 size: "
              << config.tlb.l1Entries
              << " entries, L2 size: " << config.tlb.l2Entries
              << " entries\n";
    std::cout << "  L1                private, 64B blocks, "
              << config.l1.sizeBytes / 1024 << "KB, LRU\n";
    std::cout << "  L2                private, 64B blocks, "
              << config.l2.sizeBytes / 1024 << "KB, LRU\n";
    std::cout << "  L3                shared, 64B blocks, "
              << config.l3.sizeBytes / 1024 / 1024 << "MB, LRU\n";
    std::cout << "  Local memory      DRAM, size: "
              << (config.os.localBytes >> 30) << "GB\n";
    std::cout << "STU\n";
    std::cout << "  Cache             size: " << config.stu.entries
              << " entries, associativity: " << config.stu.assoc << "\n";
    std::cout << "Fabric network\n";
    std::cout << "  Latency           "
              << ns(config.stu.nodeLinkLatency + config.fabric.latency)
              << "ns (node-STU " << ns(config.stu.nodeLinkLatency)
              << "ns + fabric " << ns(config.fabric.latency) << "ns)\n";
    std::cout << "Fabric attached memory (NVM)\n";
    std::cout << "  Capacity          "
              << (config.fam.capacityBytes >> 30) << "GB\n";
    std::cout << "  Latency           read "
              << ns(config.fam.nvm.readLatency) << "ns, write "
              << ns(config.fam.nvm.writeLatency) << "ns\n";
    std::cout << "  Banks             " << config.fam.nvm.banks << "\n";
    std::cout << "  Outstanding req.  " << config.fam.nvm.maxOutstanding
              << "\n";
    std::cout << "Software\n";
    std::cout << "  FAM transl. cache "
              << (config.translator.cacheBytes >> 10)
              << "KB in DRAM, 4-way, random replacement\n";
    std::cout << "  PTW caches        " << config.ptwCacheEntries
              << " entries (node and STU walkers)\n";
    std::cout << "  ACM               " << config.stu.acmBits
              << "-bit entries, shared pages at 1GB granularity\n";
    return 0;
}
