/**
 * @file
 * Host-throughput benchmark of the simulator's hot paths (the
 * BENCH_hotpath trajectory): SetAssocCache lookups/inserts per
 * replacement policy, StreamGen op generation, EventQueue scheduling
 * churn, raw RNG draws, and the end-to-end fig12 performance-scenario
 * wall clock. Unlike the bench_fig* binaries this measures *host*
 * speed (ns/op, Mops/s), so the values vary by machine; each row also
 * carries rel_cost — its cost normalized to a raw PCG32 draw on the
 * same host — which is stable enough across machines to regression-gate
 * in CI (see --baseline).
 *
 *   bench_throughput [--json] [--out path] [--baseline path]
 *
 * With --baseline, the run compares each row's rel_cost against the
 * same row in a previously exported BENCH_hotpath.json and exits 3 if
 * any regresses by more than FAMSIM_BENCH_TOLERANCE (default 0.20,
 * i.e. 20 %).
 */

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "cache/set_assoc.hh"
#include "harness/figure_report.hh"
#include "harness/scenario.hh"
#include "harness/sweep.hh"
#include "sim/event_queue.hh"
#include "sim/profiler.hh"
#include "sim/rng.hh"
#include "workload/stream_gen.hh"

using namespace famsim;

namespace {

/**
 * Pre-PR (seed) reference numbers, measured on the development host
 * right before the hot-path overhaul landed, with the same loops this
 * binary runs. They exist so the exported JSON documents the speedup
 * the overhaul delivered on like-for-like hardware; on other machines
 * treat the speedup_vs_seed_* summaries as indicative only (the
 * rel_cost gate is the portable check).
 */
constexpr double kSeedLookupNs[3] = {18.0, 17.6, 33.9}; // LRU/Rand/PLRU
constexpr double kSeedStreamGenNs = 35.6;
constexpr double kSeedEventQueueNs = 111.4;
constexpr double kSeedFig12Seconds = 0.46;

volatile std::uint64_t g_sink = 0;

double
timeLookup(ReplPolicy policy, std::uint64_t iters)
{
    SetAssocCache<std::uint64_t> cache(16384, 4, policy, 1);
    for (std::uint64_t k = 0; k < 65536; ++k)
        cache.insert(k, k);
    return bestOfSeconds(7, [&] {
        Rng rng(42);
        std::uint64_t sink = 0;
        for (std::uint64_t i = 0; i < iters; ++i) {
            std::uint64_t* v = cache.lookup(rng.below(65536));
            sink += v ? *v : 0;
        }
        g_sink = g_sink + sink;
    });
}

double
timeInsertChurn(ReplPolicy policy, std::uint64_t iters)
{
    SetAssocCache<std::uint64_t> cache(128, 8, policy, 1);
    std::uint64_t key = 0;
    return bestOfSeconds(7, [&] {
        for (std::uint64_t i = 0; i < iters; ++i) {
            ++key;
            cache.insert(key * 7919, key);
        }
        g_sink = g_sink + cache.countValid();
    });
}

double
timeStreamGen(const char* profile, std::uint64_t iters)
{
    StreamGen gen(profiles::byName(profile), 0x100000000000ULL, 1, 0);
    return bestOfSeconds(7, [&] {
        std::uint64_t sink = 0;
        for (std::uint64_t i = 0; i < iters; ++i)
            sink += gen.next().vaddr;
        g_sink = g_sink + sink;
    });
}

double
timeEventQueue(std::uint64_t events)
{
    return bestOfSeconds(7, [&] {
        EventQueue q;
        std::uint64_t executed = 0;
        // Self-rescheduling chains: every event schedules a successor
        // until the budget drains, mimicking the simulator's pattern
        // of components rescheduling themselves.
        struct Chain {
            EventQueue& q;
            std::uint64_t& executed;
            std::uint64_t budget;
            void
            operator()() const
            {
                if (++executed < budget)
                    q.scheduleAfter(7, Chain{q, executed, budget});
            }
        };
        for (int i = 0; i < 64; ++i)
            q.schedule(static_cast<Tick>(i), Chain{q, executed, events});
        q.run();
        g_sink = g_sink + q.executed();
    });
}

double
timeRngDraws(std::uint64_t iters)
{
    return bestOfSeconds(7, [&] {
        Rng rng(7);
        std::uint64_t sink = 0;
        for (std::uint64_t i = 0; i < iters; ++i)
            sink += rng.next();
        g_sink = g_sink + sink;
    });
}

double
timeFig12()
{
    // Pinned to the original four architecture points: the figure
    // family also holds the observability locks (.base / .observed),
    // and letting registry growth inflate this gated row would read as
    // a hot-path regression.
    static const char* kPoints[] = {
        "fig12_performance.mcf.efam",
        "fig12_performance.mcf.ifam",
        "fig12_performance.mcf.deactw",
        "fig12_performance.mcf.deactn",
    };
    const auto& registry = ScenarioRegistry::paper();
    return bestOfSeconds(5, [&] {
        std::size_t bytes = 0;
        for (const char* name : kPoints)
            bytes += runScenarioJson(registry.byName(name)).size();
        g_sink = g_sink + bytes;
    });
}

/**
 * Wall clock of one fig16 scaling point (16/32/64 nodes — the sharded
 * parallel kernel's acceptance anchors) under one execution kernel.
 * threads = 0 is the serial reference; >= 1 the conservative-window
 * kernel. Parallel runs also report the window (= barrier round)
 * count and how many of those windows the adaptive horizon widened —
 * the cadence data behind the 64-node barrier question.
 */
struct Fig16Run {
    double seconds = 0.0;
    std::uint64_t windows = 0;
    std::uint64_t widened = 0;
};

Fig16Run
timeFig16(const std::string& point, unsigned threads, int reps,
          Profiler* prof = nullptr)
{
    const Scenario& scenario =
        SweepRegistry::paperPoints().byName(point);
    ScopedQuietLogs quiet;
    Fig16Run run;
    run.seconds = bestOfSeconds(reps, [&] {
        System system(scenario.config);
        if (prof)
            system.attachProfiler(prof);
        system.run(threads);
        g_sink = g_sink + system.sim().stats().jsonString().size();
        run.windows = system.parallelWindows();
        run.widened = system.parallelWidenedWindows();
    });
    return run;
}

/**
 * Extract row @p name's values array from a BENCH_hotpath.json dump.
 * Minimal scan matched to FigureReport::writeJson's fixed layout.
 */
bool
baselineValues(const std::string& json, const std::string& name,
               std::vector<double>& out)
{
    std::string needle = "{\"name\": \"" + name + "\", \"values\": [";
    std::size_t at = json.find(needle);
    if (at == std::string::npos)
        return false;
    std::size_t start = at + needle.size();
    std::size_t end = json.find(']', start);
    if (end == std::string::npos)
        return false;
    std::stringstream ss(json.substr(start, end - start));
    out.clear();
    std::string tok;
    while (std::getline(ss, tok, ','))
        out.push_back(std::strtod(tok.c_str(), nullptr));
    return !out.empty();
}

} // namespace

int
main(int argc, char** argv)
{
    // Peel off the flags this bench adds on top of the shared harness.
    std::string baseline_path;
    std::vector<char*> pass_argv{argv[0]};
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--baseline" && i + 1 < argc)
            baseline_path = argv[++i];
        else
            pass_argv.push_back(argv[i]);
    }
    BenchOptions options =
        parseBenchArgs(static_cast<int>(pass_argv.size()),
                       pass_argv.data(), /*instr_fallback=*/0);

    FigureReport report(
        "BENCH_hotpath",
        "Host throughput: hot-path structures and fig12 wall clock",
        "path", {"ns_per_op", "mops_per_sec", "rel_cost"});

    const std::uint64_t kIters = 4000000;
    double calib = timeRngDraws(4 * kIters) / double(4 * kIters);

    auto add = [&](const std::string& name, double seconds,
                   std::uint64_t ops) {
        double ns = seconds / static_cast<double>(ops) * 1e9;
        double mops = static_cast<double>(ops) / seconds / 1e6;
        report.addRow(name, {ns, mops, ns / (calib * 1e9)});
        return ns;
    };

    add("rng.next", calib * double(4 * kIters), 4 * kIters);

    const ReplPolicy kPolicies[] = {ReplPolicy::Lru, ReplPolicy::Random,
                                    ReplPolicy::TreePlru};
    const char* kPolicyTag[] = {"lru", "random", "treeplru"};
    double lookup_ns[3];
    for (int p = 0; p < 3; ++p) {
        lookup_ns[p] = add(
            std::string("set_assoc_lookup.") + kPolicyTag[p],
            timeLookup(kPolicies[p], kIters), kIters);
        add(std::string("set_assoc_insert.") + kPolicyTag[p],
            timeInsertChurn(kPolicies[p], kIters / 2), kIters / 2);
    }

    double sg_ns = add("stream_gen.mcf", timeStreamGen("mcf", kIters),
                       kIters);
    add("stream_gen.sssp", timeStreamGen("sssp", kIters), kIters);

    double eq_ns = add("event_queue.churn", timeEventQueue(kIters),
                       kIters);

    double fig12_s = timeFig12();
    // 4 architectures x 60000 instructions per scenario run.
    add("fig12_scenarios.e2e", fig12_s, 4 * 60000);

    // Parallel-kernel trajectory: the 16-node fig16 sweep point (64
    // cores x 60k instructions) end to end, serial vs the sharded
    // windowed kernel at 1/2/4 workers. The speedup summaries are the
    // headline; like the wall-clock rows they depend on the host's
    // core count (~1x on a single-core runner), so they are reported,
    // not gated.
    const std::uint64_t fig16_ops = 16 * 4 * 60000;
    double psim_serial_s = timeFig16("fig16_num_nodes.n16", 0, 2).seconds;
    add("fig16n16.serial", psim_serial_s, fig16_ops);
    Fig16Run psim_t[3];
    const unsigned kWorkerCounts[3] = {1, 2, 4};
    // The t4 run carries the wall-clock profiler: its drain/exec/
    // coordinator split (last rep's numbers) becomes the summary rows
    // below. Host timings — reported, never gated.
    Profiler prof16;
    for (int i = 0; i < 3; ++i) {
        psim_t[i] = timeFig16("fig16_num_nodes.n16", kWorkerCounts[i], 2,
                              kWorkerCounts[i] == 4 ? &prof16 : nullptr);
        add("fig16n16.t" + std::to_string(kWorkerCounts[i]),
            psim_t[i].seconds, fig16_ops);
    }

    // The 32/64-node scaling points answer where the barrier cadence
    // bites as partitions grow (129 at 64 nodes): serial vs the
    // 4-worker sharded kernel, one rep each (the points are big).
    Fig16Run scaled[2][2]; // [point][serial, t4]
    const char* kScaledPoints[2] = {"fig16_num_nodes.n32",
                                    "fig16_num_nodes.n64"};
    const char* kScaledTag[2] = {"fig16n32", "fig16n64"};
    const std::uint64_t scaled_ops[2] = {32 * 4 * 60000, 64 * 4 * 60000};
    for (int p = 0; p < 2; ++p) {
        scaled[p][0] = timeFig16(kScaledPoints[p], 0, 1);
        add(std::string(kScaledTag[p]) + ".serial", scaled[p][0].seconds,
            scaled_ops[p]);
        scaled[p][1] = timeFig16(kScaledPoints[p], 4, 1);
        add(std::string(kScaledTag[p]) + ".t4", scaled[p][1].seconds,
            scaled_ops[p]);
    }

    for (int p = 0; p < 3; ++p)
        report.addSummary(
            std::string("speedup_vs_seed_lookup_") + kPolicyTag[p],
            kSeedLookupNs[p] / lookup_ns[p]);
    report.addSummary("speedup_vs_seed_stream_gen",
                      kSeedStreamGenNs / sg_ns);
    report.addSummary("speedup_vs_seed_event_queue",
                      kSeedEventQueueNs / eq_ns);
    report.addSummary("speedup_vs_seed_fig12",
                      kSeedFig12Seconds / fig12_s);
    report.addSummary("fig12_wall_seconds", fig12_s);
    report.addSummary("fig16n16_serial_wall_seconds", psim_serial_s);
    for (int i = 0; i < 3; ++i) {
        report.addSummary("speedup_parallel_fig16n16_t" +
                              std::to_string(kWorkerCounts[i]),
                          psim_serial_s / psim_t[i].seconds);
    }
    report.addSummary("windows_fig16n16_t4",
                      static_cast<double>(psim_t[2].windows));
    report.addSummary("windows_widened_fig16n16_t4",
                      static_cast<double>(psim_t[2].widened));
    report.addSummary("profile_fig16n16_t4_wall_s",
                      prof16.wallSeconds());
    report.addSummary("profile_fig16n16_t4_exec_s",
                      prof16.execSeconds());
    report.addSummary("profile_fig16n16_t4_drain_s",
                      prof16.drainSeconds());
    report.addSummary("profile_fig16n16_t4_coordinator_s",
                      prof16.coordinatorSeconds());
    for (int p = 0; p < 2; ++p) {
        report.addSummary(std::string("speedup_parallel_") +
                              kScaledTag[p] + "_t4",
                          scaled[p][0].seconds / scaled[p][1].seconds);
        report.addSummary(std::string("windows_") + kScaledTag[p] + "_t4",
                          static_cast<double>(scaled[p][1].windows));
        report.addSummary(std::string("windows_widened_") +
                              kScaledTag[p] + "_t4",
                          static_cast<double>(scaled[p][1].widened));
    }
    report.addMeta("seed_reference",
                   "pre-overhaul numbers measured on the dev host; see "
                   "README 'Host-throughput benchmarking'");
    report.addNote("rel_cost = ns_per_op / ns per raw PCG32 draw on "
                   "this host; use it for cross-machine comparisons "
                   "and CI gating.");

    int rc = emitReport(report, options);
    if (rc != 0 || baseline_path.empty())
        return rc;

    // --- rel_cost regression gate against a prior export ---
    std::ifstream in(baseline_path);
    if (!in) {
        std::cerr << "bench_throughput: cannot read baseline '"
                  << baseline_path << "'\n";
        return 3;
    }
    std::stringstream buf;
    buf << in.rdbuf();
    std::string base_json = buf.str();

    double tolerance = 0.20;
    if (const char* env = std::getenv("FAMSIM_BENCH_TOLERANCE"))
        tolerance = std::strtod(env, nullptr);

    std::ostringstream current;
    report.writeJson(current);
    std::string cur_json = current.str();

    bool failed = false;
    // Gated rows are single-threaded and deterministic in work, so
    // rel_cost transfers across hosts; the parallel fig16 rows (t1..t4
    // and the speedup/window summaries) depend on the runner's core
    // count and are reported, not gated.
    for (const char* row :
         {"set_assoc_lookup.lru", "set_assoc_lookup.random",
          "set_assoc_lookup.treeplru", "stream_gen.mcf",
          "event_queue.churn", "fig12_scenarios.e2e",
          "fig16n16.serial"}) {
        std::vector<double> base, cur;
        if (!baselineValues(base_json, row, base)) {
            std::cerr << "bench_throughput: baseline lacks row '" << row
                      << "' — skipping gate for it\n";
            continue;
        }
        if (!baselineValues(cur_json, row, cur) || base.size() < 3 ||
            cur.size() < 3)
            continue;
        double base_rel = base[2], cur_rel = cur[2];
        double ratio = cur_rel / base_rel;
        std::cerr << "gate " << row << ": rel_cost " << cur_rel
                  << " vs baseline " << base_rel << " (x" << ratio
                  << ")\n";
        if (ratio > 1.0 + tolerance) {
            std::cerr << "bench_throughput: REGRESSION on " << row
                      << " (allowed +" << tolerance * 100 << "%)\n";
            failed = true;
        }
    }
    return failed ? 3 : 0;
}
