/**
 * @file
 * Fig. 13 (+ the §V-D1 associativity study): DeACT-N speedup over
 * I-FAM as the STU cache grows from 256 to 4096 entries. The paper
 * reports e.g. PARSEC falling from 3.45x (256 entries) to 1.75x
 * (4096): the smaller the STU, the more DeACT's in-memory caching
 * helps.
 */

#include <iostream>

#include "harness/executor.hh"
#include "harness/figure_report.hh"
#include "harness/runner.hh"
#include "harness/sweep.hh"

using namespace famsim;

namespace {

/**
 * One (I-FAM, DeACT-N) config pair per profile, in group order; the
 * flat list feeds one SweepExecutor fan-out so every point of the
 * figure runs concurrently under --sweep-jobs.
 */
void
appendGroupPair(std::vector<SystemConfig>& configs,
                const std::vector<famsim::StreamProfile>& group,
                std::size_t stu_entries, std::size_t assoc,
                std::uint64_t instr)
{
    for (const auto& profile : group) {
        for (ArchKind arch : {ArchKind::IFam, ArchKind::DeactN}) {
            SystemConfig config = makeConfig(profile, arch, instr);
            config.stu.entries = stu_entries;
            config.stu.assoc = assoc;
            configs.push_back(std::move(config));
        }
    }
}

/** Consume one group's (I-FAM, DeACT-N) result pairs -> geomean speedup. */
double
groupSpeedup(const std::vector<RunResult>& results, std::size_t& cursor,
             std::size_t group_size)
{
    std::vector<double> speedups;
    for (std::size_t p = 0; p < group_size; ++p) {
        double i = results[cursor++].ipc;
        double d = results[cursor++].ipc;
        speedups.push_back(i > 0 ? d / i : 0.0);
    }
    return geomean(speedups);
}

} // namespace

int
main(int argc, char** argv)
{
    BenchOptions options = parseBenchArgs(argc, argv, 150000);
    ScopedQuietLogs quiet;
    auto groups = sensitivityGroups();

    std::vector<std::string> group_names;
    for (const auto& [name, group] : groups)
        group_names.push_back(name);

    FigureReport report(
        "fig13_stu_size",
        "Fig. 13: DeACT-N speedup wrt I-FAM vs STU size", "entries",
        group_names);
    // The axis comes from the sweep registry so the bench curve and
    // the golden-pinned fig13_stu_entries sweep cover the same points.
    const Sweep& axis_source =
        SweepRegistry::paper().byName("fig13_stu_entries");

    // The companion associativity study is emitted in table mode and
    // (as a sibling fig13_stu_assoc.json) in JSON+--out mode; only
    // plain --json to stdout skips its simulations, since a single
    // JSON object can't carry a second figure.
    FigureReport assoc_report(
        "fig13_stu_assoc",
        "SV-D1: DeACT-N speedup wrt I-FAM vs STU associativity",
        "assoc", group_names);
    const bool with_assoc = !options.json || !options.outPath.empty();

    // Flatten both studies into one config list, fan it out once, then
    // reassemble rows from the slot-ordered results.
    std::vector<SystemConfig> configs;
    for (const auto& point : axis_source.axis.points) {
        auto entries = static_cast<std::size_t>(point.value);
        for (const auto& [name, group] : groups)
            appendGroupPair(configs, group, entries, 8,
                            options.instructions);
    }
    const std::vector<std::size_t> assocs = {4, 8, 32};
    if (with_assoc) {
        for (std::size_t assoc : assocs) {
            for (const auto& [name, group] : groups)
                appendGroupPair(configs, group, 1024, assoc,
                                options.instructions);
        }
    }
    std::cerr << "fig13: " << configs.size() << " runs across "
              << options.sweepJobs << " sweep jobs...\n";
    SweepExecutor executor(options.sweepJobs);
    const std::vector<RunResult> results =
        executor.runResults(configs, 0);

    std::size_t cursor = 0;
    for (const auto& point : axis_source.axis.points) {
        auto entries = static_cast<std::size_t>(point.value);
        std::vector<double> row;
        for (const auto& [name, group] : groups)
            row.push_back(groupSpeedup(results, cursor, group.size()));
        report.addRow(std::to_string(entries), row);
    }
    report.addNote("paper: speedup shrinks as the STU grows; PARSEC "
                   "3.45x at 256 -> 1.75x at 4096");

    if (with_assoc) {
        for (std::size_t assoc : assocs) {
            std::vector<double> row;
            for (const auto& [name, group] : groups)
                row.push_back(
                    groupSpeedup(results, cursor, group.size()));
            assoc_report.addRow(std::to_string(assoc), row);
        }
        assoc_report.addNote("paper: improvement decreases and "
                             "saturates with associativity");
    }
    return emitReports({&report, &assoc_report}, options);
}
