/**
 * @file
 * Fig. 13 (+ the §V-D1 associativity study): DeACT-N speedup over
 * I-FAM as the STU cache grows from 256 to 4096 entries. The paper
 * reports e.g. PARSEC falling from 3.45x (256 entries) to 1.75x
 * (4096): the smaller the STU, the more DeACT's in-memory caching
 * helps.
 */

#include <iostream>

#include "harness/figure_report.hh"
#include "harness/runner.hh"
#include "harness/sweep.hh"

using namespace famsim;

namespace {

double
groupSpeedup(const std::vector<famsim::StreamProfile>& group,
             std::size_t stu_entries, std::size_t assoc,
             std::uint64_t instr)
{
    std::vector<double> speedups;
    for (const auto& profile : group) {
        SystemConfig ifam = makeConfig(profile, ArchKind::IFam, instr);
        ifam.stu.entries = stu_entries;
        ifam.stu.assoc = assoc;
        SystemConfig deact = makeConfig(profile, ArchKind::DeactN, instr);
        deact.stu.entries = stu_entries;
        deact.stu.assoc = assoc;
        double i = runOne(ifam).ipc;
        double d = runOne(deact).ipc;
        speedups.push_back(i > 0 ? d / i : 0.0);
    }
    return geomean(speedups);
}

} // namespace

int
main(int argc, char** argv)
{
    BenchOptions options = parseBenchArgs(argc, argv, 150000);
    ScopedQuietLogs quiet;
    auto groups = sensitivityGroups();

    std::vector<std::string> group_names;
    for (const auto& [name, group] : groups)
        group_names.push_back(name);

    FigureReport report(
        "fig13_stu_size",
        "Fig. 13: DeACT-N speedup wrt I-FAM vs STU size", "entries",
        group_names);
    // The axis comes from the sweep registry so the bench curve and
    // the golden-pinned fig13_stu_entries sweep cover the same points.
    const Sweep& axis_source =
        SweepRegistry::paper().byName("fig13_stu_entries");
    for (const auto& point : axis_source.axis.points) {
        auto entries = static_cast<std::size_t>(point.value);
        std::cerr << "fig13: STU " << entries << " entries...\n";
        std::vector<double> row;
        for (const auto& [name, group] : groups)
            row.push_back(groupSpeedup(group, entries, 8,
                                       options.instructions));
        report.addRow(std::to_string(entries), row);
    }
    report.addNote("paper: speedup shrinks as the STU grows; PARSEC "
                   "3.45x at 256 -> 1.75x at 4096");

    // The companion associativity study is emitted in table mode and
    // (as a sibling fig13_stu_assoc.json) in JSON+--out mode; only
    // plain --json to stdout skips its simulations, since a single
    // JSON object can't carry a second figure.
    FigureReport assoc_report(
        "fig13_stu_assoc",
        "SV-D1: DeACT-N speedup wrt I-FAM vs STU associativity",
        "assoc", group_names);
    if (!options.json || !options.outPath.empty()) {
        for (std::size_t assoc : {4u, 8u, 32u}) {
            std::cerr << "fig13: assoc " << assoc << "...\n";
            std::vector<double> row;
            for (const auto& [name, group] : groups)
                row.push_back(groupSpeedup(group, 1024, assoc,
                                           options.instructions));
            assoc_report.addRow(std::to_string(assoc), row);
        }
        assoc_report.addNote("paper: improvement decreases and "
                             "saturates with associativity");
    }
    return emitReports({&report, &assoc_report}, options);
}
