/**
 * @file
 * Fig. 13 (+ the §V-D1 associativity study): DeACT-N speedup over
 * I-FAM as the STU cache grows from 256 to 4096 entries. The paper
 * reports e.g. PARSEC falling from 3.45x (256 entries) to 1.75x
 * (4096): the smaller the STU, the more DeACT's in-memory caching
 * helps.
 */

#include <iostream>

#include "harness/runner.hh"

using namespace famsim;

namespace {

double
groupSpeedup(const std::vector<famsim::StreamProfile>& group,
             std::size_t stu_entries, std::size_t assoc,
             std::uint64_t instr)
{
    std::vector<double> speedups;
    for (const auto& profile : group) {
        SystemConfig ifam = makeConfig(profile, ArchKind::IFam, instr);
        ifam.stu.entries = stu_entries;
        ifam.stu.assoc = assoc;
        SystemConfig deact = makeConfig(profile, ArchKind::DeactN, instr);
        deact.stu.entries = stu_entries;
        deact.stu.assoc = assoc;
        double i = runOne(ifam).ipc;
        double d = runOne(deact).ipc;
        speedups.push_back(i > 0 ? d / i : 0.0);
    }
    return geomean(speedups);
}

} // namespace

int
main()
{
    ScopedQuietLogs quiet;
    std::uint64_t instr = instrBudget(150000);
    auto groups = sensitivityGroups();

    std::vector<std::string> group_names;
    for (const auto& [name, group] : groups)
        group_names.push_back(name);

    SeriesTable table("Fig. 13: DeACT-N speedup wrt I-FAM vs STU size",
                      "entries", group_names);
    for (std::size_t entries : {256u, 512u, 1024u, 2048u, 4096u}) {
        std::cerr << "fig13: STU " << entries << " entries...\n";
        std::vector<double> row;
        for (const auto& [name, group] : groups)
            row.push_back(groupSpeedup(group, entries, 8, instr));
        table.addRow(std::to_string(entries), row);
    }
    table.print(std::cout);
    std::cout << "(paper: speedup shrinks as the STU grows; PARSEC "
                 "3.45x at 256 -> 1.75x at 4096)\n";

    SeriesTable assoc_table(
        "SV-D1: DeACT-N speedup wrt I-FAM vs STU associativity",
        "assoc", group_names);
    for (std::size_t assoc : {4u, 8u, 32u}) {
        std::cerr << "fig13: assoc " << assoc << "...\n";
        std::vector<double> row;
        for (const auto& [name, group] : groups)
            row.push_back(groupSpeedup(group, 1024, assoc, instr));
        assoc_table.addRow(std::to_string(assoc), row);
    }
    assoc_table.print(std::cout);
    std::cout << "(paper: improvement decreases and saturates with "
                 "associativity)\n";
    return 0;
}
