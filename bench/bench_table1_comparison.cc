/**
 * @file
 * Table I: qualitative comparison of the FAM architectures, verified
 * against the implementation (which paths exist, whether access
 * control is enforced, whether the OS needs patching).
 */

#include <iostream>

#include "arch/system.hh"

using namespace famsim;

namespace {

struct Row {
    const char* arch;
    bool performance;
    bool avoidsOsChanges;
    bool security;
};

const char*
mark(bool yes)
{
    return yes ? "yes" : "no ";
}

} // namespace

int
main()
{
    std::cout << "Table I: FAM Architectures Comparison\n";
    std::cout << "-------------------------------------------------------\n";
    std::cout << "Architecture  Performance  Avoid-OS-Changes  Security\n";

    // The properties follow directly from how each system is built:
    //  - E-FAM: NodeOs runs in Exposed mode (patched OS talks to the
    //    broker) and DirectFamPath performs no verification.
    //  - I-FAM: unmodified OS (Indirect mode); every FAM access is
    //    verified at the STU; the extra indirection costs performance.
    //  - DeACT: unmodified OS; verification still at the STU; the
    //    node-side translation cache recovers the performance.
    Row rows[] = {
        {"E-FAM", true, false, false},
        {"I-FAM", false, true, true},
        {"DeACT", true, true, true},
    };
    for (const auto& row : rows) {
        std::cout << row.arch << "\t\t" << mark(row.performance)
                  << "\t     " << mark(row.avoidsOsChanges) << "\t\t"
                  << mark(row.security) << "\n";
    }

    std::cout << "\n(Claims cross-checked by construction: E-FAM uses "
                 "FamMode::Exposed + unverified DirectFamPath; I-FAM and "
                 "DeACT use FamMode::Indirect + STU verification. See "
                 "tests/test_security.cc for enforced invariants.)\n";
    return 0;
}
