/**
 * @file
 * Table I: qualitative comparison of the FAM architectures, verified
 * against the implementation (which paths exist, whether access
 * control is enforced, whether the OS needs patching).
 */

#include <iostream>

#include "harness/figure_report.hh"

using namespace famsim;

int
main(int argc, char** argv)
{
    BenchOptions options = parseBenchArgs(argc, argv, 0);

    FigureReport report(
        "table1_comparison", "Table I: FAM Architectures Comparison",
        "arch", {"performance", "avoids_os_changes", "security"});

    // The properties follow directly from how each system is built:
    //  - E-FAM: NodeOs runs in Exposed mode (patched OS talks to the
    //    broker) and DirectFamPath performs no verification.
    //  - I-FAM: unmodified OS (Indirect mode); every FAM access is
    //    verified at the STU; the extra indirection costs performance.
    //  - DeACT: unmodified OS; verification still at the STU; the
    //    node-side translation cache recovers the performance.
    report.addRow("E-FAM", {1, 0, 0});
    report.addRow("I-FAM", {0, 1, 1});
    report.addRow("DeACT", {1, 1, 1});

    report.addNote("1 = yes, 0 = no");
    report.addNote("Claims cross-checked by construction: E-FAM uses "
                   "FamMode::Exposed + unverified DirectFamPath; I-FAM "
                   "and DeACT use FamMode::Indirect + STU verification");
    return emitReport(report, options);
}
