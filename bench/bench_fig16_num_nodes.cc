/**
 * @file
 * Fig. 16: DeACT-N speedup over I-FAM as 1-8 nodes share the fabric
 * and the FAM pools (pf and dc). The paper reports the speedup
 * growing with node count (dc: 2.92x at 1 node, 3.26x at 8) because
 * DeACT keeps page-table traffic off the contended fabric.
 */

#include <iostream>

#include "harness/figure_report.hh"
#include "harness/runner.hh"
#include "harness/sweep.hh"

using namespace famsim;

int
main(int argc, char** argv)
{
    BenchOptions options = parseBenchArgs(argc, argv, 100000);
    ScopedQuietLogs quiet;

    FigureReport report("fig16_num_nodes",
                        "Fig. 16: DeACT-N speedup wrt I-FAM vs #nodes",
                        "nodes", {"pf", "dc"});
    // The axis comes from the sweep registry so the bench curve and
    // the golden-pinned fig16_num_nodes sweep cover the same counts.
    const Sweep& axis_source =
        SweepRegistry::paper().byName("fig16_num_nodes");
    for (const auto& point : axis_source.axis.points) {
        auto nodes = static_cast<unsigned>(point.value);
        std::cerr << "fig16: " << nodes << " node(s)...\n";
        std::vector<double> row;
        for (const char* bench : {"pf", "dc"}) {
            SystemConfig ifam =
                makeConfig(profiles::byName(bench), ArchKind::IFam,
                           options.instructions);
            ifam.nodes = nodes;
            // The multi-node fabric arbitrates per packet; a thinner
            // shared channel exposes the contention that I-FAM's
            // translation traffic creates (§V-D4).
            ifam.fabric.serialization = kContendedFabricSerialization;
            SystemConfig deact =
                makeConfig(profiles::byName(bench), ArchKind::DeactN,
                           options.instructions);
            deact.nodes = nodes;
            deact.fabric.serialization = kContendedFabricSerialization;
            double i = runOne(ifam).ipc;
            double d = runOne(deact).ipc;
            row.push_back(i > 0 ? d / i : 0.0);
        }
        report.addRow(std::to_string(nodes), row);
    }
    report.addNote("paper: speedup grows with sharing; dc 2.92x at 1 "
                   "node -> 3.26x at 8 nodes");
    return emitReport(report, options);
}
