/**
 * @file
 * Fig. 16: DeACT-N speedup over I-FAM as 1-8 nodes share the fabric
 * and the FAM pools (pf and dc). The paper reports the speedup
 * growing with node count (dc: 2.92x at 1 node, 3.26x at 8) because
 * DeACT keeps page-table traffic off the contended fabric.
 */

#include <iostream>

#include "harness/runner.hh"

using namespace famsim;

int
main()
{
    ScopedQuietLogs quiet;
    std::uint64_t instr = instrBudget(100000);

    SeriesTable table("Fig. 16: DeACT-N speedup wrt I-FAM vs #nodes",
                      "nodes", {"pf", "dc"});
    for (unsigned nodes : {1u, 2u, 4u, 8u}) {
        std::cerr << "fig16: " << nodes << " node(s)...\n";
        std::vector<double> row;
        for (const char* bench : {"pf", "dc"}) {
            SystemConfig ifam = makeConfig(profiles::byName(bench),
                                           ArchKind::IFam, instr);
            ifam.nodes = nodes;
            // The multi-node fabric arbitrates per packet; a thinner
            // shared channel exposes the contention that I-FAM's
            // translation traffic creates (§V-D4).
            ifam.fabric.serialization = 6 * kNanosecond;
            SystemConfig deact = makeConfig(profiles::byName(bench),
                                            ArchKind::DeactN, instr);
            deact.nodes = nodes;
            deact.fabric.serialization = 6 * kNanosecond;
            double i = runOne(ifam).ipc;
            double d = runOne(deact).ipc;
            row.push_back(i > 0 ? d / i : 0.0);
        }
        table.addRow(std::to_string(nodes), row);
    }
    table.print(std::cout);
    std::cout << "(paper: speedup grows with sharing; dc 2.92x at 1 "
                 "node -> 3.26x at 8 nodes)\n";
    return 0;
}
