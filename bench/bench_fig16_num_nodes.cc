/**
 * @file
 * Fig. 16: DeACT-N speedup over I-FAM as nodes share the fabric and
 * the FAM pools (pf and dc; 1-8 from the paper, 16-64 the scaling
 * extension). The paper reports the speedup growing with node count
 * (dc: 2.92x at 1 node, 3.26x at 8) because DeACT keeps page-table
 * traffic off the contended fabric.
 *
 * Since the parallel kernel (src/psim/) the bench also carries a
 * threads dimension: the pf/DeACT-N point at each node count is
 * re-run under the conservative-window kernel (FAMSIM_THREADS
 * workers, default 4) and the host wall-clock speedup vs the serial
 * run is reported per row — the simulated metrics of that extra run
 * are discarded (the parallel schedule is deterministic but not the
 * serial one).
 */

#include <algorithm>
#include <chrono>
#include <iostream>

#include "harness/figure_report.hh"
#include "harness/runner.hh"
#include "harness/sweep.hh"

using namespace famsim;

int
main(int argc, char** argv)
{
    BenchOptions options = parseBenchArgs(argc, argv, 100000);
    ScopedQuietLogs quiet;
    // FAMSIM_THREADS=0 means "serial reference" everywhere, so honor
    // it here by skipping the parallel re-runs (the speedup column
    // reports 0).
    const unsigned psim_threads = threadsFromEnv(4);

    FigureReport report("fig16_num_nodes",
                        "Fig. 16: DeACT-N speedup wrt I-FAM vs #nodes",
                        "nodes", {"pf", "dc", "pf_host_speedup"});
    // The axis comes from the sweep registry so the bench curve and
    // the golden-pinned fig16_num_nodes sweep cover the same counts.
    const Sweep& axis_source =
        SweepRegistry::paper().byName("fig16_num_nodes");
    for (const auto& point : axis_source.axis.points) {
        auto nodes = static_cast<unsigned>(point.value);
        std::cerr << "fig16: " << nodes << " node(s)...\n";
        std::vector<double> row;
        double pf_serial_s = 0.0, pf_parallel_s = 0.0;
        for (const char* bench : {"pf", "dc"}) {
            SystemConfig ifam =
                makeConfig(profiles::byName(bench), ArchKind::IFam,
                           options.instructions);
            ifam.nodes = nodes;
            // The multi-node fabric arbitrates per packet; a thinner
            // shared channel exposes the contention that I-FAM's
            // translation traffic creates (§V-D4).
            ifam.fabric.serialization = kContendedFabricSerialization;
            SystemConfig deact =
                makeConfig(profiles::byName(bench), ArchKind::DeactN,
                           options.instructions);
            deact.nodes = nodes;
            deact.fabric.serialization = kContendedFabricSerialization;
            double i = runOne(ifam).ipc;
            // Time the ipc run itself: it doubles as the first serial
            // wall-clock sample below.
            double d = 0.0;
            double first_serial_s =
                bestOfSeconds(1, [&] { d = runOne(deact).ipc; });
            row.push_back(i > 0 ? d / i : 0.0);
            if (psim_threads > 0 && bench == std::string("pf")) {
                // Best-of-2 wall samples per side (the shared harness
                // sampler bench_throughput also uses) so the exported
                // speedup column tracks the kernel, not host jitter —
                // the serial side reuses the ipc run as sample one.
                pf_serial_s = std::min(
                    first_serial_s,
                    bestOfSeconds(1, [&] { (void)runOne(deact); }));
                pf_parallel_s = bestOfSeconds(
                    2, [&] { (void)runOne(deact, psim_threads); });
            }
        }
        row.push_back(pf_parallel_s > 0.0 ? pf_serial_s / pf_parallel_s
                                          : 0.0);
        report.addRow(std::to_string(nodes), row);
    }
    report.addNote("paper: speedup grows with sharing; dc 2.92x at 1 "
                   "node -> 3.26x at 8 nodes");
    report.addSummary("psim_threads", static_cast<double>(psim_threads));
    report.addNote("pf_host_speedup = wall clock of the serial pf/"
                   "DeACT-N run over the same run on the parallel "
                   "kernel (FAMSIM_THREADS workers); host-dependent, "
                   "not part of the simulated figure");
    return emitReport(report, options);
}
