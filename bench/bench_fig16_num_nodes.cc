/**
 * @file
 * Fig. 16: DeACT-N speedup over I-FAM as nodes share the fabric and
 * the FAM pools (pf and dc; 1-8 from the paper, 16-64 the scaling
 * extension). The paper reports the speedup growing with node count
 * (dc: 2.92x at 1 node, 3.26x at 8) because DeACT keeps page-table
 * traffic off the contended fabric.
 *
 * Since the parallel kernel (src/psim/) the bench also carries a
 * threads dimension: the pf/DeACT-N point at each node count is
 * re-run under the conservative-window kernel (FAMSIM_THREADS
 * workers, default 4) and the host wall-clock speedup vs the serial
 * run is reported per row — the simulated metrics of that extra run
 * are discarded (the parallel schedule is deterministic but not the
 * serial one).
 */

#include <iostream>

#include "harness/executor.hh"
#include "harness/figure_report.hh"
#include "harness/runner.hh"
#include "harness/sweep.hh"
#include "sim/profiler.hh"

using namespace famsim;

int
main(int argc, char** argv)
{
    BenchOptions options = parseBenchArgs(argc, argv, 100000);
    ScopedQuietLogs quiet;
    // FAMSIM_THREADS=0 means "serial reference" everywhere, so honor
    // it here by skipping the parallel re-runs (the speedup column
    // reports 0).
    const unsigned psim_threads = threadsFromEnv(4);

    FigureReport report("fig16_num_nodes",
                        "Fig. 16: DeACT-N speedup wrt I-FAM vs #nodes",
                        "nodes", {"pf", "dc", "pf_host_speedup"});
    // The axis comes from the sweep registry so the bench curve and
    // the golden-pinned fig16_num_nodes sweep cover the same counts.
    const Sweep& axis_source =
        SweepRegistry::paper().byName("fig16_num_nodes");

    // Phase 1: every ipc run of the figure — (I-FAM, DeACT-N) pairs
    // for pf and dc per node count — fans out through the executor
    // under --sweep-jobs. The host-speedup wall-clock samples stay in
    // phase 2, after the pool has drained: timing a run while sibling
    // points compete for cores would measure contention, not the
    // kernel.
    std::vector<SystemConfig> configs;
    std::vector<SystemConfig> pf_deact_configs;
    for (const auto& point : axis_source.axis.points) {
        auto nodes = static_cast<unsigned>(point.value);
        for (const char* bench : {"pf", "dc"}) {
            SystemConfig ifam =
                makeConfig(profiles::byName(bench), ArchKind::IFam,
                           options.instructions);
            ifam.nodes = nodes;
            // The multi-node fabric arbitrates per packet; a thinner
            // shared channel exposes the contention that I-FAM's
            // translation traffic creates (§V-D4).
            ifam.fabric.serialization = kContendedFabricSerialization;
            SystemConfig deact =
                makeConfig(profiles::byName(bench), ArchKind::DeactN,
                           options.instructions);
            deact.nodes = nodes;
            deact.fabric.serialization = kContendedFabricSerialization;
            if (bench == std::string("pf"))
                pf_deact_configs.push_back(deact);
            configs.push_back(std::move(ifam));
            configs.push_back(std::move(deact));
        }
    }
    std::cerr << "fig16: " << configs.size() << " runs across "
              << options.sweepJobs << " sweep jobs...\n";
    SweepExecutor executor(options.sweepJobs);
    const std::vector<RunResult> results =
        executor.runResults(configs, 0);

    // Phase 2: serial vs parallel-kernel wall clock for the pf/DeACT-N
    // point of each row, best-of-2 per side (the shared harness
    // sampler bench_throughput also uses) so the exported speedup
    // column tracks the kernel, not host jitter.
    std::size_t cursor = 0;
    for (std::size_t p = 0; p < axis_source.axis.points.size(); ++p) {
        auto nodes =
            static_cast<unsigned>(axis_source.axis.points[p].value);
        std::cerr << "fig16: timing " << nodes << " node(s)...\n";
        std::vector<double> row;
        for (std::size_t b = 0; b < 2; ++b) {
            double i = results[cursor++].ipc;
            double d = results[cursor++].ipc;
            row.push_back(i > 0 ? d / i : 0.0);
        }
        double pf_serial_s = 0.0, pf_parallel_s = 0.0;
        if (psim_threads > 0) {
            const SystemConfig& deact = pf_deact_configs[p];
            pf_serial_s = bestOfSeconds(2, [&] { (void)runOne(deact); });
            pf_parallel_s = bestOfSeconds(
                2, [&] { (void)runOne(deact, psim_threads); });
        }
        row.push_back(pf_parallel_s > 0.0 ? pf_serial_s / pf_parallel_s
                                          : 0.0);
        report.addRow(std::to_string(nodes), row);
    }
    // FAMSIM_PROFILE: one extra profiled run of the largest pf/DeACT-N
    // point, window-profile to stderr (host timings — never in the
    // exported figure).
    if (profileFromEnv() && psim_threads > 0 &&
        !pf_deact_configs.empty()) {
        Profiler prof;
        System system(pf_deact_configs.back());
        system.attachProfiler(&prof);
        system.run(psim_threads);
        std::cerr << "fig16 profile (largest pf/DeACT-N point, "
                  << psim_threads << " workers): ";
        prof.writeJson(std::cerr);
        std::cerr << "\n";
    }
    report.addNote("paper: speedup grows with sharing; dc 2.92x at 1 "
                   "node -> 3.26x at 8 nodes");
    report.addSummary("psim_threads", static_cast<double>(psim_threads));
    report.addNote("pf_host_speedup = wall clock of the serial pf/"
                   "DeACT-N run over the same run on the parallel "
                   "kernel (FAMSIM_THREADS workers); host-dependent, "
                   "not part of the simulated figure");
    return emitReport(report, options);
}
