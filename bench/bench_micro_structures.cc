/**
 * @file
 * Google-benchmark microbenchmarks of the hot data structures: the
 * set-associative tag store under each replacement policy (the
 * translation/ACM caches), the ACM codec, the page-table walk path
 * and the workload generator. Also serves as the ablation for the
 * paper's random-replacement choice in the FAM translation cache
 * (DESIGN.md §5).
 */

#include <benchmark/benchmark.h>

#include "cache/set_assoc.hh"
#include "fam/acm.hh"
#include "sim/rng.hh"
#include "vm/page_table.hh"
#include "workload/stream_gen.hh"

using namespace famsim;

namespace {

void
BM_SetAssocLookup(benchmark::State& state)
{
    auto policy = static_cast<ReplPolicy>(state.range(0));
    SetAssocCache<std::uint64_t> cache(16384, 4, policy, 1);
    Rng rng(42);
    for (std::uint64_t k = 0; k < 65536; ++k)
        cache.insert(k, k);
    for (auto _ : state) {
        std::uint64_t key = rng.below(65536);
        benchmark::DoNotOptimize(cache.lookup(key));
    }
}
BENCHMARK(BM_SetAssocLookup)
    ->Arg(static_cast<int>(ReplPolicy::Lru))
    ->Arg(static_cast<int>(ReplPolicy::Random))
    ->Arg(static_cast<int>(ReplPolicy::TreePlru));

void
BM_SetAssocInsertChurn(benchmark::State& state)
{
    auto policy = static_cast<ReplPolicy>(state.range(0));
    SetAssocCache<std::uint64_t> cache(128, 8, policy, 1);
    std::uint64_t key = 0;
    for (auto _ : state) {
        ++key;
        cache.insert(key * 7919, key);
    }
}
BENCHMARK(BM_SetAssocInsertChurn)
    ->Arg(static_cast<int>(ReplPolicy::Lru))
    ->Arg(static_cast<int>(ReplPolicy::Random))
    ->Arg(static_cast<int>(ReplPolicy::TreePlru));

/**
 * Ablation: hit rate of the in-DRAM translation cache geometry under
 * random vs LRU replacement on a two-tier page stream (the paper
 * chose random to avoid extra DRAM state writes; this shows the hit
 * rate cost is small). Reported via counters, not wall time.
 */
void
BM_TranslationCacheReplacementAblation(benchmark::State& state)
{
    auto policy = static_cast<ReplPolicy>(state.range(0));
    for (auto _ : state) {
        SetAssocCache<std::uint64_t> cache(16384, 4, policy, 1);
        Rng rng(7);
        std::uint64_t hits = 0, total = 0;
        for (int i = 0; i < 200000; ++i) {
            std::uint64_t page = rng.chance(0.8)
                                     ? rng.below(40000)
                                     : rng.below64(400000);
            ++total;
            if (cache.lookup(page))
                ++hits;
            else
                cache.insert(page, page);
        }
        state.counters["hit_rate"] =
            static_cast<double>(hits) / static_cast<double>(total);
    }
}
BENCHMARK(BM_TranslationCacheReplacementAblation)
    ->Arg(static_cast<int>(ReplPolicy::Lru))
    ->Arg(static_cast<int>(ReplPolicy::Random))
    ->Unit(benchmark::kMillisecond);

void
BM_AcmCodec(benchmark::State& state)
{
    AcmStore acm(static_cast<unsigned>(state.range(0)));
    Rng rng(3);
    for (auto _ : state) {
        AcmEntry entry{rng.below(acm.maxNodes()),
                       static_cast<std::uint8_t>(rng.below(4))};
        benchmark::DoNotOptimize(acm.decode(acm.encode(entry)));
    }
}
BENCHMARK(BM_AcmCodec)->Arg(8)->Arg(16)->Arg(32);

void
BM_PageTableWalk(benchmark::State& state)
{
    std::uint64_t next = 0;
    HierarchicalPageTable table([&next] { return next += kPageSize; });
    Rng rng(11);
    for (std::uint64_t i = 0; i < 10000; ++i)
        table.map(rng.below64(1 << 24), i, Perms{});
    for (auto _ : state)
        benchmark::DoNotOptimize(table.walk(rng.below64(1 << 24)));
}
BENCHMARK(BM_PageTableWalk);

void
BM_StreamGenNext(benchmark::State& state)
{
    StreamGen gen(profiles::byName("mcf"), 0x100000000000ULL, 1, 0);
    for (auto _ : state)
        benchmark::DoNotOptimize(gen.next());
}
BENCHMARK(BM_StreamGenNext);

} // namespace

BENCHMARK_MAIN();
