/**
 * @file
 * Fig. 12: performance of all four architectures normalized to E-FAM
 * — the paper's headline result. DeACT achieves up to 4.59x speedup
 * over I-FAM (1.8x on average); DeACT does not help (or slightly
 * hurts) the AT-insensitive benchmarks bc, lu, mg and sp.
 */

#include <fstream>
#include <iostream>

#include "harness/figure_report.hh"
#include "harness/runner.hh"
#include "sim/trace_sink.hh"

using namespace famsim;

int
main(int argc, char** argv)
{
    BenchOptions options = parseBenchArgs(argc, argv, 300000);
    ScopedQuietLogs quiet;

    FigureReport report("fig12_performance",
                        "Fig. 12: performance normalized to E-FAM",
                        "bench",
                        {"E-FAM", "I-FAM", "DeACT-W", "DeACT-N"});
    std::vector<double> ifam_rel, deactn_rel, deactn_over_ifam;
    double best_speedup = 0.0;
    std::string best_bench;

    for (const auto& profile : profiles::all()) {
        std::cerr << "fig12: " << profile.name << "...\n";
        double efam = 0.0;
        std::vector<double> row;
        for (ArchKind arch : {ArchKind::EFam, ArchKind::IFam,
                              ArchKind::DeactW, ArchKind::DeactN}) {
            RunResult r = runOne(
                makeConfig(profile, arch, options.instructions));
            if (arch == ArchKind::EFam)
                efam = r.ipc;
            row.push_back(efam > 0 ? r.ipc / efam : 0.0);
        }
        report.addRow(profile.name, row);
        ifam_rel.push_back(row[1]);
        deactn_rel.push_back(row[3]);
        if (row[1] > 0) {
            double speedup = row[3] / row[1];
            deactn_over_ifam.push_back(speedup);
            if (speedup > best_speedup) {
                best_speedup = speedup;
                best_bench = profile.name;
            }
        }
    }
    report.addSummary("ifam_vs_efam_geomean", geomean(ifam_rel));
    report.addSummary("deactn_vs_efam_geomean", geomean(deactn_rel));
    report.addSummary("deactn_over_ifam_geomean",
                      geomean(deactn_over_ifam));
    report.addSummary("best_speedup_over_ifam", best_speedup);
    report.addMeta("best_speedup_bench", best_bench);
    // FAMSIM_TRACE: one extra traced run of the mcf/DeACT-N point
    // with the Chrome timeline written to the given path. The figure's
    // exported numbers come from the untraced runs above.
    const std::string trace_path = traceFromEnv();
    if (!trace_path.empty()) {
        SystemConfig config = makeConfig(profiles::byName("mcf"),
                                         ArchKind::DeactN,
                                         options.instructions);
        System system(config);
        TraceSink sink(system.traceLanes());
        system.attachTrace(&sink);
        system.run(threadsFromEnv(0));
        std::ofstream out(trace_path, std::ios::binary);
        if (out) {
            sink.write(out);
            std::cerr << "fig12: wrote " << sink.size()
                      << " trace events to " << trace_path << "\n";
        } else {
            std::cerr << "fig12: cannot open trace file '" << trace_path
                      << "'\n";
        }
    }
    report.addNote("paper: I-FAM 0.303 of E-FAM, DeACT-N 0.647; avg "
                   "speedup 1.8x, best 4.59x on cactus");
    return emitReport(report, options);
}
