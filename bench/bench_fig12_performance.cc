/**
 * @file
 * Fig. 12: performance of all four architectures normalized to E-FAM
 * — the paper's headline result. DeACT achieves up to 4.59x speedup
 * over I-FAM (1.8x on average); DeACT does not help (or slightly
 * hurts) the AT-insensitive benchmarks bc, lu, mg and sp.
 */

#include <iostream>

#include "harness/runner.hh"

using namespace famsim;

int
main()
{
    ScopedQuietLogs quiet;
    std::uint64_t instr = instrBudget(300000);

    SeriesTable table("Fig. 12: performance normalized to E-FAM",
                      "bench", {"E-FAM", "I-FAM", "DeACT-W", "DeACT-N"});
    std::vector<double> ifam_rel, deactn_rel, deactn_over_ifam;
    double best_speedup = 0.0;
    std::string best_bench;

    for (const auto& profile : profiles::all()) {
        std::cerr << "fig12: " << profile.name << "...\n";
        double efam = 0.0;
        std::vector<double> row;
        for (ArchKind arch : {ArchKind::EFam, ArchKind::IFam,
                              ArchKind::DeactW, ArchKind::DeactN}) {
            RunResult r = runOne(makeConfig(profile, arch, instr));
            if (arch == ArchKind::EFam)
                efam = r.ipc;
            row.push_back(efam > 0 ? r.ipc / efam : 0.0);
        }
        table.addRow(profile.name, row);
        ifam_rel.push_back(row[1]);
        deactn_rel.push_back(row[3]);
        if (row[1] > 0) {
            double speedup = row[3] / row[1];
            deactn_over_ifam.push_back(speedup);
            if (speedup > best_speedup) {
                best_speedup = speedup;
                best_bench = profile.name;
            }
        }
    }
    table.print(std::cout);
    std::cout << "I-FAM average perf vs E-FAM   : " << geomean(ifam_rel)
              << "  (paper: 0.303, i.e. -69.7 %)\n";
    std::cout << "DeACT-N average perf vs E-FAM : "
              << geomean(deactn_rel) << "  (paper: 0.647, i.e. -35.3 %)\n";
    std::cout << "DeACT-N avg speedup over I-FAM: "
              << geomean(deactn_over_ifam) << "x  (paper: 1.8x)\n";
    std::cout << "best speedup over I-FAM       : " << best_speedup
              << "x on " << best_bench << "  (paper: 4.59x on cactus)\n";
    return 0;
}
