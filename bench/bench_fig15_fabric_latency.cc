/**
 * @file
 * Fig. 15: DeACT-N speedup over I-FAM as the fabric latency varies
 * from 100 ns to 6 us. The paper finds the speedup grows with fabric
 * latency (1.79x at 100 ns, up to 3.3x at 6 us for pf) because every
 * avoided FAM page-table walk saves full fabric round trips.
 */

#include <iostream>

#include "harness/executor.hh"
#include "harness/figure_report.hh"
#include "harness/runner.hh"

using namespace famsim;

int
main(int argc, char** argv)
{
    BenchOptions options = parseBenchArgs(argc, argv, 150000);
    ScopedQuietLogs quiet;
    auto groups = sensitivityGroups();

    std::vector<std::string> group_names;
    for (const auto& [name, group] : groups)
        group_names.push_back(name);

    // Deliberately denser than the fig15_fabric_latency sweep (which
    // pins {100ns, 500ns, 1us, 3us, 6us} for regression): the bench
    // reproduces the paper's full grid including 250/750 ns.
    const std::pair<const char*, Tick> points[] = {
        {"100ns", 100 * kNanosecond}, {"250ns", 250 * kNanosecond},
        {"500ns", 500 * kNanosecond}, {"750ns", 750 * kNanosecond},
        {"1us", 1 * kMicrosecond},    {"3us", 3 * kMicrosecond},
        {"6us", 6 * kMicrosecond},
    };

    // Flatten the whole grid into one (I-FAM, DeACT-N)-pair list and
    // fan it out through the executor (--sweep-jobs workers); rows are
    // reassembled from the slot-ordered results below.
    std::vector<SystemConfig> configs;
    for (const auto& [label, latency] : points) {
        for (const auto& [name, group] : groups) {
            for (const auto& profile : group) {
                SystemConfig ifam = makeConfig(profile, ArchKind::IFam,
                                               options.instructions);
                // Keep the node-STU hop fixed, sweep the long haul.
                ifam.fabric.latency = longHaulFabricLatency(
                    latency, ifam.stu.nodeLinkLatency);
                SystemConfig deact =
                    makeConfig(profile, ArchKind::DeactN,
                               options.instructions);
                deact.fabric.latency = ifam.fabric.latency;
                configs.push_back(std::move(ifam));
                configs.push_back(std::move(deact));
            }
        }
    }
    std::cerr << "fig15: " << configs.size() << " runs across "
              << options.sweepJobs << " sweep jobs...\n";
    SweepExecutor executor(options.sweepJobs);
    const std::vector<RunResult> results =
        executor.runResults(configs, 0);

    FigureReport report(
        "fig15_fabric_latency",
        "Fig. 15: DeACT-N speedup wrt I-FAM vs fabric latency",
        "latency", group_names);
    std::size_t cursor = 0;
    for (const auto& [label, latency] : points) {
        std::vector<double> row;
        for (const auto& [name, group] : groups) {
            std::vector<double> speedups;
            for (std::size_t p = 0; p < group.size(); ++p) {
                double i = results[cursor++].ipc;
                double d = results[cursor++].ipc;
                speedups.push_back(i > 0 ? d / i : 0.0);
            }
            row.push_back(geomean(speedups));
        }
        report.addRow(label, row);
    }
    report.addNote("paper: speedup rises with latency; 1.79x at 100 ns "
                   "-> 3.3x at 6 us for pf");
    return emitReport(report, options);
}
