/**
 * @file
 * Wall-clock benchmark of the pooled sweep executor (the BENCH_sweep
 * trajectory): every paper sweep (Fig. 13-15 in full, Fig. 16 trimmed
 * to the paper's 1-8 node range — see benchSweeps) exported three
 * ways —
 *
 *   fresh_serial  the pre-executor path: one fresh System per point,
 *                 points run back to back (writeScenarioJson's
 *                 self-constructing overload);
 *   jobs1_reuse   the executor at one job: same serial order, but
 *                 compatible consecutive points reset-and-reuse one
 *                 System instead of reconstructing (prefaulted page
 *                 tables and FAM layout survive);
 *   pooled        the executor at --sweep-jobs workers (default
 *                 FAMSIM_SWEEP_JOBS, then 4).
 *
 * All three produce byte-identical JSON (asserted here); only the
 * wall clock differs. Like bench_throughput the values are
 * host-dependent, so CI gates on the *speedup ratios* against a
 * checked-in baseline (bench/baseline_sweep.json) rather than raw
 * seconds:
 *
 *   bench_sweep_wall [--json] [--out path] [--sweep-jobs n]
 *                    [--baseline path]
 *
 * With --baseline the run compares the total row's reuse_speedup and
 * pooled_speedup against the same row in a previous export and exits
 * 3 if either falls below baseline * (1 - FAMSIM_BENCH_TOLERANCE)
 * (default 0.25). The baseline was recorded on a single-core host
 * (speedups ~1x), so the gate is a floor: multi-core runners only
 * beat it, while a pooled path that became *slower* than serial
 * trips it anywhere.
 */

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "harness/executor.hh"
#include "harness/figure_report.hh"
#include "harness/scenario.hh"
#include "harness/sweep.hh"

using namespace famsim;

namespace {

volatile std::size_t g_sink = 0;

/** The pre-executor serial reference: fresh System per point. */
std::string
freshSerialSweepJson(const Sweep& sweep)
{
    // Mirrors writeSweepJson's header/framing bytes so the comparison
    // below proves the executor path byte-compatible with the old
    // point-at-a-time export; the body runs each point through the
    // self-constructing writeScenarioJson overload, exactly like the
    // pre-executor code did.
    std::ostringstream os;
    os << "{\n  \"sweep\": ";
    json::writeString(os, sweep.name);
    os << ",\n  \"description\": ";
    json::writeString(os, sweep.description);
    os << ",\n  \"headline_metric\": ";
    json::writeString(os, sweep.headlineMetric);
    os << ",\n  \"axis\": ";
    json::writeString(os, sweep.axis.name);
    os << ",\n  \"axis_values\": [";
    for (std::size_t i = 0; i < sweep.axis.points.size(); ++i) {
        os << (i ? ", " : "");
        json::writeNumber(os, sweep.axis.points[i].value);
    }
    os << "]";
    os << ",\n  \"points\": [";
    const std::vector<Scenario> points = sweep.expand();
    for (std::size_t i = 0; i < points.size(); ++i) {
        os << (i ? "," : "") << "\n    ";
        std::ostringstream nested;
        writeScenarioJson(nested, points[i], 0);
        // Indent 4, lazily (no trailing whitespace), like IndentingBuf
        // (which starts mid-line: the framing wrote the first indent).
        const std::string body = nested.str();
        bool at_line_start = false;
        for (char c : body) {
            if (at_line_start && c != '\n')
                os << "    ";
            at_line_start = c == '\n';
            os << c;
        }
    }
    os << "\n  ]\n}\n";
    return os.str();
}

/**
 * The benchmarked sweep set: Fig. 13-15 in full, Fig. 16 trimmed to
 * the paper's 1-8 node range. The 16/32/64-node scaling extension
 * points are dropped here — one 64-node System peaks at ~3.5 GB RSS,
 * so pooling several of them would benchmark the host's allocator
 * (and risk OOM on CI runners) instead of the executor; their wall
 * clock is tracked by bench_throughput's fig16n* rows.
 */
std::vector<Sweep>
benchSweeps()
{
    std::vector<Sweep> out;
    for (const std::string& name : SweepRegistry::paper().names()) {
        Sweep sweep = SweepRegistry::paper().byName(name);
        if (name == "fig16_num_nodes")
            sweep.axis.points.resize(4); // n1, n2, n4, n8
        out.push_back(std::move(sweep));
    }
    return out;
}

/** Extract row @p name's values array (FigureReport::writeJson layout). */
bool
baselineValues(const std::string& json, const std::string& name,
               std::vector<double>& out)
{
    std::string needle = "{\"name\": \"" + name + "\", \"values\": [";
    std::size_t at = json.find(needle);
    if (at == std::string::npos)
        return false;
    std::size_t start = at + needle.size();
    std::size_t end = json.find(']', start);
    if (end == std::string::npos)
        return false;
    std::stringstream ss(json.substr(start, end - start));
    out.clear();
    std::string tok;
    while (std::getline(ss, tok, ','))
        out.push_back(std::strtod(tok.c_str(), nullptr));
    return !out.empty();
}

} // namespace

int
main(int argc, char** argv)
{
    // Peel off the flags this bench adds on top of the shared harness.
    std::string baseline_path;
    std::vector<char*> pass_argv{argv[0]};
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--baseline" && i + 1 < argc)
            baseline_path = argv[++i];
        else
            pass_argv.push_back(argv[i]);
    }
    BenchOptions options =
        parseBenchArgs(static_cast<int>(pass_argv.size()),
                       pass_argv.data(), /*instr_fallback=*/0);
    // Unlike the figure benches the pooled mode should exercise real
    // fan-out by default: 4 jobs unless the user said otherwise.
    const unsigned pooled_jobs =
        options.sweepJobs > 1 ? options.sweepJobs : 4;

    ScopedQuietLogs quiet;
    FigureReport report(
        "BENCH_sweep",
        "Sweep-suite wall clock: fresh-serial vs executor (reuse, "
        "pooled)",
        "sweep",
        {"fresh_serial_s", "jobs1_reuse_s", "pooled_s", "reuse_speedup",
         "pooled_speedup"});

    double total_fresh = 0.0, total_jobs1 = 0.0, total_pooled = 0.0;
    for (const Sweep& sweep : benchSweeps()) {
        const std::string& name = sweep.name;
        std::cerr << "sweep_wall: " << name << "...\n";
        std::string fresh_json, jobs1_json, pooled_json;
        double fresh_s = bestOfSeconds(
            1, [&] { fresh_json = freshSerialSweepJson(sweep); });
        double jobs1_s = bestOfSeconds(
            1, [&] { jobs1_json = runSweepJson(sweep, 0, 1); });
        double pooled_s = bestOfSeconds(1, [&] {
            pooled_json = runSweepJson(sweep, 0, pooled_jobs);
        });
        // The speedups below are only meaningful if all three modes
        // did the same work; byte-identity is the executor's contract.
        if (jobs1_json != fresh_json || pooled_json != fresh_json) {
            std::cerr << "bench_sweep_wall: export mismatch on " << name
                      << " — executor output is not byte-identical\n";
            return 3;
        }
        g_sink = g_sink + fresh_json.size();
        total_fresh += fresh_s;
        total_jobs1 += jobs1_s;
        total_pooled += pooled_s;
        report.addRow(name, {fresh_s, jobs1_s, pooled_s,
                             fresh_s / jobs1_s, fresh_s / pooled_s});
    }
    report.addRow("total",
                  {total_fresh, total_jobs1, total_pooled,
                   total_fresh / total_jobs1, total_fresh / total_pooled});
    report.addSummary("sweep_jobs", static_cast<double>(pooled_jobs));
    report.addSummary("reuse_speedup", total_fresh / total_jobs1);
    report.addSummary("pooled_speedup", total_fresh / total_pooled);
    report.addNote("wall clock is host-dependent; CI gates the total "
                   "row's speedup ratios against bench/"
                   "baseline_sweep.json, not the raw seconds");

    int rc = emitReport(report, options);
    if (rc != 0 || baseline_path.empty())
        return rc;

    // --- speedup-ratio regression gate against a prior export ---
    std::ifstream in(baseline_path);
    if (!in) {
        std::cerr << "bench_sweep_wall: cannot read baseline '"
                  << baseline_path << "'\n";
        return 3;
    }
    std::stringstream buf;
    buf << in.rdbuf();
    std::string base_json = buf.str();

    double tolerance = 0.25;
    if (const char* env = std::getenv("FAMSIM_BENCH_TOLERANCE"))
        tolerance = std::strtod(env, nullptr);

    std::ostringstream current;
    report.writeJson(current);
    std::string cur_json = current.str();

    bool failed = false;
    std::vector<double> base, cur;
    if (!baselineValues(base_json, "total", base) ||
        !baselineValues(cur_json, "total", cur) || base.size() < 5 ||
        cur.size() < 5) {
        std::cerr << "bench_sweep_wall: baseline lacks a total row — "
                     "skipping gate\n";
        return 0;
    }
    const char* kRatioName[2] = {"reuse_speedup", "pooled_speedup"};
    for (int r = 0; r < 2; ++r) {
        double base_ratio = base[3 + r], cur_ratio = cur[3 + r];
        std::cerr << "gate " << kRatioName[r] << ": " << cur_ratio
                  << " vs baseline " << base_ratio << "\n";
        if (cur_ratio < base_ratio * (1.0 - tolerance)) {
            std::cerr << "bench_sweep_wall: REGRESSION on "
                      << kRatioName[r] << " (allowed -"
                      << tolerance * 100 << "%)\n";
            failed = true;
        }
    }
    return failed ? 3 : 0;
}
