/**
 * @file
 * Table III: the evaluated applications and their MPKI. Runs each
 * workload profile on the E-FAM baseline and reports measured LLC
 * MPKI against the paper's values — the calibration check for the
 * synthetic workload substitution (DESIGN.md §1).
 */

#include <iostream>

#include "harness/runner.hh"

using namespace famsim;

int
main()
{
    ScopedQuietLogs quiet;
    std::uint64_t instr = instrBudget(200000);

    SeriesTable table("Table III: applications and MPKI", "bench",
                      {"paper MPKI", "measured", "AT-sensitive"});
    for (const auto& profile : profiles::all()) {
        std::cerr << "table3: " << profile.name << "...\n";
        RunResult r = runOne(makeConfig(profile, ArchKind::EFam, instr));
        table.addRow(profile.name,
                     {profile.paperMpki, r.mpki,
                      profile.atSensitive ? 1.0 : 0.0});
    }
    table.print(std::cout);
    std::cout << "(suite mapping: mcf/cactus/astar SPEC2006; "
                 "frqm/canl PARSEC; bc/cc/ccsv/sssp GAP; pf Mantevo; "
                 "dc/lu/mg/sp NAS)\n";
    return 0;
}
