/**
 * @file
 * Table III: the evaluated applications and their MPKI. Runs each
 * workload profile on the E-FAM baseline and reports measured LLC
 * MPKI against the paper's values — the calibration check for the
 * synthetic workload substitution (DESIGN.md §1).
 */

#include <iostream>

#include "harness/figure_report.hh"
#include "harness/runner.hh"

using namespace famsim;

int
main(int argc, char** argv)
{
    BenchOptions options = parseBenchArgs(argc, argv, 200000);
    ScopedQuietLogs quiet;

    FigureReport report("table3_applications",
                        "Table III: applications and MPKI", "bench",
                        {"paper MPKI", "measured", "AT-sensitive"});
    for (const auto& profile : profiles::all()) {
        std::cerr << "table3: " << profile.name << "...\n";
        RunResult r = runOne(
            makeConfig(profile, ArchKind::EFam, options.instructions));
        report.addRow(profile.name,
                      {profile.paperMpki, r.mpki,
                       profile.atSensitive ? 1.0 : 0.0});
    }
    report.addNote("suite mapping: mcf/cactus/astar SPEC2006; "
                   "frqm/canl PARSEC; bc/cc/ccsv/sssp GAP; pf Mantevo; "
                   "dc/lu/mg/sp NAS");
    return emitReport(report, options);
}
