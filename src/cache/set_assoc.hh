/**
 * @file
 * Generic set-associative tag store with pluggable replacement.
 *
 * Used by the data caches, the TLBs, the PTW caches, the STU cache
 * organizations and the in-DRAM FAM translation cache — everything in
 * the paper that behaves like "a set-associative array of (tag, value)".
 */

#ifndef FAMSIM_CACHE_SET_ASSOC_HH
#define FAMSIM_CACHE_SET_ASSOC_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "sim/logging.hh"
#include "sim/rng.hh"

namespace famsim {

/** Replacement policy selection for SetAssocCache. */
enum class ReplPolicy : std::uint8_t {
    Lru,     //!< Least recently used (exact, timestamp based).
    Random,  //!< Uniform random victim (the paper's translation cache).
    TreePlru //!< Tree pseudo-LRU.
};

/** @return printable name of a replacement policy. */
[[nodiscard]] constexpr const char*
toString(ReplPolicy p)
{
    switch (p) {
      case ReplPolicy::Lru: return "LRU";
      case ReplPolicy::Random: return "Random";
      case ReplPolicy::TreePlru: return "TreePLRU";
    }
    return "?";
}

/**
 * Set-associative cache of (key -> V).
 *
 * Keys are full 64-bit identifiers (block numbers, page numbers...);
 * the set index is key % sets and the stored tag is key / sets.
 */
template <typename V>
class SetAssocCache
{
  public:
    /** Result of an insertion that displaced a valid entry. */
    struct Evicted {
        std::uint64_t key;
        V value;
    };

    SetAssocCache(std::size_t sets, std::size_t ways,
                  ReplPolicy policy = ReplPolicy::Lru,
                  std::uint64_t seed = 1)
        : sets_(sets),
          ways_(ways),
          policy_(policy),
          lines_(sets * ways),
          plruBits_(policy == ReplPolicy::TreePlru ? sets * ways : 0, 0),
          rng_(seed, 0x5e77)
    {
        FAMSIM_ASSERT(sets_ > 0 && ways_ > 0,
                      "cache must have >= 1 set and way");
    }

    /** Look up @p key, updating recency on hit. @return value or null. */
    V*
    lookup(std::uint64_t key)
    {
        Line* line = find(key);
        if (!line)
            return nullptr;
        touch(key, line);
        return &line->value;
    }

    /** Look up without updating replacement state. */
    const V*
    probe(std::uint64_t key) const
    {
        const Line* line = find(key);
        return line ? &line->value : nullptr;
    }

    /**
     * Insert (or overwrite) @p key. @return the displaced valid entry,
     * if the victim way held one and its key differs from @p key.
     */
    std::optional<Evicted>
    insert(std::uint64_t key, V value)
    {
        std::size_t set = setIndex(key);
        std::uint64_t tag = key / sets_;
        Line* free_line = nullptr;
        for (std::size_t w = 0; w < ways_; ++w) {
            Line& line = lines_[set * ways_ + w];
            if (line.valid && line.tag == tag) {
                line.value = std::move(value);
                touch(key, &line);
                return std::nullopt;
            }
            if (!line.valid && !free_line)
                free_line = &line;
        }
        Line* victim = free_line ? free_line : pickVictim(set);
        std::optional<Evicted> evicted;
        if (victim->valid)
            evicted = Evicted{victim->tag * sets_ + set,
                              std::move(victim->value)};
        victim->valid = true;
        victim->tag = tag;
        victim->value = std::move(value);
        touch(key, victim);
        return evicted;
    }

    /** Invalidate @p key if present. @return true if it was present. */
    bool
    invalidate(std::uint64_t key)
    {
        Line* line = find(key);
        if (!line)
            return false;
        invalidateLine(*line);
        return true;
    }

    /** Invalidate every entry. */
    void
    invalidateAll()
    {
        for (auto& line : lines_)
            invalidateLine(line);
    }

    /** Invalidate entries whose value matches @p pred. @return count. */
    template <typename Pred>
    std::size_t
    invalidateIf(Pred pred)
    {
        std::size_t count = 0;
        for (auto& line : lines_) {
            if (line.valid && pred(line.value)) {
                invalidateLine(line);
                ++count;
            }
        }
        return count;
    }

    /** Number of valid entries (linear scan; for tests/stats). */
    [[nodiscard]] std::size_t
    countValid() const
    {
        std::size_t n = 0;
        for (const auto& line : lines_)
            n += line.valid ? 1 : 0;
        return n;
    }

    [[nodiscard]] std::size_t sets() const { return sets_; }
    [[nodiscard]] std::size_t ways() const { return ways_; }
    [[nodiscard]] std::size_t capacity() const { return sets_ * ways_; }
    [[nodiscard]] ReplPolicy policy() const { return policy_; }

  private:
    struct Line {
        bool valid = false;
        std::uint64_t tag = 0;
        std::uint64_t lastUse = 0;
        V value{};
    };

    [[nodiscard]] std::size_t setIndex(std::uint64_t key) const
    {
        return static_cast<std::size_t>(key % sets_);
    }

    Line*
    find(std::uint64_t key)
    {
        std::size_t set = setIndex(key);
        std::uint64_t tag = key / sets_;
        for (std::size_t w = 0; w < ways_; ++w) {
            Line& line = lines_[set * ways_ + w];
            if (line.valid && line.tag == tag)
                return &line;
        }
        return nullptr;
    }

    const Line*
    find(std::uint64_t key) const
    {
        return const_cast<SetAssocCache*>(this)->find(key);
    }

    /**
     * Drop a line and its replacement state. A stale MRU bit (or
     * lastUse stamp) left behind by an invalidation storm — e.g. the
     * TLB shootdowns after a job migration — would keep protecting the
     * way from eviction and bias victim selection long after refill.
     */
    void
    invalidateLine(Line& line)
    {
        line.valid = false;
        line.lastUse = 0;
        if (policy_ == ReplPolicy::TreePlru)
            plruBits_[static_cast<std::size_t>(&line - lines_.data())] = 0;
    }

    void
    touch(std::uint64_t key, Line* line)
    {
        line->lastUse = ++useClock_;
        if (policy_ == ReplPolicy::TreePlru) {
            // Mark the accessed way as most recently used by setting
            // its bit; victims are chosen among zero bits.
            std::size_t set = setIndex(key);
            std::size_t w = static_cast<std::size_t>(line -
                                                     &lines_[set * ways_]);
            auto* bits = &plruBits_[set * ways_];
            bits[w] = 1;
            // If all bits set, clear all but the current one.
            bool all = true;
            for (std::size_t i = 0; i < ways_; ++i)
                all = all && bits[i];
            if (all) {
                for (std::size_t i = 0; i < ways_; ++i)
                    bits[i] = (i == w) ? 1 : 0;
            }
        }
    }

    Line*
    pickVictim(std::size_t set)
    {
        Line* base = &lines_[set * ways_];
        switch (policy_) {
          case ReplPolicy::Random:
            return base + rng_.below(static_cast<std::uint32_t>(ways_));
          case ReplPolicy::TreePlru: {
            auto* bits = &plruBits_[set * ways_];
            for (std::size_t w = 0; w < ways_; ++w) {
                if (!bits[w])
                    return base + w;
            }
            return base; // all bits set (transient); fall back to way 0
          }
          case ReplPolicy::Lru:
          default: {
            Line* victim = base;
            for (std::size_t w = 1; w < ways_; ++w) {
                if (base[w].lastUse < victim->lastUse)
                    victim = base + w;
            }
            return victim;
          }
        }
    }

    std::size_t sets_;
    std::size_t ways_;
    ReplPolicy policy_;
    std::vector<Line> lines_;
    std::vector<std::uint8_t> plruBits_;
    std::uint64_t useClock_ = 0;
    Rng rng_;
};

} // namespace famsim

#endif // FAMSIM_CACHE_SET_ASSOC_HH
