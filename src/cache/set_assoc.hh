/**
 * @file
 * Generic set-associative tag store with pluggable replacement.
 *
 * Used by the data caches, the TLBs, the PTW caches, the STU cache
 * organizations and the in-DRAM FAM translation cache — everything in
 * the paper that behaves like "a set-associative array of (tag, value)".
 *
 * Layout: structure-of-arrays. Tags live in one contiguous per-set
 * array probed with a branchless compare-into-bitmask loop, validity is
 * one bitmask word per set, and replacement metadata is split out per
 * policy (LRU timestamps only exist for LRU caches, MRU bitmasks only
 * for TreePLRU, Random keeps none). Replacement decisions and the RNG
 * draw order are identical to the original array-of-structs store —
 * see DESIGN.md "SoA tag store" for the equivalence argument that keeps
 * the golden files stable.
 */

#ifndef FAMSIM_CACHE_SET_ASSOC_HH
#define FAMSIM_CACHE_SET_ASSOC_HH

#include <algorithm>
#include <bit>
#include <cstdint>
#include <optional>
#include <vector>

#include "sim/logging.hh"
#include "sim/rng.hh"

namespace famsim {

/** Replacement policy selection for SetAssocCache. */
enum class ReplPolicy : std::uint8_t {
    Lru,     //!< Least recently used (exact, timestamp based).
    Random,  //!< Uniform random victim (the paper's translation cache).
    TreePlru //!< Tree pseudo-LRU.
};

/** @return printable name of a replacement policy. */
[[nodiscard]] constexpr const char*
toString(ReplPolicy p)
{
    switch (p) {
      case ReplPolicy::Lru: return "LRU";
      case ReplPolicy::Random: return "Random";
      case ReplPolicy::TreePlru: return "TreePLRU";
    }
    return "?";
}

/**
 * Set-associative cache of (key -> V).
 *
 * Keys are full 64-bit identifiers (block numbers, page numbers...);
 * the set index is key % sets and the stored tag is key / sets.
 */
template <typename V>
class SetAssocCache
{
  public:
    /** Result of an insertion that displaced a valid entry. */
    struct Evicted {
        std::uint64_t key;
        V value;
    };

    SetAssocCache(std::size_t sets, std::size_t ways,
                  ReplPolicy policy = ReplPolicy::Lru,
                  std::uint64_t seed = 1)
        : sets_(sets),
          ways_(ways),
          policy_(policy),
          setsPow2_(sets > 0 && (sets & (sets - 1)) == 0),
          setShift_(setsPow2_
                        ? static_cast<unsigned>(std::countr_zero(sets))
                        : 0),
          maskWords_(ways ? (ways + 63) / 64 : 1),
          lastWordMask_(ways % 64 ? (std::uint64_t{1} << (ways % 64)) - 1
                                  : ~std::uint64_t{0}),
          sentinelTags_(sets >= 2),
          tags_(sets * ways, kInvalidTag),
          values_(sets * ways),
          valid_(sets * maskWords_, 0),
          lastUse_(policy == ReplPolicy::Lru ? sets * ways : 0, 0),
          mruBits_(policy == ReplPolicy::TreePlru ? sets * maskWords_ : 0,
                   0),
          rng_(seed, 0x5e77)
    {
        FAMSIM_ASSERT(sets_ > 0 && ways_ > 0,
                      "cache must have >= 1 set and way");
    }

    /** Look up @p key, updating recency on hit. @return value or null. */
    V*
    lookup(std::uint64_t key)
    {
        std::size_t set = setIndex(key);
        // Overlap the payload (and LRU stamp) line fills with the tag
        // probe — they live in separate arrays in the SoA layout.
        __builtin_prefetch(&values_[set * ways_]);
        if (policy_ == ReplPolicy::Lru)
            __builtin_prefetch(&lastUse_[set * ways_], 1);
        std::size_t way = findWay(set, tagOf(key));
        if (way == kMiss)
            return nullptr;
        touch(set, way);
        return &values_[set * ways_ + way];
    }

    /** Look up without updating replacement state. */
    const V*
    probe(std::uint64_t key) const
    {
        std::size_t set = setIndex(key);
        std::size_t way = findWay(set, tagOf(key));
        return way == kMiss ? nullptr : &values_[set * ways_ + way];
    }

    /**
     * Insert (or overwrite) @p key. @return the displaced valid entry,
     * if the victim way held one and its key differs from @p key.
     */
    std::optional<Evicted>
    insert(std::uint64_t key, V value)
    {
        std::size_t set = setIndex(key);
        std::uint64_t tag = tagOf(key);
        std::size_t base = set * ways_;
        std::size_t way = findWay(set, tag);
        if (way != kMiss) {
            values_[base + way] = std::move(value);
            touch(set, way);
            return std::nullopt;
        }
        // The first invalid way (in way order) is filled before any
        // replacement decision — same priority as the AoS store.
        way = kMiss;
        for (std::size_t c = 0; c < maskWords_ && way == kMiss; ++c) {
            std::uint64_t free =
                ~valid_[set * maskWords_ + c] & wordMask(c);
            if (free)
                way = c * 64 +
                      static_cast<std::size_t>(std::countr_zero(free));
        }
        bool had_free = way != kMiss;
        if (!had_free)
            way = pickVictim(set);
        std::optional<Evicted> evicted;
        if (!had_free)
            evicted = Evicted{tags_[base + way] * sets_ + set,
                              std::move(values_[base + way])};
        valid_[set * maskWords_ + way / 64] |= std::uint64_t{1}
                                               << (way % 64);
        tags_[base + way] = tag;
        values_[base + way] = std::move(value);
        touch(set, way);
        return evicted;
    }

    /** Invalidate @p key if present. @return true if it was present. */
    bool
    invalidate(std::uint64_t key)
    {
        std::size_t set = setIndex(key);
        std::size_t way = findWay(set, tagOf(key));
        if (way == kMiss)
            return false;
        invalidateWay(set, way);
        return true;
    }

    /** Invalidate every entry. */
    void
    invalidateAll()
    {
        for (auto& word : valid_)
            word = 0;
        for (auto& tag : tags_)
            tag = kInvalidTag;
        for (auto& stamp : lastUse_)
            stamp = 0;
        for (auto& bits : mruBits_)
            bits = 0;
    }

    /** Invalidate entries whose value matches @p pred. @return count. */
    template <typename Pred>
    std::size_t
    invalidateIf(Pred pred)
    {
        std::size_t count = 0;
        for (std::size_t set = 0; set < sets_; ++set) {
            for (std::size_t w = 0; w < ways_; ++w) {
                if ((valid_[set * maskWords_ + w / 64] >> (w % 64)) & 1 &&
                    pred(values_[set * ways_ + w])) {
                    invalidateWay(set, w);
                    ++count;
                }
            }
        }
        return count;
    }

    /** Number of valid entries (bitmask popcount; for tests/stats). */
    [[nodiscard]] std::size_t
    countValid() const
    {
        std::size_t n = 0;
        for (std::uint64_t bits : valid_)
            n += static_cast<std::size_t>(std::popcount(bits));
        return n;
    }

    [[nodiscard]] std::size_t sets() const { return sets_; }
    [[nodiscard]] std::size_t ways() const { return ways_; }
    [[nodiscard]] std::size_t capacity() const { return sets_ * ways_; }
    [[nodiscard]] ReplPolicy policy() const { return policy_; }

  private:
    static constexpr std::size_t kMiss = ~std::size_t{0};
    /** Tag stored in invalid ways (unreachable when sets >= 2). */
    static constexpr std::uint64_t kInvalidTag = ~std::uint64_t{0};

    [[nodiscard]] std::size_t
    setIndex(std::uint64_t key) const
    {
        if (setsPow2_)
            return static_cast<std::size_t>(key & (sets_ - 1));
        return static_cast<std::size_t>(key % sets_);
    }

    [[nodiscard]] std::uint64_t
    tagOf(std::uint64_t key) const
    {
        return setsPow2_ ? key >> setShift_ : key / sets_;
    }

    /** Mask of in-range way bits for mask word @p word. */
    [[nodiscard]] std::uint64_t
    wordMask(std::size_t word) const
    {
        return word + 1 == maskWords_ ? lastWordMask_ : ~std::uint64_t{0};
    }

    /**
     * Probe one set for @p tag. The compare loop accumulates a match
     * bitmask over all ways without branching, so the compiler can
     * unroll/vectorize it; at most one bit survives. With >= 2 sets
     * the tag of a valid line is key / sets < kInvalidTag, so invalid
     * ways hold the sentinel and the probe needs no separate validity
     * word (one less cache line per lookup). A single-set cache could
     * legitimately store tag kInvalidTag (tag == key), so it keeps
     * masking with the valid word instead. Masks are one or more
     * 64-bit words per set (maskWords_ is 1 for every configuration
     * with <= 64 ways; DeACT-N's pairsPerWay expansion can exceed it).
     */
    [[nodiscard]] std::size_t
    findWay(std::size_t set, std::uint64_t tag) const
    {
        const std::uint64_t* tags = tags_.data() + set * ways_;
        for (std::size_t c = 0; c < maskWords_; ++c) {
            std::size_t begin = c * 64;
            std::size_t end = std::min(ways_, begin + 64);
            std::uint64_t match = 0;
            for (std::size_t w = begin; w < end; ++w)
                match |= static_cast<std::uint64_t>(tags[w] == tag)
                         << (w - begin);
            if (!sentinelTags_)
                match &= valid_[set * maskWords_ + c];
            if (match)
                return begin + static_cast<std::size_t>(
                                   std::countr_zero(match));
        }
        return kMiss;
    }

    /**
     * Drop a way and its replacement state. A stale MRU bit (or
     * lastUse stamp) left behind by an invalidation storm — e.g. the
     * TLB shootdowns after a job migration — would keep protecting the
     * way from eviction and bias victim selection long after refill.
     */
    void
    invalidateWay(std::size_t set, std::size_t way)
    {
        std::uint64_t bit = std::uint64_t{1} << (way % 64);
        valid_[set * maskWords_ + way / 64] &= ~bit;
        tags_[set * ways_ + way] = kInvalidTag;
        if (policy_ == ReplPolicy::Lru)
            lastUse_[set * ways_ + way] = 0;
        else if (policy_ == ReplPolicy::TreePlru)
            mruBits_[set * maskWords_ + way / 64] &= ~bit;
    }

    void
    touch(std::size_t set, std::size_t way)
    {
        switch (policy_) {
          case ReplPolicy::Lru:
            lastUse_[set * ways_ + way] = ++useClock_;
            break;
          case ReplPolicy::TreePlru: {
            // Mark the accessed way as most recently used by setting
            // its bit; victims are chosen among zero bits. When every
            // way's bit is set, keep only the current one — mask-word
            // compares instead of the old all-ways scan.
            std::uint64_t* words = mruBits_.data() + set * maskWords_;
            words[way / 64] |= std::uint64_t{1} << (way % 64);
            bool all = true;
            for (std::size_t c = 0; c < maskWords_; ++c)
                all = all && words[c] == wordMask(c);
            if (all) {
                for (std::size_t c = 0; c < maskWords_; ++c)
                    words[c] = 0;
                words[way / 64] = std::uint64_t{1} << (way % 64);
            }
            break;
          }
          case ReplPolicy::Random:
            break;
        }
    }

    [[nodiscard]] std::size_t
    pickVictim(std::size_t set)
    {
        switch (policy_) {
          case ReplPolicy::Random:
            return rng_.below(static_cast<std::uint32_t>(ways_));
          case ReplPolicy::TreePlru: {
            // First zero MRU bit; all-set is transient (touch()
            // resets it) — fall back to way 0.
            const std::uint64_t* words = mruBits_.data() + set * maskWords_;
            for (std::size_t c = 0; c < maskWords_; ++c) {
                std::uint64_t zeros = ~words[c] & wordMask(c);
                if (zeros)
                    return c * 64 + static_cast<std::size_t>(
                                        std::countr_zero(zeros));
            }
            return 0;
          }
          case ReplPolicy::Lru:
          default: {
            const std::uint64_t* stamps = lastUse_.data() + set * ways_;
            std::size_t victim = 0;
            for (std::size_t w = 1; w < ways_; ++w) {
                if (stamps[w] < stamps[victim])
                    victim = w;
            }
            return victim;
          }
        }
    }

    std::size_t sets_;
    std::size_t ways_;
    ReplPolicy policy_;
    bool setsPow2_;
    unsigned setShift_;
    /** 64-bit mask words per set (1 unless ways > 64). */
    std::size_t maskWords_;
    /** In-range way bits of the final mask word. */
    std::uint64_t lastWordMask_;
    /** Invalid ways hold kInvalidTag, so probes skip the valid word. */
    bool sentinelTags_;
    /** Per-line tag words, set-major ([set * ways + way]). */
    std::vector<std::uint64_t> tags_;
    /** Per-line payloads, same indexing as tags_. */
    std::vector<V> values_;
    /** One validity bitmask word per set (bit w = way w valid). */
    std::vector<std::uint64_t> valid_;
    /** LRU only: per-line recency stamps. */
    std::vector<std::uint64_t> lastUse_;
    /** TreePLRU only: one MRU bitmask word per set. */
    std::vector<std::uint64_t> mruBits_;
    std::uint64_t useClock_ = 0;
    Rng rng_;
};

} // namespace famsim

#endif // FAMSIM_CACHE_SET_ASSOC_HH
