#include "cache/cache_level.hh"

#include "sim/logging.hh"

namespace famsim {

CacheLevel::CacheLevel(Simulation& sim, const std::string& name,
                       const CacheParams& params, MemSink& next)
    : Component(sim, name),
      params_(params),
      next_(next),
      tags_(params.sizeBytes / kBlockSize / params.assoc, params.assoc,
            params.policy, sim.seed()),
      hits_(statCounter("hits", "cache hits")),
      misses_(statCounter("misses", "cache misses")),
      writebacks_(statCounter("writebacks", "dirty evictions")),
      mshrMerges_(statCounter("mshr_merges",
                              "misses merged into an outstanding fill"))
{
    FAMSIM_ASSERT(params.sizeBytes % (kBlockSize * params.assoc) == 0,
                  "cache size not divisible into sets: ", name);
}

void
CacheLevel::access(const PktPtr& pkt)
{
    sim_.events().scheduleAfter(params_.latency,
                                [this, pkt] { lookup(pkt); });
}

void
CacheLevel::lookup(const PktPtr& pkt)
{
    std::uint64_t block_key = pkt->npa.value() / kBlockSize;
    if (LineMeta* meta = tags_.lookup(block_key)) {
        ++hits_;
        if (pkt->isWrite())
            meta->dirty = true;
        pkt->complete();
        return;
    }

    if (pkt->writeback) {
        // Dirty evictions never allocate here; pass them down toward
        // memory (they may still terminate in a lower cache level).
        next_.access(pkt);
        return;
    }

    ++misses_;
    auto [it, first] = mshrs_.try_emplace(block_key);
    it->second.push_back(pkt);
    if (!first) {
        ++mshrMerges_;
        return;
    }

    // Issue the fill to the next level. The fill inherits the kind and
    // origin of the packet that triggered it.
    PktPtr fill = makePacket(pkt->node, pkt->core, MemOp::Read, pkt->kind);
    fill->logicalNode = pkt->logicalNode;
    fill->job = pkt->job;
    fill->npa = NPAddr(pkt->npa.blockAddr().value());
    fill->vaddr = pkt->vaddr;
    fill->issued = sim_.curTick();
    fill->onDone = [this, block_key](Packet& p) {
        handleFill(block_key, nullptr);
        (void)p;
    };
    next_.access(fill);
}

void
CacheLevel::handleFill(std::uint64_t block_key, const PktPtr&)
{
    auto it = mshrs_.find(block_key);
    FAMSIM_ASSERT(it != mshrs_.end(), "fill for unknown MSHR in ", name());
    std::vector<PktPtr> waiters = std::move(it->second);
    mshrs_.erase(it);
    FAMSIM_ASSERT(!waiters.empty(), "MSHR with no waiters in ", name());

    LineMeta meta;
    meta.kind = waiters.front()->kind;
    for (const auto& w : waiters) {
        if (w->isWrite())
            meta.dirty = true;
    }

    auto evicted = tags_.insert(block_key, meta);
    if (evicted && evicted->value.dirty) {
        ++writebacks_;
        const PktPtr& first = waiters.front();
        PktPtr wb = makePacket(first->node, first->core, MemOp::Write,
                               evicted->value.kind);
        wb->logicalNode = first->logicalNode;
        wb->job = first->job;
        wb->npa = NPAddr(evicted->key * kBlockSize);
        wb->writeback = true;
        wb->issued = sim_.curTick();
        wb->onDone = [](Packet&) {}; // fire and forget
        next_.access(wb);
    }

    for (auto& w : waiters)
        w->complete();
}

void
CacheLevel::invalidateAll()
{
    tags_.invalidateAll();
}

double
CacheLevel::hitRate() const
{
    double total = static_cast<double>(hits_.value() + misses_.value());
    return total == 0.0 ? 0.0
                        : static_cast<double>(hits_.value()) / total;
}

} // namespace famsim
