/**
 * @file
 * One level of the data cache hierarchy (L1 / L2 / L3 in Table II).
 *
 * Write-back, write-allocate, with MSHR-style merging of outstanding
 * misses to the same block. The tag store is a SetAssocCache keyed by
 * node-physical block number.
 */

#ifndef FAMSIM_CACHE_CACHE_LEVEL_HH
#define FAMSIM_CACHE_CACHE_LEVEL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "cache/set_assoc.hh"
#include "mem/mem_sink.hh"
#include "sim/flat_map.hh"
#include "sim/simulation.hh"

namespace famsim {

/** Configuration of a cache level. */
struct CacheParams {
    /** Total capacity in bytes. */
    std::uint64_t sizeBytes = 32 * 1024;
    /** Associativity (ways). */
    unsigned assoc = 8;
    /** Lookup (hit) latency. */
    Tick latency = 1 * kNanosecond;
    ReplPolicy policy = ReplPolicy::Lru;
};

/**
 * A single write-back cache level.
 *
 * Responses are delivered through the packet completion callback; fills
 * inherit the requesting packet's kind so translation traffic remains
 * classified correctly all the way to the FAM (Fig. 4 accounting).
 */
class CacheLevel : public Component, public MemSink
{
  public:
    CacheLevel(Simulation& sim, const std::string& name,
               const CacheParams& params, MemSink& next);

    void access(const PktPtr& pkt) override;

    /** Drop every line (used by tests and job migration). */
    void invalidateAll();

    /** Hit rate since the last stats reset (for tests). */
    [[nodiscard]] double hitRate() const;

    [[nodiscard]] const CacheParams& params() const { return params_; }

  private:
    struct LineMeta {
        bool dirty = false;
        PacketKind kind = PacketKind::Data;
    };

    void lookup(const PktPtr& pkt);
    void handleFill(std::uint64_t block_key, const PktPtr& fill_pkt);

    CacheParams params_;
    MemSink& next_;
    SetAssocCache<LineMeta> tags_;
    /** Outstanding misses: block -> waiting packets. */
    U64FlatMap<std::vector<PktPtr>> mshrs_;

    Counter& hits_;
    Counter& misses_;
    Counter& writebacks_;
    Counter& mshrMerges_;
};

} // namespace famsim

#endif // FAMSIM_CACHE_CACHE_LEVEL_HH
