/**
 * @file
 * The MemSink interface: anything that can accept a memory packet.
 *
 * Cache levels, memory controllers, the FAM translator path and the
 * fabric endpoints all implement this, so the node hierarchy can be
 * composed out of interchangeable stages.
 */

#ifndef FAMSIM_MEM_MEM_SINK_HH
#define FAMSIM_MEM_MEM_SINK_HH

#include "mem/packet.hh"

namespace famsim {

/** Consumer of memory packets; completion is via Packet::onDone. */
class MemSink
{
  public:
    virtual ~MemSink() = default;

    /**
     * Accept @p pkt for service. The packet's node-physical address
     * must be valid. Ownership is shared; the sink must eventually
     * cause pkt->complete() to run exactly once.
     */
    virtual void access(const PktPtr& pkt) = 0;
};

} // namespace famsim

#endif // FAMSIM_MEM_MEM_SINK_HH
