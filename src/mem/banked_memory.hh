/**
 * @file
 * Banked memory timing model used for both local DRAM and the FAM NVM
 * media.
 *
 * Requests are block-interleaved across banks; each bank serves one
 * access at a time and stays busy for the access latency. A configurable
 * cap on simultaneously outstanding requests models the FAM controller's
 * 128-deep request window (Table II); excess requests queue FIFO at the
 * front door.
 */

#ifndef FAMSIM_MEM_BANKED_MEMORY_HH
#define FAMSIM_MEM_BANKED_MEMORY_HH

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "mem/packet.hh"
#include "sim/simulation.hh"
#include "sim/types.hh"

namespace famsim {

/** Timing parameters for a BankedMemory. */
struct BankedMemoryParams {
    /** Number of independent banks. */
    unsigned banks = 16;
    /** Latency of a read access (also the bank busy time). */
    Tick readLatency = 45 * kNanosecond;
    /** Latency of a write access (also the bank busy time). */
    Tick writeLatency = 45 * kNanosecond;
    /** Fixed controller/front-end overhead added to every access. */
    Tick frontendLatency = 5 * kNanosecond;
    /** Maximum in-flight accesses; 0 means unlimited. */
    unsigned maxOutstanding = 0;
};

/**
 * A banked, latency/occupancy memory model.
 *
 * The model is address-space agnostic: callers supply the raw address
 * used for bank interleaving, so the same class backs DRAM (NPA space)
 * and FAM media (FAM space).
 */
class BankedMemory : public Component
{
  public:
    BankedMemory(Simulation& sim, const std::string& name,
                 const BankedMemoryParams& params);

    /**
     * Start an access for @p pkt, whose bank is derived from @p addr.
     * The packet's completion callback fires when the access finishes.
     */
    void access(const PktPtr& pkt, std::uint64_t addr);

    /** Number of requests currently inside the device (incl. queued). */
    [[nodiscard]] unsigned inFlight() const { return inFlight_; }

    /**
     * Forget all bank-busy timestamps, for System reuse: the device
     * must be idle (asserted), but bankFree_ still holds end-of-run
     * ticks that would stall a fresh run starting at tick 0.
     */
    void resetTiming();

    [[nodiscard]] const BankedMemoryParams& params() const
    {
        return params_;
    }

  private:
    struct Waiting {
        PktPtr pkt;
        std::uint64_t addr;
    };

    void start(const PktPtr& pkt, std::uint64_t addr);
    void finish(const PktPtr& pkt);

    BankedMemoryParams params_;
    std::vector<Tick> bankFree_;
    std::deque<Waiting> waitQueue_;
    unsigned inFlight_ = 0;

    Counter& reads_;
    Counter& writes_;
    Counter& atReads_;
    Counter& queued_;
    Histogram& latency_;
    /**
     * Percentile-capable service-time histogram (observability); null
     * when off. Unlike latency_ it excludes the front-door wait, so it
     * isolates bank occupancy + device latency.
     */
    Histogram* obsService_ = nullptr;
};

} // namespace famsim

#endif // FAMSIM_MEM_BANKED_MEMORY_HH
