#include "mem/banked_memory.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace famsim {

BankedMemory::BankedMemory(Simulation& sim, const std::string& name,
                           const BankedMemoryParams& params)
    : Component(sim, name),
      params_(params),
      bankFree_(params.banks, 0),
      reads_(statCounter("reads", "read accesses serviced")),
      writes_(statCounter("writes", "write accesses serviced")),
      atReads_(statCounter("at_requests",
                           "address-translation accesses serviced")),
      queued_(statCounter("queued",
                          "accesses that waited for an outstanding slot")),
      latency_(statHistogram("latency_ns", "access latency (ns)",
                             /*bucket_width=*/25, /*buckets=*/32))
{
    FAMSIM_ASSERT(params.banks > 0, "memory must have at least one bank");
    obsService_ = obsHistogram(
        "obs_service_ns",
        "ns from bank dispatch to completion: bank wait + device "
        "latency (observability)", 25, 32);
}

void
BankedMemory::access(const PktPtr& pkt, std::uint64_t addr)
{
    FAMSIM_ASSERT(pkt, "null packet");
    if (params_.maxOutstanding != 0 &&
        inFlight_ >= params_.maxOutstanding) {
        ++queued_;
        waitQueue_.push_back(Waiting{pkt, addr});
        return;
    }
    start(pkt, addr);
}

void
BankedMemory::start(const PktPtr& pkt, std::uint64_t addr)
{
    ++inFlight_;
    unsigned bank =
        static_cast<unsigned>((addr / kBlockSize) % params_.banks);
    Tick now = sim_.curTick();
    Tick begin = std::max(now, bankFree_[bank]);
    Tick service =
        pkt->isWrite() ? params_.writeLatency : params_.readLatency;
    Tick done = begin + params_.frontendLatency + service;
    bankFree_[bank] = done;

    if (pkt->isWrite())
        ++writes_;
    else
        ++reads_;
    if (pkt->isTranslation())
        ++atReads_;
    latency_.sample((done - now) / kNanosecond);
    if (obsService_)
        obsService_->sample((done - now) / kNanosecond);

    sim_.events().schedule(done, [this, pkt] { finish(pkt); });
}

void
BankedMemory::resetTiming()
{
    FAMSIM_ASSERT(inFlight_ == 0 && waitQueue_.empty(),
                  "resetTiming on a busy memory device");
    std::fill(bankFree_.begin(), bankFree_.end(), 0);
}

void
BankedMemory::finish(const PktPtr& pkt)
{
    FAMSIM_ASSERT(inFlight_ > 0, "finish with no in-flight access");
    --inFlight_;
    if (!waitQueue_.empty() &&
        (params_.maxOutstanding == 0 ||
         inFlight_ < params_.maxOutstanding)) {
        Waiting w = std::move(waitQueue_.front());
        waitQueue_.pop_front();
        start(w.pkt, w.addr);
    }
    pkt->complete();
}

} // namespace famsim
