#include "mem/packet.hh"

#include <vector>

#include "sim/check.hh"

namespace famsim {

namespace {

/** Cleared when the pool is torn down at thread exit, so any packet
 *  that outlives it is deleted instead of pushed into a dead vector. */
thread_local bool packetPoolAlive = false;

/**
 * Recycling pool for Packet objects. Packets are the highest-frequency
 * allocation in the simulator — one per cache fill, walk step,
 * writeback and FAM request — and they churn, so a free list serves
 * nearly every makePacket() without touching the heap. The pool is
 * thread-local: each parallel-kernel worker (src/psim/) recycles into
 * its own free list, so no locking is needed and the serial fast path
 * is unchanged. A packet released on a different thread than the one
 * that allocated it simply migrates pools.
 */
struct PacketPool {
    std::vector<Packet*> free;
    PacketPool() { packetPoolAlive = true; }
    ~PacketPool()
    {
        packetPoolAlive = false;
        for (Packet* pkt : free)
            delete pkt;
    }
};

PacketPool&
packetPool()
{
    thread_local PacketPool pool;
    return pool;
}

} // namespace

namespace detail {

void
recyclePacket(Packet* pkt) noexcept
{
    // A recycle during the drain phase means a merged message payload
    // was destroyed (or run) instead of moved — see check.hh.
    FAMSIM_CHECK_PACKET_POOL();
    // Clearing onDone first releases captured PktPtrs; those releases
    // may recycle further packets (the pool tolerates reentrant
    // pushes). The remaining fields are reset in makePacket.
    pkt->onDone = nullptr;
    if (!packetPoolAlive) {
        delete pkt;
        return;
    }
    try {
        packetPool().free.push_back(pkt);
    } catch (...) {
        delete pkt;
    }
}

} // namespace detail

const char*
toString(PacketKind kind)
{
    switch (kind) {
      case PacketKind::Data: return "Data";
      case PacketKind::NodePtw: return "NodePtw";
      case PacketKind::FamPtw: return "FamPtw";
      case PacketKind::Acm: return "Acm";
      case PacketKind::Bitmap: return "Bitmap";
      case PacketKind::Broker: return "Broker";
    }
    return "?";
}

PktPtr
makePacket(NodeId node, CoreId core, MemOp op, PacketKind kind)
{
    // An allocation during the drain phase means a merged message
    // payload executed simulation work — see check.hh.
    FAMSIM_CHECK_PACKET_POOL();
    // Thread-local so parallel workers never contend; ids are used for
    // tracing and uniqueness checks only, never for simulated behavior,
    // so per-thread sequences (which may collide across threads) are
    // fine.
    thread_local std::uint64_t next_id = 1;
    auto& pool = packetPool().free;
    Packet* pkt;
    if (pool.empty()) {
        pkt = new Packet();
    } else {
        pkt = pool.back();
        pool.pop_back();
        // Reset to a freshly-constructed state (onDone was already
        // cleared on recycle; the refcount is zero by construction).
        pkt->vaddr = VAddr{};
        pkt->npa = NPAddr{};
        pkt->fam = FamAddr{};
        pkt->hasFam = false;
        pkt->verified = false;
        pkt->accessGranted = false;
        pkt->writeback = false;
        pkt->issued = 0;
        pkt->tsStu = 0;
        pkt->tsFabricReq = 0;
    }
    pkt->id = next_id++;
    pkt->node = node;
    pkt->logicalNode = node;
    pkt->core = core;
    pkt->job = 0;
    pkt->op = op;
    pkt->kind = kind;
    return PktPtr(pkt);
}

} // namespace famsim
