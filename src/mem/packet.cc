#include "mem/packet.hh"

#include <atomic>

namespace famsim {

const char*
toString(PacketKind kind)
{
    switch (kind) {
      case PacketKind::Data: return "Data";
      case PacketKind::NodePtw: return "NodePtw";
      case PacketKind::FamPtw: return "FamPtw";
      case PacketKind::Acm: return "Acm";
      case PacketKind::Bitmap: return "Bitmap";
      case PacketKind::Broker: return "Broker";
    }
    return "?";
}

PktPtr
makePacket(NodeId node, CoreId core, MemOp op, PacketKind kind)
{
    static std::atomic<std::uint64_t> next_id{1};
    auto pkt = std::make_shared<Packet>();
    pkt->id = next_id.fetch_add(1, std::memory_order_relaxed);
    pkt->node = node;
    pkt->logicalNode = node;
    pkt->core = core;
    pkt->op = op;
    pkt->kind = kind;
    return pkt;
}

} // namespace famsim
