/**
 * @file
 * Memory request packets.
 *
 * A Packet represents one 64-byte memory access flowing through the
 * hierarchy. It carries all three address forms it may acquire along
 * the way (virtual, node-physical, FAM), the request kind used for the
 * paper's AT / non-AT accounting (Fig. 4, Fig. 11), and the DeACT 'V'
 * verification flag that tells the STU whether the node's FAM translator
 * already attached a FAM address (§III-C).
 */

#ifndef FAMSIM_MEM_PACKET_HH
#define FAMSIM_MEM_PACKET_HH

#include <atomic>
#include <cstdint>
#include <memory>

#include "sim/inline_function.hh"
#include "sim/types.hh"

namespace famsim {

/** Read/write direction of an access. */
enum class MemOp : std::uint8_t { Read, Write };

/**
 * What a packet is fetching. Everything except Data counts as an
 * address-translation (AT) request in the paper's breakdowns.
 */
enum class PacketKind : std::uint8_t {
    Data,     //!< Application data (non-AT).
    NodePtw,  //!< Node page-table walk step (VA -> NPA).
    FamPtw,   //!< System-level FAM page-table walk step (NPA -> FAM).
    Acm,      //!< Access-control-metadata fetch.
    Bitmap,   //!< Shared-page bitmap fetch.
    Broker,   //!< Memory-broker bookkeeping traffic (PT/ACM setup writes).
};

/** @return true if @p kind is address-translation traffic. */
[[nodiscard]] constexpr bool
isTranslationKind(PacketKind kind)
{
    return kind != PacketKind::Data;
}

/** @return a short printable name for a packet kind. */
[[nodiscard]] const char* toString(PacketKind kind);

struct Packet;
class PktPtr;

/** One in-flight memory access. */
struct Packet {
    /**
     * Tracing id, unique per allocating thread only (the counters are
     * thread-local; ids can collide across parallel workers). Never
     * key simulated behavior or cross-thread maps on it.
     */
    std::uint64_t id = 0;
    /** Physical node the request originates from. */
    NodeId node = 0;
    /** Logical node id used for access-control checks (migration). */
    NodeId logicalNode = 0;
    /** Core within the node (for per-core stats). */
    CoreId core = 0;
    /** Tenant job that generated this request (0 when single-tenant). */
    JobId job = 0;

    MemOp op = MemOp::Read;
    PacketKind kind = PacketKind::Data;

    /** Virtual address (valid for core-issued requests). */
    VAddr vaddr{};
    /** Node physical address (valid after node-level translation). */
    NPAddr npa{};
    /** FAM address (valid once hasFam is set). */
    FamAddr fam{};
    /** Whether @c fam holds a meaningful translation. */
    bool hasFam = false;

    /**
     * DeACT 'V' flag: set by the FAM translator when the node-side
     * translation cache supplied the FAM address; the STU then only
     * verifies access control instead of walking the FAM page table.
     */
    bool verified = false;

    /** Set by the STU verification unit when access control passes. */
    bool accessGranted = false;

    /**
     * True for dirty-eviction writebacks: lower cache levels update in
     * place on a hit and forward on a miss, but never allocate or fill.
     */
    bool writeback = false;

    /** Tick the packet was created (for latency histograms). */
    Tick issued = 0;

    /**
     * Observability stage stamps (sim-time, deterministic): arrival at
     * the STU and hand-off to the fabric toward FAM. Stamped
     * unconditionally (a branch-free store is cheaper than a
     * well-predicted branch here) but only *read* when a TraceSink or
     * the observability histograms are attached — they feed the
     * per-stage latency breakdown and the packet-lifecycle trace
     * spans, never simulated behavior.
     */
    Tick tsStu = 0;
    Tick tsFabricReq = 0;

    /**
     * Completion callback, invoked exactly once when the access ends.
     * Inline storage holds the pipeline's plain captures (component
     * pointers, PktPtrs, the walker's step-list continuation) without
     * allocating; response-path wraps that capture the previous
     * callback take one heap block per wrap (see inline_function.hh).
     */
    InlineFunction<void(Packet&)> onDone;

    /** @return true if this packet is AT traffic. */
    [[nodiscard]] bool isTranslation() const
    {
        return isTranslationKind(kind);
    }

    [[nodiscard]] bool isWrite() const { return op == MemOp::Write; }

    /** Invoke and clear the completion callback. */
    void
    complete()
    {
        if (onDone) {
            auto cb = std::move(onDone);
            onDone = nullptr;
            cb(*this);
        }
    }

  private:
    friend class PktPtr;
    /**
     * Intrusive reference count. Relaxed-atomic since the parallel
     * kernel (src/psim/): a packet is logically owned by one partition
     * at a time, but dormant handles (MSHR waiters, wrapped
     * continuations riding inside another packet) can be released on a
     * different worker thread than the one currently driving the
     * packet. Increments are relaxed (an increment always happens on a
     * thread that already owns a reference); the decrement that hits
     * zero acquires, so the recycling thread observes all prior
     * releases. Uncontended lock-prefixed ops cost a few cycles each —
     * measured in the noise of the fig12 e2e gate row.
     */
    std::atomic<std::uint32_t> refs_{0};
};

namespace detail {
/** Return a zero-ref packet to the recycling pool (packet.cc). */
void recyclePacket(Packet* pkt) noexcept;
} // namespace detail

/**
 * Intrusive refcounted handle to a pooled Packet. Drop-in for the old
 * shared_ptr<Packet> at every call site (copy/move/deref/bool); when
 * the last handle dies the packet returns to the pool in packet.cc
 * rather than to the heap.
 */
class PktPtr
{
  public:
    PktPtr() = default;
    PktPtr(std::nullptr_t) {}

    /** Adopt a pool-fresh packet (refcount must be zero). */
    explicit PktPtr(Packet* pkt) : pkt_(pkt)
    {
        if (pkt_)
            pkt_->refs_.fetch_add(1, std::memory_order_relaxed);
    }

    PktPtr(const PktPtr& other) : pkt_(other.pkt_)
    {
        if (pkt_)
            pkt_->refs_.fetch_add(1, std::memory_order_relaxed);
    }

    PktPtr(PktPtr&& other) noexcept : pkt_(other.pkt_)
    {
        other.pkt_ = nullptr;
    }

    PktPtr&
    operator=(const PktPtr& other)
    {
        PktPtr copy(other);
        swap(copy);
        return *this;
    }

    PktPtr&
    operator=(PktPtr&& other) noexcept
    {
        if (this != &other) {
            release();
            pkt_ = other.pkt_;
            other.pkt_ = nullptr;
        }
        return *this;
    }

    PktPtr&
    operator=(std::nullptr_t)
    {
        release();
        return *this;
    }

    ~PktPtr() { release(); }

    void
    swap(PktPtr& other) noexcept
    {
        Packet* tmp = pkt_;
        pkt_ = other.pkt_;
        other.pkt_ = tmp;
    }

    void reset() { release(); }

    [[nodiscard]] Packet* get() const { return pkt_; }
    [[nodiscard]] Packet& operator*() const { return *pkt_; }
    [[nodiscard]] Packet* operator->() const { return pkt_; }
    [[nodiscard]] explicit operator bool() const { return pkt_ != nullptr; }

    friend bool
    operator==(const PktPtr& a, const PktPtr& b)
    {
        return a.pkt_ == b.pkt_;
    }
    friend bool
    operator==(const PktPtr& a, std::nullptr_t)
    {
        return a.pkt_ == nullptr;
    }

  private:
    void
    release()
    {
        if (pkt_ &&
            pkt_->refs_.fetch_sub(1, std::memory_order_acq_rel) == 1)
            detail::recyclePacket(pkt_);
        pkt_ = nullptr;
    }

    Packet* pkt_ = nullptr;
};

/** Create a packet with a fresh id. */
PktPtr makePacket(NodeId node, CoreId core, MemOp op, PacketKind kind);

} // namespace famsim

#endif // FAMSIM_MEM_PACKET_HH
