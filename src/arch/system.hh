/**
 * @file
 * Whole-system assembly: builds an E-FAM, I-FAM, DeACT-W or DeACT-N
 * system (Fig. 2 / Fig. 6) out of the substrate components and runs a
 * workload on it.
 *
 * This is the library's main entry point: construct a SystemConfig,
 * build a System, call run(), read the metrics.
 */

#ifndef FAMSIM_ARCH_SYSTEM_HH
#define FAMSIM_ARCH_SYSTEM_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cache/cache_level.hh"
#include "deact/fam_translator.hh"
#include "fabric/fabric_link.hh"
#include "fam/acm.hh"
#include "fam/broker.hh"
#include "fam/fam_media.hh"
#include "node/core.hh"
#include "node/mem_ctrl.hh"
#include "sim/simulation.hh"
#include "stu/stu.hh"
#include "vm/node_os.hh"
#include "vm/tlb.hh"
#include "vm/walker.hh"
#include "workload/multi_tenant.hh"
#include "workload/stream_gen.hh"

namespace famsim {

/** The four architectures compared in the paper. */
enum class ArchKind : std::uint8_t { EFam, IFam, DeactW, DeactN };

/** @return printable name of an architecture. */
[[nodiscard]] constexpr const char*
toString(ArchKind arch)
{
    switch (arch) {
      case ArchKind::EFam: return "E-FAM";
      case ArchKind::IFam: return "I-FAM";
      case ArchKind::DeactW: return "DeACT-W";
      case ArchKind::DeactN: return "DeACT-N";
    }
    return "?";
}

/**
 * One scheduled broker migration, fired when the lead core (node 0,
 * core 0) crosses @c atInstruction retired instructions — mid-run, so
 * traffic from every node is in flight when the broker rebinds the
 * job. See MemoryBroker::migrateJob for the two id-rebinding paths.
 */
struct MigrationEvent {
    std::uint64_t atInstruction = 0;
    NodeId from = 0;
    NodeId to = 0;
    /** True: swap logical ids (cheap path). False: rewrite the ACM. */
    bool useLogicalIds = true;
};

/** Complete system configuration (defaults reproduce Table II). */
struct SystemConfig {
    ArchKind arch = ArchKind::DeactN;
    unsigned nodes = 1;
    unsigned coresPerNode = 4;
    std::uint64_t seed = 1;

    CoreParams core{};
    TwoLevelTlb::Params tlb{};
    CacheParams l1{32 * 1024, 8, 1 * kNanosecond, ReplPolicy::Lru};
    CacheParams l2{256 * 1024, 8, 6 * kNanosecond, ReplPolicy::Lru};
    CacheParams l3{1024 * 1024, 16, 15 * kNanosecond, ReplPolicy::Lru};
    std::size_t ptwCacheEntries = 32;

    NodeOsParams os{};
    BankedMemoryParams dram{16, 45 * kNanosecond, 45 * kNanosecond,
                            5 * kNanosecond, 0};
    FamMediaParams fam{};
    FabricParams fabric{};
    StuParams stu{};
    FamTranslatorParams translator{};
    BrokerParams broker{};

    /** Workload run (identically, rate-mode) on every core. */
    StreamProfile profile = profiles::byName("mcf");

    /**
     * Multi-tenant knobs: tenancy.jobs > 1 replaces each core's
     * StreamGen with a MultiTenantWorkload over @ref profile and turns
     * on per-job attribution tables across the stack (jobs.mem_ops,
     * fam.job_requests, per-node STU tables, broker.job_faults). The
     * default (1 job) leaves workloads, stats and goldens untouched.
     */
    TenancyParams tenancy{};
    /** Broker migrations fired at lead-core instruction thresholds. */
    std::vector<MigrationEvent> migrations;

    /**
     * Optional per-core workload source. When set, it is invoked for
     * every (node, core) during construction; returning null falls
     * back to the default synthetic StreamGen over @ref profile —
     * which is how trace replay targets a single core while the rest
     * keep their synthetic streams. The factory must be deterministic
     * (it is part of the simulated configuration: scenario goldens and
     * the parallel kernel's 1-vs-N byte identity both depend on it).
     */
    using WorkloadFactory =
        std::function<std::unique_ptr<WorkloadGen>(unsigned node,
                                                   unsigned core)>;
    WorkloadFactory workloadFactory;

    /** Pre-map the whole footprint before timing (steady state). */
    bool prefault = true;
    /** Fraction of instructions treated as warmup (stats discarded). */
    double warmupFraction = 0.1;

    /**
     * Register the per-stage latency-breakdown histograms (STU queue
     * wait, translation, fabric, media service — with JSON
     * percentiles). Off by default: the stats registry, and with it
     * every pre-existing golden, is bit-identical to a build without
     * the observability layer. Orthogonal to tracing/profiling, which
     * attach per-run (System::attachTrace / attachProfiler).
     */
    bool observability = false;

    /** Apply the architecture-specific derived settings. */
    void finalize();
};

/** One compute node's hardware. */
struct NodeParts {
    std::unique_ptr<NodeOs> os;
    std::unique_ptr<BankedMemory> dram;
    std::unique_ptr<Stu> stu;                 //!< null in E-FAM
    std::unique_ptr<FamTranslator> translator; //!< DeACT only
    std::unique_ptr<MemSink> famPath;
    std::unique_ptr<MemController> memCtrl;
    std::unique_ptr<CacheLevel> l3;

    struct CoreParts {
        std::unique_ptr<WorkloadGen> workload;
        std::unique_ptr<TwoLevelTlb> tlb;
        std::unique_ptr<PtwCache> ptwCache;
        std::unique_ptr<NodePtWalker> walker;
        std::unique_ptr<CacheLevel> l2;
        std::unique_ptr<CacheLevel> l1;
        std::unique_ptr<Core> core;
    };
    std::vector<CoreParts> cores;
};

/** A complete simulated FAM system. */
class System
{
  public:
    explicit System(SystemConfig config);

    /**
     * Whether a System built from @p a can be reset() to run @p b
     * (order-symmetric). Reuse preserves the expensive construction
     * products — the prefaulted per-node OS page tables, the broker's
     * FAM tables/allocation state and the media layout — so everything
     * those depend on must match: architecture, topology, seed,
     * workload profile, OS/FAM/broker geometry and the ACM width. The
     * cheap-to-rebuild knobs (caches, TLB, STU sizing, fabric and DRAM
     * timing, translator) may differ — which is exactly the fig13
     * (STU entries) and fig15 (fabric latency) sweep axes.
     *
     * Runs with tenants, migrations, a workload factory, no prefault
     * or no warmup are never reusable: they either allocate at run
     * time (so the preserved state would differ from a fresh build) or
     * bump statistics during construction that only a warmup reset
     * makes equal again.
     */
    [[nodiscard]] static bool reusableAcross(const SystemConfig& a,
                                             const SystemConfig& b);

    /** reusableAcross(config(), next) — can this instance be reset? */
    [[nodiscard]] bool canReuseFor(const SystemConfig& next) const;

    /**
     * Reconfigure this (finished) System for @p next and rewind it to
     * the pre-run state, preserving the expensive construction
     * products (see reusableAcross; asserted). After reset() the
     * System behaves exactly like a freshly constructed
     * System(next): run() produces bit-identical statistics — pinned
     * by the reuse-equivalence tests in tests/test_executor.cc.
     */
    void reset(SystemConfig next);

    /**
     * Run every core to its instruction limit (with warmup).
     *
     * @param threads 0 (default) runs the original serial event loop —
     *        the golden-pinned reference path. 1 or more runs the
     *        conservative-window parallel kernel (src/psim/): one
     *        partition per node, one per FAM media module, and one for
     *        the broker, synchronized through a per-edge lookahead
     *        matrix (node<->media edges at the fabric latency, broker
     *        edges at the fault service latency) with adaptive window
     *        widening. Results are byte-identical across thread counts
     *        >= 1 (the kernel's schedule is deterministic) but
     *        intentionally not identical to the serial schedule — see
     *        DESIGN.md "Parallel kernel".
     */
    void run(unsigned threads = 0);

    // -- metrics (measurement window) -----------------------------------

    /** System IPC: sum of per-core window IPCs. */
    [[nodiscard]] double ipc() const;
    /** % of requests at FAM that are address translation (Fig. 4/11). */
    [[nodiscard]] double famAtPercent() const;
    /** FAM address-translation hit rate (Fig. 10). */
    [[nodiscard]] double translationHitRate() const;
    /** ACM hit rate at the STU (Fig. 9). */
    [[nodiscard]] double acmHitRate() const;
    /** LLC misses per kilo-instruction (Table III check). */
    [[nodiscard]] double mpki() const;
    /**
     * Simulated run length: the latest per-core completion time. Valid
     * after both kernels (the parallel run leaves the global clock at
     * its last barrier, but per-core local times always reach the end
     * of the run) and deterministic across thread counts.
     */
    [[nodiscard]] Tick elapsedTicks() const;

    /** Windows (= barrier rounds) of the last parallel run; 0 after a
     *  serial run. The cadence metric behind the fig16 scaling rows in
     *  BENCH_hotpath.json. */
    [[nodiscard]] std::uint64_t parallelWindows() const
    {
        return parallelWindows_;
    }
    /** Of those, windows the adaptive horizon opened wider than the
     *  base lookahead. */
    [[nodiscard]] std::uint64_t parallelWidenedWindows() const
    {
        return parallelWidenedWindows_;
    }

    /**
     * Attach a Chrome trace sink for subsequent run() calls (null
     * detaches). The sink must have one lane per psim partition —
     * nodes + FAM media modules + 1 — see traceLanes(); this also
     * names the lanes. Caller keeps ownership and must outlive the
     * run.
     */
    void attachTrace(TraceSink* trace);

    /** Lane count a TraceSink for this System needs. */
    [[nodiscard]] std::uint32_t traceLanes() const;

    /**
     * Attach a wall-clock profiler for subsequent run() calls (null
     * detaches). Caller keeps ownership; results are host-timing and
     * nondeterministic (see sim/profiler.hh).
     */
    void attachProfiler(Profiler* profiler);

    [[nodiscard]] Simulation& sim() { return sim_; }
    [[nodiscard]] const SystemConfig& config() const { return config_; }
    [[nodiscard]] NodeParts& node(unsigned i) { return *nodes_[i]; }
    [[nodiscard]] MemoryBroker& broker() { return *broker_; }
    [[nodiscard]] FamMedia& media() { return *media_; }
    [[nodiscard]] AcmStore& acm() { return *acm_; }
    [[nodiscard]] FamLayout& layout() { return *layout_; }

  private:
    void buildNode(unsigned index);
    /**
     * The rebuild-cheap half of buildNode: everything in the node
     * except its OS (page tables, zone cursors — the expensive,
     * reuse-preserved part). buildNode = OS creation + wireNode;
     * reset() re-runs only wireNode.
     */
    void wireNode(unsigned index);
    void prefaultNode(unsigned index);
    void runSerial();
    void runParallel(unsigned threads);
    /**
     * Run one scheduled migration: rebind at the broker, then refresh
     * every core's cached logical id. @p emit_at is the global barrier
     * op's due tick under the parallel kernel, 0 on the serial path.
     */
    void executeMigration(const MigrationEvent& event, Tick emit_at);
    [[nodiscard]] std::uint64_t warmupInstructions() const;

    SystemConfig config_;
    Simulation sim_;

    std::unique_ptr<FamLayout> layout_;
    std::unique_ptr<AcmStore> acm_;
    std::unique_ptr<FamMedia> media_;
    std::unique_ptr<FabricLink> fabric_;
    std::unique_ptr<MemoryBroker> broker_;
    std::vector<std::unique_ptr<NodeParts>> nodes_;

    /** Per-job issued-ops table (registered when tenancy.jobs > 1). */
    JobStatTable* jobOps_ = nullptr;

    unsigned finished_ = 0;
    std::uint64_t parallelWindows_ = 0;
    std::uint64_t parallelWidenedWindows_ = 0;
};

} // namespace famsim

#endif // FAMSIM_ARCH_SYSTEM_HH
