#include "arch/system.hh"

#include <algorithm>
#include <atomic>

#include "psim/parallel_sim.hh"
#include "sim/check.hh"
#include "sim/logging.hh"
#include "sim/profiler.hh"
#include "sim/trace_sink.hh"

namespace famsim {
namespace {

/** E-FAM path: straight over the fabric, no system-level checks. */
class DirectFamPath : public Component, public MemSink
{
  public:
    DirectFamPath(Simulation& sim, const std::string& name, NodeId node,
                  FabricLink& fabric, FamMedia& media, Tick node_link)
        : Component(sim, name),
          node_(node),
          fabric_(fabric),
          media_(media),
          nodeLink_(node_link),
          accesses_(statCounter("accesses", "direct FAM accesses"))
    {
    }

    void
    access(const PktPtr& pkt) override
    {
        FAMSIM_ASSERT(pkt->hasFam,
                      "E-FAM path requires a direct FAM address");
        ++accesses_;
        // E-FAM performs no system-level vetting (Table I: insecure).
        pkt->accessGranted = true;
        auto orig = std::move(pkt->onDone);
        pkt->onDone = nullptr;
        // Move the continuation hop to hop (it runs exactly once);
        // copying would deep-copy the capture chain per traversal.
        pkt->onDone = [this, pkt, orig = std::move(orig)](Packet&) mutable {
            fabric_.sendResponse(node_,
                                 [this, pkt,
                                  orig = std::move(orig)]() mutable {
                sim_.events().scheduleAfter(
                    nodeLink_, [pkt, orig = std::move(orig)] {
                        if (orig)
                            orig(*pkt);
                    });
            });
        };
        sim_.events().scheduleAfter(nodeLink_, [this, pkt] {
            fabric_.sendRequest(media_.moduleOf(pkt->fam.value()),
                                [this, pkt] { media_.access(pkt); });
        });
    }

  private:
    NodeId node_;
    FabricLink& fabric_;
    FamMedia& media_;
    Tick nodeLink_;
    Counter& accesses_;
};

/** I-FAM path: everything goes through the STU. */
class StuFamPath : public MemSink
{
  public:
    explicit StuFamPath(Stu& stu) : stu_(stu) {}

    void
    access(const PktPtr& pkt) override
    {
        stu_.handleFromNode(pkt);
    }

  private:
    Stu& stu_;
};

} // namespace

void
SystemConfig::finalize()
{
    switch (arch) {
      case ArchKind::EFam:
        break;
      case ArchKind::IFam:
        stu.org = StuOrg::IFam;
        break;
      case ArchKind::DeactW:
        stu.org = StuOrg::DeactW;
        break;
      case ArchKind::DeactN:
        stu.org = StuOrg::DeactN;
        break;
    }
    stu.acmBits = stu.acmBits == 0 ? 16 : stu.acmBits;

    FAMSIM_ASSERT(tenancy.jobs >= 1 && tenancy.jobs <= kMaxJobs,
                  "tenancy.jobs must be in [1, ", kMaxJobs, "]");
    // Per-job attribution tables across the stack share one slot count.
    fam.jobs = tenancy.jobs;
    stu.jobs = tenancy.jobs;
    broker.jobs = tenancy.jobs;

    // FAM capacity and module count scale with the node count (§V-D4:
    // memory pools proportional to nodes).
    fam.modules = nodes;
    // Media partitions sit after the node partitions in the psim
    // layout; the base feeds the FAMSIM_CHECK per-module owner stamps.
    fam.partitionBase = nodes;
    fam.capacityBytes = std::uint64_t{16} << 30;
    fam.capacityBytes *= nodes;

    // The translator cache lives in the reserved top of local DRAM.
    translator.dramCacheBase = os.localBytes - os.reservedLocalBytes;
    FAMSIM_ASSERT(translator.cacheBytes <= os.reservedLocalBytes,
                  "translation cache exceeds the reserved DRAM region");
    broker.sharedReserveBytes =
        std::min<std::uint64_t>(broker.sharedReserveBytes,
                                fam.capacityBytes / 8);
}

System::System(SystemConfig config) : config_(std::move(config)),
                                      sim_(config_.seed)
{
    config_.finalize();
    // Before any component constructs: the latency-breakdown
    // histograms register (or don't) in component constructors.
    sim_.setObservability(config_.observability);

    for (const MigrationEvent& ev : config_.migrations) {
        FAMSIM_ASSERT(ev.from < config_.nodes && ev.to < config_.nodes,
                      "migration references a node outside the system");
        FAMSIM_ASSERT(ev.from != ev.to, "migration from a node to itself");
        FAMSIM_ASSERT(config_.arch != ArchKind::EFam,
                      "E-FAM nodes hold direct FAM mappings; broker "
                      "migration cannot rebind them");
    }
    if (config_.tenancy.jobs > 1) {
        jobOps_ = &sim_.stats().jobTable(
            "jobs.mem_ops", "memory operations issued per tenant job",
            config_.tenancy.jobs);
    }

    layout_ = std::make_unique<FamLayout>(config_.fam.capacityBytes,
                                          config_.stu.acmBits,
                                          config_.broker.sharedReserveBytes);
    acm_ = std::make_unique<AcmStore>(config_.stu.acmBits);
    media_ = std::make_unique<FamMedia>(sim_, "fam", config_.fam);
    // Media trace lanes sit after the node lanes (psim partition order).
    media_->setTraceLaneBase(config_.nodes);
    fabric_ = std::make_unique<FabricLink>(sim_, "fabric",
                                           config_.fabric);
    {
        // The broker's stats belong to the broker partition (last in
        // the psim layout); in parallel runs they are only bumped by
        // barrier ops, which the checker's Barrier phase permits. The
        // fabric stays unstamped: its counters are bumped from the
        // coordinator's arbitration sections in both kernels.
        check::WiringScope wire(config_.nodes + config_.fam.modules);
        broker_ = std::make_unique<MemoryBroker>(sim_, "broker",
                                                 config_.broker, *layout_,
                                                 *acm_, media_.get());
    }

    for (unsigned n = 0; n < config_.nodes; ++n)
        broker_->registerNode(static_cast<NodeId>(n));
    for (unsigned n = 0; n < config_.nodes; ++n)
        buildNode(n);
    if (config_.prefault) {
        for (unsigned n = 0; n < config_.nodes; ++n)
            prefaultNode(n);
    }
}

namespace {

/** Field-wise equality of two workload profiles. */
bool
sameProfile(const StreamProfile& a, const StreamProfile& b)
{
    return a.name == b.name && a.suite == b.suite &&
           a.memOpFraction == b.memOpFraction &&
           a.footprintBytes == b.footprintBytes &&
           a.hot1Pages == b.hot1Pages && a.hot1Prob == b.hot1Prob &&
           a.hot2Pages == b.hot2Pages && a.hot2Prob == b.hot2Prob &&
           a.seqRunLen == b.seqRunLen && a.seqPageProb == b.seqPageProb &&
           a.vaScatterFactor == b.vaScatterFactor &&
           a.reuseProb == b.reuseProb &&
           a.writeFraction == b.writeFraction &&
           a.blockingFraction == b.blockingFraction &&
           a.paperMpki == b.paperMpki && a.atSensitive == b.atSensitive;
}

bool
sameOs(const NodeOsParams& a, const NodeOsParams& b)
{
    return a.localBytes == b.localBytes &&
           a.reservedLocalBytes == b.reservedLocalBytes &&
           a.famZoneBytes == b.famZoneBytes &&
           a.localFraction == b.localFraction &&
           a.faultLatency == b.faultLatency &&
           a.scatterFamZone == b.scatterFamZone;
}

bool
sameFam(const FamMediaParams& a, const FamMediaParams& b)
{
    return a.capacityBytes == b.capacityBytes &&
           a.modules == b.modules &&
           a.interleaveBytes == b.interleaveBytes &&
           a.nvm.banks == b.nvm.banks &&
           a.nvm.readLatency == b.nvm.readLatency &&
           a.nvm.writeLatency == b.nvm.writeLatency &&
           a.nvm.frontendLatency == b.nvm.frontendLatency &&
           a.nvm.maxOutstanding == b.nvm.maxOutstanding &&
           a.jobs == b.jobs;
}

bool
sameBroker(const BrokerParams& a, const BrokerParams& b)
{
    return a.serviceLatency == b.serviceLatency &&
           a.exposedRttLatency == b.exposedRttLatency &&
           a.scatterAllocation == b.scatterAllocation &&
           a.sharedReserveBytes == b.sharedReserveBytes &&
           a.jobs == b.jobs;
}

/** A config that never allocates or bumps stats where reuse can't. */
bool
reuseEligible(const SystemConfig& c)
{
    // jobs == 1: multi-tenant runs create shared regions and per-job
    // tables at run time. No migrations: they mutate the broker's
    // logical-id bindings and the ACM. No factory: external workloads
    // (trace replay) have construction side effects a reset cannot
    // replay. prefault + warmup: construction and prefault bump OS and
    // broker counters that only the warmup resetAll re-zeroes — a
    // reused System skips both, so without a warmup reset its stats
    // would differ from a fresh build's.
    return c.tenancy.jobs == 1 && c.migrations.empty() &&
           !c.workloadFactory && c.prefault && c.warmupFraction > 0.0;
}

} // namespace

bool
System::reusableAcross(const SystemConfig& a, const SystemConfig& b)
{
    SystemConfig fa = a;
    SystemConfig fb = b;
    fa.finalize();
    fb.finalize();
    if (!reuseEligible(fa) || !reuseEligible(fb))
        return false;
    // The hard set: everything the preserved construction products
    // (OS page tables + prefault, broker FAM tables and allocation
    // cursors, media layout, ACM geometry) depend on. Every other knob
    // lives in components reset() rebuilds from scratch.
    return fa.arch == fb.arch && fa.nodes == fb.nodes &&
           fa.coresPerNode == fb.coresPerNode && fa.seed == fb.seed &&
           sameProfile(fa.profile, fb.profile) &&
           sameOs(fa.os, fb.os) && sameFam(fa.fam, fb.fam) &&
           sameBroker(fa.broker, fb.broker) &&
           fa.stu.acmBits == fb.stu.acmBits &&
           // Observability histograms register at construction; a
           // reused System cannot grow (or shed) registry entries.
           fa.observability == fb.observability;
}

bool
System::canReuseFor(const SystemConfig& next) const
{
    return reusableAcross(config_, next);
}

void
System::reset(SystemConfig next)
{
    next.finalize();
    FAMSIM_ASSERT(reusableAcross(config_, next),
                  "System::reset across incompatible configurations");

    // Tear down the per-node hardware, keeping each node's OS. The
    // broker's shootdown listeners capture raw pointers into the
    // components about to die; drop them first (wireNode re-registers
    // against the rebuilt ones).
    broker_->clearInvalidateListeners();
    for (auto& node : nodes_) {
        node->cores.clear();
        node->l3.reset();
        node->memCtrl.reset();
        node->translator.reset();
        node->famPath.reset();
        node->stu.reset();
        node->dram.reset();
    }

    // The preserved media modules still hold end-of-run bank-busy
    // ticks; the rewound clock starts at 0 again.
    media_->resetTiming();
    sim_.resetForReuse();

    config_ = std::move(next);
    fabric_ = std::make_unique<FabricLink>(sim_, "fabric",
                                           config_.fabric);
    for (unsigned n = 0; n < config_.nodes; ++n)
        wireNode(n);
    // No re-prefault: the reuse gate pins profile/OS/seed, so the
    // preserved page tables already map exactly the footprint a fresh
    // build would prefault (runs never fault past it — checked by the
    // fresh-vs-reused equivalence tests).

    finished_ = 0;
    parallelWindows_ = 0;
    parallelWidenedWindows_ = 0;
}

void
System::buildNode(unsigned index)
{
    // Everything registered while building node N is owned by psim
    // partition N (the node partitions are [0, nodes)).
    check::WiringScope wire(static_cast<std::uint32_t>(index));
    auto node = std::make_unique<NodeParts>();
    auto nid = static_cast<NodeId>(index);
    std::string prefix = "node" + std::to_string(index);

    FamMode mode = config_.arch == ArchKind::EFam ? FamMode::Exposed
                                                  : FamMode::Indirect;
    node->os = std::make_unique<NodeOs>(sim_, prefix + ".os", config_.os,
                                        mode, nid, broker_.get());
    nodes_.push_back(std::move(node));
    wireNode(index);
}

void
System::wireNode(unsigned index)
{
    // Also reached directly from System::reset, so the stamp cannot
    // live in buildNode alone (WiringScope nests; re-registrations on
    // the reset path rebind to already-stamped statistics).
    check::WiringScope wire(static_cast<std::uint32_t>(index));
    NodeParts* node = nodes_[index].get();
    auto nid = static_cast<NodeId>(index);
    std::string prefix = "node" + std::to_string(index);

    node->dram = std::make_unique<BankedMemory>(sim_, prefix + ".dram",
                                                config_.dram);

    // FAM path, by architecture.
    if (config_.arch == ArchKind::EFam) {
        node->famPath = std::make_unique<DirectFamPath>(
            sim_, prefix + ".fampath", nid, *fabric_, *media_,
            config_.stu.nodeLinkLatency);
    } else {
        node->stu = std::make_unique<Stu>(sim_, prefix + ".stu",
                                          config_.stu, nid, *layout_,
                                          *acm_, *broker_, *fabric_,
                                          *media_);
        broker_->addInvalidateListener([stu = node->stu.get()](NodeId n) {
            stu->invalidateNode(n);
        });
        if (config_.arch == ArchKind::IFam) {
            node->famPath = std::make_unique<StuFamPath>(*node->stu);
        } else {
            node->translator = std::make_unique<FamTranslator>(
                sim_, prefix + ".translator", config_.translator,
                *node->dram, *node->stu);
            // Migration shootdown must also clear the node-side
            // unverified translation cache (§VI).
            broker_->addInvalidateListener(
                [tr = node->translator.get(), nid](NodeId n) {
                    if (n == nid)
                        tr->invalidateAll();
                });
        }
    }

    MemSink& fam_sink =
        node->translator
            ? static_cast<MemSink&>(*node->translator)
            : static_cast<MemSink&>(*node->famPath);
    node->memCtrl = std::make_unique<MemController>(
        sim_, prefix + ".memctrl", *node->os, *node->dram, fam_sink);
    node->l3 = std::make_unique<CacheLevel>(sim_, prefix + ".l3",
                                            config_.l3, *node->memCtrl);

    NodeId logical = broker_->logicalIdOf(nid);
    for (unsigned c = 0; c < config_.coresPerNode; ++c) {
        NodeParts::CoreParts parts;
        std::string cname = prefix + ".core" + std::to_string(c);
        // The cores of a node behave like the threads of one
        // multithreaded application (Table III suites): they share the
        // footprint and hot pages but follow independent access
        // sequences.
        if (config_.workloadFactory)
            parts.workload = config_.workloadFactory(index, c);
        if (!parts.workload) {
            if (config_.tenancy.jobs > 1) {
                parts.workload = std::make_unique<MultiTenantWorkload>(
                    config_.tenancy, config_.profile, config_.seed,
                    index, c);
            } else {
                parts.workload = std::make_unique<StreamGen>(
                    config_.profile, kWorkloadVaBase, config_.seed,
                    index * 64 + c);
            }
        }
        parts.tlb = std::make_unique<TwoLevelTlb>(sim_, cname + ".tlb",
                                                  config_.tlb);
        parts.ptwCache = std::make_unique<PtwCache>(
            sim_, cname + ".ptwcache", config_.ptwCacheEntries);
        parts.l2 = std::make_unique<CacheLevel>(sim_, cname + ".l2",
                                                config_.l2, *node->l3);
        parts.l1 = std::make_unique<CacheLevel>(sim_, cname + ".l1",
                                                config_.l1, *parts.l2);
        parts.walker = std::make_unique<NodePtWalker>(
            sim_, cname + ".walker", node->os->pageTable(),
            *parts.ptwCache, *parts.l2, nid,
            static_cast<CoreId>(c));
        parts.core = std::make_unique<Core>(
            sim_, cname, config_.core, nid, logical,
            static_cast<CoreId>(c), *parts.workload, *parts.tlb,
            *parts.walker, *parts.l1, *node->os);
        parts.core->setJobOpsTable(jobOps_);
        node->cores.push_back(std::move(parts));
    }
}

void
System::prefaultNode(unsigned index)
{
    NodeParts& node = *nodes_[index];
    auto nid = static_cast<NodeId>(index);

    // Touch every VA page of every core's footprint so the run starts
    // from a steady state (the paper simulates post-initialization HPC
    // kernels; first-touch costs are not part of the evaluation). The
    // batched pass fuses the old lookup + map double radix descend into
    // one and caches the leaf table across each dense 512-page range —
    // the absence check doubles as the cross-core dedup (the cores
    // share one footprint), at a cached-bitmask probe per page.
    for (auto& core : node.cores)
        node.os->prefaultPages(core.workload->footprintPages());

    if (config_.arch == ArchKind::EFam)
        return; // direct mappings were installed by the patched OS

    // Establish the system-level NPA -> FAM mappings for every FAM-zone
    // page the node allocated (data and page-table pages alike), again
    // through the fused map-if-absent path.
    auto& fam_table = broker_->famTableOf(nid);
    NodeId logical = broker_->logicalIdOf(nid);
    HierarchicalPageTable::BulkMapper mapper(fam_table);
    for (std::uint64_t npa_page : node.os->famZonePages()) {
        mapper.mapIfAbsent(npa_page, Perms{}, [&] {
            return broker_->allocPage(logical, Perms{});
        });
    }
}

void
System::attachTrace(TraceSink* trace)
{
    if (trace) {
        FAMSIM_ASSERT(trace->lanes() == traceLanes(),
                      "trace sink has ", trace->lanes(),
                      " lanes; this system needs ", traceLanes());
        for (unsigned n = 0; n < config_.nodes; ++n)
            trace->setLaneName(n, "node" + std::to_string(n));
        for (unsigned m = 0; m < media_->numModules(); ++m) {
            trace->setLaneName(config_.nodes + m,
                               "media" + std::to_string(m));
        }
        trace->setLaneName(traceLanes() - 1, "broker");
    }
    sim_.setTrace(trace);
}

std::uint32_t
System::traceLanes() const
{
    // The psim partition layout: nodes, media modules, broker. The
    // serial kernel emits on the same lane ids, so one sink layout
    // serves both.
    return config_.nodes + static_cast<std::uint32_t>(
                               media_->numModules()) + 1;
}

void
System::attachProfiler(Profiler* profiler)
{
    sim_.setProfiler(profiler);
}

void
System::run(unsigned threads)
{
    // Cadence telemetry belongs to one run; a serial run (including
    // the zero-lookahead fallback below) reports zero windows.
    parallelWindows_ = 0;
    parallelWidenedWindows_ = 0;
    Profiler::Timer wall;
    if (threads > 0)
        runParallel(threads);
    else
        runSerial();
    if (Profiler* prof = sim_.profiler()) {
        prof->setThreads(threads);
        prof->setWall(wall.seconds());
        prof->setWindows(parallelWindows_, parallelWidenedWindows_);
    }
}

void
System::runSerial()
{
    finished_ = 0;
    unsigned total = config_.nodes * config_.coresPerNode;

    // Warmup handling: when core 0 of node 0 crosses the warmup mark,
    // reset all statistics and open every core's measurement window.
    Core& lead = *nodes_[0]->cores[0].core;
    if (config_.warmupFraction > 0.0) {
        lead.addPhaseCallback(warmupInstructions(), [this] {
            sim_.stats().resetAll();
            for (auto& node : nodes_) {
                for (auto& core : node->cores)
                    core.core->markWindow();
            }
        });
    }
    // Scheduled migrations fire inline at the lead core's thresholds —
    // mid-run, with every node's traffic in flight.
    for (const MigrationEvent& ev : config_.migrations) {
        lead.addPhaseCallback(ev.atInstruction,
                              [this, ev] { executeMigration(ev, 0); });
    }

    for (auto& node : nodes_) {
        for (auto& core : node->cores)
            core.core->start([this] { ++finished_; });
    }

    while (finished_ < total) {
        if (!sim_.events().runOne())
            FAMSIM_PANIC("event queue drained with ", total - finished_,
                         " cores still running (deadlock)");
    }
    // Drain remaining in-flight events (responses, writebacks).
    sim_.run();
}

void
System::executeMigration(const MigrationEvent& event, Tick emit_at)
{
    broker_->migrateJob(event.from, event.to, event.useLogicalIds,
                        emit_at);
    // Cores stamp their cached logical id into every packet they
    // issue; rebind each to its node's post-migration binding.
    for (unsigned n = 0; n < config_.nodes; ++n) {
        NodeId logical = broker_->logicalIdOf(static_cast<NodeId>(n));
        for (auto& core : nodes_[n]->cores)
            core.core->setLogicalNode(logical);
    }
}

std::uint64_t
System::warmupInstructions() const
{
    return static_cast<std::uint64_t>(
        config_.warmupFraction *
        static_cast<double>(config_.core.instructionLimit));
}

void
System::runParallel(unsigned threads)
{
    // The per-edge lookahead floors: node<->STU traffic stays inside a
    // node partition; what crosses is fabric request/response traffic
    // (one way >= fabric.latency, the node<->media edge) and
    // system-level fault service at the broker (>= serviceLatency,
    // every edge touching the broker partition).
    if (config_.fabric.latency == 0 || config_.broker.serviceLatency == 0) {
        warn("zero cross-partition lookahead; falling back to the "
             "serial kernel");
        runSerial();
        return;
    }
    if (config_.arch == ArchKind::EFam && !config_.prefault)
        FAMSIM_FATAL("parallel E-FAM runs require prefaulting: runtime "
                     "OS faults call the broker synchronously across "
                     "partitions");
    FAMSIM_ASSERT(sim_.serialEvents().empty(),
                  "serial queue not empty at parallel start");

    unsigned total = config_.nodes * config_.coresPerNode;
    // Sharded partitioning: one partition per node, one per FAM media
    // module (each with its own pooled queue and mailbox lanes), one
    // for the broker — the media/broker work that used to serialize on
    // a single fabric/FAM partition now scales with the module count.
    ParallelSim::Topology topo;
    topo.nodes = config_.nodes;
    topo.mediaModules = media_->numModules();
    topo.fabricLookahead = config_.fabric.latency;
    topo.brokerLookahead = config_.broker.serviceLatency;
    ParallelSim psim(sim_, topo, threads);

    // Warmup: the lead core requests a global barrier op, so the stats
    // reset and window marks happen at a window boundary — a
    // deterministic, thread-count-independent point — instead of
    // mid-window while other partitions are running.
    Core& lead = *nodes_[0]->cores[0].core;
    if (config_.warmupFraction > 0.0) {
        lead.addPhaseCallback(warmupInstructions(), [this, &psim] {
            psim.postGlobal(sim_.curTick(), [this] {
                sim_.stats().resetAll();
                for (auto& node : nodes_) {
                    for (auto& core : node->cores)
                        core.core->markWindow();
                }
            });
        });
    }
    // Scheduled migrations mutate state read lock-free from every
    // partition (ACM map, FAM tables, STU caches), so they run as
    // global barrier ops. The broker service latency matches the
    // node->broker lookahead floor, making the due tick conservative;
    // the op may then schedule its ACM rewrite traffic at that tick.
    for (const MigrationEvent& ev : config_.migrations) {
        lead.addPhaseCallback(ev.atInstruction, [this, &psim, ev] {
            Tick due = sim_.curTick() + config_.broker.serviceLatency;
            psim.postGlobal(
                due, [this, ev, due] { executeMigration(ev, due); });
        });
    }

    std::atomic<unsigned> finished{0};
    for (unsigned n = 0; n < config_.nodes; ++n) {
        psim.withPartition(n, [&] {
            for (auto& core : nodes_[n]->cores) {
                core.core->start([&finished] {
                    finished.fetch_add(1, std::memory_order_relaxed);
                });
            }
        });
    }

    psim.run(); // drains every queue, mailbox and barrier op
    parallelWindows_ = psim.epoch();
    parallelWidenedWindows_ = psim.widenedEpochs();

    unsigned done = finished.load(std::memory_order_relaxed);
    if (done < total)
        FAMSIM_PANIC("parallel kernel drained with ", total - done,
                     " cores still running (deadlock)");
    FAMSIM_ASSERT(sim_.serialEvents().empty(),
                  "event leaked onto the serial queue during a parallel "
                  "run");
}

double
System::ipc() const
{
    double sum = 0.0;
    for (const auto& node : nodes_) {
        for (const auto& core : node->cores)
            sum += core.core->ipc();
    }
    return sum;
}

Tick
System::elapsedTicks() const
{
    Tick latest = 0;
    for (const auto& node : nodes_) {
        for (const auto& core : node->cores)
            latest = std::max(latest, core.core->localTime());
    }
    return latest;
}

double
System::famAtPercent() const
{
    double total = static_cast<double>(media_->totalRequests());
    if (total == 0.0)
        return 0.0;
    return 100.0 * static_cast<double>(media_->atRequests()) / total;
}

double
System::translationHitRate() const
{
    const NodeParts& node = *nodes_[0];
    if (node.translator)
        return node.translator->hitRate();
    if (node.stu)
        return node.stu->translationHitRate();
    return 1.0; // E-FAM: no system-level translation at all
}

double
System::acmHitRate() const
{
    const NodeParts& node = *nodes_[0];
    if (node.stu)
        return node.stu->acmHitRate();
    return 1.0;
}

double
System::mpki() const
{
    const auto& stats = sim_.stats();
    double misses = stats.sumMatching(".l3.misses");
    double instructions = stats.sumMatching(".instructions");
    if (instructions == 0.0)
        return 0.0;
    return 1000.0 * misses / instructions;
}

} // namespace famsim
