#include "harness/scenario.hh"

#include <sstream>

#include "harness/runner.hh"
#include "sim/logging.hh"

namespace famsim {

namespace {

/**
 * Scenario runs are regression baselines: the budget is fixed here
 * (never via FAMSIM_INSTR) so the exported stats are reproducible on
 * every machine. Large enough for the translation structures to reach
 * steady state, small enough that the whole suite runs in seconds.
 */
constexpr std::uint64_t kScenarioInstructions = 60000;

Scenario
makeScenario(const std::string& figure, const std::string& description,
             const std::string& headline_metric, const std::string& bench,
             ArchKind arch)
{
    Scenario s;
    s.figure = figure;
    s.description = description;
    s.headlineMetric = headline_metric;
    s.config = makeConfig(profiles::byName(bench), arch,
                          kScenarioInstructions);
    // Pin the seed explicitly: goldens must not move if the
    // SystemConfig default seed ever changes.
    s.config.seed = 1;
    std::string arch_tag;
    switch (arch) {
      case ArchKind::EFam: arch_tag = "efam"; break;
      case ArchKind::IFam: arch_tag = "ifam"; break;
      case ArchKind::DeactW: arch_tag = "deactw"; break;
      case ArchKind::DeactN: arch_tag = "deactn"; break;
    }
    s.name = figure + "." + bench + "." + arch_tag;
    return s;
}

ScenarioRegistry
buildPaperRegistry()
{
    ScenarioRegistry reg;

    // Fig. 9: ACM hit rate at the STU across the three translating
    // architectures. mcf is the paper's canonical AT-sensitive
    // benchmark; ccsv's sparse VA space stresses the cold tail.
    for (const char* bench : {"mcf", "ccsv"}) {
        for (ArchKind arch :
             {ArchKind::IFam, ArchKind::DeactW, ArchKind::DeactN}) {
            reg.add(makeScenario(
                "fig09_acm_hit_rate",
                "ACM hit rate at the STU (paper Fig. 9)",
                "acm_hit_rate", bench, arch));
        }
    }

    // Fig. 10: FAM-side address-translation hit rate. cactus has the
    // dense, cache-friendly page set that separates DeACT-W's
    // in-media cache from DeACT-N's node-side ACM cache.
    for (ArchKind arch : {ArchKind::DeactW, ArchKind::DeactN}) {
        reg.add(makeScenario(
            "fig10_at_hit_rate",
            "FAM address-translation hit rate (paper Fig. 10)",
            "translation_hit_rate", "cactus", arch));
    }

    // Fig. 12: end-to-end performance (IPC) of all four architectures
    // on one AT-sensitive benchmark.
    for (ArchKind arch : {ArchKind::EFam, ArchKind::IFam,
                          ArchKind::DeactW, ArchKind::DeactN}) {
        reg.add(makeScenario(
            "fig12_performance",
            "End-to-end performance, system IPC (paper Fig. 12)",
            "ipc", "mcf", arch));
    }

    return reg;
}

} // namespace

const ScenarioRegistry&
ScenarioRegistry::paper()
{
    static const ScenarioRegistry registry = buildPaperRegistry();
    return registry;
}

void
ScenarioRegistry::add(Scenario scenario)
{
    FAMSIM_ASSERT(!scenario.name.empty(), "scenario needs a name");
    auto [it, inserted] =
        scenarios_.emplace(scenario.name, std::move(scenario));
    FAMSIM_ASSERT(inserted, "scenario '", it->first,
                  "' registered twice");
}

bool
ScenarioRegistry::has(const std::string& name) const
{
    return scenarios_.find(name) != scenarios_.end();
}

const Scenario&
ScenarioRegistry::byName(const std::string& name) const
{
    auto it = scenarios_.find(name);
    if (it == scenarios_.end())
        FAMSIM_PANIC("unknown scenario '", name, "'");
    return it->second;
}

std::vector<const Scenario*>
ScenarioRegistry::byFigure(const std::string& figure) const
{
    std::vector<const Scenario*> out;
    for (const auto& [name, scenario] : scenarios_) {
        if (scenario.figure == figure)
            out.push_back(&scenario);
    }
    return out;
}

std::vector<std::string>
ScenarioRegistry::names() const
{
    std::vector<std::string> out;
    out.reserve(scenarios_.size());
    for (const auto& [name, scenario] : scenarios_)
        out.push_back(name);
    return out;
}

std::string
runScenarioJson(const Scenario& scenario, unsigned threads)
{
    ScopedQuietLogs quiet;
    System system(scenario.config);
    system.run(threads);
    const RunResult metrics = summarize(system);

    std::ostringstream os;
    os << "{\n  \"scenario\": ";
    json::writeString(os, scenario.name);
    os << ",\n  \"figure\": ";
    json::writeString(os, scenario.figure);
    os << ",\n  \"description\": ";
    json::writeString(os, scenario.description);
    os << ",\n  \"headline_metric\": ";
    json::writeString(os, scenario.headlineMetric);

    const SystemConfig& config = scenario.config;
    os << ",\n  \"config\": {\n    \"arch\": ";
    json::writeString(os, toString(config.arch));
    os << ",\n    \"benchmark\": ";
    json::writeString(os, config.profile.name);
    os << ",\n    \"nodes\": " << config.nodes
       << ",\n    \"cores_per_node\": " << config.coresPerNode
       << ",\n    \"seed\": " << config.seed
       << ",\n    \"instructions\": " << config.core.instructionLimit
       << ",\n    \"warmup_fraction\": ";
    json::writeNumber(os, config.warmupFraction);
    os << "\n  }";

    os << ",\n  \"metrics\": {\n    \"ipc\": ";
    json::writeNumber(os, metrics.ipc);
    os << ",\n    \"fam_at_percent\": ";
    json::writeNumber(os, metrics.famAtPercent);
    os << ",\n    \"translation_hit_rate\": ";
    json::writeNumber(os, metrics.translationHitRate);
    os << ",\n    \"acm_hit_rate\": ";
    json::writeNumber(os, metrics.acmHitRate);
    os << ",\n    \"mpki\": ";
    json::writeNumber(os, metrics.mpki);
    os << ",\n    \"fam_requests\": " << metrics.famRequests
       << ",\n    \"fam_at_requests\": " << metrics.famAtRequests
       << "\n  }";

    os << ",\n  \"stats\": ";
    system.sim().stats().dumpJson(os, 2);
    os << "\n}\n";
    return os.str();
}

} // namespace famsim
