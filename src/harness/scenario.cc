#include "harness/scenario.hh"

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <future>
#include <map>
#include <mutex>
#include <sstream>

#include <unistd.h>

#include "harness/runner.hh"
#include "sim/logging.hh"
#include "sim/profiler.hh"

namespace famsim {

namespace {

/**
 * Scenario runs are regression baselines: the budget is fixed here
 * (never via FAMSIM_INSTR) so the exported stats are reproducible on
 * every machine. Large enough for the translation structures to reach
 * steady state, small enough that the whole suite runs in seconds.
 */
constexpr std::uint64_t kScenarioInstructions = 60000;

Scenario
makeScenario(const std::string& figure, const std::string& description,
             const std::string& headline_metric, const std::string& bench,
             ArchKind arch)
{
    Scenario s;
    s.figure = figure;
    s.description = description;
    s.headlineMetric = headline_metric;
    s.config = makeConfig(profiles::byName(bench), arch,
                          kScenarioInstructions);
    // Pin the seed explicitly: goldens must not move if the
    // SystemConfig default seed ever changes.
    s.config.seed = 1;
    std::string arch_tag;
    switch (arch) {
      case ArchKind::EFam: arch_tag = "efam"; break;
      case ArchKind::IFam: arch_tag = "ifam"; break;
      case ArchKind::DeactW: arch_tag = "deactw"; break;
      case ArchKind::DeactN: arch_tag = "deactn"; break;
    }
    s.name = figure + "." + bench + "." + arch_tag;
    return s;
}

/**
 * A multi-tenant scenario: the Table II system with several competing
 * jobs interleaved on every core (workload/multi_tenant.hh). All three
 * family members run mcf — the paper's canonical AT-sensitive
 * benchmark — on DeACT-N with two nodes, so the tenants contend for
 * the shared STU, ACM and FAM media paths that the per-job tables
 * attribute.
 */
Scenario
makeTenantScenario(const std::string& tag, const std::string& description,
                   const TenancyParams& tenancy,
                   std::vector<MigrationEvent> migrations = {})
{
    Scenario s = makeScenario("multitenant", description, "ipc", "mcf",
                              ArchKind::DeactN);
    s.name = "multitenant." + tag + ".deactn";
    s.config.nodes = 2;
    s.config.tenancy = tenancy;
    s.config.migrations = std::move(migrations);
    return s;
}

/**
 * A unique temp-file path for a self-replay capture. The pid + serial
 * keep concurrently running test binaries (ctest -j) and repeated
 * System constructions within one process from colliding.
 */
std::string
uniqueTempTracePath(unsigned node, unsigned core, TraceFormat format)
{
    static std::atomic<std::uint64_t> serial{0};
    std::ostringstream os;
    os << "famsim_selfreplay_" << ::getpid() << "_"
       << serial.fetch_add(1, std::memory_order_relaxed) << "_"
       << traceFileName(node, core, format);
    return (std::filesystem::temp_directory_path() / os.str()).string();
}

/**
 * A trace-replay scenario: every core records its synthetic stream to
 * a temporary trace file (budget + slack ops, more than a core can
 * consume, plus the generator's full prefault footprint), opens it
 * through the real TraceReader::open dispatch, unlinks it (the reader
 * keeps the file handle) and replays it. The golden pins the whole
 * frontend — writer, open dispatch, streaming reader, footprint
 * round-trip — and doubles as the replay == synthesis lock: the
 * replayed prefix is exactly what the synthetic generator produces,
 * so the stats must match a plain StreamGen run of the same config.
 */
Scenario
makeTraceScenario(const std::string& tag, const StreamProfile& profile,
                  TraceFormat format, const std::string& description)
{
    Scenario s;
    s.figure = "trace_replay";
    s.description = description;
    s.headlineMetric = "ipc";
    s.config = makeConfig(profile, ArchKind::DeactN,
                          kScenarioInstructions);
    s.config.seed = 1;
    const std::uint64_t budget = kScenarioInstructions + 16;
    StreamProfile p = profile;
    s.config.workloadFactory =
        [p, format, budget](unsigned node,
                            unsigned core) -> std::unique_ptr<WorkloadGen> {
        StreamGen gen(p, kWorkloadVaBase, 1, node * 64 + core);
        const std::string path = uniqueTempTracePath(node, core, format);
        {
            TraceWriter writer(path, format);
            writer.setFootprint(gen.footprintPages());
            writer.record(gen, budget);
        }
        auto reader = TraceReader::open(path);
        std::error_code ec;
        std::filesystem::remove(path, ec); // reader holds the handle
        return reader;
    };
    s.name = "trace_replay." + tag;
    return s;
}

ScenarioRegistry
buildPaperRegistry()
{
    ScenarioRegistry reg;

    // Fig. 9: ACM hit rate at the STU across the three translating
    // architectures. mcf is the paper's canonical AT-sensitive
    // benchmark; ccsv's sparse VA space stresses the cold tail.
    for (const char* bench : {"mcf", "ccsv"}) {
        for (ArchKind arch :
             {ArchKind::IFam, ArchKind::DeactW, ArchKind::DeactN}) {
            reg.add(makeScenario(
                "fig09_acm_hit_rate",
                "ACM hit rate at the STU (paper Fig. 9)",
                "acm_hit_rate", bench, arch));
        }
    }

    // Fig. 10: FAM-side address-translation hit rate. cactus has the
    // dense, cache-friendly page set that separates DeACT-W's
    // in-media cache from DeACT-N's node-side ACM cache.
    for (ArchKind arch : {ArchKind::DeactW, ArchKind::DeactN}) {
        reg.add(makeScenario(
            "fig10_at_hit_rate",
            "FAM address-translation hit rate (paper Fig. 10)",
            "translation_hit_rate", "cactus", arch));
    }

    // Fig. 12: end-to-end performance (IPC) of all four architectures
    // on one AT-sensitive benchmark.
    for (ArchKind arch : {ArchKind::EFam, ArchKind::IFam,
                          ArchKind::DeactW, ArchKind::DeactN}) {
        reg.add(makeScenario(
            "fig12_performance",
            "End-to-end performance, system IPC (paper Fig. 12)",
            "ipc", "mcf", arch));
    }

    // Observability-layer locks (no paper counterpart — the ROADMAP's
    // observability axis). `.base` pins the Chrome-trace substrate: no
    // warmup, so the serial and parallel kernels share one schedule
    // and the trace byte-identity test can include --threads 0
    // alongside {1, 4}. `.observed` turns the latency-breakdown
    // histograms on, pinning the percentile-capable stats JSON; every
    // other scenario keeps observability off, proving the layer is
    // inert by default.
    {
        Scenario s = makeScenario(
            "fig12_performance",
            "Fig. 12 DeACT-N point without warmup (trace-determinism "
            "substrate: serial == parallel schedule)",
            "ipc", "mcf", ArchKind::DeactN);
        s.name = "fig12_performance.base";
        s.config.warmupFraction = 0.0;
        reg.add(std::move(s));
    }
    {
        Scenario s = makeScenario(
            "fig12_performance",
            "Fig. 12 DeACT-N point with the latency-breakdown "
            "histograms registered (observability layer lock)",
            "ipc", "mcf", ArchKind::DeactN);
        s.name = "fig12_performance.observed";
        s.config.observability = true;
        reg.add(std::move(s));
    }

    // Trace-replay frontend locks (no paper counterpart — the
    // ROADMAP's trace-driven workload axis): one uniform and one
    // hot-skewed self-replay, the latter through the gzip backend
    // when this build has zlib (the exported JSON is format-blind, so
    // the golden is identical either way).
    reg.add(makeTraceScenario(
        "uniform.selfreplay", profiles::uniformTest(32ull << 20),
        TraceFormat::Binary,
        "Uniform stream recorded to a binary trace and self-replayed "
        "(trace frontend regression lock)"));
    reg.add(makeTraceScenario(
        "mcf.selfreplay",
        profiles::byName("mcf"),
        traceGzipSupported() ? TraceFormat::Gzip : TraceFormat::Binary,
        "Hot-skewed mcf stream recorded to a gzip trace and "
        "self-replayed (trace frontend regression lock)"));

    // Multi-tenant family (no paper counterpart — the ROADMAP's
    // multi-workload axis): steady-state contention, tenant churn and
    // data migration under tenant load. Each exports per-job
    // attribution tables plus fairness summaries; the goldens pin the
    // whole job dimension, and the churn scenario's parallel export is
    // byte-identical for every worker count (tested like every other
    // registered scenario).
    {
        TenancyParams tenancy;
        tenancy.jobs = 4;
        tenancy.zipfSkew = 0.8;
        reg.add(makeTenantScenario(
            "contention",
            "Four Zipf-skewed tenant jobs per core contending for the "
            "translation structures (steady state, no churn)",
            tenancy));

        tenancy.churnMeanOps = 6000;
        reg.add(makeTenantScenario(
            "churn",
            "Four Zipf-skewed tenant jobs with Poisson-ish arrival/"
            "departure churn (mean residency 6000 ops)",
            tenancy));
    }
    {
        TenancyParams tenancy;
        tenancy.jobs = 2;
        tenancy.zipfSkew = 0.5;
        // Three broker migrations while both tenants keep issuing:
        // bounce the hot node's data away and back through the logical
        // indirection, then force a physical-id move (the PR-2
        // unknown-target registration path).
        std::vector<MigrationEvent> storm;
        storm.push_back({20000, 0, 1, true});
        storm.push_back({30000, 1, 0, true});
        storm.push_back({40000, 0, 1, false});
        reg.add(makeTenantScenario(
            "migration_storm",
            "Two tenant jobs under a broker data-migration storm: "
            "logical bounce 0->1->0, then a physical-id move at full "
            "load",
            tenancy, std::move(storm)));
    }

    return reg;
}

} // namespace

const ScenarioRegistry&
ScenarioRegistry::paper()
{
    static const ScenarioRegistry registry = buildPaperRegistry();
    return registry;
}

void
ScenarioRegistry::add(Scenario scenario)
{
    FAMSIM_ASSERT(!scenario.name.empty(), "scenario needs a name");
    auto [it, inserted] =
        scenarios_.emplace(scenario.name, std::move(scenario));
    FAMSIM_ASSERT(inserted, "scenario '", it->first,
                  "' registered twice");
}

bool
ScenarioRegistry::has(const std::string& name) const
{
    return scenarios_.find(name) != scenarios_.end();
}

const Scenario&
ScenarioRegistry::byName(const std::string& name) const
{
    auto it = scenarios_.find(name);
    if (it == scenarios_.end())
        FAMSIM_PANIC("unknown scenario '", name, "'");
    return it->second;
}

std::vector<const Scenario*>
ScenarioRegistry::byFigure(const std::string& figure) const
{
    std::vector<const Scenario*> out;
    for (const auto& [name, scenario] : scenarios_) {
        if (scenario.figure == figure)
            out.push_back(&scenario);
    }
    return out;
}

std::vector<std::string>
ScenarioRegistry::names() const
{
    std::vector<std::string> out;
    out.reserve(scenarios_.size());
    for (const auto& [name, scenario] : scenarios_)
        out.push_back(name);
    return out;
}

namespace {

/** Write a per-job counter array, zero-padded to @p jobs slots. */
void
writeJobArray(std::ostream& os, const std::vector<std::uint64_t>& values,
              unsigned jobs)
{
    os << "[";
    for (unsigned j = 0; j < jobs; ++j)
        os << (j ? ", " : "") << (j < values.size() ? values[j] : 0);
    os << "]";
}

/** The solo (single-tenant) rerun's headline figures, cached. */
struct SoloBaseline {
    double ops = 0.0;
    double ticks = 0.0;
};

/**
 * Deterministic fingerprint of everything that decides a run's
 * statistics: every configuration field plus the kernel selection.
 * Two configs with equal fingerprints produce identical runs, so the
 * solo-baseline cache may key on it. Configs carrying a workload
 * factory are never fingerprinted (functions cannot be compared).
 */
std::string
soloCacheKey(const SystemConfig& c, unsigned threads)
{
    std::ostringstream os;
    const char sep = '|';
    os << static_cast<int>(c.arch) << sep << c.nodes << sep
       << c.coresPerNode << sep << c.seed << sep;
    os << c.core.period << sep << c.core.issueWidth << sep
       << c.core.maxOutstanding << sep << c.core.instructionLimit << sep
       << c.core.batchSize << sep;
    os << c.tlb.l1Entries << sep << c.tlb.l2Entries << sep
       << c.tlb.l2Ways << sep << c.tlb.l1Latency << sep
       << c.tlb.l2Latency << sep;
    for (const CacheParams* cache : {&c.l1, &c.l2, &c.l3}) {
        os << cache->sizeBytes << sep << cache->assoc << sep
           << cache->latency << sep << static_cast<int>(cache->policy)
           << sep;
    }
    os << c.ptwCacheEntries << sep;
    os << c.os.localBytes << sep << c.os.reservedLocalBytes << sep
       << c.os.famZoneBytes << sep << c.os.localFraction << sep
       << c.os.faultLatency << sep << c.os.scatterFamZone << sep;
    for (const BankedMemoryParams* mem : {&c.dram, &c.fam.nvm}) {
        os << mem->banks << sep << mem->readLatency << sep
           << mem->writeLatency << sep << mem->frontendLatency << sep
           << mem->maxOutstanding << sep;
    }
    os << c.fam.capacityBytes << sep << c.fam.modules << sep
       << c.fam.interleaveBytes << sep << c.fam.jobs << sep;
    os << c.fabric.latency << sep << c.fabric.serialization << sep;
    os << static_cast<int>(c.stu.org) << sep << c.stu.entries << sep
       << c.stu.assoc << sep << c.stu.acmBits << sep
       << c.stu.pairsPerWay << sep << c.stu.lookupLatency << sep
       << c.stu.verifyLatency << sep << c.stu.ptwCacheEntries << sep
       << c.stu.bitmapCacheEntries << sep << c.stu.nodeLinkLatency << sep
       << c.stu.maxOutstanding << sep << c.stu.jobs << sep;
    os << c.translator.cacheBytes << sep << c.translator.waysPerLine
       << sep << c.translator.tagMatchLatency << sep
       << c.translator.maxOutstanding << sep
       << c.translator.dramCacheBase << sep;
    os << c.broker.serviceLatency << sep << c.broker.exposedRttLatency
       << sep << c.broker.scatterAllocation << sep
       << c.broker.sharedReserveBytes << sep << c.broker.jobs << sep;
    // The profile's name/suite strings could contain the separator;
    // length-prefix them so the key stays injective.
    os << c.profile.name.size() << sep << c.profile.name << sep
       << c.profile.suite.size() << sep << c.profile.suite << sep
       << c.profile.memOpFraction << sep << c.profile.footprintBytes
       << sep << c.profile.hot1Pages << sep << c.profile.hot1Prob << sep
       << c.profile.hot2Pages << sep << c.profile.hot2Prob << sep
       << c.profile.seqRunLen << sep << c.profile.seqPageProb << sep
       << c.profile.vaScatterFactor << sep << c.profile.reuseProb << sep
       << c.profile.writeFraction << sep << c.profile.blockingFraction
       << sep << c.profile.paperMpki << sep << c.profile.atSensitive
       << sep;
    os << c.tenancy.jobs << sep << c.tenancy.zipfSkew << sep
       << c.tenancy.churnMeanOps << sep;
    os << c.migrations.size() << sep;
    for (const MigrationEvent& ev : c.migrations) {
        os << ev.atInstruction << sep << ev.from << sep << ev.to << sep
           << ev.useLogicalIds << sep;
    }
    os << c.prefault << sep << c.warmupFraction << sep
       << c.observability << sep << threads;
    return os.str();
}

SoloBaseline
computeSoloBaseline(const SystemConfig& solo_config, unsigned threads)
{
    System solo(solo_config);
    solo.run(threads);
    SoloBaseline out;
    out.ops = solo.sim().stats().sumMatching(".mem_ops");
    out.ticks = static_cast<double>(solo.elapsedTicks());
    return out;
}

/**
 * The solo baseline for @p solo_config at @p threads, computed at most
 * once per process: the three multi-tenant paper scenarios share one
 * base configuration, so without the cache every export (and, under
 * the sweep executor, every concurrently exported point) reran the
 * same single-tenant simulation. The future-based slot makes the
 * computation exactly-once even when pooled workers race for the same
 * key: the first claims it, the rest block on its result.
 */
SoloBaseline
soloBaselineFor(const SystemConfig& solo_config, unsigned threads)
{
    if (solo_config.workloadFactory)
        return computeSoloBaseline(solo_config, threads);

    static std::mutex mutex;
    static std::map<std::string, std::shared_future<SoloBaseline>> cache;

    const std::string key = soloCacheKey(solo_config, threads);
    std::promise<SoloBaseline> promise;
    std::shared_future<SoloBaseline> future;
    bool owner = false;
    {
        std::lock_guard<std::mutex> lock(mutex);
        auto it = cache.find(key);
        if (it == cache.end()) {
            future = promise.get_future().share();
            cache.emplace(key, future);
            owner = true;
        } else {
            future = it->second;
        }
    }
    if (owner) {
        try {
            promise.set_value(computeSoloBaseline(solo_config, threads));
        } catch (...) {
            promise.set_exception(std::current_exception());
        }
    }
    return future.get();
}

/**
 * The "jobs" export block of a multi-tenant scenario: per-job
 * attribution tables (summed across components where a table is
 * per-node, like the STU's) plus fairness/isolation summaries.
 *
 * Throughput figures divide each tenant's post-warmup op count by the
 * run's final tick. The tick base includes warmup while the op counts
 * do not; the single-tenant baseline run shares exactly that bias, so
 * the slowdown ratios (fair share of the solo throughput over the
 * tenant's achieved throughput) stay meaningful. Tenants that issued
 * no post-warmup ops (churned out for the whole window) are excluded
 * from the spread and slowdown aggregates.
 */
void
writeJobFairness(std::ostream& os, const Scenario& scenario,
                 System& system, unsigned threads)
{
    const unsigned jobs = scenario.config.tenancy.jobs;
    const StatRegistry& stats = system.sim().stats();
    const std::vector<std::uint64_t> ops = stats.sumJobTables("jobs.mem_ops");

    os << ",\n  \"jobs\": {\n    \"count\": " << jobs;
    struct Table {
        const char* key;
        const char* suffix;
    };
    constexpr Table kTables[] = {
        {"mem_ops", "jobs.mem_ops"},
        {"fam_requests", ".job_requests"},
        {"fam_at_requests", ".job_at_requests"},
        {"acm_lookups", ".job_acm_lookups"},
        {"acm_hits", ".job_acm_hits"},
        {"denials", ".job_denials"},
        {"broker_faults", ".job_faults"},
    };
    for (const Table& table : kTables) {
        os << ",\n    \"" << table.key << "\": ";
        writeJobArray(os, stats.sumJobTables(table.suffix), jobs);
    }

    // Single-tenant baseline of the same configuration and kernel: its
    // whole-system throughput, split fairly across the tenant count,
    // is what a perfectly isolated tenant would achieve.
    SystemConfig solo_config = scenario.config;
    solo_config.tenancy = TenancyParams{};
    const SoloBaseline solo = soloBaselineFor(solo_config, threads);
    const double solo_ops = solo.ops;
    const double solo_ticks = solo.ticks;
    const double fair_share =
        solo_ticks > 0.0 ? solo_ops / solo_ticks / jobs : 0.0;

    const double ticks = static_cast<double>(system.elapsedTicks());
    double sum = 0.0;
    double sum_sq = 0.0;
    std::uint64_t min_ops = 0;
    std::uint64_t max_ops = 0;
    double slow_min = 0.0;
    double slow_max = 0.0;
    bool any = false;
    for (unsigned j = 0; j < jobs; ++j) {
        const std::uint64_t count = j < ops.size() ? ops[j] : 0;
        const double x = static_cast<double>(count);
        sum += x;
        sum_sq += x * x;
        if (count == 0)
            continue;
        const double throughput = ticks > 0.0 ? x / ticks : 0.0;
        const double slowdown =
            throughput > 0.0 ? fair_share / throughput : 0.0;
        if (!any) {
            min_ops = max_ops = count;
            slow_min = slow_max = slowdown;
            any = true;
        } else {
            min_ops = std::min(min_ops, count);
            max_ops = std::max(max_ops, count);
            slow_min = std::min(slow_min, slowdown);
            slow_max = std::max(slow_max, slowdown);
        }
    }
    const double spread =
        min_ops > 0 ? static_cast<double>(max_ops) /
                          static_cast<double>(min_ops)
                    : 0.0;
    const double jain =
        sum_sq > 0.0 ? sum * sum / (jobs * sum_sq) : 0.0;

    os << ",\n    \"fairness\": {\n      \"throughput_spread\": ";
    json::writeNumber(os, spread);
    os << ",\n      \"jain_index\": ";
    json::writeNumber(os, jain);
    os << ",\n      \"solo_throughput\": ";
    json::writeNumber(os, solo_ticks > 0.0 ? solo_ops / solo_ticks : 0.0);
    os << ",\n      \"slowdown_min\": ";
    json::writeNumber(os, slow_min);
    os << ",\n      \"slowdown_max\": ";
    json::writeNumber(os, slow_max);
    os << "\n    }\n  }";
}

} // namespace

void
writeScenarioJson(std::ostream& os, const Scenario& scenario,
                  unsigned threads)
{
    ScopedQuietLogs quiet;
    System system(scenario.config);
    writeScenarioJson(os, scenario, system, threads);
}

void
writeScenarioJson(std::ostream& os, const Scenario& scenario,
                  System& system, unsigned threads)
{
    ScopedQuietLogs quiet;
    system.run(threads);
    const RunResult metrics = summarize(system);

    os << "{\n  \"scenario\": ";
    json::writeString(os, scenario.name);
    os << ",\n  \"figure\": ";
    json::writeString(os, scenario.figure);
    os << ",\n  \"description\": ";
    json::writeString(os, scenario.description);
    os << ",\n  \"headline_metric\": ";
    json::writeString(os, scenario.headlineMetric);

    const SystemConfig& config = scenario.config;
    os << ",\n  \"config\": {\n    \"arch\": ";
    json::writeString(os, toString(config.arch));
    os << ",\n    \"benchmark\": ";
    json::writeString(os, config.profile.name);
    os << ",\n    \"nodes\": " << config.nodes
       << ",\n    \"cores_per_node\": " << config.coresPerNode
       << ",\n    \"seed\": " << config.seed
       << ",\n    \"instructions\": " << config.core.instructionLimit
       << ",\n    \"warmup_fraction\": ";
    json::writeNumber(os, config.warmupFraction);
    os << "\n  }";

    os << ",\n  \"metrics\": {\n    \"ipc\": ";
    json::writeNumber(os, metrics.ipc);
    os << ",\n    \"fam_at_percent\": ";
    json::writeNumber(os, metrics.famAtPercent);
    os << ",\n    \"translation_hit_rate\": ";
    json::writeNumber(os, metrics.translationHitRate);
    os << ",\n    \"acm_hit_rate\": ";
    json::writeNumber(os, metrics.acmHitRate);
    os << ",\n    \"mpki\": ";
    json::writeNumber(os, metrics.mpki);
    os << ",\n    \"fam_requests\": " << metrics.famRequests
       << ",\n    \"fam_at_requests\": " << metrics.famAtRequests
       << "\n  }";

    if (config.tenancy.jobs > 1)
        writeJobFairness(os, scenario, system, threads);

    os << ",\n  \"stats\": ";
    system.sim().stats().dumpJson(os, 2);

    // Host wall-clock profile, only when the caller attached a
    // Profiler (famsim_cli --profile). Golden runs and the sweep
    // executor never attach one, so the deterministic export above is
    // byte-identical with or without this feature compiled in.
    if (const Profiler* prof = system.sim().profiler()) {
        os << ",\n  \"profile\": ";
        prof->writeJson(os, 2);
    }

    os << "\n}";
}

std::string
runScenarioJson(const Scenario& scenario, unsigned threads)
{
    std::ostringstream os;
    writeScenarioJson(os, scenario, threads);
    os << "\n";
    return os.str();
}

// ------------------------------------------------ trace capture/replay

std::string
traceFileName(unsigned node, unsigned core, TraceFormat format)
{
    std::string name = "node" + std::to_string(node) + ".core" +
                       std::to_string(core) + ".trace";
    switch (format) {
      case TraceFormat::Binary: break;
      case TraceFormat::Gzip: name += ".gz"; break;
      case TraceFormat::Text: name += ".txt"; break;
    }
    return name;
}

SystemConfig
withTraceRecording(const SystemConfig& config, const std::string& dir,
                   TraceFormat format)
{
    SystemConfig out = config;
    // Wrap whatever the configuration would have driven the core with
    // (its own factory's product, or the default synthetic stream —
    // mirroring System::buildNode's fallback).
    out.workloadFactory =
        [inner_factory = config.workloadFactory,
         profile = config.profile, seed = config.seed, dir,
         format](unsigned node,
                 unsigned core) -> std::unique_ptr<WorkloadGen> {
        std::unique_ptr<WorkloadGen> inner;
        if (inner_factory)
            inner = inner_factory(node, core);
        if (!inner) {
            inner = std::make_unique<StreamGen>(profile, kWorkloadVaBase,
                                                seed, node * 64 + core);
        }
        return std::make_unique<RecordingWorkload>(
            std::move(inner), dir + "/" + traceFileName(node, core, format),
            format);
    };
    return out;
}

SystemConfig
withTraceReplay(const SystemConfig& config, const std::string& dir)
{
    SystemConfig out = config;
    out.workloadFactory =
        [dir](unsigned node,
              unsigned core) -> std::unique_ptr<WorkloadGen> {
        for (TraceFormat format :
             {TraceFormat::Binary, TraceFormat::Gzip, TraceFormat::Text}) {
            const std::string path =
                dir + "/" + traceFileName(node, core, format);
            if (std::filesystem::exists(path))
                return TraceReader::open(path);
        }
        FAMSIM_FATAL("no trace for node ", node, " core ", core,
                     " under '", dir, "' (expected ",
                     traceFileName(node, core), "[.gz|.txt])");
    };
    return out;
}

std::string
recordScenarioTraces(const Scenario& scenario, const std::string& dir,
                     TraceFormat format, unsigned threads)
{
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec) {
        FAMSIM_FATAL("cannot create trace directory '", dir,
                     "': ", ec.message());
    }
    Scenario copy = scenario;
    copy.config = withTraceRecording(scenario.config, dir, format);
    // The System (and with it every TraceWriter) is destroyed inside
    // runScenarioJson, so the traces are closed and complete on
    // return.
    return runScenarioJson(copy, threads);
}

std::string
replayScenarioJson(const Scenario& scenario, const std::string& dir,
                   unsigned threads)
{
    Scenario copy = scenario;
    copy.config = withTraceReplay(scenario.config, dir);
    return runScenarioJson(copy, threads);
}

} // namespace famsim
