/**
 * @file
 * Parameterized sensitivity sweeps — the paper's Fig. 13-16.
 *
 * A Sweep is a base scenario configuration plus one SweepAxis (axis
 * name, values, config mutator). Expanding a sweep yields one named,
 * seeded Scenario per axis value ("fig16_num_nodes.n4"), so sweep
 * points plug into the same golden-file regression machinery as the
 * headline scenarios (tests/test_scenarios.cc) and export the same
 * deterministic JSON. The paper registry covers:
 *
 *  - fig13_stu_entries   STU cache size 256..4096 entries
 *  - fig14_acm_size      ACM entry width 8/16/32 bits
 *  - fig15_fabric_latency one-way fabric latency 100 ns .. 6 us
 *  - fig16_num_nodes     1..8 nodes sharing the fabric and pool
 */

#ifndef FAMSIM_HARNESS_SWEEP_HH
#define FAMSIM_HARNESS_SWEEP_HH

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "harness/scenario.hh"

namespace famsim {

/** One swept configuration knob and the values it takes. */
struct SweepAxis {
    /** Axis name as plotted, e.g. "nodes" or "stu_entries". */
    std::string name;

    struct Point {
        /** Scenario-name suffix; zero-padded so sorted == sweep order. */
        std::string label;
        /** Numeric axis value (exported in the sweep JSON). */
        double value = 0.0;
        /** Applies this point's value to a base configuration. */
        std::function<void(SystemConfig&)> apply;
    };
    std::vector<Point> points;
};

/** A named sensitivity sweep: base config x one axis. */
struct Sweep {
    /** Unique id doubling as the figure tag, e.g. "fig16_num_nodes". */
    std::string name;
    std::string description;
    /** The metric the paper plots against the axis. */
    std::string headlineMetric;
    /** Complete base configuration every point starts from. */
    SystemConfig base;
    SweepAxis axis;

    /** The scenario for one axis point ("<name>.<label>"). */
    [[nodiscard]] Scenario point(const SweepAxis::Point& p) const;
    /** All points, in axis order. */
    [[nodiscard]] std::vector<Scenario> expand() const;
};

/** Registry of runnable sweeps, sorted by name. */
class SweepRegistry
{
  public:
    /** An empty registry (for tests that register their own). */
    SweepRegistry() = default;

    /** The built-in registry holding the paper's Fig. 13-16 sweeps. */
    [[nodiscard]] static const SweepRegistry& paper();

    /**
     * Every point of every paper sweep as a runnable Scenario, keyed
     * by "<sweep>.<label>" with figure == the sweep name.
     */
    [[nodiscard]] static const ScenarioRegistry& paperPoints();

    /** Register a sweep; the name must be unused. */
    void add(Sweep sweep);

    [[nodiscard]] bool has(const std::string& name) const;
    /** Lookup by name; panics on unknown names. */
    [[nodiscard]] const Sweep& byName(const std::string& name) const;
    /** All registered names, sorted. */
    [[nodiscard]] std::vector<std::string> names() const;
    [[nodiscard]] std::size_t size() const { return sweeps_.size(); }

  private:
    std::map<std::string, Sweep> sweeps_;
};

/**
 * One pinned golden point per paper sweep — the subset cheap enough
 * to regression-test on every ctest run (the full expansion is
 * exercised via famsim_cli --sweep and the CI artifact export).
 */
[[nodiscard]] std::vector<std::string> goldenSweepPointNames();

/**
 * Run every point of @p sweep and export the whole curve as one
 * deterministic JSON object (each point embeds its full scenario
 * export, stats registry included). Byte-identical across runs with
 * the same build and seed. @p threads selects the kernel per point
 * (see runScenarioJson); @p jobs fans the points across that many
 * host workers (SweepExecutor) — the export is byte-identical for
 * every job count.
 */
[[nodiscard]] std::string runSweepJson(const Sweep& sweep,
                                       unsigned threads = 0,
                                       unsigned jobs = 1);

/**
 * Core of runSweepJson: writes the export directly to @p os. Every
 * point runs through the SweepExecutor (even jobs=1, so consecutive
 * compatible points reuse one System instead of reconstructing); the
 * completed point exports are then emitted in axis order through an
 * indenting filter, regardless of completion order. Memory is O(sum
 * of point exports) — the price of running points concurrently.
 * Byte-identical to runSweepJson(sweep, threads, jobs).
 */
void writeSweepJson(std::ostream& os, const Sweep& sweep,
                    unsigned threads = 0, unsigned jobs = 1);

} // namespace famsim

#endif // FAMSIM_HARNESS_SWEEP_HH
