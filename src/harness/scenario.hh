/**
 * @file
 * Named, seeded, runnable paper scenarios.
 *
 * Each headline configuration from the paper's evaluation (ACM hit
 * rate / Fig. 9, AT hit rate / Fig. 10, end-to-end performance /
 * Fig. 12) is registered here as a Scenario: a fixed SystemConfig with
 * an explicit seed and instruction budget, deliberately independent of
 * the FAMSIM_INSTR environment variable so two runs of the same
 * scenario are always identical. Scenario results export as
 * deterministic JSON, which the golden-file regression tests
 * (tests/test_scenarios.cc) compare byte-for-byte against committed
 * baselines — giving every scale/speed PR a machine-checkable
 * behavioural diff.
 */

#ifndef FAMSIM_HARNESS_SCENARIO_HH
#define FAMSIM_HARNESS_SCENARIO_HH

#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "arch/system.hh"
#include "workload/trace.hh"

namespace famsim {

/** One named paper configuration, ready to run. */
struct Scenario {
    /** Unique id, e.g. "fig09_acm_hit_rate.mcf.deactn". */
    std::string name;
    /** Which paper figure/table this configuration belongs to. */
    std::string figure;
    /** One-line human description. */
    std::string description;
    /** The headline metric the figure plots (key into the metrics). */
    std::string headlineMetric;
    /** Complete, self-contained system configuration. */
    SystemConfig config;
};

/** Registry of runnable scenarios, sorted by name. */
class ScenarioRegistry
{
  public:
    /** An empty registry (for tests that register their own). */
    ScenarioRegistry() = default;

    /** The built-in registry holding the paper's scenarios. */
    [[nodiscard]] static const ScenarioRegistry& paper();

    /** Register a scenario; the name must be unused. */
    void add(Scenario scenario);

    [[nodiscard]] bool has(const std::string& name) const;
    /** Lookup by name; panics on unknown names. */
    [[nodiscard]] const Scenario& byName(const std::string& name) const;
    /** All scenarios belonging to one figure, sorted by name. */
    [[nodiscard]] std::vector<const Scenario*>
    byFigure(const std::string& figure) const;
    /** All registered names, sorted. */
    [[nodiscard]] std::vector<std::string> names() const;
    [[nodiscard]] std::size_t size() const { return scenarios_.size(); }

  private:
    std::map<std::string, Scenario> scenarios_;
};

/**
 * Build, run and export one scenario as deterministic JSON: scenario
 * identity, the key configuration knobs, the headline derived metrics
 * and the full statistics registry. Byte-identical across runs with
 * the same build.
 *
 * @p threads selects the kernel (System::run): 0 runs the serial
 * reference path the goldens are pinned to; any value >= 1 runs the
 * parallel kernel, whose export is byte-identical for every thread
 * count >= 1 (but intentionally not to the serial export). The JSON
 * itself carries no thread count — it describes the simulated system,
 * not the host execution.
 */
[[nodiscard]] std::string runScenarioJson(const Scenario& scenario,
                                          unsigned threads = 0);

/**
 * Streaming core of runScenarioJson: writes the export directly to
 * @p os (no materialized string, so multi-megabyte exports stream to
 * disk in O(1) memory) ending at the closing brace with no trailing
 * newline. runScenarioJson(scenario, threads) is byte-identical to
 * this plus a final "\n".
 *
 * Multi-tenant scenarios (config.tenancy.jobs > 1) additionally export
 * a "jobs" object: the per-job attribution tables summed across
 * components plus fairness/isolation summaries. The slowdown figures
 * compare each tenant's post-warmup throughput against its fair share
 * of ONE extra single-tenant baseline run of the same configuration at
 * the same thread count (see DESIGN.md "Multi-tenant job model").
 */
void writeScenarioJson(std::ostream& os, const Scenario& scenario,
                       unsigned threads = 0);

/**
 * writeScenarioJson against a caller-provided System: @p system must
 * have been constructed (or System::reset) from scenario.config and
 * not yet run — this runs it and writes the export. The sweep
 * executor's System-reuse path enters here; output is byte-identical
 * to the self-constructing overload.
 */
void writeScenarioJson(std::ostream& os, const Scenario& scenario,
                       System& system, unsigned threads);

// ------------------------------------------------ trace capture/replay

/**
 * File name of one core's trace inside a capture directory:
 * "node<i>.core<j>.trace[.gz|.txt]".
 */
[[nodiscard]] std::string
traceFileName(unsigned node, unsigned core,
              TraceFormat format = TraceFormat::Binary);

/**
 * Copy of @p config whose cores record the streams they consume into
 * per-core trace files under @p dir (see traceFileName) while running
 * — recording wraps the configured workload (factory or synthetic),
 * so the recording run's stats are identical to the unwrapped run's.
 */
[[nodiscard]] SystemConfig
withTraceRecording(const SystemConfig& config, const std::string& dir,
                   TraceFormat format = TraceFormat::Binary);

/**
 * Copy of @p config whose cores replay the per-core traces under
 * @p dir (any supported format). Replaying a directory recorded with
 * withTraceRecording reproduces the original run bit-identically: the
 * op streams are the consumed prefixes and the traces carry the full
 * prefault footprint.
 */
[[nodiscard]] SystemConfig
withTraceReplay(const SystemConfig& config, const std::string& dir);

/**
 * Run @p scenario with per-core trace recording into @p dir (created
 * if missing) and return its stats JSON — byte-identical to
 * runScenarioJson(scenario, threads), recording is observation-only.
 */
[[nodiscard]] std::string
recordScenarioTraces(const Scenario& scenario, const std::string& dir,
                     TraceFormat format = TraceFormat::Binary,
                     unsigned threads = 0);

/**
 * Run @p scenario with its cores replaying the traces under @p dir
 * and return the stats JSON (the round-trip counterpart of
 * recordScenarioTraces).
 */
[[nodiscard]] std::string
replayScenarioJson(const Scenario& scenario, const std::string& dir,
                   unsigned threads = 0);

} // namespace famsim

#endif // FAMSIM_HARNESS_SCENARIO_HH
