/**
 * @file
 * Experiment harness: runs (benchmark x architecture x parameter)
 * matrices and formats the paper-style tables/series.
 */

#ifndef FAMSIM_HARNESS_RUNNER_HH
#define FAMSIM_HARNESS_RUNNER_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "arch/system.hh"

namespace famsim {

/** Metrics extracted from one run. */
struct RunResult {
    std::string benchmark;
    ArchKind arch = ArchKind::EFam;
    double ipc = 0.0;
    double famAtPercent = 0.0;
    double translationHitRate = 0.0;
    double acmHitRate = 0.0;
    double mpki = 0.0;
    std::uint64_t famRequests = 0;
    std::uint64_t famAtRequests = 0;
};

/**
 * Default configuration for the paper's Table II system with the given
 * benchmark and architecture. The instruction limit honours the
 * FAMSIM_INSTR environment variable so benches can be scaled.
 */
[[nodiscard]] SystemConfig
makeConfig(const StreamProfile& profile, ArchKind arch,
           std::uint64_t instr_limit = 0);

/** Per-run instruction budget (FAMSIM_INSTR env var or @p fallback). */
[[nodiscard]] std::uint64_t instrBudget(std::uint64_t fallback);

/** Extract the headline metrics from a finished System run. */
[[nodiscard]] RunResult summarize(System& system);

/**
 * Build, run and summarize one configuration. @p threads selects the
 * execution kernel: 0 = serial reference, >= 1 = parallel
 * conservative-window kernel with that many worker threads (see
 * System::run).
 */
[[nodiscard]] RunResult runOne(const SystemConfig& config,
                               unsigned threads = 0);

/**
 * Worker-thread count requested via the FAMSIM_THREADS environment
 * variable (famsim_cli --threads overrides it); @p fallback when unset
 * or malformed. 0 means the serial reference kernel.
 */
[[nodiscard]] unsigned threadsFromEnv(unsigned fallback = 0);

/**
 * Sweep-point worker count requested via the FAMSIM_SWEEP_JOBS
 * environment variable (famsim_cli --sweep-jobs overrides it);
 * @p fallback when unset or malformed. Read only by the CLI, benches
 * and tests — the library itself never consults the environment,
 * mirroring FAMSIM_THREADS.
 */
[[nodiscard]] unsigned sweepJobsFromEnv(unsigned fallback = 1);

/**
 * Chrome-trace output path requested via the FAMSIM_TRACE environment
 * variable (famsim_cli --trace-out overrides it); empty when unset.
 * Read only by the CLI, benches and tests — the library itself never
 * consults the environment.
 */
[[nodiscard]] std::string traceFromEnv();

/**
 * Whether wall-clock profiling was requested via the FAMSIM_PROFILE
 * environment variable (famsim_cli --profile overrides it): set and
 * neither empty nor "0". Same CLI/bench/test-only contract as
 * traceFromEnv().
 */
[[nodiscard]] bool profileFromEnv();

/** Geometric mean (ignores non-positive values defensively). */
[[nodiscard]] double geomean(const std::vector<double>& values);

/**
 * Split a total fabric figure into the fixed node-STU hop plus the
 * swept long haul (Fig. 15 / fig15_fabric_latency share this so the
 * bench curve and the golden-pinned sweep can never drift apart):
 * Table II's 500 ns is node-link + fabric, so sweeping "fabric
 * latency = X" means a long haul of X minus the node hop (halving X
 * when it is smaller than the hop itself).
 */
[[nodiscard]] Tick longHaulFabricLatency(Tick total, Tick node_link);

/**
 * Thin shared-channel occupancy per packet used by the Fig. 16
 * contention study (§V-D4) — shared by bench_fig16 and the
 * fig16_num_nodes sweep.
 */
inline constexpr Tick kContendedFabricSerialization = 6 * kNanosecond;

/** The benchmark suites of Table III, for Fig. 13-15 grouping. */
[[nodiscard]] std::vector<std::string> suiteNames();

/** Profiles grouped per the sensitivity figures (suites + pf + dc). */
[[nodiscard]] std::map<std::string, std::vector<StreamProfile>>
sensitivityGroups();

} // namespace famsim

#endif // FAMSIM_HARNESS_RUNNER_HH
