/**
 * @file
 * Experiment harness: runs (benchmark x architecture x parameter)
 * matrices and formats the paper-style tables/series.
 */

#ifndef FAMSIM_HARNESS_RUNNER_HH
#define FAMSIM_HARNESS_RUNNER_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "arch/system.hh"

namespace famsim {

/** Metrics extracted from one run. */
struct RunResult {
    std::string benchmark;
    ArchKind arch = ArchKind::EFam;
    double ipc = 0.0;
    double famAtPercent = 0.0;
    double translationHitRate = 0.0;
    double acmHitRate = 0.0;
    double mpki = 0.0;
    std::uint64_t famRequests = 0;
    std::uint64_t famAtRequests = 0;
};

/**
 * Default configuration for the paper's Table II system with the given
 * benchmark and architecture. The instruction limit honours the
 * FAMSIM_INSTR environment variable so benches can be scaled.
 */
[[nodiscard]] SystemConfig
makeConfig(const StreamProfile& profile, ArchKind arch,
           std::uint64_t instr_limit = 0);

/** Per-run instruction budget (FAMSIM_INSTR env var or @p fallback). */
[[nodiscard]] std::uint64_t instrBudget(std::uint64_t fallback);

/** Extract the headline metrics from a finished System run. */
[[nodiscard]] RunResult summarize(System& system);

/** Build, run and summarize one configuration. */
[[nodiscard]] RunResult runOne(const SystemConfig& config);

/** Geometric mean (ignores non-positive values defensively). */
[[nodiscard]] double geomean(const std::vector<double>& values);

/** The benchmark suites of Table III, for Fig. 13-15 grouping. */
[[nodiscard]] std::vector<std::string> suiteNames();

/** Profiles grouped per the sensitivity figures (suites + pf + dc). */
[[nodiscard]] std::map<std::string, std::vector<StreamProfile>>
sensitivityGroups();

/**
 * Fixed-width series printer: one row per benchmark, one column per
 * series, matching the paper's figure layout.
 */
class SeriesTable
{
  public:
    SeriesTable(std::string title, std::string row_header,
                std::vector<std::string> columns);

    void addRow(const std::string& name,
                const std::vector<double>& values);
    void print(std::ostream& os, int precision = 2) const;

  private:
    std::string title_;
    std::string rowHeader_;
    std::vector<std::string> columns_;
    std::vector<std::pair<std::string, std::vector<double>>> rows_;
};

} // namespace famsim

#endif // FAMSIM_HARNESS_RUNNER_HH
