/**
 * @file
 * SweepExecutor — point-level parallelism for sweeps, scenario suites
 * and bench fan-outs.
 *
 * Sweep/scenario points are independent simulations, and each one runs
 * on the untouched serial kernel, so fanning the *points* across host
 * threads is determinism-free parallelism: the executor runs every
 * point to completion on one worker, collects the result into that
 * point's pre-sized slot and hands the slots back in submission order
 * — the caller's output is byte-identical for every job count,
 * bounded in wall clock by the slowest single point.
 *
 * Each worker additionally keeps one reusable System: consecutive
 * points that share the expensive construction state (topology, seed,
 * profile, OS/FAM geometry — see System::reusableAcross) are run via
 * System::reset() instead of a full reconstruction, which skips the
 * dominant page-table prefault cost. Reuse is a pure wall-clock
 * optimization: reset() is pinned to produce bit-identical statistics
 * to a fresh build (tests/test_executor.cc), so slot contents do not
 * depend on which worker ran which point.
 */

#ifndef FAMSIM_HARNESS_EXECUTOR_HH
#define FAMSIM_HARNESS_EXECUTOR_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "harness/runner.hh"
#include "harness/scenario.hh"
#include "psim/worker_pool.hh"

namespace famsim {

/** Runs independent points across a worker pool, results in order. */
class SweepExecutor
{
  public:
    /**
     * @param jobs total workers including the caller (>= 1; clamped
     *        up from 0). jobs=1 spawns no threads and visits points in
     *        slot order on the calling thread — the same code path as
     *        jobs=N minus the concurrency, and still System-reusing.
     */
    explicit SweepExecutor(unsigned jobs = 1);

    SweepExecutor(const SweepExecutor&) = delete;
    SweepExecutor& operator=(const SweepExecutor&) = delete;

    /** Total workers, caller included. */
    [[nodiscard]] unsigned jobs() const { return pool_.threads(); }

    /**
     * Run fn(0) .. fn(tasks - 1) across the pool, each exactly once.
     * Unlike the raw WorkerPool epoch, a throwing task does not
     * terminate the process: exceptions are captured per slot and the
     * lowest-slot one is rethrown on the calling thread after the
     * epoch completes (every non-throwing task still runs).
     */
    void forEach(std::size_t tasks,
                 const std::function<void(std::size_t)>& fn);

    /**
     * Render every scenario's full JSON export — byte-for-byte what
     * writeScenarioJson(os, points[i], threads) writes (no trailing
     * newline) — in slot order, reusing each worker's System across
     * compatible points.
     */
    [[nodiscard]] std::vector<std::string>
    runScenarioJsons(const std::vector<Scenario>& points,
                     unsigned threads = 0);

    /**
     * Build, run and summarize every configuration (the bench_fig13-16
     * fan-out), results in slot order, with the same System reuse.
     */
    [[nodiscard]] std::vector<RunResult>
    runResults(const std::vector<SystemConfig>& configs,
               unsigned threads = 0);

    /** Systems constructed from scratch across this executor's life. */
    [[nodiscard]] std::uint64_t systemsBuilt() const
    {
        return systemsBuilt_.load(std::memory_order_relaxed);
    }
    /** Points served by System::reset() of a cached System. */
    [[nodiscard]] std::uint64_t systemsReused() const
    {
        return systemsReused_.load(std::memory_order_relaxed);
    }

    /**
     * Host wall-clock seconds of each point of the last
     * runScenarioJsons/runResults call, in slot order (build/reset +
     * run + export). Host timings: report them (stderr, profiles) but
     * never put them in golden-compared output.
     */
    [[nodiscard]] const std::vector<double>& pointSeconds() const
    {
        return pointSeconds_;
    }

  private:
    /**
     * The cached System of @p worker, reset or rebuilt for @p config
     * and ready to run. Only ever called from that worker's thread.
     */
    System& systemFor(std::size_t worker, const SystemConfig& config);

    WorkerPool pool_;
    /** One reusable System slot per worker, caller = slot 0. */
    std::vector<std::unique_ptr<System>> workerSystems_;
    std::atomic<std::uint64_t> systemsBuilt_{0};
    std::atomic<std::uint64_t> systemsReused_{0};
    /** Per-point wall seconds of the last batch (slot-ordered; each
     *  task writes only its own slot, so no synchronization needed). */
    std::vector<double> pointSeconds_;
};

} // namespace famsim

#endif // FAMSIM_HARNESS_EXECUTOR_HH
