#include "harness/executor.hh"

#include <exception>
#include <sstream>

#include "sim/logging.hh"
#include "sim/profiler.hh"

namespace famsim {

SweepExecutor::SweepExecutor(unsigned jobs)
    : pool_(jobs == 0 ? 1 : jobs), workerSystems_(pool_.threads())
{
}

void
SweepExecutor::forEach(std::size_t tasks,
                       const std::function<void(std::size_t)>& fn)
{
    if (tasks == 0)
        return;
    // The raw WorkerPool epoch has no exception story (a throw on a
    // worker thread terminates the process); capture per slot instead
    // and rethrow the lowest-slot failure on the caller once the
    // barrier has passed — every non-throwing task still completes,
    // and the rethrown error is deterministic in the face of
    // completion-order races.
    std::vector<std::exception_ptr> errors(tasks);
    pool_.runEpochIndexed(tasks,
                          [&](std::size_t /*worker*/, std::size_t task) {
        try {
            fn(task);
        } catch (...) {
            errors[task] = std::current_exception();
        }
    });
    for (std::exception_ptr& error : errors) {
        if (error)
            std::rethrow_exception(error);
    }
}

System&
SweepExecutor::systemFor(std::size_t worker, const SystemConfig& config)
{
    std::unique_ptr<System>& slot = workerSystems_[worker];
    if (slot && slot->canReuseFor(config)) {
        slot->reset(config);
        systemsReused_.fetch_add(1, std::memory_order_relaxed);
    } else {
        slot = std::make_unique<System>(config);
        systemsBuilt_.fetch_add(1, std::memory_order_relaxed);
    }
    return *slot;
}

std::vector<std::string>
SweepExecutor::runScenarioJsons(const std::vector<Scenario>& points,
                                unsigned threads)
{
    std::vector<std::string> out(points.size());
    std::vector<std::exception_ptr> errors(points.size());
    pointSeconds_.assign(points.size(), 0.0);
    pool_.runEpochIndexed(points.size(),
                          [&](std::size_t worker, std::size_t task) {
        try {
            ScopedQuietLogs quiet;
            Profiler::Timer timer;
            std::ostringstream os;
            System& system = systemFor(worker, points[task].config);
            writeScenarioJson(os, points[task], system, threads);
            out[task] = os.str();
            pointSeconds_[task] = timer.seconds();
        } catch (...) {
            // A failure may have left the cached System mid-run;
            // never reuse it.
            workerSystems_[worker].reset();
            errors[task] = std::current_exception();
        }
    });
    for (std::exception_ptr& error : errors) {
        if (error)
            std::rethrow_exception(error);
    }
    return out;
}

std::vector<RunResult>
SweepExecutor::runResults(const std::vector<SystemConfig>& configs,
                          unsigned threads)
{
    std::vector<RunResult> out(configs.size());
    std::vector<std::exception_ptr> errors(configs.size());
    pointSeconds_.assign(configs.size(), 0.0);
    pool_.runEpochIndexed(configs.size(),
                          [&](std::size_t worker, std::size_t task) {
        try {
            Profiler::Timer timer;
            System& system = systemFor(worker, configs[task]);
            system.run(threads);
            out[task] = summarize(system);
            pointSeconds_[task] = timer.seconds();
        } catch (...) {
            workerSystems_[worker].reset();
            errors[task] = std::current_exception();
        }
    });
    for (std::exception_ptr& error : errors) {
        if (error)
            std::rethrow_exception(error);
    }
    return out;
}

} // namespace famsim
