#include "harness/sweep.hh"

#include <ostream>
#include <sstream>
#include <streambuf>

#include "harness/executor.hh"
#include "harness/runner.hh"
#include "sim/logging.hh"

namespace famsim {

namespace {

/**
 * Sweep points are regression baselines like the headline scenarios:
 * the budget is pinned here (never via FAMSIM_INSTR). Smaller than the
 * scenario budget because one sweep multiplies it by its point count —
 * and fig16 additionally by up to 8 nodes.
 */
constexpr std::uint64_t kSweepInstructions = 24000;

/** The headline-scenario budget (scenario.cc), used by the fig16
 *  scaling extension points (n16/n32/n64). */
constexpr std::uint64_t kScenarioBudget = 60000;

SystemConfig
sweepBase(const std::string& bench, ArchKind arch)
{
    SystemConfig config =
        makeConfig(profiles::byName(bench), arch, kSweepInstructions);
    // Pin the seed explicitly: sweep goldens must not move if the
    // SystemConfig default seed ever changes.
    config.seed = 1;
    return config;
}

SweepRegistry
buildPaperSweeps()
{
    SweepRegistry reg;

    // Fig. 13: STU cache size. The smaller the STU, the more DeACT's
    // in-memory translation caching helps; mcf is the canonical
    // AT-sensitive benchmark.
    {
        Sweep sweep;
        sweep.name = "fig13_stu_entries";
        sweep.description =
            "STU cache size sensitivity, 256-4096 entries (paper "
            "Fig. 13)";
        sweep.headlineMetric = "ipc";
        sweep.base = sweepBase("mcf", ArchKind::DeactN);
        sweep.axis.name = "stu_entries";
        for (std::size_t entries : {256u, 512u, 1024u, 2048u, 4096u}) {
            std::string label = "e" + std::to_string(entries);
            if (entries < 1000)
                label.insert(1, "0"); // e0256 sorts before e1024
            sweep.axis.points.push_back(
                {label, static_cast<double>(entries),
                 [entries](SystemConfig& c) { c.stu.entries = entries; }});
        }
        reg.add(std::move(sweep));
    }

    // Fig. 14: ACM cache size via the entry width (8/16/32 bits) —
    // wider entries mean fewer ACM entries per fetched block.
    {
        Sweep sweep;
        sweep.name = "fig14_acm_size";
        sweep.description =
            "ACM entry width sensitivity, 8/16/32 bits (paper Fig. 14)";
        sweep.headlineMetric = "ipc";
        sweep.base = sweepBase("mcf", ArchKind::DeactN);
        sweep.axis.name = "acm_bits";
        for (unsigned bits : {8u, 16u, 32u}) {
            std::string label =
                (bits < 10 ? "b0" : "b") + std::to_string(bits);
            sweep.axis.points.push_back(
                {label, static_cast<double>(bits),
                 [bits](SystemConfig& c) { c.stu.acmBits = bits; }});
        }
        reg.add(std::move(sweep));
    }

    // Fig. 15: one-way fabric latency 100 ns - 6 us. Every avoided FAM
    // page-table walk saves full round trips, so the speedup grows
    // with latency; pf is the paper's highlighted benchmark.
    {
        Sweep sweep;
        sweep.name = "fig15_fabric_latency";
        sweep.description =
            "Fabric latency sensitivity, 100 ns - 6 us one-way (paper "
            "Fig. 15)";
        sweep.headlineMetric = "ipc";
        sweep.base = sweepBase("pf", ArchKind::DeactN);
        sweep.axis.name = "fabric_ns";
        for (std::uint64_t ns : {100u, 500u, 1000u, 3000u, 6000u}) {
            std::ostringstream label;
            label << "ns" << (ns < 1000 ? "0" : "") << ns;
            sweep.axis.points.push_back(
                {label.str(), static_cast<double>(ns),
                 [ns](SystemConfig& c) {
                     c.fabric.latency = longHaulFabricLatency(
                         ns * kNanosecond, c.stu.nodeLinkLatency);
                 }});
        }
        reg.add(std::move(sweep));
    }

    // Fig. 16: nodes sharing the fabric and the FAM pool — the
    // broker/fabric contention paths beyond a single node. 1-8 covers
    // the paper's range; 16/32/64 extend it to the scale the parallel
    // kernel (src/psim/) targets.
    {
        Sweep sweep;
        sweep.name = "fig16_num_nodes";
        // Wording predates the 16/32/64 extension; it is pinned into
        // every fig16 golden export, so changing it would churn the
        // n4 golden for a cosmetic reason.
        sweep.description =
            "Node count sensitivity, 1-8 nodes sharing the pool (paper "
            "Fig. 16)";
        sweep.headlineMetric = "ipc";
        sweep.base = sweepBase("pf", ArchKind::DeactN);
        // A thinner shared channel exposes the contention that
        // translation traffic creates (§V-D4, as in bench_fig16).
        sweep.base.fabric.serialization = kContendedFabricSerialization;
        sweep.axis.name = "nodes";
        for (unsigned nodes : {1u, 2u, 4u, 8u}) {
            sweep.axis.points.push_back(
                {"n" + std::to_string(nodes),
                 static_cast<double>(nodes),
                 [nodes](SystemConfig& c) { c.nodes = nodes; }});
        }
        // The scaling extension runs at the scenario (golden) budget of
        // 60k instructions rather than the sweep's 24k: these points
        // exist to measure multi-node contention and host-side parallel
        // speedup, and the bigger budget keeps the measurement window
        // meaningful once 64 nodes share one warmup lead core.
        // (Labels sort after the n1-n8 points; expand() order is axis
        // order, so curves stay in sweep order regardless.)
        for (unsigned nodes : {16u, 32u, 64u}) {
            sweep.axis.points.push_back(
                {"n" + std::to_string(nodes),
                 static_cast<double>(nodes), [nodes](SystemConfig& c) {
                     c.nodes = nodes;
                     c.core.instructionLimit = kScenarioBudget;
                 }});
        }
        reg.add(std::move(sweep));
    }

    return reg;
}

ScenarioRegistry
buildPaperPoints()
{
    ScenarioRegistry reg;
    const SweepRegistry& sweeps = SweepRegistry::paper();
    for (const std::string& name : sweeps.names()) {
        for (Scenario& scenario : sweeps.byName(name).expand())
            reg.add(std::move(scenario));
    }
    return reg;
}

} // namespace

Scenario
Sweep::point(const SweepAxis::Point& p) const
{
    FAMSIM_ASSERT(p.apply, "sweep '", name, "' point '", p.label,
                  "' has no config mutator");
    Scenario scenario;
    scenario.name = name + "." + p.label;
    scenario.figure = name;
    scenario.description = description;
    scenario.headlineMetric = headlineMetric;
    scenario.config = base;
    p.apply(scenario.config);
    return scenario;
}

std::vector<Scenario>
Sweep::expand() const
{
    std::vector<Scenario> out;
    out.reserve(axis.points.size());
    for (const auto& p : axis.points)
        out.push_back(point(p));
    return out;
}

const SweepRegistry&
SweepRegistry::paper()
{
    static const SweepRegistry registry = buildPaperSweeps();
    return registry;
}

const ScenarioRegistry&
SweepRegistry::paperPoints()
{
    static const ScenarioRegistry registry = buildPaperPoints();
    return registry;
}

void
SweepRegistry::add(Sweep sweep)
{
    FAMSIM_ASSERT(!sweep.name.empty(), "sweep needs a name");
    FAMSIM_ASSERT(!sweep.axis.points.empty(), "sweep '", sweep.name,
                  "' has no points");
    auto [it, inserted] = sweeps_.emplace(sweep.name, std::move(sweep));
    FAMSIM_ASSERT(inserted, "sweep '", it->first, "' registered twice");
}

bool
SweepRegistry::has(const std::string& name) const
{
    return sweeps_.find(name) != sweeps_.end();
}

const Sweep&
SweepRegistry::byName(const std::string& name) const
{
    auto it = sweeps_.find(name);
    if (it == sweeps_.end())
        FAMSIM_PANIC("unknown sweep '", name, "'");
    return it->second;
}

std::vector<std::string>
SweepRegistry::names() const
{
    std::vector<std::string> out;
    out.reserve(sweeps_.size());
    for (const auto& [name, sweep] : sweeps_)
        out.push_back(name);
    return out;
}

std::vector<std::string>
goldenSweepPointNames()
{
    // One representative, non-default point per sweep; fig16 pins the
    // 4-node point so the multi-node broker/fabric paths are covered
    // on every ctest run without paying for the 8-node run, plus the
    // 16-node scaling point (60k budget) that anchors the parallel
    // kernel's speedup measurements.
    return {
        "fig13_stu_entries.e0256",
        "fig14_acm_size.b08",
        "fig15_fabric_latency.ns3000",
        "fig16_num_nodes.n4",
        "fig16_num_nodes.n16",
    };
}

namespace {

/**
 * A streambuf filter that prepends @p indent spaces to every line it
 * forwards. The indent is emitted lazily — after a '\n', before the
 * next character — so output that ends mid-line (every scenario export
 * ends at its closing brace) never grows trailing whitespace. This is
 * what lets a sweep embed each point's scenario export without
 * materializing it: writeScenarioJson streams through the filter
 * straight into the destination.
 */
class IndentingBuf : public std::streambuf
{
  public:
    IndentingBuf(std::streambuf* dest, int indent)
        : dest_(dest), indent_(indent)
    {}

  protected:
    int_type
    overflow(int_type ch) override
    {
        if (traits_type::eq_int_type(ch, traits_type::eof()))
            return traits_type::not_eof(ch);
        if (atLineStart_ && ch != '\n') {
            for (int i = 0; i < indent_; ++i) {
                if (dest_->sputc(' ') == traits_type::eof())
                    return traits_type::eof();
            }
        }
        atLineStart_ = ch == '\n';
        return dest_->sputc(traits_type::to_char_type(ch));
    }

  private:
    std::streambuf* dest_;
    int indent_;
    /** True immediately after a newline (indent owed to the next char). */
    bool atLineStart_ = false;
};

} // namespace

void
writeSweepJson(std::ostream& os, const Sweep& sweep, unsigned threads,
               unsigned jobs)
{
    os << "{\n  \"sweep\": ";
    json::writeString(os, sweep.name);
    os << ",\n  \"description\": ";
    json::writeString(os, sweep.description);
    os << ",\n  \"headline_metric\": ";
    json::writeString(os, sweep.headlineMetric);
    os << ",\n  \"axis\": ";
    json::writeString(os, sweep.axis.name);

    os << ",\n  \"axis_values\": [";
    for (std::size_t i = 0; i < sweep.axis.points.size(); ++i) {
        os << (i ? ", " : "");
        json::writeNumber(os, sweep.axis.points[i].value);
    }
    os << "]";

    // Run every point through the executor (jobs workers, System
    // reuse across compatible points), then emit the collected
    // exports in axis order — completion order never shows in the
    // output, so the bytes match the old point-at-a-time serial
    // export for every job count.
    SweepExecutor executor(jobs);
    const std::vector<std::string> exports =
        executor.runScenarioJsons(sweep.expand(), threads);

    os << ",\n  \"points\": [";
    for (std::size_t i = 0; i < exports.size(); ++i) {
        // Each point's export is nested inside the points array via
        // the indenting filter, exactly as when it streamed directly.
        os << (i ? "," : "") << "\n    ";
        os.flush();
        IndentingBuf indenter(os.rdbuf(), 4);
        std::ostream nested(&indenter);
        nested << exports[i];
        nested.flush();
    }
    os << "\n  ]\n}\n";
}

std::string
runSweepJson(const Sweep& sweep, unsigned threads, unsigned jobs)
{
    std::ostringstream os;
    writeSweepJson(os, sweep, threads, jobs);
    return os.str();
}

} // namespace famsim
