#include "harness/figure_report.hh"

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <iostream>

#include "harness/runner.hh"
#include "sim/logging.hh"
#include "sim/stats.hh"

namespace famsim {

FigureReport::FigureReport(std::string figure, std::string title,
                           std::string row_header,
                           std::vector<std::string> columns)
    : figure_(std::move(figure)),
      title_(std::move(title)),
      rowHeader_(std::move(row_header)),
      columns_(std::move(columns))
{
    FAMSIM_ASSERT(!figure_.empty(), "figure report needs an id");
}

void
FigureReport::addRow(const std::string& name,
                     const std::vector<double>& values)
{
    FAMSIM_ASSERT(values.size() == columns_.size(),
                  "row '", name, "' has ", values.size(),
                  " values for ", columns_.size(), " columns");
    rows_.emplace_back(name, values);
}

void
FigureReport::addSummary(const std::string& key, double value)
{
    summary_.emplace_back(key, value);
}

void
FigureReport::addMeta(const std::string& key, const std::string& value)
{
    meta_.emplace_back(key, value);
}

void
FigureReport::addNote(const std::string& note)
{
    notes_.push_back(note);
}

void
FigureReport::printTable(std::ostream& os, int precision) const
{
    os << "\n== " << title_ << " ==\n";
    if (!columns_.empty() || !rows_.empty()) {
        os << std::left << std::setw(12) << rowHeader_;
        for (const auto& col : columns_)
            os << std::right << std::setw(12) << col;
        os << "\n";
        os << std::string(12 + 12 * columns_.size(), '-') << "\n";
        for (const auto& [name, values] : rows_) {
            os << std::left << std::setw(12) << name;
            for (double v : values) {
                os << std::right << std::setw(12) << std::fixed
                   << std::setprecision(precision) << v;
            }
            os << "\n";
        }
    }
    for (const auto& [key, value] : summary_) {
        os << key << " = " << std::fixed
           << std::setprecision(precision + 2) << value << "\n";
    }
    for (const auto& [key, value] : meta_)
        os << key << " = " << value << "\n";
    for (const auto& note : notes_)
        os << "(" << note << ")\n";
    os.flush();
}

void
FigureReport::writeJson(std::ostream& os) const
{
    os << "{\n  \"figure\": ";
    json::writeString(os, figure_);
    os << ",\n  \"title\": ";
    json::writeString(os, title_);
    os << ",\n  \"row_header\": ";
    json::writeString(os, rowHeader_);

    os << ",\n  \"columns\": [";
    for (std::size_t i = 0; i < columns_.size(); ++i) {
        os << (i ? ", " : "");
        json::writeString(os, columns_[i]);
    }
    os << "]";

    os << ",\n  \"rows\": [";
    for (std::size_t i = 0; i < rows_.size(); ++i) {
        os << (i ? ",\n    " : "\n    ") << "{\"name\": ";
        json::writeString(os, rows_[i].first);
        os << ", \"values\": [";
        const auto& values = rows_[i].second;
        for (std::size_t j = 0; j < values.size(); ++j) {
            os << (j ? ", " : "");
            json::writeNumber(os, values[j]);
        }
        os << "]}";
    }
    os << (rows_.empty() ? "]" : "\n  ]");

    os << ",\n  \"summary\": {";
    for (std::size_t i = 0; i < summary_.size(); ++i) {
        os << (i ? ", " : "");
        json::writeString(os, summary_[i].first);
        os << ": ";
        json::writeNumber(os, summary_[i].second);
    }
    os << "}";

    os << ",\n  \"meta\": {";
    for (std::size_t i = 0; i < meta_.size(); ++i) {
        os << (i ? ", " : "");
        json::writeString(os, meta_[i].first);
        os << ": ";
        json::writeString(os, meta_[i].second);
    }
    os << "}";

    os << ",\n  \"notes\": [";
    for (std::size_t i = 0; i < notes_.size(); ++i) {
        os << (i ? ", " : "");
        json::writeString(os, notes_[i]);
    }
    os << "]\n}\n";
}

BenchOptions
parseBenchArgs(int argc, char** argv, std::uint64_t instr_fallback)
{
    BenchOptions options;
    std::uint64_t instr_override = 0;
    unsigned jobs_override = 0;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto need = [&](const char* flag) -> std::string {
            if (i + 1 >= argc) {
                std::cerr << flag << " needs a value\n";
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--json") {
            options.json = true;
        } else if (arg == "--out") {
            options.outPath = need("--out");
        } else if (arg == "--instr") {
            std::string value = need("--instr");
            char* end = nullptr;
            instr_override = std::strtoull(value.c_str(), &end, 10);
            // Reject '-' explicitly: strtoull silently wraps negative
            // input to a near-2^64 budget.
            if (!end || *end != '\0' || instr_override == 0 ||
                value.find('-') != std::string::npos) {
                std::cerr << "--instr needs a positive integer, got '"
                          << value << "'\n";
                std::exit(2);
            }
        } else if (arg == "--sweep-jobs") {
            std::string value = need("--sweep-jobs");
            char* end = nullptr;
            unsigned long parsed = std::strtoul(value.c_str(), &end, 10);
            if (!end || *end != '\0' || parsed == 0 ||
                parsed > 1024 ||
                value.find('-') != std::string::npos) {
                std::cerr << "--sweep-jobs needs a positive integer "
                             "(<= 1024), got '"
                          << value << "'\n";
                std::exit(2);
            }
            jobs_override = static_cast<unsigned>(parsed);
        } else if (arg == "--help" || arg == "-h") {
            std::cout << "usage: " << argv[0]
                      << " [--json] [--out <path>] [--instr <n>]"
                         " [--sweep-jobs <n>]\n"
                         "  --json       emit the figure as JSON\n"
                         "  --out        write output to a file\n"
                         "  --instr      instructions per run (also "
                         "FAMSIM_INSTR)\n"
                         "  --sweep-jobs point-level workers (also "
                         "FAMSIM_SWEEP_JOBS)\n";
            std::exit(0);
        } else {
            std::cerr << "unknown option '" << arg
                      << "' (try --help)\n";
            std::exit(2);
        }
    }
    options.instructions =
        instr_override != 0 ? instr_override : instrBudget(instr_fallback);
    options.sweepJobs =
        jobs_override != 0 ? jobs_override : sweepJobsFromEnv(1);
    return options;
}

int
emitReport(const FigureReport& report, const BenchOptions& options)
{
    return emitReports({&report}, options);
}

int
emitReports(const std::vector<const FigureReport*>& reports,
            const BenchOptions& options)
{
    FAMSIM_ASSERT(!reports.empty(), "no reports to emit");
    std::ofstream file;
    if (!options.outPath.empty()) {
        file.open(options.outPath, std::ios::binary | std::ios::trunc);
        if (!file) {
            std::cerr << "cannot write '" << options.outPath << "'\n";
            return 1;
        }
    }
    std::ostream& os = options.outPath.empty() ? std::cout : file;
    if (options.json) {
        reports.front()->writeJson(os);
        // Companion figures can't share the headline's JSON object;
        // with --out each gets a sibling file named by its figure id
        // (on stdout they are skipped to keep the output one object).
        for (std::size_t i = 1; i < reports.size(); ++i) {
            if (options.outPath.empty())
                continue;
            std::filesystem::path sibling =
                std::filesystem::path(options.outPath).parent_path() /
                (reports[i]->figure() + ".json");
            std::ofstream extra(sibling,
                                std::ios::binary | std::ios::trunc);
            if (!extra) {
                std::cerr << "cannot write '" << sibling.string()
                          << "'\n";
                return 1;
            }
            reports[i]->writeJson(extra);
        }
    } else {
        for (const FigureReport* report : reports)
            report->printTable(os);
    }
    return 0;
}

} // namespace famsim
