/**
 * @file
 * FigureReport — the shared output harness for every bench_fig* /
 * bench_table* binary.
 *
 * A bench builds one FigureReport (figure id, title, row/column
 * labels, numeric series, free-form metadata) and hands it to
 * emitReport(), which either pretty-prints the paper-style table for
 * eyeballing or emits the whole figure as deterministic JSON (via the
 * json::* helpers shared with StatRegistry::dumpJson) for machine
 * diffing and CI artifact upload.
 */

#ifndef FAMSIM_HARNESS_FIGURE_REPORT_HH
#define FAMSIM_HARNESS_FIGURE_REPORT_HH

#include <chrono>
#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace famsim {

/** One figure's series: rows x columns of numbers plus annotations. */
class FigureReport
{
  public:
    /**
     * @param figure  machine id, e.g. "fig09_acm_hit_rate"
     * @param title   human title, e.g. "Fig. 9: ACM hit rate (%)"
     * @param row_header  label of the row axis (e.g. "bench")
     * @param columns     one label per series
     */
    FigureReport(std::string figure, std::string title,
                 std::string row_header,
                 std::vector<std::string> columns);

    /** Append one row; values.size() must equal the column count. */
    void addRow(const std::string& name,
                const std::vector<double>& values);

    /** Attach a named scalar (geomeans, best-case speedups...). */
    void addSummary(const std::string& key, double value);

    /** Attach a named string (configuration text, best benchmark...). */
    void addMeta(const std::string& key, const std::string& value);

    /** Append a free-form note (the paper's expected shape). */
    void addNote(const std::string& note);

    /** Paper-style fixed-width table + metadata + notes. */
    void printTable(std::ostream& os, int precision = 2) const;

    /** The figure as one deterministic JSON object. */
    void writeJson(std::ostream& os) const;

    [[nodiscard]] const std::string& figure() const { return figure_; }
    [[nodiscard]] std::size_t rows() const { return rows_.size(); }

  private:
    std::string figure_;
    std::string title_;
    std::string rowHeader_;
    std::vector<std::string> columns_;
    std::vector<std::pair<std::string, std::vector<double>>> rows_;
    std::vector<std::pair<std::string, double>> summary_;
    std::vector<std::pair<std::string, std::string>> meta_;
    std::vector<std::string> notes_;
};

/** Command line shared by every bench binary. */
struct BenchOptions {
    /** Emit JSON instead of the human table. */
    bool json = false;
    /** Write the output here instead of stdout (empty = stdout). */
    std::string outPath;
    /** Resolved per-run instruction budget. */
    std::uint64_t instructions = 0;
    /**
     * Sweep-point workers for the bench's SweepExecutor fan-out
     * (--sweep-jobs, falling back to FAMSIM_SWEEP_JOBS, then 1).
     */
    unsigned sweepJobs = 1;
};

/**
 * Best-of-@p reps wall-clock seconds of @p fn — the shared noise
 * floor for host-timing benches (bench_throughput rows, the fig16
 * host-speedup column); one definition so every bench samples the
 * same way.
 */
template <typename Fn>
[[nodiscard]] double
bestOfSeconds(int reps, Fn&& fn)
{
    double best = 0.0;
    for (int rep = 0; rep < reps; ++rep) {
        // lint-allow(wall-clock): host-speedup benches time the host by design; results land in bench reports, not sim output
        auto t0 = std::chrono::steady_clock::now();
        fn();
        double s = std::chrono::duration<double>(
                       // lint-allow(wall-clock): host-speedup benches time the host by design
                       std::chrono::steady_clock::now() - t0)
                       .count();
        if (rep == 0 || s < best)
            best = s;
    }
    return best;
}

/**
 * Parse a bench command line:
 *   --json            emit the figure as JSON on stdout
 *   --out <path>      write the output (table or JSON) to a file
 *   --instr <n>       instruction budget (overrides FAMSIM_INSTR)
 *   --sweep-jobs <n>  point-level workers (overrides FAMSIM_SWEEP_JOBS)
 *   --help            print usage and exit 0
 * Unknown flags exit 2. @p instr_fallback seeds instrBudget() when
 * neither --instr nor FAMSIM_INSTR is given.
 */
[[nodiscard]] BenchOptions
parseBenchArgs(int argc, char** argv, std::uint64_t instr_fallback);

/**
 * Emit @p report per @p options (table or JSON, stdout or file).
 * @return the bench process exit code.
 */
int emitReport(const FigureReport& report, const BenchOptions& options);

/**
 * Emit a bench's reports: in table mode every report prints to the
 * same destination. In JSON mode the first (headline) figure goes to
 * the requested destination; with --out each companion report is
 * written to a sibling file named "<figure-id>.json" in the same
 * directory, keeping every file one JSON object. For benches with
 * companion studies (Fig. 13's associativity, Fig. 14's pairs).
 */
int emitReports(const std::vector<const FigureReport*>& reports,
                const BenchOptions& options);

} // namespace famsim

#endif // FAMSIM_HARNESS_FIGURE_REPORT_HH
