#include "harness/runner.hh"

#include <cmath>
#include <cstdlib>

#include "sim/logging.hh"

namespace famsim {

std::uint64_t
instrBudget(std::uint64_t fallback)
{
    if (const char* env = std::getenv("FAMSIM_INSTR")) {
        char* end = nullptr;
        std::uint64_t value = std::strtoull(env, &end, 10);
        if (end && *end == '\0' && value > 0)
            return value;
        warn("ignoring malformed FAMSIM_INSTR='", env, "'");
    }
    return fallback;
}

SystemConfig
makeConfig(const StreamProfile& profile, ArchKind arch,
           std::uint64_t instr_limit)
{
    SystemConfig config;
    config.arch = arch;
    config.profile = profile;
    config.core.instructionLimit =
        instr_limit != 0 ? instr_limit : instrBudget(300000);
    // The paper measures 100M-instruction steady-state windows; with
    // our scaled-down runs a generous warmup is needed before the
    // large in-DRAM translation cache reaches steady state.
    config.warmupFraction = 0.3;
    return config;
}

RunResult
summarize(System& system)
{
    RunResult result;
    result.benchmark = system.config().profile.name;
    result.arch = system.config().arch;
    result.ipc = system.ipc();
    result.famAtPercent = system.famAtPercent();
    result.translationHitRate = system.translationHitRate();
    result.acmHitRate = system.acmHitRate();
    result.mpki = system.mpki();
    result.famRequests = system.media().totalRequests();
    result.famAtRequests = system.media().atRequests();
    return result;
}

RunResult
runOne(const SystemConfig& config, unsigned threads)
{
    System system(config);
    system.run(threads);
    return summarize(system);
}

unsigned
threadsFromEnv(unsigned fallback)
{
    if (const char* env = std::getenv("FAMSIM_THREADS")) {
        char* end = nullptr;
        unsigned long value = std::strtoul(env, &end, 10);
        if (end && *end == '\0') {
            // Absurd widths clamp rather than fall back to serial:
            // the kernel caps workers at the partition count anyway.
            constexpr unsigned long kMaxThreads = 1024;
            if (value > kMaxThreads) {
                warn("clamping FAMSIM_THREADS=", value, " to ",
                     kMaxThreads);
                value = kMaxThreads;
            }
            return static_cast<unsigned>(value);
        }
        warn("ignoring malformed FAMSIM_THREADS='", env, "'");
    }
    return fallback;
}

std::string
traceFromEnv()
{
    if (const char* env = std::getenv("FAMSIM_TRACE"))
        return env;
    return {};
}

bool
profileFromEnv()
{
    const char* env = std::getenv("FAMSIM_PROFILE");
    return env && *env != '\0' && std::string(env) != "0";
}

unsigned
sweepJobsFromEnv(unsigned fallback)
{
    if (const char* env = std::getenv("FAMSIM_SWEEP_JOBS")) {
        char* end = nullptr;
        unsigned long value = std::strtoul(env, &end, 10);
        if (end && *end == '\0' && value > 0) {
            constexpr unsigned long kMaxSweepJobs = 1024;
            if (value > kMaxSweepJobs) {
                warn("clamping FAMSIM_SWEEP_JOBS=", value, " to ",
                     kMaxSweepJobs);
                value = kMaxSweepJobs;
            }
            return static_cast<unsigned>(value);
        }
        warn("ignoring malformed FAMSIM_SWEEP_JOBS='", env, "'");
    }
    return fallback;
}

double
geomean(const std::vector<double>& values)
{
    double log_sum = 0.0;
    std::size_t count = 0;
    for (double v : values) {
        if (v > 0.0) {
            log_sum += std::log(v);
            ++count;
        }
    }
    return count == 0 ? 0.0
                      : std::exp(log_sum / static_cast<double>(count));
}

Tick
longHaulFabricLatency(Tick total, Tick node_link)
{
    return total > node_link ? total - node_link : total / 2;
}

std::vector<std::string>
suiteNames()
{
    return {"SPEC", "PARSEC", "GAP"};
}

std::map<std::string, std::vector<StreamProfile>>
sensitivityGroups()
{
    // Fig. 13-15 report geometric means of the SPEC, PARSEC and GAP
    // suites plus pf and dc individually (§V-D).
    std::map<std::string, std::vector<StreamProfile>> groups;
    for (const auto& p : profiles::all()) {
        if (p.suite == "SPEC" || p.suite == "PARSEC" || p.suite == "GAP")
            groups[p.suite].push_back(p);
        else if (p.name == "pf" || p.name == "dc")
            groups[p.name].push_back(p);
    }
    return groups;
}

} // namespace famsim
