#include "node/core.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "sim/trace_sink.hh"

namespace famsim {

Core::Core(Simulation& sim, const std::string& name,
           const CoreParams& params, NodeId node, NodeId logical_node,
           CoreId core_id, WorkloadGen& workload, TwoLevelTlb& tlb,
           NodePtWalker& walker, MemSink& l1, NodeOs& os)
    : Component(sim, name),
      params_(params),
      node_(node),
      logicalNode_(logical_node),
      coreId_(core_id),
      workload_(workload),
      tlb_(tlb),
      walker_(walker),
      l1_(l1),
      os_(os),
      instructions_(statCounter("instructions", "instructions retired")),
      memOps_(statCounter("mem_ops", "memory operations issued")),
      tlbWalks_(statCounter("tlb_walks", "TLB-miss page-table walks")),
      pageFaults_(statCounter("page_faults", "OS page faults taken")),
      windowStalls_(statCounter("window_stalls",
                                "stalls on a full outstanding window")),
      blockingStalls_(statCounter("blocking_stalls",
                                  "stalls on dependence-chain loads"))
{
    FAMSIM_ASSERT(params.issueWidth > 0, "issue width must be positive");
    FAMSIM_ASSERT(params.maxOutstanding > 0,
                  "outstanding window must be positive");
}

void
Core::start(std::function<void()> on_finish)
{
    FAMSIM_ASSERT(state_ == WaitState::Finished,
                  "core started while running");
    onFinish_ = std::move(on_finish);
    state_ = WaitState::Running;
    localTime_ = sim_.curTick();
    windowStartInst_ = instRetired_;
    windowStartTime_ = localTime_;
    scheduleResume();
}

void
Core::addPhaseCallback(std::uint64_t instructions, std::function<void()> fn)
{
    auto pos = std::upper_bound(
        phaseHooks_.begin(), phaseHooks_.end(), instructions,
        [](std::uint64_t at, const PhaseHook& hook) { return at < hook.at; });
    phaseHooks_.insert(pos, PhaseHook{instructions, std::move(fn)});
    nextPhaseAt_ = phaseHooks_.front().at;
}

void
Core::firePhaseCallbacks()
{
    while (!phaseHooks_.empty() && instRetired_ >= phaseHooks_.front().at) {
        auto fn = std::move(phaseHooks_.front().fn);
        phaseHooks_.erase(phaseHooks_.begin());
        nextPhaseAt_ =
            phaseHooks_.empty() ? kNoPhase : phaseHooks_.front().at;
        fn();
    }
}

void
Core::markWindow()
{
    windowStartInst_ = instRetired_;
    windowStartTime_ = localTime_;
}

double
Core::ipc() const
{
    Tick elapsed = localTime_ - windowStartTime_;
    if (elapsed == 0)
        return 0.0;
    double cycles = static_cast<double>(elapsed) /
                    static_cast<double>(params_.period);
    return static_cast<double>(instRetired_ - windowStartInst_) / cycles;
}

void
Core::scheduleResume()
{
    if (resumeScheduled_)
        return;
    resumeScheduled_ = true;
    Tick when = std::max(localTime_, sim_.curTick());
    sim_.events().schedule(when, [this] { resume(); });
}

void
Core::resume()
{
    resumeScheduled_ = false;
    if (state_ == WaitState::Finished)
        return;
    state_ = WaitState::Running;
    localTime_ = std::max(localTime_, sim_.curTick());

    unsigned processed = 0;
    while (instRetired_ < params_.instructionLimit) {
        if (++processed > params_.batchSize) {
            scheduleResume();
            return;
        }

        if (!pendingOp_) {
            MemOpDesc op = workload_.next();
            // Retire the non-memory gap at the issue width.
            std::uint64_t gap = std::min<std::uint64_t>(
                op.gap, params_.instructionLimit - instRetired_);
            instRetired_ += gap;
            instructions_ += gap;
            localTime_ += gap * params_.period / params_.issueWidth;
            if (instRetired_ >= nextPhaseAt_)
                firePhaseCallbacks();
            if (instRetired_ >= params_.instructionLimit)
                break;
            pendingOp_ = op;
        }

        auto npa = translate(*pendingOp_);
        if (!npa)
            return; // waiting on a walk / fault (state_ == Walk)

        if (outstanding_ >= params_.maxOutstanding) {
            ++windowStalls_;
            state_ = WaitState::Window;
            return;
        }

        MemOpDesc op = *pendingOp_;
        pendingOp_.reset();
        issueMemOp(op, *npa);
        ++instRetired_;
        ++instructions_;
        localTime_ += params_.period / params_.issueWidth;
        if (instRetired_ >= nextPhaseAt_)
            firePhaseCallbacks();

        if (op.blocking) {
            ++blockingStalls_;
            state_ = WaitState::Blocking;
            return;
        }
    }
    finish();
}

std::optional<NPAddr>
Core::translate(const MemOpDesc& op)
{
    std::uint64_t va_page = op.vaddr / kPageSize;
    auto result = tlb_.lookup(va_page);
    localTime_ += result.latency;
    if (result.entry) {
        return NPAddr(result.entry->valuePage * kPageSize +
                      op.vaddr % kPageSize);
    }
    // TLB miss: hand over to the hardware walker.
    ++tlbWalks_;
    state_ = WaitState::Walk;
    Tick when = std::max(localTime_, sim_.curTick());
    sim_.events().schedule(when, [this, va_page] {
        walker_.walk(va_page, [this, va_page](auto leaf) {
            onWalkDone(va_page, leaf);
        });
    });
    return std::nullopt;
}

void
Core::onWalkDone(std::uint64_t va_page,
                 std::optional<HierarchicalPageTable::Leaf> leaf)
{
    localTime_ = std::max(localTime_, sim_.curTick());
    if (!leaf) {
        // Page fault: the OS maps the page, then the walk is redone
        // (the retry performs real page-table accesses again).
        ++pageFaults_;
        localTime_ += os_.handleFault(va_page);
        Tick when = std::max(localTime_, sim_.curTick());
        sim_.events().schedule(when, [this, va_page] {
            walker_.walk(va_page, [this, va_page](auto l) {
                onWalkDone(va_page, l);
            });
        });
        return;
    }
    tlb_.insert(va_page, TlbEntry{leaf->valuePage, leaf->perms});
    resume();
}

void
Core::issueMemOp(const MemOpDesc& op, NPAddr npa)
{
    ++memOps_;
    if (jobOps_)
        jobOps_->add(op.job);
    PktPtr pkt = makePacket(node_, coreId_,
                            op.write ? MemOp::Write : MemOp::Read,
                            PacketKind::Data);
    pkt->logicalNode = logicalNode_;
    pkt->job = op.job;
    pkt->vaddr = VAddr(op.vaddr);
    pkt->npa = npa;
    pkt->issued = localTime_;
    bool blocking = op.blocking;
    pkt->onDone = [this, blocking](Packet& p) {
        // Packet lifecycle span: issue -> completion, on the owning
        // node's trace lane (the handler runs on that partition).
        if (TraceSink* trace = sim_.trace();
            trace && trace->wants(TraceSink::kPacket)) {
            trace->span(TraceSink::kPacket, node_, "core.op", p.issued,
                        sim_.curTick());
        }
        onMemComplete(blocking, sim_.curTick());
    };
    ++outstanding_;
    Tick when = std::max(localTime_, sim_.curTick());
    sim_.events().schedule(when, [this, pkt] { l1_.access(pkt); });
}

void
Core::onMemComplete(bool was_blocking, Tick)
{
    FAMSIM_ASSERT(outstanding_ > 0, "memory completion underflow");
    --outstanding_;
    if (state_ == WaitState::Window ||
        (state_ == WaitState::Blocking && was_blocking)) {
        resume();
    }
}

void
Core::finish()
{
    state_ = WaitState::Finished;
    if (onFinish_) {
        auto fn = std::move(onFinish_);
        onFinish_ = nullptr;
        fn();
    }
}

} // namespace famsim
