#include "node/mem_ctrl.hh"

#include "sim/logging.hh"

namespace famsim {

MemController::MemController(Simulation& sim, const std::string& name,
                             NodeOs& os, BankedMemory& dram,
                             MemSink& fam_path)
    : Component(sim, name),
      os_(os),
      dram_(dram),
      famPath_(fam_path),
      localAccesses_(statCounter("local_accesses",
                                 "accesses served by local DRAM")),
      famAccesses_(statCounter("fam_accesses",
                               "accesses routed to the FAM path"))
{
}

void
MemController::access(const PktPtr& pkt)
{
    if (NodeOs::isFamDirect(pkt->npa)) {
        // E-FAM: the node page table holds real FAM addresses.
        pkt->fam = NodeOs::famDirectAddr(pkt->npa);
        pkt->hasFam = true;
        ++famAccesses_;
        famPath_.access(pkt);
        return;
    }
    if (os_.isLocal(pkt->npa)) {
        ++localAccesses_;
        dram_.access(pkt, pkt->npa.value());
        return;
    }
    ++famAccesses_;
    famPath_.access(pkt);
}

} // namespace famsim
