/**
 * @file
 * Node memory controller: steers LLC misses by NPA zone.
 *
 * Local-zone addresses go to the node's DRAM; FAM-zone addresses take
 * the architecture-specific FAM path (direct fabric access in E-FAM,
 * the STU in I-FAM, the FAM translator in DeACT). E-FAM "direct"
 * mappings (real FAM addresses installed by the patched OS) are
 * unwrapped here.
 */

#ifndef FAMSIM_NODE_MEM_CTRL_HH
#define FAMSIM_NODE_MEM_CTRL_HH

#include <string>

#include "mem/banked_memory.hh"
#include "mem/mem_sink.hh"
#include "sim/simulation.hh"
#include "vm/node_os.hh"

namespace famsim {

/** The node's memory controller (Fig. 6 host of the FAM translator). */
class MemController : public Component, public MemSink
{
  public:
    MemController(Simulation& sim, const std::string& name, NodeOs& os,
                  BankedMemory& dram, MemSink& fam_path);

    void access(const PktPtr& pkt) override;

  private:
    NodeOs& os_;
    BankedMemory& dram_;
    MemSink& famPath_;

    Counter& localAccesses_;
    Counter& famAccesses_;
};

} // namespace famsim

#endif // FAMSIM_NODE_MEM_CTRL_HH
