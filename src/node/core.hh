/**
 * @file
 * Trace-driven core model (Table II: 4 out-of-order cores, 2 GHz,
 * 2-issue, 32 outstanding memory requests).
 *
 * The core consumes a workload stream. Non-memory instructions retire
 * at the issue width; memory operations are translated through the
 * per-core two-level TLB (walking the node page table on a miss, with
 * OS page-fault handling on unmapped pages) and then issued into the
 * cache hierarchy. The core models memory-level parallelism with a
 * bounded outstanding-request window and a configurable fraction of
 * blocking (dependence-chain) loads.
 *
 * Time is tracked as a local clock that never runs behind the event
 * queue; the core yields to the queue whenever it must wait (window
 * full, blocking load, TLB walk) or after a batch of work, keeping
 * multi-core interleaving fair and deterministic.
 */

#ifndef FAMSIM_NODE_CORE_HH
#define FAMSIM_NODE_CORE_HH

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "cache/cache_level.hh"
#include "sim/simulation.hh"
#include "vm/node_os.hh"
#include "vm/tlb.hh"
#include "vm/walker.hh"
#include "workload/stream_gen.hh"

namespace famsim {

/** Core configuration. */
struct CoreParams {
    /** Clock period (500 ps = 2 GHz). */
    Tick period = 500;
    /** Instructions issued per cycle. */
    unsigned issueWidth = 2;
    /** Maximum outstanding memory requests. */
    unsigned maxOutstanding = 32;
    /** Instructions to retire before finishing. */
    std::uint64_t instructionLimit = 400000;
    /** Ops processed per activation before yielding to the queue. */
    unsigned batchSize = 2000;
};

/** One simulated core. */
class Core : public Component
{
  public:
    Core(Simulation& sim, const std::string& name, const CoreParams& params,
         NodeId node, NodeId logical_node, CoreId core_id,
         WorkloadGen& workload, TwoLevelTlb& tlb, NodePtWalker& walker,
         MemSink& l1, NodeOs& os);

    /** Begin executing; @p on_finish fires at the instruction limit. */
    void start(std::function<void()> on_finish);

    /**
     * Register a callback invoked (once) when retired instructions
     * reach @p instructions. Several callbacks may be pending at once
     * (warmup end plus scheduled job migrations); they fire in
     * threshold order, insertion order breaking ties.
     */
    void addPhaseCallback(std::uint64_t instructions,
                          std::function<void()> fn);

    /** Mark the start of the measurement window "now". */
    void markWindow();

    /** IPC over the measurement window (or the whole run). */
    [[nodiscard]] double ipc() const;

    [[nodiscard]] std::uint64_t instructionsRetired() const
    {
        return instRetired_;
    }

    /** Local core time (>= sim tick). */
    [[nodiscard]] Tick localTime() const { return localTime_; }

    /** Update the logical node id (job migration). */
    void setLogicalNode(NodeId logical) { logicalNode_ = logical; }

    /**
     * Attach the per-job issued-ops table (multi-tenant runs only;
     * null keeps the single-tenant hot path free of the extra bump).
     */
    void setJobOpsTable(JobStatTable* table) { jobOps_ = table; }

  private:
    enum class WaitState : std::uint8_t {
        Running,
        Window,    //!< outstanding window full
        Blocking,  //!< waiting for a specific (dependence) load
        Walk,      //!< waiting for TLB fill / fault handling
        Finished,
    };

    void resume();
    /** Fire every pending phase callback whose threshold was crossed. */
    void firePhaseCallbacks();
    /** Translate pendingOp_; @return NPA or nullopt if waiting. */
    std::optional<NPAddr> translate(const MemOpDesc& op);
    void onWalkDone(std::uint64_t va_page,
                    std::optional<HierarchicalPageTable::Leaf> leaf);
    void issueMemOp(const MemOpDesc& op, NPAddr npa);
    void onMemComplete(bool was_blocking, Tick done_tick);
    void scheduleResume();
    void finish();

    CoreParams params_;
    NodeId node_;
    NodeId logicalNode_;
    CoreId coreId_;
    WorkloadGen& workload_;
    TwoLevelTlb& tlb_;
    NodePtWalker& walker_;
    MemSink& l1_;
    NodeOs& os_;

    Tick localTime_ = 0;
    std::uint64_t instRetired_ = 0;
    unsigned outstanding_ = 0;
    WaitState state_ = WaitState::Finished;
    std::optional<MemOpDesc> pendingOp_;
    bool resumeScheduled_ = false;

    std::function<void()> onFinish_;
    /** Pending phase callbacks, sorted by threshold. */
    struct PhaseHook {
        std::uint64_t at;
        std::function<void()> fn;
    };
    std::vector<PhaseHook> phaseHooks_;
    /** phaseHooks_.front().at, cached for the retire hot path. */
    std::uint64_t nextPhaseAt_ = kNoPhase;
    static constexpr std::uint64_t kNoPhase = ~std::uint64_t{0};

    /** Per-job issued-ops attribution (null when single-tenant). */
    JobStatTable* jobOps_ = nullptr;

    /** Measurement window markers. */
    std::uint64_t windowStartInst_ = 0;
    Tick windowStartTime_ = 0;

    Counter& instructions_;
    Counter& memOps_;
    Counter& tlbWalks_;
    Counter& pageFaults_;
    Counter& windowStalls_;
    Counter& blockingStalls_;
};

} // namespace famsim

#endif // FAMSIM_NODE_CORE_HH
