/**
 * @file
 * One partition of the parallel simulation kernel: a private
 * EventQueue (the pooled 4-ary heap from src/sim/event_queue.hh) plus
 * the inbound direct-post mailbox lanes, one per source partition.
 * (Arbitrated fabric sends live in ParallelSim's central lanes: they
 * mutate the shared channel state, so they are merged and run
 * single-threaded at the barrier, not per destination.)
 *
 * The owning worker drains the inboxes at the start of each window —
 * after the barrier, so every producer has quiesced — merging direct
 * posts in (deliverTick, srcPartition, seq) order before executing
 * local events. Merged insertions happen only at barriers and local
 * events are inserted in deterministic execution order, so the queue's
 * (tick, insertion-sequence) tie-break yields one schedule for every
 * worker count.
 */

#ifndef FAMSIM_PSIM_NODE_QUEUE_HH
#define FAMSIM_PSIM_NODE_QUEUE_HH

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "psim/mailbox.hh"
#include "sim/event_queue.hh"
#include "sim/logging.hh"

namespace famsim {

/** A partition's event queue and inbound mailboxes. */
class NodeQueue
{
  public:
    /**
     * @param id          partition index (also stamped on the queue).
     * @param partitions  total partition count (= inbound lane count).
     */
    NodeQueue(std::uint32_t id, std::uint32_t partitions)
        : id_(id), postIn_(partitions)
    {
        queue_.setId(id);
        // Ownership stamps for the FAMSIM_CHECK hooks: the queue
        // belongs to this partition; inbound lane src may only be
        // appended to by partition src. No-ops when compiled out.
        queue_.setCheckOwner(id);
        for (std::uint32_t src = 0; src < partitions; ++src)
            postIn_[src].setCheckProducer(src);
    }

    [[nodiscard]] std::uint32_t id() const { return id_; }
    [[nodiscard]] EventQueue& queue() { return queue_; }
    [[nodiscard]] const EventQueue& queue() const { return queue_; }

    /** Inbound direct-post lane from partition @p src (producer side). */
    [[nodiscard]] Mailbox<PostMsg>& postInbox(std::uint32_t src)
    {
        return postIn_[src];
    }

    /**
     * Earliest pending tick across the local queue and the inboxes
     * (lane key: deliverTick). Only meaningful at a barrier. Reads
     * each lane's cached minimum — one Tick per lane, not a message
     * walk, which matters on the coordinator's serial section at
     * 64-node partition counts.
     */
    [[nodiscard]] Tick
    minPendingTick() const
    {
        Tick min = queue_.nextTick();
        for (const auto& lane : postIn_)
            min = std::min(min, lane.minKey());
        return min;
    }

    [[nodiscard]] bool
    inboxesEmpty() const
    {
        for (const auto& lane : postIn_) {
            if (!lane.empty())
                return false;
        }
        return true;
    }

    /**
     * Merge every inbound post into the local queue (owning worker,
     * right after a barrier), in (tick, srcPartition, seq) order.
     * @return messages merged (the trace's per-partition "drained"
     * counter track).
     */
    std::uint64_t
    drainInboxes()
    {
        scratch_.clear();
        for (std::uint32_t src = 0; src < postIn_.size(); ++src) {
            const auto& msgs = postIn_[src].messages();
            for (std::uint32_t i = 0; i < msgs.size(); ++i)
                scratch_.push_back({MergeKey{msgs[i].when, src, i}, i});
        }
        std::sort(scratch_.begin(), scratch_.end(),
                  [](const auto& a, const auto& b) {
                      return a.first < b.first;
                  });
        for (const auto& [key, idx] : scratch_) {
            PostMsg& msg = postIn_[key.src].messages()[idx];
            FAMSIM_ASSERT(msg.when >= queue_.curTick(),
                          "cross-partition post into the past");
            queue_.schedule(msg.when, std::move(msg.fn));
        }
        for (auto& lane : postIn_)
            lane.clear();
        return static_cast<std::uint64_t>(scratch_.size());
    }

  private:
    /** Deterministic merge key: (tick, srcPartition, seq). */
    struct MergeKey {
        Tick tick;
        std::uint32_t src;
        std::uint32_t seq;

        bool
        operator<(const MergeKey& other) const
        {
            if (tick != other.tick)
                return tick < other.tick;
            if (src != other.src)
                return src < other.src;
            return seq < other.seq;
        }
    };

    std::uint32_t id_;
    EventQueue queue_;
    /** Inbound lanes indexed by source partition. */
    std::vector<Mailbox<PostMsg>> postIn_;
    /** Merge scratch, reused across barriers. */
    std::vector<std::pair<MergeKey, std::uint32_t>> scratch_;
};

} // namespace famsim

#endif // FAMSIM_PSIM_NODE_QUEUE_HH
