/**
 * @file
 * WorkerPool — a fixed pool of threads executing one epoch of
 * independent tasks at a time, with a full barrier between epochs.
 *
 * The parallel kernel runs one epoch per synchronization window: the
 * tasks are the partitions, claimed dynamically off a shared atomic
 * counter so an expensive partition (the fabric/FAM partition, or a
 * node whose cores are in a miss storm) does not leave the other
 * workers idle behind a static assignment.
 *
 * The calling thread participates as a worker, so a pool built for N
 * threads spawns N - 1; with N == 1 no thread is ever created and
 * runEpoch degenerates to a plain loop — the threads=1 kernel is the
 * same code path as threads=4 minus the concurrency.
 */

#ifndef FAMSIM_PSIM_WORKER_POOL_HH
#define FAMSIM_PSIM_WORKER_POOL_HH

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace famsim {

/** Fixed thread pool with epoch-barrier semantics. */
class WorkerPool
{
  public:
    /** @param threads total worker count including the caller (>= 1). */
    explicit WorkerPool(unsigned threads);
    ~WorkerPool();

    WorkerPool(const WorkerPool&) = delete;
    WorkerPool& operator=(const WorkerPool&) = delete;

    /** Total workers, caller included. */
    [[nodiscard]] unsigned threads() const
    {
        return static_cast<unsigned>(workers_.size()) + 1;
    }

    /**
     * Run fn(0) .. fn(tasks - 1), each exactly once, distributed over
     * the pool (the caller helps). Returns only after every call has
     * completed — a full barrier: everything the tasks wrote
     * happens-before the return.
     */
    void runEpoch(std::size_t tasks,
                  const std::function<void(std::size_t)>& fn);

    /**
     * Like runEpoch, but fn(worker, task) additionally receives the
     * stable index of the worker executing the task: the caller is
     * worker 0, spawned threads are 1 .. threads() - 1. This is what
     * lets an epoch's tasks use per-worker state (e.g. the sweep
     * executor's reusable System slots) without any locking — a worker
     * index is only ever driven by its one thread.
     */
    void
    runEpochIndexed(std::size_t tasks,
                    const std::function<void(std::size_t worker,
                                             std::size_t task)>& fn);

  private:
    void workerMain(std::size_t worker);
    void claimTasks(std::size_t worker, std::size_t tasks);
    void finishEpoch(std::size_t tasks);

    std::vector<std::thread> workers_;

    std::mutex mutex_;
    std::condition_variable epochStart_;
    std::condition_variable epochDone_;
    std::uint64_t generation_ = 0;
    bool shutdown_ = false;

    /** Exactly one of the two is set per epoch. */
    const std::function<void(std::size_t)>* epochFn_ = nullptr;
    const std::function<void(std::size_t, std::size_t)>* epochIndexedFn_ =
        nullptr;
    std::size_t epochTasks_ = 0;
    std::size_t busyWorkers_ = 0;
    std::atomic<std::size_t> nextTask_{0};
};

} // namespace famsim

#endif // FAMSIM_PSIM_WORKER_POOL_HH
