/**
 * @file
 * SyncWindow — conservative-window bookkeeping for the parallel
 * kernel.
 *
 * The kernel advances in windows. The classic scheme uses a fixed
 * width: the smallest latency any cross-partition interaction can have
 * (the fabric's one-way latency for request/response traffic, the
 * broker's fault service latency for system-level faults). A partition
 * executing events in [start, start + lookahead) can only generate
 * cross-partition work at or after start + lookahead, i.e. in a later
 * window — so all partitions can execute one window concurrently with
 * no locks, and mailboxes only need draining at the window barriers
 * (the classic null-message-free windowed conservative PDES scheme).
 *
 * Since the sharded-partition kernel, windows are *adaptive*: the
 * coordinator computes the earliest cross-partition commitment any
 * partition can make — min over partitions p of (earliest pending tick
 * of p + p's smallest outgoing edge lookahead) — and passes it to
 * open() as the window end. When the partitions that would close the
 * window soonest are idle, the window widens toward the next real
 * commitment instead of stepping one lookahead at a time, cutting the
 * barrier count on idle channels. Windows are anchored at the global
 * minimum pending tick, so fully idle stretches of simulated time are
 * still skipped in one hop.
 *
 * Arithmetic near the Tick horizon saturates: next_pending + lookahead
 * must never wrap (a wrapped end would open a backwards window), so
 * satAdd() clamps at the maximum representable tick.
 */

#ifndef FAMSIM_PSIM_SYNC_WINDOW_HH
#define FAMSIM_PSIM_SYNC_WINDOW_HH

#include <cstdint>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace famsim {

/** Window/epoch bookkeeping for the conservative kernel. */
class SyncWindow
{
  public:
    /** The largest representable tick (saturation ceiling). */
    static constexpr Tick kTickMax = kTickForever;

    explicit SyncWindow(Tick lookahead) : lookahead_(lookahead)
    {
        FAMSIM_ASSERT(lookahead > 0,
                      "conservative window needs positive lookahead");
    }

    /** Saturating tick addition: clamps at kTickMax instead of wrapping. */
    [[nodiscard]] static constexpr Tick
    satAdd(Tick a, Tick b)
    {
        return a > kTickMax - b ? kTickMax : a + b;
    }

    /** The base (smallest cross-partition edge) lookahead. */
    [[nodiscard]] Tick lookahead() const { return lookahead_; }

    /** Completed windows so far (the epoch counter). */
    [[nodiscard]] std::uint64_t epoch() const { return epoch_; }

    /** Windows that opened wider than the base lookahead (adaptive). */
    [[nodiscard]] std::uint64_t widened() const { return widened_; }

    /** Half-open tick range of one window. */
    struct Bounds {
        Tick start;
        Tick end; //!< exclusive
    };

    /**
     * Open the next window at the global minimum pending tick
     * @p next_pending, with the fixed base width (saturated at the
     * tick horizon), and bump the epoch. Windows never move backwards.
     */
    [[nodiscard]] Bounds
    open(Tick next_pending)
    {
        return open(next_pending, satAdd(next_pending, lookahead_));
    }

    /**
     * Open the next window as [next_pending, commit_horizon), where
     * @p commit_horizon is the earliest tick at which any partition
     * could commit cross-partition work (already saturated by the
     * caller via satAdd). Must be strictly after @p next_pending.
     */
    [[nodiscard]] Bounds
    open(Tick next_pending, Tick commit_horizon)
    {
        FAMSIM_ASSERT(next_pending >= current_.start,
                      "window moved backwards: ", next_pending, " < ",
                      current_.start);
        FAMSIM_ASSERT(commit_horizon > next_pending,
                      "empty window: end ", commit_horizon,
                      " <= start ", next_pending);
        ++epoch_;
        if (commit_horizon > satAdd(next_pending, lookahead_))
            ++widened_;
        current_ = Bounds{next_pending, commit_horizon};
        return current_;
    }

    /** Bounds of the most recently opened window. */
    [[nodiscard]] const Bounds& current() const { return current_; }

  private:
    Tick lookahead_;
    std::uint64_t epoch_ = 0;
    std::uint64_t widened_ = 0;
    Bounds current_{0, 0};
};

} // namespace famsim

#endif // FAMSIM_PSIM_SYNC_WINDOW_HH
