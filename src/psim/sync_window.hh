/**
 * @file
 * SyncWindow — conservative-window bookkeeping for the parallel
 * kernel.
 *
 * The kernel advances in windows of at most `lookahead` ticks, where
 * lookahead is the smallest latency any cross-partition interaction
 * can have (the fabric's one-way latency for request/response
 * traffic, the broker's fault service latency for system-level
 * faults). A partition executing events in [start, start + lookahead)
 * can only generate cross-partition work at or after start +
 * lookahead, i.e. in a later window — so all partitions can execute
 * one window concurrently with no locks, and mailboxes only need
 * draining at the window barriers (the classic null-message-free
 * windowed conservative PDES scheme).
 *
 * Windows are anchored at the global minimum pending tick rather than
 * at multiples of the lookahead, so fully idle stretches of simulated
 * time are skipped in one hop.
 */

#ifndef FAMSIM_PSIM_SYNC_WINDOW_HH
#define FAMSIM_PSIM_SYNC_WINDOW_HH

#include <cstdint>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace famsim {

/** Window/epoch bookkeeping for the conservative kernel. */
class SyncWindow
{
  public:
    explicit SyncWindow(Tick lookahead) : lookahead_(lookahead)
    {
        FAMSIM_ASSERT(lookahead > 0,
                      "conservative window needs positive lookahead");
    }

    [[nodiscard]] Tick lookahead() const { return lookahead_; }

    /** Completed windows so far (the epoch counter). */
    [[nodiscard]] std::uint64_t epoch() const { return epoch_; }

    /** Half-open tick range of one window. */
    struct Bounds {
        Tick start;
        Tick end; //!< exclusive
    };

    /**
     * Open the next window at the global minimum pending tick
     * @p next_pending and bump the epoch. Windows never move
     * backwards.
     */
    [[nodiscard]] Bounds
    open(Tick next_pending)
    {
        FAMSIM_ASSERT(next_pending >= current_.start,
                      "window moved backwards: ", next_pending, " < ",
                      current_.start);
        ++epoch_;
        current_ = Bounds{next_pending, next_pending + lookahead_};
        return current_;
    }

    /** Bounds of the most recently opened window. */
    [[nodiscard]] const Bounds& current() const { return current_; }

  private:
    Tick lookahead_;
    std::uint64_t epoch_ = 0;
    Bounds current_{0, 0};
};

} // namespace famsim

#endif // FAMSIM_PSIM_SYNC_WINDOW_HH
