/**
 * @file
 * ParallelSim — the conservative-window parallel simulation kernel.
 *
 * The simulated system is split into partitions: one per compute node
 * (the node's cores, caches, TLBs, walkers, OS, DRAM, FAM translator
 * and STU) plus one fabric/FAM partition (the shared FabricLink,
 * FamMedia, MemoryBroker and ACM store). Each partition owns a
 * NodeQueue; a fixed WorkerPool executes all partitions' events for
 * one SyncWindow at a time, entirely without locks, because every
 * cross-partition interaction has at least `lookahead` ticks of
 * latency:
 *
 *  - fabric request sends (STU/E-FAM path -> media) arrive after the
 *    one-way fabric latency plus serialization queueing;
 *  - fabric response sends (media -> STU/node) likewise;
 *  - system-level fault service at the broker takes its service
 *    latency (>= lookahead by construction of the window).
 *
 * Cross-partition traffic travels through single-producer Mailbox
 * lanes drained at the window barriers in (tick, srcPartition, seq)
 * order, so the merged schedule — and therefore every statistic — is
 * byte-identical for any worker count. Request-channel arbitration
 * (the shared fabric's serialization state) is deferred to the drain
 * on the fabric partition: the channel-busy bookkeeping is touched by
 * exactly one thread, in deterministic merge order, using the
 * sender's tick.
 *
 * Operations that must mutate state read concurrently by several
 * partitions (broker fault resolution: the FAM pool allocator, the
 * ACM flat map, a node's system-level page table) run as *global
 * barrier ops*: single-threaded, between windows, ordered by (due
 * tick, srcPartition, seq). They may only mutate quiescent state and
 * schedule events at or after their due tick.
 *
 * The parallel schedule is deliberately *not* identical to the legacy
 * serial one (same-tick cross-partition ties resolve by (tick, src,
 * seq) instead of global insertion order, and warmup/fault barrier
 * ops quantize to window boundaries) — the contract is determinism
 * across thread counts, with serial mode (threads = 0) untouched.
 * See DESIGN.md "Parallel kernel".
 */

#ifndef FAMSIM_PSIM_PARALLEL_SIM_HH
#define FAMSIM_PSIM_PARALLEL_SIM_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "psim/node_queue.hh"
#include "psim/sync_window.hh"
#include "psim/worker_pool.hh"
#include "sim/logging.hh"
#include "sim/simulation.hh"

namespace famsim {

/** The partitioned, conservatively synchronized event kernel. */
class ParallelSim
{
  public:
    /** "Not inside any partition" marker. */
    static constexpr std::uint32_t kNoPartition = ~std::uint32_t{0};

    /**
     * Binds itself to @p sim (Simulation::parallel()) for its
     * lifetime; unbinds on destruction.
     *
     * @param partitions total partitions (nodes + 1 for fabric/FAM).
     * @param lookahead  conservative window width in ticks (> 0).
     * @param threads    worker threads, caller included (>= 1).
     */
    ParallelSim(Simulation& sim, std::uint32_t partitions, Tick lookahead,
                unsigned threads);
    ~ParallelSim();

    ParallelSim(const ParallelSim&) = delete;
    ParallelSim& operator=(const ParallelSim&) = delete;

    [[nodiscard]] std::uint32_t partitions() const
    {
        return static_cast<std::uint32_t>(parts_.size());
    }

    /** The shared fabric/FAM partition (by convention the last one). */
    [[nodiscard]] std::uint32_t fabricPartition() const
    {
        return partitions() - 1;
    }

    [[nodiscard]] Tick lookahead() const { return window_.lookahead(); }
    [[nodiscard]] std::uint64_t epoch() const { return window_.epoch(); }
    [[nodiscard]] unsigned threads() const { return pool_.threads(); }

    [[nodiscard]] EventQueue& queueOf(std::uint32_t partition)
    {
        return parts_[partition]->queue();
    }

    /**
     * Partition the calling thread is currently executing, or
     * kNoPartition outside a window / withPartition scope. Partition
     * queues carry their partition index as the queue id (the serial
     * queue is never published in the thread-local slot).
     */
    [[nodiscard]] static std::uint32_t
    currentPartition()
    {
        const EventQueue* queue = detail::tlsQueueSlot();
        return queue ? queue->id() : kNoPartition;
    }

    /**
     * Run @p fn with @p partition as the calling thread's scheduling
     * context (sim.events(), sim.curTick() resolve to its queue).
     * For pre-run wiring such as Core::start; only valid while the
     * kernel is quiescent.
     */
    template <typename F>
    void
    withPartition(std::uint32_t partition, F&& fn)
    {
        Scope scope(*this, partition);
        fn();
    }

    /**
     * Cross-partition post: run @p fn on @p dst at absolute tick
     * @p when, which must respect the lookahead relative to the
     * sender's current tick.
     */
    void post(std::uint32_t dst, Tick when, std::function<void()> fn);

    /**
     * Arbitrated cross-partition send: at the next barrier, @p fn
     * (sendTick) runs on @p dst in merged (sendTick, srcPartition,
     * seq) order; it must itself schedule the delivery at or after
     * sendTick + lookahead. Used for the shared fabric's
     * request-channel serialization.
     */
    void postArbitrated(std::uint32_t dst, std::function<void(Tick)> fn);

    /**
     * Global barrier op: before the window containing @p due opens,
     * run @p fn single-threaded (all workers quiescent), with the
     * fabric partition as the scheduling context. Ops run in (due,
     * srcPartition, seq) order. @p fn may mutate otherwise
     * read-shared state; it may schedule events only when @p due
     * respects the lookahead from the posting tick (due >= post tick
     * + lookahead, as the broker's fault service guarantees), and
     * then only at ticks >= @p due — every queue has then advanced
     * at most to @p due's window start. An op posted with due inside
     * its own window (the warmup reset) runs at the next barrier but
     * must not schedule: the queues have already run past its due
     * tick.
     */
    void postGlobal(Tick due, std::function<void()> fn);

    /**
     * Drive windows until every queue, mailbox and barrier op has
     * drained. @return total events executed across all partitions.
     */
    std::uint64_t run();

  private:
    struct GlobalOp {
        Tick due;
        std::uint32_t src;
        /** Per-source monotonic stamp (never reset, unlike mailbox
         *  indices) so ops surviving across barriers keep a total
         *  deterministic order. */
        std::uint64_t seq;
        std::function<void()> fn;
    };

    /**
     * RAII partition context: publishes the partition's queue in the
     * thread-local slot, and clears it even when the guarded callback
     * throws (FAMSIM_ASSERT under ScopedThrowOnError, in tests) — a
     * stale slot would dangle into later runs on the same thread.
     */
    class Scope
    {
      public:
        Scope(ParallelSim& psim, std::uint32_t partition)
        {
            FAMSIM_ASSERT(!detail::tlsQueueSlot(),
                          "nested partition context");
            detail::tlsQueueSlot() = &psim.parts_[partition]->queue();
        }
        ~Scope() { detail::tlsQueueSlot() = nullptr; }
        Scope(const Scope&) = delete;
        Scope& operator=(const Scope&) = delete;
    };

    /** Source lane index for the calling context (main thread posts
     *  from the virtual lane `partitions()`). */
    [[nodiscard]] std::uint32_t sourceLane() const;

    [[nodiscard]] Tick minPendingTick() const;
    void collectGlobalOps();
    void runGlobalOpsBefore(Tick end);

    Simulation& sim_;
    SyncWindow window_;
    WorkerPool pool_;
    std::vector<std::unique_ptr<NodeQueue>> parts_;

    /** Barrier-op lanes, one per source partition plus the main
     *  thread; single-producer, merged at barriers. */
    std::vector<std::vector<GlobalOp>> globalIn_;
    /** Per-lane monotonic sequence stamps. */
    std::vector<std::uint64_t> globalSeq_;
    /** Merged, sorted, not-yet-due barrier ops. */
    std::vector<GlobalOp> pendingGlobal_;
};

} // namespace famsim

#endif // FAMSIM_PSIM_PARALLEL_SIM_HH
