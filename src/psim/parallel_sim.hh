/**
 * @file
 * ParallelSim — the conservative-window parallel simulation kernel.
 *
 * The simulated system is split into partitions: one per compute node
 * (the node's cores, caches, TLBs, walkers, OS, DRAM, FAM translator
 * and STU), one per FAM media module (the module's banked NVM plus the
 * AT/ACM traffic it serves), and one for the MemoryBroker (the
 * scheduling context for system-level bookkeeping). Each partition
 * owns a NodeQueue; a fixed WorkerPool executes all partitions' events
 * for one SyncWindow at a time, entirely without locks, because every
 * cross-partition interaction has a floor latency given by the
 * per-edge lookahead matrix:
 *
 *  - node <-> media: the fabric's one-way latency (request sends from
 *    the STU/E-FAM path, response sends from the media);
 *  - anything <-> broker: the broker's fault service latency.
 *
 * Direct cross-partition posts travel through single-producer Mailbox
 * lanes drained at the window barriers in (tick, srcPartition, seq)
 * order. Fabric sends are *arbitrated*: the shared channel's
 * serialization state (channelFree) is one resource spanning every
 * media partition, so all sends from all sources are merged in
 * (sendTick, srcPartition, seq) order and arbitrated single-threaded
 * by the coordinator at the barrier, each callback then scheduling its
 * delivery on the destination partition's queue. The merged schedule —
 * and therefore every statistic — is byte-identical for any worker
 * count.
 *
 * Windows are adaptive: the coordinator opens each window at the
 * global minimum pending tick and extends it to the earliest possible
 * cross-partition *commitment* — min over partitions p of (earliest
 * pending tick of p + p's smallest outgoing edge lookahead), clamped
 * by pending global-op due ticks. A partition with pending work
 * bounded only by a large outgoing lookahead (or none at all, if it
 * never sends) no longer forces fabric-latency-sized steps on
 * everyone else. See DESIGN.md "Parallel kernel" for the safety
 * argument.
 *
 * Operations that must mutate state read concurrently by several
 * partitions (broker fault resolution: the FAM pool allocator, the
 * ACM flat map, a node's system-level page table) run as *global
 * barrier ops*: single-threaded, between windows, ordered by (due
 * tick, srcPartition, seq). They may only mutate quiescent state and
 * schedule events at or after their due tick; an op runs at the
 * barrier whose window starts at (or after) its due tick, so no
 * partition has executed past the due when it runs. An op posted with
 * due inside its own window (the warmup reset) runs at the next
 * barrier but must not schedule: the queues have already run past its
 * due tick.
 *
 * The parallel schedule is deliberately *not* identical to the legacy
 * serial one (same-tick cross-partition ties resolve by (tick, src,
 * seq) instead of global insertion order, and warmup/fault barrier
 * ops quantize to window boundaries) — the contract is determinism
 * across thread counts, with serial mode (threads = 0) untouched.
 * See DESIGN.md "Parallel kernel".
 */

#ifndef FAMSIM_PSIM_PARALLEL_SIM_HH
#define FAMSIM_PSIM_PARALLEL_SIM_HH

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "psim/node_queue.hh"
#include "psim/sync_window.hh"
#include "psim/worker_pool.hh"
#include "sim/check.hh"
#include "sim/logging.hh"
#include "sim/simulation.hh"

namespace famsim {

/** The partitioned, conservatively synchronized event kernel. */
class ParallelSim
{
  public:
    /** "Not inside any partition" marker. */
    static constexpr std::uint32_t kNoPartition = ~std::uint32_t{0};

    /** "No such edge" marker in the lookahead matrix. */
    static constexpr Tick kNever = kTickForever;

    /** Partition roles in the sharded FAM topology. */
    enum class Kind : std::uint8_t { Node = 0, Media = 1, Broker = 2 };

    /**
     * The sharded fabric/FAM topology: partitions are laid out as
     * [0, nodes) compute nodes, [nodes, nodes + mediaModules) FAM
     * media modules, and one broker partition last. The two latencies
     * populate the per-edge lookahead matrix (node<->media edges get
     * the fabric latency, every edge touching the broker gets the
     * fault service latency; same-kind pairs have no edge — using one
     * is a modeling bug and panics).
     */
    struct Topology {
        std::uint32_t nodes = 0;
        std::uint32_t mediaModules = 0;
        Tick fabricLookahead = 0; //!< node<->media floor (one-way fabric)
        Tick brokerLookahead = 0; //!< *<->broker floor (fault service)
    };

    /**
     * Sharded-topology kernel. Binds itself to @p sim
     * (Simulation::parallel()) for its lifetime; unbinds on
     * destruction.
     *
     * @param threads worker threads, caller included (>= 1).
     */
    ParallelSim(Simulation& sim, const Topology& topo, unsigned threads);

    /**
     * Uniform test topology: @p partitions peer partitions, every edge
     * with the same @p lookahead, the last partition doubling as the
     * global-op scheduling context. Window behavior matches the
     * pre-sharding kernel exactly.
     */
    ParallelSim(Simulation& sim, std::uint32_t partitions, Tick lookahead,
                unsigned threads);

    ~ParallelSim();

    ParallelSim(const ParallelSim&) = delete;
    ParallelSim& operator=(const ParallelSim&) = delete;

    [[nodiscard]] std::uint32_t partitions() const
    {
        return static_cast<std::uint32_t>(parts_.size());
    }

    /** Partition of compute node @p node. */
    [[nodiscard]] std::uint32_t nodePartition(std::uint32_t node) const
    {
        return node;
    }

    /** Partition owning FAM media module @p module. */
    [[nodiscard]] std::uint32_t mediaPartition(std::uint32_t module) const
    {
        return nodes_ + module;
    }

    /**
     * The broker partition (by convention the last one): the memory
     * broker's home and the scheduling context for global barrier ops.
     */
    [[nodiscard]] std::uint32_t brokerPartition() const
    {
        return partitions() - 1;
    }

    [[nodiscard]] Kind
    kindOf(std::uint32_t partition) const
    {
        if (partition < nodes_)
            return Kind::Node;
        if (partition < nodes_ + media_)
            return Kind::Media;
        return Kind::Broker;
    }

    /**
     * Lookahead floor of the (src, dst) edge; kNever when the model
     * never sends on that pair.
     */
    [[nodiscard]] Tick
    lookaheadBetween(std::uint32_t src, std::uint32_t dst) const
    {
        return edge_[static_cast<std::size_t>(kindOf(src))]
                    [static_cast<std::size_t>(kindOf(dst))];
    }

    /** The smallest finite edge lookahead (the base window width). */
    [[nodiscard]] Tick lookahead() const { return window_.lookahead(); }
    [[nodiscard]] std::uint64_t epoch() const { return window_.epoch(); }
    /** Windows that opened wider than the base lookahead. */
    [[nodiscard]] std::uint64_t widenedEpochs() const
    {
        return window_.widened();
    }
    [[nodiscard]] unsigned threads() const { return pool_.threads(); }

    [[nodiscard]] EventQueue& queueOf(std::uint32_t partition)
    {
        return parts_[partition]->queue();
    }

    /**
     * Partition the calling thread is currently executing, or
     * kNoPartition outside a window / withPartition scope. Partition
     * queues carry their partition index as the queue id (the serial
     * queue is never published in the thread-local slot).
     */
    [[nodiscard]] static std::uint32_t
    currentPartition()
    {
        const EventQueue* queue = detail::tlsQueueSlot();
        return queue ? queue->id() : kNoPartition;
    }

    /**
     * Run @p fn with @p partition as the calling thread's scheduling
     * context (sim.events(), sim.curTick() resolve to its queue).
     * For pre-run wiring such as Core::start; only valid while the
     * kernel is quiescent.
     */
    template <typename F>
    void
    withPartition(std::uint32_t partition, F&& fn)
    {
        Scope scope(*this, partition);
        fn();
    }

    /**
     * Cross-partition post: run @p fn on @p dst at absolute tick
     * @p when, which must respect the (src, dst) edge lookahead
     * relative to the sender's current tick.
     */
    void post(std::uint32_t dst, Tick when, PostFn fn);

    /**
     * Arbitrated cross-partition send: at the next barrier, @p fn
     * (sendTick) runs on @p dst — single-threaded, merged across all
     * sources and destinations in (sendTick, srcPartition, seq) order
     * — and must itself schedule the delivery at or after sendTick +
     * the edge lookahead. Used for the shared fabric's channel
     * serialization, whose state spans every media partition.
     */
    void postArbitrated(std::uint32_t dst, ArbFn fn);

    /**
     * Global barrier op: at the first barrier whose window start is at
     * or past @p due, run @p fn single-threaded (all workers
     * quiescent), with the broker partition as the scheduling context.
     * Ops run in (due, srcPartition, seq) order. @p fn may mutate
     * otherwise read-shared state; it may schedule events only when
     * @p due respects the poster's outgoing lookahead floor (due >=
     * post tick + the broker edge lookahead, as the broker's fault
     * service guarantees), and then only at ticks >= @p due — no
     * queue has executed past @p due when the op runs. An op posted
     * with due inside its own window (the warmup reset) runs at the
     * next barrier but must not schedule: the queues have already run
     * past its due tick.
     */
    void postGlobal(Tick due, std::function<void()> fn);

    /**
     * Drive windows until every queue, mailbox and barrier op has
     * drained. @return total events executed across all partitions.
     */
    std::uint64_t run();

  private:
    struct GlobalOp {
        Tick due;
        std::uint32_t src;
        /** Per-source monotonic stamp (never reset, unlike mailbox
         *  indices) so ops surviving across barriers keep a total
         *  deterministic order. */
        std::uint64_t seq;
        std::function<void()> fn;
    };

    /** One queued arbitrated send (central lane, indexed by source). */
    struct ArbSend {
        Tick sent;
        std::uint32_t dst;
        ArbFn fn;
    };

    /** Per-source arbitration lane: single-producer, coordinator-
     *  consumed (to empty) at every barrier. */
    struct ArbLane {
        std::vector<ArbSend> sends;
    };

    /**
     * RAII partition context: publishes the partition's queue in the
     * thread-local slot, and clears it even when the guarded callback
     * throws (FAMSIM_ASSERT under ScopedThrowOnError, in tests) — a
     * stale slot would dangle into later runs on the same thread.
     * Also publishes the (partition, phase) context the FAMSIM_CHECK
     * ownership hooks read: Drain/Exec enforce partition exclusivity,
     * Barrier marks the coordinator's legal cross-partition sections,
     * None (withPartition wiring) enforces nothing.
     */
    class Scope
    {
      public:
        Scope(ParallelSim& psim, std::uint32_t partition,
              check::Phase phase = check::Phase::None)
            : phase_(partition, phase)
        {
            FAMSIM_ASSERT(!detail::tlsQueueSlot(),
                          "nested partition context");
            detail::tlsQueueSlot() = &psim.parts_[partition]->queue();
        }
        ~Scope() { detail::tlsQueueSlot() = nullptr; }
        Scope(const Scope&) = delete;
        Scope& operator=(const Scope&) = delete;

      private:
        check::PhaseScope phase_;
    };

    void init(std::uint32_t partitions);

    /** Source lane index for the calling context (main thread posts
     *  from the virtual lane `partitions()`). */
    [[nodiscard]] std::uint32_t sourceLane() const;

    /**
     * One barrier-time pass over the pending state: the window anchor
     * (global minimum pending tick; kForever start means fully
     * drained) and the adaptive end (earliest possible cross-partition
     * commitment, clamped by pending global-op dues).
     */
    [[nodiscard]] SyncWindow::Bounds windowBounds() const;

    /** Merge + run all queued arbitrated sends, to empty lanes,
     *  looping over rounds if a callback posts more (coordinator
     *  only). */
    void drainArbitrated();

    void collectGlobalOps();

    /** Run pending global ops with due <= @p start, in order. */
    void runGlobalOpsThrough(Tick start);

    Simulation& sim_;
    SyncWindow window_;
    WorkerPool pool_;
    std::uint32_t nodes_ = 0; //!< node partition count
    std::uint32_t media_ = 0; //!< media partition count
    /** Per-edge lookahead floors, indexed by (src Kind, dst Kind). */
    std::array<std::array<Tick, 3>, 3> edge_{};
    /** Per-partition minimum outgoing edge lookahead. */
    std::vector<Tick> outBound_;

    std::vector<std::unique_ptr<NodeQueue>> parts_;

    /** Central arbitration lanes, one per source partition. */
    std::vector<ArbLane> arbIn_;
    /** Arbitration merge scratch: (sent, src, idx), reused. */
    std::vector<std::pair<std::pair<Tick, std::uint32_t>, std::uint32_t>>
        arbScratch_;
    /** Per-lane snapshot sizes of the current arbitration round. */
    std::vector<std::uint32_t> arbGathered_;

    /** Barrier-op lanes, one per source partition plus the main
     *  thread; single-producer, merged at barriers. */
    std::vector<std::vector<GlobalOp>> globalIn_;
    /** Per-lane monotonic sequence stamps. */
    std::vector<std::uint64_t> globalSeq_;
    /** Merged, sorted, not-yet-due barrier ops. */
    std::vector<GlobalOp> pendingGlobal_;
};

} // namespace famsim

#endif // FAMSIM_PSIM_PARALLEL_SIM_HH
