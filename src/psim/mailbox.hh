/**
 * @file
 * Cross-partition mailboxes for the parallel simulation kernel.
 *
 * Every ordered pair of partitions (src, dst) owns one Mailbox lane
 * per message kind. A lane is single-producer (only the worker thread
 * currently draining the src partition appends) and is consumed only
 * at window barriers, after every producer has quiesced — the barrier
 * itself provides the happens-before edge, so a lane needs no locks
 * and no atomics at all.
 *
 * Determinism: messages in one lane sit in source execution order, so
 * the vector index doubles as the per-source sequence number. The
 * consumer merges all of its inbound lanes in (tick, srcPartition,
 * seq) order (see NodeQueue::drainInboxes), which makes the schedule
 * independent of worker count and thread interleaving.
 *
 * Payloads are InlineFunction, not std::function: std::function's
 * 16-byte inline buffer heap-allocated once per fabric crossing for
 * every delivery capture bigger than a pointer. The kMailboxInlineBytes
 * budget keeps the common continuations (a component pointer plus a
 * PktPtr, or a wrapped done-functor) in place; oversized chains fall
 * back to one heap block, exactly as std::function always did.
 */

#ifndef FAMSIM_PSIM_MAILBOX_HH
#define FAMSIM_PSIM_MAILBOX_HH

#include <cstddef>
#include <utility>
#include <vector>

#include "sim/check.hh"
#include "sim/inline_function.hh"
#include "sim/types.hh"

namespace famsim {

/** Inline capture budget for cross-partition message payloads. */
inline constexpr std::size_t kMailboxInlineBytes = 144;

/** Payload of a direct cross-partition post. */
using PostFn = InlineFunction<void(), kMailboxInlineBytes>;

/** Payload of an arbitrated send (receives the sender's tick). */
using ArbFn = InlineFunction<void(Tick), kMailboxInlineBytes>;

/** A cross-partition event with a precomputed delivery tick. */
struct PostMsg {
    /** Absolute delivery tick (>= send tick + the edge lookahead). */
    Tick when = 0;
    PostFn fn;
};

/** One single-producer, barrier-drained message lane. */
template <typename Msg>
class Mailbox
{
  public:
    /** "Lane is empty" sentinel for minKey(). */
    static constexpr Tick kNever = kTickForever;

    /**
     * Append @p msg with its pending-tick key (the delivery tick;
     * producer side, src partition's worker only). The key feeds the
     * cached lane minimum so the coordinator's next-window scan reads
     * one Tick per lane instead of walking every queued message.
     */
    void
    push(Msg msg, Tick key)
    {
        FAMSIM_CHECK_MAILBOX(checkProducer_);
        msgs_.push_back(std::move(msg));
        if (key < minKey_)
            minKey_ = key;
    }

    /**
     * Stamp the lane's single producer partition for the FAMSIM_CHECK
     * ownership hooks (NodeQueue, at wiring). No-op when the checker
     * is compiled out; unstamped lanes are never checked.
     */
    void
    setCheckProducer(std::uint32_t producer)
    {
#if FAMSIM_CHECK
        checkProducer_ = producer;
#else
        (void)producer;
#endif
    }

    [[nodiscard]] bool empty() const { return msgs_.empty(); }
    [[nodiscard]] std::size_t size() const { return msgs_.size(); }

    /** Smallest key queued, kNever when empty. */
    [[nodiscard]] Tick minKey() const { return minKey_; }

    /** Pending messages, in send order (consumer side, at a barrier). */
    [[nodiscard]] std::vector<Msg>& messages() { return msgs_; }
    [[nodiscard]] const std::vector<Msg>& messages() const
    {
        return msgs_;
    }

    /** Drop all messages, keeping capacity (consumer, at a barrier). */
    void
    clear()
    {
        msgs_.clear();
        minKey_ = kNever;
    }

  private:
    std::vector<Msg> msgs_;
    Tick minKey_ = kNever;
#if FAMSIM_CHECK
    /** The lane's single legal producer; kUnowned = unchecked. */
    std::uint32_t checkProducer_ = check::kUnowned;
#endif
};

} // namespace famsim

#endif // FAMSIM_PSIM_MAILBOX_HH
