#include "psim/worker_pool.hh"

#include "sim/logging.hh"

namespace famsim {

WorkerPool::WorkerPool(unsigned threads)
{
    FAMSIM_ASSERT(threads >= 1, "worker pool needs at least one thread");
    workers_.reserve(threads - 1);
    for (unsigned i = 1; i < threads; ++i)
        workers_.emplace_back([this, i] { workerMain(i); });
}

WorkerPool::~WorkerPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        shutdown_ = true;
    }
    epochStart_.notify_all();
    for (std::thread& worker : workers_)
        worker.join();
}

void
WorkerPool::claimTasks(std::size_t worker, std::size_t tasks)
{
    // Claim-and-run off the shared counter until every task index has
    // been handed out. Exiting this loop means every task this worker
    // claimed has completed. epochFn_/epochIndexedFn_ are stable for
    // the whole epoch (published before the generation bump, read
    // after it).
    for (;;) {
        std::size_t task =
            nextTask_.fetch_add(1, std::memory_order_relaxed);
        if (task >= tasks)
            return;
        if (epochFn_)
            (*epochFn_)(task);
        else
            (*epochIndexedFn_)(worker, task);
    }
}

void
WorkerPool::workerMain(std::size_t worker)
{
    std::uint64_t seen = 0;
    for (;;) {
        std::size_t tasks;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            epochStart_.wait(lock, [&] {
                return shutdown_ || generation_ != seen;
            });
            if (shutdown_)
                return;
            seen = generation_;
            tasks = epochTasks_;
        }
        claimTasks(worker, tasks);
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (--busyWorkers_ == 0)
                epochDone_.notify_all();
        }
    }
}

void
WorkerPool::finishEpoch(std::size_t tasks)
{
    epochStart_.notify_all();
    claimTasks(/*worker=*/0, tasks);
    std::unique_lock<std::mutex> lock(mutex_);
    epochDone_.wait(lock, [&] { return busyWorkers_ == 0; });
}

void
WorkerPool::runEpoch(std::size_t tasks,
                     const std::function<void(std::size_t)>& fn)
{
    if (tasks == 0)
        return;
    if (workers_.empty()) {
        for (std::size_t i = 0; i < tasks; ++i)
            fn(i);
        return;
    }
    {
        std::lock_guard<std::mutex> lock(mutex_);
        epochFn_ = &fn;
        epochIndexedFn_ = nullptr;
        epochTasks_ = tasks;
        nextTask_.store(0, std::memory_order_relaxed);
        // Every worker joins every epoch (a full-acknowledgment
        // barrier): busyWorkers_ reaches zero only after each worker
        // has observed this generation, drained its claims and exited
        // the claim loop — so the next epoch can safely reuse the
        // counters, and all task effects are published through the
        // mutex before runEpoch returns.
        busyWorkers_ = workers_.size();
        ++generation_;
    }
    finishEpoch(tasks);
}

void
WorkerPool::runEpochIndexed(
    std::size_t tasks,
    const std::function<void(std::size_t, std::size_t)>& fn)
{
    if (tasks == 0)
        return;
    if (workers_.empty()) {
        // Degenerate single-thread pool: a plain in-order loop, so a
        // jobs=1 sweep executor visits its points in slot order (which
        // is what makes System reuse deterministic at one job).
        for (std::size_t i = 0; i < tasks; ++i)
            fn(0, i);
        return;
    }
    {
        std::lock_guard<std::mutex> lock(mutex_);
        epochFn_ = nullptr;
        epochIndexedFn_ = &fn;
        epochTasks_ = tasks;
        nextTask_.store(0, std::memory_order_relaxed);
        busyWorkers_ = workers_.size();
        ++generation_;
    }
    finishEpoch(tasks);
}

} // namespace famsim
