#include "psim/parallel_sim.hh"

#include <algorithm>

#include "sim/profiler.hh"
#include "sim/trace_sink.hh"

namespace famsim {
namespace {

/** Smallest finite entry of a lookahead matrix row. */
Tick
rowMin(const std::array<Tick, 3>& row)
{
    Tick min = ParallelSim::kNever;
    for (Tick la : row)
        min = std::min(min, la);
    return min;
}

} // namespace

ParallelSim::ParallelSim(Simulation& sim, const Topology& topo,
                         unsigned threads)
    : sim_(sim),
      window_(std::min(topo.fabricLookahead, topo.brokerLookahead)),
      // More workers than partitions can never help: every worker
      // acknowledges every epoch, so the surplus would be pure
      // barrier overhead.
      pool_(std::max(1u, std::min(threads, topo.nodes + topo.mediaModules
                                               + 1))),
      nodes_(topo.nodes),
      media_(topo.mediaModules)
{
    FAMSIM_ASSERT(topo.nodes >= 1 && topo.mediaModules >= 1,
                  "sharded topology needs nodes and media modules");
    FAMSIM_ASSERT(topo.fabricLookahead > 0 && topo.brokerLookahead > 0,
                  "per-edge lookaheads must be positive");
    auto node = static_cast<std::size_t>(Kind::Node);
    auto mediaKind = static_cast<std::size_t>(Kind::Media);
    auto broker = static_cast<std::size_t>(Kind::Broker);
    for (auto& row : edge_)
        row.fill(kNever);
    edge_[node][mediaKind] = topo.fabricLookahead;
    edge_[mediaKind][node] = topo.fabricLookahead;
    edge_[node][broker] = topo.brokerLookahead;
    edge_[broker][node] = topo.brokerLookahead;
    edge_[mediaKind][broker] = topo.brokerLookahead;
    edge_[broker][mediaKind] = topo.brokerLookahead;
    init(topo.nodes + topo.mediaModules + 1);
}

ParallelSim::ParallelSim(Simulation& sim, std::uint32_t partitions,
                         Tick lookahead, unsigned threads)
    : sim_(sim),
      window_(lookahead),
      pool_(std::max(1u, std::min(threads, partitions))),
      nodes_(partitions),
      media_(0)
{
    FAMSIM_ASSERT(partitions >= 1, "parallel kernel needs a partition");
    // Uniform peers: every pair may exchange messages at the same
    // floor, reproducing the pre-sharding single-lookahead kernel.
    for (auto& row : edge_)
        row.fill(lookahead);
    init(partitions);
}

void
ParallelSim::init(std::uint32_t partitions)
{
    FAMSIM_ASSERT(!sim_.parallel(),
                  "a parallel kernel is already bound to this simulation");
    parts_.reserve(partitions);
    for (std::uint32_t p = 0; p < partitions; ++p)
        parts_.push_back(std::make_unique<NodeQueue>(p, partitions));
    outBound_.reserve(partitions);
    for (std::uint32_t p = 0; p < partitions; ++p)
        outBound_.push_back(
            rowMin(edge_[static_cast<std::size_t>(kindOf(p))]));
    arbIn_.resize(partitions);
    globalIn_.resize(partitions + 1);
    globalSeq_.assign(partitions + 1, 0);
    sim_.setParallel(this);
}

ParallelSim::~ParallelSim()
{
    sim_.setParallel(nullptr);
}

std::uint32_t
ParallelSim::sourceLane() const
{
    std::uint32_t current = currentPartition();
    return current == kNoPartition ? partitions() : current;
}

void
ParallelSim::post(std::uint32_t dst, Tick when, PostFn fn)
{
    std::uint32_t src = currentPartition();
    FAMSIM_ASSERT(src != kNoPartition,
                  "cross-partition post from outside a partition");
    FAMSIM_ASSERT(dst < partitions(), "post to unknown partition ", dst);
    Tick la = lookaheadBetween(src, dst);
    FAMSIM_ASSERT(la != kNever, "post on the edgeless partition pair ",
                  src, " -> ", dst);
    FAMSIM_ASSERT(when >= SyncWindow::satAdd(parts_[src]->queue().curTick(),
                                             la),
                  "cross-partition post violates the edge lookahead");
    parts_[dst]->postInbox(src).push(PostMsg{when, std::move(fn)}, when);
}

void
ParallelSim::postArbitrated(std::uint32_t dst, ArbFn fn)
{
    std::uint32_t src = currentPartition();
    FAMSIM_ASSERT(src != kNoPartition,
                  "arbitrated post from outside a partition");
    FAMSIM_ASSERT(dst < partitions(), "post to unknown partition ", dst);
    Tick la = lookaheadBetween(src, dst);
    FAMSIM_ASSERT(la != kNever,
                  "arbitrated send on the edgeless partition pair ", src,
                  " -> ", dst);
    Tick sent = parts_[src]->queue().curTick();
    arbIn_[src].sends.push_back(ArbSend{sent, dst, std::move(fn)});
}

void
ParallelSim::drainArbitrated()
{
    // Rounds: a callback may itself post an arbitrated send (it runs
    // with the destination as scheduling context), which lands in the
    // lanes after the snapshot below — loop until the lanes stay
    // empty, so nothing queued is ever dropped. drainArbitrated()
    // always runs to empty lanes, which is what lets the window scan
    // read real delivery ticks off the queues instead of lane keys.
    for (;;) {
        arbScratch_.clear();
        arbGathered_.assign(arbIn_.size(), 0);
        for (std::uint32_t src = 0; src < arbIn_.size(); ++src) {
            const auto& sends = arbIn_[src].sends;
            arbGathered_[src] =
                static_cast<std::uint32_t>(sends.size());
            for (std::uint32_t i = 0; i < sends.size(); ++i)
                arbScratch_.push_back({{sends[i].sent, src}, i});
        }
        if (arbScratch_.empty())
            return;
        // Merged (sent, srcPartition, seq) order across every source
        // and destination: the shared channel state is then touched by
        // exactly one thread (the coordinator), deterministically.
        std::sort(arbScratch_.begin(), arbScratch_.end());
        for (const auto& [key, idx] : arbScratch_) {
            // Re-index on every access: a re-entrant post may have
            // grown (reallocated) the lane vector.
            ArbSend& send = arbIn_[key.second].sends[idx];
            Scope scope(*this, send.dst, check::Phase::Barrier);
            ArbFn fn = std::move(send.fn);
            fn(send.sent);
        }
        // Erase exactly the executed (snapshot) prefix of each lane;
        // re-entrant appends survive into the next round.
        for (std::uint32_t src = 0; src < arbIn_.size(); ++src) {
            auto& sends = arbIn_[src].sends;
            sends.erase(sends.begin(),
                        sends.begin() + arbGathered_[src]);
        }
    }
}

void
ParallelSim::postGlobal(Tick due, std::function<void()> fn)
{
    std::uint32_t lane = sourceLane();
    if (lane < partitions()) {
        FAMSIM_ASSERT(due >= parts_[lane]->queue().curTick(),
                      "global op due in the past");
    }
    globalIn_[lane].push_back(
        GlobalOp{due, lane, globalSeq_[lane]++, std::move(fn)});
}

void
ParallelSim::collectGlobalOps()
{
    bool added = false;
    for (auto& lane : globalIn_) {
        if (lane.empty())
            continue;
        added = true;
        pendingGlobal_.insert(pendingGlobal_.end(),
                              std::make_move_iterator(lane.begin()),
                              std::make_move_iterator(lane.end()));
        lane.clear();
    }
    if (added) {
        std::sort(pendingGlobal_.begin(), pendingGlobal_.end(),
                  [](const GlobalOp& a, const GlobalOp& b) {
                      if (a.due != b.due)
                          return a.due < b.due;
                      if (a.src != b.src)
                          return a.src < b.src;
                      return a.seq < b.seq;
                  });
    }
}

void
ParallelSim::runGlobalOpsThrough(Tick start)
{
    if (pendingGlobal_.empty() || pendingGlobal_.front().due > start)
        return;
    // Barrier ops run with the broker partition as scheduling context:
    // system-level bookkeeping belongs there, and the workers are
    // quiescent so touching any partition's state is safe.
    std::size_t taken = 0;
    {
        Scope scope(*this, brokerPartition(), check::Phase::Barrier);
        while (taken < pendingGlobal_.size() &&
               pendingGlobal_[taken].due <= start) {
            auto fn = std::move(pendingGlobal_[taken].fn);
            ++taken;
            fn();
        }
    }
    pendingGlobal_.erase(pendingGlobal_.begin(),
                         pendingGlobal_.begin() +
                             static_cast<std::ptrdiff_t>(taken));
}

SyncWindow::Bounds
ParallelSim::windowBounds() const
{
    // One pass over the partitions computes both the window anchor
    // (the global minimum pending tick) and the adaptive end (the
    // earliest cross-partition commitment: a partition's earliest
    // pending event plus its smallest outgoing edge; partitions that
    // never send place no bound at all, their events drain in
    // whatever window covers them). The per-partition scans read the
    // queues and the cached post-lane minimums — the arbitration
    // lanes are always empty here, drainArbitrated() runs to empty
    // right before.
    Tick next = EventQueue::kForever;
    Tick horizon = SyncWindow::kTickMax;
    for (std::uint32_t p = 0; p < parts_.size(); ++p) {
        Tick mp = parts_[p]->minPendingTick();
        if (mp == EventQueue::kForever)
            continue;
        next = std::min(next, mp);
        horizon = std::min(horizon, SyncWindow::satAdd(mp, outBound_[p]));
    }
    // pendingGlobal_ is sorted by (due, src, seq), so its minimum is
    // the first element.
    if (!pendingGlobal_.empty())
        next = std::min(next, pendingGlobal_.front().due);
    if (next == EventQueue::kForever)
        return SyncWindow::Bounds{next, SyncWindow::kTickMax};
    // Global ops (sorted by due, so ops due <= next form a prefix —
    // and, fault dues being conservative, every such due is `next`
    // itself or a stale must-not-schedule warmup mark): a prefix op
    // runs at this barrier and may schedule events from `next` onward
    // on any partition, committing no earlier than next + the
    // smallest edge anywhere. The first op due *after* the start caps
    // the window so it runs exactly at its own barrier, never
    // mid-window — readers of the state it mutates stay causally
    // ordered.
    if (!pendingGlobal_.empty() && pendingGlobal_.front().due <= next) {
        horizon = std::min(horizon,
                           SyncWindow::satAdd(next, window_.lookahead()));
    }
    for (const GlobalOp& op : pendingGlobal_) {
        if (op.due > next) {
            horizon = std::min(horizon, op.due);
            break;
        }
    }
    FAMSIM_ASSERT(horizon > next, "no commit horizon past the window "
                                  "start");
    return SyncWindow::Bounds{next, horizon};
}

std::uint64_t
ParallelSim::run()
{
    // Observability hooks, hoisted out of the loop: both resolve to
    // null pointers in the (near-universal) untraced/unprofiled case,
    // so the per-window cost when off is a handful of predictable
    // branches.
    TraceSink* trace = sim_.trace();
    if (trace && !trace->wants(TraceSink::kPsim))
        trace = nullptr;
    Profiler* prof = sim_.profiler();
    if (prof)
        prof->setPartitions(partitions());
    // Last emitted per-partition cumulative executed count, so the
    // counter track only gets a point when the value moved.
    std::vector<std::uint64_t> executedSeen;
    if (trace)
        executedSeen.assign(parts_.size(), 0);

    for (;;) {
        Profiler::Timer coord;
        collectGlobalOps();
        // Arbitrate all queued fabric sends first: the deliveries land
        // on their destination queues, so the window scan below sees
        // real delivery ticks instead of conservative floors.
        drainArbitrated();
        SyncWindow::Bounds bounds = windowBounds();
        if (bounds.start == EventQueue::kForever) {
            if (prof)
                prof->addCoordinator(coord.seconds());
            break;
        }
        auto [start, end] = window_.open(bounds.start, bounds.end);
        runGlobalOpsThrough(start);
        if (prof)
            prof->addCoordinator(coord.seconds());
        if (trace) {
            // One span per window on the broker lane (the
            // coordinator's home); arg = 1 when the adaptive horizon
            // widened past the base lookahead.
            const bool widened =
                end > SyncWindow::satAdd(start, window_.lookahead());
            trace->span(TraceSink::kPsim, brokerPartition(),
                        "psim.window", start, end, widened ? 1 : 0);
        }
        // Two phases per window, each a full barrier. Drains must not
        // overlap execution: a partition already running the new
        // window would otherwise append to the very lanes another
        // partition is still merging. With the drain fenced off, every
        // producer is quiescent while its messages are consumed — the
        // property that lets the mailboxes stay lock-free.
        pool_.runEpoch(parts_.size(), [&](std::size_t p) {
            const auto part = static_cast<std::uint32_t>(p);
            Scope scope(*this, part, check::Phase::Drain);
            std::uint64_t drained;
            if (prof) {
                Profiler::Timer t;
                drained = parts_[p]->drainInboxes();
                prof->addDrain(part, t.seconds());
            } else {
                drained = parts_[p]->drainInboxes();
            }
            // Partition-exclusive lane: only this worker, this epoch.
            if (trace && drained > 0) {
                trace->counter(TraceSink::kPsim, part, "psim.drained",
                               start, drained);
            }
        });
        pool_.runEpoch(parts_.size(), [&](std::size_t p) {
            const auto part = static_cast<std::uint32_t>(p);
            Scope scope(*this, part, check::Phase::Exec);
            if (prof) {
                Profiler::Timer t;
                parts_[p]->queue().run(end - 1);
                prof->addExec(part, t.seconds());
            } else {
                parts_[p]->queue().run(end - 1);
            }
            if (trace) {
                const std::uint64_t total = parts_[p]->queue().executed();
                if (total > executedSeen[p]) {
                    trace->counter(TraceSink::kPsim, part,
                                   "psim.executed", end - 1, total);
                    executedSeen[p] = total;
                }
            }
        });
    }
    std::uint64_t executed = 0;
    for (const auto& part : parts_)
        executed += part->queue().executed();
    return executed;
}

} // namespace famsim
