#include "psim/parallel_sim.hh"

#include <algorithm>

namespace famsim {

ParallelSim::ParallelSim(Simulation& sim, std::uint32_t partitions,
                         Tick lookahead, unsigned threads)
    : sim_(sim),
      window_(lookahead),
      // More workers than partitions can never help: every worker
      // acknowledges every epoch, so the surplus would be pure
      // barrier overhead.
      pool_(std::max(1u, std::min(threads, partitions))),
      globalIn_(partitions + 1),
      globalSeq_(partitions + 1, 0)
{
    FAMSIM_ASSERT(partitions >= 1, "parallel kernel needs a partition");
    FAMSIM_ASSERT(!sim.parallel(),
                  "a parallel kernel is already bound to this simulation");
    parts_.reserve(partitions);
    for (std::uint32_t p = 0; p < partitions; ++p)
        parts_.push_back(std::make_unique<NodeQueue>(p, partitions));
    sim_.setParallel(this);
}

ParallelSim::~ParallelSim()
{
    sim_.setParallel(nullptr);
}

std::uint32_t
ParallelSim::sourceLane() const
{
    std::uint32_t current = currentPartition();
    return current == kNoPartition ? partitions() : current;
}

void
ParallelSim::post(std::uint32_t dst, Tick when, std::function<void()> fn)
{
    std::uint32_t src = currentPartition();
    FAMSIM_ASSERT(src != kNoPartition,
                  "cross-partition post from outside a partition");
    FAMSIM_ASSERT(dst < partitions(), "post to unknown partition ", dst);
    FAMSIM_ASSERT(when >= parts_[src]->queue().curTick() + lookahead(),
                  "cross-partition post violates the lookahead");
    parts_[dst]->postInbox(src).push(PostMsg{when, std::move(fn)}, when);
}

void
ParallelSim::postArbitrated(std::uint32_t dst,
                            std::function<void(Tick)> fn)
{
    std::uint32_t src = currentPartition();
    FAMSIM_ASSERT(src != kNoPartition,
                  "arbitrated post from outside a partition");
    FAMSIM_ASSERT(dst < partitions(), "post to unknown partition ", dst);
    Tick sent = parts_[src]->queue().curTick();
    // Key the lane minimum at the earliest possible *delivery* — an
    // arbitrated send can never land before sent + lookahead — so an
    // otherwise-idle kernel opens the next window where the delivery
    // can actually execute instead of paying a dead barrier round at
    // the send tick.
    parts_[dst]->arbInbox(src).push(ArbMsg{sent, std::move(fn)},
                                    sent + lookahead());
}

void
ParallelSim::postGlobal(Tick due, std::function<void()> fn)
{
    std::uint32_t lane = sourceLane();
    if (lane < partitions()) {
        FAMSIM_ASSERT(due >= parts_[lane]->queue().curTick(),
                      "global op due in the past");
    }
    globalIn_[lane].push_back(
        GlobalOp{due, lane, globalSeq_[lane]++, std::move(fn)});
}

void
ParallelSim::collectGlobalOps()
{
    bool added = false;
    for (auto& lane : globalIn_) {
        if (lane.empty())
            continue;
        added = true;
        pendingGlobal_.insert(pendingGlobal_.end(),
                              std::make_move_iterator(lane.begin()),
                              std::make_move_iterator(lane.end()));
        lane.clear();
    }
    if (added) {
        std::sort(pendingGlobal_.begin(), pendingGlobal_.end(),
                  [](const GlobalOp& a, const GlobalOp& b) {
                      if (a.due != b.due)
                          return a.due < b.due;
                      if (a.src != b.src)
                          return a.src < b.src;
                      return a.seq < b.seq;
                  });
    }
}

void
ParallelSim::runGlobalOpsBefore(Tick end)
{
    if (pendingGlobal_.empty() || pendingGlobal_.front().due >= end)
        return;
    // Barrier ops run with the fabric partition as scheduling context:
    // broker bookkeeping traffic belongs there, and the workers are
    // quiescent so touching any partition's state is safe.
    std::size_t taken = 0;
    {
        Scope scope(*this, fabricPartition());
        while (taken < pendingGlobal_.size() &&
               pendingGlobal_[taken].due < end) {
            auto fn = std::move(pendingGlobal_[taken].fn);
            ++taken;
            fn();
        }
    }
    pendingGlobal_.erase(pendingGlobal_.begin(),
                         pendingGlobal_.begin() +
                             static_cast<std::ptrdiff_t>(taken));
}

Tick
ParallelSim::minPendingTick() const
{
    Tick min = EventQueue::kForever;
    for (const auto& part : parts_)
        min = std::min(min, part->minPendingTick());
    // pendingGlobal_ is sorted by (due, src, seq) and consumed from
    // the front, so its minimum is the first element.
    if (!pendingGlobal_.empty())
        min = std::min(min, pendingGlobal_.front().due);
    return min;
}

std::uint64_t
ParallelSim::run()
{
    for (;;) {
        collectGlobalOps();
        Tick next = minPendingTick();
        if (next == EventQueue::kForever)
            break;
        auto [start, end] = window_.open(next);
        (void)start;
        runGlobalOpsBefore(end);
        // Two phases per window, each a full barrier. Drains must not
        // overlap execution: a partition already running the new
        // window would otherwise append to the very lanes another
        // partition is still merging. With the drain fenced off, every
        // producer is quiescent while its messages are consumed — the
        // property that lets the mailboxes stay lock-free.
        pool_.runEpoch(parts_.size(), [&](std::size_t p) {
            Scope scope(*this, static_cast<std::uint32_t>(p));
            parts_[p]->drainInboxes();
        });
        pool_.runEpoch(parts_.size(), [&](std::size_t p) {
            Scope scope(*this, static_cast<std::uint32_t>(p));
            parts_[p]->queue().run(end - 1);
        });
    }
    std::uint64_t executed = 0;
    for (const auto& part : parts_)
        executed += part->queue().executed();
    return executed;
}

} // namespace famsim
