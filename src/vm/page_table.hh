/**
 * @file
 * Four-level hierarchical page table (x86-64 style: PGD/PUD/PMD/PTE).
 *
 * The table is *functionally* stored in host memory but every table page
 * is allocated at a concrete simulated address (via an allocator
 * callback), so a walk yields the exact sequence of simulated memory
 * addresses touched — those become real NodePtw/FamPtw packets and show
 * up in the FAM AT-request accounting exactly as in the paper.
 *
 * The same class implements both tables in the system:
 *  - the node page table (VA page -> NPA page), table pages in node
 *    memory (allocated by NodeOs, 20/80 local/FAM zone split);
 *  - the system-level FAM page table (NPA page -> FAM page), table pages
 *    in FAM (allocated by the MemoryBroker).
 */

#ifndef FAMSIM_VM_PAGE_TABLE_HH
#define FAMSIM_VM_PAGE_TABLE_HH

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>

namespace famsim {

/** Page permissions carried in PTEs and in the FAM ACM. */
struct Perms {
    bool r = true;
    bool w = true;
    bool x = false;

    /** Encode to the paper's 2-bit permission field (§III-A). */
    [[nodiscard]] std::uint8_t
    encode2b() const
    {
        if (x) return 3;      // read+write+execute
        if (w) return 2;      // read+write
        if (r) return 1;      // read only
        return 0;             // no access
    }

    /** Decode from the 2-bit permission field. */
    static Perms
    decode2b(std::uint8_t bits)
    {
        switch (bits & 3) {
          case 0: return Perms{false, false, false};
          case 1: return Perms{true, false, false};
          case 2: return Perms{true, true, false};
          default: return Perms{true, true, true};
        }
    }

    /** @return true if an access of the given type is permitted. */
    [[nodiscard]] bool
    allows(bool is_write, bool is_exec = false) const
    {
        if (is_exec)
            return x;
        return is_write ? w : r;
    }

    bool operator==(const Perms&) const = default;
};

/**
 * A radix page table with four 9-bit levels over a 36-bit page number
 * (48-bit addresses, 4 KB pages).
 */
class HierarchicalPageTable
{
  public:
    /** Levels are numbered 0 (PGD, root) through 3 (PTE, leaf). */
    static constexpr unsigned kLevels = 4;
    /** Index bits per level. */
    static constexpr unsigned kIndexBits = 9;
    /** Entries per table page. */
    static constexpr unsigned kEntries = 1u << kIndexBits;
    /** Bytes per entry. */
    static constexpr unsigned kEntryBytes = 8;

    /** Allocator for table pages; returns the page's simulated address. */
    using AllocFn = std::function<std::uint64_t()>;

    /** Final translation: value page number plus permissions. */
    struct Leaf {
        std::uint64_t valuePage = 0;
        Perms perms{};
        bool operator==(const Leaf&) const = default;
    };

    /** One memory access performed during a walk. */
    struct WalkStep {
        std::uint64_t addr = 0;  //!< simulated address of the entry read
        unsigned level = 0;      //!< 0 = PGD .. 3 = PTE
    };

    /**
     * Fixed-capacity list of a walk's steps (at most one per level).
     * Replaces the per-walk std::vector so the hottest allocation in
     * the translation path is gone; walkers copy it by value through
     * their continuation chain for the same reason.
     */
    class StepList
    {
      public:
        void
        push_back(WalkStep step)
        {
            steps_[size_++] = step;
        }

        [[nodiscard]] std::size_t size() const { return size_; }
        [[nodiscard]] bool empty() const { return size_ == 0; }
        [[nodiscard]] const WalkStep&
        operator[](std::size_t i) const
        {
            return steps_[i];
        }
        [[nodiscard]] const WalkStep* begin() const
        {
            return steps_.data();
        }
        [[nodiscard]] const WalkStep* end() const
        {
            return steps_.data() + size_;
        }

      private:
        std::array<WalkStep, kLevels> steps_{};
        std::uint8_t size_ = 0;
    };

    /** Outcome of a functional walk. */
    struct WalkResult {
        /** Entry addresses touched, in order, until present levels end. */
        StepList steps;
        /** The translation, if the key is mapped. */
        std::optional<Leaf> leaf;
    };

    explicit HierarchicalPageTable(AllocFn alloc);

    /** Map @p key_page -> @p value_page, creating intermediate tables. */
    void map(std::uint64_t key_page, std::uint64_t value_page, Perms perms);

    /** Remove a mapping. @return true if it existed. */
    bool unmap(std::uint64_t key_page);

    /** Functional lookup without walk bookkeeping. */
    [[nodiscard]] std::optional<Leaf> lookup(std::uint64_t key_page) const;

    /** Walk, returning every entry address a hardware walker would read. */
    [[nodiscard]] WalkResult walk(std::uint64_t key_page) const;

    /**
     * Simulated address of the level-@p level entry covering
     * @p key_page, if the intermediate tables exist. Used by walkers
     * that skip levels via PTW caches.
     */
    [[nodiscard]] std::optional<std::uint64_t>
    entryAddr(std::uint64_t key_page, unsigned level) const;

    /** Simulated base address of the root (PGD) table page. */
    [[nodiscard]] std::uint64_t rootAddr() const { return root_->base; }

    /** Number of table pages allocated so far. */
    [[nodiscard]] std::size_t tablePages() const { return tablePages_; }

    /** Number of leaf mappings currently present. */
    [[nodiscard]] std::size_t mappings() const { return mappings_; }

    /** Index into the level-@p level table for @p key_page. */
    [[nodiscard]] static unsigned
    levelIndex(std::uint64_t key_page, unsigned level)
    {
        return static_cast<unsigned>(
            (key_page >> (kIndexBits * (kLevels - 1 - level))) &
            (kEntries - 1));
    }

    /**
     * Prefix identifying the level-@p level entry (all index bits
     * consumed through that level). Used as PTW-cache keys.
     */
    [[nodiscard]] static std::uint64_t
    levelPrefix(std::uint64_t key_page, unsigned level)
    {
        return key_page >> (kIndexBits * (kLevels - 1 - level));
    }

    class BulkMapper;

  private:
    /**
     * One table page. Children/leaves are direct-indexed arrays
     * (allocated lazily, on the first child or leaf) instead of hash
     * maps: a walk or descend is then three predictable indexed loads
     * with no hashing, and teardown is linear. A leaf-level table
     * costs ~8 KB, an intermediate ~4 KB — a few MB per simulated
     * node even for the paper's most scattered workloads.
     */
    struct Table {
        std::uint64_t base = 0;
        /** Children for levels 0..2 (kEntries slots once allocated). */
        std::unique_ptr<std::unique_ptr<Table>[]> children;
        /** Leaves for level 3 (kEntries slots once allocated). */
        std::unique_ptr<Leaf[]> leaves;
        /** Present bits for leaves. */
        std::array<std::uint64_t, kEntries / 64> leafPresent{};

        [[nodiscard]] bool
        leafAt(unsigned idx) const
        {
            return (leafPresent[idx >> 6] >> (idx & 63)) & 1;
        }
    };

    Table* descend(std::uint64_t key_page, bool create);

    AllocFn alloc_;
    std::unique_ptr<Table> root_;
    std::size_t tablePages_ = 0;
    std::size_t mappings_ = 0;
};

/**
 * Batched map-if-absent for the prefault paths (System::prefaultNode):
 * fuses the lookup + map pair into a single descend and caches the
 * leaf (PTE) table between calls, so a dense run of keys touches the
 * upper levels once per 512-page leaf range instead of twice per page.
 *
 * Side-effect order per *new* key is exactly the classic
 * `if (!lookup(k)) { v = alloc(); map(k, v); }` sequence the goldens
 * are pinned to: the absence check performs no allocation, the value
 * callback runs before any intermediate table page is allocated, and
 * the table-page allocator fires in the same descend order — so
 * allocation cursors, stat counters and famZonePages orders are
 * bit-identical to the unbatched path.
 */
class HierarchicalPageTable::BulkMapper
{
  public:
    explicit BulkMapper(HierarchicalPageTable& table) : table_(table) {}

    /**
     * Install key_page -> value_fn() if @p key_page is unmapped.
     * @p value_fn is invoked only when a mapping is installed.
     * @return true if a new mapping was installed.
     */
    template <typename ValueFn>
    bool
    mapIfAbsent(std::uint64_t key_page, Perms perms, ValueFn&& value_fn)
    {
        // The PTE table covering key_page is identified by its
        // level-(kLevels-2) prefix; reuse it while keys stay inside
        // the same 512-page range.
        std::uint64_t prefix = levelPrefix(key_page, kLevels - 2);
        if (!leafTable_ || prefix != cachedPrefix_) {
            leafTable_ = table_.descend(key_page, /*create=*/false);
            cachedPrefix_ = prefix;
        }
        unsigned idx = levelIndex(key_page, kLevels - 1);
        if (leafTable_ && leafTable_->leafAt(idx))
            return false;
        std::uint64_t value = value_fn();
        if (!leafTable_)
            leafTable_ = table_.descend(key_page, /*create=*/true);
        if (!leafTable_->leaves)
            leafTable_->leaves = std::make_unique<Leaf[]>(kEntries);
        leafTable_->leaves[idx] = Leaf{value, perms};
        leafTable_->leafPresent[idx >> 6] |= std::uint64_t{1}
                                             << (idx & 63);
        ++table_.mappings_;
        return true;
    }

  private:
    HierarchicalPageTable& table_;
    Table* leafTable_ = nullptr;
    std::uint64_t cachedPrefix_ = ~std::uint64_t{0};
};

} // namespace famsim

#endif // FAMSIM_VM_PAGE_TABLE_HH
