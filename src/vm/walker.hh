/**
 * @file
 * Node-side hardware page-table walker (the Samba MMU's walk engine).
 *
 * On a TLB miss the walker reads the node page table level by level.
 * Each step is a real memory access sent into the cache hierarchy —
 * and since ~80 % of page-table pages live in the FAM zone, walk steps
 * routinely become FAM traffic (this is the second-order effect that
 * makes I-FAM collapse: node PTW steps themselves need system-level
 * translation, up to 24 accesses end to end, §I).
 *
 * A 32-entry PTW cache [8] lets walks skip upper levels.
 */

#ifndef FAMSIM_VM_WALKER_HH
#define FAMSIM_VM_WALKER_HH

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "mem/mem_sink.hh"
#include "sim/simulation.hh"
#include "vm/page_table.hh"
#include "vm/tlb.hh"

namespace famsim {

/** Asynchronous walker over a node page table. */
class NodePtWalker : public Component
{
  public:
    using Leaf = HierarchicalPageTable::Leaf;
    using DoneFn = std::function<void(std::optional<Leaf>)>;

    NodePtWalker(Simulation& sim, const std::string& name,
                 HierarchicalPageTable& table, PtwCache& ptw_cache,
                 MemSink& mem, NodeId node, CoreId core);

    /**
     * Walk the table for @p va_page. Steps are issued serially through
     * the memory hierarchy; @p done receives the leaf (or nullopt for
     * an unmapped page, i.e. a page fault).
     */
    void walk(std::uint64_t va_page, DoneFn done);

    [[nodiscard]] double avgStepsPerWalk() const;

  private:
    void step(std::uint64_t va_page,
              HierarchicalPageTable::StepList steps,
              std::size_t index, DoneFn done);

    HierarchicalPageTable& table_;
    PtwCache& ptwCache_;
    MemSink& mem_;
    NodeId node_;
    CoreId core_;

    Counter& walks_;
    Counter& steps_;
    Counter& faults_;
};

} // namespace famsim

#endif // FAMSIM_VM_WALKER_HH
