/**
 * @file
 * TLBs and page-table-walker caches (the Samba MMU substrate).
 *
 * Table II: two TLB levels per core, 32 and 256 entries; 32-entry PTW
 * cache holding upper-level (PGD/PUD/PMD) page-table entries per
 * Bhargava et al. [8].
 */

#ifndef FAMSIM_VM_TLB_HH
#define FAMSIM_VM_TLB_HH

#include <cstdint>
#include <optional>
#include <string>

#include "cache/set_assoc.hh"
#include "sim/simulation.hh"
#include "vm/page_table.hh"

namespace famsim {

/** A cached translation: VA page -> NPA page with permissions. */
struct TlbEntry {
    std::uint64_t valuePage = 0;
    Perms perms{};
};

/** One TLB level. */
class Tlb : public Component
{
  public:
    /**
     * @param entries total entries; @param ways associativity
     * (ways == entries gives a fully-associative TLB).
     */
    Tlb(Simulation& sim, const std::string& name, std::size_t entries,
        std::size_t ways, Tick latency);

    /** Look up a VA page number; updates recency and hit/miss stats. */
    std::optional<TlbEntry> lookup(std::uint64_t va_page);

    void insert(std::uint64_t va_page, const TlbEntry& entry);
    bool invalidate(std::uint64_t va_page);
    void invalidateAll();

    [[nodiscard]] Tick latency() const { return latency_; }
    [[nodiscard]] std::size_t entries() const { return cache_.capacity(); }
    [[nodiscard]] double hitRate() const;

  private:
    SetAssocCache<TlbEntry> cache_;
    Tick latency_;
    Counter& hits_;
    Counter& misses_;
};

/**
 * Two-level TLB: a small fast L1 backed by a larger L2. L1 misses that
 * hit in L2 are promoted into L1.
 */
class TwoLevelTlb : public Component
{
  public:
    struct Params {
        std::size_t l1Entries = 32;
        std::size_t l2Entries = 256;
        std::size_t l2Ways = 8;
        Tick l1Latency = 500;              // one 2 GHz cycle
        Tick l2Latency = 3500;             // seven cycles
    };

    TwoLevelTlb(Simulation& sim, const std::string& name,
                const Params& params);

    /** Result of a lookup: the entry (if any) plus the latency paid. */
    struct Result {
        std::optional<TlbEntry> entry;
        Tick latency = 0;
    };

    Result lookup(std::uint64_t va_page);
    /** Fill both levels after a walk. */
    void insert(std::uint64_t va_page, const TlbEntry& entry);
    void invalidate(std::uint64_t va_page);
    void invalidateAll();

    [[nodiscard]] Tlb& l1() { return l1_; }
    [[nodiscard]] Tlb& l2() { return l2_; }

  private:
    Tlb l1_;
    Tlb l2_;
};

/**
 * Page-table-walker cache: holds upper-level page-table entries so a
 * walk can skip directly to the deepest cached level [8].
 *
 * Keys combine the level and the level prefix of the key page; values
 * are the simulated base address of the next-level table.
 */
class PtwCache : public Component
{
  public:
    PtwCache(Simulation& sim, const std::string& name,
             std::size_t entries, std::size_t ways = 4);

    /**
     * Find the deepest level (0..2) whose entry for @p key_page is
     * cached. @return that level, or -1 if none is cached.
     */
    int deepestCachedLevel(std::uint64_t key_page);

    /** Record the level-@p level entry for @p key_page. */
    void insert(std::uint64_t key_page, unsigned level);

    void invalidateAll();

    [[nodiscard]] double hitRate() const;

  private:
    static std::uint64_t
    keyFor(std::uint64_t key_page, unsigned level)
    {
        return (static_cast<std::uint64_t>(level) << 56) ^
               HierarchicalPageTable::levelPrefix(key_page, level);
    }

    SetAssocCache<std::uint8_t> cache_;
    Counter& hits_;
    Counter& misses_;
};

} // namespace famsim

#endif // FAMSIM_VM_TLB_HH
