#include "vm/walker.hh"

#include "sim/logging.hh"

namespace famsim {

NodePtWalker::NodePtWalker(Simulation& sim, const std::string& name,
                           HierarchicalPageTable& table,
                           PtwCache& ptw_cache, MemSink& mem, NodeId node,
                           CoreId core)
    : Component(sim, name),
      table_(table),
      ptwCache_(ptw_cache),
      mem_(mem),
      node_(node),
      core_(core),
      walks_(statCounter("walks", "page-table walks")),
      steps_(statCounter("steps", "walk memory accesses issued")),
      faults_(statCounter("faults", "walks ending in a page fault"))
{
}

void
NodePtWalker::walk(std::uint64_t va_page, DoneFn done)
{
    FAMSIM_ASSERT(done, "walker needs a completion callback");
    ++walks_;
    auto result = table_.walk(va_page);
    int deepest = ptwCache_.deepestCachedLevel(va_page);
    std::size_t start = static_cast<std::size_t>(deepest + 1);
    if (start >= result.steps.size())
        start = result.steps.empty() ? 0 : result.steps.size() - 1;
    step(va_page, std::move(result.steps), start, std::move(done));
}

void
NodePtWalker::step(std::uint64_t va_page,
                   HierarchicalPageTable::StepList steps,
                   std::size_t index, DoneFn done)
{
    if (index >= steps.size()) {
        for (const auto& s : steps) {
            if (s.level < HierarchicalPageTable::kLevels - 1)
                ptwCache_.insert(va_page, s.level);
        }
        auto leaf = table_.lookup(va_page);
        if (!leaf)
            ++faults_;
        done(leaf);
        return;
    }
    ++steps_;
    PktPtr pkt = makePacket(node_, core_, MemOp::Read,
                            PacketKind::NodePtw);
    pkt->npa = NPAddr(steps[index].addr).blockAddr();
    pkt->issued = sim_.curTick();
    pkt->onDone = [this, va_page, steps = std::move(steps), index,
                   done = std::move(done)](Packet&) mutable {
        step(va_page, std::move(steps), index + 1, std::move(done));
    };
    mem_.access(pkt);
}

double
NodePtWalker::avgStepsPerWalk() const
{
    return walks_.value() == 0
               ? 0.0
               : static_cast<double>(steps_.value()) /
                     static_cast<double>(walks_.value());
}

} // namespace famsim
