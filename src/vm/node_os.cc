#include "vm/node_os.hh"

#include "sim/logging.hh"

namespace famsim {

NodeOs::NodeOs(Simulation& sim, const std::string& name,
               const NodeOsParams& params, FamMode mode, NodeId node,
               MemoryBroker* broker)
    : Component(sim, name),
      params_(params),
      mode_(mode),
      node_(node),
      broker_(broker),
      faults_(statCounter("faults", "node page faults")),
      localPages_(statCounter("local_pages",
                              "pages allocated in the local zone")),
      famPages_(statCounter("fam_pages",
                            "pages allocated in the FAM zone")),
      table_([this] { return allocTablePage() * kPageSize; })
{
    FAMSIM_ASSERT(params.reservedLocalBytes < params.localBytes,
                  "reserved DRAM exceeds local memory");
    FAMSIM_ASSERT(params.localFraction >= 0.0 &&
                      params.localFraction <= 1.0,
                  "local fraction must be in [0,1]");
    if (mode == FamMode::Exposed)
        FAMSIM_ASSERT(broker_,
                      "E-FAM mode requires a broker for FAM allocation");

    if (params_.scatterFamZone) {
        // Multiplicative stride coprime with the zone size: visits
        // every page once in a scattered order (fragmented free list).
        std::uint64_t zone_pages = params_.famZoneBytes / kPageSize;
        famStride_ = 1000003;
        auto gcd = [](std::uint64_t a, std::uint64_t b) {
            while (b) {
                std::uint64_t t = a % b;
                a = b;
                b = t;
            }
            return a;
        };
        while (gcd(famStride_, zone_pages) != 1)
            ++famStride_;
    }
}

std::uint64_t
NodeOs::allocValuePage(bool& out_is_fam)
{
    std::uint64_t usable_local_pages =
        (params_.localBytes - params_.reservedLocalBytes) / kPageSize;
    std::uint64_t fam_zone_pages = params_.famZoneBytes / kPageSize;

    // Deterministic interleave tracking the target local fraction.
    bool want_local =
        static_cast<double>(localCount_) <
        (static_cast<double>(allocCount_) + 1.0) * params_.localFraction;
    ++allocCount_;

    if (want_local && localCursor_ < usable_local_pages) {
        ++localCount_;
        ++localPages_;
        out_is_fam = false;
        return localCursor_++;
    }
    FAMSIM_ASSERT(famCursor_ < fam_zone_pages,
                  "FAM zone exhausted on node ", node_);
    ++famPages_;
    out_is_fam = true;
    std::uint64_t zone_index = famCursor_++;
    if (params_.scatterFamZone)
        zone_index = (zone_index * famStride_) % fam_zone_pages;
    std::uint64_t npa_page = params_.localBytes / kPageSize + zone_index;
    famZonePages_.push_back(npa_page);
    return npa_page;
}

std::uint64_t
NodeOs::allocTablePage()
{
    // Page-table pages follow the same zone policy as data pages: most
    // of them land in the FAM zone, which is what makes node page-table
    // walks show up as FAM traffic (Fig. 4).
    bool is_fam = false;
    std::uint64_t npa_page = allocValuePage(is_fam);
    if (is_fam && mode_ == FamMode::Exposed) {
        std::uint64_t fam_page =
            broker_->allocPage(broker_->logicalIdOf(node_), Perms{});
        return fam_page | kFamDirectPageBit;
    }
    return npa_page;
}

std::uint64_t
NodeOs::faultAllocate(Tick& latency)
{
    ++faults_;
    bool is_fam = false;
    std::uint64_t npa_page = allocValuePage(is_fam);

    if (is_fam && mode_ == FamMode::Exposed) {
        // Patched OS: fetch a real FAM page from the broker (MPI-style
        // round trip) and map it directly.
        std::uint64_t fam_page =
            broker_->allocPage(broker_->logicalIdOf(node_), Perms{});
        npa_page = fam_page | kFamDirectPageBit;
        latency += broker_->params().exposedRttLatency;
    }
    return npa_page;
}

Tick
NodeOs::handleFault(std::uint64_t va_page)
{
    Tick latency = params_.faultLatency;
    std::uint64_t npa_page = faultAllocate(latency);
    table_.map(va_page, npa_page, Perms{});
    return latency;
}

void
NodeOs::prefaultPages(const std::vector<std::uint64_t>& va_pages)
{
    HierarchicalPageTable::BulkMapper mapper(table_);
    for (std::uint64_t va_page : va_pages) {
        // handleFault minus the latency accounting (prefault discards
        // it): the shared faultAllocate keeps counters and allocation
        // order bit-identical between the two paths.
        mapper.mapIfAbsent(va_page, Perms{}, [this] {
            Tick discarded = 0;
            return faultAllocate(discarded);
        });
    }
}

void
NodeOs::mapExplicit(std::uint64_t va_page, std::uint64_t npa_page,
                    Perms perms)
{
    table_.map(va_page, npa_page, perms);
}

std::uint64_t
NodeOs::allocFamZonePage()
{
    bool is_fam = false;
    std::uint64_t fam_zone_pages = params_.famZoneBytes / kPageSize;
    FAMSIM_ASSERT(famCursor_ < fam_zone_pages,
                  "FAM zone exhausted on node ", node_);
    (void)is_fam;
    std::uint64_t zone_index = famCursor_++;
    if (params_.scatterFamZone)
        zone_index = (zone_index * famStride_) % fam_zone_pages;
    ++famPages_;
    std::uint64_t npa_page = params_.localBytes / kPageSize + zone_index;
    famZonePages_.push_back(npa_page);
    return npa_page;
}

} // namespace famsim
