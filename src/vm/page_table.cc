#include "vm/page_table.hh"

#include "sim/logging.hh"

namespace famsim {

HierarchicalPageTable::HierarchicalPageTable(AllocFn alloc)
    : alloc_(std::move(alloc))
{
    FAMSIM_ASSERT(alloc_, "page table requires an allocator");
    root_ = std::make_unique<Table>();
    root_->base = alloc_();
    ++tablePages_;
}

HierarchicalPageTable::Table*
HierarchicalPageTable::descend(std::uint64_t key_page, bool create)
{
    Table* table = root_.get();
    for (unsigned level = 0; level + 1 < kLevels; ++level) {
        unsigned idx = levelIndex(key_page, level);
        if (!table->children) {
            if (!create)
                return nullptr;
            table->children =
                std::make_unique<std::unique_ptr<Table>[]>(kEntries);
        }
        std::unique_ptr<Table>& slot = table->children[idx];
        if (!slot) {
            if (!create)
                return nullptr;
            slot = std::make_unique<Table>();
            slot->base = alloc_();
            ++tablePages_;
        }
        table = slot.get();
    }
    return table;
}

void
HierarchicalPageTable::map(std::uint64_t key_page, std::uint64_t value_page,
                           Perms perms)
{
    Table* pte_table = descend(key_page, /*create=*/true);
    unsigned idx = levelIndex(key_page, kLevels - 1);
    if (!pte_table->leaves)
        pte_table->leaves = std::make_unique<Leaf[]>(kEntries);
    bool inserted = !pte_table->leafAt(idx);
    pte_table->leaves[idx] = Leaf{value_page, perms};
    if (inserted) {
        pte_table->leafPresent[idx >> 6] |= std::uint64_t{1} << (idx & 63);
        ++mappings_;
    }
}

bool
HierarchicalPageTable::unmap(std::uint64_t key_page)
{
    Table* pte_table = descend(key_page, /*create=*/false);
    if (!pte_table)
        return false;
    unsigned idx = levelIndex(key_page, kLevels - 1);
    if (!pte_table->leafAt(idx))
        return false;
    pte_table->leafPresent[idx >> 6] &= ~(std::uint64_t{1} << (idx & 63));
    --mappings_;
    return true;
}

std::optional<HierarchicalPageTable::Leaf>
HierarchicalPageTable::lookup(std::uint64_t key_page) const
{
    auto* self = const_cast<HierarchicalPageTable*>(this);
    Table* pte_table = self->descend(key_page, /*create=*/false);
    if (!pte_table)
        return std::nullopt;
    unsigned idx = levelIndex(key_page, kLevels - 1);
    if (!pte_table->leafAt(idx))
        return std::nullopt;
    return pte_table->leaves[idx];
}

HierarchicalPageTable::WalkResult
HierarchicalPageTable::walk(std::uint64_t key_page) const
{
    WalkResult result;
    const Table* table = root_.get();
    for (unsigned level = 0; level < kLevels; ++level) {
        unsigned idx = levelIndex(key_page, level);
        result.steps.push_back(
            WalkStep{table->base + idx * kEntryBytes, level});
        if (level == kLevels - 1) {
            if (table->leafAt(idx))
                result.leaf = table->leaves[idx];
            break;
        }
        if (!table->children || !table->children[idx])
            break; // non-present intermediate entry: walk stops here
        table = table->children[idx].get();
    }
    return result;
}

std::optional<std::uint64_t>
HierarchicalPageTable::entryAddr(std::uint64_t key_page,
                                 unsigned level) const
{
    FAMSIM_ASSERT(level < kLevels, "page table level out of range");
    const Table* table = root_.get();
    for (unsigned l = 0; l < level; ++l) {
        unsigned idx = levelIndex(key_page, l);
        if (!table->children || !table->children[idx])
            return std::nullopt;
        table = table->children[idx].get();
    }
    return table->base + levelIndex(key_page, level) * kEntryBytes;
}

} // namespace famsim
