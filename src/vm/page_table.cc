#include "vm/page_table.hh"

#include "sim/logging.hh"

namespace famsim {

HierarchicalPageTable::HierarchicalPageTable(AllocFn alloc)
    : alloc_(std::move(alloc))
{
    FAMSIM_ASSERT(alloc_, "page table requires an allocator");
    root_ = std::make_unique<Table>();
    root_->base = alloc_();
    ++tablePages_;
}

HierarchicalPageTable::Table*
HierarchicalPageTable::descend(std::uint64_t key_page, bool create)
{
    Table* table = root_.get();
    for (unsigned level = 0; level + 1 < kLevels; ++level) {
        unsigned idx = levelIndex(key_page, level);
        auto it = table->children.find(idx);
        if (it == table->children.end()) {
            if (!create)
                return nullptr;
            auto child = std::make_unique<Table>();
            child->base = alloc_();
            ++tablePages_;
            it = table->children.emplace(idx, std::move(child)).first;
        }
        table = it->second.get();
    }
    return table;
}

void
HierarchicalPageTable::map(std::uint64_t key_page, std::uint64_t value_page,
                           Perms perms)
{
    Table* pte_table = descend(key_page, /*create=*/true);
    unsigned idx = levelIndex(key_page, kLevels - 1);
    auto [it, inserted] =
        pte_table->leaves.insert_or_assign(idx, Leaf{value_page, perms});
    (void)it;
    if (inserted)
        ++mappings_;
}

bool
HierarchicalPageTable::unmap(std::uint64_t key_page)
{
    Table* pte_table = descend(key_page, /*create=*/false);
    if (!pte_table)
        return false;
    unsigned idx = levelIndex(key_page, kLevels - 1);
    if (pte_table->leaves.erase(idx) == 0)
        return false;
    --mappings_;
    return true;
}

std::optional<HierarchicalPageTable::Leaf>
HierarchicalPageTable::lookup(std::uint64_t key_page) const
{
    auto* self = const_cast<HierarchicalPageTable*>(this);
    Table* pte_table = self->descend(key_page, /*create=*/false);
    if (!pte_table)
        return std::nullopt;
    auto it = pte_table->leaves.find(levelIndex(key_page, kLevels - 1));
    if (it == pte_table->leaves.end())
        return std::nullopt;
    return it->second;
}

HierarchicalPageTable::WalkResult
HierarchicalPageTable::walk(std::uint64_t key_page) const
{
    WalkResult result;
    const Table* table = root_.get();
    for (unsigned level = 0; level < kLevels; ++level) {
        unsigned idx = levelIndex(key_page, level);
        result.steps.push_back(
            WalkStep{table->base + idx * kEntryBytes, level});
        if (level == kLevels - 1) {
            auto it = table->leaves.find(idx);
            if (it != table->leaves.end())
                result.leaf = it->second;
            break;
        }
        auto it = table->children.find(idx);
        if (it == table->children.end())
            break; // non-present intermediate entry: walk stops here
        table = it->second.get();
    }
    return result;
}

std::optional<std::uint64_t>
HierarchicalPageTable::entryAddr(std::uint64_t key_page,
                                 unsigned level) const
{
    FAMSIM_ASSERT(level < kLevels, "page table level out of range");
    const Table* table = root_.get();
    for (unsigned l = 0; l < level; ++l) {
        auto it = table->children.find(levelIndex(key_page, l));
        if (it == table->children.end())
            return std::nullopt;
        table = it->second.get();
    }
    return table->base + levelIndex(key_page, level) * kEntryBytes;
}

} // namespace famsim
