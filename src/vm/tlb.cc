#include "vm/tlb.hh"

namespace famsim {

Tlb::Tlb(Simulation& sim, const std::string& name, std::size_t entries,
         std::size_t ways, Tick latency)
    : Component(sim, name),
      cache_(entries / ways, ways, ReplPolicy::Lru, sim.seed()),
      latency_(latency),
      hits_(statCounter("hits", "TLB hits")),
      misses_(statCounter("misses", "TLB misses"))
{
}

std::optional<TlbEntry>
Tlb::lookup(std::uint64_t va_page)
{
    if (TlbEntry* entry = cache_.lookup(va_page)) {
        ++hits_;
        return *entry;
    }
    ++misses_;
    return std::nullopt;
}

void
Tlb::insert(std::uint64_t va_page, const TlbEntry& entry)
{
    cache_.insert(va_page, entry);
}

bool
Tlb::invalidate(std::uint64_t va_page)
{
    return cache_.invalidate(va_page);
}

void
Tlb::invalidateAll()
{
    cache_.invalidateAll();
}

double
Tlb::hitRate() const
{
    double total = static_cast<double>(hits_.value() + misses_.value());
    return total == 0.0 ? 0.0
                        : static_cast<double>(hits_.value()) / total;
}

TwoLevelTlb::TwoLevelTlb(Simulation& sim, const std::string& name,
                         const Params& params)
    : Component(sim, name),
      l1_(sim, name + ".l1", params.l1Entries, params.l1Entries,
          params.l1Latency),
      l2_(sim, name + ".l2", params.l2Entries, params.l2Ways,
          params.l2Latency)
{
}

TwoLevelTlb::Result
TwoLevelTlb::lookup(std::uint64_t va_page)
{
    Result result;
    result.latency = l1_.latency();
    if (auto entry = l1_.lookup(va_page)) {
        result.entry = entry;
        return result;
    }
    result.latency += l2_.latency();
    if (auto entry = l2_.lookup(va_page)) {
        l1_.insert(va_page, *entry); // promote
        result.entry = entry;
        return result;
    }
    return result;
}

void
TwoLevelTlb::insert(std::uint64_t va_page, const TlbEntry& entry)
{
    l1_.insert(va_page, entry);
    l2_.insert(va_page, entry);
}

void
TwoLevelTlb::invalidate(std::uint64_t va_page)
{
    l1_.invalidate(va_page);
    l2_.invalidate(va_page);
}

void
TwoLevelTlb::invalidateAll()
{
    l1_.invalidateAll();
    l2_.invalidateAll();
}

PtwCache::PtwCache(Simulation& sim, const std::string& name,
                   std::size_t entries, std::size_t ways)
    : Component(sim, name),
      cache_(entries / ways, ways, ReplPolicy::Lru, sim.seed()),
      hits_(statCounter("hits", "PTW cache hits")),
      misses_(statCounter("misses", "PTW cache misses"))
{
}

int
PtwCache::deepestCachedLevel(std::uint64_t key_page)
{
    // Upper levels are 0..2 (the PTE level itself is cached by TLBs).
    for (int level = 2; level >= 0; --level) {
        if (cache_.lookup(keyFor(key_page, static_cast<unsigned>(level)))) {
            ++hits_;
            return level;
        }
    }
    ++misses_;
    return -1;
}

void
PtwCache::insert(std::uint64_t key_page, unsigned level)
{
    cache_.insert(keyFor(key_page, level), std::uint8_t{1});
}

void
PtwCache::invalidateAll()
{
    cache_.invalidateAll();
}

double
PtwCache::hitRate() const
{
    double total = static_cast<double>(hits_.value() + misses_.value());
    return total == 0.0 ? 0.0
                        : static_cast<double>(hits_.value()) / total;
}

} // namespace famsim
