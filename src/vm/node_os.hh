/**
 * @file
 * The node operating system's memory management view (§III-A).
 *
 * Each node's OS manages an *imaginary* flat node-physical space made
 * of two NUMA-like zones: low addresses map to the node's local DRAM
 * and high addresses to the FAM. The OS is oblivious to the real FAM
 * layout (in I-FAM/DeACT modes) — it simply hands out NPA pages on
 * first touch, 20 % local / 80 % FAM by default (§IV footnote).
 *
 * In E-FAM mode the OS is "patched" to talk to the memory broker and
 * maps real FAM pages directly (high bit of the value page marks a
 * FAM-direct mapping); this is the insecure baseline of Fig. 2(a).
 */

#ifndef FAMSIM_VM_NODE_OS_HH
#define FAMSIM_VM_NODE_OS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "fam/broker.hh"
#include "sim/simulation.hh"
#include "vm/page_table.hh"

namespace famsim {

/** How FAM-zone pages materialize. */
enum class FamMode : std::uint8_t {
    Exposed,  //!< E-FAM: OS maps real FAM pages via the broker.
    Indirect, //!< I-FAM / DeACT: imaginary NPA zone, mapped at system level.
};

/** Bit set in a *page number* to mark an E-FAM direct FAM mapping. */
inline constexpr std::uint64_t kFamDirectPageBit = std::uint64_t{1} << 50;

/** Node OS configuration. */
struct NodeOsParams {
    /** Local DRAM capacity (Table II: 1 GB). */
    std::uint64_t localBytes = std::uint64_t{1} << 30;
    /** DRAM reserved at the top for the FAM translation cache. */
    std::uint64_t reservedLocalBytes = std::uint64_t{2} << 20;
    /**
     * Size of the FAM-backed NPA zone. The zone is *imaginary* (the OS
     * manages it obliviously, §III-A) and deliberately large: combined
     * with fragmentation (scatterFamZone) it makes the system-level
     * FAM page table sparse, so STU walks touch the PUD/PMD/PTE levels
     * for real (~3 accesses), as in Fig. 1(b).
     */
    std::uint64_t famZoneBytes = std::uint64_t{64} << 30;
    /** Fraction of pages allocated from the local zone (0.2 in §IV). */
    double localFraction = 0.2;
    /** OS page-fault handling latency (kernel entry + PT update). */
    Tick faultLatency = 1500 * kNanosecond;
    /**
     * Scatter FAM-zone allocations across the zone (a long-running
     * OS's free lists are fragmented). Scattered NPA pages make the
     * system-level (FAM) page table sparse, so STU walks really take
     * multiple steps — the effect Fig. 1(b) is about.
     */
    bool scatterFamZone = true;
};

/**
 * Per-node OS memory manager: first-touch allocation across the two
 * zones plus the node page table.
 */
class NodeOs : public Component
{
  public:
    NodeOs(Simulation& sim, const std::string& name,
           const NodeOsParams& params, FamMode mode, NodeId node,
           MemoryBroker* broker);

    /**
     * Handle a page fault for @p va_page: allocates an NPA page,
     * installs the mapping and returns the latency to charge
     * (including the broker round trip in Exposed mode).
     */
    Tick handleFault(std::uint64_t va_page);

    /**
     * Batched prefault: for every not-yet-mapped page of @p va_pages
     * (in order), run the normal first-touch fault path. Counter and
     * allocation-cursor side effects are bit-identical to calling
     * `if (!pageTable().lookup(p)) handleFault(p)` per page — only the
     * per-page double radix descend is fused and cached
     * (HierarchicalPageTable::BulkMapper), which is what makes
     * scenario construction cheap.
     */
    void prefaultPages(const std::vector<std::uint64_t>& va_pages);

    /** The node page table (VA page -> NPA page). */
    [[nodiscard]] HierarchicalPageTable& pageTable() { return table_; }

    /** Map a specific VA page to a specific NPA page (shared memory). */
    void mapExplicit(std::uint64_t va_page, std::uint64_t npa_page,
                     Perms perms);

    /** Allocate an NPA page in the FAM zone without mapping a VA. */
    std::uint64_t allocFamZonePage();

    /** First NPA byte of the FAM zone. */
    [[nodiscard]] std::uint64_t famZoneBase() const
    {
        return params_.localBytes;
    }

    /** Whether @p addr falls in the local-DRAM zone. */
    [[nodiscard]] bool
    isLocal(NPAddr addr) const
    {
        return addr.value() < params_.localBytes &&
               (addr.pageNumber() & kFamDirectPageBit) == 0;
    }

    /** Whether @p addr is an E-FAM direct FAM mapping. */
    [[nodiscard]] static bool
    isFamDirect(NPAddr addr)
    {
        return (addr.pageNumber() & kFamDirectPageBit) != 0;
    }

    /** Extract the FAM address from an E-FAM direct NPA. */
    [[nodiscard]] static FamAddr
    famDirectAddr(NPAddr addr)
    {
        return FamAddr((addr.pageNumber() & ~kFamDirectPageBit) *
                           kPageSize +
                       addr.pageOffset());
    }

    [[nodiscard]] const NodeOsParams& params() const { return params_; }
    [[nodiscard]] FamMode mode() const { return mode_; }
    [[nodiscard]] NodeId nodeId() const { return node_; }

    /** Pages allocated so far in each zone (for tests). */
    [[nodiscard]] std::uint64_t localPagesAllocated() const
    {
        return localCursor_;
    }
    [[nodiscard]] std::uint64_t famPagesAllocated() const
    {
        return famCursor_;
    }

    /** NPA page numbers handed out in the FAM zone (for prefaulting). */
    [[nodiscard]] const std::vector<std::uint64_t>&
    famZonePages() const
    {
        return famZonePages_;
    }

  private:
    /**
     * The fault-time allocation shared by handleFault and
     * prefaultPages: counts the fault, allocates the NPA page (broker
     * round trip in Exposed mode, adding its latency to @p latency)
     * — one copy so the two paths can never drift.
     */
    std::uint64_t faultAllocate(Tick& latency);

    /** Pick a zone for the next allocation and bump its cursor. */
    std::uint64_t allocValuePage(bool& out_is_fam);
    /** Allocator for page-table pages (follows the same zone policy). */
    std::uint64_t allocTablePage();

    NodeOsParams params_;
    FamMode mode_;
    NodeId node_;
    MemoryBroker* broker_;

    std::uint64_t localCursor_ = 0;  //!< next free local page index
    std::uint64_t famCursor_ = 0;    //!< next free FAM-zone page index
    std::uint64_t allocCount_ = 0;   //!< total allocations (for ratio)
    std::uint64_t localCount_ = 0;   //!< local allocations (for ratio)
    std::uint64_t famStride_ = 1;    //!< scatter stride (coprime)
    std::vector<std::uint64_t> famZonePages_;

    // Note: the counters are declared before table_ because the page
    // table allocates its root page (through allocTablePage, which
    // updates these counters) during construction.
    Counter& faults_;
    Counter& localPages_;
    Counter& famPages_;

    HierarchicalPageTable table_;
};

} // namespace famsim

#endif // FAMSIM_VM_NODE_OS_HH
