#include "workload/stream_gen.hh"

#include <cmath>
#include <unordered_set>

#include "sim/logging.hh"

namespace famsim {

namespace {

/**
 * Integer threshold t such that, for a raw 32-bit draw r,
 *   r < t  <=>  (r / 2^32) < p
 * exactly: both r * 2^-32 and p are exact doubles, and p * 2^32 is an
 * exact double (power-of-two scaling), so the real comparison reduces
 * to r < ceil(p * 2^32). Turns every chance(p) on the hot path into
 * one compare against a precomputed constant while preserving the
 * result of every historical draw bit-for-bit.
 */
std::uint64_t
chanceThreshold(double p)
{
    if (p <= 0.0)
        return 0;
    if (p >= 1.0)
        return std::uint64_t{1} << 32;
    return static_cast<std::uint64_t>(std::ceil(p * 4294967296.0));
}

} // namespace

StreamGen::StreamGen(const StreamProfile& profile, std::uint64_t va_base,
                     std::uint64_t seed, std::uint64_t stream)
    : profile_(profile),
      vaBase_(va_base & ~(kPageSize - 1)),
      rng_(seed ^ 0x9e3779b97f4a7c15ULL, stream + 7),
      numPages_(profile.footprintBytes / kPageSize)
{
    FAMSIM_ASSERT(numPages_ > 0, "workload footprint below one page");
    FAMSIM_ASSERT(profile.vaScatterFactor >= 1,
                  "vaScatterFactor must be >= 1");
    vaSpanPages_ = numPages_ * profile.vaScatterFactor;
    if (profile.vaScatterFactor > 1) {
        vaStride_ = 999983;
        auto gcd = [](std::uint64_t a, std::uint64_t b) {
            while (b) {
                std::uint64_t t = a % b;
                a = b;
                b = t;
            }
            return a;
        };
        while (gcd(vaStride_, vaSpanPages_) != 1)
            ++vaStride_;
    }
    FAMSIM_ASSERT(profile.memOpFraction > 0.0 &&
                      profile.memOpFraction <= 1.0,
                  "memOpFraction must be in (0,1]");
    FAMSIM_ASSERT(profile.hot1Prob + profile.hot2Prob <= 1.0,
                  "hot tier probabilities exceed 1: ", profile.hot1Prob,
                  " + ", profile.hot2Prob);

    if (profile.vaScatterFactor > 1) {
        // Tabulate the scatter permutation once so the per-op address
        // formation needs no 64-bit modulo.
        scatter_.resize(numPages_);
        for (std::uint64_t i = 0; i < numPages_; ++i)
            scatter_[i] = (i * vaStride_) % vaSpanPages_;
    }

    // Hot-path constants (see header comment on draw-order
    // preservation). The gap denominator reproduces the old per-call
    // std::log(1.0 - std::min(p, 0.999999)) exactly; all thresholds
    // reproduce chance()/uniform() comparisons exactly.
    gapLogDenom_ =
        std::log(1.0 - std::min(profile.memOpFraction, 0.999999));
    reuseThresh_ = chanceThreshold(profile.reuseProb);
    writeThresh_ = chanceThreshold(profile.writeFraction);
    double continue_prob = profile.seqRunLen <= 1.0
                               ? 0.0
                               : 1.0 - 1.0 / profile.seqRunLen;
    continueThresh_ = chanceThreshold(continue_prob);
    seqPageThresh_ = chanceThreshold(profile.seqPageProb);
    blockingThresh_ = chanceThreshold(profile.blockingFraction);
    hot1Thresh_ = chanceThreshold(profile.hot1Prob);
    hot12Thresh_ = chanceThreshold(profile.hot1Prob + profile.hot2Prob);
    if (numPages_ <= 0xffffffffULL)
        pagesBound_ = FastBound32(static_cast<std::uint32_t>(numPages_));
    recent_.reserve(kRingCapacity);

    // Scattered hot tiers (hot pages are not contiguous in VA). The
    // tier selection uses a *stream-independent* RNG so that all
    // threads (cores) of the same benchmark share the same hot pages,
    // as threads of one application do.
    Rng page_rng(seed ^ 0x9e3779b97f4a7c15ULL, 42);
    std::unordered_set<std::uint64_t> chosen;
    std::uint64_t tier1 = std::min(profile.hot1Pages, numPages_);
    while (chosen.size() < tier1)
        chosen.insert(page_rng.below64(numPages_));
    // lint-allow(unordered-iteration): order is a pure function of the seeded insertion sequence on a fixed stdlib; sorting would re-index the hot tiers and invalidate the golden corpus
    hot1Pages_.assign(chosen.begin(), chosen.end());
    std::uint64_t tier2 =
        std::min(profile.hot2Pages, numPages_ - tier1);
    std::unordered_set<std::uint64_t> chosen2;
    while (chosen2.size() < tier2) {
        std::uint64_t page = page_rng.below64(numPages_);
        if (!chosen.count(page))
            chosen2.insert(page);
    }
    // lint-allow(unordered-iteration): order is a pure function of the seeded insertion sequence on a fixed stdlib; sorting would re-index the hot tiers and invalidate the golden corpus
    hot2Pages_.assign(chosen2.begin(), chosen2.end());
    if (!hot1Pages_.empty())
        hot1Bound_ =
            FastBound32(static_cast<std::uint32_t>(hot1Pages_.size()));
    if (!hot2Pages_.empty())
        hot2Bound_ =
            FastBound32(static_cast<std::uint32_t>(hot2Pages_.size()));

    curPage_ = rng_.below64(numPages_);
    curBlock_ = rng_.below(static_cast<std::uint32_t>(kPageSize /
                                                      kBlockSize));
}

MemOpDesc
StreamGen::next()
{
    // Every branch below consumes the PCG stream exactly like the
    // original floating-point formulation (same draws in the same
    // order, short-circuits included); the precomputed thresholds and
    // FastBound32 samplers only remove the per-op divisions and one of
    // the two log() calls. The golden stream-hash tests pin this.
    MemOpDesc op;

    // Geometric gap with success probability = memOpFraction.
    double u = rng_.uniform();
    op.gap = static_cast<unsigned>(std::log(1.0 - u) / gapLogDenom_);
    if (op.gap > 1000)
        op.gap = 1000; // bound pathological tails

    constexpr std::uint64_t blocks_per_page = kPageSize / kBlockSize;

    // Short-term temporal locality: re-access a recent block. These
    // accesses hit the L1 and calibrate the LLC MPKI.
    if (!recent_.empty() && rng_.next() < reuseThresh_) {
        std::uint64_t idx =
            recent_.size() == kRingCapacity
                ? ringBound_.sample(rng_)
                : rng_.below(static_cast<std::uint32_t>(recent_.size()));
        std::uint64_t block = recent_[idx];
        op.vaddr = block + rng_.below(8) * 8;
        op.write = rng_.next() < writeThresh_;
        op.blocking = false; // cache hits never stall the window
        return op;
    }

    if (runActive_ && rng_.next() < continueThresh_) {
        // Continue the sequential run; runs may stream across pages.
        ++curBlock_;
        if (curBlock_ >= blocks_per_page) {
            curBlock_ = 0;
            if (++curPage_ == numPages_)
                curPage_ = 0;
        }
    } else {
        runActive_ = true;
        std::uint32_t tier = rng_.next();
        if (!hot1Pages_.empty() && tier < hot1Thresh_) {
            curPage_ = hot1Pages_[hot1Bound_.sample(rng_)];
        } else if (!hot2Pages_.empty() && tier < hot12Thresh_) {
            curPage_ = hot2Pages_[hot2Bound_.sample(rng_)];
        } else if (rng_.next() < seqPageThresh_) {
            if (++curPage_ == numPages_)
                curPage_ = 0;
        } else {
            curPage_ = numPages_ <= 0xffffffffULL
                           ? pagesBound_.sample(rng_)
                           : rng_.below64(numPages_);
        }
        curBlock_ = rng_.below(static_cast<std::uint32_t>(blocks_per_page));
    }

    std::uint64_t block_addr =
        vaBase_ + vaPageOf(curPage_) * kPageSize + curBlock_ * kBlockSize;
    op.vaddr = block_addr + rng_.below(8) * 8;
    op.write = rng_.next() < writeThresh_;
    op.blocking = !op.write && rng_.next() < blockingThresh_;

    // Remember the block for short-term reuse.
    if (recent_.size() < kRingCapacity) {
        recent_.push_back(block_addr);
    } else {
        recent_[recentNext_] = block_addr;
        if (++recentNext_ == kRingCapacity)
            recentNext_ = 0;
    }
    return op;
}

std::uint64_t
StreamGen::vaPageOf(std::uint64_t logical) const
{
    if (profile_.vaScatterFactor == 1)
        return logical;
    return scatter_[logical];
}

std::vector<std::uint64_t>
StreamGen::footprintPages() const
{
    std::vector<std::uint64_t> pages;
    pages.reserve(numPages_);
    std::uint64_t base_page = vaBase_ / kPageSize;
    for (std::uint64_t i = 0; i < numPages_; ++i)
        pages.push_back(base_page + vaPageOf(i));
    return pages;
}

namespace profiles {
namespace {

StreamProfile
make(const char* name, const char* suite, double mem_frac,
     std::uint64_t footprint_mb, std::uint64_t hot1_pages,
     double hot1_prob, std::uint64_t hot2_pages, double hot2_prob,
     double seq_run, double seq_page, double reuse, double write_frac,
     double blocking_frac, unsigned va_scatter, double mpki,
     bool at_sensitive)
{
    StreamProfile p;
    p.name = name;
    p.suite = suite;
    p.memOpFraction = mem_frac;
    p.footprintBytes = footprint_mb << 20;
    p.hot1Pages = hot1_pages;
    p.hot1Prob = hot1_prob;
    p.hot2Pages = hot2_pages;
    p.hot2Prob = hot2_prob;
    p.seqRunLen = seq_run;
    p.seqPageProb = seq_page;
    p.reuseProb = reuse;
    p.writeFraction = write_frac;
    p.blockingFraction = blocking_frac;
    p.vaScatterFactor = va_scatter;
    p.paperMpki = mpki;
    p.atSensitive = at_sensitive;
    return p;
}

} // namespace

std::vector<StreamProfile>
all()
{
    // Parameters are calibrated to Table III MPKI (via reuseProb ~
    // 1 - MPKI / (1000 * memOpFraction)) and to each benchmark's
    // qualitative class: pointer-chasing (mcf, astar), huge random
    // working sets (canl, cactus, ccsv, sssp, dc), streaming/stencil
    // (bc, pf, lu, mg, sp — the AT-insensitive set). The hot-set size
    // (in pages) vs the 1024-entry STU and hot-access probability set
    // the system-level translation hit rates of Fig. 10.
    return {
        //    name     suite     memF  MB   h1Pg h1p   h2Pg  h2p   sRun  sPage reuse  wr    blk   vaS mpki sens
        make("mcf",    "SPEC",   0.35, 48,  512, 0.68, 1400, 0.28, 2.0,  0.20, 0.759, 0.25, 0.75, 32, 73, true),
        make("cactus", "SPEC",   0.30, 64,  400, 0.45, 1800, 0.30, 3.0,  0.20, 0.800, 0.30, 0.60, 32, 60, true),
        make("astar",  "SPEC",   0.30, 16,  256, 0.88, 768,  0.10, 4.0,  0.30, 0.964, 0.20, 0.45, 1, 9, true),
        make("frqm",   "PARSEC", 0.30, 24,  256, 0.85, 1024, 0.12, 3.0,  0.30, 0.928, 0.25, 0.30, 2, 16, true),
        make("canl",   "PARSEC", 0.35, 96,  400, 0.38, 2400, 0.22, 1.5,  0.05, 0.870, 0.30, 0.80, 64, 57, true),
        make("bc",     "GAP",    0.35, 64,  256, 0.80, 1024, 0.16, 8.0,  0.85, 0.400, 0.15, 0.25, 1, 113, false),
        make("cc",     "GAP",    0.35, 48,  512, 0.68, 1536, 0.25, 2.0,  0.30, 0.820, 0.15, 0.55, 8, 56, true),
        make("ccsv",   "GAP",    0.35, 80,  400, 0.42, 2600, 0.24, 1.5,  0.10, 0.687, 0.20, 0.75, 64, 130, true),
        make("sssp",   "GAP",    0.40, 112, 400, 0.35, 3000, 0.24, 1.2,  0.05, 0.734, 0.20, 0.85, 64, 144, true),
        make("pf",     "Mantevo",0.30, 32,  384, 0.72, 1024, 0.22, 8.0,  0.70, 0.818, 0.25, 0.25, 1, 41, true),
        make("dc",     "NAS",    0.30, 64,  512, 0.58, 2048, 0.30, 2.0,  0.20, 0.837, 0.35, 0.55, 16, 49, true),
        make("lu",     "NAS",    0.30, 40,  192, 0.80, 512,  0.16, 16.0, 0.95, 0.840, 0.30, 0.10, 1, 30, false),
        make("mg",     "NAS",    0.35, 64,  256, 0.72, 768,  0.22, 24.0, 0.95, 0.590, 0.30, 0.10, 1, 99, false),
        make("sp",     "NAS",    0.35, 56,  256, 0.72, 768,  0.22, 24.0, 0.95, 0.390, 0.35, 0.10, 1, 141, false),
    };
}

StreamProfile
byName(const std::string& name)
{
    for (const auto& p : all()) {
        if (p.name == name)
            return p;
    }
    FAMSIM_FATAL("unknown benchmark profile '", name, "'");
}

StreamProfile
uniformTest(std::uint64_t footprint_bytes)
{
    StreamProfile p;
    p.name = "uniform";
    p.suite = "test";
    p.memOpFraction = 0.5;
    p.footprintBytes = footprint_bytes;
    p.hot1Pages = 0;
    p.hot1Prob = 0.0;
    p.hot2Pages = 0;
    p.hot2Prob = 0.0;
    p.reuseProb = 0.0;
    p.seqRunLen = 1.0;
    p.seqPageProb = 0.0;
    p.writeFraction = 0.3;
    p.blockingFraction = 0.2;
    p.paperMpki = 0.0;
    p.atSensitive = true;
    return p;
}

} // namespace profiles
} // namespace famsim
