#include "workload/trace.hh"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <filesystem>
#include <fstream>
#include <limits>
#include <set>
#include <sstream>

#include "sim/logging.hh"

#if FAMSIM_HAVE_ZLIB
#include <zlib.h>
#endif

namespace famsim {
namespace {

// Binary layout (DESIGN.md "Trace format"): 11-byte magic prefix plus
// one version character, so future layouts stay distinguishable.
constexpr char kMagicPrefix[11] = {'F', 'A', 'M', 'S', 'I', 'M',
                                   'T', 'R', 'A', 'C', 'E'};
constexpr std::size_t kMagicSize = sizeof(kMagicPrefix) + 1;
constexpr std::size_t kV1HeaderSize = kMagicSize + 8;
constexpr std::size_t kV2HeaderSize = kMagicSize + 16;
constexpr std::size_t kRecordSize = 13; // u64 vaddr + u32 gap + u8 flags

constexpr std::uint8_t kFlagWrite = 1;
constexpr std::uint8_t kFlagBlocking = 2;
constexpr std::uint8_t kKnownFlags = kFlagWrite | kFlagBlocking;

void
encodeRecord(const MemOpDesc& op, unsigned char* out)
{
    std::uint64_t vaddr = op.vaddr;
    std::uint32_t gap = op.gap;
    std::uint8_t flags =
        static_cast<std::uint8_t>((op.write ? kFlagWrite : 0) |
                                  (op.blocking ? kFlagBlocking : 0));
    std::memcpy(out, &vaddr, 8);
    std::memcpy(out + 8, &gap, 4);
    out[12] = flags;
}

MemOpDesc
decodeRecord(const unsigned char* in, const std::string& path,
             std::uint64_t index)
{
    MemOpDesc op;
    std::uint64_t vaddr = 0;
    std::uint32_t gap = 0;
    std::memcpy(&vaddr, in, 8);
    std::memcpy(&gap, in + 8, 4);
    std::uint8_t flags = in[12];
    if ((flags & ~kKnownFlags) != 0) {
        FAMSIM_FATAL("trace '", path, "' record ", index,
                     " has unknown flag bits ", unsigned(flags),
                     " (corrupt file?)");
    }
    op.vaddr = vaddr;
    op.gap = gap;
    op.write = (flags & kFlagWrite) != 0;
    op.blocking = (flags & kFlagBlocking) != 0;
    return op;
}

void
writeU64(std::ofstream& out, std::uint64_t value)
{
    out.write(reinterpret_cast<const char*>(&value), sizeof(value));
}

/** Format one op as a text-trace line. */
std::string
textLine(const MemOpDesc& op)
{
    std::ostringstream os;
    os << "0x" << std::hex << op.vaddr << std::dec << " " << op.gap
       << " " << (op.write ? 'W' : 'R');
    if (op.blocking)
        os << " B";
    os << "\n";
    return os.str();
}

/** Parse an unsigned integer token (hex with 0x prefix or decimal). */
bool
parseU64Token(const std::string& token, std::uint64_t& out)
{
    if (token.empty())
        return false;
    errno = 0;
    char* end = nullptr;
    unsigned long long v = std::strtoull(token.c_str(), &end, 0);
    if (errno == ERANGE || end != token.c_str() + token.size())
        return false;
    out = v;
    return true;
}

} // namespace

TraceFormat
traceFormatForPath(const std::string& path)
{
    auto ends_with = [&](const char* suffix) {
        std::size_t n = std::strlen(suffix);
        return path.size() >= n &&
               path.compare(path.size() - n, n, suffix) == 0;
    };
    if (ends_with(".gz"))
        return TraceFormat::Gzip;
    if (ends_with(".txt"))
        return TraceFormat::Text;
    return TraceFormat::Binary;
}

bool
traceGzipSupported()
{
#if FAMSIM_HAVE_ZLIB
    return true;
#else
    return false;
#endif
}

// ===================================================== TraceWriter ==

/**
 * Backend interface: every write is checked so a failed or partial
 * write (disk full, I/O error) fatals instead of leaving a silently
 * truncated file behind a "recorded N ops" success message.
 */
struct TraceWriter::Impl {
    virtual ~Impl() = default;
    virtual void footprint(const std::vector<std::uint64_t>& pages) = 0;
    virtual void append(const MemOpDesc& op) = 0;
    virtual void close(std::uint64_t count) = 0;
};

namespace {

class BinaryWriterImpl final : public TraceWriter::Impl
{
  public:
    explicit BinaryWriterImpl(const std::string& path)
        : path_(path), out_(path, std::ios::binary | std::ios::trunc)
    {
        if (!out_) {
            FAMSIM_FATAL("cannot open trace file '", path,
                         "' for writing");
        }
        writeHeader(0, 0);
        check("header write");
    }

    void
    footprint(const std::vector<std::uint64_t>& pages) override
    {
        footprintCount_ = pages.size();
        for (std::uint64_t page : pages)
            writeU64(out_, page);
        check("footprint write");
    }

    void
    append(const MemOpDesc& op) override
    {
        unsigned char rec[kRecordSize];
        encodeRecord(op, rec);
        out_.write(reinterpret_cast<const char*>(rec), sizeof(rec));
        check("record write");
    }

    void
    close(std::uint64_t count) override
    {
        out_.seekp(0);
        writeHeader(count, footprintCount_);
        out_.flush();
        check("close");
        out_.close();
        check("close");
    }

  private:
    void
    writeHeader(std::uint64_t count, std::uint64_t footprint_count)
    {
        out_.write(kMagicPrefix, sizeof(kMagicPrefix));
        out_.put('2');
        writeU64(out_, count);
        writeU64(out_, footprint_count);
    }

    void
    check(const char* what)
    {
        if (!out_) {
            FAMSIM_FATAL("trace ", what, " to '", path_,
                         "' failed (disk full?)");
        }
    }

    std::string path_;
    std::ofstream out_;
    std::uint64_t footprintCount_ = 0;
};

class TextWriterImpl final : public TraceWriter::Impl
{
  public:
    explicit TextWriterImpl(const std::string& path)
        : path_(path), out_(path, std::ios::trunc)
    {
        if (!out_) {
            FAMSIM_FATAL("cannot open trace file '", path,
                         "' for writing");
        }
        out_ << "# famsim-trace text v1\n";
        check("header write");
    }

    void
    footprint(const std::vector<std::uint64_t>& pages) override
    {
        for (std::uint64_t page : pages)
            out_ << "F 0x" << std::hex << page << std::dec << "\n";
        check("footprint write");
    }

    void
    append(const MemOpDesc& op) override
    {
        out_ << textLine(op);
        check("record write");
    }

    void
    close(std::uint64_t) override
    {
        out_.flush();
        check("close");
        out_.close();
        check("close");
    }

  private:
    void
    check(const char* what)
    {
        if (!out_) {
            FAMSIM_FATAL("trace ", what, " to '", path_,
                         "' failed (disk full?)");
        }
    }

    std::string path_;
    std::ofstream out_;
};

#if FAMSIM_HAVE_ZLIB

/**
 * Owning wrapper for a zlib gzFile. The gzip reader/writer
 * constructors can FATAL after gzopen (bad magic, truncation, ...),
 * and under ScopedThrowOnError that throw skips the half-constructed
 * object's destructor — but member destructors still run, so holding
 * the handle here instead of in a raw gzFile closes it on every path.
 */
struct GzHandle
{
    gzFile gz = nullptr;

    GzHandle() = default;
    GzHandle(const GzHandle&) = delete;
    GzHandle& operator=(const GzHandle&) = delete;
    ~GzHandle() { close(); }

    int
    close()
    {
        if (gz == nullptr)
            return Z_OK;
        int rc = gzclose(gz);
        gz = nullptr;
        return rc;
    }
};

/**
 * Gzip cannot seek back to patch the record count into the header, so
 * this backend buffers the records and emits the whole stream at
 * close() — the writer-side memory cost of a compressed capture.
 */
class GzipWriterImpl final : public TraceWriter::Impl
{
  public:
    explicit GzipWriterImpl(const std::string& path) : path_(path)
    {
        gz_.gz = gzopen(path.c_str(), "wb");
        if (gz_.gz == nullptr) {
            FAMSIM_FATAL("cannot open trace file '", path,
                         "' for writing");
        }
    }

    void
    footprint(const std::vector<std::uint64_t>& pages) override
    {
        footprint_ = pages;
    }

    void
    append(const MemOpDesc& op) override
    {
        records_.resize(records_.size() + kRecordSize);
        encodeRecord(op, records_.data() + records_.size() - kRecordSize);
    }

    void
    close(std::uint64_t count) override
    {
        unsigned char header[kV2HeaderSize];
        std::memcpy(header, kMagicPrefix, sizeof(kMagicPrefix));
        header[sizeof(kMagicPrefix)] = '2';
        std::uint64_t fp_count = footprint_.size();
        std::memcpy(header + kMagicSize, &count, 8);
        std::memcpy(header + kMagicSize + 8, &fp_count, 8);
        write(header, sizeof(header));
        if (!footprint_.empty()) {
            write(footprint_.data(),
                  footprint_.size() * sizeof(std::uint64_t));
        }
        if (!records_.empty())
            write(records_.data(), records_.size());
        int rc = gz_.close();
        if (rc != Z_OK) {
            FAMSIM_FATAL("trace close of '", path_, "' failed (gzip rc ",
                         rc, ", disk full?)");
        }
    }

  private:
    void
    write(const void* data, std::size_t bytes)
    {
        // gzwrite takes an unsigned chunk length; split giant buffers.
        const auto* p = static_cast<const unsigned char*>(data);
        while (bytes > 0) {
            unsigned chunk = static_cast<unsigned>(
                std::min<std::size_t>(bytes, 1u << 30));
            if (gzwrite(gz_.gz, p, chunk) != static_cast<int>(chunk)) {
                FAMSIM_FATAL("trace write to '", path_,
                             "' failed (disk full?)");
            }
            p += chunk;
            bytes -= chunk;
        }
    }

    std::string path_;
    GzHandle gz_;
    std::vector<std::uint64_t> footprint_;
    std::vector<unsigned char> records_;
};

#endif // FAMSIM_HAVE_ZLIB

std::unique_ptr<TraceWriter::Impl>
makeWriterImpl(const std::string& path, TraceFormat format)
{
    switch (format) {
      case TraceFormat::Binary:
        return std::make_unique<BinaryWriterImpl>(path);
      case TraceFormat::Text:
        return std::make_unique<TextWriterImpl>(path);
      case TraceFormat::Gzip:
#if FAMSIM_HAVE_ZLIB
        return std::make_unique<GzipWriterImpl>(path);
#else
        FAMSIM_FATAL("cannot write gzip trace '", path,
                     "': famsim was built without zlib");
#endif
    }
    FAMSIM_PANIC("unreachable trace format");
}

} // namespace

TraceWriter::TraceWriter(const std::string& path)
    : TraceWriter(path, traceFormatForPath(path))
{
}

TraceWriter::TraceWriter(const std::string& path, TraceFormat format)
    : impl_(makeWriterImpl(path, format)), format_(format)
{
}

TraceWriter::~TraceWriter()
{
    // close() fatals on I/O errors; when an earlier write already
    // fataled (throwing under ScopedThrowOnError) a second fatal
    // during unwinding would terminate, so skip the implicit close.
    if (std::uncaught_exceptions() == 0)
        close();
}

void
TraceWriter::setFootprint(const std::vector<std::uint64_t>& pages)
{
    FAMSIM_ASSERT(!closed_, "footprint on a closed trace");
    FAMSIM_ASSERT(!appended_,
                  "trace footprint must be set before the first record");
    impl_->footprint(pages);
}

void
TraceWriter::append(const MemOpDesc& op)
{
    FAMSIM_ASSERT(!closed_, "append to a closed trace");
    appended_ = true;
    impl_->append(op);
    ++count_;
}

std::vector<MemOpDesc>
TraceWriter::record(WorkloadGen& source, std::uint64_t count)
{
    std::vector<MemOpDesc> ops;
    ops.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
        ops.push_back(source.next());
        append(ops.back());
    }
    return ops;
}

void
TraceWriter::close()
{
    if (closed_)
        return;
    closed_ = true;
    impl_->close(count_);
}

// ===================================================== TraceReader ==

TraceReader::TraceReader(std::string path, TraceFormat format)
    : path_(std::move(path)), format_(format)
{
    buf_.resize(kChunkRecords);
}

MemOpDesc
TraceReader::next()
{
    if (pos_ == len_) {
        len_ = refill(buf_);
        if (len_ == 0) {
            rewindPayload();
            len_ = refill(buf_);
            FAMSIM_ASSERT(len_ > 0,
                          "trace '", path_, "' rewind produced no records");
        }
        pos_ = 0;
    }
    return buf_[pos_++];
}

namespace {

/** Sorted-unique footprint for formats that don't carry one. */
std::vector<std::uint64_t>
derivedFootprint(const std::set<std::uint64_t>& pages)
{
    return {pages.begin(), pages.end()};
}

class BinaryReaderImpl final : public TraceReader
{
  public:
    explicit BinaryReaderImpl(const std::string& path)
        : TraceReader(path, TraceFormat::Binary),
          in_(path, std::ios::binary)
    {
        if (!in_)
            FAMSIM_FATAL("cannot open trace file '", path, "'");
        char magic[kMagicSize];
        in_.read(magic, sizeof(magic));
        if (!in_ ||
            std::memcmp(magic, kMagicPrefix, sizeof(kMagicPrefix)) != 0)
            FAMSIM_FATAL("'", path, "' is not a famsim trace");
        const char version = magic[kMagicSize - 1];
        std::uint64_t footprint_count = 0;
        if (version == '2') {
            in_.read(reinterpret_cast<char*>(&count_), 8);
            in_.read(reinterpret_cast<char*>(&footprint_count), 8);
        } else if (version == '1') {
            in_.read(reinterpret_cast<char*>(&count_), 8);
        } else {
            FAMSIM_FATAL("trace '", path, "' has unsupported version '",
                         std::string(1, version), "' (this famsim reads "
                         "versions 1 and 2)");
        }
        if (!in_)
            FAMSIM_FATAL("trace '", path, "' truncated in the header");

        // The header count is a claim, not a fact: a writer that died
        // before close() leaves the placeholder (0) with records on
        // disk, and a corrupted or concatenated file carries trailing
        // bytes. Validate the payload size exactly.
        std::error_code ec;
        const std::uint64_t file_size =
            std::filesystem::file_size(path, ec);
        if (ec)
            FAMSIM_FATAL("cannot stat trace '", path, "': ", ec.message());
        const std::uint64_t header_size =
            version == '2' ? kV2HeaderSize : kV1HeaderSize;
        const std::uint64_t expected =
            header_size + footprint_count * 8 + count_ * kRecordSize;
        if (file_size < expected) {
            FAMSIM_FATAL("trace '", path, "' truncated: header claims ",
                         count_, " records (", expected, " bytes) but the "
                         "file holds ", file_size, " bytes");
        }
        if (file_size > expected) {
            FAMSIM_FATAL("trace '", path, "' has ", file_size - expected,
                         " trailing bytes beyond the ", count_,
                         " records its header claims (stale header from "
                         "a crashed writer, or a corrupt file)");
        }
        if (count_ == 0)
            FAMSIM_FATAL("trace '", path, "' contains no records");

        payloadStart_ = header_size + footprint_count * 8;
        if (footprint_count > 0) {
            footprint_.resize(footprint_count);
            in_.read(reinterpret_cast<char*>(footprint_.data()),
                     static_cast<std::streamsize>(footprint_count * 8));
            if (!in_)
                FAMSIM_FATAL("trace '", path,
                             "' truncated in the footprint");
        } else {
            // v1 (and a v2 written without setFootprint) carries no
            // footprint section: derive it with one streaming pass
            // (chunk buffer, nothing kept resident).
            std::set<std::uint64_t> pages;
            std::vector<MemOpDesc> chunk(kChunkRecords);
            remaining_ = count_;
            for (std::size_t n = 0; (n = refill(chunk)) > 0;) {
                for (std::size_t i = 0; i < n; ++i)
                    pages.insert(chunk[i].vaddr / kPageSize);
            }
            footprint_ = derivedFootprint(pages);
            in_.clear();
            in_.seekg(static_cast<std::streamoff>(payloadStart_));
        }
        remaining_ = count_;
    }

  protected:
    std::size_t
    refill(std::vector<MemOpDesc>& buf) override
    {
        const std::size_t want =
            static_cast<std::size_t>(std::min<std::uint64_t>(
                remaining_, buf.size()));
        if (want == 0)
            return 0;
        raw_.resize(want * kRecordSize);
        in_.read(reinterpret_cast<char*>(raw_.data()),
                 static_cast<std::streamsize>(raw_.size()));
        if (static_cast<std::size_t>(in_.gcount()) != raw_.size()) {
            FAMSIM_FATAL("trace '", path_, "' truncated at record ",
                         count_ - remaining_);
        }
        const std::uint64_t base = count_ - remaining_;
        for (std::size_t i = 0; i < want; ++i) {
            buf[i] = decodeRecord(raw_.data() + i * kRecordSize, path_,
                                  base + i);
        }
        remaining_ -= want;
        return want;
    }

    void
    rewindPayload() override
    {
        in_.clear();
        in_.seekg(static_cast<std::streamoff>(payloadStart_));
        if (!in_)
            FAMSIM_FATAL("trace '", path_, "' rewind failed");
        remaining_ = count_;
    }

  private:
    std::ifstream in_;
    std::uint64_t payloadStart_ = 0;
    std::uint64_t remaining_ = 0;
    std::vector<unsigned char> raw_;
};

class TextReaderImpl final : public TraceReader
{
  public:
    explicit TextReaderImpl(const std::string& path)
        : TraceReader(path, TraceFormat::Text), in_(path)
    {
        if (!in_)
            FAMSIM_FATAL("cannot open trace file '", path, "'");

        // Validation pass: parse every line once, counting records and
        // collecting the footprint (explicit F lines in file order, or
        // derived from the ops when absent), then rewind for replay.
        std::set<std::uint64_t> derived;
        MemOpDesc op;
        bool is_footprint = false;
        std::uint64_t page = 0;
        std::string line;
        while (std::getline(in_, line)) {
            ++lineNo_;
            if (!parseLine(line, op, is_footprint, page))
                continue; // comment / blank
            if (is_footprint)
                footprint_.push_back(page);
            else {
                ++count_;
                derived.insert(op.vaddr / kPageSize);
            }
        }
        if (count_ == 0)
            FAMSIM_FATAL("trace '", path, "' contains no records");
        if (footprint_.empty())
            footprint_ = derivedFootprint(derived);
        rewindPayload();
    }

  protected:
    std::size_t
    refill(std::vector<MemOpDesc>& buf) override
    {
        std::size_t n = 0;
        std::string line;
        MemOpDesc op;
        bool is_footprint = false;
        std::uint64_t page = 0;
        while (n < buf.size() && std::getline(in_, line)) {
            ++lineNo_;
            if (!parseLine(line, op, is_footprint, page) || is_footprint)
                continue;
            buf[n++] = op;
        }
        return n;
    }

    void
    rewindPayload() override
    {
        in_.clear();
        in_.seekg(0);
        if (!in_)
            FAMSIM_FATAL("trace '", path_, "' rewind failed");
        lineNo_ = 0;
    }

  private:
    /**
     * Grammar (DESIGN.md "Trace format"): blank lines and lines
     * starting with '#' are ignored; `F <page>` declares a footprint
     * page; `<vaddr> <gap> R|W [B]` is one record. Numbers are
     * decimal or 0x-prefixed hex.
     */
    bool
    parseLine(const std::string& line, MemOpDesc& op,
              bool& is_footprint, std::uint64_t& page)
    {
        std::istringstream is(line);
        std::string tok[4];
        int n = 0;
        while (n < 4 && (is >> tok[n]))
            ++n;
        std::string extra;
        if (n == 4 && (is >> extra))
            bad("trailing tokens");
        if (n == 0 || tok[0][0] == '#')
            return false;
        if (tok[0] == "F") {
            if (n != 2 || !parseU64Token(tok[1], page))
                bad("footprint line must be 'F <page>'");
            is_footprint = true;
            return true;
        }
        is_footprint = false;
        std::uint64_t gap = 0;
        if (n < 3 || !parseU64Token(tok[0], op.vaddr) ||
            !parseU64Token(tok[1], gap) ||
            gap > std::numeric_limits<std::uint32_t>::max())
            bad("record line must be '<vaddr> <gap> R|W [B]'");
        op.gap = static_cast<unsigned>(gap);
        if (tok[2] == "R")
            op.write = false;
        else if (tok[2] == "W")
            op.write = true;
        else
            bad("op must be R or W");
        op.blocking = false;
        if (n == 4) {
            if (tok[3] != "B")
                bad("trailing token must be B");
            op.blocking = true;
        }
        return true;
    }

    [[noreturn]] void
    bad(const char* why)
    {
        FAMSIM_FATAL("trace '", path_, "' line ", lineNo_, ": ", why);
    }

    std::ifstream in_;
    std::uint64_t lineNo_ = 0;
};

#if FAMSIM_HAVE_ZLIB

class GzipReaderImpl final : public TraceReader
{
  public:
    explicit GzipReaderImpl(const std::string& path)
        : TraceReader(path, TraceFormat::Gzip)
    {
        gz_.gz = gzopen(path.c_str(), "rb");
        if (gz_.gz == nullptr)
            FAMSIM_FATAL("cannot open trace file '", path, "'");

        char magic[kMagicSize];
        readExact(magic, sizeof(magic), "header");
        if (std::memcmp(magic, kMagicPrefix, sizeof(kMagicPrefix)) != 0)
            FAMSIM_FATAL("'", path, "' is not a famsim trace");
        const char version = magic[kMagicSize - 1];
        std::uint64_t footprint_count = 0;
        if (version == '2') {
            readExact(&count_, 8, "header");
            readExact(&footprint_count, 8, "header");
            payloadStart_ = kV2HeaderSize + footprint_count * 8;
        } else if (version == '1') {
            readExact(&count_, 8, "header");
            payloadStart_ = kV1HeaderSize;
        } else {
            FAMSIM_FATAL("trace '", path, "' has unsupported version '",
                         std::string(1, version), "' (this famsim reads "
                         "versions 1 and 2)");
        }
        if (footprint_count > 0) {
            footprint_.resize(footprint_count);
            readExact(footprint_.data(), footprint_count * 8,
                      "footprint");
        }

        // A compressed stream cannot be size-checked without
        // decompressing it, so validate the header count with one full
        // streaming pass now: count records to EOF (deriving the v1
        // footprint on the way) and fail on a mismatch or trailing
        // bytes — exactly what the binary reader's stat check catches.
        std::set<std::uint64_t> pages;
        std::vector<MemOpDesc> chunk(kChunkRecords);
        remaining_ = count_;
        std::uint64_t seen = 0;
        const bool derive = footprint_.empty();
        for (std::size_t n = 0; (n = refill(chunk)) > 0;) {
            seen += n;
            if (derive) {
                for (std::size_t i = 0; i < n; ++i)
                    pages.insert(chunk[i].vaddr / kPageSize);
            }
        }
        unsigned char probe = 0;
        if (gzread(gz_.gz, &probe, 1) > 0) {
            FAMSIM_FATAL("trace '", path, "' has trailing bytes beyond "
                         "the ", count_, " records its header claims "
                         "(stale header from a crashed writer, or a "
                         "corrupt file)");
        }
        if (count_ == 0)
            FAMSIM_FATAL("trace '", path, "' contains no records");
        FAMSIM_ASSERT(seen == count_, "gzip validation miscount");
        if (derive)
            footprint_ = derivedFootprint(pages);
        rewindPayload();
    }

  protected:
    std::size_t
    refill(std::vector<MemOpDesc>& buf) override
    {
        const std::size_t want =
            static_cast<std::size_t>(std::min<std::uint64_t>(
                remaining_, buf.size()));
        if (want == 0)
            return 0;
        raw_.resize(want * kRecordSize);
        readExact(raw_.data(), raw_.size(), "payload");
        const std::uint64_t base = count_ - remaining_;
        for (std::size_t i = 0; i < want; ++i) {
            buf[i] = decodeRecord(raw_.data() + i * kRecordSize, path_,
                                  base + i);
        }
        remaining_ -= want;
        return want;
    }

    void
    rewindPayload() override
    {
        if (gzrewind(gz_.gz) != 0 ||
            gzseek(gz_.gz, static_cast<z_off_t>(payloadStart_), SEEK_SET) < 0)
            FAMSIM_FATAL("trace '", path_, "' rewind failed");
        remaining_ = count_;
    }

  private:
    void
    readExact(void* out, std::size_t bytes, const char* what)
    {
        auto* p = static_cast<unsigned char*>(out);
        while (bytes > 0) {
            unsigned chunk = static_cast<unsigned>(
                std::min<std::size_t>(bytes, 1u << 30));
            int got = gzread(gz_.gz, p, chunk);
            if (got <= 0) {
                int errnum = Z_OK;
                const char* msg = gzerror(gz_.gz, &errnum);
                if (errnum != Z_OK && errnum != Z_STREAM_END) {
                    FAMSIM_FATAL("trace '", path_, "' ", what,
                                 " read failed: ", msg);
                }
                FAMSIM_FATAL("trace '", path_, "' truncated in the ",
                             what);
            }
            p += got;
            bytes -= static_cast<std::size_t>(got);
        }
    }

    GzHandle gz_;
    std::uint64_t payloadStart_ = 0;
    std::uint64_t remaining_ = 0;
    std::vector<unsigned char> raw_;
};

#endif // FAMSIM_HAVE_ZLIB

} // namespace

std::unique_ptr<TraceReader>
TraceReader::open(const std::string& path)
{
    // Sniff the content, prospero-style, instead of trusting the
    // extension: gzip magic, then the famsim binary magic, else text.
    unsigned char head[2] = {0, 0};
    std::size_t got = 0;
    {
        std::ifstream probe(path, std::ios::binary);
        if (!probe)
            FAMSIM_FATAL("cannot open trace file '", path, "'");
        probe.read(reinterpret_cast<char*>(head), sizeof(head));
        got = static_cast<std::size_t>(probe.gcount());
    }
    if (got == 2 && head[0] == 0x1f && head[1] == 0x8b) {
#if FAMSIM_HAVE_ZLIB
        return std::make_unique<GzipReaderImpl>(path);
#else
        FAMSIM_FATAL("cannot read gzip trace '", path,
                     "': famsim was built without zlib");
#endif
    }
    if (got == 2 && head[0] == kMagicPrefix[0] && head[1] == kMagicPrefix[1])
        return std::make_unique<BinaryReaderImpl>(path);
    return std::make_unique<TextReaderImpl>(path);
}

// ============================================== RecordingWorkload ==

RecordingWorkload::RecordingWorkload(std::unique_ptr<WorkloadGen> inner,
                                     const std::string& path,
                                     TraceFormat format)
    : inner_(std::move(inner)), writer_(path, format)
{
    // Record the generator's *full* reachable footprint, not just the
    // pages the recorded prefix happens to touch: replay prefaults
    // exactly what the original run prefaulted, which is what makes
    // the round trip bit-identical.
    writer_.setFootprint(inner_->footprintPages());
}

} // namespace famsim
