#include "workload/trace.hh"

#include <cstring>
#include <set>

#include "sim/logging.hh"

namespace famsim {
namespace {

constexpr char kMagic[12] = {'F', 'A', 'M', 'S', 'I', 'M',
                             'T', 'R', 'A', 'C', 'E', '1'};
constexpr std::uint8_t kFlagWrite = 1;
constexpr std::uint8_t kFlagBlocking = 2;

struct Record {
    std::uint64_t vaddr;
    std::uint32_t gap;
    std::uint8_t flags;
};

} // namespace

TraceWriter::TraceWriter(const std::string& path)
    : out_(path, std::ios::binary), path_(path)
{
    if (!out_)
        FAMSIM_FATAL("cannot open trace file '", path, "' for writing");
    writeHeader();
}

TraceWriter::~TraceWriter()
{
    close();
}

void
TraceWriter::writeHeader()
{
    out_.seekp(0);
    out_.write(kMagic, sizeof(kMagic));
    out_.write(reinterpret_cast<const char*>(&count_), sizeof(count_));
}

void
TraceWriter::append(const MemOpDesc& op)
{
    FAMSIM_ASSERT(!closed_, "append to a closed trace");
    Record rec{op.vaddr, op.gap,
               static_cast<std::uint8_t>(
                   (op.write ? kFlagWrite : 0) |
                   (op.blocking ? kFlagBlocking : 0))};
    out_.write(reinterpret_cast<const char*>(&rec.vaddr),
               sizeof(rec.vaddr));
    out_.write(reinterpret_cast<const char*>(&rec.gap), sizeof(rec.gap));
    out_.write(reinterpret_cast<const char*>(&rec.flags),
               sizeof(rec.flags));
    ++count_;
}

std::vector<MemOpDesc>
TraceWriter::record(WorkloadGen& source, std::uint64_t count)
{
    std::vector<MemOpDesc> ops;
    ops.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
        ops.push_back(source.next());
        append(ops.back());
    }
    return ops;
}

void
TraceWriter::close()
{
    if (closed_)
        return;
    writeHeader(); // patch the final record count
    out_.flush();
    closed_ = true;
}

TraceReader::TraceReader(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        FAMSIM_FATAL("cannot open trace file '", path, "'");
    char magic[sizeof(kMagic)];
    std::uint64_t count = 0;
    in.read(magic, sizeof(magic));
    in.read(reinterpret_cast<char*>(&count), sizeof(count));
    if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
        FAMSIM_FATAL("'", path, "' is not a famsim trace");
    ops_.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
        Record rec{};
        in.read(reinterpret_cast<char*>(&rec.vaddr), sizeof(rec.vaddr));
        in.read(reinterpret_cast<char*>(&rec.gap), sizeof(rec.gap));
        in.read(reinterpret_cast<char*>(&rec.flags), sizeof(rec.flags));
        if (!in)
            FAMSIM_FATAL("trace '", path, "' truncated at record ", i);
        MemOpDesc op;
        op.vaddr = rec.vaddr;
        op.gap = rec.gap;
        op.write = (rec.flags & kFlagWrite) != 0;
        op.blocking = (rec.flags & kFlagBlocking) != 0;
        ops_.push_back(op);
    }
    if (ops_.empty())
        FAMSIM_FATAL("trace '", path, "' contains no records");
}

MemOpDesc
TraceReader::next()
{
    MemOpDesc op = ops_[index_];
    index_ = (index_ + 1) % ops_.size();
    return op;
}

std::vector<std::uint64_t>
TraceReader::footprintPages() const
{
    std::set<std::uint64_t> pages;
    for (const auto& op : ops_)
        pages.insert(op.vaddr / kPageSize);
    return {pages.begin(), pages.end()};
}

} // namespace famsim
