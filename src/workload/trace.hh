/**
 * @file
 * Workload trace record/replay.
 *
 * famsim's synthetic generators stand in for the paper's benchmark
 * binaries; trace support closes the loop for users who *do* have real
 * address traces (e.g. from Pin, DynamoRIO or gem5): record any
 * WorkloadGen to a file, or replay a file as a WorkloadGen. Modeled on
 * SST prospero's reader family: one open() dispatch in front of
 * binary, text and gzip-compressed backends.
 *
 * Three on-disk formats (full spec in DESIGN.md "Trace format"):
 *  - binary v2 ("FAMSIMTRACE2"): header {magic, u64 record count,
 *    u64 footprint page count}, then the footprint pages (u64 each,
 *    writer order), then packed 13-byte records
 *    {u64 vaddr, u32 gap, u8 flags} (little endian).
 *  - binary v1 ("FAMSIMTRACE1", read-only legacy): {magic, u64 count}
 *    then records; the footprint is derived by scanning.
 *  - text ("*.txt"): `<vaddr> <gap> R|W [B]` lines plus optional
 *    `F <page>` footprint lines and `#` comments.
 *  - gzip ("*.gz"): a gzip stream whose decompressed bytes are a
 *    binary trace (v1 or v2). Requires zlib (see traceGzipSupported).
 *
 * Readers stream records in fixed-size chunks, so multi-GB traces
 * never need the whole operation list resident; the trace loops when
 * exhausted so cores can run arbitrary instruction budgets.
 */

#ifndef FAMSIM_WORKLOAD_TRACE_HH
#define FAMSIM_WORKLOAD_TRACE_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "workload/stream_gen.hh"

namespace famsim {

/** On-disk trace encodings (see file comment). */
enum class TraceFormat : std::uint8_t { Binary, Text, Gzip };

/** @return printable name of a trace format. */
[[nodiscard]] constexpr const char*
toString(TraceFormat format)
{
    switch (format) {
      case TraceFormat::Binary: return "binary";
      case TraceFormat::Text: return "text";
      case TraceFormat::Gzip: return "gzip";
    }
    return "?";
}

/** Format implied by a path: ".gz" = gzip, ".txt" = text, else binary. */
[[nodiscard]] TraceFormat traceFormatForPath(const std::string& path);

/** Whether this build can read/write gzip traces (zlib linked in). */
[[nodiscard]] bool traceGzipSupported();

/**
 * Writes memory-op records to a trace file (binary v2, text or gzip).
 *
 * Every write is checked: a disk-full or I/O error fatals immediately
 * instead of reporting success over a silently truncated file. The
 * gzip backend buffers records and emits the stream at close() (gzip
 * cannot patch the record count back into the header); binary and
 * text stream records as they are appended.
 */
class TraceWriter
{
  public:
    /** Open @p path; the format is inferred from the extension. */
    explicit TraceWriter(const std::string& path);
    TraceWriter(const std::string& path, TraceFormat format);
    ~TraceWriter();

    TraceWriter(const TraceWriter&) = delete;
    TraceWriter& operator=(const TraceWriter&) = delete;

    /**
     * Declare the replay footprint (every VA page the stream can
     * touch, in prefault order). Must be called before the first
     * append; replayers prefault exactly these pages, which is what
     * makes a recorded run's replay bit-identical to the original.
     */
    void setFootprint(const std::vector<std::uint64_t>& pages);

    /** Append one operation. */
    void append(const MemOpDesc& op);

    /** Record @p count ops from @p source (also returns them). */
    std::vector<MemOpDesc> record(WorkloadGen& source,
                                  std::uint64_t count);

    /** Flush and finalize the header. Called by the destructor too. */
    void close();

    [[nodiscard]] std::uint64_t written() const { return count_; }
    [[nodiscard]] TraceFormat format() const { return format_; }

    /** Backend interface (one per TraceFormat; see trace.cc). */
    struct Impl;

  private:
    std::unique_ptr<Impl> impl_;
    TraceFormat format_;
    std::uint64_t count_ = 0;
    bool closed_ = false;
    bool appended_ = false;
};

/**
 * Replays a trace file as a WorkloadGen.
 *
 * open() sniffs the content (gzip magic, famsim binary magic, else
 * text) and returns the matching backend. Records stream through a
 * fixed-size chunk buffer and the payload rewinds when exhausted, so
 * replay never holds the full trace in memory. The header record
 * count is validated against the actual payload — a truncated file,
 * trailing garbage or a stale count from a writer that crashed before
 * close() all fatal instead of silently replaying a partial stream.
 */
class TraceReader : public WorkloadGen
{
  public:
    /** Open @p path with the backend matching its content. */
    [[nodiscard]] static std::unique_ptr<TraceReader>
    open(const std::string& path);

    MemOpDesc next() final;
    [[nodiscard]] std::vector<std::uint64_t>
    footprintPages() const final
    {
        return footprint_;
    }

    /** Total records in the trace (one replay loop). */
    [[nodiscard]] std::uint64_t size() const { return count_; }
    [[nodiscard]] const std::string& path() const { return path_; }
    [[nodiscard]] TraceFormat format() const { return format_; }

  protected:
    TraceReader(std::string path, TraceFormat format);

    /** Records per streamed chunk (~104 KiB of MemOpDesc). */
    static constexpr std::size_t kChunkRecords = 8192;

    /**
     * Fill @p buf (capacity kChunkRecords) with the next records;
     * @return the number delivered, 0 at end of payload.
     */
    virtual std::size_t refill(std::vector<MemOpDesc>& buf) = 0;
    /** Seek back to the first record (after a 0-record refill). */
    virtual void rewindPayload() = 0;

    std::string path_;
    TraceFormat format_;
    std::uint64_t count_ = 0;
    std::vector<std::uint64_t> footprint_;

  private:
    std::vector<MemOpDesc> buf_;
    std::size_t pos_ = 0;
    std::size_t len_ = 0;
};

/**
 * Pass-through WorkloadGen that records everything the wrapped
 * generator produces — the capture side of scenario self-replay: run
 * any existing scenario with its cores wrapped, and the consumed
 * streams (plus the full synthetic footprint) land in trace files
 * whose replay reproduces the run bit-identically.
 */
class RecordingWorkload : public WorkloadGen
{
  public:
    RecordingWorkload(std::unique_ptr<WorkloadGen> inner,
                      const std::string& path, TraceFormat format);

    MemOpDesc
    next() override
    {
        MemOpDesc op = inner_->next();
        writer_.append(op);
        return op;
    }

    [[nodiscard]] std::vector<std::uint64_t>
    footprintPages() const override
    {
        return inner_->footprintPages();
    }

  private:
    std::unique_ptr<WorkloadGen> inner_;
    TraceWriter writer_;
};

} // namespace famsim

#endif // FAMSIM_WORKLOAD_TRACE_HH
