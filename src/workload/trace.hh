/**
 * @file
 * Workload trace record/replay.
 *
 * famsim's synthetic generators stand in for the paper's benchmark
 * binaries; trace support closes the loop for users who *do* have real
 * address traces (e.g. from Pin, DynamoRIO or gem5): record any
 * WorkloadGen to a file, or replay a file as a WorkloadGen.
 *
 * Format: a fixed 16-byte header ("FAMSIMTRACE1", record count) then
 * packed little-endian records {u64 vaddr, u32 gap, u8 flags}.
 */

#ifndef FAMSIM_WORKLOAD_TRACE_HH
#define FAMSIM_WORKLOAD_TRACE_HH

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "workload/stream_gen.hh"

namespace famsim {

/** Writes memory-op records to a trace file. */
class TraceWriter
{
  public:
    explicit TraceWriter(const std::string& path);
    ~TraceWriter();

    TraceWriter(const TraceWriter&) = delete;
    TraceWriter& operator=(const TraceWriter&) = delete;

    /** Append one operation. */
    void append(const MemOpDesc& op);

    /** Record @p count ops from @p source (also returns them). */
    std::vector<MemOpDesc> record(WorkloadGen& source,
                                  std::uint64_t count);

    /** Flush and finalize the header. Called by the destructor too. */
    void close();

    [[nodiscard]] std::uint64_t written() const { return count_; }

  private:
    void writeHeader();

    std::ofstream out_;
    std::string path_;
    std::uint64_t count_ = 0;
    bool closed_ = false;
};

/**
 * Replays a trace file as a WorkloadGen. The trace loops when
 * exhausted so cores can run arbitrary instruction budgets.
 */
class TraceReader : public WorkloadGen
{
  public:
    explicit TraceReader(const std::string& path);

    MemOpDesc next() override;
    [[nodiscard]] std::vector<std::uint64_t>
    footprintPages() const override;

    [[nodiscard]] std::uint64_t size() const { return ops_.size(); }

  private:
    std::vector<MemOpDesc> ops_;
    std::size_t index_ = 0;
};

} // namespace famsim

#endif // FAMSIM_WORKLOAD_TRACE_HH
