/**
 * @file
 * Synthetic workload generation.
 *
 * The paper drives its simulations with SPEC 2006, PARSEC, GAP,
 * Mantevo and NAS binaries (Table III). Those binaries (and the SST
 * trace infrastructure) are not reproducible here, so we substitute
 * parameterized address-stream generators: each benchmark becomes a
 * profile capturing the properties the DeACT mechanisms actually
 * respond to —
 *   - memory intensity (ops per instruction) and LLC MPKI (Table III),
 *   - working-set size (how many distinct pages compete for the
 *     translation structures),
 *   - page-level locality (hot-set size/weight: TLB & STU friendliness),
 *   - spatial locality inside a page (sequential run length: cache-line
 *     friendliness),
 *   - pointer-chase fraction (how often the core must block on a load).
 *
 * See DESIGN.md §1 for the substitution rationale.
 */

#ifndef FAMSIM_WORKLOAD_STREAM_GEN_HH
#define FAMSIM_WORKLOAD_STREAM_GEN_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/rng.hh"
#include "sim/types.hh"

namespace famsim {

/**
 * Base virtual address of the simulated heap every System core runs
 * its workload at (shared so trace capture/replay builds generators at
 * exactly the addresses the System uses).
 */
inline constexpr std::uint64_t kWorkloadVaBase = 0x100000000000ULL;

/** One memory operation produced by a generator. */
struct MemOpDesc {
    /** Virtual address accessed. */
    std::uint64_t vaddr = 0;
    /** True for a store. */
    bool write = false;
    /** Non-memory instructions retired before this op. */
    unsigned gap = 0;
    /** True if the consuming core must block until completion. */
    bool blocking = false;
    /** Tenant job that issued this op (0 when single-tenant). */
    JobId job = 0;
};

/** Abstract address-stream source. */
class WorkloadGen
{
  public:
    virtual ~WorkloadGen() = default;
    /** Produce the next memory operation. */
    virtual MemOpDesc next() = 0;
    /** Every VA page the stream can touch (for pre-faulting). */
    [[nodiscard]] virtual std::vector<std::uint64_t>
    footprintPages() const = 0;
};

/** Parameter set describing one benchmark. */
struct StreamProfile {
    std::string name;
    std::string suite;
    /** Fraction of instructions that are memory operations. */
    double memOpFraction = 0.3;
    /** Total data footprint in bytes. */
    std::uint64_t footprintBytes = 32ull << 20;
    /**
     * Two-tier page working set (coarse Zipf): a small very-hot tier
     * whose reach decides TLB and STU hit rates, a warm tier that
     * separates the 1024-entry I-FAM STU from the 2048-entry DeACT-N
     * ACM cache, and a uniform cold tail over the whole footprint.
     */
    std::uint64_t hot1Pages = 512;
    double hot1Prob = 0.6;
    std::uint64_t hot2Pages = 1536;
    double hot2Prob = 0.2;
    /** Mean sequential 64 B-block run length within a page. */
    double seqRunLen = 4.0;
    /** Probability a new cold page continues sequentially (streaming). */
    double seqPageProb = 0.2;
    /**
     * VA sparseness: the footprint's pages are scattered over a
     * virtual span vaScatterFactor times larger than the footprint
     * (1 = dense heap). Pointer-heavy applications have sparse VA
     * spaces, which makes the node page table large and uncacheable —
     * the amplifier behind the paper's nested-translation collapse.
     */
    unsigned vaScatterFactor = 1;
    /**
     * Probability an access re-uses a recently touched block (register
     * spill / stack / short-term temporal locality). This is the knob
     * that calibrates LLC MPKI: misses/kilo-instr is approximately
     * memOpFraction * (1 - reuseProb) * 1000.
     */
    double reuseProb = 0.8;
    /** Fraction of ops that are writes. */
    double writeFraction = 0.25;
    /** Fraction of loads that serialize the core (pointer chasing). */
    double blockingFraction = 0.3;
    /** LLC misses per kilo-instruction reported in Table III. */
    double paperMpki = 0.0;
    /** Slowdown class: whether the paper saw >15 % I-FAM degradation. */
    bool atSensitive = true;
};

/**
 * The synthetic stream generator.
 *
 * Address process: with probability hotAccessProb pick a page from a
 * small scattered hot set, otherwise a uniform cold page; within the
 * page continue a sequential block run (geometric length seqRunLen) or
 * restart at a random block.
 */
class StreamGen : public WorkloadGen
{
  public:
    /**
     * @param profile   benchmark parameters.
     * @param va_base   base virtual address of the heap.
     * @param seed      RNG seed (combined with a per-core stream id).
     * @param stream    per-core stream id.
     */
    StreamGen(const StreamProfile& profile, std::uint64_t va_base,
              std::uint64_t seed, std::uint64_t stream = 0);

    MemOpDesc next() override;
    [[nodiscard]] std::vector<std::uint64_t>
    footprintPages() const override;

    [[nodiscard]] const StreamProfile& profile() const { return profile_; }

  private:
    /** Capacity of the recent-block reuse ring (< L1 in blocks). */
    static constexpr std::size_t kRingCapacity = 48;

    StreamProfile profile_;
    std::uint64_t vaBase_;
    Rng rng_;

    /** Map a logical page index to its (possibly scattered) VA page. */
    [[nodiscard]] std::uint64_t vaPageOf(std::uint64_t logical) const;

    std::uint64_t numPages_;
    std::uint64_t vaSpanPages_;
    std::uint64_t vaStride_ = 1;
    std::vector<std::uint64_t> hot1Pages_;
    std::vector<std::uint64_t> hot2Pages_;
    /** Precomputed logical-page -> scattered-VA-page table (vaS > 1). */
    std::vector<std::uint64_t> scatter_;

    /**
     * Hot-path precomputation (next() is division- and mostly
     * log-free): the geometric-gap log denominator, every chance(p)
     * site as a 32-bit integer threshold (draw < t  <=>
     * uniform() < p, exactly), and division-free samplers for the
     * fixed below() bounds. All preserve the RNG draw sequence and
     * results bit-for-bit — see DESIGN.md "RNG draw-order preservation".
     */
    double gapLogDenom_ = -1.0;
    std::uint64_t reuseThresh_ = 0;
    std::uint64_t writeThresh_ = 0;
    std::uint64_t continueThresh_ = 0;
    std::uint64_t seqPageThresh_ = 0;
    std::uint64_t blockingThresh_ = 0;
    std::uint64_t hot1Thresh_ = 0;
    std::uint64_t hot12Thresh_ = 0;
    FastBound32 pagesBound_{1};
    FastBound32 hot1Bound_{1};
    FastBound32 hot2Bound_{1};
    FastBound32 ringBound_{kRingCapacity};

    /** Sequential-run state. */
    std::uint64_t curPage_ = 0;
    std::uint64_t curBlock_ = 0;
    bool runActive_ = false;

    /** Ring of recently touched block addresses (for reuseProb). */
    std::vector<std::uint64_t> recent_;
    std::size_t recentNext_ = 0;
};

/** Registry of the paper's benchmark profiles (Table III + lu). */
namespace profiles {

/** All 14 evaluated benchmarks, in the paper's figure order. */
[[nodiscard]] std::vector<StreamProfile> all();

/** Look up one profile by short name (mcf, cactus, ... sp). */
[[nodiscard]] StreamProfile byName(const std::string& name);

/** A uniform random profile for tests. */
[[nodiscard]] StreamProfile uniformTest(std::uint64_t footprint_bytes);

} // namespace profiles

} // namespace famsim

#endif // FAMSIM_WORKLOAD_STREAM_GEN_HH
