/**
 * @file
 * Multi-tenant workload scheduling.
 *
 * The paper evaluates one uniform stream per core; a production FAM
 * pool serves many competing jobs. MultiTenantWorkload interleaves
 * several job streams on each core the way a timesharing scheduler
 * would: every job owns a private address space (a disjoint VA window
 * holding its own StreamGen), job popularity is Zipfian (job 0 is the
 * hottest tenant, so its pages dominate the shared translation and
 * media structures), and jobs arrive and depart in Poisson-ish churn
 * (exponentially distributed active/inactive residencies).
 *
 * Everything is a deterministic function of the number of ops the core
 * has consumed — never of simulated time — so a multi-tenant run is
 * reproducible and byte-identical between the serial kernel and any
 * parallel thread count (see DESIGN.md "Multi-tenant job model").
 */

#ifndef FAMSIM_WORKLOAD_MULTI_TENANT_HH
#define FAMSIM_WORKLOAD_MULTI_TENANT_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/rng.hh"
#include "sim/types.hh"
#include "workload/stream_gen.hh"

namespace famsim {

/** Multi-tenant workload knobs (SystemConfig::tenancy). */
struct TenancyParams {
    /** Concurrent tenant jobs per core stream (1 = single-tenant). */
    unsigned jobs = 1;
    /**
     * Zipfian popularity skew: job j is selected with weight
     * 1 / (j + 1)^zipfSkew. 0 = uniform sharing; ~1 concentrates most
     * traffic on the hottest tenant.
     */
    double zipfSkew = 0.0;
    /**
     * Mean tenant residency in consumed ops: every job except job 0
     * alternates active (arrived) and inactive (departed) phases with
     * exponentially distributed lengths of this mean — a deterministic
     * Poisson-ish churn process. 0 disables churn (all jobs stay
     * active).
     */
    std::uint64_t churnMeanOps = 0;
    /** VA distance between consecutive jobs' private heaps. */
    std::uint64_t jobVaStride = std::uint64_t{1} << 40;
};

/**
 * Interleaves one StreamGen per tenant job on a single core, tagging
 * every op with its JobId.
 */
class MultiTenantWorkload : public WorkloadGen
{
  public:
    /**
     * @param tenancy  job count, skew and churn knobs.
     * @param profile  per-job stream profile (shared by all jobs).
     * @param seed     RNG seed (combined with per-core stream ids).
     * @param node     owning node index (stream id derivation).
     * @param core     owning core index (stream id derivation).
     */
    MultiTenantWorkload(const TenancyParams& tenancy,
                        const StreamProfile& profile, std::uint64_t seed,
                        unsigned node, unsigned core);

    MemOpDesc next() override;
    [[nodiscard]] std::vector<std::uint64_t>
    footprintPages() const override;

  private:
    /** Toggle any job whose residency expired at the current op. */
    void advanceChurn();
    /** Zipf-weighted selection among the currently active jobs. */
    [[nodiscard]] JobId pickJob();
    /** Draw an exponential residency length (mean churnMeanOps). */
    [[nodiscard]] std::uint64_t drawResidency();

    struct JobState {
        std::unique_ptr<StreamGen> gen;
        bool active = true;
        /** Op count at which the job arrives/departs next. */
        std::uint64_t nextToggleAt = kTickForever;
    };

    TenancyParams tenancy_;
    Rng rng_; //!< job-selection and churn draws (own stream)
    std::vector<JobState> jobs_;
    /** Zipf weight of each job (renormalized over active jobs on pick). */
    std::vector<double> weight_;
    std::uint64_t ops_ = 0;
};

} // namespace famsim

#endif // FAMSIM_WORKLOAD_MULTI_TENANT_HH
