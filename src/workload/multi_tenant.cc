#include "workload/multi_tenant.hh"

#include <cmath>

#include "sim/logging.hh"

namespace famsim {

namespace {

/** Stream-id space: per-(node, core) lane, one slot per job. */
constexpr std::uint64_t kCoreLane = 64;
constexpr std::uint64_t kJobStride = 4096;
/** Selector/churn RNG stream offset (disjoint from StreamGen ids). */
constexpr std::uint64_t kSelectorOffset = std::uint64_t{1} << 20;

} // namespace

MultiTenantWorkload::MultiTenantWorkload(const TenancyParams& tenancy,
                                         const StreamProfile& profile,
                                         std::uint64_t seed, unsigned node,
                                         unsigned core)
    : tenancy_(tenancy),
      rng_(seed, node * kCoreLane + core + kSelectorOffset)
{
    FAMSIM_ASSERT(tenancy_.jobs >= 1 && tenancy_.jobs <= kMaxJobs,
                  "tenant job count must be in [1, ", kMaxJobs, "]");
    FAMSIM_ASSERT(tenancy_.zipfSkew >= 0.0, "negative Zipf skew");
    jobs_.reserve(tenancy_.jobs);
    weight_.reserve(tenancy_.jobs);
    for (unsigned j = 0; j < tenancy_.jobs; ++j) {
        JobState state;
        // Each job owns a disjoint VA window and a distinct RNG stream,
        // so tenants never share pages and their access sequences are
        // independent of each other and of the job count.
        state.gen = std::make_unique<StreamGen>(
            profile, kWorkloadVaBase + j * tenancy_.jobVaStride, seed,
            node * kCoreLane + core + j * kJobStride);
        if (tenancy_.churnMeanOps > 0 && j > 0)
            state.nextToggleAt = drawResidency();
        jobs_.push_back(std::move(state));
        weight_.push_back(
            1.0 / std::pow(static_cast<double>(j + 1), tenancy_.zipfSkew));
    }
}

std::uint64_t
MultiTenantWorkload::drawResidency()
{
    // Exponential residency with mean churnMeanOps: memoryless phase
    // lengths make arrivals/departures a Poisson-ish process while
    // staying a pure function of the RNG stream (no simulated time).
    double u = rng_.uniform(); // in [0, 1), so 1 - u never hits zero
    double len =
        -static_cast<double>(tenancy_.churnMeanOps) * std::log1p(-u);
    if (len < 1.0)
        return 1;
    constexpr double kCap = 1e15; // keep the op counter far from wrap
    return static_cast<std::uint64_t>(len < kCap ? len : kCap);
}

void
MultiTenantWorkload::advanceChurn()
{
    // Job 0 never departs, so at least one tenant is always runnable.
    for (std::size_t j = 1; j < jobs_.size(); ++j) {
        JobState& job = jobs_[j];
        while (ops_ >= job.nextToggleAt) {
            job.active = !job.active;
            job.nextToggleAt += drawResidency();
        }
    }
}

JobId
MultiTenantWorkload::pickJob()
{
    double total = 0.0;
    for (std::size_t j = 0; j < jobs_.size(); ++j) {
        if (jobs_[j].active)
            total += weight_[j];
    }
    double u = rng_.uniform() * total;
    JobId last = 0;
    for (std::size_t j = 0; j < jobs_.size(); ++j) {
        if (!jobs_[j].active)
            continue;
        last = static_cast<JobId>(j);
        u -= weight_[j];
        if (u < 0.0)
            return last;
    }
    return last; // float round-off: u exhausted past the final weight
}

MemOpDesc
MultiTenantWorkload::next()
{
    ++ops_;
    if (tenancy_.churnMeanOps > 0)
        advanceChurn();
    JobId job = pickJob();
    MemOpDesc op = jobs_[job].gen->next();
    op.job = job;
    return op;
}

std::vector<std::uint64_t>
MultiTenantWorkload::footprintPages() const
{
    // Per-job VA windows are disjoint, so the union is a plain concat.
    std::vector<std::uint64_t> pages;
    for (const JobState& job : jobs_) {
        std::vector<std::uint64_t> mine = job.gen->footprintPages();
        pages.insert(pages.end(), mine.begin(), mine.end());
    }
    return pages;
}

} // namespace famsim
