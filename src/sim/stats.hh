/**
 * @file
 * Statistics collection: counters, scalars, histograms and a registry.
 *
 * Every component registers named statistics with the simulation's
 * StatRegistry. Names are hierarchical ("node0.core1.l1d.hits"). The
 * registry supports a reset (used to discard warmup), text and CSV
 * dumps, and programmatic queries used by the experiment harness.
 */

#ifndef FAMSIM_SIM_STATS_HH
#define FAMSIM_SIM_STATS_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "sim/check.hh"
#include "sim/types.hh"

namespace famsim {

namespace json {

/** Write @p s as a JSON string literal (quotes + escapes). */
void writeString(std::ostream& os, const std::string& s);

/**
 * Write @p v as a JSON number using the shortest representation that
 * round-trips (std::to_chars). Deterministic for a given bit pattern,
 * which keeps golden-file comparisons byte-exact.
 */
void writeNumber(std::ostream& os, double v);

} // namespace json

/**
 * A monotonically increasing event count, resettable for warmup.
 * Plain (non-atomic): under the parallel kernel a Counter is
 * partition-local and may only be bumped by the partition that owns it
 * (enforced by the FAMSIM_CHECK hooks; cross-partition aggregates use
 * SharedCounter instead).
 */
class Counter
{
  public:
    Counter&
    operator++()
    {
        FAMSIM_CHECK_STAT(checkTag, "counter increment");
        ++value_;
        return *this;
    }

    Counter&
    operator+=(std::uint64_t delta)
    {
        FAMSIM_CHECK_STAT(checkTag, "counter increment");
        value_ += delta;
        return *this;
    }

    [[nodiscard]] std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

#if FAMSIM_CHECK
    /** Owner stamp, set by StatRegistry at creation (wiring owner). */
    check::Tag checkTag;
#endif

  private:
    std::uint64_t value_ = 0;
};

/**
 * A counter whose increments may arrive concurrently from several
 * worker threads (relaxed atomic adds). Totals are sums, and sums are
 * order-independent, so a SharedCounter stays deterministic across
 * thread counts even though the interleaving is not. Used for
 * aggregates that span partitions of the parallel kernel (e.g. the
 * FAM media's request classification, incremented by every media
 * module's partition); everything partition-local stays a plain
 * Counter, which is cheaper to bump.
 */
class SharedCounter
{
  public:
    SharedCounter&
    operator++()
    {
        value_.fetch_add(1, std::memory_order_relaxed);
        return *this;
    }

    SharedCounter&
    operator+=(std::uint64_t delta)
    {
        value_.fetch_add(delta, std::memory_order_relaxed);
        return *this;
    }

    [[nodiscard]] std::uint64_t
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

    /** Only valid while writers are quiescent (warmup barrier/teardown). */
    void reset() { value_.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<std::uint64_t> value_{0};
};

/**
 * A per-job (tenant) counter table: one slot per JobId, sized at
 * registration. The multi-tenant sibling of SharedCounter — slots are
 * relaxed atomics because job-tagged requests from several parallel
 * partitions (every FAM media module, every node's STU) bump the same
 * table. Each slot is a sum of its own increments, and sums are
 * order-independent, so the table stays byte-deterministic across
 * thread counts exactly as SharedCounter does; see DESIGN.md
 * "Multi-tenant job model".
 */
class JobStatTable
{
  public:
    explicit JobStatTable(unsigned jobs) : slots_(jobs) {}

    void
    add(JobId job, std::uint64_t delta = 1)
    {
        slots_[job].fetch_add(delta, std::memory_order_relaxed);
    }

    [[nodiscard]] std::uint64_t
    value(JobId job) const
    {
        return slots_[job].load(std::memory_order_relaxed);
    }

    [[nodiscard]] unsigned
    jobs() const
    {
        return static_cast<unsigned>(slots_.size());
    }

    /** Only valid while writers are quiescent (warmup barrier/teardown). */
    void
    reset()
    {
        for (auto& slot : slots_)
            slot.store(0, std::memory_order_relaxed);
    }

  private:
    std::vector<std::atomic<std::uint64_t>> slots_;
};

/** A floating-point scalar statistic (set, not accumulated). */
class Scalar
{
  public:
    Scalar&
    operator=(double v)
    {
        FAMSIM_CHECK_STAT(checkTag, "scalar write");
        value_ = v;
        return *this;
    }

    [[nodiscard]] double value() const { return value_; }
    void reset() { value_ = 0.0; }

#if FAMSIM_CHECK
    /** Owner stamp, set by StatRegistry at creation (wiring owner). */
    check::Tag checkTag;
#endif

  private:
    double value_ = 0.0;
};

/** A fixed-bucket histogram with mean/max tracking. */
class Histogram
{
  public:
    /** @param bucket_width width of each bucket; @param buckets count. */
    explicit Histogram(std::uint64_t bucket_width = 1,
                       std::size_t buckets = 16);

    void sample(std::uint64_t value);
    void reset();

    [[nodiscard]] std::uint64_t samples() const { return samples_; }
    [[nodiscard]] double mean() const;
    [[nodiscard]] std::uint64_t max() const { return max_; }
    [[nodiscard]] std::uint64_t bucket(std::size_t i) const;
    [[nodiscard]] std::size_t numBuckets() const { return counts_.size(); }

    /**
     * Nearest-rank percentile over the bucketed distribution:
     * the lower edge of the first bucket whose cumulative count
     * reaches ceil(p * samples). Exact for bucket_width == 1
     * distributions (each bucket is one value); otherwise quantized to
     * the bucket edge. 0 when the histogram is empty. @p p in (0, 1].
     */
    [[nodiscard]] std::uint64_t percentile(double p) const;
    [[nodiscard]] std::uint64_t p50() const { return percentile(0.50); }
    [[nodiscard]] std::uint64_t p95() const { return percentile(0.95); }
    [[nodiscard]] std::uint64_t p99() const { return percentile(0.99); }

#if FAMSIM_CHECK
    /** Owner stamp, set by StatRegistry at creation (wiring owner). */
    check::Tag checkTag;
#endif

  private:
    std::uint64_t bucketWidth_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t samples_ = 0;
    std::uint64_t sum_ = 0;
    std::uint64_t max_ = 0;
};

/**
 * Owning registry of named statistics.
 *
 * Returned references remain valid for the registry's lifetime
 * (statistics are never removed).
 */
class StatRegistry
{
  public:
    /** Create (or fetch) a counter. Re-registering returns the original. */
    Counter& counter(const std::string& name, const std::string& desc);
    /** Create (or fetch) a thread-shared counter. */
    SharedCounter& sharedCounter(const std::string& name,
                                 const std::string& desc);
    /** Create (or fetch) a scalar. */
    Scalar& scalar(const std::string& name, const std::string& desc);
    /** Create (or fetch) a histogram. */
    Histogram& histogram(const std::string& name, const std::string& desc,
                         std::uint64_t bucket_width = 1,
                         std::size_t buckets = 16);
    /**
     * Create (or fetch) a histogram whose JSON dump additionally
     * carries p50/p95/p99 percentile keys. A separate registration
     * flavor so the plain-histogram JSON shape (and with it every
     * pre-existing golden) never changes; used by the
     * observability-gated latency-breakdown histograms
     * (Component::obsHistogram).
     */
    Histogram& histogramWithPercentiles(const std::string& name,
                                        const std::string& desc,
                                        std::uint64_t bucket_width = 1,
                                        std::size_t buckets = 16);
    /**
     * Create (or fetch) a per-job counter table with @p jobs slots.
     * Re-registering must use the same slot count.
     */
    JobStatTable& jobTable(const std::string& name, const std::string& desc,
                           unsigned jobs);

    /**
     * Value lookup by full name: counters and shared counters return
     * their count, scalars their value, histograms their mean. Unknown
     * names and unsupported kinds (per-job tables have no single
     * value) panic rather than returning something misleading.
     */
    [[nodiscard]] double get(const std::string& name) const;
    /** Whether a statistic with this exact name exists. */
    [[nodiscard]] bool has(const std::string& name) const;
    /** Sum of all counters whose name ends with @p suffix. */
    [[nodiscard]] double sumMatching(const std::string& suffix) const;
    /**
     * Slot-wise sum of every per-job table whose name ends with
     * @p suffix (e.g. ".job_acm_hits" totals the per-node STU tables).
     * Empty when no table matches.
     */
    [[nodiscard]] std::vector<std::uint64_t>
    sumJobTables(const std::string& suffix) const;

    /** Reset every statistic (used to discard warmup). */
    void resetAll();

    /** Human-readable dump, sorted by name. */
    void dump(std::ostream& os) const;
    /** Machine-readable "name,value" CSV dump. */
    void dumpCsv(std::ostream& os) const;
    /**
     * Machine-readable JSON dump, sorted by name. Deterministic:
     * identical registry contents produce byte-identical output
     * (doubles use shortest round-trip formatting), so the result can
     * be compared against golden files.
     */
    void dumpJson(std::ostream& os, int indent = 0) const;
    /** dumpJson() into a string. */
    [[nodiscard]] std::string jsonString() const;

  private:
    struct Entry {
        std::string desc;
        std::unique_ptr<Counter> counter;
        std::unique_ptr<SharedCounter> shared;
        std::unique_ptr<Scalar> scalar;
        std::unique_ptr<Histogram> histogram;
        std::unique_ptr<JobStatTable> jobs;
        /** Emit p50/p95/p99 in dumpJson (histogramWithPercentiles). */
        bool percentiles = false;

        /** Integer value of the counter flavor held, if any. */
        [[nodiscard]] bool
        countValue(std::uint64_t& out) const
        {
            if (counter) {
                out = counter->value();
                return true;
            }
            if (shared) {
                out = shared->value();
                return true;
            }
            return false;
        }
    };

    std::map<std::string, Entry> entries_;
};

} // namespace famsim

#endif // FAMSIM_SIM_STATS_HH
