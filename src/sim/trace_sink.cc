#include "sim/trace_sink.hh"

#include <algorithm>
#include <cstring>

#include "sim/logging.hh"
#include "sim/stats.hh"

namespace famsim {

TraceSink::TraceSink(std::uint32_t lanes, unsigned categories)
    : categories_(categories), lanes_(lanes)
{
    FAMSIM_ASSERT(lanes > 0, "trace sink needs at least one lane");
}

void
TraceSink::setLaneName(std::uint32_t lane, std::string name)
{
    lanes_[lane].name = std::move(name);
}

std::uint64_t
TraceSink::size() const
{
    std::uint64_t total = 0;
    for (const Lane& lane : lanes_)
        total += lane.events.size();
    return total;
}

namespace {

/** Microsecond timestamp: ticks are picoseconds. */
void
writeMicros(std::ostream& os, Tick ticks)
{
    json::writeNumber(os, static_cast<double>(ticks) / 1e6);
}

} // namespace

void
TraceSink::write(std::ostream& os) const
{
    std::vector<Event> all;
    all.reserve(size());
    for (const Lane& lane : lanes_)
        all.insert(all.end(), lane.events.begin(), lane.events.end());

    // Content order: (ts, lane, phase, name, dur, arg), the per-lane
    // emission index last as a pure stability tie-break. Names compare
    // by content (strcmp), never by pointer — literal addresses vary
    // across builds and ASLR runs, and the whole point of the sort is
    // that equal event multisets produce equal bytes regardless of
    // which kernel (or worker interleaving) emitted them.
    std::sort(all.begin(), all.end(), [](const Event& a, const Event& b) {
        if (a.ts != b.ts)
            return a.ts < b.ts;
        if (a.lane != b.lane)
            return a.lane < b.lane;
        if (a.ph != b.ph)
            return a.ph < b.ph;
        if (int c = std::strcmp(a.name, b.name); c != 0)
            return c < 0;
        if (a.dur != b.dur)
            return a.dur < b.dur;
        if (a.arg != b.arg)
            return a.arg < b.arg;
        return a.seq < b.seq;
    });

    os << "{\"traceEvents\": [";
    bool first = true;
    auto sep = [&] {
        os << (first ? "\n" : ",\n");
        first = false;
    };

    // Metadata first: one process, one named thread per lane.
    sep();
    os << "{\"ph\": \"M\", \"pid\": 0, \"tid\": 0, \"name\": "
          "\"process_name\", \"args\": {\"name\": \"famsim\"}}";
    for (std::uint32_t lane = 0; lane < lanes(); ++lane) {
        sep();
        os << "{\"ph\": \"M\", \"pid\": 0, \"tid\": " << lane
           << ", \"name\": \"thread_name\", \"args\": {\"name\": ";
        json::writeString(os, lanes_[lane].name.empty()
                                  ? "lane" + std::to_string(lane)
                                  : lanes_[lane].name);
        os << "}}";
    }

    for (const Event& ev : all) {
        sep();
        os << "{\"ph\": \"" << ev.ph << "\", \"name\": \"" << ev.name
           << "\", \"pid\": 0, \"tid\": " << ev.lane << ", \"ts\": ";
        writeMicros(os, ev.ts);
        if (ev.ph == 'X') {
            os << ", \"dur\": ";
            writeMicros(os, ev.dur);
        }
        if (ev.ph == 'i')
            os << ", \"s\": \"t\"";
        if (ev.ph == 'C' || ev.arg != 0)
            os << ", \"args\": {\"v\": " << ev.arg << "}";
        os << "}";
    }
    if (!first)
        os << "\n";
    os << "]}\n";
}

} // namespace famsim
