/**
 * @file
 * The Simulation object: event queue + statistics + seed, the context
 * every component is constructed against.
 *
 * Since the parallel kernel (src/psim/) the simulation can execute in
 * two modes. On the default serial path everything runs on the one
 * global EventQueue, exactly as before. In partitioned mode each
 * worker thread drains one partition's queue at a time and publishes
 * it in a thread-local slot; events() and curTick() then resolve to
 * the partition the calling thread is executing, so component code is
 * oblivious to the mode it runs under.
 */

#ifndef FAMSIM_SIM_SIMULATION_HH
#define FAMSIM_SIM_SIMULATION_HH

#include <cstdint>
#include <string>

#include "sim/event_queue.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace famsim {

class ParallelSim; // src/psim/parallel_sim.hh
class Profiler;    // src/sim/profiler.hh
class TraceSink;   // src/sim/trace_sink.hh

namespace detail {

/**
 * The partition queue the calling thread is currently draining, or
 * null on the serial path. A function-local thread_local with constant
 * initialization keeps the access to one TLS load — cheap enough for
 * the schedule()/curTick() hot paths.
 */
[[nodiscard]] inline EventQueue*&
tlsQueueSlot()
{
    static thread_local EventQueue* queue = nullptr;
    return queue;
}

} // namespace detail

/**
 * Owns the global simulation state. Not copyable; components hold a
 * reference and must not outlive it.
 */
class Simulation
{
  public:
    explicit Simulation(std::uint64_t seed = 1) : seed_(seed) {}

    Simulation(const Simulation&) = delete;
    Simulation& operator=(const Simulation&) = delete;

    /**
     * The queue the caller should schedule on: the partition queue the
     * calling worker is draining (partitioned mode), else the serial
     * global queue.
     */
    [[nodiscard]] EventQueue&
    events()
    {
        EventQueue* queue = detail::tlsQueueSlot();
        return queue ? *queue : events_;
    }

    /** The serial global queue, regardless of execution context. */
    [[nodiscard]] EventQueue& serialEvents() { return events_; }

    [[nodiscard]] StatRegistry& stats() { return stats_; }
    [[nodiscard]] const StatRegistry& stats() const { return stats_; }

    /** Current tick of the calling thread's execution context. */
    [[nodiscard]] Tick
    curTick() const
    {
        const EventQueue* queue = detail::tlsQueueSlot();
        return queue ? queue->curTick() : events_.curTick();
    }

    [[nodiscard]] std::uint64_t seed() const { return seed_; }

    /**
     * The active parallel kernel, or null on the serial path. Bound by
     * ParallelSim for the duration of a partitioned System::run().
     */
    [[nodiscard]] ParallelSim* parallel() const { return parallel_; }
    void setParallel(ParallelSim* parallel) { parallel_ = parallel; }

    /**
     * The attached trace sink, or null (the near-universal case). Every
     * emit site is a null check plus an inline category test, so an
     * unattached sink costs one predictable branch (see DESIGN.md
     * "Observability layer"). Attached by System::attachTrace.
     */
    [[nodiscard]] TraceSink* trace() const { return trace_; }
    void setTrace(TraceSink* trace) { trace_ = trace; }

    /** The attached wall-clock profiler, or null. */
    [[nodiscard]] Profiler* profiler() const { return profiler_; }
    void setProfiler(Profiler* profiler) { profiler_ = profiler; }

    /**
     * Whether the latency-breakdown statistics are enabled
     * (SystemConfig::observability). Off by default so the registry —
     * and with it every pre-existing golden — is bit-identical to a
     * build without the observability layer.
     */
    [[nodiscard]] bool observability() const { return observability_; }
    void setObservability(bool on) { observability_ = on; }

    /** Run the serial event loop until it drains or @p limit. */
    std::uint64_t run(Tick limit = EventQueue::kForever)
    {
        return events_.run(limit);
    }

    /**
     * Rewind the simulation for another run on a reused System
     * (System::reset): the drained event queue is replaced so the
     * clock restarts at tick 0, and every registered statistic is
     * zeroed. Registry entries are never removed, so components
     * rebuilt under the same names rebind to their original (now
     * zeroed) statistics.
     */
    void
    resetForReuse()
    {
        FAMSIM_ASSERT(events_.empty(),
                      "resetForReuse with events still pending");
        events_ = EventQueue{};
        stats_.resetAll();
    }

  private:
    std::uint64_t seed_;
    EventQueue events_;
    StatRegistry stats_;
    ParallelSim* parallel_ = nullptr;
    TraceSink* trace_ = nullptr;
    Profiler* profiler_ = nullptr;
    bool observability_ = false;
};

/**
 * Base class for named simulated components.
 *
 * Provides the hierarchical name used to register statistics and a
 * convenience statistics accessor.
 */
class Component
{
  public:
    Component(Simulation& sim, std::string name)
        : sim_(sim), name_(std::move(name))
    {
    }

    virtual ~Component() = default;

    Component(const Component&) = delete;
    Component& operator=(const Component&) = delete;

    [[nodiscard]] const std::string& name() const { return name_; }
    [[nodiscard]] Simulation& sim() { return sim_; }

  protected:
    /** Register a counter under this component's name prefix. */
    Counter&
    statCounter(const std::string& leaf, const std::string& desc)
    {
        return sim_.stats().counter(name_ + "." + leaf, desc);
    }

    /** Register a thread-shared counter under this component's prefix. */
    SharedCounter&
    statSharedCounter(const std::string& leaf, const std::string& desc)
    {
        return sim_.stats().sharedCounter(name_ + "." + leaf, desc);
    }

    /** Register a scalar under this component's name prefix. */
    Scalar&
    statScalar(const std::string& leaf, const std::string& desc)
    {
        return sim_.stats().scalar(name_ + "." + leaf, desc);
    }

    /** Register a histogram under this component's name prefix. */
    Histogram&
    statHistogram(const std::string& leaf, const std::string& desc,
                  std::uint64_t bucket_width = 1, std::size_t buckets = 16)
    {
        return sim_.stats().histogram(name_ + "." + leaf, desc,
                                      bucket_width, buckets);
    }

    /**
     * Register an observability-gated latency-breakdown histogram
     * (with JSON percentiles): returns null when
     * Simulation::observability() is off, in which case nothing enters
     * the registry — sample sites guard on the pointer. Keeps every
     * pre-existing golden bit-identical with observability disabled.
     */
    Histogram*
    obsHistogram(const std::string& leaf, const std::string& desc,
                 std::uint64_t bucket_width = 1, std::size_t buckets = 16)
    {
        if (!sim_.observability())
            return nullptr;
        return &sim_.stats().histogramWithPercentiles(
            name_ + "." + leaf, desc, bucket_width, buckets);
    }

    /** Register a per-job counter table under this component's prefix. */
    JobStatTable&
    statJobTable(const std::string& leaf, const std::string& desc,
                 unsigned jobs)
    {
        return sim_.stats().jobTable(name_ + "." + leaf, desc, jobs);
    }

    Simulation& sim_;

  private:
    std::string name_;
};

} // namespace famsim

#endif // FAMSIM_SIM_SIMULATION_HH
