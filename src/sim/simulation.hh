/**
 * @file
 * The Simulation object: event queue + statistics + seed, the context
 * every component is constructed against.
 */

#ifndef FAMSIM_SIM_SIMULATION_HH
#define FAMSIM_SIM_SIMULATION_HH

#include <cstdint>
#include <string>

#include "sim/event_queue.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace famsim {

/**
 * Owns the global simulation state. Not copyable; components hold a
 * reference and must not outlive it.
 */
class Simulation
{
  public:
    explicit Simulation(std::uint64_t seed = 1) : seed_(seed) {}

    Simulation(const Simulation&) = delete;
    Simulation& operator=(const Simulation&) = delete;

    [[nodiscard]] EventQueue& events() { return events_; }
    [[nodiscard]] StatRegistry& stats() { return stats_; }
    [[nodiscard]] const StatRegistry& stats() const { return stats_; }

    [[nodiscard]] Tick curTick() const { return events_.curTick(); }
    [[nodiscard]] std::uint64_t seed() const { return seed_; }

    /** Run the event loop until it drains or @p limit is reached. */
    std::uint64_t run(Tick limit = EventQueue::kForever)
    {
        return events_.run(limit);
    }

  private:
    std::uint64_t seed_;
    EventQueue events_;
    StatRegistry stats_;
};

/**
 * Base class for named simulated components.
 *
 * Provides the hierarchical name used to register statistics and a
 * convenience statistics accessor.
 */
class Component
{
  public:
    Component(Simulation& sim, std::string name)
        : sim_(sim), name_(std::move(name))
    {
    }

    virtual ~Component() = default;

    Component(const Component&) = delete;
    Component& operator=(const Component&) = delete;

    [[nodiscard]] const std::string& name() const { return name_; }
    [[nodiscard]] Simulation& sim() { return sim_; }

  protected:
    /** Register a counter under this component's name prefix. */
    Counter&
    statCounter(const std::string& leaf, const std::string& desc)
    {
        return sim_.stats().counter(name_ + "." + leaf, desc);
    }

    /** Register a scalar under this component's name prefix. */
    Scalar&
    statScalar(const std::string& leaf, const std::string& desc)
    {
        return sim_.stats().scalar(name_ + "." + leaf, desc);
    }

    /** Register a histogram under this component's name prefix. */
    Histogram&
    statHistogram(const std::string& leaf, const std::string& desc,
                  std::uint64_t bucket_width = 1, std::size_t buckets = 16)
    {
        return sim_.stats().histogram(name_ + "." + leaf, desc,
                                      bucket_width, buckets);
    }

    Simulation& sim_;

  private:
    std::string name_;
};

} // namespace famsim

#endif // FAMSIM_SIM_SIMULATION_HH
