#include "sim/event_queue.hh"

#include <algorithm>

namespace famsim {

void
EventQueue::pushHeap(HeapEntry entry)
{
    // Hole-based sift-up: parent of i is (i-1)/4.
    std::size_t i = heap_.size();
    heap_.push_back(entry); // grow; the slot is overwritten below
    while (i > 0) {
        std::size_t parent = (i - 1) >> 2;
        if (!earlier(entry, heap_[parent]))
            break;
        heap_[i] = heap_[parent];
        i = parent;
    }
    heap_[i] = entry;
}

void
EventQueue::popHeap()
{
    HeapEntry last = heap_.back();
    heap_.pop_back();
    if (heap_.empty())
        return;
    // Hole-based sift-down from the root: children of i are
    // 4i+1 .. 4i+4 — the four 16-byte entries of one level share
    // a single 64-byte cache line.
    std::size_t n = heap_.size();
    std::size_t i = 0;
    for (;;) {
        std::size_t first = 4 * i + 1;
        if (first >= n)
            break;
        std::size_t best = first;
        std::size_t end = std::min(first + 4, n);
        for (std::size_t c = first + 1; c < end; ++c) {
            if (earlier(heap_[c], heap_[best]))
                best = c;
        }
        if (!earlier(heap_[best], last))
            break;
        heap_[i] = heap_[best];
        i = best;
    }
    heap_[i] = last;
}

bool
EventQueue::runOne()
{
    if (heap_.empty())
        return false;
    HeapEntry top = heap_.front();
    popHeap();
    now_ = top.when;
    ++executed_;
    auto slot_idx = static_cast<std::uint32_t>(top.seqSlot & kSlotMask);
    Slot& slot = slots_[slot_idx];
    auto invoke = slot.invoke;
    slot.invoke = nullptr;
    slot.destroy = nullptr;
    // The thunk moves the callable out, recycles the slot, then runs
    // it — see the thunk comment in the header.
    invoke(*this, slot_idx);
    return true;
}

std::uint64_t
EventQueue::run(Tick limit)
{
    std::uint64_t count = 0;
    while (!heap_.empty() && heap_.front().when <= limit) {
        runOne();
        ++count;
    }
    // A bounded run simulates *through* the horizon: even if the queue
    // drained early (or only holds later events), time advances to the
    // limit so a subsequent scheduleAfter is relative to the horizon,
    // not to the last executed event. The open-ended default runs to
    // completion and leaves time at the last event's tick.
    if (limit != kForever && now_ < limit)
        now_ = limit;
    return count;
}

void
EventQueue::destroyPending()
{
    for (const HeapEntry& entry : heap_) {
        Slot& slot = slots_[entry.seqSlot & kSlotMask];
        if (slot.destroy)
            slot.destroy(slot);
    }
    heap_.clear();
}

} // namespace famsim
