#include "sim/event_queue.hh"

#include <utility>

#include "sim/logging.hh"

namespace famsim {

void
EventQueue::schedule(Tick when, Callback cb)
{
    FAMSIM_ASSERT(when >= now_, "event scheduled in the past: ", when,
                  " < ", now_);
    FAMSIM_ASSERT(cb, "null event callback");
    queue_.push(Entry{when, seq_++, std::move(cb)});
}

void
EventQueue::scheduleAfter(Tick delta, Callback cb)
{
    schedule(now_ + delta, std::move(cb));
}

bool
EventQueue::runOne()
{
    if (queue_.empty())
        return false;
    // priority_queue::top() is const; move out via const_cast, which is
    // safe because we pop immediately and never re-inspect the entry.
    Entry entry = std::move(const_cast<Entry&>(queue_.top()));
    queue_.pop();
    now_ = entry.when;
    ++executed_;
    entry.cb();
    return true;
}

std::uint64_t
EventQueue::run(Tick limit)
{
    std::uint64_t count = 0;
    while (!queue_.empty() && queue_.top().when <= limit) {
        runOne();
        ++count;
    }
    // A bounded run simulates *through* the horizon: even if the queue
    // drained early (or only holds later events), time advances to the
    // limit so a subsequent scheduleAfter is relative to the horizon,
    // not to the last executed event. The open-ended default runs to
    // completion and leaves time at the last event's tick.
    if (limit != kForever && now_ < limit)
        now_ = limit;
    return count;
}

} // namespace famsim
