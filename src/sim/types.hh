/**
 * @file
 * Fundamental simulator types: ticks, cycles, typed addresses and IDs.
 *
 * The simulator measures time in integer picoseconds so that a 2 GHz core
 * (500 ps period) and sub-nanosecond link serialization can both be
 * represented exactly. Addresses are strongly typed by address space so
 * that node-physical addresses can never be handed to the FAM media (or
 * vice versa) without an explicit, auditable conversion.
 */

#ifndef FAMSIM_SIM_TYPES_HH
#define FAMSIM_SIM_TYPES_HH

#include <compare>
#include <cstdint>
#include <functional>
#include <ostream>

namespace famsim {

/** Simulated time in picoseconds. */
using Tick = std::uint64_t;

/** Core clock cycles (frequency-dependent; see Core::period()). */
using Cycle = std::uint64_t;

/**
 * The largest representable tick. The single source for every
 * "never / forever" sentinel (EventQueue::kForever, the parallel
 * kernel's lane and edge sentinels, SyncWindow's saturation ceiling),
 * so the aliases can never drift apart.
 */
inline constexpr Tick kTickForever = ~Tick{0};

/** One picosecond. */
inline constexpr Tick kPicosecond = 1;
/** One nanosecond in ticks. */
inline constexpr Tick kNanosecond = 1000;
/** One microsecond in ticks. */
inline constexpr Tick kMicrosecond = 1000 * kNanosecond;
/** One millisecond in ticks. */
inline constexpr Tick kMillisecond = 1000 * kMicrosecond;

/** Identifier of a compute node. 14 usable bits per the DeACT ACM format. */
using NodeId = std::uint16_t;

/** Identifier of a core within a node. */
using CoreId = std::uint16_t;

/**
 * Identifier of a tenant job. Every memory operation and packet is
 * tagged with the job that generated it so FAM-side components can
 * attribute their counters per tenant; single-tenant configurations
 * use job 0 throughout.
 */
using JobId = std::uint16_t;

/** Upper bound on concurrent tenant jobs (sizes per-job stat tables). */
inline constexpr unsigned kMaxJobs = 64;

/** Address spaces a memory address can live in. */
enum class Space : std::uint8_t {
    Virt,      //!< Application virtual address (per-process).
    NodePhys,  //!< Node physical address (imaginary flat space per node).
    Fam,       //!< Fabric-attached-memory (global/system) physical address.
};

/**
 * A 64-bit address tagged with its address space.
 *
 * The tag is purely a compile-time property; the object is a single
 * uint64_t at runtime. Conversions between spaces must go through the
 * translation machinery (TLB, STU, FamTranslator), never through casts.
 */
template <Space S>
class TypedAddr
{
  public:
    static constexpr Space space = S;

    constexpr TypedAddr() = default;
    constexpr explicit TypedAddr(std::uint64_t value) : value_(value) {}

    /** Raw 64-bit value. */
    [[nodiscard]] constexpr std::uint64_t value() const { return value_; }

    /** Page number assuming @p page_bits bits of page offset. */
    [[nodiscard]] constexpr std::uint64_t
    pageNumber(unsigned page_bits = 12) const
    {
        return value_ >> page_bits;
    }

    /** Offset within the page. */
    [[nodiscard]] constexpr std::uint64_t
    pageOffset(unsigned page_bits = 12) const
    {
        return value_ & ((std::uint64_t{1} << page_bits) - 1);
    }

    /** Address rounded down to an @p align boundary (power of two). */
    [[nodiscard]] constexpr TypedAddr
    alignDown(std::uint64_t align) const
    {
        return TypedAddr(value_ & ~(align - 1));
    }

    /** Address of the 64-byte block containing this address. */
    [[nodiscard]] constexpr TypedAddr blockAddr() const
    {
        return alignDown(64);
    }

    constexpr TypedAddr operator+(std::uint64_t delta) const
    {
        return TypedAddr(value_ + delta);
    }

    constexpr auto operator<=>(const TypedAddr&) const = default;

  private:
    std::uint64_t value_ = 0;
};

/** Application virtual address. */
using VAddr = TypedAddr<Space::Virt>;
/** Node physical address (what the node OS manages). */
using NPAddr = TypedAddr<Space::NodePhys>;
/** FAM (system/global) physical address. */
using FamAddr = TypedAddr<Space::Fam>;

template <Space S>
inline std::ostream&
operator<<(std::ostream& os, const TypedAddr<S>& a)
{
    static constexpr const char* names[] = {"V", "NP", "FAM"};
    return os << names[static_cast<int>(S)] << ":0x" << std::hex
              << a.value() << std::dec;
}

/** Size of a base (small) page in bytes. */
inline constexpr std::uint64_t kPageSize = 4096;
/** log2(kPageSize). */
inline constexpr unsigned kPageBits = 12;
/** Size of a shared large page / bitmap region (1 GB). */
inline constexpr std::uint64_t kLargePageSize = std::uint64_t{1} << 30;
/** Cache block size in bytes (also the memory access granularity). */
inline constexpr std::uint64_t kBlockSize = 64;

} // namespace famsim

namespace std {

template <famsim::Space S>
struct hash<famsim::TypedAddr<S>> {
    size_t
    operator()(const famsim::TypedAddr<S>& a) const noexcept
    {
        return std::hash<std::uint64_t>{}(a.value());
    }
};

} // namespace std

#endif // FAMSIM_SIM_TYPES_HH
