/**
 * @file
 * Partition-ownership checker (the FAMSIM_CHECK build option).
 *
 * The parallel kernel's correctness rests on an ownership discipline:
 * a partition's event queue, its plain (non-atomic) statistics and its
 * inbound mailbox lanes are written only by the worker currently
 * executing that partition, and every cross-partition interaction goes
 * through a mailbox post, an arbitrated send or a barrier op. TSan can
 * catch a violation only when the scheduler happens to overlap the two
 * touches; this checker tags each guarded object with its owning
 * partition at wiring time, tracks the calling thread's (partition,
 * phase) context in the worker loop, and panics at the exact violating
 * access — identically on every run, at any thread count, including 1.
 *
 * Phase rules (see DESIGN.md "Correctness tooling"):
 *  - None (serial mode, wiring, coordinator sections, post-run reads):
 *    everything is allowed; there is no concurrency to race with.
 *  - Barrier (arbitrated-send callbacks, global barrier ops): all
 *    workers are quiescent and the coordinator runs single-threaded in
 *    a deterministic merge order, so cross-partition touches are legal
 *    by design.
 *  - Drain / Exec (the two fenced window phases): a thread may only
 *    touch state owned by the partition it is executing. During Drain,
 *    message payloads may be moved but never run or destroyed, so
 *    packet-pool traffic is additionally banned.
 *
 * SharedCounter and JobStatTable are deliberately untagged: their
 * relaxed-atomic adds are order-independent sums, safe and
 * deterministic from any partition. Objects never stamped with an
 * owner (serial-only fixtures, the fabric's barrier-bumped stats) are
 * never checked.
 *
 * With FAMSIM_CHECK off every hook compiles to nothing and every
 * guarded object carries zero extra bytes.
 */

#ifndef FAMSIM_SIM_CHECK_HH
#define FAMSIM_SIM_CHECK_HH

#include <cstdint>
#include <string>

namespace famsim {
namespace check {

/** "No owner stamped" / "no partition context" marker. */
inline constexpr std::uint32_t kUnowned = ~std::uint32_t{0};

/** The calling thread's position in the window protocol. */
enum class Phase : std::uint8_t {
    None = 0,    //!< serial mode, wiring, coordinator serial sections
    Barrier = 1, //!< arb callbacks / global ops: workers quiescent
    Drain = 2,   //!< mailbox merge epoch (fenced from execution)
    Exec = 3,    //!< window execution epoch
};

[[nodiscard]] const char* toString(Phase phase);

#if FAMSIM_CHECK

/** Thread-local accessor context published by the worker loop. */
struct Context {
    std::uint32_t partition = kUnowned;
    Phase phase = Phase::None;
};

[[nodiscard]] inline Context&
ctx()
{
    static thread_local Context context;
    return context;
}

/**
 * RAII (partition, phase) context, save/restore so barrier-op
 * callbacks nested under a coordinator scope unwind correctly.
 * Published by ParallelSim's worker loop alongside the thread-local
 * queue slot.
 */
class PhaseScope
{
  public:
    PhaseScope(std::uint32_t partition, Phase phase) : saved_(ctx())
    {
        ctx() = Context{partition, phase};
    }
    ~PhaseScope() { ctx() = saved_; }
    PhaseScope(const PhaseScope&) = delete;
    PhaseScope& operator=(const PhaseScope&) = delete;

  private:
    Context saved_;
};

/**
 * The partition that owns objects currently being wired, kUnowned
 * outside any WiringScope. Read by StatRegistry when a statistic is
 * first created, so per-partition components stamp their stats without
 * threading an owner argument through every constructor.
 */
[[nodiscard]] inline std::uint32_t&
wiringOwnerSlot()
{
    static thread_local std::uint32_t owner = kUnowned;
    return owner;
}

/** RAII wiring-owner context (nests; System stamps per node/module). */
class WiringScope
{
  public:
    explicit WiringScope(std::uint32_t owner) : saved_(wiringOwnerSlot())
    {
        wiringOwnerSlot() = owner;
    }
    ~WiringScope() { wiringOwnerSlot() = saved_; }
    WiringScope(const WiringScope&) = delete;
    WiringScope& operator=(const WiringScope&) = delete;

  private:
    std::uint32_t saved_;
};

/**
 * Ownership tag carried by each guarded statistic. The name points at
 * the registry's map key (node-based std::map: stable for the
 * registry's lifetime) so the failure diagnostic can say which stat.
 */
struct Tag {
    std::uint32_t owner = kUnowned;
    const std::string* name = nullptr;
};

[[noreturn]] void failAccess(const Tag& tag, const char* what);
[[noreturn]] void failQueue(std::uint32_t owner);
[[noreturn]] void failMailbox(std::uint32_t producer);
[[noreturn]] void failPacketPool();

/** True when the current phase enforces partition exclusivity. */
[[nodiscard]] inline bool
enforced(Phase phase)
{
    return phase == Phase::Drain || phase == Phase::Exec;
}

/** Hook: mutation of a tagged statistic. */
inline void
access(const Tag& tag, const char* what)
{
    if (tag.owner == kUnowned)
        return;
    const Context& c = ctx();
    if (enforced(c.phase) && c.partition != tag.owner)
        failAccess(tag, what);
}

/** Hook: EventQueue::schedule on a queue owned by @p owner. */
inline void
queueSchedule(std::uint32_t owner)
{
    if (owner == kUnowned)
        return;
    const Context& c = ctx();
    if (enforced(c.phase) && c.partition != owner)
        failQueue(owner);
}

/** Hook: Mailbox::push into the lane produced by @p producer. */
inline void
mailboxPush(std::uint32_t producer)
{
    if (producer == kUnowned)
        return;
    const Context& c = ctx();
    if (enforced(c.phase) && c.partition != producer)
        failMailbox(producer);
}

/**
 * Hook: packet pool alloc/recycle. Pools are thread-local (no race is
 * possible), but pool traffic during the Drain phase means a message
 * payload was run or destroyed while being merged — a violation of the
 * fenced-drain discipline that keeps the mailboxes lock-free.
 */
inline void
packetPoolOp()
{
    if (ctx().phase == Phase::Drain)
        failPacketPool();
}

#else // !FAMSIM_CHECK

// Zero-overhead stubs: empty scopes, no thread-locals, no tag bytes.
class PhaseScope
{
  public:
    PhaseScope(std::uint32_t, Phase) {}
};

class WiringScope
{
  public:
    explicit WiringScope(std::uint32_t) {}
};

#endif // FAMSIM_CHECK

} // namespace check
} // namespace famsim

/**
 * Hook macros: the guarded classes call these so their tag members can
 * be compiled out entirely (the macro arguments are discarded
 * unevaluated when FAMSIM_CHECK is off).
 */
#if FAMSIM_CHECK
#define FAMSIM_CHECK_STAT(tag, what) ::famsim::check::access(tag, what)
#define FAMSIM_CHECK_QUEUE(owner) ::famsim::check::queueSchedule(owner)
#define FAMSIM_CHECK_MAILBOX(producer) \
    ::famsim::check::mailboxPush(producer)
#define FAMSIM_CHECK_PACKET_POOL() ::famsim::check::packetPoolOp()
#else
#define FAMSIM_CHECK_STAT(tag, what) ((void)0)
#define FAMSIM_CHECK_QUEUE(owner) ((void)0)
#define FAMSIM_CHECK_MAILBOX(producer) ((void)0)
#define FAMSIM_CHECK_PACKET_POOL() ((void)0)
#endif

#endif // FAMSIM_SIM_CHECK_HH
