/**
 * @file
 * TraceSink — deterministic Chrome trace-event output.
 *
 * Components emit sim-time spans, instants and counter samples into
 * per-lane buffers (one lane per psim partition: nodes first, then FAM
 * media modules, the broker last — the serial kernel passes the same
 * lane ids explicitly, so both kernels produce the same lanes). Each
 * lane has exactly one writer at any time: the worker thread currently
 * executing that partition, or the coordinator/serial loop while the
 * workers are quiescent. No locks, no atomics on the emit path.
 *
 * write() flushes everything as Chrome `trace_event` JSON (loadable in
 * Perfetto / chrome://tracing), globally sorted by event *content* —
 * (ts, lane, phase, name, dur, arg) — not by emission order. Two runs
 * that produce the same multiset of events therefore produce
 * byte-identical files, which is what makes the trace of a
 * warmup-free scenario identical across `--threads {0,1,4}`: the
 * kernels may interleave same-tick work differently, but the set of
 * lifecycle events is the same. Packet ids never appear in the output
 * (they are thread-local-unique only; see mem/packet.hh).
 *
 * Timestamps are emitted in microseconds (ticks are picoseconds, so
 * ts = ticks / 1e6) through json::writeNumber's shortest round-trip
 * formatting — deterministic for a given tick value.
 */

#ifndef FAMSIM_SIM_TRACE_SINK_HH
#define FAMSIM_SIM_TRACE_SINK_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace famsim {

/** Buffered, deterministic Chrome trace-event sink. */
class TraceSink
{
  public:
    /** Event category bits (--trace-filter). */
    enum Category : unsigned {
        kPacket = 1u << 0, //!< packet-lifecycle spans/instants
        kPsim = 1u << 1,   //!< parallel-kernel windows/counters
        kAll = kPacket | kPsim,
    };

    /**
     * @param lanes timeline lane count (psim partition count:
     *        nodes + media modules + broker).
     * @param categories mask of Category bits to record.
     */
    explicit TraceSink(std::uint32_t lanes, unsigned categories = kAll);

    TraceSink(const TraceSink&) = delete;
    TraceSink& operator=(const TraceSink&) = delete;

    /** Whether events of @p category are recorded (callers gate any
     *  nontrivial argument computation on this). */
    [[nodiscard]] bool
    wants(unsigned category) const
    {
        return (categories_ & category) != 0;
    }

    [[nodiscard]] std::uint32_t lanes() const
    {
        return static_cast<std::uint32_t>(lanes_.size());
    }

    /** Display name of @p lane ("node0", "media1", "broker"). */
    void setLaneName(std::uint32_t lane, std::string name);

    /**
     * Complete span [start, end] on @p lane. @p name must be a string
     * literal (stored by pointer, compared by content at flush).
     */
    void
    span(unsigned category, std::uint32_t lane, const char* name,
         Tick start, Tick end, std::uint64_t arg = 0)
    {
        if (!wants(category))
            return;
        push(lane, 'X', name, start, end >= start ? end - start : 0, arg);
    }

    /** Instant event at @p ts on @p lane. */
    void
    instant(unsigned category, std::uint32_t lane, const char* name,
            Tick ts, std::uint64_t arg = 0)
    {
        if (!wants(category))
            return;
        push(lane, 'i', name, ts, 0, arg);
    }

    /** Counter-track sample (@p value plotted over time) on @p lane. */
    void
    counter(unsigned category, std::uint32_t lane, const char* name,
            Tick ts, std::uint64_t value)
    {
        if (!wants(category))
            return;
        push(lane, 'C', name, ts, 0, value);
    }

    /** Total buffered events (tests; cheap, coordinator-only). */
    [[nodiscard]] std::uint64_t size() const;

    /**
     * Flush everything as one Chrome trace JSON object. Only valid
     * while emitters are quiescent (after the run).
     */
    void write(std::ostream& os) const;

  private:
    struct Event {
        Tick ts;
        Tick dur;
        std::uint32_t lane;
        std::uint32_t seq; //!< per-lane emission index (sort stability)
        char ph;
        const char* name;
        std::uint64_t arg;
    };

    void
    push(std::uint32_t lane, char ph, const char* name, Tick ts, Tick dur,
         std::uint64_t arg)
    {
        auto& buf = lanes_[lane].events;
        Event ev;
        ev.ts = ts;
        ev.dur = dur;
        ev.lane = lane;
        ev.seq = static_cast<std::uint32_t>(buf.size());
        ev.ph = ph;
        ev.name = name;
        ev.arg = arg;
        buf.push_back(ev);
    }

    struct Lane {
        std::string name;
        std::vector<Event> events;
    };

    unsigned categories_;
    std::vector<Lane> lanes_;
};

} // namespace famsim

#endif // FAMSIM_SIM_TRACE_SINK_HH
