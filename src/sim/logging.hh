/**
 * @file
 * gem5-style status and error reporting.
 *
 * panic()  — an internal simulator invariant was violated (a famsim bug);
 *            aborts so a debugger/core dump can capture the state.
 * fatal()  — the simulation cannot continue because of a user error
 *            (bad configuration, invalid parameters); exits with code 1.
 * warn()   — something is modelled approximately; simulation continues.
 *            Repeats of the same message are rate-limited: the first
 *            occurrence prints, the rest are counted and reported as
 *            one "suppressed N repeats" line at process exit, so
 *            pooled sweeps don't emit one copy per worker per point.
 * inform() — status messages, no connotation of incorrect behaviour.
 *
 * In unit tests, panic/fatal can be redirected to throw exceptions so
 * death paths are testable without forking (see ScopedThrowOnError).
 */

#ifndef FAMSIM_SIM_LOGGING_HH
#define FAMSIM_SIM_LOGGING_HH

#include <sstream>
#include <stdexcept>
#include <string>

namespace famsim {

/** Thrown instead of aborting when ScopedThrowOnError is active. */
class SimError : public std::runtime_error
{
  public:
    explicit SimError(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {

inline void
appendAll(std::ostringstream&)
{
}

template <typename T, typename... Rest>
void
appendAll(std::ostringstream& os, const T& first, const Rest&... rest)
{
    os << first;
    appendAll(os, rest...);
}

[[noreturn]] void panicImpl(const char* file, int line,
                            const std::string& message);
[[noreturn]] void fatalImpl(const char* file, int line,
                            const std::string& message);
void warnImpl(const std::string& message);
void informImpl(const std::string& message);

} // namespace detail

/**
 * While alive, panic()/fatal() throw SimError instead of terminating.
 * Intended for tests only; nesting is supported.
 */
class ScopedThrowOnError
{
  public:
    ScopedThrowOnError();
    ~ScopedThrowOnError();
    ScopedThrowOnError(const ScopedThrowOnError&) = delete;
    ScopedThrowOnError& operator=(const ScopedThrowOnError&) = delete;
};

/** Suppress warn()/inform() output while alive (for quiet benches). */
class ScopedQuietLogs
{
  public:
    ScopedQuietLogs();
    ~ScopedQuietLogs();
    ScopedQuietLogs(const ScopedQuietLogs&) = delete;
    ScopedQuietLogs& operator=(const ScopedQuietLogs&) = delete;
};

template <typename... Args>
[[noreturn]] void
panicAt(const char* file, int line, const Args&... args)
{
    std::ostringstream os;
    detail::appendAll(os, args...);
    detail::panicImpl(file, line, os.str());
}

template <typename... Args>
[[noreturn]] void
fatalAt(const char* file, int line, const Args&... args)
{
    std::ostringstream os;
    detail::appendAll(os, args...);
    detail::fatalImpl(file, line, os.str());
}

template <typename... Args>
void
warn(const Args&... args)
{
    std::ostringstream os;
    detail::appendAll(os, args...);
    detail::warnImpl(os.str());
}

template <typename... Args>
void
inform(const Args&... args)
{
    std::ostringstream os;
    detail::appendAll(os, args...);
    detail::informImpl(os.str());
}

} // namespace famsim

/** Report an internal simulator bug and abort (or throw under test). */
#define FAMSIM_PANIC(...) ::famsim::panicAt(__FILE__, __LINE__, __VA_ARGS__)
/** Report an unrecoverable user/configuration error. */
#define FAMSIM_FATAL(...) ::famsim::fatalAt(__FILE__, __LINE__, __VA_ARGS__)
/** Panic when @p cond is false. */
#define FAMSIM_ASSERT(cond, ...)                                            \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::famsim::panicAt(__FILE__, __LINE__,                           \
                              "assertion failed: " #cond " ",               \
                              ##__VA_ARGS__);                               \
        }                                                                   \
    } while (0)

#endif // FAMSIM_SIM_LOGGING_HH
