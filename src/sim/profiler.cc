#include "sim/profiler.hh"

#include <algorithm>

#include "sim/stats.hh"

namespace famsim {

void
Profiler::writeJson(std::ostream& os, int indent) const
{
    const std::string outer(indent, ' ');
    const std::string inner(indent + 2, ' ');
    const std::string item(indent + 4, ' ');

    os << "{\n"
       << inner
       << "\"note\": \"host wall-clock timings: nondeterministic, "
          "excluded from golden comparisons\",\n"
       << inner << "\"threads\": " << threads_ << ",\n"
       << inner << "\"windows\": " << windows_ << ",\n"
       << inner << "\"widened\": " << widened_ << ",\n"
       << inner << "\"wall_s\": ";
    json::writeNumber(os, wall_);
    os << ",\n" << inner << "\"coordinator_s\": ";
    json::writeNumber(os, coordinator_);
    os << ",\n" << inner << "\"partitions\": [";
    for (std::size_t p = 0; p < parts_.size(); ++p) {
        const PartTimes& t = parts_[p];
        // A partition is "idle" whenever the run is in flight but the
        // partition is neither draining nor executing: waiting at the
        // epoch barriers or for the coordinator. Derived, approximate.
        const double idle =
            std::max(0.0, wall_ - t.drain - t.exec);
        os << (p ? "," : "") << "\n" << item << "{\"lane\": " << p
           << ", \"drain_s\": ";
        json::writeNumber(os, t.drain);
        os << ", \"exec_s\": ";
        json::writeNumber(os, t.exec);
        os << ", \"idle_s\": ";
        json::writeNumber(os, idle);
        os << "}";
    }
    if (!parts_.empty())
        os << "\n" << inner;
    os << "]\n" << outer << "}";
}

} // namespace famsim
