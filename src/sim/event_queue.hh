/**
 * @file
 * Deterministic discrete-event queue.
 *
 * Events are ordered by (tick, insertion sequence). Ties at the same tick
 * execute in insertion order, which makes multi-component simulations
 * fully deterministic for a given seed and configuration — a property the
 * test suite relies on.
 */

#ifndef FAMSIM_SIM_EVENT_QUEUE_HH
#define FAMSIM_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/types.hh"

namespace famsim {

/** Priority queue of callbacks ordered by simulated time. */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /** Sentinel limit for run(): execute until the queue drains. */
    static constexpr Tick kForever = ~Tick{0};

    /**
     * Schedule @p cb to run at absolute tick @p when.
     * Scheduling in the past (before curTick()) is a simulator bug.
     */
    void schedule(Tick when, Callback cb);

    /** Schedule @p cb @p delta ticks after the current tick. */
    void scheduleAfter(Tick delta, Callback cb);

    /** Execute the earliest event. @return false if the queue is empty. */
    bool runOne();

    /**
     * Run events until the queue drains or the tick would exceed
     * @p limit. Events exactly at @p limit still run. With a finite
     * @p limit, curTick() afterwards equals @p limit even if the queue
     * drained before the horizon; with the kForever default, time
     * stays at the last executed event.
     * @return the number of events executed.
     */
    std::uint64_t run(Tick limit = kForever);

    /** Current simulated time (last executed event's tick). */
    [[nodiscard]] Tick curTick() const { return now_; }

    /** Number of pending events. */
    [[nodiscard]] std::size_t size() const { return queue_.size(); }

    [[nodiscard]] bool empty() const { return queue_.empty(); }

    /** Total events executed over the queue's lifetime. */
    [[nodiscard]] std::uint64_t executed() const { return executed_; }

  private:
    struct Entry {
        Tick when;
        std::uint64_t seq;
        Callback cb;
    };

    struct Later {
        bool
        operator()(const Entry& a, const Entry& b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
    Tick now_ = 0;
    std::uint64_t seq_ = 0;
    std::uint64_t executed_ = 0;
};

} // namespace famsim

#endif // FAMSIM_SIM_EVENT_QUEUE_HH
