/**
 * @file
 * Deterministic discrete-event queue.
 *
 * Events are ordered by (tick, insertion sequence). Ties at the same tick
 * execute in insertion order, which makes multi-component simulations
 * fully deterministic for a given seed and configuration — a property the
 * test suite relies on.
 *
 * Implementation: a 4-ary min-heap of POD entries (tick, sequence,
 * slot index) over an arena of pooled callback slots. Callables are
 * constructed in place in a slot's inline small-buffer storage (heap
 * fallback only for captures larger than Slot::kInlineBytes) and slots
 * are recycled through a free list, so steady-state scheduling performs
 * no allocation at all — unlike the former std::priority_queue of
 * std::function entries, which allocated on every schedule() with a
 * fat capture. The 4-ary layout halves the tree depth of a binary heap
 * and keeps each sift-down's children in one cache line.
 */

#ifndef FAMSIM_SIM_EVENT_QUEUE_HH
#define FAMSIM_SIM_EVENT_QUEUE_HH

#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/check.hh"
#include "sim/logging.hh"
#include "sim/types.hh"

namespace famsim {

/** Priority queue of callbacks ordered by simulated time. */
class EventQueue
{
  public:
    /** Sentinel limit for run(): execute until the queue drains. */
    static constexpr Tick kForever = kTickForever;

    EventQueue() = default;
    ~EventQueue() { destroyPending(); }

    // Slots hold type-erased callables in raw storage; copying them
    // bitwise would be wrong, so the queue is move-only. Moving steals
    // the containers wholesale, so no callable is moved element-wise.
    EventQueue(const EventQueue&) = delete;
    EventQueue& operator=(const EventQueue&) = delete;
    EventQueue(EventQueue&&) = default;

    EventQueue&
    operator=(EventQueue&& other) noexcept
    {
        if (this != &other) {
            destroyPending(); // don't leak this queue's pending callables
            heap_ = std::move(other.heap_);
            slots_ = std::move(other.slots_);
            freeList_ = std::move(other.freeList_);
            now_ = other.now_;
            seq_ = other.seq_;
            executed_ = other.executed_;
            id_ = other.id_;
#if FAMSIM_CHECK
            checkOwner_ = other.checkOwner_;
#endif
        }
        return *this;
    }

    /**
     * Schedule @p cb to run at absolute tick @p when.
     * Scheduling in the past (before curTick()) is a simulator bug.
     */
    template <typename F>
    void
    schedule(Tick when, F&& cb)
    {
        using Fn = std::decay_t<F>;
        static_assert(std::is_invocable_r_v<void, Fn&>,
                      "event callback must be invocable as void()");
        FAMSIM_CHECK_QUEUE(checkOwner_);
        FAMSIM_ASSERT(when >= now_, "event scheduled in the past: ", when,
                      " < ", now_);
        if constexpr (std::is_constructible_v<bool, const Fn&>)
            FAMSIM_ASSERT(static_cast<bool>(cb), "null event callback");
        std::uint32_t idx = allocSlot();
        Slot& slot = slots_[idx];
        try {
            if constexpr (fitsInline<Fn>()) {
                ::new (static_cast<void*>(slot.storage))
                    Fn(std::forward<F>(cb));
                slot.invoke = &invokeInline<Fn>;
                slot.destroy = &destroyInline<Fn>;
            } else {
                slot.heapObj = new Fn(std::forward<F>(cb));
                slot.invoke = &invokeHeap<Fn>;
                slot.destroy = &destroyHeap<Fn>;
            }
            FAMSIM_ASSERT(seq_ < kMaxSeq, "event sequence space exhausted");
            FAMSIM_ASSERT(idx <= kSlotMask, "event slot space exhausted");
            pushHeap(HeapEntry{when, (seq_++ << kSlotBits) | idx});
        } catch (...) {
            if (slot.destroy) {
                slot.destroy(slot);
                slot.destroy = nullptr;
                slot.invoke = nullptr;
            }
            freeList_.push_back(idx);
            throw;
        }
    }

    /** Schedule @p cb @p delta ticks after the current tick. */
    template <typename F>
    void
    scheduleAfter(Tick delta, F&& cb)
    {
        schedule(now_ + delta, std::forward<F>(cb));
    }

    /** Execute the earliest event. @return false if the queue is empty. */
    bool runOne();

    /**
     * Run events until the queue drains or the tick would exceed
     * @p limit. Events exactly at @p limit still run. With a finite
     * @p limit, curTick() afterwards equals @p limit even if the queue
     * drained before the horizon; with the kForever default, time
     * stays at the last executed event.
     * @return the number of events executed.
     */
    std::uint64_t run(Tick limit = kForever);

    /** Current simulated time (last executed event's tick). */
    [[nodiscard]] Tick curTick() const { return now_; }

    /** Tick of the earliest pending event (kForever when empty). */
    [[nodiscard]] Tick
    nextTick() const
    {
        return heap_.empty() ? kForever : heap_.front().when;
    }

    /**
     * Partition handle (src/psim/): stamped by the owning NodeQueue
     * with its partition index, and how ParallelSim::currentPartition
     * resolves the executing partition from the thread-local queue
     * slot. 0 (the default) on the serial/global queue, which is
     * never published in that slot.
     */
    [[nodiscard]] std::uint32_t id() const { return id_; }
    void setId(std::uint32_t id) { id_ = id; }

    /**
     * Stamp the queue's owning partition for the FAMSIM_CHECK
     * ownership hooks (NodeQueue, at wiring). Unstamped queues (the
     * serial/global queue) are never checked. No-op when the checker
     * is compiled out.
     */
    void
    setCheckOwner(std::uint32_t owner)
    {
#if FAMSIM_CHECK
        checkOwner_ = owner;
#else
        (void)owner;
#endif
    }

    /** Number of pending events. */
    [[nodiscard]] std::size_t size() const { return heap_.size(); }

    [[nodiscard]] bool empty() const { return heap_.empty(); }

    /** Total events executed over the queue's lifetime. */
    [[nodiscard]] std::uint64_t executed() const { return executed_; }

    /** Callback slots currently pooled (pending + recyclable). */
    [[nodiscard]] std::size_t pooledSlots() const { return slots_.size(); }

  private:
    /**
     * POD heap entry; the callable lives in slots_[slot & kSlotMask].
     * Sequence (upper 40 bits) and slot (lower 24) share one word so
     * an entry is 16 bytes — two per cache line during sift-down.
     * Comparing the packed word compares the sequence first; sequence
     * numbers are unique, so the slot bits never influence ordering.
     */
    struct HeapEntry {
        Tick when;
        std::uint64_t seqSlot;
    };

    static constexpr unsigned kSlotBits = 24;
    static constexpr std::uint64_t kSlotMask =
        (std::uint64_t{1} << kSlotBits) - 1;
    static constexpr std::uint64_t kMaxSeq =
        ~std::uint64_t{0} >> kSlotBits;

    /** One pooled callback: SBO storage plus invoke/destroy thunks. */
    struct Slot {
        static constexpr std::size_t kInlineBytes = 64;

        /** Move the callable out, recycle the slot, run it. */
        void (*invoke)(EventQueue&, std::uint32_t) = nullptr;
        /** Destroy in place without calling (queue teardown). */
        void (*destroy)(Slot&) = nullptr;
        void* heapObj = nullptr;
        alignas(std::max_align_t) unsigned char storage[kInlineBytes];
    };

    template <typename Fn>
    static constexpr bool
    fitsInline()
    {
        return sizeof(Fn) <= Slot::kInlineBytes &&
               alignof(Fn) <= alignof(std::max_align_t);
    }

    /**
     * Invoke thunks move the callable OUT of the slot onto the stack
     * and recycle the slot before running it: the slot arena can then
     * be a plain vector (no live slot references during a callback,
     * which may schedule and grow the arena), and a just-drained hot
     * slot is immediately reusable by events the callback schedules.
     */
    template <typename Fn>
    static void
    invokeInline(EventQueue& q, std::uint32_t idx)
    {
        Fn* obj = std::launder(reinterpret_cast<Fn*>(
            q.slots_[idx].storage));
        Fn fn(std::move(*obj));
        obj->~Fn();
        q.freeList_.push_back(idx);
        fn();
    }

    template <typename Fn>
    static void
    destroyInline(Slot& slot)
    {
        std::launder(reinterpret_cast<Fn*>(slot.storage))->~Fn();
    }

    template <typename Fn>
    static void
    invokeHeap(EventQueue& q, std::uint32_t idx)
    {
        Fn* fn = static_cast<Fn*>(q.slots_[idx].heapObj);
        q.freeList_.push_back(idx);
        struct Reaper {
            Fn* fn;
            ~Reaper() { delete fn; }
        } reaper{fn};
        (*fn)();
    }

    template <typename Fn>
    static void
    destroyHeap(Slot& slot)
    {
        delete static_cast<Fn*>(slot.heapObj);
    }

    [[nodiscard]] std::uint32_t
    allocSlot()
    {
        if (!freeList_.empty()) {
            std::uint32_t idx = freeList_.back();
            freeList_.pop_back();
            return idx;
        }
        slots_.emplace_back();
        return static_cast<std::uint32_t>(slots_.size() - 1);
    }

    static bool
    earlier(const HeapEntry& a, const HeapEntry& b)
    {
        return a.when < b.when ||
               (a.when == b.when && a.seqSlot < b.seqSlot);
    }

    void pushHeap(HeapEntry entry);
    void popHeap();
    void destroyPending();

    std::vector<HeapEntry> heap_;
    /**
     * Slot arena. A plain vector is safe because invoke thunks move
     * the callable out before running it — no slot reference is live
     * while a callback (which may grow the arena) executes.
     */
    std::vector<Slot> slots_;
    std::vector<std::uint32_t> freeList_;
    Tick now_ = 0;
    std::uint64_t seq_ = 0;
    std::uint64_t executed_ = 0;
    std::uint32_t id_ = 0;
#if FAMSIM_CHECK
    /** Owning partition for the ownership hooks; kUnowned = unchecked. */
    std::uint32_t checkOwner_ = check::kUnowned;
#endif
};

} // namespace famsim

#endif // FAMSIM_SIM_EVENT_QUEUE_HH
