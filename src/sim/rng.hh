/**
 * @file
 * Deterministic PCG32 random number generator.
 *
 * A small, fast, seedable generator so that every experiment is exactly
 * reproducible. Components that need randomness (workload generators,
 * random replacement) each own an Rng seeded from the simulation seed
 * plus a stream id, so adding a component never perturbs another
 * component's stream.
 *
 * Reproducibility contract: every helper here consumes the underlying
 * PCG stream in a fixed, documented pattern and returns the same value
 * for the same draws. The fast paths (power-of-two masks, Lemire
 * fastmod in FastBound32) are strength reductions of the portable
 * expressions, not new algorithms — golden files depend on that.
 */

#ifndef FAMSIM_SIM_RNG_HH
#define FAMSIM_SIM_RNG_HH

#include <cstdint>

#include "sim/logging.hh"

namespace famsim {

/** PCG32 (Melissa O'Neill's pcg32_random_r) with stream selection. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL,
                 std::uint64_t stream = 0xda3e39cb94b95bdbULL)
    {
        state_ = 0;
        inc_ = (stream << 1) | 1;
        next();
        state_ += seed;
        next();
    }

    /** Uniform 32-bit value. */
    std::uint32_t
    next()
    {
        std::uint64_t old = state_;
        state_ = old * 6364136223846793005ULL + inc_;
        auto xorshifted =
            static_cast<std::uint32_t>(((old >> 18) ^ old) >> 27);
        auto rot = static_cast<std::uint32_t>(old >> 59);
        return (xorshifted >> rot) | (xorshifted << ((-rot) & 31));
    }

    /** Uniform 64-bit value. */
    std::uint64_t
    next64()
    {
        return (static_cast<std::uint64_t>(next()) << 32) | next();
    }

    /** Uniform value in [0, bound). @p bound must be nonzero. */
    std::uint32_t
    below(std::uint32_t bound)
    {
        FAMSIM_ASSERT(bound > 0, "Rng::below with zero bound");
        // Power-of-two bounds take one draw with threshold 0 under the
        // debiased-modulo scheme below, and r % bound == r & (bound-1),
        // so the mask returns the identical value from the identical
        // single draw — just without the division.
        if ((bound & (bound - 1)) == 0)
            return next() & (bound - 1);
        // Debiased modulo (Lemire-style rejection).
        std::uint32_t threshold = (-bound) % bound;
        for (;;) {
            std::uint32_t r = next();
            if (r >= threshold)
                return r % bound;
        }
    }

    /** Uniform 64-bit value in [0, bound). @p bound must be nonzero. */
    std::uint64_t
    below64(std::uint64_t bound)
    {
        FAMSIM_ASSERT(bound > 0, "Rng::below64 with zero bound");
        if (bound <= 0xffffffffULL)
            return below(static_cast<std::uint32_t>(bound));
        // Same single-draw equivalence as below(): for power-of-two
        // bounds the rejection threshold (-bound) % bound is zero.
        if ((bound & (bound - 1)) == 0)
            return next64() & (bound - 1);
        // Rejection over the top 64-bit range.
        std::uint64_t threshold = (-bound) % bound;
        for (;;) {
            std::uint64_t r = next64();
            if (r >= threshold)
                return r % bound;
        }
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next()) / 4294967296.0;
    }

    /** Bernoulli trial with probability @p p of returning true. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

  private:
    std::uint64_t state_;
    std::uint64_t inc_;
};

/**
 * Precomputed sampler for repeated Rng::below(bound) calls with a
 * fixed 32-bit bound: the rejection threshold and a Lemire fastmod
 * magic are computed once, so the hot path has no division at all.
 *
 * sample() consumes the PCG stream exactly like Rng::below(bound) and
 * returns bit-identical values — the fastmod identity
 * r % d == mulhi64(r * ceil(2^64/d), d) is exact for all 32-bit r, d
 * (Lemire & Kaser, "Faster remainders when the divisor is a constant").
 */
class FastBound32
{
  public:
    explicit FastBound32(std::uint32_t bound)
        : bound_(bound),
          mask_(bound - 1),
          pow2_(bound != 0 && (bound & (bound - 1)) == 0)
    {
        // Divisions must come after the zero check, not in the member
        // initializers — a zero bound must panic, not SIGFPE.
        FAMSIM_ASSERT(bound > 0, "FastBound32 with zero bound");
        threshold_ = (0u - bound) % bound;
        magic_ = 0xffffffffffffffffULL / bound + 1;
    }

    /** Uniform value in [0, bound), same draws as Rng::below(bound). */
    std::uint32_t
    sample(Rng& rng) const
    {
        if (pow2_)
            return rng.next() & mask_;
        for (;;) {
            std::uint32_t r = rng.next();
            if (r >= threshold_)
                return mod(r);
        }
    }

    /** Exact r % bound without a division. */
    [[nodiscard]] std::uint32_t
    mod(std::uint32_t r) const
    {
        if (pow2_)
            return r & mask_;
        std::uint64_t lowbits = magic_ * r;
        return static_cast<std::uint32_t>(
            (static_cast<unsigned __int128>(lowbits) * bound_) >> 64);
    }

    [[nodiscard]] std::uint32_t bound() const { return bound_; }

  private:
    std::uint32_t bound_;
    std::uint32_t mask_;
    bool pow2_;
    std::uint32_t threshold_ = 0;
    std::uint64_t magic_ = 0;
};

} // namespace famsim

#endif // FAMSIM_SIM_RNG_HH
