/**
 * @file
 * Deterministic PCG32 random number generator.
 *
 * A small, fast, seedable generator so that every experiment is exactly
 * reproducible. Components that need randomness (workload generators,
 * random replacement) each own an Rng seeded from the simulation seed
 * plus a stream id, so adding a component never perturbs another
 * component's stream.
 */

#ifndef FAMSIM_SIM_RNG_HH
#define FAMSIM_SIM_RNG_HH

#include <cstdint>

namespace famsim {

/** PCG32 (Melissa O'Neill's pcg32_random_r) with stream selection. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL,
                 std::uint64_t stream = 0xda3e39cb94b95bdbULL)
    {
        state_ = 0;
        inc_ = (stream << 1) | 1;
        next();
        state_ += seed;
        next();
    }

    /** Uniform 32-bit value. */
    std::uint32_t
    next()
    {
        std::uint64_t old = state_;
        state_ = old * 6364136223846793005ULL + inc_;
        auto xorshifted =
            static_cast<std::uint32_t>(((old >> 18) ^ old) >> 27);
        auto rot = static_cast<std::uint32_t>(old >> 59);
        return (xorshifted >> rot) | (xorshifted << ((-rot) & 31));
    }

    /** Uniform 64-bit value. */
    std::uint64_t
    next64()
    {
        return (static_cast<std::uint64_t>(next()) << 32) | next();
    }

    /** Uniform value in [0, bound). @p bound must be nonzero. */
    std::uint32_t
    below(std::uint32_t bound)
    {
        // Debiased modulo (Lemire-style rejection).
        std::uint32_t threshold = (-bound) % bound;
        for (;;) {
            std::uint32_t r = next();
            if (r >= threshold)
                return r % bound;
        }
    }

    /** Uniform 64-bit value in [0, bound). */
    std::uint64_t
    below64(std::uint64_t bound)
    {
        if (bound <= 0xffffffffULL)
            return below(static_cast<std::uint32_t>(bound));
        // Rejection over the top 64-bit range.
        std::uint64_t threshold = (-bound) % bound;
        for (;;) {
            std::uint64_t r = next64();
            if (r >= threshold)
                return r % bound;
        }
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next()) / 4294967296.0;
    }

    /** Bernoulli trial with probability @p p of returning true. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

  private:
    std::uint64_t state_;
    std::uint64_t inc_;
};

} // namespace famsim

#endif // FAMSIM_SIM_RNG_HH
