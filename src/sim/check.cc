#include "sim/check.hh"

#include "sim/logging.hh"

namespace famsim {
namespace check {

const char*
toString(Phase phase)
{
    switch (phase) {
      case Phase::None: return "none";
      case Phase::Barrier: return "barrier";
      case Phase::Drain: return "drain";
      case Phase::Exec: return "exec";
    }
    return "?";
}

#if FAMSIM_CHECK

namespace {

/** "partition N" or "no partition" for diagnostics. */
std::string
partitionName(std::uint32_t partition)
{
    if (partition == kUnowned)
        return "no partition";
    return "partition " + std::to_string(partition);
}

} // namespace

void
failAccess(const Tag& tag, const char* what)
{
    const Context& c = ctx();
    FAMSIM_PANIC("cross-partition stat write: ", what, " on '",
                 tag.name ? *tag.name : std::string("<unregistered>"),
                 "' owned by ", partitionName(tag.owner), ", touched by ",
                 partitionName(c.partition), " during the ",
                 toString(c.phase),
                 " phase; route it through a mailbox post or a barrier "
                 "op, or use a SharedCounter/JobStatTable");
}

void
failQueue(std::uint32_t owner)
{
    const Context& c = ctx();
    FAMSIM_PANIC("cross-partition schedule: event queue owned by ",
                 partitionName(owner), ", scheduled on by ",
                 partitionName(c.partition), " during the ",
                 toString(c.phase),
                 " phase; route it through a mailbox post or a barrier "
                 "op");
}

void
failMailbox(std::uint32_t producer)
{
    const Context& c = ctx();
    FAMSIM_PANIC("cross-partition mailbox push: lane produced by ",
                 partitionName(producer), ", pushed by ",
                 partitionName(c.partition), " during the ",
                 toString(c.phase),
                 " phase; post from the owning source partition");
}

void
failPacketPool()
{
    const Context& c = ctx();
    FAMSIM_PANIC("packet pool operation on ", partitionName(c.partition),
                 " during the drain phase; drains may move message "
                 "payloads but must never run or destroy them");
}

#endif // FAMSIM_CHECK

} // namespace check
} // namespace famsim
