#include "sim/stats.hh"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <iomanip>
#include <sstream>

#include "sim/logging.hh"

namespace famsim {

namespace json {

void
writeString(std::ostream& os, const std::string& s)
{
    os << '"';
    for (char c : s) {
        switch (c) {
          case '"': os << "\\\""; break;
          case '\\': os << "\\\\"; break;
          case '\n': os << "\\n"; break;
          case '\t': os << "\\t"; break;
          case '\r': os << "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c));
                os << buf;
            } else {
                os << c;
            }
        }
    }
    os << '"';
}

void
writeNumber(std::ostream& os, double v)
{
    if (!std::isfinite(v)) {
        // JSON has no Inf/NaN; null is the conventional substitute.
        os << "null";
        return;
    }
    char buf[32];
    auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
    FAMSIM_ASSERT(ec == std::errc{}, "double-to-JSON conversion failed");
    os.write(buf, ptr - buf);
}

} // namespace json

Histogram::Histogram(std::uint64_t bucket_width, std::size_t buckets)
    : bucketWidth_(bucket_width), counts_(buckets, 0)
{
    FAMSIM_ASSERT(bucket_width > 0, "histogram bucket width must be > 0");
    FAMSIM_ASSERT(buckets > 0, "histogram must have at least one bucket");
}

void
Histogram::sample(std::uint64_t value)
{
    FAMSIM_CHECK_STAT(checkTag, "histogram sample");
    std::size_t idx = value / bucketWidth_;
    if (idx >= counts_.size())
        idx = counts_.size() - 1; // saturate into the last bucket
    ++counts_[idx];
    ++samples_;
    sum_ += value;
    if (value > max_)
        max_ = value;
}

void
Histogram::reset()
{
    std::fill(counts_.begin(), counts_.end(), 0);
    samples_ = 0;
    sum_ = 0;
    max_ = 0;
}

double
Histogram::mean() const
{
    return samples_ == 0 ? 0.0
                         : static_cast<double>(sum_) /
                               static_cast<double>(samples_);
}

std::uint64_t
Histogram::bucket(std::size_t i) const
{
    FAMSIM_ASSERT(i < counts_.size(), "histogram bucket out of range");
    return counts_[i];
}

std::uint64_t
Histogram::percentile(double p) const
{
    FAMSIM_ASSERT(p > 0.0 && p <= 1.0,
                  "percentile fraction must be in (0, 1]");
    if (samples_ == 0)
        return 0;
    // Nearest rank: the ceil(p * samples)-th smallest sample, resolved
    // to its bucket's lower edge.
    const auto rank = static_cast<std::uint64_t>(
        std::ceil(p * static_cast<double>(samples_)));
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        cumulative += counts_[i];
        if (cumulative >= rank)
            return static_cast<std::uint64_t>(i) * bucketWidth_;
    }
    return static_cast<std::uint64_t>(counts_.size() - 1) * bucketWidth_;
}

Counter&
StatRegistry::counter(const std::string& name, const std::string& desc)
{
    auto it = entries_.try_emplace(name).first;
    auto& entry = it->second;
    if (!entry.counter) {
        FAMSIM_ASSERT(!entry.shared && !entry.scalar && !entry.histogram &&
                          !entry.jobs,
                      "stat '", name, "' re-registered with another type");
        entry.desc = desc;
        entry.counter = std::make_unique<Counter>();
#if FAMSIM_CHECK
        entry.counter->checkTag =
            check::Tag{check::wiringOwnerSlot(), &it->first};
#endif
    }
    return *entry.counter;
}

SharedCounter&
StatRegistry::sharedCounter(const std::string& name,
                            const std::string& desc)
{
    auto& entry = entries_[name];
    if (!entry.shared) {
        FAMSIM_ASSERT(!entry.counter && !entry.scalar && !entry.histogram &&
                          !entry.jobs,
                      "stat '", name, "' re-registered with another type");
        entry.desc = desc;
        entry.shared = std::make_unique<SharedCounter>();
    }
    return *entry.shared;
}

Scalar&
StatRegistry::scalar(const std::string& name, const std::string& desc)
{
    auto it = entries_.try_emplace(name).first;
    auto& entry = it->second;
    if (!entry.scalar) {
        FAMSIM_ASSERT(!entry.counter && !entry.shared && !entry.histogram &&
                          !entry.jobs,
                      "stat '", name, "' re-registered with another type");
        entry.desc = desc;
        entry.scalar = std::make_unique<Scalar>();
#if FAMSIM_CHECK
        entry.scalar->checkTag =
            check::Tag{check::wiringOwnerSlot(), &it->first};
#endif
    }
    return *entry.scalar;
}

Histogram&
StatRegistry::histogram(const std::string& name, const std::string& desc,
                        std::uint64_t bucket_width, std::size_t buckets)
{
    auto it = entries_.try_emplace(name).first;
    auto& entry = it->second;
    if (!entry.histogram) {
        FAMSIM_ASSERT(!entry.counter && !entry.shared && !entry.scalar &&
                          !entry.jobs,
                      "stat '", name, "' re-registered with another type");
        entry.desc = desc;
        entry.histogram = std::make_unique<Histogram>(bucket_width, buckets);
#if FAMSIM_CHECK
        entry.histogram->checkTag =
            check::Tag{check::wiringOwnerSlot(), &it->first};
#endif
    }
    return *entry.histogram;
}

Histogram&
StatRegistry::histogramWithPercentiles(const std::string& name,
                                       const std::string& desc,
                                       std::uint64_t bucket_width,
                                       std::size_t buckets)
{
    Histogram& h = histogram(name, desc, bucket_width, buckets);
    entries_[name].percentiles = true;
    return h;
}

JobStatTable&
StatRegistry::jobTable(const std::string& name, const std::string& desc,
                       unsigned jobs)
{
    FAMSIM_ASSERT(jobs >= 1, "job table '", name, "' needs >= 1 slot");
    auto& entry = entries_[name];
    if (!entry.jobs) {
        FAMSIM_ASSERT(!entry.counter && !entry.shared && !entry.scalar &&
                          !entry.histogram,
                      "stat '", name, "' re-registered with another type");
        entry.desc = desc;
        entry.jobs = std::make_unique<JobStatTable>(jobs);
    }
    FAMSIM_ASSERT(entry.jobs->jobs() == jobs, "job table '", name,
                  "' re-registered with a different slot count");
    return *entry.jobs;
}

double
StatRegistry::get(const std::string& name) const
{
    auto it = entries_.find(name);
    if (it == entries_.end())
        FAMSIM_PANIC("unknown stat '", name, "'");
    if (std::uint64_t count = 0; it->second.countValue(count))
        return static_cast<double>(count);
    if (it->second.scalar)
        return it->second.scalar->value();
    if (it->second.histogram)
        return it->second.histogram->mean();
    FAMSIM_PANIC("stat '", name,
                 "' has an unsupported kind for get() (per-job tables "
                 "have no single value)");
}

bool
StatRegistry::has(const std::string& name) const
{
    return entries_.find(name) != entries_.end();
}

double
StatRegistry::sumMatching(const std::string& suffix) const
{
    double sum = 0.0;
    for (const auto& [name, entry] : entries_) {
        if (name.size() >= suffix.size() &&
            name.compare(name.size() - suffix.size(), suffix.size(),
                         suffix) == 0) {
            if (std::uint64_t count = 0; entry.countValue(count))
                sum += static_cast<double>(count);
            else if (entry.scalar)
                sum += entry.scalar->value();
        }
    }
    return sum;
}

std::vector<std::uint64_t>
StatRegistry::sumJobTables(const std::string& suffix) const
{
    std::vector<std::uint64_t> sums;
    for (const auto& [name, entry] : entries_) {
        if (!entry.jobs || name.size() < suffix.size() ||
            name.compare(name.size() - suffix.size(), suffix.size(),
                         suffix) != 0) {
            continue;
        }
        if (sums.size() < entry.jobs->jobs())
            sums.resize(entry.jobs->jobs(), 0);
        for (unsigned j = 0; j < entry.jobs->jobs(); ++j)
            sums[j] += entry.jobs->value(j);
    }
    return sums;
}

void
StatRegistry::resetAll()
{
    for (auto& [name, entry] : entries_) {
        if (entry.counter)
            entry.counter->reset();
        if (entry.shared)
            entry.shared->reset();
        if (entry.scalar)
            entry.scalar->reset();
        if (entry.histogram)
            entry.histogram->reset();
        if (entry.jobs)
            entry.jobs->reset();
    }
}

void
StatRegistry::dump(std::ostream& os) const
{
    for (const auto& [name, entry] : entries_) {
        os << std::left << std::setw(52) << name << " ";
        if (std::uint64_t count = 0; entry.countValue(count)) {
            os << std::setw(16) << count;
        } else if (entry.scalar) {
            os << std::setw(16) << entry.scalar->value();
        } else if (entry.histogram) {
            os << "samples=" << entry.histogram->samples()
               << " mean=" << entry.histogram->mean()
               << " max=" << entry.histogram->max();
        } else if (entry.jobs) {
            os << "jobs=[";
            for (unsigned j = 0; j < entry.jobs->jobs(); ++j)
                os << (j ? " " : "") << entry.jobs->value(j);
            os << "]";
        }
        os << " # " << entry.desc << "\n";
    }
}

void
StatRegistry::dumpCsv(std::ostream& os) const
{
    for (const auto& [name, entry] : entries_) {
        if (std::uint64_t count = 0; entry.countValue(count))
            os << name << "," << count << "\n";
        else if (entry.scalar)
            os << name << "," << entry.scalar->value() << "\n";
        else if (entry.jobs)
            for (unsigned j = 0; j < entry.jobs->jobs(); ++j)
                os << name << "[" << j << "]," << entry.jobs->value(j)
                   << "\n";
    }
}

void
StatRegistry::dumpJson(std::ostream& os, int indent) const
{
    const std::string outer(indent, ' ');
    const std::string inner(indent + 2, ' ');
    os << "{";
    bool first = true;
    for (const auto& [name, entry] : entries_) {
        if (!first)
            os << ",";
        first = false;
        os << "\n" << inner;
        json::writeString(os, name);
        os << ": ";
        if (std::uint64_t count = 0; entry.countValue(count)) {
            os << count;
        } else if (entry.scalar) {
            json::writeNumber(os, entry.scalar->value());
        } else if (entry.histogram) {
            const Histogram& h = *entry.histogram;
            os << "{\"samples\": " << h.samples() << ", \"mean\": ";
            json::writeNumber(os, h.mean());
            os << ", \"max\": " << h.max();
            if (entry.percentiles) {
                os << ", \"p50\": " << h.p50() << ", \"p95\": "
                   << h.p95() << ", \"p99\": " << h.p99();
            }
            os << ", \"buckets\": [";
            for (std::size_t i = 0; i < h.numBuckets(); ++i)
                os << (i ? ", " : "") << h.bucket(i);
            os << "]}";
        } else if (entry.jobs) {
            os << "[";
            for (unsigned j = 0; j < entry.jobs->jobs(); ++j)
                os << (j ? ", " : "") << entry.jobs->value(j);
            os << "]";
        } else {
            os << "null";
        }
    }
    if (!first)
        os << "\n" << outer;
    os << "}";
}

std::string
StatRegistry::jsonString() const
{
    std::ostringstream os;
    dumpJson(os);
    os << "\n";
    return os.str();
}

} // namespace famsim
