#include "sim/logging.hh"

#include <cstdlib>
#include <iostream>

namespace famsim {
namespace {

int throw_depth = 0;
int quiet_depth = 0;

} // namespace

ScopedThrowOnError::ScopedThrowOnError() { ++throw_depth; }
ScopedThrowOnError::~ScopedThrowOnError() { --throw_depth; }

ScopedQuietLogs::ScopedQuietLogs() { ++quiet_depth; }
ScopedQuietLogs::~ScopedQuietLogs() { --quiet_depth; }

namespace detail {

void
panicImpl(const char* file, int line, const std::string& message)
{
    std::string full = std::string("panic: ") + message + " @ " + file +
                       ":" + std::to_string(line);
    if (throw_depth > 0)
        throw SimError(full);
    std::cerr << full << std::endl;
    std::abort();
}

void
fatalImpl(const char* file, int line, const std::string& message)
{
    std::string full = std::string("fatal: ") + message + " @ " + file +
                       ":" + std::to_string(line);
    if (throw_depth > 0)
        throw SimError(full);
    std::cerr << full << std::endl;
    std::exit(1);
}

void
warnImpl(const std::string& message)
{
    if (quiet_depth == 0)
        std::cerr << "warn: " << message << std::endl;
}

void
informImpl(const std::string& message)
{
    if (quiet_depth == 0)
        std::cout << "info: " << message << std::endl;
}

} // namespace detail
} // namespace famsim
