#include "sim/logging.hh"

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <map>
#include <mutex>

namespace famsim {
namespace {

// The depths are process-wide moderation knobs, not per-thread state:
// a ScopedQuietLogs on one sweep-executor worker is meant to silence
// the whole process for its duration (concurrent points are equally
// golden-pinned). Atomics keep the concurrent ctor/dtor bumps defined.
std::atomic<int> throw_depth{0};
std::atomic<int> quiet_depth{0};

/**
 * Process-wide warn() dedup: the first occurrence of each message
 * prints, repeats are only counted, and the counts are reported once
 * at process exit. Pooled sweeps would otherwise emit the same
 * ignored-flag warning once per worker per point. An ordered map so
 * the exit-time report is deterministic regardless of which thread
 * warned first.
 */
struct WarnLedger
{
    std::mutex mu;
    std::map<std::string, std::uint64_t> repeats;

    ~WarnLedger()
    {
        // Runs during static destruction; std::cerr outlives this
        // object because including <iostream> above ties stream
        // lifetime to this translation unit (ios_base::Init).
        for (const auto& [message, count] : repeats) {
            if (count > 0) {
                std::cerr << "warn: suppressed " << count << " repeat"
                          << (count == 1 ? "" : "s") << " of: "
                          << message << std::endl;
            }
        }
    }
};

WarnLedger&
warnLedger()
{
    static WarnLedger ledger;
    return ledger;
}

} // namespace

ScopedThrowOnError::ScopedThrowOnError() { ++throw_depth; }
ScopedThrowOnError::~ScopedThrowOnError() { --throw_depth; }

ScopedQuietLogs::ScopedQuietLogs() { ++quiet_depth; }
ScopedQuietLogs::~ScopedQuietLogs() { --quiet_depth; }

namespace detail {

void
panicImpl(const char* file, int line, const std::string& message)
{
    std::string full = std::string("panic: ") + message + " @ " + file +
                       ":" + std::to_string(line);
    if (throw_depth > 0)
        throw SimError(full);
    std::cerr << full << std::endl;
    std::abort();
}

void
fatalImpl(const char* file, int line, const std::string& message)
{
    std::string full = std::string("fatal: ") + message + " @ " + file +
                       ":" + std::to_string(line);
    if (throw_depth > 0)
        throw SimError(full);
    std::cerr << full << std::endl;
    std::exit(1);
}

void
warnImpl(const std::string& message)
{
    // Quiet scopes drop without counting: a bench that silenced its
    // workers should not resurface their warnings at exit.
    if (quiet_depth > 0)
        return;
    WarnLedger& ledger = warnLedger();
    std::lock_guard<std::mutex> lock(ledger.mu);
    auto [it, fresh] = ledger.repeats.emplace(message, 0);
    if (fresh)
        std::cerr << "warn: " << message << std::endl;
    else
        ++it->second;
}

void
informImpl(const std::string& message)
{
    if (quiet_depth == 0)
        std::cout << "info: " << message << std::endl;
}

} // namespace detail
} // namespace famsim
