#include "sim/logging.hh"

#include <atomic>
#include <cstdlib>
#include <iostream>

namespace famsim {
namespace {

// The depths are process-wide moderation knobs, not per-thread state:
// a ScopedQuietLogs on one sweep-executor worker is meant to silence
// the whole process for its duration (concurrent points are equally
// golden-pinned). Atomics keep the concurrent ctor/dtor bumps defined.
std::atomic<int> throw_depth{0};
std::atomic<int> quiet_depth{0};

} // namespace

ScopedThrowOnError::ScopedThrowOnError() { ++throw_depth; }
ScopedThrowOnError::~ScopedThrowOnError() { --throw_depth; }

ScopedQuietLogs::ScopedQuietLogs() { ++quiet_depth; }
ScopedQuietLogs::~ScopedQuietLogs() { --quiet_depth; }

namespace detail {

void
panicImpl(const char* file, int line, const std::string& message)
{
    std::string full = std::string("panic: ") + message + " @ " + file +
                       ":" + std::to_string(line);
    if (throw_depth > 0)
        throw SimError(full);
    std::cerr << full << std::endl;
    std::abort();
}

void
fatalImpl(const char* file, int line, const std::string& message)
{
    std::string full = std::string("fatal: ") + message + " @ " + file +
                       ":" + std::to_string(line);
    if (throw_depth > 0)
        throw SimError(full);
    std::cerr << full << std::endl;
    std::exit(1);
}

void
warnImpl(const std::string& message)
{
    if (quiet_depth == 0)
        std::cerr << "warn: " << message << std::endl;
}

void
informImpl(const std::string& message)
{
    if (quiet_depth == 0)
        std::cout << "info: " << message << std::endl;
}

} // namespace detail
} // namespace famsim
