/**
 * @file
 * Profiler — wall-clock accounting of where host time goes.
 *
 * The sim-time trace (trace_sink.hh) answers "what did the simulated
 * system do"; the profiler answers "what did the *host* spend its time
 * on": per-partition drain/exec seconds per window epoch, the
 * coordinator's serial sections (arbitration merge, window bounds,
 * global ops), and the whole run's wall clock. Everything here is
 * host-timing and therefore explicitly NONDETERMINISTIC — it is
 * exported as a separate "profile" block that is never part of golden
 * comparisons (see DESIGN.md "Observability layer").
 *
 * Writer discipline mirrors the kernel's: each partition's accumulator
 * is written only by the worker that owns the partition during an
 * epoch (the epoch barriers publish the writes), the coordinator
 * fields only between epochs, the wall clock only by the caller of
 * System::run.
 */

#ifndef FAMSIM_SIM_PROFILER_HH
#define FAMSIM_SIM_PROFILER_HH

#include <chrono>
#include <cstdint>
#include <ostream>
#include <vector>

namespace famsim {

/** Wall-clock profile of one System::run. */
class Profiler
{
  public:
    /** Monotonic second-resolution stopwatch for profile sections. */
    class Timer
    {
      public:
        // lint-allow(wall-clock): host-profiling stopwatch; output goes to the profile block only, never into sim state or goldens
        Timer() : start_(std::chrono::steady_clock::now()) {}

        [[nodiscard]] double
        seconds() const
        {
            return std::chrono::duration<double>(
                       // lint-allow(wall-clock): host-profiling stopwatch; never feeds sim state
                       std::chrono::steady_clock::now() - start_)
                .count();
        }

      private:
        // lint-allow(wall-clock): host-profiling stopwatch; never feeds sim state
        std::chrono::steady_clock::time_point start_;
    };

    Profiler() = default;
    Profiler(const Profiler&) = delete;
    Profiler& operator=(const Profiler&) = delete;

    /** Size the per-partition accumulators (parallel runs only). */
    void
    setPartitions(std::uint32_t partitions)
    {
        parts_.assign(partitions, PartTimes{});
    }

    void
    addDrain(std::uint32_t partition, double seconds)
    {
        parts_[partition].drain += seconds;
    }

    void
    addExec(std::uint32_t partition, double seconds)
    {
        parts_[partition].exec += seconds;
    }

    /** Coordinator-serial time between epochs (arbitration, bounds,
     *  global ops). */
    void addCoordinator(double seconds) { coordinator_ += seconds; }

    void setWall(double seconds) { wall_ = seconds; }
    void setThreads(unsigned threads) { threads_ = threads; }

    void
    setWindows(std::uint64_t windows, std::uint64_t widened)
    {
        windows_ = windows;
        widened_ = widened;
    }

    [[nodiscard]] double wallSeconds() const { return wall_; }
    [[nodiscard]] std::uint64_t windows() const { return windows_; }
    [[nodiscard]] double coordinatorSeconds() const { return coordinator_; }

    /** Sum of all partitions' drain-epoch seconds. */
    [[nodiscard]] double
    drainSeconds() const
    {
        double total = 0.0;
        for (const PartTimes& t : parts_)
            total += t.drain;
        return total;
    }

    /** Sum of all partitions' exec-epoch seconds. */
    [[nodiscard]] double
    execSeconds() const
    {
        double total = 0.0;
        for (const PartTimes& t : parts_)
            total += t.exec;
        return total;
    }

    /**
     * The "profile" JSON block (object only, no surrounding key).
     * Nondeterministic by construction: values are host wall-clock.
     */
    void writeJson(std::ostream& os, int indent = 0) const;

  private:
    struct PartTimes {
        double drain = 0.0; //!< inbox merge + schedule (drain epochs)
        double exec = 0.0;  //!< event execution (exec epochs)
    };

    std::vector<PartTimes> parts_;
    double coordinator_ = 0.0;
    double wall_ = 0.0;
    unsigned threads_ = 0;
    std::uint64_t windows_ = 0;
    std::uint64_t widened_ = 0;
};

} // namespace famsim

#endif // FAMSIM_SIM_PROFILER_HH
