/**
 * @file
 * Small-buffer-optimized std::function replacement for hot callbacks.
 *
 * std::function's inline buffer is 16 bytes on libstdc++, so nearly
 * every completion callback in the simulator heap-allocated on
 * assignment. InlineFunction stores callables up to @p N bytes in
 * place and falls back to the heap beyond that. N defaults to 144 so
 * the pipeline's plain captures fit inline — component pointers,
 * PktPtrs, and notably the page-walker continuation (a StepList plus
 * a wrapped done-functor, ~136 bytes). A lambda that captures a whole
 * InlineFunction<N> by value (the STU/translator response-path wraps)
 * is by construction larger than N and always takes the heap path —
 * one block per wrap level, at packet-creation rate, not per hop:
 * those sites move the wrapped continuation along instead of copying
 * it. Copyable (required by Packet) and movable; dispatch is one
 * static ops table per callable type, like a vtable.
 */

#ifndef FAMSIM_SIM_INLINE_FUNCTION_HH
#define FAMSIM_SIM_INLINE_FUNCTION_HH

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace famsim {

template <typename Signature, std::size_t N = 144>
class InlineFunction;

template <typename R, typename... Args, std::size_t N>
class InlineFunction<R(Args...), N>
{
  public:
    InlineFunction() = default;
    InlineFunction(std::nullptr_t) {}

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, InlineFunction> &&
                  !std::is_same_v<std::decay_t<F>, std::nullptr_t>>>
    InlineFunction(F&& fn)
    {
        assign(std::forward<F>(fn));
    }

    InlineFunction(const InlineFunction& other)
    {
        if (other.ops_) {
            other.ops_->copyTo(other.buf_, buf_);
            ops_ = other.ops_;
        }
    }

    InlineFunction(InlineFunction&& other) noexcept
    {
        if (other.ops_) {
            other.ops_->moveTo(other.buf_, buf_);
            ops_ = other.ops_;
            other.ops_ = nullptr;
        }
    }

    InlineFunction&
    operator=(const InlineFunction& other)
    {
        if (this != &other) {
            reset();
            if (other.ops_) {
                other.ops_->copyTo(other.buf_, buf_);
                ops_ = other.ops_;
            }
        }
        return *this;
    }

    InlineFunction&
    operator=(InlineFunction&& other) noexcept
    {
        if (this != &other) {
            reset();
            if (other.ops_) {
                other.ops_->moveTo(other.buf_, buf_);
                ops_ = other.ops_;
                other.ops_ = nullptr;
            }
        }
        return *this;
    }

    InlineFunction&
    operator=(std::nullptr_t)
    {
        reset();
        return *this;
    }

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, InlineFunction> &&
                  !std::is_same_v<std::decay_t<F>, std::nullptr_t>>>
    InlineFunction&
    operator=(F&& fn)
    {
        reset();
        assign(std::forward<F>(fn));
        return *this;
    }

    ~InlineFunction() { reset(); }

    [[nodiscard]] explicit operator bool() const { return ops_ != nullptr; }

    /** Const like std::function's: the target is logically shared. */
    R
    operator()(Args... args) const
    {
        return ops_->call(const_cast<unsigned char*>(buf_),
                          std::forward<Args>(args)...);
    }

  private:
    struct Ops {
        R (*call)(void*, Args&&...);
        void (*copyTo)(const void*, void*);
        /** Move-construct into dst and leave src destroyed. */
        void (*moveTo)(void*, void*);
        void (*destroy)(void*);
    };

    template <typename Fn>
    static constexpr bool
    fitsInline()
    {
        return sizeof(Fn) <= N && alignof(Fn) <= alignof(std::max_align_t);
    }

    template <typename Fn>
    static Fn*
    inlineObj(void* buf)
    {
        return std::launder(reinterpret_cast<Fn*>(buf));
    }

    template <typename Fn>
    static const Ops*
    inlineOps()
    {
        static constexpr Ops ops = {
            [](void* buf, Args&&... args) -> R {
                return (*inlineObj<Fn>(buf))(std::forward<Args>(args)...);
            },
            [](const void* src, void* dst) {
                ::new (dst) Fn(*std::launder(
                    reinterpret_cast<const Fn*>(src)));
            },
            [](void* src, void* dst) {
                Fn* obj = inlineObj<Fn>(src);
                ::new (dst) Fn(std::move(*obj));
                obj->~Fn();
            },
            [](void* buf) { inlineObj<Fn>(buf)->~Fn(); },
        };
        return &ops;
    }

    template <typename Fn>
    static Fn*&
    heapObj(void* buf)
    {
        return *std::launder(reinterpret_cast<Fn**>(buf));
    }

    template <typename Fn>
    static const Ops*
    heapOps()
    {
        static constexpr Ops ops = {
            [](void* buf, Args&&... args) -> R {
                return (*heapObj<Fn>(buf))(std::forward<Args>(args)...);
            },
            [](const void* src, void* dst) {
                ::new (dst) Fn*(new Fn(**std::launder(
                    reinterpret_cast<Fn* const*>(src))));
            },
            [](void* src, void* dst) {
                ::new (dst) Fn*(heapObj<Fn>(src)); // steal the pointer
            },
            [](void* buf) { delete heapObj<Fn>(buf); },
        };
        return &ops;
    }

    template <typename F>
    void
    assign(F&& fn)
    {
        using Fn = std::decay_t<F>;
        static_assert(std::is_invocable_r_v<R, Fn&, Args...>,
                      "callable does not match InlineFunction signature");
        if constexpr (fitsInline<Fn>()) {
            ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(fn));
            ops_ = inlineOps<Fn>();
        } else {
            ::new (static_cast<void*>(buf_)) Fn*(
                new Fn(std::forward<F>(fn)));
            ops_ = heapOps<Fn>();
        }
    }

    void
    reset()
    {
        if (ops_) {
            ops_->destroy(buf_);
            ops_ = nullptr;
        }
    }

    const Ops* ops_ = nullptr;
    alignas(std::max_align_t) unsigned char buf_[N];
};

} // namespace famsim

#endif // FAMSIM_SIM_INLINE_FUNCTION_HH
