/**
 * @file
 * Open-addressing hash map for 64-bit keys on simulator hot paths.
 *
 * std::unordered_map costs two dependent cache misses per find (bucket
 * array, then node chase); the ACM store and the MSHR tables sit on
 * the per-access path, so those misses are measurable. U64FlatMap is
 * a flat linear-probing table — one likely cache line per probe —
 * with Fibonacci hashing, tombstone deletion and load-factor-0.7
 * growth. The API is the subset those call sites use (operator[],
 * try_emplace, find, erase, range iteration); iteration order is slot
 * order, which is deterministic for a given insertion sequence.
 */

#ifndef FAMSIM_SIM_FLAT_MAP_HH
#define FAMSIM_SIM_FLAT_MAP_HH

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace famsim {

template <typename V>
class U64FlatMap
{
  public:
    using value_type = std::pair<std::uint64_t, V>;

    class iterator
    {
      public:
        iterator() = default;
        iterator(U64FlatMap* map, std::size_t idx) : map_(map), idx_(idx)
        {
        }

        value_type& operator*() const { return map_->slots_[idx_]; }
        value_type* operator->() const { return &map_->slots_[idx_]; }

        iterator&
        operator++()
        {
            ++idx_;
            skipToFull();
            return *this;
        }

        bool
        operator==(const iterator& other) const
        {
            return idx_ == other.idx_;
        }

      private:
        friend class U64FlatMap;
        void
        skipToFull()
        {
            while (idx_ < map_->state_.size() &&
                   map_->state_[idx_] != kFull)
                ++idx_;
        }

        U64FlatMap* map_ = nullptr;
        std::size_t idx_ = 0;
    };

    class const_iterator
    {
      public:
        const_iterator() = default;
        const_iterator(const U64FlatMap* map, std::size_t idx)
            : map_(map), idx_(idx)
        {
        }

        const value_type& operator*() const { return map_->slots_[idx_]; }
        const value_type* operator->() const
        {
            return &map_->slots_[idx_];
        }

        const_iterator&
        operator++()
        {
            ++idx_;
            skipToFull();
            return *this;
        }

        bool
        operator==(const const_iterator& other) const
        {
            return idx_ == other.idx_;
        }

      private:
        friend class U64FlatMap;
        void
        skipToFull()
        {
            while (idx_ < map_->state_.size() &&
                   map_->state_[idx_] != kFull)
                ++idx_;
        }

        const U64FlatMap* map_ = nullptr;
        std::size_t idx_ = 0;
    };

    U64FlatMap() { rehash(kMinCapacity); }

    [[nodiscard]] std::size_t size() const { return size_; }
    [[nodiscard]] bool empty() const { return size_ == 0; }
    /** Slot-table capacity (bounded-growth checks in tests). */
    [[nodiscard]] std::size_t capacity() const { return state_.size(); }

    iterator
    begin()
    {
        iterator it(this, 0);
        it.skipToFull();
        return it;
    }

    iterator end() { return iterator(this, state_.size()); }

    const_iterator
    begin() const
    {
        const_iterator it(this, 0);
        it.skipToFull();
        return it;
    }

    const_iterator end() const
    {
        return const_iterator(this, state_.size());
    }

    iterator
    find(std::uint64_t key)
    {
        std::size_t idx = findIndex(key);
        return idx == state_.size() ? end() : iterator(this, idx);
    }

    const_iterator
    find(std::uint64_t key) const
    {
        std::size_t idx = findIndex(key);
        return idx == state_.size() ? end() : const_iterator(this, idx);
    }

    /** Insert a default-constructed value if @p key is absent. */
    std::pair<iterator, bool>
    try_emplace(std::uint64_t key)
    {
        maybeGrow();
        std::size_t idx = indexOf(key);
        std::size_t insert_at = state_.size();
        for (;;) {
            std::uint8_t s = state_[idx];
            if (s == kEmpty) {
                if (insert_at == state_.size())
                    insert_at = idx;
                break;
            }
            if (s == kFull && slots_[idx].first == key)
                return {iterator(this, idx), false};
            if (s == kTomb && insert_at == state_.size())
                insert_at = idx;
            idx = (idx + 1) & mask_;
        }
        if (state_[insert_at] == kEmpty)
            ++used_;
        state_[insert_at] = kFull;
        slots_[insert_at].first = key;
        slots_[insert_at].second = V{};
        ++size_;
        return {iterator(this, insert_at), true};
    }

    V&
    operator[](std::uint64_t key)
    {
        return try_emplace(key).first->second;
    }

    void
    erase(iterator it)
    {
        state_[it.idx_] = kTomb;
        slots_[it.idx_].second = V{}; // release the value's resources
        --size_;
    }

    /** @return 1 if @p key was present and erased, else 0. */
    std::size_t
    erase(std::uint64_t key)
    {
        iterator it = find(key);
        if (it == end())
            return 0;
        erase(it);
        return 1;
    }

  private:
    static constexpr std::uint8_t kEmpty = 0;
    static constexpr std::uint8_t kFull = 1;
    static constexpr std::uint8_t kTomb = 2;
    static constexpr std::size_t kMinCapacity = 16;

    /** Slot of @p key, or state_.size() when absent. */
    [[nodiscard]] std::size_t
    findIndex(std::uint64_t key) const
    {
        std::size_t idx = indexOf(key);
        for (;;) {
            std::uint8_t s = state_[idx];
            if (s == kEmpty)
                return state_.size();
            if (s == kFull && slots_[idx].first == key)
                return idx;
            idx = (idx + 1) & mask_;
        }
    }

    [[nodiscard]] std::size_t
    indexOf(std::uint64_t key) const
    {
        // Fibonacci hashing; take the top bits, which mix best.
        return static_cast<std::size_t>(
                   (key * 0x9e3779b97f4a7c15ULL) >> shift_) &
               mask_;
    }

    void
    maybeGrow()
    {
        // used_ counts full + tombstone slots: probes only terminate
        // on empties, so tombstones must count against the load too.
        // Grow only when LIVE entries need the space; when the load is
        // mostly tombstones (the MSHR churn pattern: one insert + one
        // erase per miss), rehash in place to clear them — otherwise
        // capacity would double per ~0.7 * capacity operations forever.
        if ((used_ + 1) * 10 > state_.size() * 7) {
            bool live_needs_room = (size_ + 1) * 20 > state_.size() * 7;
            rehash(live_needs_room ? state_.size() * 2 : state_.size());
        }
    }

    void
    rehash(std::size_t capacity)
    {
        std::vector<value_type> old_slots = std::move(slots_);
        std::vector<std::uint8_t> old_state = std::move(state_);
        slots_.assign(capacity, value_type{});
        state_.assign(capacity, kEmpty);
        mask_ = capacity - 1;
        shift_ = 1;
        while ((std::size_t{1} << (64 - shift_)) > capacity)
            ++shift_;
        size_ = 0;
        used_ = 0;
        for (std::size_t i = 0; i < old_state.size(); ++i) {
            if (old_state[i] != kFull)
                continue;
            auto [it, inserted] = try_emplace(old_slots[i].first);
            it->second = std::move(old_slots[i].second);
        }
    }

    std::vector<value_type> slots_;
    std::vector<std::uint8_t> state_;
    std::size_t mask_ = 0;
    unsigned shift_ = 64;
    std::size_t size_ = 0;
    std::size_t used_ = 0;
};

} // namespace famsim

#endif // FAMSIM_SIM_FLAT_MAP_HH
