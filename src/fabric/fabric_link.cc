#include "fabric/fabric_link.hh"

#include "psim/parallel_sim.hh"
#include "sim/logging.hh"

namespace famsim {

FabricLink::FabricLink(Simulation& sim, const std::string& name,
                       const FabricParams& params)
    : Component(sim, name),
      params_(params),
      packets_(statCounter("packets", "packets transferred")),
      queueing_(statHistogram("queueing_ns",
                              "serialization queueing delay (ns)",
                              /*bucket_width=*/10, /*buckets=*/32))
{
}

Tick
FabricLink::departureAt(Channel channel, Tick now)
{
    Tick start = std::max(now, channelFree_[channel]);
    channelFree_[channel] = start + params_.serialization;
    ++packets_;
    queueing_.sample((start - now) / kNanosecond);
    return start + params_.latency;
}

Tick
FabricLink::departure(Channel channel)
{
    return departureAt(channel, sim_.curTick());
}

void
FabricLink::sendRequestParallel(std::function<void(Tick)> fn)
{
    ParallelSim* psim = sim_.parallel();
    psim->postArbitrated(psim->fabricPartition(), std::move(fn));
}

void
FabricLink::sendResponseParallel(NodeId dst_node,
                                 std::function<void()> fn)
{
    // Responses are sent from the fabric partition (media/broker
    // completions), so the arbitration state is local; only the
    // delivery crosses, with at least the one-way latency.
    ParallelSim* psim = sim_.parallel();
    FAMSIM_ASSERT(ParallelSim::currentPartition() ==
                      psim->fabricPartition(),
                  "fabric response sent from a node partition");
    psim->post(dst_node, departure(Response), std::move(fn));
}

} // namespace famsim
