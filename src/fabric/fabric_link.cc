#include "fabric/fabric_link.hh"

#include "sim/logging.hh"

namespace famsim {

FabricLink::FabricLink(Simulation& sim, const std::string& name,
                       const FabricParams& params)
    : Component(sim, name),
      params_(params),
      packets_(statCounter("packets", "packets transferred")),
      queueing_(statHistogram("queueing_ns",
                              "serialization queueing delay (ns)",
                              /*bucket_width=*/10, /*buckets=*/32))
{
}

Tick
FabricLink::departure(Channel channel)
{
    Tick now = sim_.curTick();
    Tick start = std::max(now, channelFree_[channel]);
    channelFree_[channel] = start + params_.serialization;
    ++packets_;
    queueing_.sample((start - now) / kNanosecond);
    return start + params_.latency;
}

} // namespace famsim
