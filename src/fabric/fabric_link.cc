#include "fabric/fabric_link.hh"

#include "psim/parallel_sim.hh"
#include "sim/logging.hh"

namespace famsim {

FabricLink::FabricLink(Simulation& sim, const std::string& name,
                       const FabricParams& params)
    : Component(sim, name),
      params_(params),
      packets_(statCounter("packets", "packets transferred")),
      queueing_(statHistogram("queueing_ns",
                              "serialization queueing delay (ns)",
                              /*bucket_width=*/10, /*buckets=*/32))
{
}

Tick
FabricLink::departureAt(Channel channel, Tick now)
{
    Tick start = std::max(now, channelFree_[channel]);
    channelFree_[channel] = start + params_.serialization;
    ++packets_;
    queueing_.sample((start - now) / kNanosecond);
    return start + params_.latency;
}

Tick
FabricLink::departure(Channel channel)
{
    return departureAt(channel, sim_.curTick());
}

void
FabricLink::postRequestParallel(unsigned dst_module, ArbFn fn)
{
    // The arbitration callback schedules the delivery at sent +
    // fabric latency, which is only sound on the node<->media edges —
    // a broker-partition sender would pass the edge-existence check
    // with the (possibly larger) service-latency floor while its
    // window ran the destination further ahead. Pin the sender kind.
    ParallelSim* psim = sim_.parallel();
    std::uint32_t src = ParallelSim::currentPartition();
    FAMSIM_ASSERT(src != ParallelSim::kNoPartition &&
                      psim->kindOf(src) == ParallelSim::Kind::Node,
                  "fabric request sent from a non-node partition");
    psim->postArbitrated(psim->mediaPartition(dst_module), std::move(fn));
}

void
FabricLink::postResponseParallel(NodeId dst_node, ArbFn fn)
{
    ParallelSim* psim = sim_.parallel();
    std::uint32_t src = ParallelSim::currentPartition();
    FAMSIM_ASSERT(src != ParallelSim::kNoPartition &&
                      psim->kindOf(src) == ParallelSim::Kind::Media,
                  "fabric response sent from a non-media partition");
    psim->postArbitrated(psim->nodePartition(dst_node), std::move(fn));
}

} // namespace famsim
