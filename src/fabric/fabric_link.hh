/**
 * @file
 * Memory-semantic fabric model (Gen-Z/CXL-style).
 *
 * The fabric is modelled as a full-duplex channel pair with a one-way
 * propagation latency (Table II: 500 ns end to end; we default the
 * STU->FAM segment to 450 ns with 50 ns for the node->STU hop) and a
 * per-packet serialization time that produces contention when several
 * nodes share the fabric (Fig. 16).
 *
 * The fabric is also the parallel kernel's partition boundary
 * (src/psim/): requests travel from a node partition to the partition
 * of the FAM media module that owns the target address, and responses
 * back, each with at least the one-way latency — the node<->media
 * edge of the kernel's lookahead matrix. Under a bound ParallelSim,
 * both channels' serialization state spans every media partition, so
 * *all* sends become arbitrated posts: the kernel merges them in
 * deterministic (sendTick, srcPartition, seq) order and runs the
 * arbitration single-threaded at the window barrier, using the
 * sender's tick; the callback then schedules the delivery on the
 * destination partition's queue. Serial mode (no ParallelSim bound)
 * is exactly the original single-queue behavior.
 */

#ifndef FAMSIM_FABRIC_FABRIC_LINK_HH
#define FAMSIM_FABRIC_FABRIC_LINK_HH

#include <array>
#include <string>
#include <type_traits>
#include <utility>

#include "psim/mailbox.hh" // leaf header: the ArbFn payload type only
#include "sim/simulation.hh"

namespace famsim {

/** Fabric timing parameters. */
struct FabricParams {
    /** One-way propagation latency. */
    Tick latency = 450 * kNanosecond;
    /** Channel occupancy per 64 B packet (bandwidth model). */
    Tick serialization = 2 * kNanosecond;
};

/** A shared, full-duplex fabric channel. */
class FabricLink : public Component
{
  public:
    /** Direction of travel on the link. */
    enum Channel : unsigned { Request = 0, Response = 1 };

    FabricLink(Simulation& sim, const std::string& name,
               const FabricParams& params);

    /**
     * Transmit one request-packet-worth of data toward FAM media
     * module @p dst_module (the parallel kernel partition to deliver
     * into; ignored on the serial path); @p deliver runs when it
     * reaches the far end. Queueing delay due to serialization is
     * applied before propagation. Templated so big completion captures
     * go straight into the event queue's pooled slots instead of
     * through a type-erasing indirection on the serial path.
     */
    template <typename F>
    void
    sendRequest(unsigned dst_module, F&& deliver)
    {
        checkDeliver(deliver);
        if (!sim_.parallel()) {
            sim_.events().schedule(departure(Request),
                                   std::forward<F>(deliver));
            return;
        }
        auto arb = [this, cb = std::decay_t<F>(std::forward<F>(deliver))](
                       Tick sent) mutable {
            sim_.events().schedule(departureAt(Request, sent),
                                   std::move(cb));
        };
        // Request deliveries are small ([component, PktPtr] captures);
        // one heap allocation per fabric crossing would dominate the
        // mailbox cost, so pin them to the inline payload budget.
        static_assert(sizeof(arb) <= kMailboxInlineBytes,
                      "fabric request continuation no longer fits the "
                      "mailbox inline payload");
        postRequestParallel(dst_module, ArbFn(std::move(arb)));
    }

    /**
     * Transmit one response-packet-worth of data toward compute node
     * @p dst_node (its parallel kernel partition; ignored on the
     * serial path). Response continuations may wrap whole completion
     * chains and are allowed to exceed the inline payload budget (one
     * heap block, as std::function always paid).
     */
    template <typename F>
    void
    sendResponse(NodeId dst_node, F&& deliver)
    {
        checkDeliver(deliver);
        if (!sim_.parallel()) {
            sim_.events().schedule(departure(Response),
                                   std::forward<F>(deliver));
            return;
        }
        auto arb = [this, cb = std::decay_t<F>(std::forward<F>(deliver))](
                       Tick sent) mutable {
            sim_.events().schedule(departureAt(Response, sent),
                                   std::move(cb));
        };
        postResponseParallel(dst_node, ArbFn(std::move(arb)));
    }

    /**
     * Serial-mode convenience overload (tests, single-queue runs);
     * invalid while a parallel kernel is bound.
     */
    template <typename F>
    void
    send(Channel channel, F&& deliver)
    {
        FAMSIM_ASSERT(!sim_.parallel(),
                      "destination-less send on the parallel kernel");
        checkDeliver(deliver);
        sim_.events().schedule(departure(channel),
                               std::forward<F>(deliver));
    }

    [[nodiscard]] Tick latency() const { return params_.latency; }
    [[nodiscard]] const FabricParams& params() const { return params_; }

  private:
    template <typename F>
    static void
    checkDeliver(const F& deliver)
    {
        if constexpr (std::is_constructible_v<bool, const F&>)
            FAMSIM_ASSERT(static_cast<bool>(deliver),
                          "fabric delivery callback must be non-null");
    }

    /**
     * Account one transmission departing at @p now; @return the
     * delivery tick.
     */
    [[nodiscard]] Tick departureAt(Channel channel, Tick now);

    /** Account one transmission departing now; @return delivery tick. */
    [[nodiscard]] Tick departure(Channel channel);

    // Out-of-line parallel-kernel plumbing (fabric_link.cc), so this
    // header — and every component TU including it — stays independent
    // of the kernel proper (psim/mailbox.hh is a leaf payload-type
    // header): the kernel orchestrates the fabric, not the other way
    // around.

    /** Post @p fn to the kernel's arbitration lane, destination the
     *  partition of media module @p dst_module. */
    void postRequestParallel(unsigned dst_module, ArbFn fn);

    /** Post @p fn to the kernel's arbitration lane, destination the
     *  partition of node @p dst_node. */
    void postResponseParallel(NodeId dst_node, ArbFn fn);

    FabricParams params_;
    std::array<Tick, 2> channelFree_{0, 0};
    Counter& packets_;
    Histogram& queueing_;
};

} // namespace famsim

#endif // FAMSIM_FABRIC_FABRIC_LINK_HH
