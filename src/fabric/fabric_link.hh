/**
 * @file
 * Memory-semantic fabric model (Gen-Z/CXL-style).
 *
 * The fabric is modelled as a full-duplex channel pair with a one-way
 * propagation latency (Table II: 500 ns end to end; we default the
 * STU->FAM segment to 450 ns with 50 ns for the node->STU hop) and a
 * per-packet serialization time that produces contention when several
 * nodes share the fabric (Fig. 16).
 *
 * The fabric is also the parallel kernel's partition boundary
 * (src/psim/): requests travel from a node partition to the fabric/FAM
 * partition and responses back, each with at least the one-way latency
 * — the kernel's conservative lookahead. Under a bound ParallelSim,
 * send() therefore becomes a mailbox post. The request channel's
 * serialization state is owned by the fabric partition, so request
 * arbitration is deferred to the window-barrier drain, where it runs
 * in deterministic (sendTick, srcNode, seq) merge order using the
 * sender's tick; responses are sent *from* the fabric partition, so
 * they arbitrate inline and post the delivery to the destination
 * node's partition. Serial mode (no ParallelSim bound) is exactly the
 * original single-queue behavior.
 */

#ifndef FAMSIM_FABRIC_FABRIC_LINK_HH
#define FAMSIM_FABRIC_FABRIC_LINK_HH

#include <array>
#include <functional>
#include <string>
#include <type_traits>
#include <utility>

#include "sim/simulation.hh"

namespace famsim {

/** Fabric timing parameters. */
struct FabricParams {
    /** One-way propagation latency. */
    Tick latency = 450 * kNanosecond;
    /** Channel occupancy per 64 B packet (bandwidth model). */
    Tick serialization = 2 * kNanosecond;
};

/** A shared, full-duplex fabric channel. */
class FabricLink : public Component
{
  public:
    /** Direction of travel on the link. */
    enum Channel : unsigned { Request = 0, Response = 1 };

    FabricLink(Simulation& sim, const std::string& name,
               const FabricParams& params);

    /**
     * Transmit one packet-worth of data on @p channel; @p deliver runs
     * when it reaches the far end. Queueing delay due to serialization
     * is applied before propagation. Templated so big completion
     * captures go straight into the event queue's pooled slots instead
     * of through a heap-allocating std::function on the serial path.
     *
     * @param dst_node destination compute node of a Response (equals
     *        the parallel kernel partition to deliver into); ignored
     *        for Requests, which always target the fabric/FAM
     *        partition, and on the serial path.
     */
    template <typename F>
    void
    send(Channel channel, NodeId dst_node, F&& deliver)
    {
        if constexpr (std::is_constructible_v<bool, const std::decay_t<F>&>)
            FAMSIM_ASSERT(static_cast<bool>(deliver),
                          "fabric delivery callback must be non-null");
        if (!sim_.parallel()) {
            sim_.events().schedule(departure(channel),
                                   std::forward<F>(deliver));
            return;
        }
        if (channel == Request) {
            // Arbitrate at the barrier drain, on the fabric partition,
            // in (sendTick, srcNode, seq) merge order: channelFree_ is
            // then touched by exactly one thread, deterministically.
            // The delivery callable is captured directly (one type
            // erasure at the helper boundary, not two).
            sendRequestParallel(
                [this, cb = std::decay_t<F>(std::forward<F>(deliver))](
                    Tick sent) mutable {
                    sim_.events().schedule(departureAt(Request, sent),
                                           std::move(cb));
                });
            return;
        }
        sendResponseParallel(
            dst_node, std::function<void()>(std::forward<F>(deliver)));
    }

    /**
     * Serial-mode convenience overload (tests, single-queue runs);
     * invalid while a parallel kernel is bound.
     */
    template <typename F>
    void
    send(Channel channel, F&& deliver)
    {
        FAMSIM_ASSERT(!sim_.parallel(),
                      "destination-less send on the parallel kernel");
        send(channel, NodeId{0}, std::forward<F>(deliver));
    }

    [[nodiscard]] Tick latency() const { return params_.latency; }
    [[nodiscard]] const FabricParams& params() const { return params_; }

  private:
    /**
     * Account one transmission departing at @p now; @return the
     * delivery tick.
     */
    [[nodiscard]] Tick departureAt(Channel channel, Tick now);

    /** Account one transmission departing now; @return delivery tick. */
    [[nodiscard]] Tick departure(Channel channel);

    // Out-of-line parallel-kernel plumbing (fabric_link.cc), so this
    // header — and every component TU including it — stays independent
    // of src/psim/: the kernel orchestrates the fabric, not the other
    // way around.

    /** Post @p fn to the fabric partition's arbitrated lane. */
    void sendRequestParallel(std::function<void(Tick)> fn);

    /**
     * Arbitrate a response locally (must be on the fabric partition)
     * and post the delivery to @p dst_node's partition.
     */
    void sendResponseParallel(NodeId dst_node, std::function<void()> fn);

    FabricParams params_;
    std::array<Tick, 2> channelFree_{0, 0};
    Counter& packets_;
    Histogram& queueing_;
};

} // namespace famsim

#endif // FAMSIM_FABRIC_FABRIC_LINK_HH
