/**
 * @file
 * Memory-semantic fabric model (Gen-Z/CXL-style).
 *
 * The fabric is modelled as a full-duplex channel pair with a one-way
 * propagation latency (Table II: 500 ns end to end; we default the
 * STU->FAM segment to 450 ns with 50 ns for the node->STU hop) and a
 * per-packet serialization time that produces contention when several
 * nodes share the fabric (Fig. 16).
 */

#ifndef FAMSIM_FABRIC_FABRIC_LINK_HH
#define FAMSIM_FABRIC_FABRIC_LINK_HH

#include <array>
#include <functional>
#include <string>

#include "sim/simulation.hh"

namespace famsim {

/** Fabric timing parameters. */
struct FabricParams {
    /** One-way propagation latency. */
    Tick latency = 450 * kNanosecond;
    /** Channel occupancy per 64 B packet (bandwidth model). */
    Tick serialization = 2 * kNanosecond;
};

/** A shared, full-duplex fabric channel. */
class FabricLink : public Component
{
  public:
    /** Direction of travel on the link. */
    enum Channel : unsigned { Request = 0, Response = 1 };

    FabricLink(Simulation& sim, const std::string& name,
               const FabricParams& params);

    /**
     * Transmit one packet-worth of data on @p channel; @p deliver runs
     * when it reaches the far end. Queueing delay due to serialization
     * is applied before propagation. Templated so big completion
     * captures go straight into the event queue's pooled slots instead
     * of through a heap-allocating std::function.
     */
    template <typename F>
    void
    send(Channel channel, F&& deliver)
    {
        if constexpr (std::is_constructible_v<bool, const std::decay_t<F>&>)
            FAMSIM_ASSERT(static_cast<bool>(deliver),
                          "fabric delivery callback must be non-null");
        sim_.events().schedule(departure(channel),
                               std::forward<F>(deliver));
    }

    [[nodiscard]] Tick latency() const { return params_.latency; }
    [[nodiscard]] const FabricParams& params() const { return params_; }

  private:
    /** Account one transmission; @return the delivery tick. */
    [[nodiscard]] Tick departure(Channel channel);

    FabricParams params_;
    std::array<Tick, 2> channelFree_{0, 0};
    Counter& packets_;
    Histogram& queueing_;
};

} // namespace famsim

#endif // FAMSIM_FABRIC_FABRIC_LINK_HH
