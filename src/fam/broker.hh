/**
 * @file
 * The memory broker — our reimplementation of Opal [30], the
 * centralized system-level memory manager for the FAM pool.
 *
 * Responsibilities (§II-C, §III, §VI):
 *  - allocate FAM pages to nodes (allocation is deliberately scattered
 *    across the pool, as happens when many nodes allocate concurrently;
 *    this is what defeats DeACT-W's contiguous ACM caching, Fig. 9);
 *  - maintain the per-node system-level (NPA -> FAM) page tables, whose
 *    table pages live *in* FAM so walking them costs fabric round trips;
 *  - write ACM entries and shared-region bitmaps;
 *  - manage shared 1 GB regions with per-node permissions;
 *  - migrate jobs between nodes, either by rewriting ACM ownership or
 *    cheaply via logical node ids (§VI "Page Migration").
 */

#ifndef FAMSIM_FAM_BROKER_HH
#define FAMSIM_FAM_BROKER_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "fam/acm.hh"
#include "fam/fam_media.hh"
#include "sim/simulation.hh"
#include "vm/page_table.hh"

namespace famsim {

class ParallelSim; // src/psim/parallel_sim.hh

/** Broker configuration. */
struct BrokerParams {
    /** Service latency for a system-level page fault (queue + handler). */
    Tick serviceLatency = 2 * kMicrosecond;
    /** Extra latency for an E-FAM OS-to-broker allocation round trip. */
    Tick exposedRttLatency = 3 * kMicrosecond;
    /**
     * Scatter allocations pseudo-randomly across the pool (true models
     * a busy multi-tenant pool; false gives each node contiguous pages,
     * used by the DeACT-W ablation).
     */
    bool scatterAllocation = true;
    /** Bytes at the top of usable space reserved for shared regions. */
    std::uint64_t sharedReserveBytes = std::uint64_t{2} << 30;
    /**
     * Tenant jobs sharing the system (SystemConfig::tenancy.jobs).
     * > 1 registers the per-job fault attribution table.
     */
    unsigned jobs = 1;
};

/**
 * Centralized FAM manager. One instance per memory pool / system.
 */
class MemoryBroker : public Component
{
  public:
    MemoryBroker(Simulation& sim, const std::string& name,
                 const BrokerParams& params, FamLayout& layout,
                 AcmStore& acm, FamMedia* media = nullptr);

    /** Register a physical node; assigns its initial logical id. */
    void registerNode(NodeId phys);

    /** Logical id currently bound to physical node @p phys. */
    [[nodiscard]] NodeId logicalIdOf(NodeId phys) const;

    /**
     * Immediately allocate a FAM page owned by @p logical_node
     * (functional; used at E-FAM OS fault time and by tests).
     */
    std::uint64_t allocPage(NodeId logical_node, Perms perms);

    /**
     * Handle a system-level fault: NPA page @p npa_page of @p phys_node
     * has no FAM mapping. After the service latency the broker
     * allocates a page, installs the FAM PTE + ACM entry (generating
     * FAM write traffic) and invokes @p done with the FAM page.
     * @p job attributes the fault to its tenant (multi-tenant runs).
     */
    void handleUnmapped(NodeId phys_node, std::uint64_t npa_page,
                        std::function<void(std::uint64_t fam_page)> done,
                        JobId job = 0);

    /** System-level page table for @p phys_node (NPA page -> FAM page). */
    [[nodiscard]] HierarchicalPageTable& famTableOf(NodeId phys_node);

    // -- Shared 1 GB regions -------------------------------------------

    /** Reserve a shared 1 GB region; grants access to @p members. */
    std::uint64_t createSharedRegion(
        const std::vector<std::pair<NodeId, Perms>>& members);

    /**
     * Allocate one page inside shared region @p region and map it for
     * @p phys_node at @p npa_page. All its ACM node-id bits are set to
     * the shared marker (§III-A).
     */
    std::uint64_t mapSharedPage(std::uint64_t region, NodeId phys_node,
                                std::uint64_t npa_page);

    /** Map an existing shared page for another node. */
    void attachSharedPage(std::uint64_t fam_page, NodeId phys_node,
                          std::uint64_t npa_page);

    // -- Job migration (§VI) -------------------------------------------

    /** Listener invoked when mappings of a node must be shot down. */
    using InvalidateFn = std::function<void(NodeId phys_node)>;

    /** Register a cache shootdown listener (STU / FAM translator). */
    void addInvalidateListener(InvalidateFn fn);

    /**
     * Drop every registered shootdown listener. System::reset rebuilds
     * the per-node hardware; the listeners capture raw STU/translator
     * pointers, so they must be cleared before the old components are
     * destroyed and re-registered by the rebuilt ones.
     */
    void clearInvalidateListeners() { invalidateListeners_.clear(); }

    /** Cost accounting of a migration. */
    struct MigrationReport {
        std::size_t pagesMoved = 0;
        std::size_t acmWrites = 0;
        std::size_t mappingsMoved = 0;
        bool usedLogicalIds = false;
    };

    /**
     * Move the job on @p from to @p to. With @p use_logical_ids the ACM
     * is untouched (the logical id follows the job); otherwise every
     * owned page's ACM entry is rewritten. @p to is registered on the
     * fly if it never faulted before; @p from must be registered.
     *
     * Under the parallel kernel this must be called from a global
     * barrier op, with @p emit_at the op's due tick: the ACM rewrite
     * traffic is then scheduled onto the owning media partitions at
     * that tick instead of accessing the media directly (which would
     * run outside its owning partition). Serial callers leave
     * @p emit_at at 0.
     */
    MigrationReport migrateJob(NodeId from, NodeId to,
                               bool use_logical_ids, Tick emit_at = 0);

    [[nodiscard]] const BrokerParams& params() const { return params_; }
    [[nodiscard]] std::uint64_t pagesAllocated() const
    {
        return pagesAllocated_;
    }

  private:
    std::uint64_t nextScatteredPage();

    /** Emit one bookkeeping FAM write of @p block now (media_ set). */
    void emitBrokerWrite(NodeId node, FamAddr block);
    /** Block address of @p node's leaf FAM PTE for @p npa_page. */
    std::optional<FamAddr> pteWriteBlock(NodeId node,
                                         std::uint64_t npa_page);

    /**
     * How a bookkeeping write reaches the media: immediately on the
     * serial path, scheduled onto the owning media partition at the
     * fault's due tick on the parallel path. Parameterizing the emit
     * keeps the counting/guard logic in one place for both.
     */
    using BrokerWriteEmit = std::function<void(NodeId, FamAddr)>;

    void writeAcmTraffic(std::uint64_t fam_page);
    void writeAcmTraffic(std::uint64_t fam_page,
                         const BrokerWriteEmit& emit);
    void writePteTraffic(NodeId node, std::uint64_t npa_page);
    void writePteTraffic(NodeId node, std::uint64_t npa_page,
                         const BrokerWriteEmit& emit);

    /**
     * Parallel-kernel flavor of the bookkeeping FAM writes: from a
     * global barrier op, schedule the write of @p block at @p when on
     * the media partition that owns the target module (the workers
     * are quiescent, so cross-queue scheduling is safe).
     */
    void scheduleBrokerWrite(ParallelSim& psim, NodeId node,
                             FamAddr block, Tick when);

    BrokerParams params_;
    FamLayout& layout_;
    AcmStore& acm_;
    FamMedia* media_;

    std::uint64_t allocCursor_ = 0;
    std::uint64_t allocatablePages_ = 0;
    std::uint64_t scatterStride_ = 0;
    std::uint64_t pagesAllocated_ = 0;

    /** Bump allocator for shared regions (grows down from the top). */
    std::uint64_t nextSharedRegionBase_ = 0;
    std::unordered_map<std::uint64_t, std::uint64_t> sharedRegionCursor_;

    std::unordered_map<NodeId, NodeId> logicalIds_;
    NodeId nextLogicalId_ = 0;
    std::unordered_map<NodeId, std::unique_ptr<HierarchicalPageTable>>
        famTables_;
    std::vector<InvalidateFn> invalidateListeners_;

    Counter& faults_;
    Counter& pagesStat_;
    Counter& acmWrites_;
    Counter& pteWrites_;
    Counter& migrations_;
    /** Per-job fault attribution (null when single-tenant). */
    JobStatTable* jobFaults_ = nullptr;
};

} // namespace famsim

#endif // FAMSIM_FAM_BROKER_HH
