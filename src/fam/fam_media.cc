#include "fam/fam_media.hh"

#include "psim/parallel_sim.hh"
#include "sim/logging.hh"
#include "sim/trace_sink.hh"

namespace famsim {

FamMedia::FamMedia(Simulation& sim, const std::string& name,
                   const FamMediaParams& params)
    : Component(sim, name),
      params_(params),
      total_(statSharedCounter("requests", "total requests at FAM")),
      at_(statSharedCounter("at_requests",
                            "address-translation requests at FAM")),
      data_(statSharedCounter("data_requests",
                              "data (non-AT) requests at FAM")),
      famPtw_(statSharedCounter("fam_ptw_requests",
                                "FAM page-table walk requests")),
      acm_(statSharedCounter("acm_requests", "ACM fetch requests")),
      bitmap_(statSharedCounter("bitmap_requests",
                                "shared-page bitmap requests")),
      nodePtw_(statSharedCounter(
          "node_ptw_requests",
          "node page-table walk requests reaching FAM")),
      broker_(statSharedCounter("broker_requests",
                                "broker bookkeeping requests at FAM"))
{
    FAMSIM_ASSERT(params.modules > 0, "FAM needs at least one module");
    if (params_.jobs > 1) {
        jobRequests_ = &statJobTable(
            "job_requests", "requests at FAM per tenant job",
            params_.jobs);
        jobAt_ = &statJobTable("job_at_requests",
                               "address-translation requests at FAM "
                               "per tenant job",
                               params_.jobs);
    }
    for (unsigned i = 0; i < params.modules; ++i) {
        // Module i's banked state and histograms run on (and are owned
        // by) media partition partitionBase + i; the aggregate
        // SharedCounters above span every module and stay untagged.
        check::WiringScope wire(
            params_.partitionBase == check::kUnowned
                ? check::kUnowned
                : params_.partitionBase + i);
        modules_.push_back(std::make_unique<BankedMemory>(
            sim, name + ".module" + std::to_string(i), params.nvm));
        obsFabric_.push_back(obsHistogram(
            "module" + std::to_string(i) + ".obs_fabric_ns",
            "ns from STU fabric hand-off to module arrival "
            "(observability)", 16, 64));
    }
}

void
FamMedia::access(const PktPtr& pkt)
{
    FAMSIM_ASSERT(pkt->hasFam || pkt->kind != PacketKind::Data,
                  "data packet reached FAM without a FAM address");
    std::uint64_t addr = pkt->fam.value();
    unsigned module = moduleOf(addr);
    if (ParallelSim* psim = sim_.parallel()) {
        // Sharded kernel: each module's banked state belongs to one
        // partition; a mis-routed access would race with its owner.
        FAMSIM_ASSERT(ParallelSim::currentPartition() ==
                          psim->mediaPartition(module),
                      "FAM access executed off the owning media "
                      "partition");
    }
    ++total_;
    if (jobRequests_) {
        jobRequests_->add(pkt->job);
        if (pkt->isTranslation())
            jobAt_->add(pkt->job);
    }
    switch (pkt->kind) {
      case PacketKind::Data: ++data_; break;
      case PacketKind::FamPtw: ++at_; ++famPtw_; break;
      case PacketKind::Acm: ++at_; ++acm_; break;
      case PacketKind::Bitmap: ++at_; ++bitmap_; break;
      case PacketKind::NodePtw: ++at_; ++nodePtw_; break;
      case PacketKind::Broker: ++at_; ++broker_; break;
    }

    // tsFabricReq is only stamped on the STU paths; broker bookkeeping
    // and node-PTW packets reach the media without crossing that hop
    // and are excluded from the fabric-stage breakdown.
    Tick now = sim_.curTick();
    if (pkt->tsFabricReq != 0 && obsFabric_[module])
        obsFabric_[module]->sample((now - pkt->tsFabricReq) /
                                   kNanosecond);
    if (TraceSink* trace = sim_.trace();
        trace && trace->wants(TraceSink::kPacket)) {
        std::uint32_t lane = traceLaneBase_ + module;
        if (pkt->tsFabricReq != 0)
            trace->span(TraceSink::kPacket, lane, "fabric.req",
                        pkt->tsFabricReq, now);
        // Service span: wrap the completion so the span closes when
        // the module finishes. The completion runs on this module's
        // partition, so the lane stays writer-exclusive.
        auto orig = std::move(pkt->onDone);
        pkt->onDone = [this, lane, now,
                       orig = std::move(orig)](Packet& p) mutable {
            sim_.trace()->span(TraceSink::kPacket, lane, "media.access",
                               now, sim_.curTick());
            if (orig)
                orig(p);
        };
    }

    modules_[module]->access(pkt, addr);
}

} // namespace famsim
