/**
 * @file
 * The FAM media: one or more NVM modules (memory pools) behind the
 * fabric, page-interleaved. Aggregates the AT / non-AT request
 * accounting used by Fig. 4 and Fig. 11.
 */

#ifndef FAMSIM_FAM_FAM_MEDIA_HH
#define FAMSIM_FAM_FAM_MEDIA_HH

#include <memory>
#include <string>
#include <vector>

#include "mem/banked_memory.hh"
#include "mem/packet.hh"
#include "sim/check.hh"
#include "sim/simulation.hh"

namespace famsim {

/** FAM media configuration (Table II: 16 GB NVM, 60/150 ns, 32 banks). */
struct FamMediaParams {
    std::uint64_t capacityBytes = std::uint64_t{16} << 30;
    unsigned modules = 1;
    /** Interleave granularity across modules. */
    std::uint64_t interleaveBytes = kPageSize;
    BankedMemoryParams nvm{
        .banks = 32,
        .readLatency = 60 * kNanosecond,
        .writeLatency = 150 * kNanosecond,
        .frontendLatency = 5 * kNanosecond,
        .maxOutstanding = 128,
    };
    /**
     * Tenant jobs sharing the pool (SystemConfig::tenancy.jobs).
     * > 1 registers the per-job request attribution tables.
     */
    unsigned jobs = 1;
    /**
     * psim partition of module 0 (module m is owned by partitionBase
     * + m; the media partitions sit after the node partitions). Set by
     * SystemConfig::finalize; the default leaves the per-module stats
     * unstamped for the FAMSIM_CHECK ownership hooks (serial-only
     * fixtures that construct a FamMedia directly).
     */
    std::uint32_t partitionBase = check::kUnowned;
};

/** The fabric-attached NVM pool(s). Accessed with FAM addresses. */
class FamMedia : public Component
{
  public:
    FamMedia(Simulation& sim, const std::string& name,
             const FamMediaParams& params);

    /**
     * Service @p pkt (pkt->fam must be valid). Under the parallel
     * kernel the caller must be executing on the partition that owns
     * the target module (asserted): requests arrive via the fabric's
     * arbitrated delivery, broker bookkeeping via barrier-op
     * scheduling, both of which route by moduleOf().
     */
    void access(const PktPtr& pkt);

    /** Module owning FAM address @p fam_addr (page interleaving). */
    [[nodiscard]] unsigned
    moduleOf(std::uint64_t fam_addr) const
    {
        return static_cast<unsigned>(
            (fam_addr / params_.interleaveBytes) % modules_.size());
    }

    [[nodiscard]] const FamMediaParams& params() const { return params_; }
    [[nodiscard]] BankedMemory& module(unsigned i) { return *modules_[i]; }
    [[nodiscard]] unsigned numModules() const
    {
        return static_cast<unsigned>(modules_.size());
    }

    /**
     * Forget every module's bank-busy timestamps, for System reuse
     * (the media object survives a System::reset so the broker's
     * pointer and the established FAM layout stay valid, but its
     * timing state belongs to the finished run).
     */
    void
    resetTiming()
    {
        for (auto& module : modules_)
            module->resetTiming();
    }

    /**
     * Base trace-lane id of module 0 (= node count: media lanes sit
     * after the node lanes, mirroring the psim partition layout). Set
     * once by System; module @c m emits on lane base + m.
     */
    void setTraceLaneBase(std::uint32_t base) { traceLaneBase_ = base; }

    /** Total requests observed (for Fig. 4 / Fig. 11 percentages). */
    [[nodiscard]] std::uint64_t totalRequests() const
    {
        return total_.value();
    }
    /** Address-translation requests observed. */
    [[nodiscard]] std::uint64_t atRequests() const { return at_.value(); }

  private:
    FamMediaParams params_;
    std::vector<std::unique_ptr<BankedMemory>> modules_;
    // The classification aggregates span every media module, and the
    // sharded parallel kernel runs each module on its own partition —
    // SharedCounter (relaxed atomic) keeps the concurrent bumps safe;
    // the totals are sums, so they stay thread-count-deterministic.
    SharedCounter& total_;
    SharedCounter& at_;
    SharedCounter& data_;
    SharedCounter& famPtw_;
    SharedCounter& acm_;
    SharedCounter& bitmap_;
    SharedCounter& nodePtw_;
    SharedCounter& broker_;
    // Per-job attribution: same relaxed-atomic order-independence
    // argument as the SharedCounters above; null when single-tenant so
    // the default hot path carries no extra bump.
    JobStatTable* jobRequests_ = nullptr;
    JobStatTable* jobAt_ = nullptr;
    /**
     * Per-module fabric-latency histograms (observability); empty when
     * off. Per module — not one shared Histogram — because each module
     * samples from its own psim partition and Histogram is not
     * thread-safe.
     */
    std::vector<Histogram*> obsFabric_;
    std::uint32_t traceLaneBase_ = 0;
};

} // namespace famsim

#endif // FAMSIM_FAM_FAM_MEDIA_HH
