/**
 * @file
 * The FAM media: one or more NVM modules (memory pools) behind the
 * fabric, page-interleaved. Aggregates the AT / non-AT request
 * accounting used by Fig. 4 and Fig. 11.
 */

#ifndef FAMSIM_FAM_FAM_MEDIA_HH
#define FAMSIM_FAM_FAM_MEDIA_HH

#include <memory>
#include <string>
#include <vector>

#include "mem/banked_memory.hh"
#include "mem/packet.hh"
#include "sim/simulation.hh"

namespace famsim {

/** FAM media configuration (Table II: 16 GB NVM, 60/150 ns, 32 banks). */
struct FamMediaParams {
    std::uint64_t capacityBytes = std::uint64_t{16} << 30;
    unsigned modules = 1;
    /** Interleave granularity across modules. */
    std::uint64_t interleaveBytes = kPageSize;
    BankedMemoryParams nvm{
        .banks = 32,
        .readLatency = 60 * kNanosecond,
        .writeLatency = 150 * kNanosecond,
        .frontendLatency = 5 * kNanosecond,
        .maxOutstanding = 128,
    };
};

/** The fabric-attached NVM pool(s). Accessed with FAM addresses. */
class FamMedia : public Component
{
  public:
    FamMedia(Simulation& sim, const std::string& name,
             const FamMediaParams& params);

    /** Service @p pkt (pkt->fam must be valid). */
    void access(const PktPtr& pkt);

    [[nodiscard]] const FamMediaParams& params() const { return params_; }
    [[nodiscard]] BankedMemory& module(unsigned i) { return *modules_[i]; }
    [[nodiscard]] unsigned numModules() const
    {
        return static_cast<unsigned>(modules_.size());
    }

    /** Total requests observed (for Fig. 4 / Fig. 11 percentages). */
    [[nodiscard]] std::uint64_t totalRequests() const
    {
        return total_.value();
    }
    /** Address-translation requests observed. */
    [[nodiscard]] std::uint64_t atRequests() const { return at_.value(); }

  private:
    FamMediaParams params_;
    std::vector<std::unique_ptr<BankedMemory>> modules_;
    Counter& total_;
    Counter& at_;
    Counter& data_;
    Counter& famPtw_;
    Counter& acm_;
    Counter& bitmap_;
    Counter& nodePtw_;
    Counter& broker_;
};

} // namespace famsim

#endif // FAMSIM_FAM_FAM_MEDIA_HH
