#include "fam/broker.hh"

#include <numeric>

#include "psim/parallel_sim.hh"
#include "sim/logging.hh"

namespace famsim {
namespace {

/** Greatest common divisor (for the scatter stride). */
std::uint64_t
gcd64(std::uint64_t a, std::uint64_t b)
{
    while (b != 0) {
        std::uint64_t t = a % b;
        a = b;
        b = t;
    }
    return a;
}

} // namespace

MemoryBroker::MemoryBroker(Simulation& sim, const std::string& name,
                           const BrokerParams& params, FamLayout& layout,
                           AcmStore& acm, FamMedia* media)
    : Component(sim, name),
      params_(params),
      layout_(layout),
      acm_(acm),
      media_(media),
      faults_(statCounter("faults", "system-level page faults serviced")),
      pagesStat_(statCounter("pages_allocated", "FAM pages handed out")),
      acmWrites_(statCounter("acm_writes", "ACM entries written")),
      pteWrites_(statCounter("pte_writes", "FAM PTEs written")),
      migrations_(statCounter("migrations", "jobs migrated"))
{
    if (params_.jobs > 1) {
        jobFaults_ = &statJobTable(
            "job_faults", "system-level faults serviced per tenant job",
            params_.jobs);
    }
    std::uint64_t reserve = layout.sharedReservePages();
    std::uint64_t usable = layout.usablePages();
    FAMSIM_ASSERT(usable > reserve + 1,
                  "FAM too small for the shared reserve");
    allocatablePages_ = usable - reserve;
    nextSharedRegionBase_ = allocatablePages_;

    // A multiplicative stride coprime with the pool size visits every
    // page exactly once in a scattered order — a cheap stand-in for the
    // random interleaving produced by many tenants allocating at once.
    scatterStride_ = 999983; // prime
    while (gcd64(scatterStride_, allocatablePages_) != 1)
        ++scatterStride_;
}

void
MemoryBroker::registerNode(NodeId phys)
{
    if (logicalIds_.count(phys))
        return;
    logicalIds_[phys] = nextLogicalId_++;
    famTables_.emplace(
        phys, std::make_unique<HierarchicalPageTable>([this] {
            // FAM page-table pages themselves live in FAM usable space.
            std::uint64_t page = nextScatteredPage();
            return page * kPageSize;
        }));
}

NodeId
MemoryBroker::logicalIdOf(NodeId phys) const
{
    auto it = logicalIds_.find(phys);
    FAMSIM_ASSERT(it != logicalIds_.end(), "unregistered node ", phys);
    return it->second;
}

std::uint64_t
MemoryBroker::nextScatteredPage()
{
    FAMSIM_ASSERT(pagesAllocated_ < allocatablePages_,
                  "FAM pool exhausted");
    std::uint64_t idx = allocCursor_++;
    ++pagesAllocated_;
    if (!params_.scatterAllocation)
        return idx;
    // Bijective scatter: idx -> (idx * stride) mod pool.
    return (idx * scatterStride_) % allocatablePages_;
}

std::uint64_t
MemoryBroker::allocPage(NodeId logical_node, Perms perms)
{
    std::uint64_t page = nextScatteredPage();
    acm_.set(page, AcmEntry{logical_node, perms.encode2b()});
    ++pagesStat_;
    return page;
}

void
MemoryBroker::emitBrokerWrite(NodeId node, FamAddr block)
{
    PktPtr pkt = makePacket(node, 0, MemOp::Write, PacketKind::Broker);
    pkt->fam = block;
    pkt->hasFam = true;
    pkt->issued = sim_.curTick();
    pkt->onDone = [](Packet&) {};
    media_->access(pkt);
}

std::optional<FamAddr>
MemoryBroker::pteWriteBlock(NodeId node, std::uint64_t npa_page)
{
    auto addr = famTableOf(node).entryAddr(
        npa_page, HierarchicalPageTable::kLevels - 1);
    if (!addr)
        return std::nullopt;
    return FamAddr(*addr).blockAddr();
}

void
MemoryBroker::writeAcmTraffic(std::uint64_t fam_page,
                              const BrokerWriteEmit& emit)
{
    ++acmWrites_;
    if (!media_)
        return;
    emit(0, layout_.acmBlockForPage(fam_page));
}

void
MemoryBroker::writeAcmTraffic(std::uint64_t fam_page)
{
    writeAcmTraffic(fam_page, [this](NodeId node, FamAddr block) {
        emitBrokerWrite(node, block);
    });
}

void
MemoryBroker::writePteTraffic(NodeId node, std::uint64_t npa_page,
                              const BrokerWriteEmit& emit)
{
    ++pteWrites_;
    if (!media_)
        return;
    if (auto block = pteWriteBlock(node, npa_page))
        emit(node, *block);
}

void
MemoryBroker::writePteTraffic(NodeId node, std::uint64_t npa_page)
{
    writePteTraffic(node, npa_page, [this](NodeId n, FamAddr block) {
        emitBrokerWrite(n, block);
    });
}

void
MemoryBroker::scheduleBrokerWrite(ParallelSim& psim, NodeId node,
                                  FamAddr block, Tick when)
{
    unsigned module = media_->moduleOf(block.value());
    psim.queueOf(psim.mediaPartition(module))
        .schedule(when,
                  [this, node, block] { emitBrokerWrite(node, block); });
}

void
MemoryBroker::handleUnmapped(NodeId phys_node, std::uint64_t npa_page,
                             std::function<void(std::uint64_t)> done,
                             JobId job)
{
    FAMSIM_ASSERT(done, "handleUnmapped needs a completion callback");
    if (ParallelSim* psim = sim_.parallel()) {
        // Parallel kernel: resolve the fault as a global barrier op so
        // the pool allocator, the ACM flat map and the node's FAM
        // table mutate while every worker is quiescent (those
        // structures are read lock-free from node partitions). The
        // service latency is >= the node's outgoing lookahead floor by
        // construction of the matrix, so the due tick is conservative;
        // bookkeeping traffic and the completion then run as ordinary
        // events at the resolution tick — the PTE/ACM writes on the
        // media partitions owning their target modules, the completion
        // on the faulting node's partition.
        std::uint32_t origin = ParallelSim::currentPartition();
        FAMSIM_ASSERT(origin != ParallelSim::kNoPartition,
                      "system-level fault from outside a partition");
        Tick due = sim_.curTick() + params_.serviceLatency;
        psim->postGlobal(due, [this, psim, origin, phys_node, npa_page,
                               due, job,
                               done = std::move(done)]() mutable {
            ++faults_;
            if (jobFaults_)
                jobFaults_->add(job);
            NodeId logical = logicalIdOf(phys_node);
            std::uint64_t fam_page = allocPage(logical, Perms{});
            famTableOf(phys_node).map(npa_page, fam_page, Perms{});
            auto emit_at_due = [this, psim, due](NodeId node,
                                                 FamAddr block) {
                scheduleBrokerWrite(*psim, node, block, due);
            };
            writePteTraffic(phys_node, npa_page, emit_at_due);
            writeAcmTraffic(fam_page, emit_at_due);
            psim->queueOf(origin).schedule(
                due,
                [fam_page, done = std::move(done)] { done(fam_page); });
        });
        return;
    }
    ++faults_;
    if (jobFaults_)
        jobFaults_->add(job);
    sim_.events().scheduleAfter(
        params_.serviceLatency,
        [this, phys_node, npa_page, done = std::move(done)] {
            NodeId logical = logicalIdOf(phys_node);
            std::uint64_t fam_page = allocPage(logical, Perms{});
            famTableOf(phys_node).map(npa_page, fam_page, Perms{});
            writePteTraffic(phys_node, npa_page);
            writeAcmTraffic(fam_page);
            done(fam_page);
        });
}

HierarchicalPageTable&
MemoryBroker::famTableOf(NodeId phys_node)
{
    auto it = famTables_.find(phys_node);
    FAMSIM_ASSERT(it != famTables_.end(), "unregistered node ",
                  phys_node);
    return *it->second;
}

std::uint64_t
MemoryBroker::createSharedRegion(
    const std::vector<std::pair<NodeId, Perms>>& members)
{
    constexpr std::uint64_t pages_per_region =
        kLargePageSize / kPageSize;
    FAMSIM_ASSERT(nextSharedRegionBase_ + pages_per_region <=
                      layout_.usablePages(),
                  "no shared region space left");
    std::uint64_t base_page = nextSharedRegionBase_;
    nextSharedRegionBase_ += pages_per_region;
    std::uint64_t region = FamLayout::regionOf(base_page);
    sharedRegionCursor_[region] = base_page;
    for (const auto& [node, perms] : members)
        acm_.grantRegion(region, logicalIdOf(node), perms);
    return region;
}

std::uint64_t
MemoryBroker::mapSharedPage(std::uint64_t region, NodeId phys_node,
                            std::uint64_t npa_page)
{
    auto it = sharedRegionCursor_.find(region);
    FAMSIM_ASSERT(it != sharedRegionCursor_.end(),
                  "unknown shared region ", region);
    std::uint64_t fam_page = it->second++;
    acm_.markShared(fam_page, Perms{}.encode2b());
    writeAcmTraffic(fam_page);
    attachSharedPage(fam_page, phys_node, npa_page);
    return fam_page;
}

void
MemoryBroker::attachSharedPage(std::uint64_t fam_page, NodeId phys_node,
                               std::uint64_t npa_page)
{
    famTableOf(phys_node).map(npa_page, fam_page, Perms{});
    writePteTraffic(phys_node, npa_page);
}

void
MemoryBroker::addInvalidateListener(InvalidateFn fn)
{
    FAMSIM_ASSERT(fn, "null invalidate listener");
    invalidateListeners_.push_back(std::move(fn));
}

MemoryBroker::MigrationReport
MemoryBroker::migrateJob(NodeId from, NodeId to, bool use_logical_ids,
                         Tick emit_at)
{
    // The target may never have faulted (a freshly drained node is a
    // natural migration destination): give it a logical id and an
    // empty system-level table now, instead of letting the table swap
    // below default-construct a null entry that famTableOf would later
    // dereference.
    registerNode(to);
    ++migrations_;
    MigrationReport report;
    report.usedLogicalIds = use_logical_ids;

    NodeId from_logical = logicalIdOf(from);
    if (use_logical_ids) {
        // The logical id follows the job: ACM entries stay valid, only
        // the binding changes (§VI). The destination node inherits the
        // logical id; the source gets a fresh one.
        logicalIds_[to] = from_logical;
        logicalIds_[from] = nextLogicalId_++;
        report.pagesMoved = acm_.pagesOwnedBy(from_logical).size();
    } else {
        NodeId to_logical = logicalIdOf(to);
        auto pages = acm_.pagesOwnedBy(from_logical);
        report.pagesMoved = pages.size();
        report.acmWrites = acm_.reassignOwner(from_logical, to_logical);
        BrokerWriteEmit emit = [this](NodeId node, FamAddr block) {
            emitBrokerWrite(node, block);
        };
        if (ParallelSim* psim = sim_.parallel(); psim && media_) {
            // Called from a global barrier op: the workers are
            // quiescent, so scheduling onto the owning media partitions
            // at the op's due tick is safe, while a direct media access
            // would execute outside the module's partition.
            FAMSIM_ASSERT(emit_at != 0,
                          "parallel migration needs the barrier op's "
                          "due tick for its ACM traffic");
            emit = [this, psim, emit_at](NodeId node, FamAddr block) {
                scheduleBrokerWrite(*psim, node, block, emit_at);
            };
        }
        for (std::uint64_t page : pages)
            writeAcmTraffic(page, emit);
    }

    // Move the system-level NPA->FAM mappings with the job: the
    // destination node takes over the source's table (the job's NPA
    // layout moves wholesale, as when a job checkpoint/restores onto
    // the new node).
    report.mappingsMoved = famTableOf(from).mappings();
    std::swap(famTables_[from], famTables_[to]);

    for (const auto& fn : invalidateListeners_) {
        fn(from);
        fn(to);
    }
    return report;
}

} // namespace famsim
