/**
 * @file
 * FAM physical layout and access-control metadata (ACM), §III-A / Fig. 5.
 *
 * The FAM is carved into three regions:
 *   [0, usableBytes)                      usable memory,
 *   [acmBase, acmBase + acmBytes)         per-4KB-page ACM entries,
 *   [bitmapBase, bitmapBase + bmBytes)    one 8 KB share-bitmap per 1 GB.
 *
 * An ACM entry is `acmBits` wide (default 16): the low 2 bits encode
 * R/W/E permissions, the remaining bits hold the owning (logical) node
 * id; the all-ones node id marks a shared page. The ACM address of FAM
 * page X is derivable purely from X (acmBase + X * acmBits/8), which is
 * what lets the STU fetch metadata without any extra mapping state.
 */

#ifndef FAMSIM_FAM_ACM_HH
#define FAMSIM_FAM_ACM_HH

#include <cstdint>
#include <optional>
#include <unordered_map>

#include "sim/flat_map.hh"
#include <unordered_set>
#include <vector>

#include "sim/types.hh"
#include "vm/page_table.hh"

namespace famsim {

/** Geometry of the FAM address space. */
class FamLayout
{
  public:
    /**
     * @param capacity_bytes total FAM media capacity.
     * @param acm_bits       ACM entry width (8, 16 or 32; Fig. 14).
     */
    FamLayout(std::uint64_t capacity_bytes, unsigned acm_bits = 16,
              std::uint64_t shared_reserve_bytes = 0);

    [[nodiscard]] std::uint64_t capacityBytes() const { return capacity_; }
    [[nodiscard]] unsigned acmBits() const { return acmBits_; }

    /** Bytes of usable (allocatable) memory. */
    [[nodiscard]] std::uint64_t usableBytes() const { return usable_; }
    [[nodiscard]] std::uint64_t usablePages() const
    {
        return usable_ / kPageSize;
    }

    /** Start of the ACM entry region. */
    [[nodiscard]] std::uint64_t acmBase() const { return acmBase_; }
    /** Start of the shared-page bitmap region. */
    [[nodiscard]] std::uint64_t bitmapBase() const { return bitmapBase_; }

    /** FAM address of the ACM entry for @p fam_page. */
    [[nodiscard]] FamAddr
    acmAddrForPage(std::uint64_t fam_page) const
    {
        return FamAddr(acmBase_ + fam_page * (acmBits_ / 8));
    }

    /** 64 B-aligned block containing the ACM entry for @p fam_page. */
    [[nodiscard]] FamAddr
    acmBlockForPage(std::uint64_t fam_page) const
    {
        return acmAddrForPage(fam_page).blockAddr();
    }

    /** 4 KB pages covered by one 64 B ACM block (32 for 16-bit ACM). */
    [[nodiscard]] unsigned
    pagesPerAcmBlock() const
    {
        return static_cast<unsigned>(kBlockSize * 8 / acmBits_);
    }

    /** 1 GB region index containing @p fam_page. */
    [[nodiscard]] static std::uint64_t
    regionOf(std::uint64_t fam_page)
    {
        return fam_page / (kLargePageSize / kPageSize);
    }

    /** FAM address of the bitmap byte for (@p region, @p node). */
    [[nodiscard]] FamAddr
    bitmapAddrFor(std::uint64_t region, NodeId node) const
    {
        return FamAddr(bitmapBase_ + region * kBitmapBytesPerRegion +
                       node / 8);
    }

    /** Bytes of bitmap per 1 GB region (64K nodes / 8). */
    static constexpr std::uint64_t kBitmapBytesPerRegion = 8 * 1024;

    /** Pages reserved (at the top of usable space) for shared regions. */
    [[nodiscard]] std::uint64_t sharedReservePages() const
    {
        return sharedReserve_ / kPageSize;
    }

  private:
    std::uint64_t capacity_;
    unsigned acmBits_;
    std::uint64_t usable_;
    std::uint64_t acmBase_;
    std::uint64_t bitmapBase_;
    std::uint64_t sharedReserve_;
};

/** Decoded ACM entry. */
struct AcmEntry {
    /** Owning logical node, or the shared marker. */
    std::uint32_t owner = 0;
    /** 2-bit permission encoding (Perms::encode2b). */
    std::uint8_t permBits = 0;

    bool operator==(const AcmEntry&) const = default;
};

/**
 * Functional contents of the ACM + bitmap regions, plus the raw
 * encode/decode logic for the configurable entry width.
 */
class AcmStore
{
  public:
    explicit AcmStore(unsigned acm_bits = 16);

    /** Number of bits holding the node id. */
    [[nodiscard]] unsigned nodeIdBits() const { return acmBits_ - 2; }
    /** The all-ones owner value marking a shared page. */
    [[nodiscard]] std::uint32_t sharedMarker() const
    {
        return (1u << nodeIdBits()) - 1;
    }
    /** Highest assignable node id (shared marker is reserved). */
    [[nodiscard]] std::uint32_t maxNodes() const
    {
        return sharedMarker() - 1;
    }

    /** Raw bit encoding of an entry (for width/round-trip tests). */
    [[nodiscard]] std::uint32_t encode(const AcmEntry& entry) const;
    [[nodiscard]] AcmEntry decode(std::uint32_t bits) const;

    /** Set the ACM entry of @p fam_page. */
    void set(std::uint64_t fam_page, const AcmEntry& entry);
    /** Get the ACM entry (zero/no-access if never set). */
    [[nodiscard]] AcmEntry get(std::uint64_t fam_page) const;
    /** Remove the entry (page freed). */
    void clear(std::uint64_t fam_page);

    /** Mark @p fam_page shared (owner bits = shared marker). */
    void markShared(std::uint64_t fam_page, std::uint8_t default_perms);

    /** Grant @p node access to @p region with @p perms (bitmap bit). */
    void grantRegion(std::uint64_t region, NodeId node, Perms perms);
    /** Revoke @p node's access to @p region. */
    void revokeRegion(std::uint64_t region, NodeId node);
    /** Bitmap check: may @p node access pages in @p region at all? */
    [[nodiscard]] bool regionAllows(std::uint64_t region,
                                    NodeId node) const;
    /** Per-node permissions within a shared region. */
    [[nodiscard]] Perms regionPerms(std::uint64_t region,
                                    NodeId node) const;

    /** Pages currently owned by @p node (for migration). */
    [[nodiscard]] std::vector<std::uint64_t>
    pagesOwnedBy(std::uint32_t node) const;

    /** Rewrite ownership of every page of @p from to @p to. @return n. */
    std::size_t reassignOwner(std::uint32_t from, std::uint32_t to);

  private:
    unsigned acmBits_;
    /** fam_page -> entry; flat map: one cache line per lookup. */
    U64FlatMap<AcmEntry> entries_;
    /** region -> (node -> 2-bit perms); presence == bitmap bit set. */
    std::unordered_map<std::uint64_t,
                       std::unordered_map<NodeId, std::uint8_t>>
        regionGrants_;
};

} // namespace famsim

#endif // FAMSIM_FAM_ACM_HH
