#include "fam/acm.hh"

#include "sim/logging.hh"

namespace famsim {

FamLayout::FamLayout(std::uint64_t capacity_bytes, unsigned acm_bits,
                     std::uint64_t shared_reserve_bytes)
    : capacity_(capacity_bytes),
      acmBits_(acm_bits),
      sharedReserve_(shared_reserve_bytes)
{
    FAMSIM_ASSERT(acm_bits == 8 || acm_bits == 16 || acm_bits == 32,
                  "ACM width must be 8, 16 or 32 bits, got ", acm_bits);
    FAMSIM_ASSERT(capacity_bytes % kLargePageSize == 0,
                  "FAM capacity must be a multiple of 1 GB");

    // Solve for the usable size: every usable page needs acm_bits of
    // metadata and every 1 GB region needs an 8 KB bitmap. We size the
    // metadata regions for the full capacity (slightly conservative,
    // as the paper does — the overhead is < 0.1 %).
    std::uint64_t total_pages = capacity_bytes / kPageSize;
    std::uint64_t acm_bytes = total_pages * (acmBits_ / 8);
    std::uint64_t regions = capacity_bytes / kLargePageSize;
    std::uint64_t bitmap_bytes = regions * kBitmapBytesPerRegion;

    std::uint64_t metadata = acm_bytes + bitmap_bytes;
    // Round metadata up to a page boundary.
    metadata = (metadata + kPageSize - 1) & ~(kPageSize - 1);
    FAMSIM_ASSERT(metadata < capacity_bytes,
                  "metadata would consume the whole FAM");

    usable_ = capacity_bytes - metadata;
    usable_ &= ~(kPageSize - 1);
    acmBase_ = usable_;
    bitmapBase_ = acmBase_ + acm_bytes;
    FAMSIM_ASSERT(sharedReserve_ < usable_,
                  "shared reserve exceeds usable space");
}

AcmStore::AcmStore(unsigned acm_bits) : acmBits_(acm_bits)
{
    FAMSIM_ASSERT(acm_bits == 8 || acm_bits == 16 || acm_bits == 32,
                  "ACM width must be 8, 16 or 32 bits, got ", acm_bits);
}

std::uint32_t
AcmStore::encode(const AcmEntry& entry) const
{
    FAMSIM_ASSERT(entry.owner <= sharedMarker(),
                  "node id ", entry.owner, " does not fit in ",
                  nodeIdBits(), " bits");
    return (entry.owner << 2) | (entry.permBits & 3);
}

AcmEntry
AcmStore::decode(std::uint32_t bits) const
{
    AcmEntry entry;
    entry.permBits = static_cast<std::uint8_t>(bits & 3);
    entry.owner = (bits >> 2) & sharedMarker();
    return entry;
}

void
AcmStore::set(std::uint64_t fam_page, const AcmEntry& entry)
{
    FAMSIM_ASSERT(entry.owner <= sharedMarker(),
                  "node id out of range for ACM width");
    entries_[fam_page] = entry;
}

AcmEntry
AcmStore::get(std::uint64_t fam_page) const
{
    auto it = entries_.find(fam_page);
    return it == entries_.end() ? AcmEntry{} : it->second;
}

void
AcmStore::clear(std::uint64_t fam_page)
{
    entries_.erase(fam_page);
}

void
AcmStore::markShared(std::uint64_t fam_page, std::uint8_t default_perms)
{
    entries_[fam_page] = AcmEntry{sharedMarker(),
                                  static_cast<std::uint8_t>(
                                      default_perms & 3)};
}

void
AcmStore::grantRegion(std::uint64_t region, NodeId node, Perms perms)
{
    regionGrants_[region][node] = perms.encode2b();
}

void
AcmStore::revokeRegion(std::uint64_t region, NodeId node)
{
    auto it = regionGrants_.find(region);
    if (it != regionGrants_.end())
        it->second.erase(node);
}

bool
AcmStore::regionAllows(std::uint64_t region, NodeId node) const
{
    auto it = regionGrants_.find(region);
    return it != regionGrants_.end() && it->second.count(node) > 0;
}

Perms
AcmStore::regionPerms(std::uint64_t region, NodeId node) const
{
    auto it = regionGrants_.find(region);
    if (it == regionGrants_.end())
        return Perms{false, false, false};
    auto nit = it->second.find(node);
    if (nit == it->second.end())
        return Perms{false, false, false};
    return Perms::decode2b(nit->second);
}

std::vector<std::uint64_t>
AcmStore::pagesOwnedBy(std::uint32_t node) const
{
    std::vector<std::uint64_t> pages;
    for (const auto& [page, entry] : entries_) {
        if (entry.owner == node)
            pages.push_back(page);
    }
    return pages;
}

std::size_t
AcmStore::reassignOwner(std::uint32_t from, std::uint32_t to)
{
    std::size_t count = 0;
    for (auto& [page, entry] : entries_) {
        if (entry.owner == from) {
            entry.owner = to;
            ++count;
        }
    }
    return count;
}

} // namespace famsim
