#include "stu/stu.hh"

#include "sim/logging.hh"
#include "sim/trace_sink.hh"

namespace famsim {

Stu::Stu(Simulation& sim, const std::string& name, const StuParams& params,
         NodeId node, FamLayout& layout, AcmStore& acm,
         MemoryBroker& broker, FabricLink& fabric, FamMedia& media)
    : Component(sim, name),
      params_(params),
      node_(node),
      layout_(layout),
      acm_(acm),
      broker_(broker),
      fabric_(fabric),
      media_(media),
      bitmapCache_(params.bitmapCacheEntries, params.bitmapCacheEntries,
                   ReplPolicy::Lru, sim.seed()),
      famPtwCache_(sim, name + ".famptwcache", params.ptwCacheEntries),
      tlbLookups_(statCounter("translation_lookups",
                              "STU translation lookups (I-FAM)")),
      tlbHits_(statCounter("translation_hits",
                           "STU translation hits (I-FAM)")),
      acmLookups_(statCounter("acm_lookups", "ACM cache lookups")),
      acmHits_(statCounter("acm_hits", "ACM cache hits")),
      walks_(statCounter("walks", "FAM page-table walks started")),
      walkSteps_(statCounter("walk_steps",
                             "FAM page-table walk memory accesses")),
      acmFetches_(statCounter("acm_fetches", "ACM blocks fetched from FAM")),
      bitmapFetches_(statCounter("bitmap_fetches",
                                 "bitmap blocks fetched from FAM")),
      brokerFaults_(statCounter("broker_faults",
                                "system-level faults sent to the broker")),
      verifications_(statCounter("verifications",
                                 "access-control checks performed")),
      denials_(statCounter("denials", "accesses denied")),
      forwarded_(statCounter("forwarded", "requests forwarded to FAM"))
{
    obsQueueWait_ = obsHistogram(
        "obs_queue_wait_ns",
        "ns from core issue to STU arrival (observability)", 16, 32);
    obsTranslation_ = obsHistogram(
        "obs_translation_ns",
        "ns from STU arrival to FAM forward: translation + access "
        "control (observability)", 16, 64);
    if (params_.jobs > 1) {
        jobAcmLookups_ = &statJobTable(
            "job_acm_lookups", "ACM cache lookups per tenant job",
            params_.jobs);
        jobAcmHits_ = &statJobTable(
            "job_acm_hits", "ACM cache hits per tenant job", params_.jobs);
        jobDenials_ = &statJobTable(
            "job_denials", "accesses denied per tenant job", params_.jobs);
    }
    FAMSIM_ASSERT(params.entries % params.assoc == 0,
                  "STU entries must divide by associativity");
    std::size_t sets = params.entries / params.assoc;
    switch (params.org) {
      case StuOrg::IFam:
        ifamCache_ = std::make_unique<SetAssocCache<IFamEntry>>(
            sets, params.assoc, ReplPolicy::Lru, sim.seed());
        break;
      case StuOrg::DeactW:
        wCache_ = std::make_unique<SetAssocCache<std::uint8_t>>(
            sets, params.assoc, ReplPolicy::Lru, sim.seed());
        break;
      case StuOrg::DeactN:
        FAMSIM_ASSERT(params.pairsPerWay >= 1 && params.pairsPerWay <= 3,
                      "DeACT-N supports 1..3 (tag, ACM) pairs per way");
        nCache_ = std::make_unique<SetAssocCache<std::uint8_t>>(
            sets, params.assoc * params.pairsPerWay, ReplPolicy::Lru,
            sim.seed());
        break;
    }
}

void
Stu::handleFromNode(const PktPtr& pkt)
{
    FAMSIM_ASSERT(pkt, "null packet at STU");
    sim_.events().scheduleAfter(params_.nodeLinkLatency,
                                [this, pkt] { receive(pkt); });
}

void
Stu::receive(const PktPtr& pkt)
{
    // Stage stamp: arrival at the STU (unconditional store — see
    // Packet). The queue-wait histogram covers core issue -> here.
    pkt->tsStu = sim_.curTick();
    if (obsQueueWait_)
        obsQueueWait_->sample((pkt->tsStu - pkt->issued) / kNanosecond);
    if (params_.org == StuOrg::IFam) {
        handleIFam(pkt);
    } else if (pkt->verified) {
        handleDeactVerified(pkt);
    } else {
        handleDeactUnverified(pkt);
    }
}

// ---------------------------------------------------------------------
// I-FAM: combined translation + access control at the STU.
// ---------------------------------------------------------------------

void
Stu::handleIFam(const PktPtr& pkt)
{
    sim_.events().scheduleAfter(params_.lookupLatency, [this, pkt] {
        std::uint64_t npa_page = pkt->npa.pageNumber();
        ++tlbLookups_;
        ++acmLookups_; // ACM rides in the same entry (Fig. 8a)
        if (jobAcmLookups_)
            jobAcmLookups_->add(pkt->job);
        if (IFamEntry* entry = ifamCache_->lookup(npa_page)) {
            ++tlbHits_;
            ++acmHits_;
            if (jobAcmHits_)
                jobAcmHits_->add(pkt->job);
            pkt->fam = FamAddr(entry->famPage * kPageSize +
                               pkt->npa.pageOffset());
            pkt->hasFam = true;
            verifyAndForward(pkt);
            return;
        }
        // Merge concurrent walks to the same page.
        auto [it, first] = walkMshrs_.try_emplace(npa_page);
        it->second.push_back(pkt);
        if (!first)
            return;
        startWalk(pkt, [this, pkt, npa_page](std::uint64_t fam_page) {
            // The walked PTE supplies the translation; the 16-bit ACM
            // is fetched from the metadata region and cached in the
            // same entry (Fig. 8a: way = tag + famp + ac).
            ++acmFetches_;
            sendFamAccess(pkt, layout_.acmBlockForPage(fam_page),
                          MemOp::Read, PacketKind::Acm,
                          [this, npa_page, fam_page] {
                ifamCache_->insert(npa_page, IFamEntry{fam_page});
                auto mit = walkMshrs_.find(npa_page);
                FAMSIM_ASSERT(mit != walkMshrs_.end(), "lost walk MSHR");
                std::vector<PktPtr> waiters = std::move(mit->second);
                walkMshrs_.erase(mit);
                for (auto& w : waiters) {
                    w->fam = FamAddr(fam_page * kPageSize +
                                     w->npa.pageOffset());
                    w->hasFam = true;
                    verifyAndForward(w);
                }
            });
        });
    });
}

// ---------------------------------------------------------------------
// DeACT: decoupled paths.
// ---------------------------------------------------------------------

void
Stu::handleDeactVerified(const PktPtr& pkt)
{
    FAMSIM_ASSERT(pkt->hasFam,
                  "verified packet without FAM address at STU");
    sim_.events().scheduleAfter(params_.lookupLatency,
                                [this, pkt] { checkAccess(pkt); });
}

void
Stu::handleDeactUnverified(const PktPtr& pkt)
{
    sim_.events().scheduleAfter(params_.lookupLatency, [this, pkt] {
        std::uint64_t npa_page = pkt->npa.pageNumber();
        auto [it, first] = walkMshrs_.try_emplace(npa_page);
        it->second.push_back(pkt);
        if (!first)
            return;
        startWalk(pkt, [this, npa_page](std::uint64_t fam_page) {
            // Return the mapping to the node's FAM translator so it can
            // update the in-DRAM translation cache (step 5, Fig. 6).
            if (mappingListener_)
                mappingListener_(npa_page, fam_page);
            auto mit = walkMshrs_.find(npa_page);
            FAMSIM_ASSERT(mit != walkMshrs_.end(), "lost walk MSHR");
            std::vector<PktPtr> waiters = std::move(mit->second);
            walkMshrs_.erase(mit);
            for (auto& w : waiters) {
                w->fam = FamAddr(fam_page * kPageSize +
                                 w->npa.pageOffset());
                w->hasFam = true;
                w->verified = true;
                checkAccess(w);
            }
        });
    });
}

void
Stu::checkAccess(const PktPtr& pkt)
{
    std::uint64_t fam_page = pkt->fam.pageNumber();
    ++acmLookups_;
    if (jobAcmLookups_)
        jobAcmLookups_->add(pkt->job);
    if (acmLookup(fam_page)) {
        ++acmHits_;
        if (jobAcmHits_)
            jobAcmHits_->add(pkt->job);
        verifyAndForward(pkt);
        return;
    }
    // Fetch the 64 B ACM block covering this page from FAM.
    ++acmFetches_;
    sendFamAccess(pkt, layout_.acmBlockForPage(fam_page), MemOp::Read,
                  PacketKind::Acm, [this, pkt, fam_page] {
                      acmInstall(fam_page);
                      verifyAndForward(pkt);
                  });
}

bool
Stu::acmLookup(std::uint64_t fam_page)
{
    switch (params_.org) {
      case StuOrg::DeactW:
        return wCache_->lookup(fam_page / params_.wayGroupPages()) !=
               nullptr;
      case StuOrg::DeactN:
        return nCache_->lookup(fam_page) != nullptr;
      case StuOrg::IFam:
      default:
        FAMSIM_PANIC("acmLookup in I-FAM organization");
    }
}

void
Stu::acmInstall(std::uint64_t fam_page)
{
    switch (params_.org) {
      case StuOrg::DeactW:
        // One way holds the ACM of wayGroupPages() *contiguous* pages.
        wCache_->insert(fam_page / params_.wayGroupPages(), 1);
        break;
      case StuOrg::DeactN:
        // Sub-way pairs hold individual pages.
        nCache_->insert(fam_page, 1);
        break;
      case StuOrg::IFam:
      default:
        FAMSIM_PANIC("acmInstall in I-FAM organization");
    }
}

// ---------------------------------------------------------------------
// FAM page-table walk (performed by the STU in all organizations).
// ---------------------------------------------------------------------

void
Stu::startWalk(const PktPtr& pkt, WalkDone done)
{
    ++walks_;
    std::uint64_t npa_page = pkt->npa.pageNumber();
    auto result = broker_.famTableOf(pkt->node).walk(npa_page);
    int deepest = famPtwCache_.deepestCachedLevel(npa_page);
    std::size_t start = static_cast<std::size_t>(deepest + 1);
    if (start >= result.steps.size()) {
        // PTW cache covered every level that exists; if the leaf level
        // itself was reachable, the walk still reads the PTE.
        start = result.steps.empty() ? 0 : result.steps.size() - 1;
    }
    walkStep(pkt, npa_page, std::move(result.steps), start,
             std::move(done));
}

void
Stu::walkStep(const PktPtr& pkt, std::uint64_t npa_page,
              HierarchicalPageTable::StepList steps,
              std::size_t index, WalkDone done)
{
    if (index >= steps.size()) {
        // Record traversed upper levels in the PTW cache.
        for (const auto& step : steps) {
            if (step.level < HierarchicalPageTable::kLevels - 1)
                famPtwCache_.insert(npa_page, step.level);
        }
        auto leaf = broker_.famTableOf(pkt->node).lookup(npa_page);
        finishWalk(pkt, npa_page, leaf, std::move(done));
        return;
    }
    ++walkSteps_;
    FamAddr addr = FamAddr(steps[index].addr).blockAddr();
    sendFamAccess(pkt, addr, MemOp::Read, PacketKind::FamPtw,
                  [this, pkt, npa_page, steps = std::move(steps), index,
                   done = std::move(done)]() mutable {
                      walkStep(pkt, npa_page, std::move(steps), index + 1,
                               std::move(done));
                  });
}

void
Stu::finishWalk(const PktPtr& pkt, std::uint64_t npa_page,
                std::optional<HierarchicalPageTable::Leaf> leaf,
                WalkDone done)
{
    if (leaf) {
        done(leaf->valuePage);
        return;
    }
    // Unmapped at system level: ask the broker for a page.
    ++brokerFaults_;
    if (TraceSink* trace = sim_.trace();
        trace && trace->wants(TraceSink::kPacket)) {
        trace->instant(TraceSink::kPacket, node_, "stu.broker_fault",
                       sim_.curTick());
    }
    broker_.handleUnmapped(pkt->node, npa_page,
                           [done = std::move(done)](std::uint64_t fam) {
                               done(fam);
                           },
                           pkt->job);
}

// ---------------------------------------------------------------------
// Verification unit.
// ---------------------------------------------------------------------

void
Stu::verifyAndForward(const PktPtr& pkt)
{
    sim_.events().scheduleAfter(params_.verifyLatency, [this, pkt] {
        ++verifications_;
        std::uint64_t fam_page = pkt->fam.pageNumber();
        AcmEntry entry = acm_.get(fam_page);
        if (entry.owner == acm_.sharedMarker()) {
            checkBitmap(pkt, entry);
            return;
        }
        bool allowed =
            entry.owner == pkt->logicalNode &&
            Perms::decode2b(entry.permBits).allows(pkt->isWrite());
        finishVerify(pkt, allowed);
    });
}

void
Stu::checkBitmap(const PktPtr& pkt, const AcmEntry&)
{
    std::uint64_t fam_page = pkt->fam.pageNumber();
    std::uint64_t region = FamLayout::regionOf(fam_page);
    // One 64 B bitmap block covers 512 node bits.
    std::uint64_t key = region * 128 + pkt->logicalNode / 512;

    auto check = [this, pkt, region] {
        bool allowed =
            acm_.regionAllows(region, pkt->logicalNode) &&
            acm_.regionPerms(region, pkt->logicalNode)
                .allows(pkt->isWrite());
        finishVerify(pkt, allowed);
    };

    if (bitmapCache_.lookup(key)) {
        check();
        return;
    }
    ++bitmapFetches_;
    sendFamAccess(pkt, layout_.bitmapAddrFor(region, pkt->logicalNode)
                          .blockAddr(),
                  MemOp::Read, PacketKind::Bitmap,
                  [this, key, check = std::move(check)] {
                      bitmapCache_.insert(key, 1);
                      check();
                  });
}

void
Stu::finishVerify(const PktPtr& pkt, bool allowed)
{
    if (!allowed) {
        deny(pkt);
        return;
    }
    pkt->accessGranted = true;
    forwardToFam(pkt);
}

// ---------------------------------------------------------------------
// Forwarding and responses.
// ---------------------------------------------------------------------

void
Stu::forwardToFam(const PktPtr& pkt)
{
    FAMSIM_ASSERT(pkt->accessGranted,
                  "unverified packet about to reach FAM usable space");
    if (params_.org == StuOrg::IFam && !pkt->isWrite() &&
        params_.maxOutstanding != 0 &&
        outstanding_ >= params_.maxOutstanding) {
        // Outstanding-mapping list full (I-FAM keeps it at the STU).
        stallQueue_.push_back(pkt);
        return;
    }
    ++forwarded_;
    // One sample/span per forwarded packet: the stall path above
    // re-enters, so the stalled wait is folded into the translation
    // stage (it is STU occupancy, not fabric time).
    Tick now = sim_.curTick();
    if (obsTranslation_)
        obsTranslation_->sample((now - pkt->tsStu) / kNanosecond);
    if (TraceSink* trace = sim_.trace();
        trace && trace->wants(TraceSink::kPacket)) {
        trace->span(TraceSink::kPacket, node_, "stu.translate",
                    pkt->tsStu, now);
    }
    pkt->tsFabricReq = now;
    bool tracked = params_.org == StuOrg::IFam && !pkt->isWrite();
    if (tracked)
        ++outstanding_;

    auto orig = std::move(pkt->onDone);
    pkt->onDone = nullptr;
    // The wrapper holds the PktPtr so the packet stays alive through
    // the response's trip back over the fabric. The self-reference is
    // broken when Packet::complete() moves the callback out.
    // Each hop moves the wrapped continuation along (the callback runs
    // exactly once) — copying it would deep-copy the whole capture
    // chain at every fabric traversal.
    pkt->onDone = [this, pkt, orig = std::move(orig),
                   tracked](Packet&) mutable {
        fabric_.sendResponse(node_,
                             [this, pkt, orig = std::move(orig),
                              tracked]() mutable {
            sim_.events().scheduleAfter(
                params_.nodeLinkLatency,
                [this, pkt, orig = std::move(orig), tracked] {
                    if (tracked) {
                        FAMSIM_ASSERT(outstanding_ > 0,
                                      "outstanding underflow");
                        --outstanding_;
                        if (!stallQueue_.empty()) {
                            PktPtr next = stallQueue_.front();
                            stallQueue_.erase(stallQueue_.begin());
                            forwardToFam(next);
                        }
                    }
                    if (orig)
                        orig(*pkt);
                });
        });
    };
    fabric_.sendRequest(media_.moduleOf(pkt->fam.value()),
                        [this, pkt] { media_.access(pkt); });
}

void
Stu::sendFamAccess(const PktPtr& origin, FamAddr addr, MemOp op,
                   PacketKind kind, std::function<void()> done)
{
    PktPtr pkt = makePacket(origin->node, origin->core, op, kind);
    pkt->logicalNode = origin->logicalNode;
    pkt->job = origin->job;
    pkt->fam = addr;
    pkt->hasFam = true;
    pkt->issued = sim_.curTick();
    pkt->tsFabricReq = pkt->issued;
    pkt->onDone = [this, done = std::move(done)](Packet&) mutable {
        fabric_.sendResponse(node_,
                             [done = std::move(done)] { done(); });
    };
    fabric_.sendRequest(media_.moduleOf(pkt->fam.value()),
                        [this, pkt] { media_.access(pkt); });
}

void
Stu::deny(const PktPtr& pkt)
{
    ++denials_;
    if (jobDenials_)
        jobDenials_->add(pkt->job);
    pkt->accessGranted = false;
    respondToNode(pkt);
}

void
Stu::respondToNode(const PktPtr& pkt)
{
    sim_.events().scheduleAfter(params_.nodeLinkLatency,
                                [pkt] { pkt->complete(); });
}

void
Stu::invalidateNode(NodeId node)
{
    if (node != node_)
        return;
    if (ifamCache_)
        ifamCache_->invalidateAll();
    if (wCache_)
        wCache_->invalidateAll();
    if (nCache_)
        nCache_->invalidateAll();
    bitmapCache_.invalidateAll();
    famPtwCache_.invalidateAll();
}

double
Stu::translationHitRate() const
{
    double total = static_cast<double>(tlbLookups_.value());
    return total == 0.0 ? 0.0 : tlbHits_.value() / total;
}

double
Stu::acmHitRate() const
{
    double total = static_cast<double>(acmLookups_.value());
    return total == 0.0 ? 0.0 : acmHits_.value() / total;
}

} // namespace famsim
