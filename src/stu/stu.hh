/**
 * @file
 * System Translation Unit (STU) — the ZMMU-like hardware at the first
 * router/switch connecting a node to the fabric (§II-C, §III).
 *
 * The STU is the *trusted* side of DeACT. It supports three cache
 * organizations (Fig. 8):
 *
 *  - I-FAM: each way caches (NPA-page tag, FAM page, ACM) — combined
 *    translation + access control; misses walk the system-level FAM
 *    page table.
 *  - DeACT-W: translations live in the node's DRAM cache, so each way
 *    re-uses the freed space to cache the ACM of K contiguous FAM pages
 *    (K = floor(68 / acmBits): 4 for 16-bit ACM).
 *  - DeACT-N: each way is split into `pairsPerWay` (tag, ACM) sub-ways
 *    holding *non-contiguous* pages (2 for 16-bit ACM; 1–3 swept in
 *    Fig. 14).
 *
 * In DeACT mode the STU receives two kinds of packets, distinguished by
 * the 'V' flag: verified packets carry a FAM address and only need the
 * access-control check; unverified packets need a FAM page-table walk,
 * after which the mapping is returned to the node's FAM translator.
 */

#ifndef FAMSIM_STU_STU_HH
#define FAMSIM_STU_STU_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cache/set_assoc.hh"
#include "sim/flat_map.hh"
#include "fabric/fabric_link.hh"
#include "fam/acm.hh"
#include "fam/broker.hh"
#include "fam/fam_media.hh"
#include "mem/mem_sink.hh"
#include "sim/simulation.hh"
#include "vm/tlb.hh"

namespace famsim {

/** STU cache organization (Fig. 8). */
enum class StuOrg : std::uint8_t { IFam, DeactW, DeactN };

/** @return printable name of an STU organization. */
[[nodiscard]] constexpr const char*
toString(StuOrg org)
{
    switch (org) {
      case StuOrg::IFam: return "I-FAM";
      case StuOrg::DeactW: return "DeACT-W";
      case StuOrg::DeactN: return "DeACT-N";
    }
    return "?";
}

/** STU configuration (Table II defaults). */
struct StuParams {
    StuOrg org = StuOrg::IFam;
    /** Entry budget of the base (I-FAM) organization. */
    std::size_t entries = 1024;
    std::size_t assoc = 8;
    /** ACM entry width in bits (Fig. 14). */
    unsigned acmBits = 16;
    /** (tag, ACM) pairs per way for DeACT-N (Fig. 14: 1..3). */
    unsigned pairsPerWay = 2;
    /** SRAM lookup latency. */
    Tick lookupLatency = 2 * kNanosecond;
    /** Verification-unit latency (comparators). */
    Tick verifyLatency = 1 * kNanosecond;
    /** Entries in the STU's FAM page-table-walk cache [8]. */
    std::size_t ptwCacheEntries = 32;
    /** Entries in the shared-bitmap cache. */
    std::size_t bitmapCacheEntries = 16;
    /** Latency of the node <-> STU hop (part of the 500 ns fabric). */
    Tick nodeLinkLatency = 50 * kNanosecond;
    /** Outstanding-request limit (I-FAM keeps the mapping list here). */
    unsigned maxOutstanding = 128;
    /**
     * Tenant jobs sharing the system (SystemConfig::tenancy.jobs).
     * > 1 registers the per-job ACM contention tables.
     */
    unsigned jobs = 1;

    /** Contiguous pages whose ACM shares one DeACT-W way. */
    [[nodiscard]] unsigned
    wayGroupPages() const
    {
        // 68 payload bits per way (52-bit FAM addr + 16-bit ACM in the
        // I-FAM layout) divided by the ACM width (§III-D, §V-D2).
        return 68 / acmBits;
    }
};

/**
 * The per-node System Translation Unit.
 */
class Stu : public Component
{
  public:
    /** Mapping-response callback to the node's FAM translator. */
    using MappingFn =
        std::function<void(std::uint64_t npa_page, std::uint64_t fam_page)>;

    Stu(Simulation& sim, const std::string& name, const StuParams& params,
        NodeId node, FamLayout& layout, AcmStore& acm,
        MemoryBroker& broker, FabricLink& fabric, FamMedia& media);

    /**
     * Accept a packet from the node side. The node->STU hop latency is
     * applied internally. In I-FAM mode packets carry only an NPA; in
     * DeACT mode verified packets carry a FAM address.
     */
    void handleFromNode(const PktPtr& pkt);

    /** Register the DeACT mapping-response listener. */
    void setMappingListener(MappingFn fn) { mappingListener_ = std::move(fn); }

    /** Shoot down all cached state for @p node (job migration). */
    void invalidateNode(NodeId node);

    [[nodiscard]] const StuParams& params() const { return params_; }

    /** Physical node this STU serves (also its psim trace lane). */
    [[nodiscard]] NodeId node() const { return node_; }

    /** Translation hit rate at the STU (I-FAM; Fig. 10). */
    [[nodiscard]] double translationHitRate() const;
    /** ACM hit rate (Fig. 9). */
    [[nodiscard]] double acmHitRate() const;

  private:
    /** I-FAM combined entry. */
    struct IFamEntry {
        std::uint64_t famPage = 0;
    };

    // -- entry points after the node link ------------------------------
    void receive(const PktPtr& pkt);
    void handleIFam(const PktPtr& pkt);
    void handleDeactVerified(const PktPtr& pkt);
    void handleDeactUnverified(const PktPtr& pkt);

    // -- FAM page-table walking ----------------------------------------
    using WalkDone = std::function<void(std::uint64_t fam_page)>;
    void startWalk(const PktPtr& pkt, WalkDone done);
    void walkStep(const PktPtr& pkt, std::uint64_t npa_page,
                  HierarchicalPageTable::StepList steps,
                  std::size_t index, WalkDone done);
    void finishWalk(const PktPtr& pkt, std::uint64_t npa_page,
                    std::optional<HierarchicalPageTable::Leaf> leaf,
                    WalkDone done);

    // -- access control --------------------------------------------------
    /** Check the ACM (cached or fetched) and then grant/deny + forward. */
    void checkAccess(const PktPtr& pkt);
    void verifyAndForward(const PktPtr& pkt);
    void checkBitmap(const PktPtr& pkt, const AcmEntry& entry);
    void finishVerify(const PktPtr& pkt, bool allowed);

    // -- ACM cache organization helpers ----------------------------------
    bool acmLookup(std::uint64_t fam_page);
    void acmInstall(std::uint64_t fam_page);

    // -- FAM forwarding ---------------------------------------------------
    void forwardToFam(const PktPtr& pkt);
    void sendFamAccess(const PktPtr& pkt, FamAddr addr, MemOp op,
                       PacketKind kind, std::function<void()> done);
    void deny(const PktPtr& pkt);
    void respondToNode(const PktPtr& pkt);

    StuParams params_;
    NodeId node_;
    FamLayout& layout_;
    AcmStore& acm_;
    MemoryBroker& broker_;
    FabricLink& fabric_;
    FamMedia& media_;
    MappingFn mappingListener_;

    /** I-FAM: combined translation+ACM cache keyed by NPA page. */
    std::unique_ptr<SetAssocCache<IFamEntry>> ifamCache_;
    /** DeACT-W: group-of-K-contiguous-pages ACM cache keyed by group. */
    std::unique_ptr<SetAssocCache<std::uint8_t>> wCache_;
    /** DeACT-N: per-page ACM cache (sub-way pairs) keyed by FAM page. */
    std::unique_ptr<SetAssocCache<std::uint8_t>> nCache_;
    /** Shared-bitmap presence cache. */
    SetAssocCache<std::uint8_t> bitmapCache_;
    /** PTW cache for the FAM page table. */
    PtwCache famPtwCache_;

    /** Outstanding walks merged per NPA page. */
    U64FlatMap<std::vector<PktPtr>> walkMshrs_;

    /** I-FAM outstanding-mapping-list occupancy + stall queue. */
    unsigned outstanding_ = 0;
    std::vector<PktPtr> stallQueue_;

    Counter& tlbLookups_;
    Counter& tlbHits_;
    Counter& acmLookups_;
    Counter& acmHits_;
    Counter& walks_;
    Counter& walkSteps_;
    Counter& acmFetches_;
    Counter& bitmapFetches_;
    Counter& brokerFaults_;
    Counter& verifications_;
    Counter& denials_;
    Counter& forwarded_;
    // Per-job attribution of the shared ACM-cache contention and the
    // access-control outcomes; null when single-tenant.
    JobStatTable* jobAcmLookups_ = nullptr;
    JobStatTable* jobAcmHits_ = nullptr;
    JobStatTable* jobDenials_ = nullptr;
    // Latency-breakdown histograms (SystemConfig::observability); null
    // when the observability layer is off so the hot path pays one
    // pointer test per sample site.
    Histogram* obsQueueWait_ = nullptr;
    Histogram* obsTranslation_ = nullptr;
};

} // namespace famsim

#endif // FAMSIM_STU_STU_HH
