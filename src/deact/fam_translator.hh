/**
 * @file
 * The DeACT FAM translator (§III-C, Fig. 6/7) — hardware in the node's
 * memory controller that maps node addresses to FAM addresses using a
 * FAM translation cache resident in local DRAM.
 *
 * Key properties from the paper:
 *  - the translation cache is a 4-way array of 64 B lines (each line
 *    holds four 104-bit entries: 52-bit NPA-page tag + 52-bit FAM page);
 *  - every lookup costs one DRAM access followed by a one-cycle
 *    parallel tag match over the four fetched entries;
 *  - hits tag the request with the FAM address and set the 'V' flag —
 *    the translation is *unverified*; access control still happens at
 *    the system level (STU);
 *  - misses ride to the STU with V = 0; the STU walks the FAM page
 *    table and returns the mapping, which the translator installs with
 *    a 64 B read-modify-write of DRAM and a *random* way choice;
 *  - responses are converted back from FAM to node addresses via the
 *    outstanding mapping list (128 entries); when it is full, new
 *    response-expecting requests stall.
 */

#ifndef FAMSIM_DEACT_FAM_TRANSLATOR_HH
#define FAMSIM_DEACT_FAM_TRANSLATOR_HH

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "cache/set_assoc.hh"
#include "sim/flat_map.hh"
#include "mem/banked_memory.hh"
#include "mem/mem_sink.hh"
#include "sim/simulation.hh"
#include "stu/stu.hh"

namespace famsim {

/** FAM translator configuration. */
struct FamTranslatorParams {
    /** Size of the in-DRAM FAM translation cache (§IV: 1 MB). */
    std::uint64_t cacheBytes = std::uint64_t{1} << 20;
    /** Entries per 64 B line (4-way associative per the paper). */
    unsigned waysPerLine = 4;
    /** Tag-match latency (parallel comparators, one core cycle). */
    Tick tagMatchLatency = 500; // 0.5 ns at 2 GHz
    /** Outstanding mapping list capacity. */
    unsigned maxOutstanding = 128;
    /** Base address of the reserved DRAM region holding the cache. */
    std::uint64_t dramCacheBase = 0;
};

/**
 * Node-side unverified translation stage of DeACT.
 *
 * Sits between the memory controller's FAM-zone output and the STU.
 */
class FamTranslator : public Component, public MemSink
{
  public:
    FamTranslator(Simulation& sim, const std::string& name,
                  const FamTranslatorParams& params, BankedMemory& dram,
                  Stu& stu);

    /** Accept a FAM-zone request from the memory controller. */
    void access(const PktPtr& pkt) override;

    /**
     * Mapping response from the STU's FAM page-table walker (step 5 in
     * Fig. 6): installs the entry and replays coalesced requests.
     */
    void onMapping(std::uint64_t npa_page, std::uint64_t fam_page);

    /** Drop all cached translations (job migration shootdown, §VI). */
    void invalidateAll();

    /** Translation cache hit rate (Fig. 10, DeACT series). */
    [[nodiscard]] double hitRate() const;

    [[nodiscard]] const FamTranslatorParams& params() const
    {
        return params_;
    }

    /** Number of cache sets (lines) — for tests. */
    [[nodiscard]] std::size_t cacheSets() const { return cache_.sets(); }

  private:
    void startLookup(const PktPtr& pkt);
    void finishLookup(const PktPtr& pkt);
    void forward(const PktPtr& pkt);
    void readDram(std::uint64_t npa_page, MemOp op,
                  std::function<void()> done);

    FamTranslatorParams params_;
    BankedMemory& dram_;
    Stu& stu_;

    /** Functional cache contents: NPA page -> FAM page. */
    SetAssocCache<std::uint64_t> cache_;

    /** Misses coalesced per NPA page, waiting for the STU's mapping. */
    U64FlatMap<std::vector<PktPtr>> pending_;

    /** Outstanding mapping list occupancy + stall queue. */
    unsigned outstanding_ = 0;
    std::deque<PktPtr> stallQueue_;

    Counter& lookups_;
    Counter& hits_;
    Counter& misses_;
    Counter& dramReads_;
    Counter& dramWrites_;
    Counter& coalesced_;
    Counter& stalls_;
    Counter& invalidations_;
    /** Lookup-latency histogram (observability); null when off. */
    Histogram* obsLookup_ = nullptr;
};

} // namespace famsim

#endif // FAMSIM_DEACT_FAM_TRANSLATOR_HH
