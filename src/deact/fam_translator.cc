#include "deact/fam_translator.hh"

#include "sim/logging.hh"
#include "sim/trace_sink.hh"

namespace famsim {

FamTranslator::FamTranslator(Simulation& sim, const std::string& name,
                             const FamTranslatorParams& params,
                             BankedMemory& dram, Stu& stu)
    : Component(sim, name),
      params_(params),
      dram_(dram),
      stu_(stu),
      cache_(params.cacheBytes / kBlockSize, params.waysPerLine,
             ReplPolicy::Random, sim.seed()),
      lookups_(statCounter("lookups", "FAM translation cache lookups")),
      hits_(statCounter("hits", "FAM translation cache hits")),
      misses_(statCounter("misses", "FAM translation cache misses")),
      dramReads_(statCounter("dram_reads",
                             "DRAM reads for translation lookups")),
      dramWrites_(statCounter("dram_writes",
                              "DRAM writes for translation updates")),
      coalesced_(statCounter("coalesced",
                             "misses merged into a pending walk")),
      stalls_(statCounter("stalls",
                          "requests stalled on a full mapping list")),
      invalidations_(statCounter("invalidations",
                                 "cache shootdowns (migration)"))
{
    obsLookup_ = obsHistogram(
        "obs_lookup_ns",
        "ns per translation-cache lookup: DRAM line fetch + tag match "
        "(observability)", 16, 32);
    // The STU sends mapping responses here (step 5, Fig. 6).
    stu_.setMappingListener(
        [this](std::uint64_t npa_page, std::uint64_t fam_page) {
            onMapping(npa_page, fam_page);
        });
}

void
FamTranslator::access(const PktPtr& pkt)
{
    FAMSIM_ASSERT(pkt, "null packet at FAM translator");
    if (!pkt->isWrite() && params_.maxOutstanding != 0 &&
        outstanding_ >= params_.maxOutstanding) {
        ++stalls_;
        stallQueue_.push_back(pkt);
        return;
    }
    startLookup(pkt);
}

void
FamTranslator::startLookup(const PktPtr& pkt)
{
    if (!pkt->isWrite())
        ++outstanding_;
    // Wrap the completion so responses free an outstanding-list slot
    // and wake stalled requests.
    if (!pkt->isWrite()) {
        auto orig = std::move(pkt->onDone);
        pkt->onDone = [this, orig = std::move(orig)](Packet& p) {
            FAMSIM_ASSERT(outstanding_ > 0,
                          "outstanding mapping list underflow");
            --outstanding_;
            if (!stallQueue_.empty() &&
                outstanding_ < params_.maxOutstanding) {
                PktPtr next = std::move(stallQueue_.front());
                stallQueue_.pop_front();
                startLookup(next);
            }
            if (orig)
                orig(p);
        };
    }

    // Fetch the 64 B translation-cache line from local DRAM (step 2).
    ++lookups_;
    ++dramReads_;
    Tick start = sim_.curTick();
    readDram(pkt->npa.pageNumber(), MemOp::Read, [this, pkt, start] {
        sim_.events().scheduleAfter(
            params_.tagMatchLatency, [this, pkt, start] {
                Tick now = sim_.curTick();
                if (obsLookup_)
                    obsLookup_->sample((now - start) / kNanosecond);
                if (TraceSink* trace = sim_.trace();
                    trace && trace->wants(TraceSink::kPacket)) {
                    trace->span(TraceSink::kPacket, stu_.node(),
                                "translator.lookup", start, now);
                }
                finishLookup(pkt);
            });
    });
}

void
FamTranslator::finishLookup(const PktPtr& pkt)
{
    std::uint64_t npa_page = pkt->npa.pageNumber();
    if (std::uint64_t* fam_page = cache_.lookup(npa_page)) {
        ++hits_;
        pkt->fam = FamAddr(*fam_page * kPageSize + pkt->npa.pageOffset());
        pkt->hasFam = true;
        pkt->verified = true; // 'V' flag set: STU skips the walk
        forward(pkt);
        return;
    }

    ++misses_;
    auto [it, first] = pending_.try_emplace(npa_page);
    if (!first) {
        // A walk for this page is already in flight at the STU.
        ++coalesced_;
        it->second.push_back(pkt);
        return;
    }
    // First miss rides to the STU with V = 0; the STU walks the FAM
    // page table, forwards this very request after verification, and
    // returns the mapping via onMapping().
    pkt->verified = false;
    pkt->hasFam = false;
    forward(pkt);
}

void
FamTranslator::forward(const PktPtr& pkt)
{
    stu_.handleFromNode(pkt);
}

void
FamTranslator::onMapping(std::uint64_t npa_page, std::uint64_t fam_page)
{
    // Update the in-DRAM cache: read-modify-write of the 64 B line with
    // a random way choice (§III-C "Updating FAM Translation Cache").
    ++dramReads_;
    ++dramWrites_;
    readDram(npa_page, MemOp::Read, [this, npa_page, fam_page] {
        readDram(npa_page, MemOp::Write, [this, npa_page, fam_page] {
            cache_.insert(npa_page, fam_page);
            auto it = pending_.find(npa_page);
            if (it == pending_.end())
                return;
            std::vector<PktPtr> waiters = std::move(it->second);
            pending_.erase(it);
            for (auto& w : waiters) {
                w->fam = FamAddr(fam_page * kPageSize +
                                 w->npa.pageOffset());
                w->hasFam = true;
                w->verified = true;
                forward(w);
            }
        });
    });
}

void
FamTranslator::readDram(std::uint64_t npa_page, MemOp op,
                        std::function<void()> done)
{
    std::uint64_t set = npa_page % cache_.sets();
    std::uint64_t addr = params_.dramCacheBase + set * kBlockSize;
    PktPtr pkt = makePacket(0, 0, op, PacketKind::FamPtw);
    pkt->npa = NPAddr(addr);
    pkt->issued = sim_.curTick();
    pkt->onDone = [done = std::move(done)](Packet&) { done(); };
    dram_.access(pkt, addr);
}

void
FamTranslator::invalidateAll()
{
    ++invalidations_;
    // Shooting down the in-memory cache costs one DRAM write per line
    // (§VI "Page Migration"); count the traffic without serializing it.
    dramWrites_ += cache_.sets();
    cache_.invalidateAll();
}

double
FamTranslator::hitRate() const
{
    double total = static_cast<double>(lookups_.value());
    return total == 0.0 ? 0.0 : hits_.value() / total;
}

} // namespace famsim
