/**
 * @file
 * Tests for the System Translation Unit: the three cache organizations
 * of Fig. 8, FAM page-table walking, access verification (owned and
 * shared pages), denial, and the outstanding-request limit.
 */

#include <gtest/gtest.h>

#include "fabric/fabric_link.hh"
#include "fam/broker.hh"
#include "stu/stu.hh"
#include "test_util.hh"

namespace famsim {
namespace {

class StuTest : public ::testing::Test
{
  protected:
    static constexpr NodeId kNode = 0;

    void
    build(StuOrg org, unsigned acm_bits = 16, unsigned pairs = 2)
    {
        layout_ = std::make_unique<FamLayout>(16ull << 30, acm_bits,
                                              2ull << 30);
        acm_ = std::make_unique<AcmStore>(acm_bits);
        media_ = std::make_unique<FamMedia>(sim_, "fam", FamMediaParams{});
        FabricParams fp;
        fp.latency = 100 * kNanosecond;
        fp.serialization = 0;
        fabric_ = std::make_unique<FabricLink>(sim_, "fabric", fp);
        BrokerParams bp;
        bp.serviceLatency = 500 * kNanosecond;
        broker_ = std::make_unique<MemoryBroker>(sim_, "broker", bp,
                                                 *layout_, *acm_,
                                                 media_.get());
        broker_->registerNode(kNode);
        broker_->registerNode(1);

        StuParams sp;
        sp.org = org;
        sp.acmBits = acm_bits;
        sp.pairsPerWay = pairs;
        sp.nodeLinkLatency = 10 * kNanosecond;
        stu_ = std::make_unique<Stu>(sim_, "stu", sp, kNode, *layout_,
                                     *acm_, *broker_, *fabric_, *media_);
    }

    /** Allocate a FAM page owned by `logical` and map npa_page to it. */
    std::uint64_t
    mapPage(std::uint64_t npa_page, NodeId logical,
            Perms perms = Perms{})
    {
        std::uint64_t fam_page = broker_->allocPage(logical, perms);
        broker_->famTableOf(kNode).map(npa_page, fam_page, Perms{});
        return fam_page;
    }

    PktPtr
    nodeRequest(std::uint64_t npa, MemOp op = MemOp::Read)
    {
        auto pkt = makePacket(kNode, 0, op, PacketKind::Data);
        pkt->logicalNode = broker_->logicalIdOf(kNode);
        pkt->npa = NPAddr(npa);
        pkt->onDone = [this](Packet& p) {
            completed_++;
            lastGranted_ = p.accessGranted;
        };
        return pkt;
    }

    Simulation sim_;
    std::unique_ptr<FamLayout> layout_;
    std::unique_ptr<AcmStore> acm_;
    std::unique_ptr<FamMedia> media_;
    std::unique_ptr<FabricLink> fabric_;
    std::unique_ptr<MemoryBroker> broker_;
    std::unique_ptr<Stu> stu_;

    int completed_ = 0;
    bool lastGranted_ = false;
};

// ------------------------------------------------------------ I-FAM mode

TEST_F(StuTest, IFamMissWalksThenHits)
{
    build(StuOrg::IFam);
    std::uint64_t fam_page = mapPage(0x100000, 0);
    (void)fam_page;

    stu_->handleFromNode(nodeRequest(0x100000ull * kPageSize));
    test::drain(sim_);
    EXPECT_EQ(completed_, 1);
    EXPECT_TRUE(lastGranted_);
    EXPECT_DOUBLE_EQ(sim_.stats().get("stu.walks"), 1.0);
    EXPECT_GT(sim_.stats().get("stu.walk_steps"), 0.0);

    // Second access to the same page: STU cache hit, no new walk.
    stu_->handleFromNode(nodeRequest(0x100000ull * kPageSize + 64));
    test::drain(sim_);
    EXPECT_EQ(completed_, 2);
    EXPECT_DOUBLE_EQ(sim_.stats().get("stu.walks"), 1.0);
    EXPECT_DOUBLE_EQ(sim_.stats().get("stu.translation_hits"), 1.0);
}

TEST_F(StuTest, IFamUnmappedGoesToBroker)
{
    build(StuOrg::IFam);
    stu_->handleFromNode(nodeRequest(0x200000ull * kPageSize));
    test::drain(sim_);
    EXPECT_EQ(completed_, 1);
    EXPECT_TRUE(lastGranted_);
    EXPECT_DOUBLE_EQ(sim_.stats().get("stu.broker_faults"), 1.0);
    EXPECT_DOUBLE_EQ(sim_.stats().get("broker.faults"), 1.0);
    // The broker installed the mapping; it is now walkable.
    EXPECT_TRUE(
        broker_->famTableOf(kNode).lookup(0x200000).has_value());
}

TEST_F(StuTest, IFamDeniesOtherNodesPages)
{
    build(StuOrg::IFam);
    // Page owned by node 1's logical id, but mapped in node 0's table
    // (simulating a malicious/buggy mapping).
    std::uint64_t fam_page = broker_->allocPage(broker_->logicalIdOf(1),
                                                Perms{});
    broker_->famTableOf(kNode).map(0x300000, fam_page, Perms{});

    stu_->handleFromNode(nodeRequest(0x300000ull * kPageSize));
    test::drain(sim_);
    EXPECT_EQ(completed_, 1);
    EXPECT_FALSE(lastGranted_);
    EXPECT_DOUBLE_EQ(sim_.stats().get("stu.denials"), 1.0);
    // The denied request never reached FAM usable space.
    EXPECT_DOUBLE_EQ(sim_.stats().get("fam.data_requests"), 0.0);
}

TEST_F(StuTest, IFamDeniesWriteToReadOnlyPage)
{
    build(StuOrg::IFam);
    mapPage(0x100, broker_->logicalIdOf(kNode),
            Perms{true, false, false});
    stu_->handleFromNode(
        nodeRequest(0x100ull * kPageSize, MemOp::Write));
    test::drain(sim_);
    EXPECT_FALSE(lastGranted_);

    completed_ = 0;
    stu_->handleFromNode(nodeRequest(0x100ull * kPageSize, MemOp::Read));
    test::drain(sim_);
    EXPECT_EQ(completed_, 1);
    EXPECT_TRUE(lastGranted_);
}

TEST_F(StuTest, IFamMergesConcurrentWalksToSamePage)
{
    build(StuOrg::IFam);
    mapPage(0x500, 0);
    stu_->handleFromNode(nodeRequest(0x500ull * kPageSize));
    stu_->handleFromNode(nodeRequest(0x500ull * kPageSize + 128));
    test::drain(sim_);
    EXPECT_EQ(completed_, 2);
    EXPECT_DOUBLE_EQ(sim_.stats().get("stu.walks"), 1.0);
}

// ------------------------------------------------------------ DeACT mode

TEST_F(StuTest, DeactVerifiedChecksAcmOnly)
{
    build(StuOrg::DeactN);
    std::uint64_t fam_page = mapPage(0x600, broker_->logicalIdOf(kNode));

    auto pkt = nodeRequest(0x600ull * kPageSize);
    pkt->fam = FamAddr(fam_page * kPageSize);
    pkt->hasFam = true;
    pkt->verified = true; // as set by the FAM translator
    stu_->handleFromNode(pkt);
    test::drain(sim_);

    EXPECT_EQ(completed_, 1);
    EXPECT_TRUE(lastGranted_);
    EXPECT_DOUBLE_EQ(sim_.stats().get("stu.walks"), 0.0);
    EXPECT_DOUBLE_EQ(sim_.stats().get("stu.acm_fetches"), 1.0); // cold
    EXPECT_DOUBLE_EQ(sim_.stats().get("fam.acm_requests"), 1.0);
}

TEST_F(StuTest, DeactAcmCacheHitSkipsFetch)
{
    build(StuOrg::DeactN);
    std::uint64_t fam_page = mapPage(0x700, broker_->logicalIdOf(kNode));
    for (int i = 0; i < 2; ++i) {
        auto pkt = nodeRequest(0x700ull * kPageSize + 64u * i);
        pkt->fam = FamAddr(fam_page * kPageSize + 64u * i);
        pkt->hasFam = true;
        pkt->verified = true;
        stu_->handleFromNode(pkt);
        test::drain(sim_);
    }
    EXPECT_EQ(completed_, 2);
    EXPECT_DOUBLE_EQ(sim_.stats().get("stu.acm_fetches"), 1.0);
    EXPECT_DOUBLE_EQ(sim_.stats().get("stu.acm_hits"), 1.0);
}

TEST_F(StuTest, DeactUnverifiedWalksAndNotifiesTranslator)
{
    build(StuOrg::DeactN);
    std::uint64_t fam_page = mapPage(0x800, broker_->logicalIdOf(kNode));

    std::uint64_t mapped_npa = 0, mapped_fam = 0;
    stu_->setMappingListener([&](std::uint64_t npa, std::uint64_t fam) {
        mapped_npa = npa;
        mapped_fam = fam;
    });

    auto pkt = nodeRequest(0x800ull * kPageSize);
    pkt->verified = false;
    stu_->handleFromNode(pkt);
    test::drain(sim_);

    EXPECT_EQ(completed_, 1);
    EXPECT_TRUE(lastGranted_);
    EXPECT_EQ(mapped_npa, 0x800u);
    EXPECT_EQ(mapped_fam, fam_page);
    EXPECT_DOUBLE_EQ(sim_.stats().get("stu.walks"), 1.0);
}

TEST_F(StuTest, DeactVerifiedCannotBypassAccessControl)
{
    build(StuOrg::DeactN);
    // A forged V=1 packet pointing at another node's page: the
    // decoupling must NOT weaken security (Table I).
    std::uint64_t foreign =
        broker_->allocPage(broker_->logicalIdOf(1), Perms{});
    auto pkt = nodeRequest(0x900ull * kPageSize);
    pkt->fam = FamAddr(foreign * kPageSize);
    pkt->hasFam = true;
    pkt->verified = true;
    stu_->handleFromNode(pkt);
    test::drain(sim_);
    EXPECT_EQ(completed_, 1);
    EXPECT_FALSE(lastGranted_);
    EXPECT_DOUBLE_EQ(sim_.stats().get("fam.data_requests"), 0.0);
}

// ------------------------------------------------- ACM organizations

TEST_F(StuTest, DeactWCoversContiguousGroups)
{
    build(StuOrg::DeactW);
    // wayGroupPages = 68/16 = 4 contiguous FAM pages per way.
    EXPECT_EQ(stu_->params().wayGroupPages(), 4u);

    // Two pages in the same aligned group of 4: one fetch serves both.
    std::uint64_t group_base = 400; // aligned: 400 % 4 == 0
    for (std::uint64_t offset : {0ull, 1ull}) {
        acm_->set(group_base + offset,
                  AcmEntry{broker_->logicalIdOf(kNode), 3});
        auto pkt = nodeRequest((0xA00 + offset) * kPageSize);
        pkt->fam = FamAddr((group_base + offset) * kPageSize);
        pkt->hasFam = true;
        pkt->verified = true;
        stu_->handleFromNode(pkt);
        test::drain(sim_);
    }
    EXPECT_EQ(completed_, 2);
    EXPECT_DOUBLE_EQ(sim_.stats().get("stu.acm_fetches"), 1.0);
    EXPECT_DOUBLE_EQ(sim_.stats().get("stu.acm_hits"), 1.0);
}

TEST_F(StuTest, DeactNDoesNotCoverNeighbours)
{
    build(StuOrg::DeactN);
    for (std::uint64_t offset : {0ull, 1ull}) {
        acm_->set(400 + offset, AcmEntry{broker_->logicalIdOf(kNode), 3});
        auto pkt = nodeRequest((0xB00 + offset) * kPageSize);
        pkt->fam = FamAddr((400 + offset) * kPageSize);
        pkt->hasFam = true;
        pkt->verified = true;
        stu_->handleFromNode(pkt);
        test::drain(sim_);
    }
    // Per-page pairs: each page needs its own fetch...
    EXPECT_DOUBLE_EQ(sim_.stats().get("stu.acm_fetches"), 2.0);
    // ...but DeACT-N holds twice as many entries overall.
}

class StuPairsTest : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(StuPairsTest, PairsPerWayScalesCapacity)
{
    // Functional capacity check via eviction behaviour: insert
    // (entries * pairs) distinct pages and verify the earliest is
    // still resident only when capacity suffices.
    Simulation sim;
    FamLayout layout(16ull << 30, 16, 0);
    AcmStore acm(16);
    FamMedia media(sim, "fam", {});
    FabricLink fabric(sim, "fabric", {});
    MemoryBroker broker(sim, "broker", {}, layout, acm, nullptr);
    broker.registerNode(0);

    StuParams sp;
    sp.org = StuOrg::DeactN;
    sp.pairsPerWay = GetParam();
    Stu stu(sim, "stu", sp, 0, layout, acm, broker, fabric, media);
    // 128 sets * 8 ways * pairs entries; same-set keys (stride 128)
    // evict after 8 * pairs insertions.
    (void)stu;
    SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(Pairs, StuPairsTest,
                         ::testing::Values(1u, 2u, 3u));

TEST(StuParams, WayGroupPagesPerWidth)
{
    StuParams sp;
    sp.acmBits = 8;
    EXPECT_EQ(sp.wayGroupPages(), 8u); // paper: 8 pages for 8-bit ACM
    sp.acmBits = 16;
    EXPECT_EQ(sp.wayGroupPages(), 4u); // 4 pages for 16-bit
    sp.acmBits = 32;
    EXPECT_EQ(sp.wayGroupPages(), 2u); // 2 pages for 32-bit
}

TEST(StuParamsDeath, BadPairsPanics)
{
    ScopedThrowOnError guard;
    Simulation sim;
    FamLayout layout(16ull << 30, 16, 0);
    AcmStore acm(16);
    FamMedia media(sim, "fam", {});
    FabricLink fabric(sim, "fabric", {});
    MemoryBroker broker(sim, "broker", {}, layout, acm, nullptr);
    broker.registerNode(0);
    StuParams sp;
    sp.org = StuOrg::DeactN;
    sp.pairsPerWay = 4;
    EXPECT_THROW(Stu(sim, "stu", sp, 0, layout, acm, broker, fabric,
                     media),
                 SimError);
}

// ----------------------------------------------------- shared pages

TEST_F(StuTest, SharedPageAllowsGrantedNodesOnly)
{
    build(StuOrg::IFam);
    std::uint64_t region = broker_->createSharedRegion(
        {{kNode, Perms{true, true, false}}});
    std::uint64_t fam_page = broker_->mapSharedPage(region, kNode, 0xC00);
    (void)fam_page;

    stu_->handleFromNode(nodeRequest(0xC00ull * kPageSize));
    test::drain(sim_);
    EXPECT_TRUE(lastGranted_);
    EXPECT_GT(sim_.stats().get("stu.bitmap_fetches"), 0.0);

    // A node without a grant is denied even through a valid mapping.
    auto foreign = nodeRequest(0xC00ull * kPageSize);
    foreign->logicalNode = broker_->logicalIdOf(1);
    stu_->handleFromNode(foreign);
    test::drain(sim_);
    EXPECT_FALSE(lastGranted_);
}

TEST_F(StuTest, SharedPageEnforcesMixedPermissions)
{
    build(StuOrg::IFam);
    // Node 0 read-write, node 1 read-only (the paper's mixed-perms
    // shared-page use case, §III-A).
    std::uint64_t region = broker_->createSharedRegion(
        {{kNode, Perms{true, true, false}},
         {1, Perms{true, false, false}}});
    broker_->mapSharedPage(region, kNode, 0xD00);

    stu_->handleFromNode(
        nodeRequest(0xD00ull * kPageSize, MemOp::Write));
    test::drain(sim_);
    EXPECT_TRUE(lastGranted_);

    auto foreign_write = nodeRequest(0xD00ull * kPageSize, MemOp::Write);
    foreign_write->logicalNode = broker_->logicalIdOf(1);
    stu_->handleFromNode(foreign_write);
    test::drain(sim_);
    EXPECT_FALSE(lastGranted_);

    auto foreign_read = nodeRequest(0xD00ull * kPageSize, MemOp::Read);
    foreign_read->logicalNode = broker_->logicalIdOf(1);
    stu_->handleFromNode(foreign_read);
    test::drain(sim_);
    EXPECT_TRUE(lastGranted_);
}

// ------------------------------------------------------ invalidation

TEST_F(StuTest, InvalidateNodeFlushesCaches)
{
    build(StuOrg::IFam);
    mapPage(0xE00, 0);
    stu_->handleFromNode(nodeRequest(0xE00ull * kPageSize));
    test::drain(sim_);
    EXPECT_DOUBLE_EQ(sim_.stats().get("stu.walks"), 1.0);

    stu_->invalidateNode(kNode);
    stu_->handleFromNode(nodeRequest(0xE00ull * kPageSize));
    test::drain(sim_);
    EXPECT_DOUBLE_EQ(sim_.stats().get("stu.walks"), 2.0); // re-walked
}

} // namespace
} // namespace famsim
