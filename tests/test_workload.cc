/**
 * @file
 * Tests for the synthetic workload generators: distribution
 * properties, determinism, the benchmark profile registry.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "sim/logging.hh"
#include "workload/multi_tenant.hh"
#include "workload/stream_gen.hh"

namespace famsim {
namespace {

TEST(Profiles, AllFourteenBenchmarksPresent)
{
    auto all = profiles::all();
    ASSERT_EQ(all.size(), 14u);
    std::set<std::string> names;
    for (const auto& p : all)
        names.insert(p.name);
    for (const char* expected :
         {"mcf", "cactus", "astar", "frqm", "canl", "bc", "cc", "ccsv",
          "sssp", "pf", "dc", "lu", "mg", "sp"}) {
        EXPECT_TRUE(names.count(expected)) << expected;
    }
}

TEST(Profiles, ByNameMatchesAndFatalsOnUnknown)
{
    EXPECT_EQ(profiles::byName("mcf").suite, "SPEC");
    EXPECT_EQ(profiles::byName("sssp").suite, "GAP");
    ScopedThrowOnError guard;
    EXPECT_THROW(profiles::byName("doom"), SimError);
}

TEST(Profiles, PaperMpkiMatchesTableIII)
{
    // Spot-check against Table III.
    EXPECT_DOUBLE_EQ(profiles::byName("mcf").paperMpki, 73);
    EXPECT_DOUBLE_EQ(profiles::byName("bc").paperMpki, 113);
    EXPECT_DOUBLE_EQ(profiles::byName("sssp").paperMpki, 144);
    EXPECT_DOUBLE_EQ(profiles::byName("sp").paperMpki, 141);
}

TEST(Profiles, SensitivityClassesMatchPaper)
{
    // Fig. 12: bc, lu, mg and sp are the benchmarks DeACT does not
    // improve (AT-insensitive).
    for (const auto& p : profiles::all()) {
        bool insensitive = p.name == "bc" || p.name == "lu" ||
                           p.name == "mg" || p.name == "sp";
        EXPECT_EQ(p.atSensitive, !insensitive) << p.name;
    }
}

TEST(StreamGen, DeterministicForSameSeedAndStream)
{
    StreamProfile p = profiles::byName("mcf");
    StreamGen a(p, 0x1000000, 7, 3), b(p, 0x1000000, 7, 3);
    for (int i = 0; i < 1000; ++i) {
        MemOpDesc oa = a.next(), ob = b.next();
        EXPECT_EQ(oa.vaddr, ob.vaddr);
        EXPECT_EQ(oa.write, ob.write);
        EXPECT_EQ(oa.gap, ob.gap);
        EXPECT_EQ(oa.blocking, ob.blocking);
    }
}

TEST(StreamGen, StreamsDifferButShareHotPages)
{
    StreamProfile p = profiles::byName("mcf");
    StreamGen a(p, 0x1000000, 7, 0), b(p, 0x1000000, 7, 1);
    bool any_diff = false;
    for (int i = 0; i < 100; ++i)
        any_diff |= a.next().vaddr != b.next().vaddr;
    EXPECT_TRUE(any_diff);
    // Same footprint (hot sets are stream-independent by construction).
    EXPECT_EQ(a.footprintPages(), b.footprintPages());
}

TEST(StreamGen, AddressesStayInFootprint)
{
    StreamProfile p = profiles::byName("canl");
    StreamGen gen(p, 0x40000000, 3, 0);
    auto pages = gen.footprintPages();
    std::set<std::uint64_t> page_set(pages.begin(), pages.end());
    EXPECT_EQ(page_set.size(), p.footprintBytes / kPageSize);
    for (int i = 0; i < 20000; ++i) {
        MemOpDesc op = gen.next();
        EXPECT_TRUE(page_set.count(op.vaddr / kPageSize))
            << std::hex << op.vaddr;
    }
}

TEST(StreamGen, WriteFractionApproximatelyRespected)
{
    StreamProfile p = profiles::uniformTest(1 << 20);
    p.writeFraction = 0.3;
    StreamGen gen(p, 0, 11, 0);
    int writes = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        writes += gen.next().write ? 1 : 0;
    EXPECT_NEAR(writes / static_cast<double>(n), 0.3, 0.02);
}

TEST(StreamGen, GapMatchesMemOpFraction)
{
    StreamProfile p = profiles::uniformTest(1 << 20);
    p.memOpFraction = 0.25; // mean gap = (1-p)/p = 3
    StreamGen gen(p, 0, 13, 0);
    double total_gap = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        total_gap += gen.next().gap;
    EXPECT_NEAR(total_gap / n, 3.0, 0.15);
}

TEST(StreamGen, HotTierConcentratesAccesses)
{
    StreamProfile p = profiles::uniformTest(64 << 20);
    p.hot1Pages = 64;
    p.hot1Prob = 0.9;
    StreamGen gen(p, 0, 17, 0);
    std::map<std::uint64_t, int> counts;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        ++counts[gen.next().vaddr / kPageSize];
    // The top-64 pages must hold roughly 90 % of the accesses.
    std::vector<int> freq;
    for (auto& [page, c] : counts)
        freq.push_back(c);
    std::sort(freq.rbegin(), freq.rend());
    int top = 0;
    for (std::size_t i = 0; i < 64 && i < freq.size(); ++i)
        top += freq[i];
    EXPECT_GT(top / static_cast<double>(n), 0.8);
}

TEST(StreamGen, SequentialProfileProducesRuns)
{
    StreamProfile p = profiles::uniformTest(8 << 20);
    p.seqRunLen = 16.0;
    p.reuseProb = 0.0;
    StreamGen gen(p, 0, 19, 0);
    int sequential = 0;
    const int n = 20000;
    std::uint64_t prev = 0;
    for (int i = 0; i < n; ++i) {
        std::uint64_t block = gen.next().vaddr / kBlockSize;
        if (block == prev + 1)
            ++sequential;
        prev = block;
    }
    EXPECT_GT(sequential / static_cast<double>(n), 0.7);
}

TEST(StreamGen, VaScatterSpreadsPages)
{
    StreamProfile p = profiles::uniformTest(4 << 20); // 1024 pages
    p.vaScatterFactor = 64;
    StreamGen gen(p, 0, 23, 0);
    auto pages = gen.footprintPages();
    std::uint64_t min_page = ~0ull, max_page = 0;
    std::set<std::uint64_t> unique(pages.begin(), pages.end());
    EXPECT_EQ(unique.size(), pages.size());
    for (std::uint64_t page : pages) {
        min_page = std::min(min_page, page);
        max_page = std::max(max_page, page);
    }
    EXPECT_GT(max_page - min_page, 1024u * 8);
}

TEST(StreamGen, ReuseProbControlsDistinctBlockRate)
{
    StreamProfile p = profiles::uniformTest(32 << 20);
    p.reuseProb = 0.9;
    StreamGen gen(p, 0, 29, 0);
    std::set<std::uint64_t> blocks;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        blocks.insert(gen.next().vaddr / kBlockSize);
    // ~10 % of accesses should touch new blocks.
    EXPECT_NEAR(blocks.size() / static_cast<double>(n), 0.1, 0.03);
}

TEST(StreamGen, BlockingOnlyOnReads)
{
    StreamProfile p = profiles::uniformTest(1 << 20);
    p.blockingFraction = 1.0;
    StreamGen gen(p, 0, 31, 0);
    for (int i = 0; i < 5000; ++i) {
        MemOpDesc op = gen.next();
        if (op.write) {
            EXPECT_FALSE(op.blocking);
        }
    }
}

TEST(StreamGen, HotTierProbabilitiesMustSumBelowOne)
{
    ScopedThrowOnError guard;
    StreamProfile p = profiles::byName("mcf");
    p.hot1Prob = 0.7;
    p.hot2Prob = 0.5;
    EXPECT_THROW(StreamGen(p, 0, 1, 0), SimError);
}

namespace {

/** FNV-1a over the op stream's observable fields. */
std::uint64_t
streamHash(const StreamProfile& profile, int ops)
{
    StreamGen gen(profile, 0x100000000000ULL, 12345, 3);
    std::uint64_t h = 1469598103934665603ULL;
    auto mix = [&h](std::uint64_t v) {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (i * 8)) & 0xff;
            h *= 1099511628211ULL;
        }
    };
    for (int i = 0; i < ops; ++i) {
        MemOpDesc op = gen.next();
        mix(op.vaddr);
        mix((static_cast<std::uint64_t>(op.gap) << 2) |
            (static_cast<std::uint64_t>(op.write) << 1) |
            static_cast<std::uint64_t>(op.blocking));
    }
    return h;
}

} // namespace

TEST(StreamGen, GoldenStreamHashesPinTheExactOpSequence)
{
    // These hashes were captured from the pre-optimization
    // floating-point StreamGen::next(); the precomputed-threshold /
    // fastmod rewrite must emit a byte-identical op stream (vaddr,
    // gap, write, blocking — and therefore an identical RNG draw
    // sequence). If a change legitimately alters the generator,
    // regenerate these with the streamHash() helper above.
    EXPECT_EQ(streamHash(profiles::byName("mcf"), 100000),
              0x95fbc9219e2b2fdcULL);
    EXPECT_EQ(streamHash(profiles::byName("astar"), 100000),
              0x01876571637c55dbULL);
    EXPECT_EQ(streamHash(profiles::byName("bc"), 100000),
              0x38251087b686477eULL);
    EXPECT_EQ(streamHash(profiles::byName("sssp"), 100000),
              0x4a0b9cd92d1e5028ULL);
    EXPECT_EQ(streamHash(profiles::uniformTest(8ull << 20), 100000),
              0x941095ac6e37f5b6ULL);
}

// ------------------------------------------------------- multi-tenant

TEST(MultiTenant, SingleJobDegeneratesToPlainStream)
{
    // jobs=1 must reproduce the single-tenant StreamGen op for op
    // (same VA base, same stream id), so multi-tenant plumbing can be
    // always-on without moving any single-tenant golden.
    StreamProfile p = profiles::byName("mcf");
    TenancyParams tenancy; // jobs = 1
    MultiTenantWorkload mt(tenancy, p, 7, /*node=*/0, /*core=*/2);
    StreamGen plain(p, kWorkloadVaBase, 7, 2);
    for (int i = 0; i < 2000; ++i) {
        MemOpDesc a = mt.next(), b = plain.next();
        EXPECT_EQ(a.vaddr, b.vaddr);
        EXPECT_EQ(a.write, b.write);
        EXPECT_EQ(a.gap, b.gap);
        EXPECT_EQ(a.job, 0);
    }
}

TEST(MultiTenant, JobsOwnDisjointAddressSpacesAndTagOps)
{
    StreamProfile p = profiles::uniformTest(4ull << 20);
    TenancyParams tenancy;
    tenancy.jobs = 4;
    MultiTenantWorkload mt(tenancy, p, 7, 0, 0);
    std::set<JobId> seen;
    for (int i = 0; i < 20000; ++i) {
        MemOpDesc op = mt.next();
        ASSERT_LT(op.job, tenancy.jobs);
        seen.insert(op.job);
        // The op's VA must fall inside its job's private window.
        std::uint64_t base =
            kWorkloadVaBase + op.job * tenancy.jobVaStride;
        EXPECT_GE(op.vaddr, base);
        EXPECT_LT(op.vaddr, base + tenancy.jobVaStride);
    }
    EXPECT_EQ(seen.size(), 4u); // every tenant got scheduled
    // Footprints are disjoint, so the union is the per-job sum.
    auto pages = mt.footprintPages();
    std::set<std::uint64_t> unique(pages.begin(), pages.end());
    EXPECT_EQ(unique.size(), pages.size());
    EXPECT_EQ(pages.size(),
              tenancy.jobs * (p.footprintBytes / kPageSize));
}

TEST(MultiTenant, ZipfSkewFavorsJobZero)
{
    StreamProfile p = profiles::uniformTest(4ull << 20);
    TenancyParams tenancy;
    tenancy.jobs = 4;
    tenancy.zipfSkew = 1.0;
    MultiTenantWorkload mt(tenancy, p, 7, 0, 0);
    std::map<JobId, int> counts;
    for (int i = 0; i < 40000; ++i)
        ++counts[mt.next().job];
    // Weights 1, 1/2, 1/3, 1/4: job 0 must dominate and ordering hold.
    EXPECT_GT(counts[0], counts[1]);
    EXPECT_GT(counts[1], counts[2]);
    EXPECT_GT(counts[2], counts[3]);
}

TEST(MultiTenant, ChurnTogglesTenantsButNeverJobZero)
{
    StreamProfile p = profiles::uniformTest(4ull << 20);
    TenancyParams tenancy;
    tenancy.jobs = 3;
    tenancy.churnMeanOps = 500;
    MultiTenantWorkload a(tenancy, p, 7, 0, 0);
    MultiTenantWorkload b(tenancy, p, 7, 0, 0);
    std::map<JobId, int> counts;
    for (int i = 0; i < 50000; ++i) {
        MemOpDesc oa = a.next(), ob = b.next();
        // Churn is a pure function of ops consumed: two instances
        // replay the identical schedule.
        EXPECT_EQ(oa.vaddr, ob.vaddr);
        EXPECT_EQ(oa.job, ob.job);
        ++counts[oa.job];
    }
    // Every tenant ran some of the time; job 0 (never departing)
    // kept the core busy during others' absences.
    EXPECT_EQ(counts.size(), 3u);
    EXPECT_GT(counts[0], counts[1]);
    EXPECT_GT(counts[0], counts[2]);
}

} // namespace
} // namespace famsim
