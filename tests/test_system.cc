/**
 * @file
 * End-to-end integration tests: every architecture boots and runs a
 * workload to completion; the paper's qualitative relations hold on a
 * small configuration; runs are deterministic; multi-node systems and
 * job migration work; the AT/non-AT accounting is consistent.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "harness/figure_report.hh"
#include "harness/runner.hh"

namespace famsim {
namespace {

SystemConfig
smallConfig(ArchKind arch, const std::string& bench = "mcf",
            std::uint64_t instr = 30000)
{
    StreamProfile profile = profiles::byName(bench);
    // Scale the footprint down so integration tests stay fast.
    profile.footprintBytes = 8 << 20;
    profile.hot1Pages = 128;
    profile.hot2Pages = 512;
    SystemConfig config = makeConfig(profile, arch, instr);
    config.coresPerNode = 2;
    return config;
}

class ArchTest : public ::testing::TestWithParam<ArchKind>
{
};

TEST_P(ArchTest, RunsToCompletion)
{
    ScopedQuietLogs quiet;
    System system(smallConfig(GetParam()));
    system.run();
    EXPECT_GT(system.ipc(), 0.0);
    // Every core retired its instructions.
    double instructions = system.sim().stats().sumMatching(".instructions");
    EXPECT_GT(instructions, 0.0);
}

TEST_P(ArchTest, DeterministicAcrossRuns)
{
    ScopedQuietLogs quiet;
    System a(smallConfig(GetParam()));
    a.run();
    System b(smallConfig(GetParam()));
    b.run();
    EXPECT_DOUBLE_EQ(a.ipc(), b.ipc());
    EXPECT_EQ(a.media().totalRequests(), b.media().totalRequests());
    EXPECT_EQ(a.sim().curTick(), b.sim().curTick());
}

TEST_P(ArchTest, NoDenialsInNormalOperation)
{
    ScopedQuietLogs quiet;
    System system(smallConfig(GetParam()));
    system.run();
    if (GetParam() != ArchKind::EFam) {
        EXPECT_DOUBLE_EQ(system.sim().stats().get("node0.stu.denials"),
                         0.0);
    }
}

INSTANTIATE_TEST_SUITE_P(AllArchs, ArchTest,
                         ::testing::Values(ArchKind::EFam, ArchKind::IFam,
                                           ArchKind::DeactW,
                                           ArchKind::DeactN),
                         [](const auto& suite) {
                             std::string name = toString(suite.param);
                             name.erase(
                                 std::remove(name.begin(), name.end(), '-'),
                                 name.end());
                             return name;
                         });

TEST(SystemShape, EFamIsFastestAndDeactBeatsIFam)
{
    ScopedQuietLogs quiet;
    // The paper's headline relation on an AT-sensitive profile. This
    // needs the *full* canl footprint — on a scaled-down working set
    // the STU stops thrashing and DeACT's advantage vanishes (which is
    // itself the paper's observation about insensitive benchmarks).
    // A longer window with generous warmup approximates the paper's
    // steady state: the 64K-entry in-DRAM translation cache needs far
    // more accesses to warm up than the 1K-entry STU.
    auto run = [](ArchKind arch) {
        SystemConfig config =
            makeConfig(profiles::byName("canl"), arch, 150000);
        config.coresPerNode = 2;
        config.warmupFraction = 0.4;
        System s(config);
        s.run();
        return s.ipc();
    };
    double efam = run(ArchKind::EFam);
    double ifam = run(ArchKind::IFam);
    double deactn = run(ArchKind::DeactN);
    EXPECT_GT(efam, ifam);
    EXPECT_GT(efam, deactn);
    EXPECT_GT(deactn, ifam);
}

TEST(SystemShape, IFamHasMoreAtTrafficThanEFam)
{
    ScopedQuietLogs quiet;
    System efam(smallConfig(ArchKind::EFam, "canl", 40000));
    efam.run();
    System ifam(smallConfig(ArchKind::IFam, "canl", 40000));
    ifam.run();
    EXPECT_GT(ifam.famAtPercent(), efam.famAtPercent());
}

TEST(SystemShape, DeactTranslationHitRateExceedsIFamStu)
{
    ScopedQuietLogs quiet;
    System ifam(smallConfig(ArchKind::IFam, "canl", 40000));
    ifam.run();
    System deact(smallConfig(ArchKind::DeactN, "canl", 40000));
    deact.run();
    // The in-DRAM cache holds vastly more entries than the STU (Fig 10).
    EXPECT_GT(deact.translationHitRate(), ifam.translationHitRate());
}

TEST(SystemInvariants, EveryFamDataAccessWasVerified)
{
    ScopedQuietLogs quiet;
    for (ArchKind arch : {ArchKind::IFam, ArchKind::DeactN}) {
        System system(smallConfig(arch));
        system.run();
        const auto& stats = system.sim().stats();
        // All data requests at FAM must have passed verification:
        // data_requests <= verifications (ACM checks) per node.
        double data = stats.get("fam.data_requests");
        double verifications = stats.get("node0.stu.verifications");
        EXPECT_LE(data, verifications) << toString(arch);
    }
}

TEST(SystemInvariants, MpkiIsInACredibleRange)
{
    ScopedQuietLogs quiet;
    System system(smallConfig(ArchKind::EFam, "mcf", 60000));
    system.run();
    EXPECT_GT(system.mpki(), 10.0);
    EXPECT_LT(system.mpki(), 400.0);
}

TEST(SystemInvariants, StatsResetMakesWindowConsistent)
{
    ScopedQuietLogs quiet;
    SystemConfig config = smallConfig(ArchKind::DeactN);
    config.warmupFraction = 0.5;
    System system(config);
    system.run();
    // Post-warmup instruction count is at most ~half the limit (plus
    // the batch the leader finished before resetting).
    double instructions =
        system.sim().stats().get("node0.core0.instructions");
    EXPECT_LE(instructions,
              0.6 * static_cast<double>(config.core.instructionLimit));
}

TEST(MultiNode, TwoNodesShareFabricAndFam)
{
    ScopedQuietLogs quiet;
    SystemConfig config = smallConfig(ArchKind::DeactN, "mcf", 20000);
    config.nodes = 2;
    System system(config);
    system.run();
    EXPECT_GT(system.sim().stats().get("node0.core0.instructions"), 0.0);
    EXPECT_GT(system.sim().stats().get("node1.core0.instructions"), 0.0);
    // Both nodes' pages coexist in the shared FAM with distinct owners.
    EXPECT_NE(system.broker().logicalIdOf(0),
              system.broker().logicalIdOf(1));
}

TEST(MultiNode, ContentionSlowsSharedFabric)
{
    ScopedQuietLogs quiet;
    SystemConfig one = smallConfig(ArchKind::IFam, "mcf", 20000);
    one.fabric.serialization = 20 * kNanosecond; // exaggerate contention
    System s1(one);
    s1.run();

    SystemConfig four = one;
    four.nodes = 4;
    System s4(four);
    s4.run();

    double ipc1 = s1.sim().stats().has("node0.core0.instructions")
                      ? s1.ipc() / (1 * one.coresPerNode)
                      : 0.0;
    double ipc4 = s4.ipc() / (4 * four.coresPerNode);
    EXPECT_LT(ipc4, ipc1); // per-core slowdown under sharing
}

TEST(Migration, ShootdownForcesRetranslation)
{
    ScopedQuietLogs quiet;
    SystemConfig config = smallConfig(ArchKind::DeactN, "mcf", 20000);
    config.nodes = 2;
    System system(config);
    system.run();

    double walks_before =
        system.sim().stats().get("node0.stu.walks");
    (void)walks_before;
    auto report = system.broker().migrateJob(0, 1, /*logical=*/false);
    EXPECT_GT(report.pagesMoved, 0u);
    EXPECT_EQ(report.acmWrites, report.pagesMoved);

    auto report2 = system.broker().migrateJob(1, 0, /*logical=*/true);
    EXPECT_EQ(report2.acmWrites, 0u); // logical ids: no ACM rewrite
}

TEST(Harness, GeomeanAndConfigHelpers)
{
    EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-12);
    EXPECT_NEAR(geomean({2.0, 2.0, 2.0}), 2.0, 1e-12);
    EXPECT_DOUBLE_EQ(geomean({}), 0.0);
    EXPECT_NEAR(geomean({0.0, 3.0, 3.0}), 3.0, 1e-12); // ignores zeros

    SystemConfig config = makeConfig(profiles::byName("pf"),
                                     ArchKind::DeactW, 1234);
    EXPECT_EQ(config.core.instructionLimit, 1234u);
    EXPECT_EQ(config.arch, ArchKind::DeactW);
    config.finalize();
    EXPECT_EQ(config.stu.org, StuOrg::DeactW);
}

TEST(Harness, SensitivityGroupsMatchPaper)
{
    auto groups = sensitivityGroups();
    ASSERT_EQ(groups.size(), 5u); // SPEC, PARSEC, GAP, pf, dc
    EXPECT_EQ(groups["SPEC"].size(), 3u);
    EXPECT_EQ(groups["PARSEC"].size(), 2u);
    EXPECT_EQ(groups["GAP"].size(), 4u);
    EXPECT_EQ(groups["pf"].size(), 1u);
    EXPECT_EQ(groups["dc"].size(), 1u);
}

TEST(Harness, FigureReportPrintsAllRows)
{
    FigureReport report("figx", "Fig X", "bench", {"a", "b"});
    report.addRow("mcf", {1.0, 2.0});
    report.addRow("canl", {3.0, 4.0});
    report.addSummary("geomean", 2.5);
    report.addNote("shape");
    std::ostringstream os;
    report.printTable(os);
    EXPECT_NE(os.str().find("mcf"), std::string::npos);
    EXPECT_NE(os.str().find("canl"), std::string::npos);
    EXPECT_NE(os.str().find("4.00"), std::string::npos);
    EXPECT_NE(os.str().find("geomean"), std::string::npos);
}

TEST(Harness, FigureReportRejectsBadRow)
{
    ScopedThrowOnError guard;
    FigureReport report("t", "t", "r", {"a"});
    EXPECT_THROW(report.addRow("x", {1.0, 2.0}), SimError);
}

TEST(Harness, FigureReportJsonIsWellFormedAndDeterministic)
{
    FigureReport report("figx", "Fig X", "bench", {"a", "b"});
    report.addRow("mcf", {1.0, 2.5});
    report.addSummary("geomean", 1.581);
    report.addMeta("best", "mcf");
    report.addNote("a \"quoted\" note");
    std::ostringstream first, second;
    report.writeJson(first);
    report.writeJson(second);
    EXPECT_EQ(first.str(), second.str());
    const std::string json = first.str();
    EXPECT_NE(json.find("\"figure\": \"figx\""), std::string::npos);
    EXPECT_NE(json.find("\"columns\": [\"a\", \"b\"]"),
              std::string::npos);
    EXPECT_NE(json.find("\"values\": [1, 2.5]"), std::string::npos);
    EXPECT_NE(json.find("\\\"quoted\\\""), std::string::npos);
    // Balanced braces/brackets (cheap well-formedness check).
    EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
              std::count(json.begin(), json.end(), '}'));
    EXPECT_EQ(std::count(json.begin(), json.end(), '['),
              std::count(json.begin(), json.end(), ']'));
}

} // namespace
} // namespace famsim
