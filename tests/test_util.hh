/**
 * @file
 * Shared test utilities: a fixed-latency memory stub and packet
 * helpers used across the unit tests.
 */

#ifndef FAMSIM_TESTS_TEST_UTIL_HH
#define FAMSIM_TESTS_TEST_UTIL_HH

#include <cstdint>
#include <vector>

#include "mem/mem_sink.hh"
#include "sim/simulation.hh"

namespace famsim::test {

/** A memory sink that completes every access after a fixed latency. */
class StubMemory : public MemSink
{
  public:
    StubMemory(Simulation& sim, Tick latency)
        : sim_(sim), latency_(latency)
    {
    }

    void
    access(const PktPtr& pkt) override
    {
        ++accesses;
        lastAddr = pkt->npa.value();
        kinds.push_back(pkt->kind);
        sim_.events().scheduleAfter(latency_, [pkt] { pkt->complete(); });
    }

    std::uint64_t accesses = 0;
    std::uint64_t lastAddr = 0;
    std::vector<PacketKind> kinds;

  private:
    Simulation& sim_;
    Tick latency_;
};

/** Make a simple data read packet for the given NPA. */
inline PktPtr
dataRead(std::uint64_t npa, NodeId node = 0)
{
    PktPtr pkt = makePacket(node, 0, MemOp::Read, PacketKind::Data);
    pkt->npa = NPAddr(npa);
    return pkt;
}

/** Run the simulation until the event queue drains. */
inline void
drain(Simulation& sim)
{
    sim.run();
}

} // namespace famsim::test

#endif // FAMSIM_TESTS_TEST_UTIL_HH
