/**
 * @file
 * Unit and property tests for the generic set-associative cache,
 * parameterized over every replacement policy.
 */

#include <gtest/gtest.h>

#include <optional>
#include <set>
#include <vector>

#include "cache/set_assoc.hh"
#include "sim/rng.hh"

namespace famsim {
namespace {

/**
 * Naive reference model of the pre-SoA tag store: an explicit array of
 * fat lines with timestamps for recency, per-way MRU flags and the
 * same RNG draw discipline (one below(ways) per replacement decision).
 * The SoA rewrite must match it decision-for-decision.
 */
class ReferenceCache
{
  public:
    struct Evicted {
        std::uint64_t key;
        int value;
    };

    ReferenceCache(std::size_t sets, std::size_t ways, ReplPolicy policy,
                   std::uint64_t seed)
        : sets_(sets), ways_(ways), policy_(policy), lines_(sets * ways),
          mru_(sets * ways, 0), rng_(seed, 0x5e77)
    {
    }

    int*
    lookup(std::uint64_t key)
    {
        Line* line = find(key);
        if (!line)
            return nullptr;
        touch(key, line);
        return &line->value;
    }

    const int*
    probe(std::uint64_t key) const
    {
        const Line* line = const_cast<ReferenceCache*>(this)->find(key);
        return line ? &line->value : nullptr;
    }

    std::optional<Evicted>
    insert(std::uint64_t key, int value)
    {
        std::size_t set = key % sets_;
        std::uint64_t tag = key / sets_;
        Line* free_line = nullptr;
        for (std::size_t w = 0; w < ways_; ++w) {
            Line& line = lines_[set * ways_ + w];
            if (line.valid && line.tag == tag) {
                line.value = value;
                touch(key, &line);
                return std::nullopt;
            }
            if (!line.valid && !free_line)
                free_line = &line;
        }
        Line* victim = free_line ? free_line : pickVictim(set);
        std::optional<Evicted> evicted;
        if (victim->valid)
            evicted = Evicted{victim->tag * sets_ + set, victim->value};
        victim->valid = true;
        victim->tag = tag;
        victim->value = value;
        touch(key, victim);
        return evicted;
    }

    bool
    invalidate(std::uint64_t key)
    {
        Line* line = find(key);
        if (!line)
            return false;
        drop(*line);
        return true;
    }

    void
    invalidateAll()
    {
        for (auto& line : lines_)
            drop(line);
    }

    template <typename Pred>
    std::size_t
    invalidateIf(Pred pred)
    {
        std::size_t count = 0;
        for (auto& line : lines_) {
            if (line.valid && pred(line.value)) {
                drop(line);
                ++count;
            }
        }
        return count;
    }

    [[nodiscard]] std::size_t
    countValid() const
    {
        std::size_t n = 0;
        for (const auto& line : lines_)
            n += line.valid ? 1 : 0;
        return n;
    }

  private:
    struct Line {
        bool valid = false;
        std::uint64_t tag = 0;
        std::uint64_t lastUse = 0;
        int value = 0;
    };

    Line*
    find(std::uint64_t key)
    {
        std::size_t set = key % sets_;
        std::uint64_t tag = key / sets_;
        for (std::size_t w = 0; w < ways_; ++w) {
            Line& line = lines_[set * ways_ + w];
            if (line.valid && line.tag == tag)
                return &line;
        }
        return nullptr;
    }

    void
    drop(Line& line)
    {
        line.valid = false;
        line.lastUse = 0;
        if (policy_ == ReplPolicy::TreePlru)
            mru_[static_cast<std::size_t>(&line - lines_.data())] = 0;
    }

    void
    touch(std::uint64_t key, Line* line)
    {
        line->lastUse = ++useClock_;
        if (policy_ == ReplPolicy::TreePlru) {
            std::size_t set = key % sets_;
            auto w = static_cast<std::size_t>(line - &lines_[set * ways_]);
            auto* bits = &mru_[set * ways_];
            bits[w] = 1;
            bool all = true;
            for (std::size_t i = 0; i < ways_; ++i)
                all = all && bits[i];
            if (all) {
                for (std::size_t i = 0; i < ways_; ++i)
                    bits[i] = (i == w) ? 1 : 0;
            }
        }
    }

    Line*
    pickVictim(std::size_t set)
    {
        Line* base = &lines_[set * ways_];
        switch (policy_) {
          case ReplPolicy::Random:
            return base + rng_.below(static_cast<std::uint32_t>(ways_));
          case ReplPolicy::TreePlru: {
            auto* bits = &mru_[set * ways_];
            for (std::size_t w = 0; w < ways_; ++w) {
                if (!bits[w])
                    return base + w;
            }
            return base;
          }
          case ReplPolicy::Lru:
          default: {
            Line* victim = base;
            for (std::size_t w = 1; w < ways_; ++w) {
                if (base[w].lastUse < victim->lastUse)
                    victim = base + w;
            }
            return victim;
          }
        }
    }

    std::size_t sets_;
    std::size_t ways_;
    ReplPolicy policy_;
    std::vector<Line> lines_;
    std::vector<std::uint8_t> mru_;
    std::uint64_t useClock_ = 0;
    Rng rng_;
};

TEST(SetAssoc, HitAfterInsert)
{
    SetAssocCache<int> cache(4, 2);
    cache.insert(10, 99);
    ASSERT_NE(cache.lookup(10), nullptr);
    EXPECT_EQ(*cache.lookup(10), 99);
    EXPECT_EQ(cache.lookup(11), nullptr);
}

TEST(SetAssoc, InsertOverwritesExistingKey)
{
    SetAssocCache<int> cache(4, 2);
    cache.insert(10, 1);
    auto evicted = cache.insert(10, 2);
    EXPECT_FALSE(evicted.has_value());
    EXPECT_EQ(*cache.lookup(10), 2);
    EXPECT_EQ(cache.countValid(), 1u);
}

TEST(SetAssoc, LruEvictsLeastRecentlyUsed)
{
    SetAssocCache<int> cache(1, 2, ReplPolicy::Lru);
    cache.insert(1, 1);
    cache.insert(2, 2);
    cache.lookup(1); // make key 2 the LRU
    auto evicted = cache.insert(3, 3);
    ASSERT_TRUE(evicted.has_value());
    EXPECT_EQ(evicted->key, 2u);
    EXPECT_NE(cache.lookup(1), nullptr);
    EXPECT_NE(cache.lookup(3), nullptr);
}

TEST(SetAssoc, ProbeDoesNotUpdateRecency)
{
    SetAssocCache<int> cache(1, 2, ReplPolicy::Lru);
    cache.insert(1, 1);
    cache.insert(2, 2);
    cache.probe(1); // must NOT refresh key 1
    auto evicted = cache.insert(3, 3);
    ASSERT_TRUE(evicted.has_value());
    EXPECT_EQ(evicted->key, 1u);
}

TEST(SetAssoc, InvalidateRemovesEntry)
{
    SetAssocCache<int> cache(4, 2);
    cache.insert(10, 1);
    EXPECT_TRUE(cache.invalidate(10));
    EXPECT_EQ(cache.lookup(10), nullptr);
    EXPECT_FALSE(cache.invalidate(10));
}

TEST(SetAssoc, InvalidateAllEmptiesCache)
{
    SetAssocCache<int> cache(4, 4);
    for (std::uint64_t k = 0; k < 16; ++k)
        cache.insert(k, 1);
    EXPECT_EQ(cache.countValid(), 16u);
    cache.invalidateAll();
    EXPECT_EQ(cache.countValid(), 0u);
}

TEST(SetAssoc, InvalidateIfSelectsByValue)
{
    SetAssocCache<int> cache(4, 4);
    for (std::uint64_t k = 0; k < 8; ++k)
        cache.insert(k, static_cast<int>(k % 2));
    EXPECT_EQ(cache.invalidateIf([](int v) { return v == 1; }), 4u);
    EXPECT_EQ(cache.countValid(), 4u);
}

TEST(SetAssoc, InvalidateClearsPlruProtection)
{
    // Regression: invalidate() used to leave the invalidated way's
    // TreePLRU MRU bit set. The stale bit skewed the all-bits-set
    // reset in touch() and could victimize a just-inserted entry while
    // protecting a dead way's successor. Post-fix, the storm leaves no
    // residue and the eviction below hits the genuinely oldest entry.
    SetAssocCache<int> cache(1, 4, ReplPolicy::TreePlru);
    for (std::uint64_t k = 0; k < 4; ++k)
        cache.insert(k, static_cast<int>(k));
    cache.invalidate(3);
    cache.lookup(0);
    cache.lookup(1);
    cache.lookup(2);
    cache.insert(4, 4); // refills the freed way
    EXPECT_FALSE(cache.lookup(3));
    auto first = cache.insert(5, 5);
    ASSERT_TRUE(first.has_value());
    EXPECT_EQ(first->key, 0u);
    auto second = cache.insert(6, 6);
    ASSERT_TRUE(second.has_value());
    EXPECT_EQ(second->key, 1u);
    // With a stale bit this evicted key 5 (inserted two steps ago).
    auto third = cache.insert(7, 7);
    ASSERT_TRUE(third.has_value());
    EXPECT_EQ(third->key, 2u);
}

TEST(SetAssoc, InvalidateIfClearsPlruProtection)
{
    // Same storm as above, driven through invalidateIf (the
    // post-migration shootdown path).
    SetAssocCache<int> cache(1, 4, ReplPolicy::TreePlru);
    for (std::uint64_t k = 0; k < 4; ++k)
        cache.insert(k, static_cast<int>(k));
    EXPECT_EQ(cache.invalidateIf([](int v) { return v == 3; }), 1u);
    cache.lookup(0);
    cache.lookup(1);
    cache.lookup(2);
    cache.insert(4, 4);
    cache.insert(5, 5);
    cache.insert(6, 6);
    auto evicted = cache.insert(7, 7);
    ASSERT_TRUE(evicted.has_value());
    EXPECT_EQ(evicted->key, 2u);
}

TEST(SetAssoc, InvalidationStormLeavesNoReplacementResidue)
{
    // A cache that was filled and fully shot down must behave exactly
    // like a fresh cache from then on: identical eviction decisions
    // for an identical access sequence.
    SetAssocCache<int> fresh(1, 4, ReplPolicy::TreePlru);
    SetAssocCache<int> stormed(1, 4, ReplPolicy::TreePlru);
    for (std::uint64_t k = 100; k < 104; ++k)
        stormed.insert(k, 0);
    stormed.invalidateAll();

    for (std::uint64_t k = 0; k < 4; ++k) {
        fresh.insert(k, static_cast<int>(k));
        stormed.insert(k, static_cast<int>(k));
    }
    for (std::uint64_t k = 4; k < 12; ++k) {
        fresh.lookup(k % 3);
        stormed.lookup(k % 3);
        auto a = fresh.insert(k, static_cast<int>(k));
        auto b = stormed.insert(k, static_cast<int>(k));
        ASSERT_EQ(a.has_value(), b.has_value()) << "step " << k;
        if (a.has_value()) {
            EXPECT_EQ(a->key, b->key) << "step " << k;
        }
    }
}

TEST(SetAssoc, KeysMapToDistinctSets)
{
    // Keys differing only above the set bits must not evict each other
    // in different sets.
    SetAssocCache<int> cache(8, 1);
    for (std::uint64_t k = 0; k < 8; ++k)
        cache.insert(k, static_cast<int>(k));
    EXPECT_EQ(cache.countValid(), 8u);
}

class SetAssocPolicyTest : public ::testing::TestWithParam<ReplPolicy>
{
};

TEST_P(SetAssocPolicyTest, CapacityNeverExceeded)
{
    SetAssocCache<int> cache(8, 4, GetParam(), 1);
    for (std::uint64_t k = 0; k < 1000; ++k)
        cache.insert(k * 7919, 1);
    EXPECT_LE(cache.countValid(), cache.capacity());
}

TEST_P(SetAssocPolicyTest, ResidentSetBehavesUnderChurn)
{
    // A small resident set accessed every step must survive mostly
    // intact for LRU/PLRU; random may evict it occasionally but the
    // cache must remain consistent.
    SetAssocCache<int> cache(4, 4, GetParam(), 1);
    std::set<std::uint64_t> resident{0, 1, 2, 3};
    for (std::uint64_t r : resident)
        cache.insert(r, 1);
    std::uint64_t hits = 0, total = 0;
    for (std::uint64_t i = 0; i < 4000; ++i) {
        for (std::uint64_t r : resident) {
            ++total;
            if (cache.lookup(r))
                ++hits;
            else
                cache.insert(r, 1);
        }
        cache.insert(1000 + i, 2); // churn
    }
    double hit_rate =
        static_cast<double>(hits) / static_cast<double>(total);
    if (GetParam() == ReplPolicy::Lru)
        EXPECT_GT(hit_rate, 0.95);
    else
        EXPECT_GT(hit_rate, 0.5);
}

TEST_P(SetAssocPolicyTest, EvictedEntriesReportTheirKey)
{
    SetAssocCache<int> cache(1, 2, GetParam(), 1);
    cache.insert(0, 10);
    cache.insert(1, 11);
    auto evicted = cache.insert(2, 12);
    ASSERT_TRUE(evicted.has_value());
    EXPECT_TRUE(evicted->key == 0 || evicted->key == 1);
    EXPECT_EQ(evicted->value, evicted->key == 0 ? 10 : 11);
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, SetAssocPolicyTest,
                         ::testing::Values(ReplPolicy::Lru,
                                           ReplPolicy::Random,
                                           ReplPolicy::TreePlru),
                         [](const auto& suite) {
                             return std::string(toString(suite.param));
                         });

class SetAssocGeometryTest
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>>
{
};

TEST_P(SetAssocGeometryTest, FullyPopulatedThenFullyHit)
{
    auto [sets, ways] = GetParam();
    SetAssocCache<std::uint64_t> cache(sets, ways);
    for (std::uint64_t k = 0; k < sets * ways; ++k)
        cache.insert(k, k * 2);
    EXPECT_EQ(cache.countValid(), sets * ways);
    for (std::uint64_t k = 0; k < sets * ways; ++k) {
        auto* v = cache.lookup(k);
        ASSERT_NE(v, nullptr);
        EXPECT_EQ(*v, k * 2);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, SetAssocGeometryTest,
    ::testing::Values(std::pair<std::size_t, std::size_t>{1, 32},
                      std::pair<std::size_t, std::size_t>{128, 8},
                      std::pair<std::size_t, std::size_t>{64, 4},
                      std::pair<std::size_t, std::size_t>{16384, 4},
                      // > 64 ways: DeACT-N expands assoc by pairsPerWay
                      // (e.g. --stu-assoc 32 --pairs 3 = 96 ways); the
                      // mask words must span multiple 64-bit words.
                      std::pair<std::size_t, std::size_t>{4, 96},
                      std::pair<std::size_t, std::size_t>{2, 128}));

/**
 * The SoA store must match the fat-line reference model
 * decision-for-decision — hits, values, evicted keys, invalidation
 * results and valid counts — over long random op sequences, for every
 * policy and for pow2/non-pow2/single-set geometries. This is what
 * keeps the golden files bit-identical across the layout rewrite.
 */
class SetAssocEquivalenceTest
    : public ::testing::TestWithParam<
          std::tuple<ReplPolicy, std::pair<std::size_t, std::size_t>>>
{
};

TEST_P(SetAssocEquivalenceTest, MatchesReferenceModelDecisionForDecision)
{
    auto [policy, shape] = GetParam();
    auto [sets, ways] = shape;
    const std::uint64_t seed = 99;
    SetAssocCache<int> cache(sets, ways, policy, seed);
    ReferenceCache ref(sets, ways, policy, seed);

    Rng driver(1234, sets * 131 + ways);
    std::uint64_t keyspace = sets * ways * 4 + 3;
    for (int step = 0; step < 100000; ++step) {
        std::uint64_t key = driver.below64(keyspace);
        std::uint32_t op = driver.below(100);
        if (op < 50) {
            int* got = cache.lookup(key);
            int* want = ref.lookup(key);
            ASSERT_EQ(got != nullptr, want != nullptr) << "step " << step;
            if (got) {
                ASSERT_EQ(*got, *want) << "step " << step;
            }
        } else if (op < 75) {
            int value = static_cast<int>(driver.below(1000));
            auto got = cache.insert(key, value);
            auto want = ref.insert(key, value);
            ASSERT_EQ(got.has_value(), want.has_value()) << "step " << step;
            if (got) {
                ASSERT_EQ(got->key, want->key) << "step " << step;
                ASSERT_EQ(got->value, want->value) << "step " << step;
            }
        } else if (op < 85) {
            const int* got = cache.probe(key);
            const int* want = ref.probe(key);
            ASSERT_EQ(got != nullptr, want != nullptr) << "step " << step;
        } else if (op < 93) {
            ASSERT_EQ(cache.invalidate(key), ref.invalidate(key))
                << "step " << step;
        } else if (op < 97) {
            auto pred = [](int v) { return v % 3 == 0; };
            ASSERT_EQ(cache.invalidateIf(pred), ref.invalidateIf(pred))
                << "step " << step;
        } else if (op < 99) {
            ASSERT_EQ(cache.countValid(), ref.countValid())
                << "step " << step;
        } else {
            cache.invalidateAll();
            ref.invalidateAll();
        }
    }
    EXPECT_EQ(cache.countValid(), ref.countValid());
}

INSTANTIATE_TEST_SUITE_P(
    PoliciesAndShapes, SetAssocEquivalenceTest,
    ::testing::Combine(
        ::testing::Values(ReplPolicy::Lru, ReplPolicy::Random,
                          ReplPolicy::TreePlru),
        ::testing::Values(std::pair<std::size_t, std::size_t>{1, 4},
                          std::pair<std::size_t, std::size_t>{12, 3},
                          std::pair<std::size_t, std::size_t>{64, 4},
                          std::pair<std::size_t, std::size_t>{128, 8},
                          std::pair<std::size_t, std::size_t>{2, 96})),
    [](const auto& suite) {
        ReplPolicy policy = std::get<0>(suite.param);
        auto shape = std::get<1>(suite.param);
        return std::string(toString(policy)) + "_" +
               std::to_string(shape.first) + "x" +
               std::to_string(shape.second);
    });

} // namespace
} // namespace famsim
