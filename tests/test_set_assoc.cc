/**
 * @file
 * Unit and property tests for the generic set-associative cache,
 * parameterized over every replacement policy.
 */

#include <gtest/gtest.h>

#include <set>

#include "cache/set_assoc.hh"

namespace famsim {
namespace {

TEST(SetAssoc, HitAfterInsert)
{
    SetAssocCache<int> cache(4, 2);
    cache.insert(10, 99);
    ASSERT_NE(cache.lookup(10), nullptr);
    EXPECT_EQ(*cache.lookup(10), 99);
    EXPECT_EQ(cache.lookup(11), nullptr);
}

TEST(SetAssoc, InsertOverwritesExistingKey)
{
    SetAssocCache<int> cache(4, 2);
    cache.insert(10, 1);
    auto evicted = cache.insert(10, 2);
    EXPECT_FALSE(evicted.has_value());
    EXPECT_EQ(*cache.lookup(10), 2);
    EXPECT_EQ(cache.countValid(), 1u);
}

TEST(SetAssoc, LruEvictsLeastRecentlyUsed)
{
    SetAssocCache<int> cache(1, 2, ReplPolicy::Lru);
    cache.insert(1, 1);
    cache.insert(2, 2);
    cache.lookup(1); // make key 2 the LRU
    auto evicted = cache.insert(3, 3);
    ASSERT_TRUE(evicted.has_value());
    EXPECT_EQ(evicted->key, 2u);
    EXPECT_NE(cache.lookup(1), nullptr);
    EXPECT_NE(cache.lookup(3), nullptr);
}

TEST(SetAssoc, ProbeDoesNotUpdateRecency)
{
    SetAssocCache<int> cache(1, 2, ReplPolicy::Lru);
    cache.insert(1, 1);
    cache.insert(2, 2);
    cache.probe(1); // must NOT refresh key 1
    auto evicted = cache.insert(3, 3);
    ASSERT_TRUE(evicted.has_value());
    EXPECT_EQ(evicted->key, 1u);
}

TEST(SetAssoc, InvalidateRemovesEntry)
{
    SetAssocCache<int> cache(4, 2);
    cache.insert(10, 1);
    EXPECT_TRUE(cache.invalidate(10));
    EXPECT_EQ(cache.lookup(10), nullptr);
    EXPECT_FALSE(cache.invalidate(10));
}

TEST(SetAssoc, InvalidateAllEmptiesCache)
{
    SetAssocCache<int> cache(4, 4);
    for (std::uint64_t k = 0; k < 16; ++k)
        cache.insert(k, 1);
    EXPECT_EQ(cache.countValid(), 16u);
    cache.invalidateAll();
    EXPECT_EQ(cache.countValid(), 0u);
}

TEST(SetAssoc, InvalidateIfSelectsByValue)
{
    SetAssocCache<int> cache(4, 4);
    for (std::uint64_t k = 0; k < 8; ++k)
        cache.insert(k, static_cast<int>(k % 2));
    EXPECT_EQ(cache.invalidateIf([](int v) { return v == 1; }), 4u);
    EXPECT_EQ(cache.countValid(), 4u);
}

TEST(SetAssoc, InvalidateClearsPlruProtection)
{
    // Regression: invalidate() used to leave the invalidated way's
    // TreePLRU MRU bit set. The stale bit skewed the all-bits-set
    // reset in touch() and could victimize a just-inserted entry while
    // protecting a dead way's successor. Post-fix, the storm leaves no
    // residue and the eviction below hits the genuinely oldest entry.
    SetAssocCache<int> cache(1, 4, ReplPolicy::TreePlru);
    for (std::uint64_t k = 0; k < 4; ++k)
        cache.insert(k, static_cast<int>(k));
    cache.invalidate(3);
    cache.lookup(0);
    cache.lookup(1);
    cache.lookup(2);
    cache.insert(4, 4); // refills the freed way
    EXPECT_FALSE(cache.lookup(3));
    auto first = cache.insert(5, 5);
    ASSERT_TRUE(first.has_value());
    EXPECT_EQ(first->key, 0u);
    auto second = cache.insert(6, 6);
    ASSERT_TRUE(second.has_value());
    EXPECT_EQ(second->key, 1u);
    // With a stale bit this evicted key 5 (inserted two steps ago).
    auto third = cache.insert(7, 7);
    ASSERT_TRUE(third.has_value());
    EXPECT_EQ(third->key, 2u);
}

TEST(SetAssoc, InvalidateIfClearsPlruProtection)
{
    // Same storm as above, driven through invalidateIf (the
    // post-migration shootdown path).
    SetAssocCache<int> cache(1, 4, ReplPolicy::TreePlru);
    for (std::uint64_t k = 0; k < 4; ++k)
        cache.insert(k, static_cast<int>(k));
    EXPECT_EQ(cache.invalidateIf([](int v) { return v == 3; }), 1u);
    cache.lookup(0);
    cache.lookup(1);
    cache.lookup(2);
    cache.insert(4, 4);
    cache.insert(5, 5);
    cache.insert(6, 6);
    auto evicted = cache.insert(7, 7);
    ASSERT_TRUE(evicted.has_value());
    EXPECT_EQ(evicted->key, 2u);
}

TEST(SetAssoc, InvalidationStormLeavesNoReplacementResidue)
{
    // A cache that was filled and fully shot down must behave exactly
    // like a fresh cache from then on: identical eviction decisions
    // for an identical access sequence.
    SetAssocCache<int> fresh(1, 4, ReplPolicy::TreePlru);
    SetAssocCache<int> stormed(1, 4, ReplPolicy::TreePlru);
    for (std::uint64_t k = 100; k < 104; ++k)
        stormed.insert(k, 0);
    stormed.invalidateAll();

    for (std::uint64_t k = 0; k < 4; ++k) {
        fresh.insert(k, static_cast<int>(k));
        stormed.insert(k, static_cast<int>(k));
    }
    for (std::uint64_t k = 4; k < 12; ++k) {
        fresh.lookup(k % 3);
        stormed.lookup(k % 3);
        auto a = fresh.insert(k, static_cast<int>(k));
        auto b = stormed.insert(k, static_cast<int>(k));
        ASSERT_EQ(a.has_value(), b.has_value()) << "step " << k;
        if (a.has_value()) {
            EXPECT_EQ(a->key, b->key) << "step " << k;
        }
    }
}

TEST(SetAssoc, KeysMapToDistinctSets)
{
    // Keys differing only above the set bits must not evict each other
    // in different sets.
    SetAssocCache<int> cache(8, 1);
    for (std::uint64_t k = 0; k < 8; ++k)
        cache.insert(k, static_cast<int>(k));
    EXPECT_EQ(cache.countValid(), 8u);
}

class SetAssocPolicyTest : public ::testing::TestWithParam<ReplPolicy>
{
};

TEST_P(SetAssocPolicyTest, CapacityNeverExceeded)
{
    SetAssocCache<int> cache(8, 4, GetParam(), 1);
    for (std::uint64_t k = 0; k < 1000; ++k)
        cache.insert(k * 7919, 1);
    EXPECT_LE(cache.countValid(), cache.capacity());
}

TEST_P(SetAssocPolicyTest, ResidentSetBehavesUnderChurn)
{
    // A small resident set accessed every step must survive mostly
    // intact for LRU/PLRU; random may evict it occasionally but the
    // cache must remain consistent.
    SetAssocCache<int> cache(4, 4, GetParam(), 1);
    std::set<std::uint64_t> resident{0, 1, 2, 3};
    for (std::uint64_t r : resident)
        cache.insert(r, 1);
    std::uint64_t hits = 0, total = 0;
    for (std::uint64_t i = 0; i < 4000; ++i) {
        for (std::uint64_t r : resident) {
            ++total;
            if (cache.lookup(r))
                ++hits;
            else
                cache.insert(r, 1);
        }
        cache.insert(1000 + i, 2); // churn
    }
    double hit_rate =
        static_cast<double>(hits) / static_cast<double>(total);
    if (GetParam() == ReplPolicy::Lru)
        EXPECT_GT(hit_rate, 0.95);
    else
        EXPECT_GT(hit_rate, 0.5);
}

TEST_P(SetAssocPolicyTest, EvictedEntriesReportTheirKey)
{
    SetAssocCache<int> cache(1, 2, GetParam(), 1);
    cache.insert(0, 10);
    cache.insert(1, 11);
    auto evicted = cache.insert(2, 12);
    ASSERT_TRUE(evicted.has_value());
    EXPECT_TRUE(evicted->key == 0 || evicted->key == 1);
    EXPECT_EQ(evicted->value, evicted->key == 0 ? 10 : 11);
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, SetAssocPolicyTest,
                         ::testing::Values(ReplPolicy::Lru,
                                           ReplPolicy::Random,
                                           ReplPolicy::TreePlru),
                         [](const auto& info) {
                             return std::string(toString(info.param));
                         });

class SetAssocGeometryTest
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>>
{
};

TEST_P(SetAssocGeometryTest, FullyPopulatedThenFullyHit)
{
    auto [sets, ways] = GetParam();
    SetAssocCache<std::uint64_t> cache(sets, ways);
    for (std::uint64_t k = 0; k < sets * ways; ++k)
        cache.insert(k, k * 2);
    EXPECT_EQ(cache.countValid(), sets * ways);
    for (std::uint64_t k = 0; k < sets * ways; ++k) {
        auto* v = cache.lookup(k);
        ASSERT_NE(v, nullptr);
        EXPECT_EQ(*v, k * 2);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, SetAssocGeometryTest,
    ::testing::Values(std::pair<std::size_t, std::size_t>{1, 32},
                      std::pair<std::size_t, std::size_t>{128, 8},
                      std::pair<std::size_t, std::size_t>{64, 4},
                      std::pair<std::size_t, std::size_t>{16384, 4}));

} // namespace
} // namespace famsim
