/**
 * @file
 * Tests for workload trace record/replay.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "sim/logging.hh"
#include "workload/trace.hh"

namespace famsim {
namespace {

class TraceTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        path_ = std::filesystem::temp_directory_path() /
                ("famsim_trace_test_" +
                 std::to_string(::testing::UnitTest::GetInstance()
                                    ->random_seed()) +
                 "_" + ::testing::UnitTest::GetInstance()
                           ->current_test_info()
                           ->name());
    }

    void
    TearDown() override
    {
        std::filesystem::remove(path_);
    }

    std::filesystem::path path_;
};

TEST_F(TraceTest, RoundTripsRecords)
{
    StreamGen gen(profiles::byName("mcf"), 0x1000000, 5, 0);
    std::vector<MemOpDesc> recorded;
    {
        TraceWriter writer(path_.string());
        recorded = writer.record(gen, 500);
        EXPECT_EQ(writer.written(), 500u);
    }
    TraceReader reader(path_.string());
    EXPECT_EQ(reader.size(), 500u);
    for (const auto& expected : recorded) {
        MemOpDesc got = reader.next();
        EXPECT_EQ(got.vaddr, expected.vaddr);
        EXPECT_EQ(got.gap, expected.gap);
        EXPECT_EQ(got.write, expected.write);
        EXPECT_EQ(got.blocking, expected.blocking);
    }
}

TEST_F(TraceTest, ReplayLoops)
{
    {
        TraceWriter writer(path_.string());
        MemOpDesc op;
        op.vaddr = 0x1234;
        writer.append(op);
    }
    TraceReader reader(path_.string());
    EXPECT_EQ(reader.next().vaddr, 0x1234u);
    EXPECT_EQ(reader.next().vaddr, 0x1234u); // wrapped
}

TEST_F(TraceTest, FootprintMatchesSource)
{
    StreamGen gen(profiles::uniformTest(1 << 20), 0x4000000, 9, 0);
    {
        TraceWriter writer(path_.string());
        writer.record(gen, 2000);
    }
    TraceReader reader(path_.string());
    auto pages = reader.footprintPages();
    EXPECT_FALSE(pages.empty());
    for (std::uint64_t page : pages) {
        EXPECT_GE(page, 0x4000000u / kPageSize);
        EXPECT_LT(page, (0x4000000u + (1 << 20)) / kPageSize);
    }
}

TEST_F(TraceTest, MissingFileFatals)
{
    ScopedThrowOnError guard;
    EXPECT_THROW(TraceReader("/nonexistent/famsim.trace"), SimError);
}

TEST_F(TraceTest, CorruptMagicFatals)
{
    {
        std::ofstream out(path_);
        out << "not a trace file at all, definitely long enough";
    }
    ScopedThrowOnError guard;
    EXPECT_THROW(TraceReader(path_.string()), SimError);
}

} // namespace
} // namespace famsim
