/**
 * @file
 * Tests for workload trace record/replay: round trips across the
 * binary/text/gzip backends, streaming chunk behaviour, header
 * validation (truncation, trailing garbage, stale counts, bad
 * versions), writer I/O error checking and the scenario-level
 * record -> replay bit-identity contract.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "harness/runner.hh"
#include "harness/scenario.hh"
#include "sim/logging.hh"
#include "workload/trace.hh"

namespace famsim {
namespace {

namespace fs = std::filesystem;

class TraceTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        base_ = fs::temp_directory_path() /
                ("famsim_trace_test_" +
                 std::to_string(::testing::UnitTest::GetInstance()
                                    ->random_seed()) +
                 "_" + ::testing::UnitTest::GetInstance()
                           ->current_test_info()
                           ->name());
        path_ = base_;
        path_ += ".trace";
    }

    void
    TearDown() override
    {
        std::error_code ec;
        fs::remove_all(base_, ec);
        for (const char* ext : {".trace", ".txt", ".gz", ".dir"}) {
            fs::path p = base_;
            p += ext;
            fs::remove_all(p, ec);
        }
    }

    /** Sibling path with a different extension. */
    [[nodiscard]] std::string
    pathWithExt(const char* ext) const
    {
        fs::path p = base_;
        p += ext;
        return p.string();
    }

    /** Overwrite one byte of the file at @p offset. */
    void
    patchByte(const std::string& path, std::uint64_t offset,
              unsigned char value) const
    {
        std::fstream f(path, std::ios::binary | std::ios::in |
                                 std::ios::out);
        ASSERT_TRUE(f.is_open());
        f.seekp(static_cast<std::streamoff>(offset));
        f.write(reinterpret_cast<const char*>(&value), 1);
        ASSERT_TRUE(f.good());
    }

    fs::path base_;
    fs::path path_;
};

void
expectSameOps(const std::vector<MemOpDesc>& expected, TraceReader& reader)
{
    for (std::size_t i = 0; i < expected.size(); ++i) {
        MemOpDesc got = reader.next();
        EXPECT_EQ(got.vaddr, expected[i].vaddr) << "record " << i;
        EXPECT_EQ(got.gap, expected[i].gap) << "record " << i;
        EXPECT_EQ(got.write, expected[i].write) << "record " << i;
        EXPECT_EQ(got.blocking, expected[i].blocking) << "record " << i;
    }
}

std::vector<TraceFormat>
allFormats()
{
    std::vector<TraceFormat> formats = {TraceFormat::Binary,
                                        TraceFormat::Text};
    if (traceGzipSupported())
        formats.push_back(TraceFormat::Gzip);
    return formats;
}

TEST_F(TraceTest, RoundTripsRecordsInEveryFormat)
{
    for (TraceFormat format : allFormats()) {
        SCOPED_TRACE(toString(format));
        StreamGen gen(profiles::byName("mcf"), 0x1000000, 5, 0);
        std::vector<MemOpDesc> recorded;
        {
            TraceWriter writer(path_.string(), format);
            writer.setFootprint(gen.footprintPages());
            recorded = writer.record(gen, 500);
            EXPECT_EQ(writer.written(), 500u);
        }
        auto reader = TraceReader::open(path_.string());
        EXPECT_EQ(reader->size(), 500u);
        EXPECT_EQ(reader->format(), format);
        expectSameOps(recorded, *reader);
    }
}

TEST_F(TraceTest, ReplayLoops)
{
    {
        TraceWriter writer(path_.string());
        MemOpDesc op;
        op.vaddr = 0x1234;
        writer.append(op);
        op.vaddr = 0x5678;
        writer.append(op);
    }
    auto reader = TraceReader::open(path_.string());
    EXPECT_EQ(reader->next().vaddr, 0x1234u);
    EXPECT_EQ(reader->next().vaddr, 0x5678u);
    EXPECT_EQ(reader->next().vaddr, 0x1234u); // wrapped
    EXPECT_EQ(reader->next().vaddr, 0x5678u);
}

TEST_F(TraceTest, StreamsAcrossChunkBoundaries)
{
    // More records than two refill chunks, so replay must cross the
    // chunk boundary and then wrap mid-chunk.
    const std::uint64_t n = 2 * 8192 + 37;
    {
        TraceWriter writer(path_.string());
        MemOpDesc op;
        for (std::uint64_t i = 0; i < n; ++i) {
            op.vaddr = i;
            op.gap = static_cast<unsigned>(i % 7);
            op.write = (i % 3) == 0;
            writer.append(op);
        }
    }
    auto reader = TraceReader::open(path_.string());
    EXPECT_EQ(reader->size(), n);
    for (std::uint64_t i = 0; i < n; ++i)
        EXPECT_EQ(reader->next().vaddr, i);
    EXPECT_EQ(reader->next().vaddr, 0u); // wrapped
}

TEST_F(TraceTest, FootprintPreservesWriterOrder)
{
    // Prefault order matters for replay determinism, so the footprint
    // section must round-trip in writer order, not sorted.
    const std::vector<std::uint64_t> pages = {42, 7, 99, 7, 13};
    for (TraceFormat format : allFormats()) {
        SCOPED_TRACE(toString(format));
        {
            TraceWriter writer(path_.string(), format);
            writer.setFootprint(pages);
            MemOpDesc op;
            op.vaddr = 0x1000;
            writer.append(op);
        }
        auto reader = TraceReader::open(path_.string());
        EXPECT_EQ(reader->footprintPages(), pages);
    }
}

TEST_F(TraceTest, FootprintDerivedWhenUnset)
{
    // A writer that never declared a footprint still replays with a
    // usable (sorted, unique) footprint derived from the records.
    for (TraceFormat format : allFormats()) {
        SCOPED_TRACE(toString(format));
        {
            TraceWriter writer(path_.string(), format);
            MemOpDesc op;
            for (std::uint64_t vaddr :
                 {3 * kPageSize + 8, 1 * kPageSize, 3 * kPageSize}) {
                op.vaddr = vaddr;
                writer.append(op);
            }
        }
        auto reader = TraceReader::open(path_.string());
        const std::vector<std::uint64_t> expected = {1, 3};
        EXPECT_EQ(reader->footprintPages(), expected);
    }
}

TEST_F(TraceTest, FootprintMatchesSource)
{
    StreamGen gen(profiles::uniformTest(1 << 20), 0x4000000, 9, 0);
    {
        TraceWriter writer(path_.string());
        writer.setFootprint(gen.footprintPages());
        writer.record(gen, 2000);
    }
    auto reader = TraceReader::open(path_.string());
    EXPECT_EQ(reader->footprintPages(), gen.footprintPages());
}

TEST_F(TraceTest, FormatForPathFollowsExtension)
{
    EXPECT_EQ(traceFormatForPath("a/b/x.trace"), TraceFormat::Binary);
    EXPECT_EQ(traceFormatForPath("x.bin"), TraceFormat::Binary);
    EXPECT_EQ(traceFormatForPath("x.txt"), TraceFormat::Text);
    EXPECT_EQ(traceFormatForPath("x.trace.txt"), TraceFormat::Text);
    EXPECT_EQ(traceFormatForPath("x.gz"), TraceFormat::Gzip);
    EXPECT_EQ(traceFormatForPath("x.trace.gz"), TraceFormat::Gzip);
}

TEST_F(TraceTest, OpenSniffsContentNotExtension)
{
    // A text trace behind a ".trace" name still opens as text, and a
    // binary trace behind ".txt" as binary: open() sniffs bytes.
    MemOpDesc op;
    op.vaddr = 0xabcd;
    {
        TraceWriter writer(path_.string(), TraceFormat::Text);
        writer.append(op);
    }
    auto as_text = TraceReader::open(path_.string());
    EXPECT_EQ(as_text->format(), TraceFormat::Text);
    EXPECT_EQ(as_text->next().vaddr, 0xabcdu);

    {
        TraceWriter writer(pathWithExt(".txt"), TraceFormat::Binary);
        writer.append(op);
    }
    auto as_binary = TraceReader::open(pathWithExt(".txt"));
    EXPECT_EQ(as_binary->format(), TraceFormat::Binary);
    EXPECT_EQ(as_binary->next().vaddr, 0xabcdu);
}

TEST_F(TraceTest, TextAndGzipMatchBinary)
{
    // Same generator, three encodings: the decoded streams must agree
    // record for record (text is the lossy-looking one: decimal
    // serialization must still be exact for 64-bit addresses).
    std::vector<MemOpDesc> ops;
    {
        StreamGen gen(profiles::byName("mcf"), 0x7fff00000000ULL, 11, 3);
        for (int i = 0; i < 1000; ++i)
            ops.push_back(gen.next());
    }
    for (TraceFormat format : allFormats()) {
        SCOPED_TRACE(toString(format));
        {
            TraceWriter writer(path_.string(), format);
            for (const auto& op : ops)
                writer.append(op);
        }
        auto reader = TraceReader::open(path_.string());
        EXPECT_EQ(reader->size(), ops.size());
        expectSameOps(ops, *reader);
    }
}

TEST_F(TraceTest, TextGrammarParsesHexFlagsAndComments)
{
    {
        std::ofstream out(path_);
        out << "# hand-written trace\n"
               "F 16\n"
               "F 2\n"
               "\n"
               "0x10000 3 R\n"
               "65536 0 W B\n"
               "0x2abc 12 W\n";
    }
    auto reader = TraceReader::open(path_.string());
    EXPECT_EQ(reader->format(), TraceFormat::Text);
    EXPECT_EQ(reader->size(), 3u);
    const std::vector<std::uint64_t> footprint = {16, 2};
    EXPECT_EQ(reader->footprintPages(), footprint);

    MemOpDesc op = reader->next();
    EXPECT_EQ(op.vaddr, 0x10000u);
    EXPECT_EQ(op.gap, 3u);
    EXPECT_FALSE(op.write);
    EXPECT_FALSE(op.blocking);
    op = reader->next();
    EXPECT_EQ(op.vaddr, 65536u);
    EXPECT_TRUE(op.write);
    EXPECT_TRUE(op.blocking);
    op = reader->next();
    EXPECT_EQ(op.vaddr, 0x2abcu);
    EXPECT_EQ(op.gap, 12u);
}

TEST_F(TraceTest, MissingFileFatals)
{
    ScopedThrowOnError guard;
    EXPECT_THROW(TraceReader::open("/nonexistent/famsim.trace"),
                 SimError);
}

TEST_F(TraceTest, CorruptMagicFatals)
{
    {
        std::ofstream out(path_);
        out << "not a trace file at all, definitely long enough";
    }
    ScopedThrowOnError guard;
    EXPECT_THROW(TraceReader::open(path_.string()), SimError);
}

TEST_F(TraceTest, TruncatedBinaryFatals)
{
    {
        TraceWriter writer(path_.string());
        StreamGen gen(profiles::byName("mcf"), 0x1000000, 5, 0);
        writer.record(gen, 100);
    }
    // Chop the last record short: the header still claims 100 records.
    fs::resize_file(path_, fs::file_size(path_) - 5);
    ScopedThrowOnError guard;
    EXPECT_THROW(TraceReader::open(path_.string()), SimError);
}

TEST_F(TraceTest, TrailingGarbageFatals)
{
    {
        TraceWriter writer(path_.string());
        StreamGen gen(profiles::byName("mcf"), 0x1000000, 5, 0);
        writer.record(gen, 100);
    }
    {
        std::ofstream out(path_, std::ios::binary | std::ios::app);
        out << "junk";
    }
    ScopedThrowOnError guard;
    EXPECT_THROW(TraceReader::open(path_.string()), SimError);
}

TEST_F(TraceTest, StaleHeaderCountFatals)
{
    // A writer that crashed before close() leaves the placeholder
    // count (0) in the header; the payload bytes are then "trailing"
    // and the reader must refuse rather than replay nothing.
    {
        TraceWriter writer(path_.string());
        StreamGen gen(profiles::byName("mcf"), 0x1000000, 5, 0);
        writer.record(gen, 100);
    }
    for (unsigned char count_lo : {0, 99, 101}) {
        SCOPED_TRACE(static_cast<int>(count_lo));
        patchByte(path_.string(), 12, count_lo); // count u64 LE @12
        ScopedThrowOnError guard;
        EXPECT_THROW(TraceReader::open(path_.string()), SimError);
    }
}

TEST_F(TraceTest, EmptyTraceFatals)
{
    {
        TraceWriter writer(path_.string());
        writer.close();
    }
    ScopedThrowOnError guard;
    EXPECT_THROW(TraceReader::open(path_.string()), SimError);
}

TEST_F(TraceTest, UnsupportedVersionFatals)
{
    {
        TraceWriter writer(path_.string());
        MemOpDesc op;
        writer.append(op);
    }
    patchByte(path_.string(), 11, '9'); // version char after prefix
    ScopedThrowOnError guard;
    EXPECT_THROW(TraceReader::open(path_.string()), SimError);
}

TEST_F(TraceTest, CorruptFlagBitsFatal)
{
    {
        TraceWriter writer(path_.string());
        writer.setFootprint({1});
        MemOpDesc op;
        op.vaddr = kPageSize;
        writer.append(op);
    }
    // Flags byte of the only record is the last byte of the file.
    patchByte(path_.string(), fs::file_size(path_) - 1, 0xff);
    auto reader = TraceReader::open(path_.string());
    ScopedThrowOnError guard;
    EXPECT_THROW(reader->next(), SimError);
}

TEST_F(TraceTest, TextBadLineFatals)
{
    {
        std::ofstream out(path_);
        out << "# famsim-trace text v1\n"
               "0x1000 0 R\n"
               "0x2000 zero W\n"; // bad gap on line 3
    }
    ScopedThrowOnError guard;
    EXPECT_THROW(TraceReader::open(path_.string()), SimError);
    try {
        (void)TraceReader::open(path_.string());
        FAIL() << "expected SimError";
    } catch (const SimError& e) {
        EXPECT_NE(std::string(e.what()).find("line 3"),
                  std::string::npos)
            << e.what();
    }
}

TEST_F(TraceTest, GzipTruncatedFatals)
{
    if (!traceGzipSupported())
        GTEST_SKIP() << "built without zlib";
    {
        TraceWriter writer(path_.string(), TraceFormat::Gzip);
        StreamGen gen(profiles::byName("mcf"), 0x1000000, 5, 0);
        writer.record(gen, 200);
    }
    // Cut mid-deflate-stream (chopping only the 8-byte gzip trailer
    // can still inflate completely); the open-time validation scan
    // must hit the short read.
    fs::resize_file(path_, fs::file_size(path_) / 2);
    ScopedThrowOnError guard;
    EXPECT_THROW(TraceReader::open(path_.string()), SimError);
}

TEST_F(TraceTest, V1BinaryTracesStillRead)
{
    // Hand-craft a legacy v1 file: magic, u64 count, records — no
    // footprint section; the reader derives one by scanning.
    {
        std::ofstream out(path_, std::ios::binary);
        out.write("FAMSIMTRACE1", 12);
        std::uint64_t count = 2;
        out.write(reinterpret_cast<const char*>(&count), 8);
        const struct {
            std::uint64_t vaddr;
            std::uint32_t gap;
            std::uint8_t flags;
        } records[2] = {{5 * kPageSize, 7, 1}, {2 * kPageSize, 0, 0}};
        for (const auto& r : records) {
            out.write(reinterpret_cast<const char*>(&r.vaddr), 8);
            out.write(reinterpret_cast<const char*>(&r.gap), 4);
            out.write(reinterpret_cast<const char*>(&r.flags), 1);
        }
    }
    auto reader = TraceReader::open(path_.string());
    EXPECT_EQ(reader->size(), 2u);
    const std::vector<std::uint64_t> derived = {2, 5};
    EXPECT_EQ(reader->footprintPages(), derived);
    MemOpDesc op = reader->next();
    EXPECT_EQ(op.vaddr, 5 * kPageSize);
    EXPECT_EQ(op.gap, 7u);
    EXPECT_TRUE(op.write);
    EXPECT_EQ(reader->next().vaddr, 2 * kPageSize);
}

TEST_F(TraceTest, WriteErrorFatalsInsteadOfReportingSuccess)
{
    // /dev/full returns ENOSPC on write: the writer must fatal, not
    // close "successfully" over a truncated trace.
    if (!fs::exists("/dev/full"))
        GTEST_SKIP() << "no /dev/full on this system";
    ScopedThrowOnError guard;
    EXPECT_THROW(
        {
            TraceWriter writer("/dev/full", TraceFormat::Binary);
            MemOpDesc op;
            for (int i = 0; i < 100000; ++i)
                writer.append(op);
            writer.close();
        },
        SimError);
}

TEST_F(TraceTest, FootprintAfterFirstAppendAsserts)
{
    TraceWriter writer(path_.string());
    MemOpDesc op;
    writer.append(op);
    ScopedThrowOnError guard;
    EXPECT_THROW(writer.setFootprint({1}), SimError);
}

TEST_F(TraceTest, RecordingWorkloadIsTransparent)
{
    // The wrapper must hand through the exact stream and footprint of
    // the inner generator, and the trace it leaves behind must replay
    // the consumed prefix.
    const StreamProfile profile = profiles::byName("mcf");
    StreamGen reference(profile, 0x1000000, 21, 2);
    std::vector<MemOpDesc> expected;
    for (int i = 0; i < 300; ++i)
        expected.push_back(reference.next());

    {
        RecordingWorkload recording(
            std::make_unique<StreamGen>(profile, 0x1000000, 21, 2),
            path_.string(), TraceFormat::Binary);
        EXPECT_EQ(recording.footprintPages(),
                  reference.footprintPages());
        for (int i = 0; i < 300; ++i) {
            MemOpDesc got = recording.next();
            EXPECT_EQ(got.vaddr, expected[i].vaddr);
            EXPECT_EQ(got.gap, expected[i].gap);
        }
    }
    auto reader = TraceReader::open(path_.string());
    EXPECT_EQ(reader->size(), 300u);
    EXPECT_EQ(reader->footprintPages(), reference.footprintPages());
    expectSameOps(expected, *reader);
}

TEST_F(TraceTest, ScenarioRecordReplayRoundTripsBitIdentically)
{
    // The acceptance contract of the trace frontend: running a
    // scenario, recording it, and replaying the recording all export
    // byte-identical stats JSON.
    Scenario scenario;
    scenario.name = "test.trace_roundtrip";
    scenario.figure = "test";
    scenario.headlineMetric = "ipc";
    scenario.config = makeConfig(profiles::uniformTest(4ull << 20),
                                 ArchKind::DeactN, 4000);
    scenario.config.nodes = 1;
    scenario.config.coresPerNode = 2;
    scenario.config.seed = 3;

    const std::string dir = pathWithExt(".dir");
    const std::string synthetic = runScenarioJson(scenario);
    const std::string recorded = recordScenarioTraces(scenario, dir);
    const std::string replayed = replayScenarioJson(scenario, dir);
    EXPECT_EQ(synthetic, recorded);
    EXPECT_EQ(synthetic, replayed);

    // The text round trip must be exact too (decimal serialization).
    const std::string text_dir = pathWithExt(".txtdir");
    const std::string recorded_text =
        recordScenarioTraces(scenario, text_dir, TraceFormat::Text);
    const std::string replayed_text =
        replayScenarioJson(scenario, text_dir);
    EXPECT_EQ(synthetic, recorded_text);
    EXPECT_EQ(synthetic, replayed_text);
    std::error_code ec;
    fs::remove_all(text_dir, ec);
}

} // namespace
} // namespace famsim
