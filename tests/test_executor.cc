/**
 * @file
 * SweepExecutor and System::reset() pins.
 *
 * The executor's contract is byte-identical output for every job
 * count, with System reuse as a pure wall-clock optimization. These
 * tests pin the three load-bearing claims: slots come back in
 * submission order (not completion order), fresh-vs-reset Systems
 * produce bit-identical statistics, and a throwing point surfaces on
 * the calling thread without killing its siblings.
 */

#include <atomic>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "harness/executor.hh"
#include "harness/runner.hh"
#include "harness/scenario.hh"
#include "harness/sweep.hh"
#include "sim/logging.hh"

using namespace famsim;

namespace {

/**
 * A budget-trimmed copy of a paper sweep: same base and axis, every
 * point capped at @p instr instructions and the axis cut to
 * @p max_points. Identity across job counts holds for any budget, so
 * the cheap copy keeps the every-sweep matrix affordable on each
 * ctest run (the full-budget export is pinned separately on fig14,
 * the cheapest sweep).
 */
Sweep
trimmedSweep(const std::string& name, std::uint64_t instr,
             std::size_t max_points)
{
    Sweep sweep = SweepRegistry::paper().byName(name);
    if (sweep.axis.points.size() > max_points)
        sweep.axis.points.resize(max_points);
    for (auto& p : sweep.axis.points) {
        auto inner = p.apply;
        p.apply = [inner, instr](SystemConfig& c) {
            inner(c);
            c.core.instructionLimit = instr;
        };
    }
    return sweep;
}

} // namespace

TEST(SweepExecutor, ZeroJobsClampsToOne)
{
    SweepExecutor executor(0);
    EXPECT_EQ(executor.jobs(), 1u);
    EXPECT_EQ(SweepExecutor(8).jobs(), 8u);
}

TEST(SweepExecutor, ForEachRunsEveryTaskIntoItsSlot)
{
    for (unsigned jobs : {1u, 2u, 8u}) {
        SweepExecutor executor(jobs);
        std::vector<std::size_t> slots(97, 0);
        std::atomic<std::size_t> ran{0};
        executor.forEach(slots.size(), [&](std::size_t task) {
            slots[task] = task + 1;
            ran.fetch_add(1, std::memory_order_relaxed);
        });
        EXPECT_EQ(ran.load(), slots.size()) << "jobs=" << jobs;
        for (std::size_t i = 0; i < slots.size(); ++i)
            ASSERT_EQ(slots[i], i + 1) << "jobs=" << jobs;
    }
}

TEST(SweepExecutor, ForEachRethrowsTheLowestSlotException)
{
    SweepExecutor executor(4);
    std::atomic<std::size_t> ran{0};
    try {
        executor.forEach(16, [&](std::size_t task) {
            if (task == 11 || task == 3)
                throw std::runtime_error("boom " + std::to_string(task));
            ran.fetch_add(1, std::memory_order_relaxed);
        });
        FAIL() << "forEach swallowed the task exceptions";
    } catch (const std::runtime_error& e) {
        EXPECT_STREQ(e.what(), "boom 3");
    }
    // Sibling tasks keep running; only the two throwers are missing.
    EXPECT_EQ(ran.load(), 14u);
}

TEST(SweepExecutor, ConstructionFailureOnWorkerSurfacesOnCaller)
{
    // translator.cacheBytes > os.reservedLocalBytes trips a finalize
    // assertion inside the worker-side System construction; the
    // executor must carry it back to the calling thread (the logging
    // moderation depths are process-wide, so ScopedThrowOnError held
    // here governs the workers too).
    SystemConfig good =
        makeConfig(profiles::byName("mcf"), ArchKind::DeactN, 2000);
    SystemConfig bad = good;
    bad.translator.cacheBytes = bad.os.reservedLocalBytes + 1;
    ScopedThrowOnError throw_on_error;
    ScopedQuietLogs quiet;
    SweepExecutor executor(2);
    EXPECT_THROW(
        { (void)executor.runResults({good, bad}, 0); }, SimError);
}

TEST(SweepExecutor, RunResultsMatchesRunOne)
{
    std::vector<SystemConfig> configs;
    for (ArchKind arch : {ArchKind::IFam, ArchKind::DeactN})
        configs.push_back(
            makeConfig(profiles::byName("mcf"), arch, 4000));
    ScopedQuietLogs quiet;
    SweepExecutor executor(2);
    const std::vector<RunResult> pooled = executor.runResults(configs, 0);
    ASSERT_EQ(pooled.size(), configs.size());
    for (std::size_t i = 0; i < configs.size(); ++i) {
        const RunResult serial = runOne(configs[i], 0);
        EXPECT_EQ(pooled[i].benchmark, serial.benchmark);
        EXPECT_EQ(pooled[i].arch, serial.arch);
        EXPECT_EQ(pooled[i].ipc, serial.ipc);
        EXPECT_EQ(pooled[i].famRequests, serial.famRequests);
        EXPECT_EQ(pooled[i].famAtRequests, serial.famAtRequests);
    }
}

TEST(SweepExecutor, SweepJsonByteIdenticalAcrossJobCounts)
{
    // Every paper sweep, budget-trimmed (fig16 additionally cut to the
    // paper's 1-8 node range — the 16-64 node extension is covered by
    // the pooled golden-runner test at CI's FAMSIM_SWEEP_JOBS).
    for (const std::string& name : SweepRegistry::paper().names()) {
        const Sweep sweep = trimmedSweep(name, 6000, 4);
        const std::string serial = runSweepJson(sweep, 0, 1);
        for (unsigned jobs : {2u, 8u}) {
            EXPECT_EQ(runSweepJson(sweep, 0, jobs), serial)
                << name << " at jobs=" << jobs;
        }
    }
}

TEST(SweepExecutor, FullBudgetSweepByteIdenticalAcrossJobCounts)
{
    // One sweep at its real pinned budget, so the trimmed matrix above
    // can never mask a budget-dependent divergence. fig14 is the
    // cheapest full sweep (3 points x 24k instructions).
    const Sweep& sweep = SweepRegistry::paper().byName("fig14_acm_size");
    const std::string serial = runSweepJson(sweep, 0, 1);
    EXPECT_EQ(runSweepJson(sweep, 0, 3), serial);
}

TEST(SystemReuse, ResetMatchesFreshConstructionBitForBit)
{
    // The pin behind the whole reuse optimization: running a point on
    // a System reset() from the previous point must leave statistics
    // bit-identical to a fresh System(config) run. fig13 sweeps
    // stu.entries (a rebuilt-cheap knob), so consecutive points are
    // reuse-eligible.
    const Sweep sweep = trimmedSweep("fig13_stu_entries", 6000, 5);
    const std::vector<Scenario> points = sweep.expand();
    ScopedQuietLogs quiet;

    std::vector<std::string> fresh;
    for (const Scenario& point : points) {
        System system(point.config);
        system.run(0);
        fresh.push_back(system.sim().stats().jsonString());
    }

    System reused(points[0].config);
    reused.run(0);
    EXPECT_EQ(reused.sim().stats().jsonString(), fresh[0]);
    for (std::size_t i = 1; i < points.size(); ++i) {
        ASSERT_TRUE(reused.canReuseFor(points[i].config))
            << points[i].name;
        reused.reset(points[i].config);
        reused.run(0);
        EXPECT_EQ(reused.sim().stats().jsonString(), fresh[i])
            << points[i].name;
    }
}

TEST(SystemReuse, ReusableAcrossDrawsTheExpectedLine)
{
    const SystemConfig base =
        makeConfig(profiles::byName("mcf"), ArchKind::DeactN, 6000);

    // Rebuilt-cheap knobs: reusable.
    SystemConfig stu = base;
    stu.stu.entries = 256;
    EXPECT_TRUE(System::reusableAcross(base, stu));
    SystemConfig fabric = base;
    fabric.fabric.latency = 3000 * kNanosecond;
    EXPECT_TRUE(System::reusableAcross(base, fabric));

    // Preserved-state knobs: not reusable.
    SystemConfig seed = base;
    seed.seed = base.seed + 1;
    EXPECT_FALSE(System::reusableAcross(base, seed));
    SystemConfig nodes = base;
    nodes.nodes = 2;
    EXPECT_FALSE(System::reusableAcross(base, nodes));
    SystemConfig acm = base;
    acm.stu.acmBits = 32;
    EXPECT_FALSE(System::reusableAcross(base, acm));
    SystemConfig profile =
        makeConfig(profiles::byName("pf"), ArchKind::DeactN, 6000);
    EXPECT_FALSE(System::reusableAcross(base, profile));

    // Multi-tenant and no-warmup configs never reuse (construction
    // bumps counters that only the warmup reset re-zeroes).
    SystemConfig tenants = base;
    tenants.tenancy.jobs = 2;
    EXPECT_FALSE(System::reusableAcross(base, tenants));
    SystemConfig cold = base;
    cold.warmupFraction = 0.0;
    EXPECT_FALSE(System::reusableAcross(base, cold));
}

TEST(SystemReuse, ExecutorReusesAcrossCompatiblePointsOnly)
{
    ScopedQuietLogs quiet;
    // fig13 (stu.entries) and fig15 (fabric latency) sweep
    // rebuilt-cheap knobs: one build, every later point reused.
    for (const char* name : {"fig13_stu_entries", "fig15_fabric_latency"}) {
        const Sweep sweep = trimmedSweep(name, 4000, 5);
        SweepExecutor executor(1);
        (void)executor.runScenarioJsons(sweep.expand(), 0);
        EXPECT_EQ(executor.systemsBuilt(), 1u) << name;
        EXPECT_EQ(executor.systemsReused(), sweep.axis.points.size() - 1)
            << name;
    }
    // fig14 sweeps the ACM width, which reshapes the preserved FAM/
    // broker state: every point is a fresh build.
    const Sweep acm = trimmedSweep("fig14_acm_size", 4000, 3);
    SweepExecutor executor(1);
    (void)executor.runScenarioJsons(acm.expand(), 0);
    EXPECT_EQ(executor.systemsBuilt(), acm.axis.points.size());
    EXPECT_EQ(executor.systemsReused(), 0u);
}
