/**
 * @file
 * Tests for the node substrate: the trace-driven core (instruction
 * accounting, outstanding window, blocking loads, TLB-walk and
 * page-fault paths) and the memory controller's zone steering.
 */

#include <gtest/gtest.h>

#include <deque>

#include "node/core.hh"
#include "node/mem_ctrl.hh"
#include "test_util.hh"

namespace famsim {
namespace {

using test::StubMemory;

/** A scripted workload: plays back a fixed list of ops, then repeats. */
class ScriptedGen : public WorkloadGen
{
  public:
    explicit ScriptedGen(std::vector<MemOpDesc> ops)
        : ops_(std::move(ops))
    {
    }

    MemOpDesc
    next() override
    {
        MemOpDesc op = ops_[index_ % ops_.size()];
        ++index_;
        return op;
    }

    [[nodiscard]] std::vector<std::uint64_t>
    footprintPages() const override
    {
        std::vector<std::uint64_t> pages;
        for (const auto& op : ops_)
            pages.push_back(op.vaddr / kPageSize);
        return pages;
    }

  private:
    std::vector<MemOpDesc> ops_;
    std::size_t index_ = 0;
};

class CoreTest : public ::testing::Test
{
  protected:
    void
    build(std::vector<MemOpDesc> ops, CoreParams params = {})
    {
        NodeOsParams osp;
        osp.localBytes = 1ull << 24;
        osp.reservedLocalBytes = 1ull << 20;
        osp.famZoneBytes = 1ull << 28;
        osp.localFraction = 1.0; // keep everything local for unit tests
        osp.faultLatency = 100 * kNanosecond;
        os_ = std::make_unique<NodeOs>(sim_, "os", osp,
                                       FamMode::Indirect, 0, nullptr);
        gen_ = std::make_unique<ScriptedGen>(std::move(ops));
        tlb_ = std::make_unique<TwoLevelTlb>(sim_, "tlb",
                                             TwoLevelTlb::Params{});
        ptw_ = std::make_unique<PtwCache>(sim_, "ptw", 32, 4);
        mem_ = std::make_unique<StubMemory>(sim_, 20 * kNanosecond);
        walker_ = std::make_unique<NodePtWalker>(
            sim_, "walker", os_->pageTable(), *ptw_, *mem_, 0, 0);
        core_ = std::make_unique<Core>(sim_, "core", params, 0, 0, 0,
                                       *gen_, *tlb_, *walker_, *mem_,
                                       *os_);
    }

    Simulation sim_;
    std::unique_ptr<NodeOs> os_;
    std::unique_ptr<ScriptedGen> gen_;
    std::unique_ptr<TwoLevelTlb> tlb_;
    std::unique_ptr<PtwCache> ptw_;
    std::unique_ptr<StubMemory> mem_;
    std::unique_ptr<NodePtWalker> walker_;
    std::unique_ptr<Core> core_;
};

TEST_F(CoreTest, RetiresExactlyTheInstructionLimit)
{
    CoreParams params;
    params.instructionLimit = 1000;
    build({MemOpDesc{0x1000, false, 3, false}}, params);
    bool finished = false;
    core_->start([&] { finished = true; });
    sim_.run();
    EXPECT_TRUE(finished);
    EXPECT_EQ(core_->instructionsRetired(), 1000u);
}

TEST_F(CoreTest, FaultsOnceThenReusesTheMapping)
{
    CoreParams params;
    params.instructionLimit = 400;
    build({MemOpDesc{0x5000, false, 1, false}}, params);
    core_->start([] {});
    sim_.run();
    EXPECT_DOUBLE_EQ(sim_.stats().get("core.page_faults"), 1.0);
    // After the first touch the TLB holds the translation.
    EXPECT_DOUBLE_EQ(sim_.stats().get("core.tlb_walks"), 1.0);
}

TEST_F(CoreTest, DistinctPagesCauseDistinctWalks)
{
    CoreParams params;
    params.instructionLimit = 100;
    std::vector<MemOpDesc> ops;
    for (std::uint64_t p = 0; p < 8; ++p)
        ops.push_back(MemOpDesc{0x100000 + p * kPageSize, false, 2,
                                false});
    build(ops, params);
    core_->start([] {});
    sim_.run();
    EXPECT_DOUBLE_EQ(sim_.stats().get("core.page_faults"), 8.0);
}

TEST_F(CoreTest, BlockingLoadsSerializeTime)
{
    // Two scripts of equal length; the blocking one must take longer.
    CoreParams params;
    params.instructionLimit = 500;

    build({MemOpDesc{0x1000, false, 1, false}}, params);
    core_->start([] {});
    sim_.run();
    Tick nonblocking_time = core_->localTime();

    sim_.stats().resetAll();
    build({MemOpDesc{0x1000, false, 1, true}}, params);
    core_->start([] {});
    sim_.run();
    Tick blocking_time = core_->localTime();

    EXPECT_GT(blocking_time, nonblocking_time);
    EXPECT_GT(sim_.stats().get("core.blocking_stalls"), 0.0);
}

TEST_F(CoreTest, WindowLimitThrottlesOutstanding)
{
    CoreParams params;
    params.instructionLimit = 3000;
    params.maxOutstanding = 2;
    build({MemOpDesc{0x1000, false, 0, false}}, params);
    core_->start([] {});
    sim_.run();
    EXPECT_GT(sim_.stats().get("core.window_stalls"), 0.0);
}

TEST_F(CoreTest, IpcIsPositiveAndBounded)
{
    CoreParams params;
    params.instructionLimit = 2000;
    params.issueWidth = 2;
    build({MemOpDesc{0x1000, false, 9, false}}, params);
    core_->start([] {});
    sim_.run();
    EXPECT_GT(core_->ipc(), 0.0);
    EXPECT_LE(core_->ipc(), 2.0); // can never beat the issue width
}

TEST_F(CoreTest, PhaseCallbackFiresOnce)
{
    CoreParams params;
    params.instructionLimit = 1000;
    build({MemOpDesc{0x1000, false, 4, false}}, params);
    int fired = 0;
    core_->addPhaseCallback(500, [&] { ++fired; });
    core_->start([] {});
    sim_.run();
    EXPECT_EQ(fired, 1);
}

TEST_F(CoreTest, MarkWindowRestartsIpcAccounting)
{
    CoreParams params;
    params.instructionLimit = 1000;
    build({MemOpDesc{0x1000, false, 4, false}}, params);
    core_->addPhaseCallback(500, [this] { core_->markWindow(); });
    core_->start([] {});
    sim_.run();
    // IPC accounted over roughly the second half only.
    EXPECT_GT(core_->ipc(), 0.0);
}

// --------------------------------------------------------- mem controller

TEST(MemController, SteersByZoneAndFamDirect)
{
    Simulation sim;
    NodeOsParams osp;
    osp.localBytes = 1ull << 24;
    osp.reservedLocalBytes = 1ull << 20;
    osp.famZoneBytes = 1ull << 28;
    NodeOs os(sim, "os", osp, FamMode::Indirect, 0, nullptr);
    BankedMemoryParams dp;
    dp.frontendLatency = 0;
    BankedMemory dram(sim, "dram", dp);
    test::StubMemory fam_path(sim, 1);
    MemController ctrl(sim, "memctrl", os, dram, fam_path);

    // Local-zone access -> DRAM.
    auto local = test::dataRead(0x1000);
    local->onDone = [](Packet&) {};
    ctrl.access(local);
    sim.run();
    EXPECT_DOUBLE_EQ(sim.stats().get("dram.reads"), 1.0);
    EXPECT_EQ(fam_path.accesses, 0u);

    // FAM-zone access -> FAM path, untranslated.
    auto fam = test::dataRead(osp.localBytes + 0x2000);
    fam->onDone = [](Packet&) {};
    ctrl.access(fam);
    sim.run();
    EXPECT_EQ(fam_path.accesses, 1u);

    // E-FAM direct mapping -> FAM path with the FAM address unwrapped.
    auto direct = test::dataRead((0x77ull | kFamDirectPageBit) *
                                     kPageSize +
                                 0x10);
    bool has_fam = false;
    FamAddr fam_addr;
    direct->onDone = [&](Packet& p) {
        has_fam = p.hasFam;
        fam_addr = p.fam;
    };
    ctrl.access(direct);
    sim.run();
    EXPECT_EQ(fam_path.accesses, 2u);
    EXPECT_TRUE(has_fam);
    EXPECT_EQ(fam_addr.value(), 0x77ull * kPageSize + 0x10);
}

} // namespace
} // namespace famsim
