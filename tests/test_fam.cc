/**
 * @file
 * Tests for the FAM substrate: layout geometry, ACM codec (across the
 * 8/16/32-bit widths of Fig. 14), shared-region bitmaps, media routing
 * and the memory broker.
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "fabric/fabric_link.hh"
#include "fam/acm.hh"
#include "fam/broker.hh"
#include "fam/fam_media.hh"
#include "sim/logging.hh"
#include "test_util.hh"

namespace famsim {
namespace {

// ---------------------------------------------------------------- layout

TEST(FamLayout, RegionsArePagedAndOrdered)
{
    FamLayout layout(16ull << 30, 16);
    EXPECT_EQ(layout.usableBytes() % kPageSize, 0u);
    EXPECT_LT(layout.usableBytes(), layout.capacityBytes());
    EXPECT_EQ(layout.acmBase(), layout.usableBytes());
    EXPECT_GT(layout.bitmapBase(), layout.acmBase());
    // < 0.1 % metadata overhead for 16-bit ACM (paper claim).
    double overhead =
        1.0 - static_cast<double>(layout.usableBytes()) /
                  static_cast<double>(layout.capacityBytes());
    EXPECT_LT(overhead, 0.001 + 16.0 / (8 * 4096.0));
}

TEST(FamLayout, AcmAddressDerivesFromPageAlone)
{
    // The paper's key property: ACM of page X lives at
    // MTAdd + X * entryBytes (Fig. 5), derivable from X only.
    FamLayout layout(16ull << 30, 16);
    EXPECT_EQ(layout.acmAddrForPage(0).value(), layout.acmBase());
    EXPECT_EQ(layout.acmAddrForPage(100).value(),
              layout.acmBase() + 200);
    // One 64 B block covers 32 pages of 16-bit metadata.
    EXPECT_EQ(layout.pagesPerAcmBlock(), 32u);
    EXPECT_EQ(layout.acmBlockForPage(0), layout.acmBlockForPage(31));
    EXPECT_NE(layout.acmBlockForPage(0), layout.acmBlockForPage(32));
}

class FamLayoutWidthTest : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(FamLayoutWidthTest, PagesPerBlockMatchesWidth)
{
    FamLayout layout(16ull << 30, GetParam());
    EXPECT_EQ(layout.pagesPerAcmBlock(), 64u * 8 / GetParam());
}

TEST_P(FamLayoutWidthTest, BitmapAddressesPerRegion)
{
    FamLayout layout(16ull << 30, GetParam());
    // 8 KB of bitmap per 1 GB region; node bit addressing.
    EXPECT_EQ(layout.bitmapAddrFor(0, 0).value(), layout.bitmapBase());
    EXPECT_EQ(layout.bitmapAddrFor(1, 0).value(),
              layout.bitmapBase() + FamLayout::kBitmapBytesPerRegion);
    EXPECT_EQ(layout.bitmapAddrFor(0, 16).value(),
              layout.bitmapBase() + 2);
}

INSTANTIATE_TEST_SUITE_P(Widths, FamLayoutWidthTest,
                         ::testing::Values(8u, 16u, 32u));

TEST(FamLayout, RegionOfPage)
{
    std::uint64_t pages_per_gb = kLargePageSize / kPageSize;
    EXPECT_EQ(FamLayout::regionOf(0), 0u);
    EXPECT_EQ(FamLayout::regionOf(pages_per_gb - 1), 0u);
    EXPECT_EQ(FamLayout::regionOf(pages_per_gb), 1u);
}

// ------------------------------------------------------------------- acm

class AcmWidthTest : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(AcmWidthTest, EncodeDecodeRoundTrips)
{
    AcmStore acm(GetParam());
    for (std::uint32_t owner :
         {0u, 1u, acm.maxNodes() / 2, acm.maxNodes()}) {
        for (std::uint8_t perms = 0; perms < 4; ++perms) {
            AcmEntry entry{owner, perms};
            EXPECT_EQ(acm.decode(acm.encode(entry)), entry);
        }
    }
}

TEST_P(AcmWidthTest, NodeIdCapacityMatchesWidth)
{
    AcmStore acm(GetParam());
    EXPECT_EQ(acm.nodeIdBits(), GetParam() - 2);
    EXPECT_EQ(acm.sharedMarker(), (1u << (GetParam() - 2)) - 1);
    // 16-bit ACM supports 16383 nodes (paper: shared marker reserved).
    if (GetParam() == 16) {
        EXPECT_EQ(acm.sharedMarker(), 16383u);
    }
}

TEST_P(AcmWidthTest, OverflowingNodeIdPanics)
{
    ScopedThrowOnError guard;
    AcmStore acm(GetParam());
    EXPECT_THROW(acm.set(0, AcmEntry{acm.sharedMarker() + 1, 0}),
                 SimError);
}

INSTANTIATE_TEST_SUITE_P(Widths, AcmWidthTest,
                         ::testing::Values(8u, 16u, 32u));

TEST(AcmStore, SetGetClear)
{
    AcmStore acm(16);
    acm.set(42, AcmEntry{7, 2});
    EXPECT_EQ(acm.get(42), (AcmEntry{7, 2}));
    EXPECT_EQ(acm.get(43), (AcmEntry{0, 0})); // default: node 0, none
    acm.clear(42);
    EXPECT_EQ(acm.get(42), (AcmEntry{0, 0}));
}

TEST(AcmStore, SharedMarkerAndBitmap)
{
    AcmStore acm(16);
    acm.markShared(100, Perms{true, false, false}.encode2b());
    EXPECT_EQ(acm.get(100).owner, acm.sharedMarker());

    acm.grantRegion(0, 3, Perms{true, true, false});
    acm.grantRegion(0, 5, Perms{true, false, false});
    EXPECT_TRUE(acm.regionAllows(0, 3));
    EXPECT_TRUE(acm.regionAllows(0, 5));
    EXPECT_FALSE(acm.regionAllows(0, 4));
    EXPECT_TRUE(acm.regionPerms(0, 3).w);
    EXPECT_FALSE(acm.regionPerms(0, 5).w);
    acm.revokeRegion(0, 3);
    EXPECT_FALSE(acm.regionAllows(0, 3));
}

TEST(AcmStore, OwnershipQueriesAndReassign)
{
    AcmStore acm(16);
    acm.set(1, AcmEntry{7, 3});
    acm.set(2, AcmEntry{7, 3});
    acm.set(3, AcmEntry{8, 3});
    auto owned = acm.pagesOwnedBy(7);
    EXPECT_EQ(owned.size(), 2u);
    EXPECT_EQ(acm.reassignOwner(7, 9), 2u);
    EXPECT_TRUE(acm.pagesOwnedBy(7).empty());
    EXPECT_EQ(acm.pagesOwnedBy(9).size(), 2u);
    EXPECT_EQ(acm.get(3).owner, 8u);
}

// ----------------------------------------------------------------- media

TEST(FamMedia, RoutesByInterleaveAndCountsKinds)
{
    Simulation sim;
    FamMediaParams params;
    params.modules = 4;
    params.capacityBytes = 4ull << 30;
    FamMedia media(sim, "fam", params);

    auto mk = [&](std::uint64_t addr, PacketKind kind) {
        auto pkt = makePacket(0, 0, MemOp::Read, kind);
        pkt->fam = FamAddr(addr);
        pkt->hasFam = true;
        pkt->onDone = [](Packet&) {};
        media.access(pkt);
    };
    mk(0, PacketKind::Data);
    mk(kPageSize, PacketKind::FamPtw);
    mk(2 * kPageSize, PacketKind::Acm);
    mk(3 * kPageSize, PacketKind::Bitmap);
    sim.run();

    EXPECT_EQ(media.totalRequests(), 4u);
    EXPECT_EQ(media.atRequests(), 3u);
    for (unsigned m = 0; m < 4; ++m) {
        EXPECT_DOUBLE_EQ(sim.stats().get("fam.module" + std::to_string(m) +
                                         ".reads"),
                         1.0);
    }
}

TEST(FamMedia, UnmappedDataPacketPanics)
{
    ScopedThrowOnError guard;
    Simulation sim;
    FamMedia media(sim, "fam", {});
    auto pkt = makePacket(0, 0, MemOp::Read, PacketKind::Data);
    pkt->hasFam = false;
    EXPECT_THROW(media.access(pkt), SimError);
}

// ---------------------------------------------------------------- broker

class BrokerTest : public ::testing::Test
{
  protected:
    BrokerTest()
        : layout_(16ull << 30, 16, 2ull << 30),
          acm_(16),
          broker_(sim_, "broker", BrokerParams{}, layout_, acm_, nullptr)
    {
        broker_.registerNode(0);
        broker_.registerNode(1);
    }

    Simulation sim_;
    FamLayout layout_;
    AcmStore acm_;
    MemoryBroker broker_;
};

TEST_F(BrokerTest, LogicalIdsAreDistinct)
{
    EXPECT_NE(broker_.logicalIdOf(0), broker_.logicalIdOf(1));
}

TEST_F(BrokerTest, AllocationsAreUniqueAndScattered)
{
    std::set<std::uint64_t> pages;
    std::uint64_t max_page = 0;
    for (int i = 0; i < 4096; ++i) {
        std::uint64_t page = broker_.allocPage(0, Perms{});
        EXPECT_TRUE(pages.insert(page).second) << "double allocation";
        max_page = std::max(max_page, page);
    }
    // Scattered: the pages span far more than 4096 consecutive slots.
    EXPECT_GT(max_page, 100000u);
    // And stay out of the shared reserve at the top.
    std::uint64_t reserve_base =
        layout_.usablePages() - layout_.sharedReservePages();
    EXPECT_LT(max_page, reserve_base);
}

TEST_F(BrokerTest, AllocSetsAcmOwnership)
{
    std::uint64_t page = broker_.allocPage(broker_.logicalIdOf(1),
                                           Perms{true, true, false});
    AcmEntry entry = acm_.get(page);
    EXPECT_EQ(entry.owner, broker_.logicalIdOf(1));
    EXPECT_EQ(entry.permBits, 2);
}

TEST_F(BrokerTest, HandleUnmappedMapsAfterServiceLatency)
{
    std::uint64_t got = ~0ull;
    Tick done_at = 0;
    broker_.handleUnmapped(0, 0x42, [&](std::uint64_t page) {
        got = page;
        done_at = sim_.curTick();
    });
    sim_.run();
    EXPECT_NE(got, ~0ull);
    EXPECT_GE(done_at, broker_.params().serviceLatency);
    auto leaf = broker_.famTableOf(0).lookup(0x42);
    ASSERT_TRUE(leaf.has_value());
    EXPECT_EQ(leaf->valuePage, got);
    EXPECT_EQ(acm_.get(got).owner, broker_.logicalIdOf(0));
}

TEST_F(BrokerTest, SharedRegionGrantsAndMapping)
{
    std::uint64_t region = broker_.createSharedRegion(
        {{0, Perms{true, true, false}}, {1, Perms{true, false, false}}});
    std::uint64_t fam_page = broker_.mapSharedPage(region, 0, 0x100);
    broker_.attachSharedPage(fam_page, 1, 0x200);

    EXPECT_EQ(acm_.get(fam_page).owner, acm_.sharedMarker());
    EXPECT_TRUE(acm_.regionAllows(region, broker_.logicalIdOf(0)));
    EXPECT_TRUE(acm_.regionAllows(region, broker_.logicalIdOf(1)));
    EXPECT_TRUE(acm_.regionPerms(region, broker_.logicalIdOf(0)).w);
    EXPECT_FALSE(acm_.regionPerms(region, broker_.logicalIdOf(1)).w);
    EXPECT_EQ(broker_.famTableOf(0).lookup(0x100)->valuePage, fam_page);
    EXPECT_EQ(broker_.famTableOf(1).lookup(0x200)->valuePage, fam_page);
}

TEST_F(BrokerTest, MigrationWithAcmRewrite)
{
    NodeId logical0 = broker_.logicalIdOf(0);
    for (int i = 0; i < 10; ++i) {
        std::uint64_t page = broker_.allocPage(logical0, Perms{});
        broker_.famTableOf(0).map(0x1000 + static_cast<unsigned>(i),
                                  page, Perms{});
    }
    int invalidations = 0;
    broker_.addInvalidateListener([&](NodeId) { ++invalidations; });

    auto report = broker_.migrateJob(0, 1, /*use_logical_ids=*/false);
    EXPECT_EQ(report.pagesMoved, 10u);
    EXPECT_EQ(report.acmWrites, 10u);
    EXPECT_FALSE(report.usedLogicalIds);
    EXPECT_EQ(invalidations, 2); // both nodes shot down
    // The destination now owns the pages under *its* logical id.
    EXPECT_EQ(acm_.pagesOwnedBy(broker_.logicalIdOf(1)).size(), 10u);
    EXPECT_TRUE(acm_.pagesOwnedBy(logical0).empty());
    // Mappings moved wholesale to node 1's table.
    EXPECT_TRUE(broker_.famTableOf(1).lookup(0x1000).has_value());
}

TEST_F(BrokerTest, MigrationWithLogicalIdsTouchesNoAcm)
{
    NodeId logical0 = broker_.logicalIdOf(0);
    for (int i = 0; i < 10; ++i)
        broker_.allocPage(logical0, Perms{});

    auto report = broker_.migrateJob(0, 1, /*use_logical_ids=*/true);
    EXPECT_EQ(report.acmWrites, 0u);
    EXPECT_TRUE(report.usedLogicalIds);
    // The logical id followed the job to node 1.
    EXPECT_EQ(broker_.logicalIdOf(1), logical0);
    EXPECT_NE(broker_.logicalIdOf(0), logical0);
    EXPECT_EQ(acm_.pagesOwnedBy(logical0).size(), 10u);
}

TEST_F(BrokerTest, MigrationToUnregisteredNodeRegistersIt)
{
    // Regression: migrating onto a node that never faulted used to
    // default-construct a null table in the famTables_ swap, which
    // famTableOf() then dereferenced.
    NodeId logical0 = broker_.logicalIdOf(0);
    broker_.allocPage(logical0, Perms{});
    broker_.famTableOf(0).map(0x1000, 0x42, Perms{});

    auto report = broker_.migrateJob(0, 7, /*use_logical_ids=*/true);
    EXPECT_EQ(report.pagesMoved, 1u);
    EXPECT_EQ(broker_.logicalIdOf(7), logical0);
    // The table followed the job and is usable on the new node.
    EXPECT_TRUE(broker_.famTableOf(7).lookup(0x1000).has_value());
    EXPECT_EQ(broker_.famTableOf(7).lookup(0x1000)->valuePage, 0x42u);
    EXPECT_EQ(broker_.famTableOf(0).mappings(), 0u);
}

TEST_F(BrokerTest, MigrationWithAcmRewriteToUnregisteredNode)
{
    NodeId logical0 = broker_.logicalIdOf(0);
    for (int i = 0; i < 3; ++i)
        broker_.allocPage(logical0, Perms{});

    auto report = broker_.migrateJob(0, 9, /*use_logical_ids=*/false);
    EXPECT_EQ(report.pagesMoved, 3u);
    EXPECT_EQ(report.acmWrites, 3u);
    // The target got a fresh logical id and now owns the pages.
    EXPECT_EQ(acm_.pagesOwnedBy(broker_.logicalIdOf(9)).size(), 3u);
    EXPECT_TRUE(acm_.pagesOwnedBy(logical0).empty());
}

TEST_F(BrokerTest, RepeatedMigrationsBounceAndSettle)
{
    // The migration-storm pattern: a logical bounce there and back,
    // then a physical-id move. Ownership, logical ids and the
    // system-level table must stay coherent through the whole chain.
    NodeId logical0 = broker_.logicalIdOf(0);
    for (int i = 0; i < 5; ++i) {
        std::uint64_t page = broker_.allocPage(logical0, Perms{});
        broker_.famTableOf(0).map(0x2000 + static_cast<unsigned>(i),
                                  page, Perms{});
    }

    auto bounce_out = broker_.migrateJob(0, 1, /*use_logical_ids=*/true);
    EXPECT_EQ(bounce_out.pagesMoved, 5u);
    EXPECT_EQ(broker_.logicalIdOf(1), logical0);
    EXPECT_TRUE(broker_.famTableOf(1).lookup(0x2000).has_value());

    auto bounce_back = broker_.migrateJob(1, 0, /*use_logical_ids=*/true);
    EXPECT_EQ(bounce_back.pagesMoved, 5u);
    EXPECT_EQ(bounce_back.acmWrites, 0u);
    // The job's logical id came home; the ACM never moved.
    EXPECT_EQ(broker_.logicalIdOf(0), logical0);
    EXPECT_EQ(acm_.pagesOwnedBy(logical0).size(), 5u);
    EXPECT_TRUE(broker_.famTableOf(0).lookup(0x2004).has_value());
    EXPECT_EQ(broker_.famTableOf(1).mappings(), 0u);

    auto physical = broker_.migrateJob(0, 1, /*use_logical_ids=*/false);
    EXPECT_EQ(physical.pagesMoved, 5u);
    EXPECT_EQ(physical.acmWrites, 5u);
    // Now the ACM entries really were rewritten to node 1's id.
    EXPECT_TRUE(acm_.pagesOwnedBy(logical0).empty());
    EXPECT_EQ(acm_.pagesOwnedBy(broker_.logicalIdOf(1)).size(), 5u);
    EXPECT_TRUE(broker_.famTableOf(1).lookup(0x2000).has_value());
}

TEST(BrokerMedia, MigrationEmitsAcmTrafficAmidInFlightRequests)
{
    // A physical migration while data requests are in flight at the
    // media: the ACM rewrite traffic lands on top of the outstanding
    // accesses and everything completes.
    Simulation sim;
    FamLayout layout(16ull << 30, 16, 2ull << 30);
    AcmStore acm(16);
    FamMediaParams media_params;
    media_params.capacityBytes = 16ull << 30;
    FamMedia media(sim, "fam", media_params);
    MemoryBroker broker(sim, "broker", BrokerParams{}, layout, acm,
                        &media);
    broker.registerNode(0);
    broker.registerNode(1);

    NodeId logical0 = broker.logicalIdOf(0);
    std::vector<std::uint64_t> pages;
    for (int i = 0; i < 4; ++i)
        pages.push_back(broker.allocPage(logical0, Perms{}));

    int completed = 0;
    for (std::uint64_t page : pages) {
        auto pkt = makePacket(0, 0, MemOp::Read, PacketKind::Data);
        pkt->fam = FamAddr(page * kPageSize);
        pkt->hasFam = true;
        pkt->onDone = [&](Packet&) { ++completed; };
        media.access(pkt);
    }

    MemoryBroker::MigrationReport report;
    sim.events().schedule(1 * kNanosecond, [&] {
        report = broker.migrateJob(0, 1, /*use_logical_ids=*/false);
    });
    sim.run();

    EXPECT_EQ(completed, 4);
    EXPECT_EQ(report.acmWrites, 4u);
    // The media served the in-flight data plus one bookkeeping write
    // per rewritten ACM entry.
    EXPECT_EQ(media.totalRequests(), 4u + report.acmWrites);
    EXPECT_EQ(acm.pagesOwnedBy(broker.logicalIdOf(1)).size(), 4u);
}

TEST(BrokerJobs, UnmappedFaultsAttributePerJob)
{
    Simulation sim;
    FamLayout layout(16ull << 30, 16, 2ull << 30);
    AcmStore acm(16);
    BrokerParams params;
    params.jobs = 4;
    MemoryBroker broker(sim, "broker", params, layout, acm, nullptr);
    broker.registerNode(0);

    int done = 0;
    broker.handleUnmapped(0, 0x10, [&](std::uint64_t) { ++done; }, 2);
    broker.handleUnmapped(0, 0x11, [&](std::uint64_t) { ++done; }, 2);
    broker.handleUnmapped(0, 0x12, [&](std::uint64_t) { ++done; }, 0);
    sim.run();

    EXPECT_EQ(done, 3);
    auto faults = sim.stats().sumJobTables(".job_faults");
    ASSERT_EQ(faults.size(), 4u);
    EXPECT_EQ(faults[0], 1u);
    EXPECT_EQ(faults[1], 0u);
    EXPECT_EQ(faults[2], 2u);
    EXPECT_EQ(faults[3], 0u);
    EXPECT_DOUBLE_EQ(sim.stats().get("broker.faults"), 3.0);
}

// ---------------------------------------------------------------- fabric

TEST(FabricLink, PropagationAndSerialization)
{
    Simulation sim;
    FabricParams params;
    params.latency = 100 * kNanosecond;
    params.serialization = 10 * kNanosecond;
    FabricLink link(sim, "fabric", params);

    std::vector<Tick> arrivals;
    for (int i = 0; i < 3; ++i) {
        link.send(FabricLink::Request,
                  [&] { arrivals.push_back(sim.curTick()); });
    }
    sim.run();
    ASSERT_EQ(arrivals.size(), 3u);
    EXPECT_EQ(arrivals[0], 100 * kNanosecond);
    EXPECT_EQ(arrivals[1], 110 * kNanosecond);
    EXPECT_EQ(arrivals[2], 120 * kNanosecond);
}

TEST(FabricLink, ChannelsAreIndependent)
{
    Simulation sim;
    FabricParams params;
    params.latency = 100 * kNanosecond;
    params.serialization = 50 * kNanosecond;
    FabricLink link(sim, "fabric", params);

    Tick req = 0, resp = 0;
    link.send(FabricLink::Request, [&] { req = sim.curTick(); });
    link.send(FabricLink::Response, [&] { resp = sim.curTick(); });
    sim.run();
    EXPECT_EQ(req, 100 * kNanosecond);
    EXPECT_EQ(resp, 100 * kNanosecond); // no cross-channel queueing
}

} // namespace
} // namespace famsim
