#!/bin/sh
# CLI-level trace round trip: --scenario, --record-scenario and
# --replay-scenario of the same scenario must print byte-identical
# stats JSON (recording is observation-only; replay reproduces the
# recorded run exactly). Honors FAMSIM_THREADS like the binary does,
# so the CI FAMSIM_THREADS=4 ctest pass exercises the parallel kernel.
#
# Usage: cli_roundtrip.sh <path-to-famsim_cli> [scenario-name]
set -eu

cli=$1
scenario=${2:-fig12_performance.mcf.deactn}

work=$(mktemp -d "${TMPDIR:-/tmp}/famsim_cli_roundtrip.XXXXXX")
trap 'rm -rf "$work"' EXIT INT TERM

"$cli" --scenario "$scenario" > "$work/synthetic.json"
"$cli" --record-scenario "$scenario" --record "$work/traces" \
    > "$work/recorded.json"
"$cli" --replay-scenario "$scenario" --replay "$work/traces" \
    > "$work/replayed.json"

for produced in recorded replayed; do
    if ! cmp -s "$work/synthetic.json" "$work/$produced.json"; then
        echo "FAIL: $produced run diverged from the synthetic run" >&2
        diff "$work/synthetic.json" "$work/$produced.json" >&2 || true
        exit 1
    fi
done

echo "round trip OK: $(wc -c < "$work/synthetic.json") bytes identical"
