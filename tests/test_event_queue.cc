/**
 * @file
 * Unit tests for the discrete-event kernel: ordering, determinism,
 * time-limit semantics.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"

namespace famsim {
namespace {

TEST(EventQueue, RunsEventsInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(30, [&] { order.push_back(3); });
    q.schedule(10, [&] { order.push_back(1); });
    q.schedule(20, [&] { order.push_back(2); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(q.curTick(), 30u);
}

TEST(EventQueue, TiesRunInInsertionOrder)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 8; ++i)
        q.schedule(5, [&, i] { order.push_back(i); });
    q.run();
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, SchedulingInThePastPanics)
{
    ScopedThrowOnError guard;
    EventQueue q;
    q.schedule(100, [] {});
    q.runOne();
    EXPECT_THROW(q.schedule(50, [] {}), SimError);
}

TEST(EventQueue, RunHonoursLimit)
{
    EventQueue q;
    int count = 0;
    q.schedule(10, [&] { ++count; });
    q.schedule(20, [&] { ++count; });
    q.schedule(30, [&] { ++count; });
    EXPECT_EQ(q.run(20), 2u);
    EXPECT_EQ(count, 2);
    EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, DrainBeforeHorizonAdvancesToLimit)
{
    EventQueue q;
    q.schedule(10, [] {});
    EXPECT_EQ(q.run(100), 1u);
    // The queue drained at tick 10, but the bounded run simulated
    // through tick 100: relative scheduling continues from there.
    EXPECT_EQ(q.curTick(), 100u);
    Tick fired = 0;
    q.scheduleAfter(5, [&] { fired = q.curTick(); });
    q.run();
    EXPECT_EQ(fired, 105u);
}

TEST(EventQueue, BoundedRunAdvancesPastSkippedEvents)
{
    EventQueue q;
    q.schedule(10, [] {});
    q.schedule(200, [] {});
    EXPECT_EQ(q.run(100), 1u);
    EXPECT_EQ(q.curTick(), 100u); // horizon, not the last event
    EXPECT_EQ(q.size(), 1u);      // tick-200 event still pending
    q.run();
    EXPECT_EQ(q.curTick(), 200u);
}

TEST(EventQueue, OpenEndedRunStaysAtLastEvent)
{
    EventQueue q;
    q.schedule(10, [] {});
    q.run(); // kForever: must NOT advance time to the sentinel
    EXPECT_EQ(q.curTick(), 10u);
    q.scheduleAfter(1, [] {});
    EXPECT_EQ(q.run(), 1u);
    EXPECT_EQ(q.curTick(), 11u);
}

TEST(EventQueue, EventsCanScheduleMoreEvents)
{
    EventQueue q;
    int depth = 0;
    std::function<void()> recurse = [&] {
        if (++depth < 5)
            q.scheduleAfter(10, recurse);
    };
    q.schedule(0, recurse);
    q.run();
    EXPECT_EQ(depth, 5);
    EXPECT_EQ(q.curTick(), 40u);
}

TEST(EventQueue, ExecutedCountsAllEvents)
{
    EventQueue q;
    for (int i = 0; i < 10; ++i)
        q.schedule(static_cast<Tick>(i), [] {});
    q.run();
    EXPECT_EQ(q.executed(), 10u);
}

TEST(EventQueue, LargeCapturesUseHeapFallbackAndStillRun)
{
    // Captures bigger than the slot's inline buffer must round-trip
    // through the heap path with the payload intact.
    EventQueue q;
    struct Big {
        std::uint64_t data[32];
    } big{};
    for (std::uint64_t i = 0; i < 32; ++i)
        big.data[i] = i * 3 + 1;
    std::uint64_t sum = 0;
    q.schedule(1, [big, &sum] {
        for (std::uint64_t v : big.data)
            sum += v;
    });
    q.run();
    std::uint64_t want = 0;
    for (std::uint64_t v : big.data)
        want += v;
    EXPECT_EQ(sum, want);
}

TEST(EventQueue, SlotPoolIsRecycledNotGrown)
{
    // Steady-state churn must reuse slots via the free list instead of
    // growing the arena: 100k sequential events, bounded pool.
    EventQueue q;
    std::uint64_t count = 0;
    std::function<void()> chain = [&] {
        if (++count < 100000)
            q.scheduleAfter(5, chain);
    };
    for (int i = 0; i < 8; ++i)
        q.schedule(static_cast<Tick>(i), chain);
    q.run();
    EXPECT_GE(count, 100000u);
    EXPECT_LE(q.pooledSlots(), 64u);
}

TEST(EventQueue, RandomizedOrderMatchesStableSortReference)
{
    // Property: execution order over a random schedule equals a stable
    // sort of (tick, insertion index) — the 4-ary heap and packed
    // sequence/slot word must never reorder ties.
    Rng rng(2024);
    EventQueue q;
    std::vector<std::pair<Tick, int>> ref;
    std::vector<int> executed;
    int id = 0;
    for (int i = 0; i < 2000; ++i) {
        Tick when = rng.below(50);
        ref.emplace_back(when, id);
        q.schedule(when, [&executed, id] { executed.push_back(id); });
        ++id;
    }
    q.run();
    std::stable_sort(ref.begin(), ref.end(),
                     [](const auto& a, const auto& b) {
                         return a.first < b.first;
                     });
    ASSERT_EQ(executed.size(), ref.size());
    for (std::size_t i = 0; i < ref.size(); ++i)
        EXPECT_EQ(executed[i], ref[i].second) << "position " << i;
}

TEST(EventQueue, MoveOnlyCallablesAreAccepted)
{
    EventQueue q;
    auto payload = std::make_unique<int>(41);
    int got = 0;
    q.schedule(3, [p = std::move(payload), &got] { got = *p + 1; });
    q.run();
    EXPECT_EQ(got, 42);
}

} // namespace
} // namespace famsim
