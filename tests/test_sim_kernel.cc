/**
 * @file
 * Unit tests for the simulation kernel beyond the event queue:
 * statistics, RNG determinism, typed addresses, logging modes.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <map>
#include <set>
#include <sstream>

#include "sim/logging.hh"
#include "sim/flat_map.hh"
#include "sim/rng.hh"
#include "sim/simulation.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace famsim {
namespace {

// ---------------------------------------------------------------- stats

TEST(Stats, CounterAccumulatesAndResets)
{
    StatRegistry reg;
    Counter& c = reg.counter("a.b", "test");
    ++c;
    c += 5;
    EXPECT_EQ(c.value(), 6u);
    EXPECT_DOUBLE_EQ(reg.get("a.b"), 6.0);
    reg.resetAll();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Stats, ReRegisteringReturnsSameCounter)
{
    StatRegistry reg;
    Counter& a = reg.counter("x", "first");
    Counter& b = reg.counter("x", "second");
    EXPECT_EQ(&a, &b);
}

TEST(Stats, TypeMismatchPanics)
{
    ScopedThrowOnError guard;
    StatRegistry reg;
    reg.counter("x", "counter");
    EXPECT_THROW(reg.scalar("x", "scalar"), SimError);
}

TEST(Stats, ScalarHoldsValue)
{
    StatRegistry reg;
    Scalar& s = reg.scalar("ipc", "test");
    s = 1.25;
    EXPECT_DOUBLE_EQ(reg.get("ipc"), 1.25);
}

TEST(Stats, UnknownStatPanics)
{
    ScopedThrowOnError guard;
    StatRegistry reg;
    EXPECT_THROW((void)reg.get("nope"), SimError);
    EXPECT_FALSE(reg.has("nope"));
}

TEST(Stats, GetResolvesHistogramMeanAndRejectsJobTables)
{
    ScopedThrowOnError guard;
    StatRegistry reg;
    Histogram& h = reg.histogram("lat", "a histogram", 10, 4);
    h.sample(5);
    h.sample(15);
    EXPECT_DOUBLE_EQ(reg.get("lat"), 10.0);
    // A per-job table has no single value; get() must panic rather
    // than silently pick a slot.
    reg.jobTable("per_job", "a table", 2).add(0, 3);
    EXPECT_THROW((void)reg.get("per_job"), SimError);
}

TEST(Stats, SumMatchingAddsSuffixes)
{
    StatRegistry reg;
    reg.counter("node0.l3.misses", "") += 3;
    reg.counter("node1.l3.misses", "") += 4;
    reg.counter("node0.l3.hits", "") += 100;
    EXPECT_DOUBLE_EQ(reg.sumMatching(".l3.misses"), 7.0);
}

TEST(Stats, HistogramMeanMaxAndSaturation)
{
    Histogram h(10, 4); // buckets [0,10) [10,20) [20,30) [30,inf)
    h.sample(5);
    h.sample(15);
    h.sample(1000); // saturates into the last bucket
    EXPECT_EQ(h.samples(), 3u);
    EXPECT_EQ(h.max(), 1000u);
    EXPECT_NEAR(h.mean(), 340.0, 1e-9);
    EXPECT_EQ(h.bucket(0), 1u);
    EXPECT_EQ(h.bucket(1), 1u);
    EXPECT_EQ(h.bucket(3), 1u);
}

TEST(Stats, PercentilesExactForUnitBuckets)
{
    // bucket_width 1: every bucket holds exactly one value, so the
    // nearest-rank percentile is exact (the contract obsHistogram's
    // latency breakdowns rely on for narrow distributions).
    Histogram h(1, 101);
    for (std::uint64_t v = 1; v <= 100; ++v)
        h.sample(v);
    EXPECT_EQ(h.p50(), 50u);
    EXPECT_EQ(h.p95(), 95u);
    EXPECT_EQ(h.p99(), 99u);
    EXPECT_EQ(h.percentile(0.01), 1u);
    EXPECT_EQ(h.percentile(1.0), 100u);
}

TEST(Stats, PercentilesQuantizeToBucketLowerEdge)
{
    Histogram h(10, 4); // [0,10) [10,20) [20,30) [30,inf)
    h.sample(5);
    h.sample(15);
    h.sample(25);
    h.sample(1000); // saturates into the last bucket
    EXPECT_EQ(h.p50(), 10u);  // rank 2 lands in the [10,20) bucket
    EXPECT_EQ(h.p99(), 30u);  // rank 4: the saturation bucket's edge
    EXPECT_EQ(h.percentile(0.25), 0u);
}

TEST(Stats, PercentilesOfEmptyHistogramAreZero)
{
    Histogram h(10, 4);
    EXPECT_EQ(h.p50(), 0u);
    EXPECT_EQ(h.p95(), 0u);
    EXPECT_EQ(h.percentile(1.0), 0u);
}

TEST(Stats, PercentileFlavorAddsKeysOnlyWhereRegistered)
{
    // The plain histogram JSON shape is golden-pinned; only the
    // histogramWithPercentiles flavor may carry the p50/p95/p99 keys.
    StatRegistry reg;
    reg.histogram("plain.lat", "plain", 1, 4).sample(2);
    reg.histogramWithPercentiles("obs.lat", "flagged", 1, 4).sample(2);
    const std::string json = reg.jsonString();
    const std::size_t plain = json.find("plain.lat");
    const std::size_t obs = json.find("obs.lat");
    ASSERT_NE(plain, std::string::npos);
    ASSERT_NE(obs, std::string::npos);
    // obs.lat sorts before plain.lat; its percentile keys must appear
    // between the two names, and none after plain.lat.
    const std::size_t p50 = json.find("\"p50\": 2");
    ASSERT_NE(p50, std::string::npos);
    EXPECT_LT(obs, p50);
    EXPECT_LT(p50, plain);
    EXPECT_EQ(json.find("\"p50\"", plain), std::string::npos);
    EXPECT_NE(json.find("\"p95\": 2", obs), std::string::npos);
    EXPECT_NE(json.find("\"p99\": 2", obs), std::string::npos);
}

TEST(Stats, DumpContainsNamesAndValues)
{
    StatRegistry reg;
    reg.counter("alpha", "the alpha stat") += 42;
    std::ostringstream os;
    reg.dump(os);
    EXPECT_NE(os.str().find("alpha"), std::string::npos);
    EXPECT_NE(os.str().find("42"), std::string::npos);
    std::ostringstream csv;
    reg.dumpCsv(csv);
    EXPECT_NE(csv.str().find("alpha,42"), std::string::npos);
}

TEST(Stats, JsonDumpIsValidAndSorted)
{
    StatRegistry reg;
    reg.counter("zeta.count", "a counter") += 7;
    reg.scalar("alpha.ipc", "a scalar") = 1.25;
    reg.histogram("mid.lat", "a histogram", 10, 2).sample(15);

    const std::string json = reg.jsonString();
    EXPECT_NE(json.find("\"zeta.count\": 7"), std::string::npos);
    EXPECT_NE(json.find("\"alpha.ipc\": 1.25"), std::string::npos);
    EXPECT_NE(json.find("\"samples\": 1"), std::string::npos);
    EXPECT_NE(json.find("\"buckets\": [0, 1]"), std::string::npos);
    // Map iteration order: alpha before mid before zeta.
    EXPECT_LT(json.find("alpha.ipc"), json.find("mid.lat"));
    EXPECT_LT(json.find("mid.lat"), json.find("zeta.count"));
    EXPECT_EQ(json.front(), '{');
    EXPECT_EQ(json.back(), '\n');
}

TEST(Stats, JsonEscapesStrings)
{
    std::ostringstream os;
    json::writeString(os, "a\"b\\c\nd");
    EXPECT_EQ(os.str(), "\"a\\\"b\\\\c\\nd\"");
}

TEST(Stats, JsonNumbersRoundTripShortest)
{
    auto str = [](double v) {
        std::ostringstream os;
        json::writeNumber(os, v);
        return os.str();
    };
    EXPECT_EQ(str(0.0), "0");
    EXPECT_EQ(str(1.25), "1.25");
    EXPECT_EQ(str(-3.5), "-3.5");
    // 0.1 is not exactly representable; shortest round-trip is "0.1".
    EXPECT_EQ(str(0.1), "0.1");
    // Non-finite values have no JSON spelling; null substitutes.
    EXPECT_EQ(str(std::numeric_limits<double>::infinity()), "null");
    EXPECT_EQ(str(std::nan("")), "null");
}

TEST(Stats, EmptyRegistryJsonIsEmptyObject)
{
    StatRegistry reg;
    std::ostringstream os;
    reg.dumpJson(os);
    EXPECT_EQ(os.str(), "{}");
}

// ------------------------------------------------------------------ rng

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(123, 1), b(123, 1);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, StreamsAreIndependent)
{
    Rng a(123, 1), b(123, 2);
    bool any_diff = false;
    for (int i = 0; i < 32; ++i)
        any_diff |= a.next() != b.next();
    EXPECT_TRUE(any_diff);
}

TEST(Rng, BelowStaysInRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_LT(rng.below(17), 17u);
        EXPECT_LT(rng.below64(1000003), 1000003u);
    }
}

TEST(Rng, BelowPow2FastPathMatchesSingleMaskedDraw)
{
    // For power-of-two bounds the debiased-modulo scheme always took
    // exactly one draw and reduced it with % == &. The fast path must
    // return the identical value from the identical single draw.
    for (std::uint32_t bound : {1u, 2u, 8u, 64u, 4096u, 1u << 31}) {
        Rng a(55, 3), b(55, 3);
        for (int i = 0; i < 200; ++i)
            EXPECT_EQ(a.below(bound), b.next() & (bound - 1))
                << "bound " << bound;
    }
    Rng a(56, 4), b(56, 4);
    for (int i = 0; i < 200; ++i)
        EXPECT_EQ(a.below64(1ull << 40), b.next64() & ((1ull << 40) - 1));
}

TEST(Rng, ZeroBoundPanics)
{
    ScopedThrowOnError guard;
    Rng rng(7);
    EXPECT_THROW(rng.below(0), SimError);
    EXPECT_THROW(rng.below64(0), SimError);
}

TEST(Rng, FastBound32MatchesBelowDrawForDraw)
{
    for (std::uint32_t bound : {1u, 3u, 48u, 64u, 12288u, 999983u}) {
        FastBound32 fast(bound);
        Rng a(77, 9), b(77, 9);
        for (int i = 0; i < 500; ++i)
            EXPECT_EQ(fast.sample(a), b.below(bound)) << "bound " << bound;
    }
}

TEST(Rng, FastBound32ModIsExact)
{
    Rng rng(31);
    for (std::uint32_t bound : {3u, 7u, 48u, 12288u, 999983u}) {
        FastBound32 fast(bound);
        for (int i = 0; i < 2000; ++i) {
            std::uint32_t r = rng.next();
            EXPECT_EQ(fast.mod(r), r % bound) << r << " % " << bound;
        }
    }
}

TEST(Rng, FastBound32ZeroBoundPanicsInsteadOfDividing)
{
    ScopedThrowOnError guard;
    EXPECT_THROW(FastBound32(0), SimError);
}

// ------------------------------------------------------------- flat map

TEST(FlatMap, BasicInsertFindErase)
{
    U64FlatMap<int> map;
    EXPECT_TRUE(map.empty());
    map[7] = 70;
    map[0] = 1; // key 0 must be a legal key
    auto [it, inserted] = map.try_emplace(7);
    EXPECT_FALSE(inserted);
    EXPECT_EQ(it->second, 70);
    EXPECT_EQ(map.size(), 2u);
    EXPECT_EQ(map.find(0)->second, 1);
    EXPECT_EQ(map.erase(7), 1u);
    EXPECT_EQ(map.erase(7), 0u);
    EXPECT_TRUE(map.find(7) == map.end());
    EXPECT_EQ(map.size(), 1u);
}

TEST(FlatMap, MatchesUnorderedMapUnderRandomOps)
{
    U64FlatMap<int> flat;
    std::map<std::uint64_t, int> ref;
    Rng rng(404);
    for (int step = 0; step < 50000; ++step) {
        std::uint64_t key = rng.below(512);
        switch (rng.below(3)) {
          case 0:
            flat[key] = step;
            ref[key] = step;
            break;
          case 1: {
            auto it = flat.find(key);
            auto rit = ref.find(key);
            ASSERT_EQ(it == flat.end(), rit == ref.end()) << step;
            if (rit != ref.end()) {
                ASSERT_EQ(it->second, rit->second) << step;
            }
            break;
          }
          default:
            ASSERT_EQ(flat.erase(key), ref.erase(key)) << step;
        }
    }
    EXPECT_EQ(flat.size(), ref.size());
    std::size_t seen = 0;
    for (const auto& [key, value] : flat) {
        ASSERT_EQ(ref.at(key), value);
        ++seen;
    }
    EXPECT_EQ(seen, ref.size());
}

TEST(FlatMap, ChurnDoesNotGrowCapacityUnbounded)
{
    // Regression: tombstones counted toward the load factor and every
    // rehash doubled, so MSHR-style insert/erase churn grew the table
    // to O(total ops). In-place tombstone clearing must keep capacity
    // proportional to the live entry count.
    U64FlatMap<int> map;
    for (std::uint64_t i = 0; i < 200000; ++i) {
        map[i] = 1;
        if (i >= 3)
            map.erase(i - 3); // never more than 4 live entries
    }
    EXPECT_LE(map.size(), 4u);
    EXPECT_LE(map.capacity(), 64u);
}

TEST(Rng, UniformCoversRange)
{
    Rng rng(9);
    double min = 1.0, max = 0.0;
    for (int i = 0; i < 10000; ++i) {
        double u = rng.uniform();
        min = std::min(min, u);
        max = std::max(max, u);
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
    EXPECT_LT(min, 0.05);
    EXPECT_GT(max, 0.95);
}

TEST(Rng, ChanceExtremes)
{
    Rng rng(11);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

// -------------------------------------------------------------- types

TEST(TypedAddr, PageMathIsCorrect)
{
    NPAddr a(0x12345678);
    EXPECT_EQ(a.pageNumber(), 0x12345678u >> 12);
    EXPECT_EQ(a.pageOffset(), 0x678u);
    EXPECT_EQ(a.blockAddr().value(), 0x12345640u);
    EXPECT_EQ(a.alignDown(kPageSize).value(), 0x12345000u);
    EXPECT_EQ((a + 8).value(), 0x12345680u);
}

TEST(TypedAddr, ComparesAndHashes)
{
    FamAddr a(100), b(100), c(200);
    EXPECT_EQ(a, b);
    EXPECT_LT(a, c);
    EXPECT_EQ(std::hash<FamAddr>{}(a), std::hash<FamAddr>{}(b));
}

TEST(TypedAddr, StreamsWithSpaceTag)
{
    std::ostringstream os;
    os << VAddr(0x10) << " " << NPAddr(0x20) << " " << FamAddr(0x30);
    EXPECT_EQ(os.str(), "V:0x10 NP:0x20 FAM:0x30");
}

// ------------------------------------------------------------- logging

TEST(Logging, PanicThrowsUnderGuard)
{
    ScopedThrowOnError guard;
    EXPECT_THROW(FAMSIM_PANIC("boom ", 42), SimError);
    EXPECT_THROW(FAMSIM_FATAL("bad config"), SimError);
}

TEST(Logging, AssertPassesAndFails)
{
    ScopedThrowOnError guard;
    FAMSIM_ASSERT(1 + 1 == 2, "fine");
    EXPECT_THROW(FAMSIM_ASSERT(false, "nope"), SimError);
}

// ---------------------------------------------------------- simulation

TEST(Simulation, ComponentsRegisterPrefixedStats)
{
    Simulation sim;

    class Widget : public Component
    {
      public:
        Widget(Simulation& sim) : Component(sim, "widget")
        {
            statCounter("events", "count") += 3;
        }
    } widget(sim);

    EXPECT_DOUBLE_EQ(sim.stats().get("widget.events"), 3.0);
    EXPECT_EQ(widget.name(), "widget");
}

TEST(Simulation, RunAdvancesTime)
{
    Simulation sim;
    int fired = 0;
    sim.events().schedule(5 * kNanosecond, [&] { ++fired; });
    sim.run();
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(sim.curTick(), 5 * kNanosecond);
}

} // namespace
} // namespace famsim
