/**
 * @file
 * Property tests: system-wide conservation laws and invariants that
 * must hold for every benchmark profile and architecture (run on
 * scaled-down configurations for speed).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "fam/broker.hh"
#include "harness/runner.hh"
#include "sim/logging.hh"

namespace famsim {
namespace {

SystemConfig
scaled(const StreamProfile& base, ArchKind arch)
{
    StreamProfile profile = base;
    profile.footprintBytes = 8 << 20;
    profile.hot1Pages = std::min<std::uint64_t>(profile.hot1Pages, 256);
    profile.hot2Pages = std::min<std::uint64_t>(profile.hot2Pages, 512);
    SystemConfig config = makeConfig(profile, arch, 25000);
    config.coresPerNode = 2;
    // Exact conservation checks need an unbroken window: the warmup
    // stats reset would otherwise split in-flight requests across the
    // boundary.
    config.warmupFraction = 0.0;
    return config;
}

class ProfileInvariants
    : public ::testing::TestWithParam<std::string>
{
};

TEST_P(ProfileInvariants, HoldOnDeactN)
{
    ScopedQuietLogs quiet;
    System system(scaled(profiles::byName(GetParam()),
                         ArchKind::DeactN));
    system.run();
    const auto& stats = system.sim().stats();

    // 1. Nothing is denied in legitimate operation.
    EXPECT_DOUBLE_EQ(stats.get("node0.stu.denials"), 0.0);

    // 2. Conservation: every request the STU forwarded shows up at the
    //    FAM as either data or node page-table traffic.
    double forwarded = stats.get("node0.stu.forwarded");
    double at_fam = stats.get("fam.data_requests") +
                    stats.get("fam.node_ptw_requests");
    EXPECT_DOUBLE_EQ(forwarded, at_fam);

    // 3. Hit counters never exceed lookups.
    EXPECT_LE(stats.get("node0.stu.acm_hits"),
              stats.get("node0.stu.acm_lookups"));
    EXPECT_LE(stats.get("node0.translator.hits"),
              stats.get("node0.translator.lookups"));

    // 4. IPC bounded by total issue width.
    EXPECT_GT(system.ipc(), 0.0);
    EXPECT_LE(system.ipc(), 2.0 * 2.0 + 1e-9);

    // 5. Every ACM fetch targets the metadata region (accounted at the
    //    FAM as AT), never usable space.
    EXPECT_DOUBLE_EQ(stats.get("node0.stu.acm_fetches"),
                     stats.get("fam.acm_requests"));
}

TEST_P(ProfileInvariants, HoldOnIFam)
{
    ScopedQuietLogs quiet;
    System system(scaled(profiles::byName(GetParam()), ArchKind::IFam));
    system.run();
    const auto& stats = system.sim().stats();

    EXPECT_DOUBLE_EQ(stats.get("node0.stu.denials"), 0.0);
    double forwarded = stats.get("node0.stu.forwarded");
    double at_fam = stats.get("fam.data_requests") +
                    stats.get("fam.node_ptw_requests");
    EXPECT_DOUBLE_EQ(forwarded, at_fam);

    // In I-FAM the translation and ACM caches are one structure:
    // their hit statistics must agree exactly (Fig. 8a).
    EXPECT_DOUBLE_EQ(stats.get("node0.stu.translation_hits"),
                     stats.get("node0.stu.acm_hits"));

    // Every verification happened before forwarding.
    EXPECT_GE(stats.get("node0.stu.verifications"), forwarded);
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, ProfileInvariants,
    ::testing::Values("mcf", "cactus", "astar", "frqm", "canl", "bc",
                      "cc", "ccsv", "sssp", "pf", "dc", "lu", "mg",
                      "sp"),
    [](const auto& suite) { return suite.param; });

TEST(StatLookup, GetResolvesHistogramsAndRejectsJobTables)
{
    // get() must cover every single-valued stat kind a real system
    // registers — histograms resolve to their mean — and panic on
    // per-job tables instead of returning a misleading value.
    ScopedQuietLogs quiet;
    SystemConfig config = scaled(profiles::byName("mcf"),
                                 ArchKind::DeactN);
    config.tenancy.jobs = 2;
    System system(config);
    system.run();
    const auto& stats = system.sim().stats();

    ASSERT_TRUE(stats.has("node0.dram.latency_ns"));
    EXPECT_GT(stats.get("node0.dram.latency_ns"), 0.0);

    ASSERT_TRUE(stats.has("node0.stu.job_acm_lookups"));
    ScopedThrowOnError throw_on_error;
    EXPECT_THROW((void)stats.get("node0.stu.job_acm_lookups"), SimError);
}

// ----------------------------------------------------------- geomean

TEST(Geomean, MatchesClosedFormAndSkipsNonPositives)
{
    EXPECT_DOUBLE_EQ(geomean({2.0, 8.0}), 4.0);
    EXPECT_DOUBLE_EQ(geomean({5.0}), 5.0);
    // Non-positive values must be skipped, not poison the mean (a
    // failed run reporting 0 IPC would otherwise zero a whole suite).
    EXPECT_DOUBLE_EQ(geomean({2.0, 8.0, 0.0}), 4.0);
    EXPECT_DOUBLE_EQ(geomean({2.0, 8.0, -3.0}), 4.0);
    // No positive values at all degrades to 0, never NaN/inf.
    EXPECT_DOUBLE_EQ(geomean({}), 0.0);
    EXPECT_DOUBLE_EQ(geomean({0.0, -1.0}), 0.0);
}

TEST(Geomean, OrderAndScaleInvariance)
{
    const std::vector<double> values{0.25, 1.0, 3.5, 7.0, 0.0, 42.0};
    std::vector<double> shuffled{42.0, 0.0, 7.0, 0.25, 3.5, 1.0};
    EXPECT_DOUBLE_EQ(geomean(values), geomean(shuffled));

    std::vector<double> scaled;
    for (double v : values)
        scaled.push_back(v * 10.0);
    // geomean(k*x) == k * geomean(x) over the positive entries.
    EXPECT_NEAR(geomean(scaled), 10.0 * geomean(values), 1e-9);

    // Bounded by min/max of the positive entries.
    EXPECT_GE(geomean(values), 0.25);
    EXPECT_LE(geomean(values), 42.0);
}

// ----------------------------------------------- broker page scatter

TEST(BrokerScatter, AllocationIsBijectiveOverThePool)
{
    // A small pool the test can exhaust: every allocatable page must
    // be handed out exactly once (the multiplicative scatter is a
    // permutation), and exhaustion must be a loud simulator error,
    // not a wrap-around double-allocation.
    Simulation sim;
    // Smallest legal pool (1 GB) with most of it held back as shared
    // reserve, leaving ~32k allocatable pages to exhaust quickly.
    FamLayout layout(1ull << 30, 16, 896ull << 20);
    AcmStore acm(16);
    MemoryBroker broker(sim, "broker", BrokerParams{}, layout, acm,
                        nullptr);
    broker.registerNode(0);

    const std::uint64_t allocatable =
        layout.usablePages() - layout.sharedReservePages();
    // registerNode consumed pages for the node's FAM page table roots.
    const std::uint64_t already = broker.pagesAllocated();
    ASSERT_LT(already, allocatable);

    std::vector<bool> seen(allocatable, false);
    for (std::uint64_t i = already; i < allocatable; ++i) {
        std::uint64_t page = broker.allocPage(0, Perms{});
        ASSERT_LT(page, allocatable) << "page outside the pool";
        ASSERT_FALSE(seen[page]) << "page " << page << " handed out twice";
        seen[page] = true;
    }
    // Exactly the table pages remain unseen.
    EXPECT_EQ(static_cast<std::uint64_t>(
                  std::count(seen.begin(), seen.end(), false)),
              already);

    ScopedThrowOnError throw_on_error;
    EXPECT_THROW(broker.allocPage(0, Perms{}), SimError);
}

TEST(BrokerScatter, ContiguousModeAllocatesInOrder)
{
    // The DeACT-W ablation (scatterAllocation = false) hands out the
    // pool front-to-back.
    Simulation sim;
    FamLayout layout(1ull << 30, 16, 896ull << 20);
    AcmStore acm(16);
    BrokerParams params;
    params.scatterAllocation = false;
    MemoryBroker broker(sim, "broker", params, layout, acm, nullptr);
    broker.registerNode(0);
    const std::uint64_t base = broker.pagesAllocated();
    for (std::uint64_t i = 0; i < 64; ++i)
        EXPECT_EQ(broker.allocPage(0, Perms{}), base + i);
}

TEST(CrossArch, FamTrafficOrderingHolds)
{
    ScopedQuietLogs quiet;
    // AT share at the FAM: I-FAM >= DeACT-W >= DeACT-N is the paper's
    // Fig. 11 ordering; check it on a sensitive profile.
    double at[3];
    int i = 0;
    for (ArchKind arch :
         {ArchKind::IFam, ArchKind::DeactW, ArchKind::DeactN}) {
        SystemConfig config =
            makeConfig(profiles::byName("ccsv"), arch, 60000);
        config.coresPerNode = 2;
        System system(config);
        system.run();
        at[i++] = system.famAtPercent();
    }
    EXPECT_GE(at[0], at[1] - 2.0); // small tolerance
    EXPECT_GE(at[1], at[2] - 2.0);
}

TEST(CrossArch, EFamHasNoStuAtAll)
{
    ScopedQuietLogs quiet;
    System system(scaled(profiles::byName("mcf"), ArchKind::EFam));
    system.run();
    EXPECT_FALSE(system.sim().stats().has("node0.stu.denials"));
    EXPECT_EQ(system.node(0).stu, nullptr);
    EXPECT_EQ(system.node(0).translator, nullptr);
}

TEST(CrossArch, DeactUsesTranslatorNotStuForTranslation)
{
    ScopedQuietLogs quiet;
    System system(scaled(profiles::byName("mcf"), ArchKind::DeactN));
    system.run();
    const auto& stats = system.sim().stats();
    // The STU performs no I-FAM-style translation lookups in DeACT.
    EXPECT_DOUBLE_EQ(stats.get("node0.stu.translation_lookups"), 0.0);
    EXPECT_GT(stats.get("node0.translator.lookups"), 0.0);
}

TEST(CrossArch, WarmupResetPreservesInvariants)
{
    ScopedQuietLogs quiet;
    SystemConfig config = scaled(profiles::byName("dc"),
                                 ArchKind::DeactW);
    config.warmupFraction = 0.5;
    System system(config);
    system.run();
    const auto& stats = system.sim().stats();
    double forwarded = stats.get("node0.stu.forwarded");
    double at_fam = stats.get("fam.data_requests") +
                    stats.get("fam.node_ptw_requests");
    // The reset happens atomically between events, so conservation
    // holds within the measurement window too (small slack for
    // requests in flight across the reset boundary).
    EXPECT_NEAR(forwarded, at_fam, 70.0);
}

} // namespace
} // namespace famsim
