/**
 * @file
 * Tests for the virtual-memory substrate: hierarchical page tables,
 * TLBs, PTW caches, the node walker and the node OS.
 */

#include <gtest/gtest.h>

#include <set>

#include "test_util.hh"
#include "vm/node_os.hh"
#include "vm/page_table.hh"
#include "vm/tlb.hh"
#include "vm/walker.hh"

namespace famsim {
namespace {

using test::StubMemory;

// ------------------------------------------------------------ page table

class PageTableTest : public ::testing::Test
{
  protected:
    PageTableTest()
        : table_([this] { return nextPage_ += kPageSize; })
    {
    }

    std::uint64_t nextPage_ = 0;
    HierarchicalPageTable table_;
};

TEST_F(PageTableTest, LookupAfterMap)
{
    table_.map(0x1234, 0x9999, Perms{true, false, false});
    auto leaf = table_.lookup(0x1234);
    ASSERT_TRUE(leaf.has_value());
    EXPECT_EQ(leaf->valuePage, 0x9999u);
    EXPECT_TRUE(leaf->perms.r);
    EXPECT_FALSE(leaf->perms.w);
    EXPECT_FALSE(table_.lookup(0x1235).has_value());
}

TEST_F(PageTableTest, WalkTouchesFourLevelsWhenMapped)
{
    table_.map(0x1234, 0x9999, Perms{});
    auto result = table_.walk(0x1234);
    ASSERT_EQ(result.steps.size(), 4u);
    for (unsigned i = 0; i < 4; ++i)
        EXPECT_EQ(result.steps[i].level, i);
    ASSERT_TRUE(result.leaf.has_value());
    EXPECT_EQ(result.leaf->valuePage, 0x9999u);
}

TEST_F(PageTableTest, WalkStopsAtNonPresentLevel)
{
    auto result = table_.walk(0x5555);
    EXPECT_EQ(result.steps.size(), 1u); // only the root entry read
    EXPECT_FALSE(result.leaf.has_value());
}

TEST_F(PageTableTest, NeighbouringPagesShareTables)
{
    table_.map(0x1000, 1, Perms{});
    std::size_t pages_before = table_.tablePages();
    table_.map(0x1001, 2, Perms{});
    EXPECT_EQ(table_.tablePages(), pages_before); // same PTE table
    table_.map(0x1000 + 512, 3, Perms{});
    EXPECT_EQ(table_.tablePages(), pages_before + 1); // new PTE table
}

TEST_F(PageTableTest, UnmapRemovesLeafOnly)
{
    table_.map(0x42, 7, Perms{});
    EXPECT_EQ(table_.mappings(), 1u);
    EXPECT_TRUE(table_.unmap(0x42));
    EXPECT_EQ(table_.mappings(), 0u);
    EXPECT_FALSE(table_.unmap(0x42));
    EXPECT_FALSE(table_.lookup(0x42).has_value());
}

TEST_F(PageTableTest, EntryAddrMatchesWalkSteps)
{
    table_.map(0xABCDE, 11, Perms{});
    auto result = table_.walk(0xABCDE);
    for (const auto& step : result.steps) {
        auto addr = table_.entryAddr(0xABCDE, step.level);
        ASSERT_TRUE(addr.has_value());
        EXPECT_EQ(*addr, step.addr);
    }
}

TEST_F(PageTableTest, LevelIndexAndPrefixMath)
{
    std::uint64_t page = (3ull << 27) | (5ull << 18) | (7ull << 9) | 9;
    EXPECT_EQ(HierarchicalPageTable::levelIndex(page, 0), 3u);
    EXPECT_EQ(HierarchicalPageTable::levelIndex(page, 1), 5u);
    EXPECT_EQ(HierarchicalPageTable::levelIndex(page, 2), 7u);
    EXPECT_EQ(HierarchicalPageTable::levelIndex(page, 3), 9u);
    EXPECT_EQ(HierarchicalPageTable::levelPrefix(page, 3), page);
}

TEST_F(PageTableTest, ManyMappingsRoundTrip)
{
    for (std::uint64_t i = 0; i < 5000; ++i)
        table_.map(i * 977, i, Perms{});
    for (std::uint64_t i = 0; i < 5000; ++i) {
        auto leaf = table_.lookup(i * 977);
        ASSERT_TRUE(leaf.has_value());
        EXPECT_EQ(leaf->valuePage, i);
    }
}

TEST(Perms, TwoBitEncodingRoundTrips)
{
    for (std::uint8_t bits = 0; bits < 4; ++bits) {
        Perms p = Perms::decode2b(bits);
        EXPECT_EQ(p.encode2b(), bits);
    }
    EXPECT_TRUE((Perms{true, true, false}.allows(false)));
    EXPECT_TRUE((Perms{true, true, false}.allows(true)));
    EXPECT_FALSE((Perms{true, false, false}.allows(true)));
    EXPECT_FALSE((Perms{false, false, false}.allows(false)));
    EXPECT_TRUE((Perms{true, true, true}.allows(false, true)));
    EXPECT_FALSE((Perms{true, true, false}.allows(false, true)));
}

// ------------------------------------------------------------------- tlb

TEST(Tlb, HitMissAndStats)
{
    Simulation sim;
    Tlb tlb(sim, "tlb", 4, 4, 500);
    EXPECT_FALSE(tlb.lookup(1).has_value());
    tlb.insert(1, TlbEntry{100, Perms{}});
    auto entry = tlb.lookup(1);
    ASSERT_TRUE(entry.has_value());
    EXPECT_EQ(entry->valuePage, 100u);
    EXPECT_DOUBLE_EQ(sim.stats().get("tlb.hits"), 1.0);
    EXPECT_DOUBLE_EQ(sim.stats().get("tlb.misses"), 1.0);
    EXPECT_DOUBLE_EQ(tlb.hitRate(), 0.5);
}

TEST(Tlb, CapacityEviction)
{
    Simulation sim;
    Tlb tlb(sim, "tlb", 4, 4, 500); // fully associative, 4 entries
    for (std::uint64_t p = 0; p < 5; ++p)
        tlb.insert(p, TlbEntry{p, Perms{}});
    int present = 0;
    for (std::uint64_t p = 0; p < 5; ++p)
        present += tlb.lookup(p).has_value() ? 1 : 0;
    EXPECT_EQ(present, 4);
}

TEST(TwoLevelTlb, PromotesFromL2)
{
    Simulation sim;
    TwoLevelTlb::Params params;
    params.l1Entries = 2;
    params.l2Entries = 8;
    params.l2Ways = 2;
    TwoLevelTlb tlb(sim, "tlb", params);

    tlb.insert(1, TlbEntry{10, Perms{}});
    tlb.insert(2, TlbEntry{20, Perms{}});
    tlb.insert(3, TlbEntry{30, Perms{}}); // evicts 1 from tiny L1
    auto result = tlb.lookup(1);
    ASSERT_TRUE(result.entry.has_value());
    // L1 miss + L2 hit latency
    EXPECT_EQ(result.latency, params.l1Latency + params.l2Latency);
    // Now promoted: next lookup is an L1 hit.
    auto again = tlb.lookup(1);
    EXPECT_EQ(again.latency, params.l1Latency);
}

TEST(TwoLevelTlb, MissReturnsFullLatency)
{
    Simulation sim;
    TwoLevelTlb tlb(sim, "tlb", {});
    auto result = tlb.lookup(0x123);
    EXPECT_FALSE(result.entry.has_value());
    EXPECT_GT(result.latency, 0u);
}

TEST(TwoLevelTlb, InvalidateBothLevels)
{
    Simulation sim;
    TwoLevelTlb tlb(sim, "tlb", {});
    tlb.insert(5, TlbEntry{50, Perms{}});
    tlb.invalidate(5);
    EXPECT_FALSE(tlb.lookup(5).entry.has_value());
}

TEST(PtwCache, DeepestLevelWins)
{
    Simulation sim;
    PtwCache cache(sim, "ptw", 32, 4);
    std::uint64_t page = 0x12345678;
    EXPECT_EQ(cache.deepestCachedLevel(page), -1);
    cache.insert(page, 0);
    EXPECT_EQ(cache.deepestCachedLevel(page), 0);
    cache.insert(page, 2);
    EXPECT_EQ(cache.deepestCachedLevel(page), 2);
}

TEST(PtwCache, PrefixSharingAcrossNeighbours)
{
    Simulation sim;
    PtwCache cache(sim, "ptw", 32, 4);
    cache.insert(0x1000, 2); // PMD entry covers 512 pages
    EXPECT_EQ(cache.deepestCachedLevel(0x1001), 2);
    EXPECT_EQ(cache.deepestCachedLevel(0x1000 + 512), -1);
}

// ---------------------------------------------------------------- walker

class WalkerTest : public ::testing::Test
{
  protected:
    WalkerTest()
        : table_([this] { return nextPage_ += kPageSize; }),
          stub_(sim_, 10 * kNanosecond),
          ptwCache_(sim_, "ptw", 32, 4),
          walker_(sim_, "walker", table_, ptwCache_, stub_, 0, 0)
    {
    }

    Simulation sim_;
    std::uint64_t nextPage_ = 0;
    HierarchicalPageTable table_;
    StubMemory stub_;
    PtwCache ptwCache_;
    NodePtWalker walker_;
};

TEST_F(WalkerTest, ColdWalkIssuesFourAccesses)
{
    table_.map(0x42, 7, Perms{});
    std::optional<HierarchicalPageTable::Leaf> got;
    walker_.walk(0x42, [&](auto leaf) { got = leaf; });
    sim_.run();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->valuePage, 7u);
    EXPECT_EQ(stub_.accesses, 4u);
    for (auto kind : stub_.kinds)
        EXPECT_EQ(kind, PacketKind::NodePtw);
}

TEST_F(WalkerTest, WarmWalkSkipsUpperLevels)
{
    table_.map(0x42, 7, Perms{});
    walker_.walk(0x42, [](auto) {});
    sim_.run();
    std::uint64_t cold_accesses = stub_.accesses;
    // Second walk to a neighbouring page: PTW cache covers PGD..PMD.
    table_.map(0x43, 8, Perms{});
    walker_.walk(0x43, [](auto) {});
    sim_.run();
    EXPECT_EQ(stub_.accesses - cold_accesses, 1u); // only the PTE read
}

TEST_F(WalkerTest, UnmappedWalkReportsFault)
{
    bool called = false;
    walker_.walk(0x999, [&](auto leaf) {
        called = true;
        EXPECT_FALSE(leaf.has_value());
    });
    sim_.run();
    EXPECT_TRUE(called);
    EXPECT_DOUBLE_EQ(sim_.stats().get("walker.faults"), 1.0);
}

// --------------------------------------------------------------- node OS

class NodeOsTest : public ::testing::Test
{
  protected:
    NodeOsTest()
    {
        params_.localBytes = 1ull << 24;        // 16 MB
        params_.reservedLocalBytes = 1ull << 20; // 1 MB
        params_.famZoneBytes = 1ull << 28;      // 256 MB
        params_.localFraction = 0.2;
    }

    Simulation sim_;
    NodeOsParams params_;
};

TEST_F(NodeOsTest, FaultMapsThePage)
{
    NodeOs os(sim_, "os", params_, FamMode::Indirect, 0, nullptr);
    Tick latency = os.handleFault(0x1000);
    EXPECT_EQ(latency, params_.faultLatency);
    EXPECT_TRUE(os.pageTable().lookup(0x1000).has_value());
}

TEST_F(NodeOsTest, LocalFractionIsRespected)
{
    NodeOs os(sim_, "os", params_, FamMode::Indirect, 0, nullptr);
    for (std::uint64_t p = 0; p < 1000; ++p)
        os.handleFault(p);
    double total = static_cast<double>(os.localPagesAllocated() +
                                       os.famPagesAllocated());
    double local_frac =
        static_cast<double>(os.localPagesAllocated()) / total;
    EXPECT_NEAR(local_frac, 0.2, 0.02);
}

TEST_F(NodeOsTest, ZoneClassificationIsConsistent)
{
    NodeOs os(sim_, "os", params_, FamMode::Indirect, 0, nullptr);
    for (std::uint64_t p = 0; p < 500; ++p)
        os.handleFault(p);
    for (std::uint64_t p = 0; p < 500; ++p) {
        auto leaf = os.pageTable().lookup(p);
        ASSERT_TRUE(leaf.has_value());
        NPAddr addr(leaf->valuePage * kPageSize);
        if (os.isLocal(addr)) {
            EXPECT_LT(addr.value(),
                      params_.localBytes - params_.reservedLocalBytes);
        } else {
            EXPECT_GE(addr.value(), params_.localBytes);
        }
    }
}

TEST_F(NodeOsTest, ScatteredZonePagesAreUniqueAndInZone)
{
    NodeOs os(sim_, "os", params_, FamMode::Indirect, 0, nullptr);
    for (std::uint64_t p = 0; p < 2000; ++p)
        os.handleFault(p);
    std::set<std::uint64_t> seen;
    std::uint64_t zone_base = params_.localBytes / kPageSize;
    std::uint64_t zone_pages = params_.famZoneBytes / kPageSize;
    for (std::uint64_t page : os.famZonePages()) {
        EXPECT_TRUE(seen.insert(page).second) << "duplicate NPA page";
        EXPECT_GE(page, zone_base);
        EXPECT_LT(page, zone_base + zone_pages);
    }
}

TEST_F(NodeOsTest, FamDirectEncodingRoundTrips)
{
    std::uint64_t fam_page = 0x1234;
    NPAddr npa((fam_page | kFamDirectPageBit) * kPageSize + 0x88);
    EXPECT_TRUE(NodeOs::isFamDirect(npa));
    FamAddr fam = NodeOs::famDirectAddr(npa);
    EXPECT_EQ(fam.value(), fam_page * kPageSize + 0x88);
    EXPECT_FALSE(NodeOs::isFamDirect(NPAddr(0x5000)));
}

TEST_F(NodeOsTest, ExplicitMappingWorks)
{
    NodeOs os(sim_, "os", params_, FamMode::Indirect, 0, nullptr);
    std::uint64_t npa_page = os.allocFamZonePage();
    os.mapExplicit(0x7777, npa_page, Perms{true, false, false});
    auto leaf = os.pageTable().lookup(0x7777);
    ASSERT_TRUE(leaf.has_value());
    EXPECT_EQ(leaf->valuePage, npa_page);
    EXPECT_FALSE(leaf->perms.w);
}

} // namespace
} // namespace famsim
