/**
 * @file
 * TraceSink pins: the Chrome trace output must be structurally valid
 * JSON, sorted by event content (not emission order), and — for a
 * warmup-free scenario — byte-identical across `--threads {0,1,4}`
 * when restricted to packet-lifecycle events (psim window events only
 * exist under the parallel kernel). Observation must never perturb
 * the simulation: attaching a sink/profiler leaves the statistics
 * export bit-identical to an unobserved run.
 */

#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "arch/system.hh"
#include "harness/runner.hh"
#include "harness/scenario.hh"
#include "sim/logging.hh"
#include "sim/profiler.hh"
#include "sim/trace_sink.hh"

namespace famsim {
namespace {

/**
 * Minimal structural JSON check: string literals (with escapes)
 * respected, braces/brackets balanced and properly nested, exactly
 * one top-level value. Not a grammar-complete parser — enough to
 * catch an unterminated string or unbalanced nesting without an
 * external tool (CI additionally runs `python3 -m json.tool`).
 */
bool
jsonIsBalanced(const std::string& text)
{
    std::vector<char> stack;
    bool in_string = false;
    bool escaped = false;
    bool closed_top = false;
    for (char c : text) {
        if (in_string) {
            if (escaped)
                escaped = false;
            else if (c == '\\')
                escaped = true;
            else if (c == '"')
                in_string = false;
            continue;
        }
        switch (c) {
          case '"':
            in_string = true;
            break;
          case '{':
          case '[':
            if (closed_top)
                return false; // trailing garbage after the root value
            stack.push_back(c);
            break;
          case '}':
          case ']':
            if (stack.empty())
                return false;
            if ((c == '}') != (stack.back() == '{'))
                return false;
            stack.pop_back();
            closed_top = stack.empty();
            break;
          default:
            break;
        }
    }
    return closed_top && stack.empty() && !in_string;
}

const Scenario&
baseScenario()
{
    return ScenarioRegistry::paper().byName("fig12_performance.base");
}

/** Run @p scenario once with a trace attached; return the trace text. */
std::string
runTraced(const Scenario& scenario, unsigned threads, unsigned categories)
{
    ScopedQuietLogs quiet;
    System system(scenario.config);
    TraceSink sink(system.traceLanes(), categories);
    system.attachTrace(&sink);
    system.run(threads);
    std::ostringstream os;
    sink.write(os);
    return os.str();
}

} // namespace

TEST(TraceSink, ValidatorRejectsBrokenJson)
{
    EXPECT_TRUE(jsonIsBalanced("{\"a\": [1, \"x\\\"]{\"]}"));
    EXPECT_FALSE(jsonIsBalanced("{\"a\": [1}"));
    EXPECT_FALSE(jsonIsBalanced("{\"a\": \"unterminated}"));
    EXPECT_FALSE(jsonIsBalanced("{}{}"));
    EXPECT_FALSE(jsonIsBalanced(""));
}

TEST(TraceSink, SortsByContentNotEmissionOrder)
{
    TraceSink sink(2);
    sink.setLaneName(0, "node0");
    sink.setLaneName(1, "broker");
    // Emitted out of timestamp order and across lanes; the flush must
    // order by (ts, lane, phase, name, ...) regardless.
    sink.span(TraceSink::kPacket, 1, "late", 2 * kNanosecond,
              3 * kNanosecond);
    sink.instant(TraceSink::kPsim, 0, "tick", kNanosecond);
    sink.span(TraceSink::kPacket, 0, "early", kNanosecond,
              2 * kNanosecond);
    std::ostringstream os;
    sink.write(os);
    const std::string text = os.str();
    EXPECT_EQ(sink.size(), 3u);
    EXPECT_TRUE(jsonIsBalanced(text)) << text;
    // Same tick, same lane: spans ('X') sort before instants ('i').
    EXPECT_LT(text.find("\"early\""), text.find("\"tick\"")) << text;
    EXPECT_LT(text.find("\"tick\""), text.find("\"late\"")) << text;
    EXPECT_NE(text.find("\"node0\""), std::string::npos);
    EXPECT_NE(text.find("\"broker\""), std::string::npos);
}

TEST(TraceSink, CategoryMaskDropsAtTheEmitSite)
{
    TraceSink packet_only(1, TraceSink::kPacket);
    EXPECT_TRUE(packet_only.wants(TraceSink::kPacket));
    EXPECT_FALSE(packet_only.wants(TraceSink::kPsim));
    packet_only.span(TraceSink::kPsim, 0, "dropped", 0, 10);
    packet_only.counter(TraceSink::kPsim, 0, "dropped", 0, 1);
    packet_only.span(TraceSink::kPacket, 0, "kept", 0, 10);
    EXPECT_EQ(packet_only.size(), 1u);
}

TEST(TraceSink, PacketTraceByteIdenticalAcrossKernels)
{
    // fig12_performance.base runs warmup-free, so the serial and
    // parallel kernels execute the same schedule and must produce the
    // same multiset of packet-lifecycle events — and, through the
    // content sort, the same bytes.
    const std::string serial =
        runTraced(baseScenario(), 0, TraceSink::kPacket);
    EXPECT_FALSE(serial.empty());
    EXPECT_TRUE(jsonIsBalanced(serial));
    EXPECT_EQ(runTraced(baseScenario(), 1, TraceSink::kPacket), serial);
    EXPECT_EQ(runTraced(baseScenario(), 4, TraceSink::kPacket), serial);
}

TEST(TraceSink, FullTraceByteIdenticalAcrossWorkerCounts)
{
    // With psim events included, determinism holds across worker
    // counts of the parallel kernel (the window sequence is pinned by
    // the conservative lookahead, not by the host thread interleaving).
    const std::string one = runTraced(baseScenario(), 1, TraceSink::kAll);
    EXPECT_TRUE(jsonIsBalanced(one));
    EXPECT_NE(one.find("psim.window"), std::string::npos);
    EXPECT_EQ(runTraced(baseScenario(), 4, TraceSink::kAll), one);
    // The serial kernel has no windows: its full trace is exactly its
    // packet trace.
    EXPECT_EQ(runTraced(baseScenario(), 0, TraceSink::kAll),
              runTraced(baseScenario(), 0, TraceSink::kPacket));
}

TEST(TraceSink, ObservationDoesNotPerturbTheSimulation)
{
    const Scenario& scenario = baseScenario();
    ScopedQuietLogs quiet;
    System plain(scenario.config);
    plain.run(0);
    const std::string baseline = plain.sim().stats().jsonString();
    // observability defaults off: no obs_* histograms in the export.
    EXPECT_EQ(baseline.find("obs_"), std::string::npos);

    System observed(scenario.config);
    TraceSink sink(observed.traceLanes());
    Profiler prof;
    observed.attachTrace(&sink);
    observed.attachProfiler(&prof);
    observed.run(0);
    EXPECT_GT(sink.size(), 0u);
    EXPECT_EQ(observed.sim().stats().jsonString(), baseline);
}

TEST(TraceSink, EmptyCategoryMaskRecordsNothingEndToEnd)
{
    // Every emit site must gate on wants(): a sink that wants no
    // category stays empty through a full system run.
    ScopedQuietLogs quiet;
    System system(baseScenario().config);
    TraceSink none(system.traceLanes(), 0);
    system.attachTrace(&none);
    system.run(4);
    EXPECT_EQ(none.size(), 0u);
    std::ostringstream os;
    none.write(os);
    EXPECT_TRUE(jsonIsBalanced(os.str()));
}

TEST(TraceSink, ObservedScenarioExportsGatedHistograms)
{
    const Scenario& scenario =
        ScenarioRegistry::paper().byName("fig12_performance.observed");
    ASSERT_TRUE(scenario.config.observability);
    ScopedQuietLogs quiet;
    System system(scenario.config);
    system.run(0);
    const std::string json = system.sim().stats().jsonString();
    for (const char* stat :
         {"node0.stu.obs_queue_wait_ns", "node0.stu.obs_translation_ns",
          "node0.translator.obs_lookup_ns", "fam.module0.obs_fabric_ns",
          "fam.module0.obs_service_ns", "node0.dram.obs_service_ns"}) {
        EXPECT_NE(json.find(stat), std::string::npos) << stat;
    }
    EXPECT_NE(json.find("\"p99\""), std::string::npos);
}

} // namespace famsim
