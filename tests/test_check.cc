/**
 * @file
 * Partition-ownership checker (FAMSIM_CHECK, src/sim/check.hh).
 *
 * The negative tests seed deliberate ownership violations — a
 * cross-partition stat write, a mid-exec mailbox bypass (direct
 * schedule onto a foreign queue), a wrong-lane mailbox push, a packet
 * pool op during a drain — and pin the owner/accessor/phase
 * diagnostic. They run the kernel with threads = 1, where the worker
 * pool degenerates to a plain caller loop, so the panic-thrown
 * SimError (ScopedThrowOnError) propagates to the test without
 * forking; the checker itself is thread-count-independent, firing at
 * the same event on every run.
 *
 * When the checker is compiled out the suite reduces to one skipped
 * placeholder, keeping the ctest inventory identical across builds.
 */

#include <gtest/gtest.h>

#include <string>

#include "mem/packet.hh"
#include "psim/node_queue.hh"
#include "psim/parallel_sim.hh"
#include "sim/check.hh"
#include "sim/logging.hh"
#include "sim/simulation.hh"

namespace famsim {
namespace {

#if FAMSIM_CHECK

/** Expect @p msg to name the owner, the accessor and the phase. */
void
expectDiagnostic(const std::string& msg, const std::string& owner,
                 const std::string& accessor, const std::string& phase)
{
    EXPECT_NE(msg.find(owner), std::string::npos) << msg;
    EXPECT_NE(msg.find(accessor), std::string::npos) << msg;
    EXPECT_NE(msg.find("during the " + phase + " phase"),
              std::string::npos)
        << msg;
}

TEST(OwnershipCheck, CrossPartitionStatWriteFatals)
{
    Simulation sim;
    ParallelSim psim(sim, 2, 10, 1);
    Counter* victim = nullptr;
    {
        check::WiringScope wire(1);
        victim = &sim.stats().counter("check.victim", "owned by 1");
    }
    // Seed the violation: an event on partition 0 bumps partition 1's
    // counter directly instead of routing through a mailbox post.
    psim.withPartition(0, [&] {
        sim.events().schedule(5, [&] { ++*victim; });
    });
    ScopedThrowOnError guard;
    try {
        psim.run();
        FAIL() << "expected the ownership checker to fire";
    } catch (const SimError& err) {
        const std::string msg = err.what();
        expectDiagnostic(msg, "owned by partition 1", "partition 0",
                         "exec");
        EXPECT_NE(msg.find("check.victim"), std::string::npos) << msg;
    }
}

TEST(OwnershipCheck, MidExecMailboxBypassFatals)
{
    Simulation sim;
    ParallelSim psim(sim, 2, 10, 1);
    // Seed the bypass: mid-exec, partition 0 schedules straight onto
    // partition 1's queue, skipping ParallelSim::post entirely.
    psim.withPartition(0, [&] {
        sim.events().schedule(5, [&] {
            psim.queueOf(1).schedule(100, [] {});
        });
    });
    ScopedThrowOnError guard;
    try {
        psim.run();
        FAIL() << "expected the ownership checker to fire";
    } catch (const SimError& err) {
        expectDiagnostic(err.what(), "owned by partition 1",
                         "partition 0", "exec");
    }
}

TEST(OwnershipCheck, WrongLaneMailboxPushFatals)
{
    // Unit-level: lane src of a NodeQueue may only be appended to by
    // partition src. Fake an exec context for partition 1 and push
    // into partition 0's lane.
    NodeQueue nq(1, 2);
    check::PhaseScope phase(1, check::Phase::Exec);
    ScopedThrowOnError guard;
    try {
        nq.postInbox(0).push(PostMsg{50, PostFn([] {})}, 50);
        FAIL() << "expected the ownership checker to fire";
    } catch (const SimError& err) {
        expectDiagnostic(err.what(), "produced by partition 0",
                         "partition 1", "exec");
    }
}

TEST(OwnershipCheck, PacketPoolOpDuringDrainFatals)
{
    check::PhaseScope phase(0, check::Phase::Drain);
    ScopedThrowOnError guard;
    try {
        (void)makePacket(0, 0, MemOp::Read, PacketKind::Data);
        FAIL() << "expected the ownership checker to fire";
    } catch (const SimError& err) {
        const std::string msg = err.what();
        EXPECT_NE(msg.find("packet pool operation"), std::string::npos)
            << msg;
        EXPECT_NE(msg.find("drain phase"), std::string::npos) << msg;
    }
}

TEST(OwnershipCheck, FiresIdenticallyOnEveryRun)
{
    // Determinism of the checker itself: the same seeded violation
    // produces byte-identical diagnostics run after run.
    std::string first;
    for (int round = 0; round < 3; ++round) {
        Simulation sim;
        ParallelSim psim(sim, 2, 10, 1);
        Counter* victim = nullptr;
        {
            check::WiringScope wire(1);
            victim = &sim.stats().counter("check.victim", "owned by 1");
        }
        psim.withPartition(0, [&] {
            sim.events().schedule(5, [&] { ++*victim; });
        });
        ScopedThrowOnError guard;
        std::string msg;
        try {
            psim.run();
        } catch (const SimError& err) {
            msg = err.what();
        }
        ASSERT_FALSE(msg.empty());
        if (round == 0)
            first = msg;
        else
            EXPECT_EQ(msg, first);
    }
}

TEST(OwnershipCheck, LegalTrafficIsNotFlagged)
{
    // The positive contract: partition-local bumps, mailbox posts and
    // the delivered continuation's writes on the owning partition all
    // pass, and the run completes with the expected counts.
    Simulation sim;
    ParallelSim psim(sim, 2, 10, 1);
    Counter* local = nullptr;
    Counter* remote = nullptr;
    {
        check::WiringScope wire(0);
        local = &sim.stats().counter("check.local", "owned by 0");
    }
    {
        check::WiringScope wire(1);
        remote = &sim.stats().counter("check.remote", "owned by 1");
    }
    psim.withPartition(0, [&] {
        sim.events().schedule(5, [&] {
            ++*local;
            psim.post(1, sim.curTick() + 10,
                      PostFn([&] { ++*remote; }));
        });
    });
    psim.run();
    EXPECT_EQ(local->value(), 1u);
    EXPECT_EQ(remote->value(), 1u);
}

TEST(OwnershipCheck, BarrierOpsMayTouchAnyPartition)
{
    // Global barrier ops run single-threaded between windows; the
    // Barrier phase deliberately exempts them, so a warmup-style
    // cross-partition stat reset/bump must not trip the checker.
    Simulation sim;
    ParallelSim psim(sim, 2, 10, 1);
    Counter* owned = nullptr;
    {
        check::WiringScope wire(0);
        owned = &sim.stats().counter("check.owned", "owned by 0");
    }
    psim.withPartition(1, [&] {
        sim.events().schedule(5, [&] {
            psim.postGlobal(sim.curTick() + 10, [&] { ++*owned; });
        });
    });
    psim.run();
    EXPECT_EQ(owned->value(), 1u);
}

TEST(OwnershipCheck, UnstampedObjectsAreNeverChecked)
{
    // Serial-mode fixtures register stats with no WiringScope active:
    // unowned tags must stay permanently exempt.
    Simulation sim;
    Counter& c = sim.stats().counter("check.unowned", "no owner");
    ParallelSim psim(sim, 2, 10, 1);
    psim.withPartition(0, [&] {
        sim.events().schedule(5, [&] { ++c; });
    });
    psim.run();
    EXPECT_EQ(c.value(), 1u);
}

#else // !FAMSIM_CHECK

TEST(OwnershipCheck, RequiresFamsimCheckBuild)
{
    GTEST_SKIP() << "FAMSIM_CHECK is compiled out in this build "
                    "(configure with -DFAMSIM_CHECK=ON, or build Debug)";
}

#endif // FAMSIM_CHECK

} // namespace
} // namespace famsim
