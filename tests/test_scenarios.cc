/**
 * @file
 * Scenario regression tests: every registered paper scenario must
 * reproduce its committed golden JSON byte-for-byte, and simulation
 * must be deterministic under a fixed seed.
 *
 * Regenerate goldens after an intentional behaviour change with
 *   FAMSIM_UPDATE_GOLDEN=1 ctest -R Scenario
 * and review the diff like any other code change.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "harness/scenario.hh"
#include "harness/sweep.hh"
#include "sim/logging.hh"

#ifndef FAMSIM_GOLDEN_DIR
#define FAMSIM_GOLDEN_DIR "tests/golden"
#endif

namespace famsim {
namespace {

std::string
goldenPath(const std::string& scenario_name)
{
    return std::string(FAMSIM_GOLDEN_DIR) + "/" + scenario_name + ".json";
}

std::string
readFile(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return {};
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

bool
updateRequested()
{
    const char* env = std::getenv("FAMSIM_UPDATE_GOLDEN");
    return env != nullptr && *env != '\0' && std::string(env) != "0";
}

/** Headline scenarios and sweep points share one golden machinery. */
const Scenario&
findScenario(const std::string& name)
{
    if (ScenarioRegistry::paper().has(name))
        return ScenarioRegistry::paper().byName(name);
    return SweepRegistry::paperPoints().byName(name);
}

class ScenarioGolden : public testing::TestWithParam<std::string>
{
};

TEST_P(ScenarioGolden, MatchesGoldenJson)
{
    const Scenario& scenario = findScenario(GetParam());
    const std::string actual = runScenarioJson(scenario);
    const std::string path = goldenPath(scenario.name);

    if (updateRequested()) {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        ASSERT_TRUE(out) << "cannot write golden " << path;
        out << actual;
        GTEST_SKIP() << "golden updated: " << path;
    }

    const std::string expected = readFile(path);
    ASSERT_FALSE(expected.empty())
        << "missing golden " << path
        << " (regenerate with FAMSIM_UPDATE_GOLDEN=1)";
    EXPECT_EQ(expected, actual)
        << "scenario '" << scenario.name
        << "' diverged from its golden; if intentional, regenerate "
           "with FAMSIM_UPDATE_GOLDEN=1 and commit the diff";
}

std::string
testId(const testing::TestParamInfo<std::string>& info)
{
    std::string id = info.param;
    for (char& c : id) {
        if (c == '.' || c == '-')
            c = '_';
    }
    return id;
}

INSTANTIATE_TEST_SUITE_P(
    Paper, ScenarioGolden,
    testing::ValuesIn(ScenarioRegistry::paper().names()), testId);

// One pinned point per sensitivity sweep (Fig. 13-16); the full
// expansions run via famsim_cli --sweep and the CI artifact export.
INSTANTIATE_TEST_SUITE_P(Sweeps, ScenarioGolden,
                         testing::ValuesIn(goldenSweepPointNames()),
                         testId);

// ------------------------------------------------------------ registry

TEST(ScenarioRegistry, PaperCoversHeadlineFigures)
{
    const ScenarioRegistry& reg = ScenarioRegistry::paper();
    EXPECT_GE(reg.byFigure("fig09_acm_hit_rate").size(), 3u);
    EXPECT_GE(reg.byFigure("fig10_at_hit_rate").size(), 2u);
    EXPECT_GE(reg.byFigure("fig12_performance").size(), 4u);
    EXPECT_EQ(reg.byFigure("multitenant").size(), 3u);
    EXPECT_GE(reg.size(), 9u);
}

TEST(ScenarioRegistry, MultiTenantFamilyShapesAreDistinct)
{
    const ScenarioRegistry& reg = ScenarioRegistry::paper();
    const Scenario& contention =
        reg.byName("multitenant.contention.deactn");
    EXPECT_GT(contention.config.tenancy.jobs, 1u);
    EXPECT_EQ(contention.config.tenancy.churnMeanOps, 0u);
    EXPECT_TRUE(contention.config.migrations.empty());

    const Scenario& churn = reg.byName("multitenant.churn.deactn");
    EXPECT_GT(churn.config.tenancy.churnMeanOps, 0u);

    const Scenario& storm =
        reg.byName("multitenant.migration_storm.deactn");
    ASSERT_EQ(storm.config.migrations.size(), 3u);
    // Logical bounce plus one physical-id move, all inside the budget.
    EXPECT_TRUE(storm.config.migrations[0].useLogicalIds);
    EXPECT_FALSE(storm.config.migrations[2].useLogicalIds);
    for (const MigrationEvent& ev : storm.config.migrations) {
        EXPECT_LT(ev.atInstruction,
                  storm.config.core.instructionLimit);
    }
}

TEST(ScenarioRegistry, LookupAndNamesAgree)
{
    const ScenarioRegistry& reg = ScenarioRegistry::paper();
    for (const std::string& name : reg.names()) {
        ASSERT_TRUE(reg.has(name));
        const Scenario& s = reg.byName(name);
        EXPECT_EQ(s.name, name);
        EXPECT_FALSE(s.figure.empty());
        EXPECT_FALSE(s.headlineMetric.empty());
        // Scenario budgets must not depend on the environment.
        EXPECT_GT(s.config.core.instructionLimit, 0u);
    }
}

TEST(ScenarioRegistry, RejectsDuplicateNames)
{
    ScenarioRegistry reg;
    Scenario s = ScenarioRegistry::paper().byName(
        ScenarioRegistry::paper().names().front());
    reg.add(s);
    ScopedThrowOnError throw_on_error;
    EXPECT_THROW(reg.add(s), SimError);
}

// ------------------------------------------------------------- sweeps

TEST(SweepRegistry, PaperCoversSensitivityFigures)
{
    const SweepRegistry& reg = SweepRegistry::paper();
    ASSERT_TRUE(reg.has("fig13_stu_entries"));
    ASSERT_TRUE(reg.has("fig14_acm_size"));
    ASSERT_TRUE(reg.has("fig15_fabric_latency"));
    ASSERT_TRUE(reg.has("fig16_num_nodes"));
    EXPECT_EQ(reg.size(), 4u);
    for (const std::string& name : reg.names())
        EXPECT_GE(reg.byName(name).axis.points.size(), 3u);
}

TEST(SweepRegistry, Fig16CoversPaperNodeCounts)
{
    const Sweep& sweep =
        SweepRegistry::paper().byName("fig16_num_nodes");
    std::vector<double> values;
    for (const auto& p : sweep.axis.points)
        values.push_back(p.value);
    // 1-8 is the paper's range; 16/32/64 is the parallel-kernel
    // scaling extension.
    EXPECT_EQ(values, (std::vector<double>{1, 2, 4, 8, 16, 32, 64}));
    // The mutator actually reconfigures the node count.
    const std::vector<Scenario> points = sweep.expand();
    ASSERT_EQ(points.size(), values.size());
    for (std::size_t i = 0; i < points.size(); ++i) {
        EXPECT_EQ(points[i].figure, "fig16_num_nodes");
        EXPECT_EQ(static_cast<double>(points[i].config.nodes),
                  values[i]);
    }
}

TEST(SweepRegistry, ExpansionNamesAreRegisteredPoints)
{
    const ScenarioRegistry& points = SweepRegistry::paperPoints();
    std::size_t total = 0;
    for (const std::string& name : SweepRegistry::paper().names()) {
        const Sweep& sweep = SweepRegistry::paper().byName(name);
        total += sweep.axis.points.size();
        for (const Scenario& point : sweep.expand()) {
            ASSERT_TRUE(points.has(point.name)) << point.name;
            EXPECT_EQ(point.name.rfind(name + ".", 0), 0u)
                << "point name must be '<sweep>.<label>'";
            // Sweep budgets must not depend on the environment.
            EXPECT_GT(point.config.core.instructionLimit, 0u);
        }
    }
    EXPECT_EQ(points.size(), total);
}

TEST(SweepRegistry, GoldenPointsCoverEverySweep)
{
    const ScenarioRegistry& points = SweepRegistry::paperPoints();
    std::set<std::string> figures;
    for (const std::string& name : goldenSweepPointNames()) {
        ASSERT_TRUE(points.has(name)) << name;
        figures.insert(points.byName(name).figure);
    }
    EXPECT_EQ(figures.size(), SweepRegistry::paper().size())
        << "every sweep needs at least one golden-pinned point";
}

TEST(SweepRegistry, RejectsDuplicatesAndEmptySweeps)
{
    ScopedThrowOnError throw_on_error;
    SweepRegistry reg;
    Sweep empty;
    empty.name = "empty";
    EXPECT_THROW(reg.add(empty), SimError);

    Sweep sweep;
    sweep.name = "s";
    sweep.axis.points.push_back({"p1", 1.0, [](SystemConfig&) {}});
    reg.add(sweep);
    EXPECT_THROW(reg.add(sweep), SimError);
}

TEST(SweepJson, SameSeedSameBytes)
{
    // The famsim_cli --sweep export must be byte-stable, golden-style.
    const Sweep& sweep = SweepRegistry::paper().byName("fig14_acm_size");
    const std::string first = runSweepJson(sweep);
    const std::string second = runSweepJson(sweep);
    EXPECT_EQ(first, second);
    // And it must cover every axis point.
    for (const auto& p : sweep.axis.points) {
        EXPECT_NE(first.find("\"" + sweep.name + "." + p.label + "\""),
                  std::string::npos)
            << p.label;
    }
}

// ---------------------------------------------------------- curve gate

/**
 * Relative tolerance of the fig16 curve gate. The byte-exact goldens
 * above catch *any* behaviour change; this gate instead bounds how far
 * a deliberate change may move the node-scaling curve before someone
 * must re-baseline it consciously. FAMSIM_CURVE_TOLERANCE overrides
 * the default (e.g. a CI job that tolerates more drift).
 */
double
curveTolerance()
{
    constexpr double kDefault = 0.05;
    if (const char* env = std::getenv("FAMSIM_CURVE_TOLERANCE")) {
        char* end = nullptr;
        double v = std::strtod(env, &end);
        if (end != nullptr && *end == '\0' && v > 0.0)
            return v;
    }
    return kDefault;
}

/**
 * The fig16 node-scaling curve must stay within a per-point relative
 * tolerance of its committed baseline (tests/golden/
 * fig16_num_nodes.curve.json). Regenerate with FAMSIM_UPDATE_GOLDEN=1
 * like the byte-exact goldens. Points n1-n16 cover the paper's range
 * plus the first scaling-extension point; n32/n64 are excluded to keep
 * the gate cheap on every ctest run.
 */
TEST(CurveGate, Fig16NodeScalingStaysOnBaseline)
{
    const std::vector<std::string> labels = {"n1", "n2", "n4", "n8",
                                             "n16"};
    const ScenarioRegistry& points = SweepRegistry::paperPoints();
    std::vector<double> actual;
    {
        ScopedQuietLogs quiet;
        for (const std::string& label : labels) {
            const Scenario& point =
                points.byName("fig16_num_nodes." + label);
            System system(point.config);
            system.run();
            actual.push_back(system.ipc());
        }
    }

    const std::string path = goldenPath("fig16_num_nodes.curve");
    if (updateRequested()) {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        ASSERT_TRUE(out) << "cannot write baseline " << path;
        out << "{\n  \"sweep\": \"fig16_num_nodes\",\n"
               "  \"metric\": \"ipc\",\n  \"points\": {";
        for (std::size_t i = 0; i < labels.size(); ++i) {
            out << (i ? "," : "") << "\n    \"" << labels[i] << "\": ";
            json::writeNumber(out, actual[i]);
        }
        out << "\n  }\n}\n";
        GTEST_SKIP() << "curve baseline updated: " << path;
    }

    const std::string baseline = readFile(path);
    ASSERT_FALSE(baseline.empty())
        << "missing curve baseline " << path
        << " (regenerate with FAMSIM_UPDATE_GOLDEN=1)";
    const double tolerance = curveTolerance();
    for (std::size_t i = 0; i < labels.size(); ++i) {
        const std::string key = "\"" + labels[i] + "\": ";
        const std::size_t at = baseline.find(key);
        ASSERT_NE(at, std::string::npos)
            << "baseline lacks point " << labels[i];
        const double expected =
            std::strtod(baseline.c_str() + at + key.size(), nullptr);
        ASSERT_GT(expected, 0.0) << "degenerate baseline ipc";
        const double rel = std::abs(actual[i] - expected) / expected;
        EXPECT_LE(rel, tolerance)
            << "fig16_num_nodes." << labels[i] << " ipc " << actual[i]
            << " drifted " << 100.0 * rel << "% from baseline "
            << expected << " (tolerance " << 100.0 * tolerance
            << "%); re-baseline with FAMSIM_UPDATE_GOLDEN=1 if "
               "intentional";
    }
}

// -------------------------------------------------------- determinism

TEST(Determinism, SameSeedSameJson)
{
    Scenario scenario =
        ScenarioRegistry::paper().byName("fig12_performance.mcf.deactn");
    const std::string first = runScenarioJson(scenario);
    const std::string second = runScenarioJson(scenario);
    EXPECT_EQ(first, second)
        << "two runs with the same seed must export byte-identical "
           "JSON stats";
}

TEST(Determinism, DifferentSeedDiverges)
{
    Scenario scenario =
        ScenarioRegistry::paper().byName("fig12_performance.mcf.deactn");
    const std::string base = runScenarioJson(scenario);
    scenario.config.seed = 0xD15EA5E;
    const std::string reseeded = runScenarioJson(scenario);
    EXPECT_NE(base, reseeded)
        << "changing the seed should perturb the exported stats";
}

} // namespace
} // namespace famsim
