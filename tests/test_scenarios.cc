/**
 * @file
 * Scenario regression tests: every registered paper scenario must
 * reproduce its committed golden JSON byte-for-byte, and simulation
 * must be deterministic under a fixed seed.
 *
 * Regenerate goldens after an intentional behaviour change with
 *   FAMSIM_UPDATE_GOLDEN=1 ctest -R Scenario
 * and review the diff like any other code change.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "harness/scenario.hh"
#include "sim/logging.hh"

#ifndef FAMSIM_GOLDEN_DIR
#define FAMSIM_GOLDEN_DIR "tests/golden"
#endif

namespace famsim {
namespace {

std::string
goldenPath(const std::string& scenario_name)
{
    return std::string(FAMSIM_GOLDEN_DIR) + "/" + scenario_name + ".json";
}

std::string
readFile(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return {};
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

bool
updateRequested()
{
    const char* env = std::getenv("FAMSIM_UPDATE_GOLDEN");
    return env != nullptr && *env != '\0' && std::string(env) != "0";
}

class ScenarioGolden : public testing::TestWithParam<std::string>
{
};

TEST_P(ScenarioGolden, MatchesGoldenJson)
{
    const Scenario& scenario =
        ScenarioRegistry::paper().byName(GetParam());
    const std::string actual = runScenarioJson(scenario);
    const std::string path = goldenPath(scenario.name);

    if (updateRequested()) {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        ASSERT_TRUE(out) << "cannot write golden " << path;
        out << actual;
        GTEST_SKIP() << "golden updated: " << path;
    }

    const std::string expected = readFile(path);
    ASSERT_FALSE(expected.empty())
        << "missing golden " << path
        << " (regenerate with FAMSIM_UPDATE_GOLDEN=1)";
    EXPECT_EQ(expected, actual)
        << "scenario '" << scenario.name
        << "' diverged from its golden; if intentional, regenerate "
           "with FAMSIM_UPDATE_GOLDEN=1 and commit the diff";
}

INSTANTIATE_TEST_SUITE_P(
    Paper, ScenarioGolden,
    testing::ValuesIn(ScenarioRegistry::paper().names()),
    [](const testing::TestParamInfo<std::string>& info) {
        std::string id = info.param;
        for (char& c : id) {
            if (c == '.' || c == '-')
                c = '_';
        }
        return id;
    });

// ------------------------------------------------------------ registry

TEST(ScenarioRegistry, PaperCoversHeadlineFigures)
{
    const ScenarioRegistry& reg = ScenarioRegistry::paper();
    EXPECT_GE(reg.byFigure("fig09_acm_hit_rate").size(), 3u);
    EXPECT_GE(reg.byFigure("fig10_at_hit_rate").size(), 2u);
    EXPECT_GE(reg.byFigure("fig12_performance").size(), 4u);
    EXPECT_GE(reg.size(), 9u);
}

TEST(ScenarioRegistry, LookupAndNamesAgree)
{
    const ScenarioRegistry& reg = ScenarioRegistry::paper();
    for (const std::string& name : reg.names()) {
        ASSERT_TRUE(reg.has(name));
        const Scenario& s = reg.byName(name);
        EXPECT_EQ(s.name, name);
        EXPECT_FALSE(s.figure.empty());
        EXPECT_FALSE(s.headlineMetric.empty());
        // Scenario budgets must not depend on the environment.
        EXPECT_GT(s.config.core.instructionLimit, 0u);
    }
}

TEST(ScenarioRegistry, RejectsDuplicateNames)
{
    ScenarioRegistry reg;
    Scenario s = ScenarioRegistry::paper().byName(
        ScenarioRegistry::paper().names().front());
    reg.add(s);
    ScopedThrowOnError throw_on_error;
    EXPECT_THROW(reg.add(s), SimError);
}

// -------------------------------------------------------- determinism

TEST(Determinism, SameSeedSameJson)
{
    Scenario scenario =
        ScenarioRegistry::paper().byName("fig12_performance.mcf.deactn");
    const std::string first = runScenarioJson(scenario);
    const std::string second = runScenarioJson(scenario);
    EXPECT_EQ(first, second)
        << "two runs with the same seed must export byte-identical "
           "JSON stats";
}

TEST(Determinism, DifferentSeedDiverges)
{
    Scenario scenario =
        ScenarioRegistry::paper().byName("fig12_performance.mcf.deactn");
    const std::string base = runScenarioJson(scenario);
    scenario.config.seed = 0xD15EA5E;
    const std::string reseeded = runScenarioJson(scenario);
    EXPECT_NE(base, reseeded)
        << "changing the seed should perturb the exported stats";
}

} // namespace
} // namespace famsim
