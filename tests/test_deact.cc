/**
 * @file
 * Tests for the DeACT FAM translator: DRAM-cached translation lookup,
 * the V flag, miss coalescing, the update read-modify-write, the
 * outstanding mapping list and migration shootdown.
 */

#include <gtest/gtest.h>

#include "deact/fam_translator.hh"
#include "fam/broker.hh"
#include "test_util.hh"

namespace famsim {
namespace {

class TranslatorTest : public ::testing::Test
{
  protected:
    static constexpr NodeId kNode = 0;

    void
    build(unsigned max_outstanding = 128)
    {
        layout_ = std::make_unique<FamLayout>(16ull << 30, 16, 0);
        acm_ = std::make_unique<AcmStore>(16);
        media_ = std::make_unique<FamMedia>(sim_, "fam", FamMediaParams{});
        FabricParams fp;
        fp.latency = 100 * kNanosecond;
        fp.serialization = 0;
        fabric_ = std::make_unique<FabricLink>(sim_, "fabric", fp);
        broker_ = std::make_unique<MemoryBroker>(sim_, "broker",
                                                 BrokerParams{}, *layout_,
                                                 *acm_, media_.get());
        broker_->registerNode(kNode);

        StuParams sp;
        sp.org = StuOrg::DeactN;
        sp.nodeLinkLatency = 10 * kNanosecond;
        stu_ = std::make_unique<Stu>(sim_, "stu", sp, kNode, *layout_,
                                     *acm_, *broker_, *fabric_, *media_);

        BankedMemoryParams dp;
        dp.readLatency = 40 * kNanosecond;
        dp.writeLatency = 40 * kNanosecond;
        dp.frontendLatency = 0;
        dram_ = std::make_unique<BankedMemory>(sim_, "dram", dp);

        FamTranslatorParams tp;
        tp.cacheBytes = 64 * 1024;
        tp.maxOutstanding = max_outstanding;
        tp.dramCacheBase = 0x10000000;
        translator_ = std::make_unique<FamTranslator>(
            sim_, "translator", tp, *dram_, *stu_);
    }

    std::uint64_t
    mapPage(std::uint64_t npa_page)
    {
        std::uint64_t fam_page =
            broker_->allocPage(broker_->logicalIdOf(kNode), Perms{});
        broker_->famTableOf(kNode).map(npa_page, fam_page, Perms{});
        return fam_page;
    }

    PktPtr
    request(std::uint64_t npa, MemOp op = MemOp::Read)
    {
        auto pkt = makePacket(kNode, 0, op, PacketKind::Data);
        pkt->logicalNode = broker_->logicalIdOf(kNode);
        pkt->npa = NPAddr(npa);
        pkt->onDone = [this](Packet& p) {
            ++completed_;
            lastGranted_ = p.accessGranted;
        };
        return pkt;
    }

    Simulation sim_;
    std::unique_ptr<FamLayout> layout_;
    std::unique_ptr<AcmStore> acm_;
    std::unique_ptr<FamMedia> media_;
    std::unique_ptr<FabricLink> fabric_;
    std::unique_ptr<MemoryBroker> broker_;
    std::unique_ptr<Stu> stu_;
    std::unique_ptr<BankedMemory> dram_;
    std::unique_ptr<FamTranslator> translator_;

    int completed_ = 0;
    bool lastGranted_ = false;
};

TEST_F(TranslatorTest, MissThenHitPath)
{
    build();
    mapPage(0x1234);

    // Cold access: translation miss -> V=0 -> STU walk -> mapping
    // response updates the DRAM cache.
    translator_->access(request(0x1234ull * kPageSize));
    test::drain(sim_);
    EXPECT_EQ(completed_, 1);
    EXPECT_TRUE(lastGranted_);
    EXPECT_DOUBLE_EQ(sim_.stats().get("translator.misses"), 1.0);
    EXPECT_DOUBLE_EQ(sim_.stats().get("stu.walks"), 1.0);
    // Update path: lookup read + RMW read + RMW write.
    EXPECT_DOUBLE_EQ(sim_.stats().get("translator.dram_writes"), 1.0);

    // Warm access: hit, V=1, no STU walk.
    translator_->access(request(0x1234ull * kPageSize + 64));
    test::drain(sim_);
    EXPECT_EQ(completed_, 2);
    EXPECT_DOUBLE_EQ(sim_.stats().get("translator.hits"), 1.0);
    EXPECT_DOUBLE_EQ(sim_.stats().get("stu.walks"), 1.0); // unchanged
    EXPECT_GT(translator_->hitRate(), 0.4);
}

TEST_F(TranslatorTest, EveryLookupCostsOneDramRead)
{
    build();
    mapPage(0x42);
    translator_->access(request(0x42ull * kPageSize));
    test::drain(sim_);
    translator_->access(request(0x42ull * kPageSize));
    test::drain(sim_);
    // 2 lookups + 1 update RMW read = 3 DRAM reads.
    EXPECT_DOUBLE_EQ(sim_.stats().get("translator.dram_reads"), 3.0);
    EXPECT_DOUBLE_EQ(sim_.stats().get("dram.reads"), 3.0);
}

TEST_F(TranslatorTest, ConcurrentMissesCoalesce)
{
    build();
    mapPage(0x55);
    translator_->access(request(0x55ull * kPageSize));
    translator_->access(request(0x55ull * kPageSize + 8));
    translator_->access(request(0x55ull * kPageSize + 16));
    test::drain(sim_);
    EXPECT_EQ(completed_, 3);
    EXPECT_DOUBLE_EQ(sim_.stats().get("stu.walks"), 1.0);
    EXPECT_DOUBLE_EQ(sim_.stats().get("translator.coalesced"), 2.0);
}

TEST_F(TranslatorTest, OutstandingListLimitsReads)
{
    build(/*max_outstanding=*/2);
    for (std::uint64_t p = 0; p < 4; ++p)
        mapPage(0x100 + p);
    // Warm the cache first.
    for (std::uint64_t p = 0; p < 4; ++p) {
        translator_->access(request((0x100 + p) * kPageSize));
        test::drain(sim_);
    }
    completed_ = 0;
    // Burst of 4 reads with only 2 outstanding slots.
    for (std::uint64_t p = 0; p < 4; ++p)
        translator_->access(request((0x100 + p) * kPageSize));
    EXPECT_GT(sim_.stats().get("translator.stalls"), 0.0);
    test::drain(sim_);
    EXPECT_EQ(completed_, 4); // all eventually complete
}

TEST_F(TranslatorTest, WritesBypassTheOutstandingList)
{
    build(/*max_outstanding=*/1);
    mapPage(0x200);
    translator_->access(request(0x200ull * kPageSize, MemOp::Write));
    translator_->access(request(0x200ull * kPageSize + 8, MemOp::Write));
    test::drain(sim_);
    EXPECT_EQ(completed_, 2);
    EXPECT_DOUBLE_EQ(sim_.stats().get("translator.stalls"), 0.0);
}

TEST_F(TranslatorTest, InvalidateAllForcesRewalk)
{
    build();
    mapPage(0x300);
    translator_->access(request(0x300ull * kPageSize));
    test::drain(sim_);
    EXPECT_DOUBLE_EQ(sim_.stats().get("stu.walks"), 1.0);

    translator_->invalidateAll();
    translator_->access(request(0x300ull * kPageSize));
    test::drain(sim_);
    EXPECT_DOUBLE_EQ(sim_.stats().get("stu.walks"), 2.0);
    EXPECT_DOUBLE_EQ(sim_.stats().get("translator.invalidations"), 1.0);
    // Shootdown cost: one DRAM write per line was accounted.
    EXPECT_GE(sim_.stats().get("translator.dram_writes"),
              static_cast<double>(translator_->cacheSets()));
}

TEST_F(TranslatorTest, VerifiedFlagTravelsWithHits)
{
    build();
    std::uint64_t fam_page = mapPage(0x400);
    translator_->access(request(0x400ull * kPageSize));
    test::drain(sim_);

    bool saw_verified = false;
    auto pkt = request(0x400ull * kPageSize + 32);
    auto orig = std::move(pkt->onDone);
    pkt->onDone = [&, orig = std::move(orig)](Packet& p) {
        saw_verified = p.verified;
        EXPECT_EQ(p.fam.pageNumber(), fam_page);
        orig(p);
    };
    translator_->access(pkt);
    test::drain(sim_);
    EXPECT_TRUE(saw_verified);
}

} // namespace
} // namespace famsim
