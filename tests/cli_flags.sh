#!/bin/sh
# CLI flag contract for famsim_cli: checked numeric parsing must
# reject garbage with exit 2 (not silently truncate or abort), and
# flags that a mode ignores must say so on stderr while the run still
# succeeds. Covers the --sweep-jobs executor flag end to end: parse
# errors, the ignored-without---sweep warning, the FAMSIM_SWEEP_JOBS
# default, and byte-identical sweep JSON across job counts.
#
# Usage: cli_flags.sh <path-to-famsim_cli>
set -eu

cli=$1

work=$(mktemp -d "${TMPDIR:-/tmp}/famsim_cli_flags.XXXXXX")
trap 'rm -rf "$work"' EXIT INT TERM

fail() {
    echo "FAIL: $1" >&2
    exit 1
}

# --- checked parsing: garbage exits 2, never runs -------------------
for bad in garbage 4x -3 0 1025; do
    if "$cli" --sweep fig14_acm_size --sweep-jobs "$bad" \
        > /dev/null 2> "$work/err.txt"; then
        fail "--sweep-jobs $bad was accepted"
    else
        status=$?
        [ "$status" -eq 2 ] ||
            fail "--sweep-jobs $bad exited $status, expected 2"
    fi
    grep -q "sweep-jobs" "$work/err.txt" ||
        fail "--sweep-jobs $bad error does not name the flag"
done

# --- --sweep-jobs without --sweep warns but still runs --------------
"$cli" --bench mcf --instr 2000 --sweep-jobs 2 \
    > /dev/null 2> "$work/warn.txt" ||
    fail "--sweep-jobs without --sweep broke the run"
grep -q "warn: --sweep-jobs is ignored without" "$work/warn.txt" ||
    fail "missing ignored-without---sweep warning"

# --- pinned modes warn about ignored config flags -------------------
"$cli" --scenario fig14_acm_size.b16 --stu-entries 512 --threads 0 \
    > "$work/pinned.json" 2> "$work/pinned_err.txt" ||
    fail "--scenario run with an ignored flag broke"
grep -q "warn: --stu-entries is ignored" "$work/pinned_err.txt" ||
    fail "missing pinned-flag warning for --stu-entries"
"$cli" --scenario fig14_acm_size.b16 --threads 0 > "$work/plain.json" \
    2> /dev/null
cmp -s "$work/pinned.json" "$work/plain.json" ||
    fail "the ignored flag changed the pinned scenario output"

# --- repeated warns are rate-limited to one line + a final count ----
"$cli" --scenario fig14_acm_size.b16 --stu-entries 512 \
    --stu-entries 256 --threads 0 > /dev/null 2> "$work/dedup_err.txt" ||
    fail "repeated ignored flag broke the run"
count=$(grep -c "warn: --stu-entries is ignored" "$work/dedup_err.txt")
[ "$count" -eq 1 ] ||
    fail "repeated warn printed $count times, expected once"
grep -q "warn: suppressed 1 repeat of: --stu-entries is ignored" \
    "$work/dedup_err.txt" ||
    fail "missing suppressed-repeats line for the duplicated flag"

# --- sweep JSON is byte-identical for every job count ---------------
"$cli" --sweep fig14_acm_size --json --sweep-jobs 1 \
    > "$work/sweep_j1.json" 2> /dev/null
"$cli" --sweep fig14_acm_size --json --sweep-jobs 3 \
    > "$work/sweep_j3.json" 2> /dev/null
cmp -s "$work/sweep_j1.json" "$work/sweep_j3.json" ||
    fail "--sweep-jobs 3 export diverged from --sweep-jobs 1"

# --- FAMSIM_SWEEP_JOBS seeds the default, malformed values warn -----
FAMSIM_SWEEP_JOBS=2 "$cli" --sweep fig14_acm_size --json \
    > "$work/sweep_env.json" 2> /dev/null
cmp -s "$work/sweep_j1.json" "$work/sweep_env.json" ||
    fail "FAMSIM_SWEEP_JOBS=2 export diverged from --sweep-jobs 1"
FAMSIM_SWEEP_JOBS=bogus "$cli" --sweep fig14_acm_size --json \
    > "$work/sweep_bogus.json" 2> "$work/env_err.txt" ||
    fail "malformed FAMSIM_SWEEP_JOBS broke the run"
grep -q "FAMSIM_SWEEP_JOBS" "$work/env_err.txt" ||
    fail "malformed FAMSIM_SWEEP_JOBS did not warn"
cmp -s "$work/sweep_j1.json" "$work/sweep_bogus.json" ||
    fail "malformed FAMSIM_SWEEP_JOBS changed the export"

echo "flag contract OK: $(wc -c < "$work/sweep_j1.json") sweep bytes stable"
