/**
 * @file
 * Tests for the memory substrate: packets, banked memory timing,
 * outstanding-request limits, cache levels and MSHR behaviour.
 */

#include <gtest/gtest.h>

#include "cache/cache_level.hh"
#include "mem/banked_memory.hh"
#include "mem/packet.hh"
#include "test_util.hh"

namespace famsim {
namespace {

using test::StubMemory;
using test::dataRead;

// --------------------------------------------------------------- packet

TEST(Packet, KindsClassifyTranslation)
{
    EXPECT_FALSE(isTranslationKind(PacketKind::Data));
    EXPECT_TRUE(isTranslationKind(PacketKind::NodePtw));
    EXPECT_TRUE(isTranslationKind(PacketKind::FamPtw));
    EXPECT_TRUE(isTranslationKind(PacketKind::Acm));
    EXPECT_TRUE(isTranslationKind(PacketKind::Bitmap));
    EXPECT_TRUE(isTranslationKind(PacketKind::Broker));
}

TEST(Packet, IdsAreUnique)
{
    auto a = makePacket(0, 0, MemOp::Read, PacketKind::Data);
    auto b = makePacket(0, 0, MemOp::Read, PacketKind::Data);
    EXPECT_NE(a->id, b->id);
}

TEST(Packet, CompleteRunsCallbackExactlyOnce)
{
    auto pkt = makePacket(0, 0, MemOp::Read, PacketKind::Data);
    int calls = 0;
    pkt->onDone = [&](Packet&) { ++calls; };
    pkt->complete();
    pkt->complete(); // second call must be a no-op
    EXPECT_EQ(calls, 1);
}

TEST(Packet, KindNamesArePrintable)
{
    EXPECT_STREQ(toString(PacketKind::Data), "Data");
    EXPECT_STREQ(toString(PacketKind::Acm), "Acm");
}

// -------------------------------------------------------- banked memory

TEST(BankedMemory, ReadCompletesAfterLatency)
{
    Simulation sim;
    BankedMemoryParams params;
    params.banks = 2;
    params.readLatency = 50 * kNanosecond;
    params.writeLatency = 100 * kNanosecond;
    params.frontendLatency = 10 * kNanosecond;
    BankedMemory mem(sim, "mem", params);

    Tick done_at = 0;
    auto pkt = dataRead(0);
    pkt->onDone = [&](Packet&) { done_at = sim.curTick(); };
    mem.access(pkt, 0);
    sim.run();
    EXPECT_EQ(done_at, 60 * kNanosecond);
}

TEST(BankedMemory, WritesAreSlowerThanReads)
{
    Simulation sim;
    BankedMemoryParams params;
    params.readLatency = 60 * kNanosecond;
    params.writeLatency = 150 * kNanosecond;
    params.frontendLatency = 0;
    BankedMemory mem(sim, "mem", params);

    Tick read_done = 0, write_done = 0;
    auto rd = dataRead(0);
    rd->onDone = [&](Packet&) { read_done = sim.curTick(); };
    auto wr = makePacket(0, 0, MemOp::Write, PacketKind::Data);
    wr->npa = NPAddr(kBlockSize); // different bank
    wr->onDone = [&](Packet&) { write_done = sim.curTick(); };
    mem.access(rd, 0);
    mem.access(wr, kBlockSize);
    sim.run();
    EXPECT_EQ(read_done, 60 * kNanosecond);
    EXPECT_EQ(write_done, 150 * kNanosecond);
}

TEST(BankedMemory, SameBankSerializes)
{
    Simulation sim;
    BankedMemoryParams params;
    params.banks = 4;
    params.readLatency = 100 * kNanosecond;
    params.frontendLatency = 0;
    BankedMemory mem(sim, "mem", params);

    // Two accesses to the same bank (same block-interleave residue).
    Tick first = 0, second = 0;
    auto a = dataRead(0);
    a->onDone = [&](Packet&) { first = sim.curTick(); };
    auto b = dataRead(4 * kBlockSize); // (4*64/64) % 4 == 0: same bank
    b->onDone = [&](Packet&) { second = sim.curTick(); };
    mem.access(a, 0);
    mem.access(b, 4 * kBlockSize);
    sim.run();
    EXPECT_EQ(first, 100 * kNanosecond);
    EXPECT_EQ(second, 200 * kNanosecond);
}

TEST(BankedMemory, DifferentBanksProceedInParallel)
{
    Simulation sim;
    BankedMemoryParams params;
    params.banks = 4;
    params.readLatency = 100 * kNanosecond;
    params.frontendLatency = 0;
    BankedMemory mem(sim, "mem", params);

    Tick first = 0, second = 0;
    auto a = dataRead(0);
    a->onDone = [&](Packet&) { first = sim.curTick(); };
    auto b = dataRead(kBlockSize); // bank 1
    b->onDone = [&](Packet&) { second = sim.curTick(); };
    mem.access(a, 0);
    mem.access(b, kBlockSize);
    sim.run();
    EXPECT_EQ(first, 100 * kNanosecond);
    EXPECT_EQ(second, 100 * kNanosecond);
}

TEST(BankedMemory, OutstandingLimitQueuesExcess)
{
    Simulation sim;
    BankedMemoryParams params;
    params.banks = 8;
    params.readLatency = 100 * kNanosecond;
    params.frontendLatency = 0;
    params.maxOutstanding = 2;
    BankedMemory mem(sim, "mem", params);

    int completed = 0;
    for (int i = 0; i < 4; ++i) {
        auto pkt = dataRead(static_cast<std::uint64_t>(i) * kBlockSize);
        pkt->onDone = [&](Packet&) { ++completed; };
        mem.access(pkt, static_cast<std::uint64_t>(i) * kBlockSize);
    }
    EXPECT_EQ(mem.inFlight(), 2u);
    sim.run();
    EXPECT_EQ(completed, 4);
    EXPECT_DOUBLE_EQ(sim.stats().get("mem.queued"), 2.0);
}

// ----------------------------------------------------------- cache level

class CacheLevelTest : public ::testing::Test
{
  protected:
    CacheLevelTest()
        : stub_(sim_, 100 * kNanosecond),
          cache_(sim_, "l1",
                 CacheParams{1024, 2, 1 * kNanosecond, ReplPolicy::Lru},
                 stub_)
    {
    }

    Simulation sim_;
    StubMemory stub_;
    CacheLevel cache_; // 1 KB, 2-way: 8 sets of 2
};

TEST_F(CacheLevelTest, MissFillsThenHits)
{
    int completed = 0;
    auto miss = dataRead(0);
    miss->onDone = [&](Packet&) { ++completed; };
    cache_.access(miss);
    sim_.run();
    EXPECT_EQ(completed, 1);
    EXPECT_EQ(stub_.accesses, 1u);

    auto hit = dataRead(8); // same block
    Tick done_at = 0;
    hit->onDone = [&](Packet&) { done_at = sim_.curTick(); };
    Tick start = sim_.curTick();
    cache_.access(hit);
    sim_.run();
    EXPECT_EQ(stub_.accesses, 1u); // no new fill
    EXPECT_EQ(done_at - start, 1 * kNanosecond);
}

TEST_F(CacheLevelTest, MshrMergesConcurrentMisses)
{
    int completed = 0;
    for (int i = 0; i < 3; ++i) {
        auto pkt = dataRead(static_cast<std::uint64_t>(i) * 8);
        pkt->onDone = [&](Packet&) { ++completed; };
        cache_.access(pkt);
    }
    sim_.run();
    EXPECT_EQ(completed, 3);
    EXPECT_EQ(stub_.accesses, 1u); // one fill serves all three
    EXPECT_DOUBLE_EQ(sim_.stats().get("l1.mshr_merges"), 2.0);
}

TEST_F(CacheLevelTest, DirtyEvictionWritesBack)
{
    // Fill both ways of set 0, dirtying the first, then force an
    // eviction with a third block in the same set.
    auto w = makePacket(0, 0, MemOp::Write, PacketKind::Data);
    w->npa = NPAddr(0);
    w->onDone = [](Packet&) {};
    cache_.access(w);
    sim_.run();

    std::uint64_t set_stride = 8 * kBlockSize; // 8 sets
    for (int i = 1; i <= 2; ++i) {
        auto pkt = dataRead(static_cast<std::uint64_t>(i) * set_stride);
        pkt->onDone = [](Packet&) {};
        cache_.access(pkt);
        sim_.run();
    }
    EXPECT_DOUBLE_EQ(sim_.stats().get("l1.writebacks"), 1.0);
    // The stub saw: fill(0), fill(1), fill(2) + writeback(0).
    EXPECT_EQ(stub_.accesses, 4u);
}

TEST_F(CacheLevelTest, WritebackPacketsDoNotAllocate)
{
    auto wb = makePacket(0, 0, MemOp::Write, PacketKind::Data);
    wb->npa = NPAddr(0x4000);
    wb->writeback = true;
    wb->onDone = [](Packet&) {};
    cache_.access(wb);
    sim_.run();
    // Forwarded to the stub, not filled into the cache.
    EXPECT_EQ(stub_.accesses, 1u);
    auto rd = dataRead(0x4000);
    rd->onDone = [](Packet&) {};
    cache_.access(rd);
    sim_.run();
    EXPECT_EQ(stub_.accesses, 2u); // still a miss
}

TEST_F(CacheLevelTest, FillInheritsRequestKind)
{
    auto pkt = makePacket(0, 0, MemOp::Read, PacketKind::NodePtw);
    pkt->npa = NPAddr(0x100);
    pkt->onDone = [](Packet&) {};
    cache_.access(pkt);
    sim_.run();
    ASSERT_EQ(stub_.kinds.size(), 1u);
    EXPECT_EQ(stub_.kinds[0], PacketKind::NodePtw);
}

TEST_F(CacheLevelTest, InvalidateAllForcesRefills)
{
    auto pkt = dataRead(0);
    pkt->onDone = [](Packet&) {};
    cache_.access(pkt);
    sim_.run();
    cache_.invalidateAll();
    auto again = dataRead(0);
    again->onDone = [](Packet&) {};
    cache_.access(again);
    sim_.run();
    EXPECT_EQ(stub_.accesses, 2u);
}

TEST(CacheLevelParams, BadGeometryPanics)
{
    ScopedThrowOnError guard;
    Simulation sim;
    StubMemory stub(sim, 1);
    EXPECT_THROW(CacheLevel(sim, "bad", CacheParams{100, 3, 1}, stub),
                 SimError);
}

} // namespace
} // namespace famsim
