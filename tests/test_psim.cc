/**
 * @file
 * Parallel kernel (src/psim/) tests.
 *
 * The headline property: for every registered paper scenario (and the
 * 16-node fig16 scaling point), the parallel kernel exports
 * byte-identical stats JSON for one worker thread and for many — the
 * schedule is deterministic by construction, so thread count must be
 * unobservable. The unit tests pin the mechanisms that property rests
 * on: mailbox merge order at window barriers, worker-pool epoch
 * semantics, sync-window bounds and the queue-id handle.
 *
 * FAMSIM_THREADS (when set and >= 2) selects the "many threads" side
 * of the determinism comparisons, so CI can re-run the suite at
 * different widths.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <string>
#include <tuple>
#include <vector>

#include "arch/system.hh"
#include "harness/runner.hh"
#include "harness/scenario.hh"
#include "harness/sweep.hh"
#include "psim/parallel_sim.hh"
#include "psim/worker_pool.hh"
#include "sim/logging.hh"

namespace famsim {
namespace {

/**
 * The wide side of every 1-vs-N comparison (>= 2). Defaults to 2 so
 * the FAMSIM_THREADS=4 CI pass genuinely covers a second width
 * instead of repeating the default run.
 */
unsigned
wideThreads()
{
    unsigned threads = threadsFromEnv(2);
    return threads >= 2 ? threads : 2;
}

// ------------------------------------------------- scenario property

/**
 * Every registered scenario (headline + golden sweep points, incl. the
 * 16-node fig16 scaling point) must export byte-identical JSON under
 * --threads 1 and --threads N.
 */
class ParallelDeterminism : public testing::TestWithParam<std::string>
{
};

TEST_P(ParallelDeterminism, ThreadCountIsUnobservable)
{
    const std::string& name = GetParam();
    const Scenario& scenario =
        ScenarioRegistry::paper().has(name)
            ? ScenarioRegistry::paper().byName(name)
            : SweepRegistry::paperPoints().byName(name);
    const std::string one = runScenarioJson(scenario, 1);
    const std::string many = runScenarioJson(scenario, wideThreads());
    EXPECT_EQ(one, many)
        << "scenario '" << name << "' diverged between 1 and "
        << wideThreads() << " worker threads";
}

std::string
testId(const testing::TestParamInfo<std::string>& info)
{
    std::string id = info.param;
    for (char& c : id) {
        if (c == '.' || c == '-')
            c = '_';
    }
    return id;
}

INSTANTIATE_TEST_SUITE_P(
    Scenarios, ParallelDeterminism,
    testing::ValuesIn(ScenarioRegistry::paper().names()), testId);

// The 16-node scaling point is the acceptance anchor; the other golden
// sweep points ride along for coverage of every swept dimension.
INSTANTIATE_TEST_SUITE_P(SweepPoints, ParallelDeterminism,
                         testing::ValuesIn(goldenSweepPointNames()),
                         testId);

// The 32/64-node scaling points exercise the sharded kernel at the
// partition counts the fig16 extension targets (64 nodes = 129
// partitions); they are not golden-pinned (no serial reference files),
// so they appear here, in the 1-vs-N matrix, only.
INSTANTIATE_TEST_SUITE_P(
    ScalingPoints, ParallelDeterminism,
    testing::Values(std::string("fig16_num_nodes.n32"),
                    std::string("fig16_num_nodes.n64")),
    testId);

/** Runtime system-level faults (prefault off) take the barrier-op
 *  path through the broker; it must be just as deterministic. */
TEST(ParallelDeterminismExtra, RuntimeBrokerFaultsAreDeterministic)
{
    SystemConfig config =
        makeConfig(profiles::byName("mcf"), ArchKind::DeactN, 4000);
    config.nodes = 2;
    config.seed = 7;
    config.prefault = false;

    auto stats_json = [&](unsigned threads) {
        System system(config);
        system.run(threads);
        EXPECT_GT(system.sim().stats().get("broker.faults"), 0.0)
            << "config did not exercise the runtime fault path";
        return system.sim().stats().jsonString();
    };
    EXPECT_EQ(stats_json(1), stats_json(wideThreads()));
}

/**
 * The worst-case multi-tenant mix on the parallel kernel: runtime
 * faults (prefault off), tenant churn and broker migrations — logical
 * and physical — while every core keeps issuing. The migrations take
 * the barrier-op path (System posts them at the broker edge lookahead
 * and the ACM rewrite traffic is scheduled onto the owning media
 * partitions), so the whole mix must stay thread-count invariant.
 */
TEST(ParallelDeterminismExtra, MigrationUnderLoadIsDeterministic)
{
    SystemConfig config =
        makeConfig(profiles::byName("mcf"), ArchKind::DeactN, 8000);
    config.nodes = 2;
    config.seed = 7;
    config.prefault = false;
    config.tenancy.jobs = 3;
    config.tenancy.zipfSkew = 0.6;
    config.tenancy.churnMeanOps = 1500;
    config.migrations.push_back({3000, 0, 1, /*useLogicalIds=*/true});
    config.migrations.push_back({5000, 1, 0, /*useLogicalIds=*/false});

    auto stats_json = [&](unsigned threads) {
        System system(config);
        system.run(threads);
        EXPECT_DOUBLE_EQ(system.sim().stats().get("broker.migrations"),
                         2.0);
        EXPECT_GT(system.sim().stats().get("broker.faults"), 0.0)
            << "config did not exercise the runtime fault path";
        return system.sim().stats().jsonString();
    };
    const std::string one = stats_json(1);
    EXPECT_EQ(one, stats_json(2));
    EXPECT_EQ(one, stats_json(wideThreads()));
}

/**
 * Trace replay on the parallel kernel: a recorded scenario must replay
 * byte-identically at any worker count, and identically to the
 * synthetic run it was recorded from. (The registered *.selfreplay
 * scenarios already go through the 1-vs-N matrix above; this pins the
 * full record -> replay chain under both kernels explicitly.)
 */
TEST(ParallelDeterminismExtra, TraceReplayIsThreadCountInvariant)
{
    Scenario scenario;
    scenario.name = "test.trace_replay_threads";
    scenario.figure = "test";
    scenario.headlineMetric = "ipc";
    scenario.config = makeConfig(profiles::uniformTest(4ull << 20),
                                 ArchKind::DeactN, 4000);
    scenario.config.nodes = 2;
    scenario.config.coresPerNode = 2;
    scenario.config.seed = 5;

    const std::string dir =
        (std::filesystem::temp_directory_path() /
         ("famsim_psim_replay_" +
          std::to_string(::testing::UnitTest::GetInstance()
                             ->random_seed())))
            .string();
    const std::string synthetic = runScenarioJson(scenario, 1);
    const std::string recorded = recordScenarioTraces(
        scenario, dir, TraceFormat::Binary, /*threads=*/1);
    EXPECT_EQ(synthetic, recorded);
    EXPECT_EQ(synthetic, replayScenarioJson(scenario, dir, 1));
    EXPECT_EQ(synthetic,
              replayScenarioJson(scenario, dir, wideThreads()));
    std::error_code ec;
    std::filesystem::remove_all(dir, ec);
}

// ------------------------------------------------ mailbox merge order

/**
 * Cross-partition posts colliding on one destination must execute in
 * (tick, srcPartition, seq) order, independent of worker count.
 */
std::vector<std::tuple<Tick, unsigned, int>>
runMergeProbe(unsigned threads)
{
    Simulation sim;
    constexpr Tick kLookahead = 100;
    ParallelSim psim(sim, /*partitions=*/3, kLookahead, threads);

    std::vector<std::tuple<Tick, unsigned, int>> order;
    auto record = [&](unsigned src, int seq) {
        return [&order, &sim, src, seq] {
            order.emplace_back(sim.curTick(), src, seq);
        };
    };

    // Partitions 1 and 2 each send two messages at tick 5, all
    // delivered at tick 105 on partition 0; partition 2 additionally
    // sends an earlier-tick message that must run first despite being
    // posted from the highest source id.
    psim.withPartition(1, [&] {
        sim.events().schedule(5, [&psim, record] {
            psim.post(0, 105, record(1, 0));
            psim.post(0, 105, record(1, 1));
        });
    });
    psim.withPartition(2, [&] {
        sim.events().schedule(5, [&psim, record] {
            psim.post(0, 105, record(2, 0));
            psim.post(0, 105, record(2, 1));
        });
        sim.events().schedule(4, [&psim, record] {
            psim.post(0, 104, record(2, -1));
        });
    });
    psim.run();
    return order;
}

TEST(Mailbox, BarrierDrainMergesInTickSourceSeqOrder)
{
    using Entry = std::tuple<Tick, unsigned, int>;
    std::vector<Entry> expected{
        Entry{104, 2, -1}, Entry{105, 1, 0}, Entry{105, 1, 1},
        Entry{105, 2, 0}, Entry{105, 2, 1},
    };
    EXPECT_EQ(runMergeProbe(1), expected);
    EXPECT_EQ(runMergeProbe(3), expected) << "merge order must not "
                                             "depend on worker count";
}

/** Arbitrated sends drain in (sendTick, src, seq) order and receive
 *  the sender's tick, not the drain-time tick. */
TEST(Mailbox, ArbitratedDrainUsesSenderTickOrder)
{
    Simulation sim;
    ParallelSim psim(sim, /*partitions=*/3, /*lookahead=*/50, 2);

    std::vector<std::pair<Tick, unsigned>> order;
    auto arb = [&](unsigned src) {
        return [&order, &sim, &psim, src](Tick sent) {
            order.emplace_back(sent, src);
            // Contract: schedule the delivery >= sent + lookahead.
            sim.events().schedule(sent + 50, [] {});
        };
    };
    psim.withPartition(2, [&] {
        sim.events().schedule(7, [&psim, arb] { psim.postArbitrated(0, arb(2)); });
    });
    psim.withPartition(1, [&] {
        sim.events().schedule(7, [&psim, arb] { psim.postArbitrated(0, arb(1)); });
        sim.events().schedule(3, [&psim, arb] { psim.postArbitrated(0, arb(1)); });
    });
    psim.run();

    std::vector<std::pair<Tick, unsigned>> expected{
        {3, 1}, {7, 1}, {7, 2}};
    EXPECT_EQ(order, expected);
}

/** Lookahead violations are simulator bugs and must be caught. */
TEST(Mailbox, PostBelowLookaheadPanics)
{
    ScopedThrowOnError throw_on_error;
    Simulation sim;
    ParallelSim psim(sim, 2, /*lookahead=*/100, 1);
    psim.withPartition(0, [&] {
        sim.events().schedule(10, [&] {
            EXPECT_THROW(psim.post(1, 50, [] {}), SimError);
        });
    });
    psim.run();
}

// ---------------------------------------------------- global barrier ops

TEST(GlobalOps, RunAtBarriersInDueSourceOrder)
{
    Simulation sim;
    ParallelSim psim(sim, 2, /*lookahead=*/100, 2);

    std::vector<std::pair<Tick, unsigned>> order;
    psim.withPartition(1, [&] {
        sim.events().schedule(5, [&] {
            psim.postGlobal(205, [&] { order.emplace_back(205, 1u); });
        });
    });
    psim.withPartition(0, [&] {
        sim.events().schedule(5, [&] {
            psim.postGlobal(205, [&] { order.emplace_back(205, 0u); });
            psim.postGlobal(110, [&] { order.emplace_back(110, 0u); });
        });
    });
    psim.run();

    std::vector<std::pair<Tick, unsigned>> expected{
        {110, 0u}, {205, 0u}, {205, 1u}};
    EXPECT_EQ(order, expected);
}

// ------------------------------------------------------- worker pool

TEST(WorkerPool, EveryTaskRunsExactlyOncePerEpoch)
{
    WorkerPool pool(3);
    EXPECT_EQ(pool.threads(), 3u);
    for (int epoch = 0; epoch < 50; ++epoch) {
        constexpr std::size_t kTasks = 17; // more tasks than workers
        std::vector<std::atomic<int>> counts(kTasks);
        pool.runEpoch(kTasks, [&](std::size_t task) {
            counts[task].fetch_add(1, std::memory_order_relaxed);
        });
        for (std::size_t t = 0; t < kTasks; ++t)
            EXPECT_EQ(counts[t].load(), 1) << "task " << t;
    }
}

TEST(WorkerPool, SingleThreadRunsInline)
{
    WorkerPool pool(1);
    std::vector<std::size_t> ran;
    pool.runEpoch(4, [&](std::size_t task) { ran.push_back(task); });
    EXPECT_EQ(ran, (std::vector<std::size_t>{0, 1, 2, 3}));
    pool.runEpoch(0, [&](std::size_t) { FAIL() << "no tasks expected"; });
}

// -------------------------------------------------- per-edge lookahead

/** The famSystem topology used by the sharded-kernel units: two nodes,
 *  two media modules, a broker; fabric edge 100, broker edge 1000. */
ParallelSim::Topology
famTopology()
{
    ParallelSim::Topology topo;
    topo.nodes = 2;
    topo.mediaModules = 2;
    topo.fabricLookahead = 100;
    topo.brokerLookahead = 1000;
    return topo;
}

TEST(PerEdgeLookahead, TopologyLaysOutNodesMediaBroker)
{
    Simulation sim;
    ParallelSim psim(sim, famTopology(), 1);
    EXPECT_EQ(psim.partitions(), 5u);
    EXPECT_EQ(psim.nodePartition(1), 1u);
    EXPECT_EQ(psim.mediaPartition(0), 2u);
    EXPECT_EQ(psim.mediaPartition(1), 3u);
    EXPECT_EQ(psim.brokerPartition(), 4u);
    EXPECT_EQ(psim.kindOf(0), ParallelSim::Kind::Node);
    EXPECT_EQ(psim.kindOf(2), ParallelSim::Kind::Media);
    EXPECT_EQ(psim.kindOf(4), ParallelSim::Kind::Broker);
    // The matrix: node<->media at the fabric latency, broker edges at
    // the service latency, same-kind pairs edgeless.
    EXPECT_EQ(psim.lookaheadBetween(0, 2), 100u);
    EXPECT_EQ(psim.lookaheadBetween(3, 1), 100u);
    EXPECT_EQ(psim.lookaheadBetween(0, 4), 1000u);
    EXPECT_EQ(psim.lookaheadBetween(4, 2), 1000u);
    EXPECT_EQ(psim.lookaheadBetween(0, 1), ParallelSim::kNever);
    EXPECT_EQ(psim.lookaheadBetween(2, 3), ParallelSim::kNever);
    // The base window width is the smallest finite edge.
    EXPECT_EQ(psim.lookahead(), 100u);
    psim.run();
}

/** post() enforces the (src, dst) edge floor, not a single global
 *  lookahead — and panics outright on edgeless pairs. */
TEST(PerEdgeLookahead, PostsEnforceTheEdgeFloors)
{
    ScopedThrowOnError throw_on_error;
    Simulation sim;
    ParallelSim psim(sim, famTopology(), 1);
    psim.withPartition(0, [&] {
        sim.events().schedule(10, [&] {
            // node -> media rides the fabric edge (100)...
            EXPECT_THROW(psim.post(2, 109, [] {}), SimError);
            psim.post(2, 110, [] {});
            // ...node -> broker the service edge (1000)...
            EXPECT_THROW(psim.post(4, 110, [] {}), SimError);
            psim.post(4, 1010, [] {});
            // ...and node -> node has no edge at all.
            EXPECT_THROW(psim.post(1, 100000, [] {}), SimError);
        });
    });
    psim.run();
}

/**
 * Window ends follow the per-partition outgoing floors: a window
 * opened by media-only work extends one fabric lookahead past its
 * earliest pending event, exactly like node work — but a window
 * opened by work on a partition whose cheapest outgoing edge is the
 * broker's would extend a full service latency.
 */
TEST(PerEdgeLookahead, WindowBoundsFollowTheMatrix)
{
    Simulation sim;
    ParallelSim psim(sim, famTopology(), 1);
    // Pending work on media module 0 only: window [7, 7 + 100).
    psim.withPartition(2, [&] { sim.events().schedule(7, [] {}); });
    psim.run();
    EXPECT_EQ(psim.epoch(), 1u);
    EXPECT_EQ(psim.queueOf(2).curTick(), 106u);
}

// --------------------------------------------------- adaptive windows

/**
 * Adaptive widening: the window end is the earliest cross-partition
 * *commitment*, not start + base lookahead. Broker-partition work
 * (cheapest outgoing edge = 1000) spread over 5 base lookaheads plus
 * an idle-gapped node event all drain in a single window where the
 * fixed scheme would have paid a barrier per 100-tick step: the end
 * is min(10 + 1000, 900 + 100) = 1000.
 */
TEST(AdaptiveWindow, IdleGapDrainsInOneEpoch)
{
    Simulation sim;
    ParallelSim psim(sim, famTopology(), 1);
    std::uint64_t broker_events = 0;
    psim.withPartition(psim.brokerPartition(), [&] {
        for (Tick t = 10; t <= 510; t += 100)
            sim.events().schedule(t, [&broker_events] { ++broker_events; });
    });
    bool node_ran = false;
    psim.withPartition(0, [&] {
        sim.events().schedule(900, [&node_ran] { node_ran = true; });
    });
    psim.run();
    EXPECT_EQ(broker_events, 6u);
    EXPECT_TRUE(node_ran);
    EXPECT_EQ(psim.epoch(), 1u) << "idle gap must drain in one window";
    EXPECT_EQ(psim.widenedEpochs(), 1u);
}

/** The uniform (test) topology reproduces the fixed-width windows:
 *  same-tick spacing beyond the lookahead costs one epoch per hop. */
TEST(AdaptiveWindow, UniformTopologyKeepsFixedWidth)
{
    Simulation sim;
    ParallelSim psim(sim, /*partitions=*/2, /*lookahead=*/100, 1);
    psim.withPartition(0, [&] {
        sim.events().schedule(10, [] {});
        sim.events().schedule(250, [] {});
    });
    psim.run();
    // [10, 110) then [250, 350): the gap is skipped, the width is not
    // widened (a uniform peer could send at any executed tick + 100).
    EXPECT_EQ(psim.epoch(), 2u);
    EXPECT_EQ(psim.widenedEpochs(), 0u);
}

// ------------------------------------------------------- sync window

TEST(SyncWindow, OpensAtMinPendingAndTracksEpochs)
{
    SyncWindow window(450);
    EXPECT_EQ(window.lookahead(), 450u);
    EXPECT_EQ(window.epoch(), 0u);
    auto bounds = window.open(1000);
    EXPECT_EQ(bounds.start, 1000u);
    EXPECT_EQ(bounds.end, 1450u);
    bounds = window.open(5000); // idle gap skipped in one hop
    EXPECT_EQ(bounds.start, 5000u);
    EXPECT_EQ(bounds.end, 5450u);
    EXPECT_EQ(window.epoch(), 2u);
}

TEST(SyncWindow, RejectsZeroLookaheadAndBackwardWindows)
{
    ScopedThrowOnError throw_on_error;
    EXPECT_THROW(SyncWindow bad(0), SimError);
    SyncWindow window(10);
    (void)window.open(100);
    EXPECT_THROW((void)window.open(50), SimError);
}

TEST(SyncWindow, WidenedWindowsAreCounted)
{
    SyncWindow window(100);
    auto bounds = window.open(10, 1000); // adaptive horizon
    EXPECT_EQ(bounds.start, 10u);
    EXPECT_EQ(bounds.end, 1000u);
    EXPECT_EQ(window.widened(), 1u);
    bounds = window.open(2000, 2100); // exactly the base width
    EXPECT_EQ(window.widened(), 1u);
    EXPECT_EQ(window.epoch(), 2u);
}

/** Near the Tick horizon the window end saturates instead of
 *  wrapping (a wrapped end would open a backwards, empty window). */
TEST(SyncWindow, WindowEndSaturatesAtTheTickHorizon)
{
    ScopedThrowOnError throw_on_error;
    EXPECT_EQ(SyncWindow::satAdd(SyncWindow::kTickMax - 5, 100),
              SyncWindow::kTickMax);
    EXPECT_EQ(SyncWindow::satAdd(7, SyncWindow::kTickMax),
              SyncWindow::kTickMax);
    EXPECT_EQ(SyncWindow::satAdd(7, 100), 107u);

    SyncWindow window(100);
    auto bounds = window.open(SyncWindow::kTickMax - 5);
    EXPECT_EQ(bounds.end, SyncWindow::kTickMax);
    // An empty (or wrapped) window is a kernel bug and must be caught.
    EXPECT_THROW((void)window.open(SyncWindow::kTickMax,
                                   SyncWindow::kTickMax),
                 SimError);
}

// ------------------------------------------------- queue-id handle

TEST(QueueHandle, PartitionQueuesCarryTheirIdAndNextTick)
{
    Simulation sim;
    ParallelSim psim(sim, 3, /*lookahead=*/10, 1);
    EXPECT_EQ(psim.brokerPartition(), 2u);
    for (std::uint32_t p = 0; p < 3; ++p)
        EXPECT_EQ(psim.queueOf(p).id(), p);

    EXPECT_EQ(psim.queueOf(1).nextTick(), EventQueue::kForever);
    psim.withPartition(1, [&] {
        EXPECT_EQ(&sim.events(), &psim.queueOf(1))
            << "events() must resolve to the entered partition";
        sim.events().schedule(42, [] {});
    });
    EXPECT_EQ(psim.queueOf(1).nextTick(), 42u);
    EXPECT_EQ(sim.serialEvents().id(), 0u);
    psim.run();
    // The window [42, 52) ran every partition through the horizon.
    EXPECT_EQ(psim.queueOf(1).curTick(), 51u);
    EXPECT_EQ(psim.queueOf(1).executed(), 1u);
}

} // namespace
} // namespace famsim
