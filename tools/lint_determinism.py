#!/usr/bin/env python3
"""Determinism lint for the famsim source tree.

The simulator's core contract is byte-identical output for a given
(seed, config) at any thread count. This lint statically bans the
constructs that historically break that contract:

  wall-clock            wall-clock reads (system_clock, steady_clock,
                        high_resolution_clock, gettimeofday,
                        clock_gettime, time(NULL)) anywhere in src/.
                        Host time must never feed simulated behavior;
                        the profiler's explicitly-nondeterministic
                        timing block is allowlisted.
  libc-rand             rand()/srand()/drand48()/std::random_device:
                        unseeded or global-state randomness. All
                        randomness goes through the seeded PCG32 in
                        sim/rng.hh.
  unordered-iteration   iteration (range-for / .begin/.cbegin/.rbegin)
                        over a std::unordered_map/unordered_set
                        declared in the same header/source pair.
                        Unordered iteration order is
                        implementation-defined and hash-seed
                        dependent; membership queries (find, count,
                        contains, operator[]) are fine.
  pointer-key           map/set/unordered_map/unordered_set keyed by a
                        pointer type. Pointer order (and unordered
                        pointer hashing) varies with allocation layout
                        / ASLR, so iterating such a container is
                        nondeterministic across runs.

Allowlist: a finding is suppressed by an annotation on the same line
or the line directly above:

    // lint-allow(<rule>): <justification>

The justification is mandatory; an empty one is itself an error. Every
annotation must name the rule it suppresses.

Exit status: 0 clean, 1 findings, 2 usage error.
"""

import argparse
import re
import sys
from pathlib import Path

RULES = ("wall-clock", "libc-rand", "unordered-iteration", "pointer-key")

ALLOW_RE = re.compile(r"lint-allow\((?P<rule>[a-z-]+)\)\s*(?::\s*(?P<why>.*?))?\s*(?:\*/)?\s*$")

# Single-line banned patterns, per rule.
LINE_PATTERNS = {
    "wall-clock": [
        re.compile(r"std::chrono::system_clock"),
        re.compile(r"std::chrono::steady_clock"),
        re.compile(r"std::chrono::high_resolution_clock"),
        re.compile(r"\bgettimeofday\s*\("),
        re.compile(r"\bclock_gettime\s*\("),
        re.compile(r"\btime\s*\(\s*(?:NULL|nullptr|0)\s*\)"),
    ],
    "libc-rand": [
        re.compile(r"(?<![\w:])s?rand\s*\("),
        re.compile(r"\bdrand48\s*\("),
        re.compile(r"\b[lm]rand48\s*\("),
        re.compile(r"std::random_device"),
        re.compile(r"(?<!std::u)(?<!\w)random_device"),
    ],
}

UNORDERED_DECL_RE = re.compile(r"std::unordered_(?:map|set)\s*<")

# A pointer first template argument of a map/set flavor: the character
# class excludes ',' '<' '>' so only the key position can match.
POINTER_KEY_RE = re.compile(
    r"\b(?:unordered_)?(?:map|set)\s*<\s*(?:const\s+)?[\w:\s]*\*\s*[,>]")


def strip_comments(lines):
    """Comment-stripped copies of @p lines (block-comment aware).

    String literals are also blanked so quoted text (diagnostic
    messages) cannot trip code patterns.
    """
    stripped = []
    in_block = False
    for line in lines:
        out = []
        i = 0
        in_string = None
        while i < len(line):
            ch = line[i]
            nxt = line[i + 1] if i + 1 < len(line) else ""
            if in_block:
                if ch == "*" and nxt == "/":
                    in_block = False
                    i += 2
                    continue
                i += 1
                continue
            if in_string:
                if ch == "\\":
                    i += 2
                    continue
                if ch == in_string:
                    in_string = None
                i += 1
                continue
            if ch in "\"'":
                in_string = ch
                out.append(ch)
                i += 1
                continue
            if ch == "/" and nxt == "/":
                break
            if ch == "/" and nxt == "*":
                in_block = True
                i += 2
                continue
            out.append(ch)
            i += 1
        stripped.append("".join(out))
    return stripped


class Findings:
    def __init__(self):
        self.messages = []
        self.used_allows = set()  # (path, line_idx) of consumed allows

    def report(self, path, line_no, rule, detail):
        self.messages.append(f"{path}:{line_no}: [{rule}] {detail}")


def allow_for(raw_lines, line_idx, rule, path, findings):
    """True when line_idx (0-based) carries a valid allow for @p rule."""
    for idx in (line_idx, line_idx - 1):
        if idx < 0:
            continue
        m = ALLOW_RE.search(raw_lines[idx])
        if not m:
            continue
        if m.group("rule") != rule:
            continue
        why = (m.group("why") or "").strip()
        if not why:
            findings.report(path, idx + 1, rule,
                            "lint-allow annotation without a "
                            "justification")
            return True  # suppress the original finding; the empty
            # justification is the reported error instead
        findings.used_allows.add((str(path), idx))
        return True
    return False


def template_end(text, start):
    """Index one past the '>' matching the '<' at @p start."""
    depth = 0
    for i in range(start, len(text)):
        if text[i] == "<":
            depth += 1
        elif text[i] == ">":
            depth -= 1
            if depth == 0:
                return i + 1
    return -1


def collect_unordered_names(code_text):
    """Identifiers declared with a std::unordered_{map,set} type."""
    names = set()
    for m in UNORDERED_DECL_RE.finditer(code_text):
        lt = code_text.index("<", m.start())
        end = template_end(code_text, lt)
        if end < 0:
            continue
        after = code_text[end:end + 200]
        dm = re.match(r"\s*&?\s*(\w+)\s*[;={(]", after)
        if dm:
            names.add(dm.group(1))
    return names


def line_of(offsets, pos):
    """0-based line index of character offset @p pos."""
    lo, hi = 0, len(offsets) - 1
    while lo < hi:
        mid = (lo + hi + 1) // 2
        if offsets[mid] <= pos:
            lo = mid
        else:
            hi = mid - 1
    return lo


def scan_group(paths, findings):
    """Lint one header/source group (shared unordered declarations)."""
    per_file = {}
    group_unordered = set()
    for path in paths:
        raw = path.read_text().splitlines()
        code = strip_comments(raw)
        text = "\n".join(code)
        per_file[path] = (raw, code, text)
        group_unordered |= collect_unordered_names(text)

    for path, (raw, code, text) in per_file.items():
        offsets = [0]
        for line in code:
            offsets.append(offsets[-1] + len(line) + 1)

        for rule, patterns in LINE_PATTERNS.items():
            for idx, line in enumerate(code):
                for pat in patterns:
                    if not pat.search(line):
                        continue
                    if allow_for(raw, idx, rule, path, findings):
                        break
                    findings.report(path, idx + 1, rule,
                                    f"banned pattern "
                                    f"'{pat.search(line).group(0).strip()}'")
                    break

        for m in POINTER_KEY_RE.finditer(text):
            idx = line_of(offsets, m.start())
            if allow_for(raw, idx, "pointer-key", path, findings):
                continue
            findings.report(path, idx + 1, "pointer-key",
                            f"pointer-keyed container "
                            f"'{m.group(0).strip()}'")

        for name in sorted(group_unordered):
            iter_res = [
                re.compile(r"for\s*\([^;()]*?:\s*" + re.escape(name)
                           + r"\b", re.S),
                re.compile(r"\b" + re.escape(name)
                           + r"\s*\.\s*c?r?begin\s*\("),
            ]
            for pat in iter_res:
                for m in pat.finditer(text):
                    idx = line_of(offsets, m.start())
                    if allow_for(raw, idx, "unordered-iteration", path,
                                 findings):
                        continue
                    findings.report(
                        path, idx + 1, "unordered-iteration",
                        f"iteration over unordered container '{name}'")


def check_unused_allows(paths, findings):
    """Report lint-allow annotations that suppress nothing."""
    for path in paths:
        raw = path.read_text().splitlines()
        for idx, line in enumerate(raw):
            m = ALLOW_RE.search(line)
            if not m:
                continue
            if m.group("rule") not in RULES:
                findings.report(path, idx + 1, "allowlist",
                                f"unknown rule "
                                f"'{m.group('rule')}' in lint-allow")
                continue
            key = (str(path), idx)
            # An allow on line N may cover N or N+1; it was recorded
            # under its own index when consumed.
            if key not in findings.used_allows:
                findings.report(path, idx + 1, "allowlist",
                                "lint-allow annotation matches no "
                                "finding (stale; remove it)")


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", type=Path,
                        default=Path(__file__).resolve().parent.parent,
                        help="repository root (default: the checkout "
                             "containing this script)")
    args = parser.parse_args()

    src = args.root / "src"
    if not src.is_dir():
        print(f"error: {src} is not a directory", file=sys.stderr)
        return 2

    files = sorted(p for p in src.rglob("*") if p.suffix in (".hh", ".cc"))
    if not files:
        print(f"error: no sources under {src}", file=sys.stderr)
        return 2

    groups = {}
    for path in files:
        groups.setdefault(path.parent / path.stem, []).append(path)

    findings = Findings()
    for _, paths in sorted(groups.items()):
        scan_group(paths, findings)
    check_unused_allows(files, findings)

    for message in findings.messages:
        print(message)
    if findings.messages:
        print(f"\n{len(findings.messages)} determinism finding(s); "
              "fix them or annotate with "
              "'// lint-allow(<rule>): <justification>'",
              file=sys.stderr)
        return 1
    print(f"determinism lint: {len(files)} files clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
